// Ablation A7: the synthetic trace substitutes the (unavailable) Boeing
// logs. Real proxy traces carry temporal locality beyond the stationary
// Zipf law; this bench verifies the paper's conclusions are robust to it
// by sweeping the temporal re-reference probability (and a churn case)
// at 1% cache on the en-route topology.

#include <cstdio>

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Ablation A7",
                    "Temporal locality & popularity churn robustness "
                    "(en-route, 1% cache)");

  for (double locality : {0.0, 0.25, 0.5}) {
    auto config = bench::PaperConfig(sim::Architecture::kEnRoute);
    config.cache_fractions = {0.01};
    config.workload.temporal_locality = locality;
    config.workload.temporal_window = 20'000;
    config.workload.temporal_mean_depth = 500.0;
    std::printf("\n--- temporal locality = %.2f ---\n", locality);
    const auto results = bench::RunSweep(config);
    bench::PrintMetricTables(
        results, {{"avg latency, s", bench::Latency},
                  {"byte hit ratio", bench::ByteHitRatio}});
  }

  {
    auto config = bench::PaperConfig(sim::Architecture::kEnRoute);
    config.cache_fractions = {0.01};
    config.workload.churn_swaps_per_hour = 50'000.0;
    std::printf("\n--- popularity churn: 50k rank swaps/hour ---\n");
    const auto results = bench::RunSweep(config);
    bench::PrintMetricTables(
        results, {{"avg latency, s", bench::Latency},
                  {"byte hit ratio", bench::ByteHitRatio}});
  }
  return 0;
}
