// Micro benchmark M4: trace IO throughput — how fast the streaming
// reader yields requests (buffered block reads vs the legacy
// one-fread-per-field path) and how fast the mmap overlay scans. The
// buffered reader is the floor for every --trace-in replay that cannot
// mmap (v1 traces); the mapped scan is the v2 replay's ingest cost.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "trace/mapped_trace.h"
#include "trace/trace_io.h"

namespace {

using namespace cascache;

constexpr uint64_t kRequests = 200'000;

const std::string& TracePath() {
  static const std::string* path = [] {
    trace::WorkloadParams params;
    params.num_objects = 10'000;
    params.num_requests = kRequests;
    params.num_clients = 500;
    params.num_servers = 100;
    auto* p = new std::string("/tmp/cascache_micro_trace_io.cctr");
    CASCACHE_CHECK_OK(trace::GenerateWorkloadToFile(params, *p));
    return p;
  }();
  return *path;
}

void BM_TraceReaderNext(benchmark::State& state) {
  trace::TraceReader::Options options;
  options.buffer_bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto reader_or = trace::TraceReader::Open(TracePath(), options);
    CASCACHE_CHECK_OK(reader_or.status());
    trace::Request req;
    uint64_t n = 0;
    for (;;) {
      auto more_or = (*reader_or)->Next(&req);
      CASCACHE_CHECK_OK(more_or.status());
      if (!*more_or) break;
      benchmark::DoNotOptimize(req);
      ++n;
    }
    CASCACHE_CHECK(n == kRequests);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRequests));
}
// 0 = legacy unbuffered (three freads per record); 256 KiB = default.
BENCHMARK(BM_TraceReaderNext)->Arg(0)->Arg(256 * 1024);

void BM_MappedTraceScan(benchmark::State& state) {
  for (auto _ : state) {
    auto mapped_or = trace::MappedTrace::Open(TracePath());
    CASCACHE_CHECK_OK(mapped_or.status());
    double sum = 0.0;
    for (const trace::Request& req : (*mapped_or)->requests()) {
      sum += req.time;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(kRequests));
}
BENCHMARK(BM_MappedTraceScan);

}  // namespace
