#ifndef CASCACHE_BENCH_COMMON_H_
#define CASCACHE_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "sim/experiment.h"

namespace cascache::bench {

/// Workload/topology configuration shared by the figure benches: the
/// paper's Table-1 en-route topology or the default 3-ary depth-4
/// hierarchy, with a synthetic Boeing-like trace. The workload is scaled
/// down from the paper (22M requests) to laptop size; set the environment
/// variable CASCACHE_BENCH_SCALE (e.g. 0.2 or 5) to shrink or grow it.
sim::ExperimentConfig PaperConfig(sim::Architecture arch);

/// The four schemes of the paper's evaluation (§3.3), MODULO at the given
/// radius (4 = the best en-route setting the paper reports).
std::vector<schemes::SchemeSpec> PaperSchemes(int modulo_radius = 4);

/// Prints a figure banner.
void PrintTitle(const std::string& id, const std::string& title);

/// Runs the sweep with progress output on stderr; aborts on error.
std::vector<sim::RunResult> RunSweep(const sim::ExperimentConfig& config);

/// Metric extractor + display name.
struct MetricColumn {
  std::string name;
  double (*selector)(const sim::MetricsSummary&);
};

/// Prints one sweep table (rows = cache sizes, columns = schemes) per
/// metric.
void PrintMetricTables(const std::vector<sim::RunResult>& results,
                       const std::vector<MetricColumn>& metrics);

// Common selectors.
double Latency(const sim::MetricsSummary& m);
double ResponseRatio(const sim::MetricsSummary& m);
double ByteHitRatio(const sim::MetricsSummary& m);
double TrafficByteHops(const sim::MetricsSummary& m);
double Hops(const sim::MetricsSummary& m);
double LoadBytes(const sim::MetricsSummary& m);

}  // namespace cascache::bench

#endif  // CASCACHE_BENCH_COMMON_H_
