// Reproduces Figure 9: average access latency (a) and response ratio (b)
// vs relative cache size under the hierarchical architecture (full 3-ary
// tree of depth 4, link delays g^i * d with d = 0.008 s, g = 5).
//
// Paper shape: coordinated is best over the whole sweep (e.g. ~22-37%
// better response ratio at 3% cache size); MODULO(4) is much *worse* than
// LRU here because it leaves tree levels 1-3 unused; LNC-R tracks or
// slightly trails LRU.

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle(
      "Figure 9",
      "Hierarchical: access latency & response ratio vs cache size");
  auto config = bench::PaperConfig(sim::Architecture::kHierarchical);
  const auto results = bench::RunSweep(config);
  bench::PrintMetricTables(
      results, {{"avg latency, s", bench::Latency},
                {"avg response ratio, s/MB", bench::ResponseRatio}});
  return 0;
}
