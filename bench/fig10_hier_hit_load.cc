// Reproduces Figure 10: byte hit ratio (a) and aggregate cache read/write
// load (b) vs relative cache size under the hierarchical architecture.
//
// Paper shape: coordinated achieves the highest byte hit ratio; MODULO(4)
// is far below LRU (levels 1-3 unused); MODULO(4)'s total load is flat in
// cache size (each request incurs exactly one object-size read or write at
// the leaf); coordinated has the lowest total load despite the highest
// read (hit) traffic.

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Figure 10",
                    "Hierarchical: byte hit ratio & cache load vs cache size");
  auto config = bench::PaperConfig(sim::Architecture::kHierarchical);
  const auto results = bench::RunSweep(config);
  bench::PrintMetricTables(
      results, {{"byte hit ratio", bench::ByteHitRatio},
                {"avg cache load, bytes/request", bench::LoadBytes}});
  return 0;
}
