// Ablation A9 (paper §2.4): the d-cache can be managed by "simple LFU
// replacement" or organized as LRU stacks; the paper treats the choice as
// an implementation detail. Verify it is one: coordinated caching under
// both policies at 1% cache, both architectures. Also reports the DP
// candidate-count distribution and piggyback overhead backing the
// paper's O(k^2)/low-overhead arguments.

#include <cstdio>

#include "common.h"
#include "schemes/coordinated_scheme.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Ablation A9",
                    "d-cache policy (LFU vs LRU) + protocol overhead "
                    "(1% cache)");

  util::TablePrinter table({"arch", "d-cache", "latency(s)", "byte hit",
                            "mean k", "piggyback B/req"});
  for (auto arch : {sim::Architecture::kEnRoute,
                    sim::Architecture::kHierarchical}) {
    for (auto policy : {cache::DCachePolicy::kLfu, cache::DCachePolicy::kLru}) {
      auto config = bench::PaperConfig(arch);
      config.cache_fractions = {0.01};
      auto runner_or = sim::ExperimentRunner::Create(config);
      CASCACHE_CHECK_OK(runner_or.status());

      schemes::CoordinatedScheme scheme;
      config.sim.dcache_policy = policy;
      sim::Simulator simulator((*runner_or)->network(), &scheme, config.sim);
      const uint64_t capacity = static_cast<uint64_t>(
          0.01 * static_cast<double>(
                     (*runner_or)->workload().catalog.total_bytes()));
      CASCACHE_CHECK_OK(simulator.Run((*runner_or)->workload(), capacity));

      const sim::MetricsSummary m = simulator.metrics().Summary();
      table.AddRow(
          {sim::ArchitectureName(arch),
           policy == cache::DCachePolicy::kLfu ? "LFU" : "LRU",
           util::TablePrinter::Fmt(m.avg_latency, 4),
           util::TablePrinter::Fmt(m.byte_hit_ratio, 4),
           util::TablePrinter::Fmt(scheme.stats().MeanCandidates(), 3),
           util::TablePrinter::Fmt(
               scheme.stats().MeanPiggybackBytesPerRequest(), 4)});

      if (policy == cache::DCachePolicy::kLfu) {
        std::printf("k distribution (%s): ", sim::ArchitectureName(arch));
        const auto& stats = scheme.stats();
        for (int k = 0;
             k < schemes::CoordinatedScheme::Stats::kMaxTrackedCandidates;
             ++k) {
          if (stats.k_histogram[k] == 0) continue;
          std::printf("k=%d:%.1f%% ", k,
                      100.0 * static_cast<double>(stats.k_histogram[k]) /
                          static_cast<double>(stats.requests));
        }
        std::printf("\n");
      }
    }
  }
  std::printf("\n");
  table.Print();
  return 0;
}
