// Overload collapse (event engine, DESIGN.md §11): bounded node queues
// under an open-loop arrival sweep. Each cache charges a fixed lookup
// service cost, so the chain saturates once the arrival rate passes
// 1/lookup_cost; past that point the queues hit their bound and shed.
// The curve under test: served throughput flattens at the service
// capacity while sheds absorb the excess, latency stays bounded by the
// queue cap (no unbounded queueing), and the per-node shed counters
// reconcile integer-exactly with the aggregates at every point.
//
// A scheme comparison rides along: Coordinated pays a d-cache probe on
// top of each lookup, yet it collapses *later* than LRU — its placement
// quality serves more requests at the first cache, which is the only
// lever that removes load from the upstream queues. Under contention,
// hit placement is capacity.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Overload collapse",
                    "Served/shed/latency vs open-loop arrival rate "
                    "(chain of 3 caches, bounded queues)");

  // A single chain (fanout 1): every request climbs the same caches, so
  // the offered load per node is exactly the arrival rate and the
  // saturation point is legible: lookup 0.05 s => ~20 req/s per node.
  sim::ExperimentConfig config;
  config.network.architecture = sim::Architecture::kHierarchical;
  config.network.tree.depth = 3;
  config.network.tree.fanout = 1;
  config.workload.num_objects = 150;
  config.workload.num_requests = 6000;
  config.workload.num_clients = 20;
  config.workload.num_servers = 5;
  config.workload.seed = 13;
  config.cache_fractions = {0.05};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated}};
  config.jobs = 1;
  config.sim.contention.lookup_cost = 0.05;
  config.sim.contention.dcache_cost = 0.01;
  config.sim.contention.store_cost = 0.02;
  config.sim.contention.node_queue_capacity = 8;
  config.sim.contention.link_bandwidth = 1e7;

  const double rates[] = {2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 50.0, 100.0};

  util::TablePrinter table({"rate(req/s)", "scheme", "served", "shed",
                            "shed%", "latency(s)", "queue wait(s)",
                            "max depth"});
  for (const double rate : rates) {
    config.sim.contention.arrival_rate = rate;
    const auto results = bench::RunSweep(config);
    for (const sim::RunResult& r : results) {
      const auto& m = r.metrics;
      uint64_t shed_sum = 0;
      uint64_t max_depth = 0;
      for (const sim::NodeUsage& u : r.per_node) {
        shed_sum += u.counters.sheds;
        max_depth = std::max(max_depth, u.counters.max_queue_depth);
      }
      if (shed_sum != m.shed_requests ||
          m.served_requests !=
              m.requests - m.failed_requests - m.shed_requests) {
        std::fprintf(stderr, "reconciliation broken at rate %g (%s)\n",
                     rate, r.scheme.c_str());
        return 1;
      }
      table.AddRow(
          {std::to_string(static_cast<int>(rate)), r.scheme,
           std::to_string(m.served_requests), std::to_string(m.shed_requests),
           util::TablePrinter::Fmt(
               100.0 * static_cast<double>(m.shed_requests) /
                   static_cast<double>(m.requests),
               3),
           util::TablePrinter::Fmt(m.avg_latency, 3),
           util::TablePrinter::Fmt(m.avg_queue_wait, 3),
           std::to_string(max_depth)});
    }
  }
  std::printf("\n");
  table.Print();
  return 0;
}
