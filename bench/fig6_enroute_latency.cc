// Reproduces Figure 6: average access latency (a) and response ratio (b)
// vs relative cache size under the en-route architecture, for LRU,
// MODULO(4), LNC-R and the coordinated scheme.
//
// Paper shape to verify (see EXPERIMENTS.md): all schemes improve with
// cache size; coordinated is best everywhere; LRU/LNC-R need ~3-10x the
// cache space of coordinated for equal latency; MODULO sits between.

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle(
      "Figure 6",
      "En-route: access latency & response ratio vs cache size");
  auto config = bench::PaperConfig(sim::Architecture::kEnRoute);
  const auto results = bench::RunSweep(config);
  bench::PrintMetricTables(
      results, {{"avg latency, s", bench::Latency},
                {"avg response ratio, s/MB", bench::ResponseRatio}});
  return 0;
}
