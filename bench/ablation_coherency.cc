// Ablation A6 (paper §2 assumption): the analysis assumes cached objects
// are kept up-to-date by a coherency protocol. This bench quantifies that
// assumption: with a fraction of objects updating, how much performance
// does each protocol cost (TTL refetches, invalidation drops) and how
// much staleness does *no* protocol hide? Coordinated caching vs LRU at
// 1% cache on the en-route topology.

#include <cstdio>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Ablation A6",
                    "Coherency protocols under object updates "
                    "(en-route, 1% cache, 10% mutable objects)");

  auto config = bench::PaperConfig(sim::Architecture::kEnRoute);
  config.cache_fractions = {0.01};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated}};
  config.sim.coherency.mutable_fraction = 0.10;
  // Mean update period ~1/6 of the trace duration: mutable objects change
  // several times within the run.
  config.sim.coherency.mean_update_period =
      static_cast<double>(config.workload.num_requests) /
      config.workload.request_rate / 6.0;
  config.sim.coherency.ttl = config.sim.coherency.mean_update_period / 4.0;

  util::TablePrinter table({"protocol", "scheme", "latency(s)", "byte hit",
                            "stale hit", "expired/req", "invalid/req"});
  for (sim::CoherencyProtocol protocol :
       {sim::CoherencyProtocol::kNone, sim::CoherencyProtocol::kTtl,
        sim::CoherencyProtocol::kInvalidation}) {
    config.sim.coherency.protocol = protocol;
    const auto results = bench::RunSweep(config);
    for (const sim::RunResult& r : results) {
      const auto& m = r.metrics;
      table.AddRow(
          {sim::CoherencyProtocolName(protocol), r.scheme,
           util::TablePrinter::Fmt(m.avg_latency, 4),
           util::TablePrinter::Fmt(m.byte_hit_ratio, 4),
           util::TablePrinter::Fmt(m.stale_hit_ratio, 4),
           util::TablePrinter::Fmt(
               static_cast<double>(m.copies_expired) /
                   static_cast<double>(m.requests), 3),
           util::TablePrinter::Fmt(
               static_cast<double>(m.copies_invalidated) /
                   static_cast<double>(m.requests), 3)});
    }
  }
  std::printf("\n");
  table.Print();
  return 0;
}
