#include "common.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace cascache::bench {

namespace {

double BenchScale() {
  const char* env = std::getenv("CASCACHE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

}  // namespace

sim::ExperimentConfig PaperConfig(sim::Architecture arch) {
  const double scale = BenchScale();
  sim::ExperimentConfig config;
  config.network.architecture = arch;
  // Topology defaults already match the paper (Table 1 Tiers parameters;
  // depth-4 fanout-3 tree with d = 0.008 s, g = 5).
  config.workload.num_objects =
      static_cast<uint32_t>(20'000 * scale < 100 ? 100 : 20'000 * scale);
  config.workload.num_requests = static_cast<uint64_t>(400'000 * scale);
  config.workload.num_clients = 1'000;
  config.workload.num_servers = 200;
  config.workload.zipf_theta = 0.8;
  config.workload.seed = 20030305;  // The paper's trace date, more or less.
  // Paper sweep: 0.1% .. 10% relative cache size, log scale.
  config.cache_fractions = {0.001, 0.003, 0.01, 0.03, 0.10};
  config.schemes = PaperSchemes();
  return config;
}

std::vector<schemes::SchemeSpec> PaperSchemes(int modulo_radius) {
  return {{.kind = schemes::SchemeKind::kLru},
          {.kind = schemes::SchemeKind::kModulo,
           .modulo_radius = modulo_radius},
          {.kind = schemes::SchemeKind::kLncr},
          {.kind = schemes::SchemeKind::kCoordinated}};
}

void PrintTitle(const std::string& id, const std::string& title) {
  std::printf("==============================================================="
              "\n%s: %s\n"
              "==============================================================="
              "\n",
              id.c_str(), title.c_str());
}

namespace {

/// Appends results to the CSV named by CASCACHE_RESULTS_CSV, if set, and
/// the per-node counter breakdown to CASCACHE_PER_NODE_CSV likewise.
void MaybeExportCsv(const std::vector<sim::RunResult>& results) {
  if (const char* path = std::getenv("CASCACHE_RESULTS_CSV");
      path != nullptr && path[0] != '\0') {
    const util::Status status = sim::WriteResultsCsv(results, path);
    if (!status.ok()) {
      std::fprintf(stderr, "CSV export failed: %s\n",
                   status.ToString().c_str());
    }
  }
  if (const char* path = std::getenv("CASCACHE_PER_NODE_CSV");
      path != nullptr && path[0] != '\0') {
    const util::Status status = sim::WritePerNodeCsv(results, path);
    if (!status.ok()) {
      std::fprintf(stderr, "per-node CSV export failed: %s\n",
                   status.ToString().c_str());
    }
  }
}

/// One sweep's timing record for BENCH_sweep.json.
struct SweepTiming {
  size_t cells = 0;
  int jobs = 1;
  double total_wall_seconds = 0.0;
  double cell_wall_p50 = 0.0;
  double cell_wall_p95 = 0.0;
  double requests_per_sec = 0.0;  ///< Aggregate replay throughput.
  /// Phase breakdown summed over cells (the simulator's per-run timers).
  double warmup_wall_seconds = 0.0;
  double measure_wall_seconds = 0.0;
  /// Replay throughput per scheme (requests replayed across the scheme's
  /// cells / summed cell wall time), in sweep result order.
  std::vector<std::pair<std::string, double>> scheme_requests_per_sec;
};

std::vector<SweepTiming>& SweepTimings() {
  static std::vector<SweepTiming> timings;
  return timings;
}

/// Rewrites the bench-timing JSON (default BENCH_sweep.json, overridable
/// via CASCACHE_BENCH_JSON; empty disables) with every sweep this process
/// has run, so the perf trajectory of the figure benches is trackable
/// across PRs.
void ExportSweepJson() {
  const char* env = std::getenv("CASCACHE_BENCH_JSON");
  const std::string path =
      env == nullptr ? "BENCH_sweep.json" : std::string(env);
  if (path.empty()) return;
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fputs("[\n", f);
  const std::vector<SweepTiming>& timings = SweepTimings();
  for (size_t i = 0; i < timings.size(); ++i) {
    const SweepTiming& t = timings[i];
    std::fprintf(f,
                 "  {\"sweep\": %zu, \"cells\": %zu, \"jobs\": %d, "
                 "\"total_wall_seconds\": %.6g, \"cell_wall_p50\": %.6g, "
                 "\"cell_wall_p95\": %.6g, \"requests_per_sec\": %.6g, "
                 "\"warmup_wall_seconds\": %.6g, "
                 "\"measure_wall_seconds\": %.6g, "
                 "\"scheme_requests_per_sec\": {",
                 i, t.cells, t.jobs, t.total_wall_seconds, t.cell_wall_p50,
                 t.cell_wall_p95, t.requests_per_sec, t.warmup_wall_seconds,
                 t.measure_wall_seconds);
    for (size_t s = 0; s < t.scheme_requests_per_sec.size(); ++s) {
      const auto& [scheme, rps] = t.scheme_requests_per_sec[s];
      std::fprintf(f, "%s\"%s\": %.6g",
                   s == 0 ? "" : ", ", scheme.c_str(), rps);
    }
    std::fprintf(f, "}}%s\n", i + 1 < timings.size() ? "," : "");
  }
  std::fputs("]\n", f);
  std::fclose(f);
}

double Percentile(std::vector<double> sorted_values, double p) {
  if (sorted_values.empty()) return 0.0;
  const size_t index = std::min(
      sorted_values.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_values.size())));
  return sorted_values[index];
}

}  // namespace

std::vector<sim::RunResult> RunSweep(const sim::ExperimentConfig& config) {
  auto runner_or = sim::ExperimentRunner::Create(config);
  CASCACHE_CHECK_OK(runner_or.status());
  sim::ExperimentRunner& runner = **runner_or;

  const size_t total =
      config.cache_fractions.size() * config.schemes.size();
  const int jobs = std::min<int>(sim::ResolveJobs(config.jobs),
                                 static_cast<int>(std::max<size_t>(1, total)));
  std::fprintf(stderr, "  running %zu cells on %d worker%s...\n", total, jobs,
               jobs == 1 ? "" : "s");
  const auto start = std::chrono::steady_clock::now();
  auto results_or = runner.RunAll();
  CASCACHE_CHECK_OK(results_or.status());
  std::vector<sim::RunResult> results = std::move(results_or).value();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  SweepTiming timing;
  timing.cells = results.size();
  timing.jobs = jobs;
  timing.total_wall_seconds = wall;
  std::vector<double> cell_walls;
  cell_walls.reserve(results.size());
  uint64_t replayed = 0;
  // Per-scheme replay totals, keyed by label in first-seen (sweep) order.
  std::vector<std::string> scheme_order;
  std::vector<double> scheme_requests;
  std::vector<double> scheme_wall;
  for (const sim::RunResult& r : results) {
    std::fprintf(stderr, "  %-14s @ %6.2f%%  %.3fs (%.0f req/s)\n",
                 r.scheme.c_str(), r.cache_fraction * 100, r.wall_seconds,
                 r.requests_per_sec);
    cell_walls.push_back(r.wall_seconds);
    replayed += r.metrics.requests;
    timing.warmup_wall_seconds += r.warmup_seconds;
    timing.measure_wall_seconds += r.measure_seconds;
    size_t s = 0;
    while (s < scheme_order.size() && scheme_order[s] != r.scheme) ++s;
    if (s == scheme_order.size()) {
      scheme_order.push_back(r.scheme);
      scheme_requests.push_back(0.0);
      scheme_wall.push_back(0.0);
    }
    // Full replayed trace of the cell (warm-up included), recovered from
    // the cell's own throughput accounting.
    scheme_requests[s] += r.requests_per_sec * r.wall_seconds;
    scheme_wall[s] += r.wall_seconds;
  }
  std::sort(cell_walls.begin(), cell_walls.end());
  timing.cell_wall_p50 = Percentile(cell_walls, 0.50);
  timing.cell_wall_p95 = Percentile(cell_walls, 0.95);
  timing.requests_per_sec =
      wall > 0.0 ? static_cast<double>(replayed) / wall : 0.0;
  for (size_t s = 0; s < scheme_order.size(); ++s) {
    timing.scheme_requests_per_sec.emplace_back(
        scheme_order[s],
        scheme_wall[s] > 0.0 ? scheme_requests[s] / scheme_wall[s] : 0.0);
  }
  std::fprintf(stderr, "  sweep done in %.3fs\n", wall);
  SweepTimings().push_back(timing);
  ExportSweepJson();

  MaybeExportCsv(results);
  return results;
}

void PrintMetricTables(const std::vector<sim::RunResult>& results,
                       const std::vector<MetricColumn>& metrics) {
  for (const MetricColumn& metric : metrics) {
    std::printf("\n%s\n",
                sim::FormatSweepTable(results, metric.name, metric.selector)
                    .c_str());
  }
}

double Latency(const sim::MetricsSummary& m) { return m.avg_latency; }
double ResponseRatio(const sim::MetricsSummary& m) {
  return m.avg_response_ratio;
}
double ByteHitRatio(const sim::MetricsSummary& m) { return m.byte_hit_ratio; }
double TrafficByteHops(const sim::MetricsSummary& m) {
  return m.avg_traffic_byte_hops;
}
double Hops(const sim::MetricsSummary& m) { return m.avg_hops; }
double LoadBytes(const sim::MetricsSummary& m) { return m.avg_load_bytes; }

}  // namespace cascache::bench
