#include "common.h"

#include <cstdio>
#include <cstdlib>

namespace cascache::bench {

namespace {

double BenchScale() {
  const char* env = std::getenv("CASCACHE_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const double scale = std::atof(env);
  return scale > 0.0 ? scale : 1.0;
}

}  // namespace

sim::ExperimentConfig PaperConfig(sim::Architecture arch) {
  const double scale = BenchScale();
  sim::ExperimentConfig config;
  config.network.architecture = arch;
  // Topology defaults already match the paper (Table 1 Tiers parameters;
  // depth-4 fanout-3 tree with d = 0.008 s, g = 5).
  config.workload.num_objects =
      static_cast<uint32_t>(20'000 * scale < 100 ? 100 : 20'000 * scale);
  config.workload.num_requests = static_cast<uint64_t>(400'000 * scale);
  config.workload.num_clients = 1'000;
  config.workload.num_servers = 200;
  config.workload.zipf_theta = 0.8;
  config.workload.seed = 20030305;  // The paper's trace date, more or less.
  // Paper sweep: 0.1% .. 10% relative cache size, log scale.
  config.cache_fractions = {0.001, 0.003, 0.01, 0.03, 0.10};
  config.schemes = PaperSchemes();
  return config;
}

std::vector<schemes::SchemeSpec> PaperSchemes(int modulo_radius) {
  return {{.kind = schemes::SchemeKind::kLru},
          {.kind = schemes::SchemeKind::kModulo,
           .modulo_radius = modulo_radius},
          {.kind = schemes::SchemeKind::kLncr},
          {.kind = schemes::SchemeKind::kCoordinated}};
}

void PrintTitle(const std::string& id, const std::string& title) {
  std::printf("==============================================================="
              "\n%s: %s\n"
              "==============================================================="
              "\n",
              id.c_str(), title.c_str());
}

namespace {

/// Appends results to the CSV named by CASCACHE_RESULTS_CSV, if set.
void MaybeExportCsv(const std::vector<sim::RunResult>& results) {
  const char* path = std::getenv("CASCACHE_RESULTS_CSV");
  if (path == nullptr || path[0] == '\0') return;
  const util::Status status = sim::WriteResultsCsv(results, path);
  if (!status.ok()) {
    std::fprintf(stderr, "CSV export failed: %s\n",
                 status.ToString().c_str());
  }
}

}  // namespace

std::vector<sim::RunResult> RunSweep(const sim::ExperimentConfig& config) {
  auto runner_or = sim::ExperimentRunner::Create(config);
  CASCACHE_CHECK_OK(runner_or.status());
  sim::ExperimentRunner& runner = **runner_or;

  std::vector<sim::RunResult> results;
  const size_t total =
      config.cache_fractions.size() * config.schemes.size();
  size_t done = 0;
  for (double fraction : config.cache_fractions) {
    for (const schemes::SchemeSpec& spec : config.schemes) {
      auto result_or = runner.RunOne(spec, fraction);
      CASCACHE_CHECK_OK(result_or.status());
      results.push_back(std::move(result_or).value());
      ++done;
      std::fprintf(stderr, "  [%zu/%zu] %s @ %.2f%%\n", done, total,
                   spec.Label().c_str(), fraction * 100);
    }
  }
  MaybeExportCsv(results);
  return results;
}

void PrintMetricTables(const std::vector<sim::RunResult>& results,
                       const std::vector<MetricColumn>& metrics) {
  for (const MetricColumn& metric : metrics) {
    std::printf("\n%s\n",
                sim::FormatSweepTable(results, metric.name, metric.selector)
                    .c_str());
  }
}

double Latency(const sim::MetricsSummary& m) { return m.avg_latency; }
double ResponseRatio(const sim::MetricsSummary& m) {
  return m.avg_response_ratio;
}
double ByteHitRatio(const sim::MetricsSummary& m) { return m.byte_hit_ratio; }
double TrafficByteHops(const sim::MetricsSummary& m) {
  return m.avg_traffic_byte_hops;
}
double Hops(const sim::MetricsSummary& m) { return m.avg_hops; }
double LoadBytes(const sim::MetricsSummary& m) { return m.avg_load_bytes; }

}  // namespace cascache::bench
