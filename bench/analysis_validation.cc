// Analysis validation: cross-checks the trace-driven simulator against
// the closed-form hierarchy model (stacked Che approximations,
// src/analysis/). Two independent implementations of "LRU on the paper's
// proxy tree" agreeing on byte hit ratio, hops and latency is strong
// evidence that neither is buggy; the residual gap is the documented
// IRM-filtering bias of the analytical side.

#include <cstdio>

#include "analysis/hierarchy_model.h"
#include "common.h"
#include "schemes/lru_scheme.h"
#include "sim/simulator.h"
#include "util/table.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Analysis validation",
                    "Trace-driven simulator vs Che-based hierarchy model "
                    "(LRU, depth-4 fanout-3 tree)");

  auto config = bench::PaperConfig(sim::Architecture::kHierarchical);
  auto runner_or = sim::ExperimentRunner::Create(config);
  CASCACHE_CHECK_OK(runner_or.status());
  sim::ExperimentRunner& runner = **runner_or;
  const trace::Workload& workload = runner.workload();

  // Empirical per-object rates for the model.
  analysis::HierarchyModelParams model_params;
  model_params.tree = config.network.tree;
  for (uint64_t count : trace::CountAccesses(workload)) {
    model_params.rates.push_back(static_cast<double>(count));
  }
  for (trace::ObjectId id = 0; id < workload.catalog.num_objects(); ++id) {
    model_params.sizes.push_back(workload.catalog.size(id));
  }

  util::TablePrinter table({"cache", "byte hit (sim)", "byte hit (model)",
                            "hops (sim)", "hops (model)", "latency (sim)",
                            "latency (model)"});
  for (double fraction : {0.003, 0.01, 0.03, 0.10}) {
    auto result_or =
        runner.RunOne({.kind = schemes::SchemeKind::kLru}, fraction);
    CASCACHE_CHECK_OK(result_or.status());
    const sim::MetricsSummary& sim_metrics = result_or->metrics;

    model_params.capacity_per_node = result_or->capacity_bytes;
    auto model_or = analysis::SolveHierarchyLru(model_params);
    CASCACHE_CHECK_OK(model_or.status());

    char label[32];
    std::snprintf(label, sizeof(label), "%.1f%%", fraction * 100);
    table.AddRow({label,
                  util::TablePrinter::Fmt(sim_metrics.byte_hit_ratio, 4),
                  util::TablePrinter::Fmt(model_or->byte_hit_ratio, 4),
                  util::TablePrinter::Fmt(sim_metrics.avg_hops, 4),
                  util::TablePrinter::Fmt(model_or->avg_hops, 4),
                  util::TablePrinter::Fmt(sim_metrics.avg_latency, 4),
                  util::TablePrinter::Fmt(model_or->avg_latency, 4)});
    std::fprintf(stderr, "  validated %.1f%%\n", fraction * 100);
  }
  std::printf("\n");
  table.Print();
  return 0;
}
