// Reproduces Figure 7: byte hit ratio (a) and network traffic in
// byte*hops (b) vs relative cache size under the en-route architecture.
//
// Paper shape: coordinated has the highest byte hit ratio, with the gap
// largest at small cache sizes; coordinated cuts network traffic by
// roughly 30-45% vs the baselines at 10% cache size.

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Figure 7",
                    "En-route: byte hit ratio & network traffic vs cache size");
  auto config = bench::PaperConfig(sim::Architecture::kEnRoute);
  const auto results = bench::RunSweep(config);
  bench::PrintMetricTables(
      results, {{"byte hit ratio", bench::ByteHitRatio},
                {"avg traffic, byte*hops", bench::TrafficByteHops}});
  return 0;
}
