// Ablation A10 (fault plane): how gracefully does coordination degrade
// under node churn? The paper's placement algorithm assumes stable
// caches; here every cache crashes with mean time between failures
// swept from "never" down to twice the trace duration's scale, each
// crash cold-restarting the node (contents, d-cache, and frequency
// windows lost). The claim under test: Coordinated degrades *toward*
// LRU as churn destroys its soft state, it never falls below LRU —
// losing placements reverts nodes to local-quality behaviour, it does
// not poison them.

#include <cstdio>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Ablation A10",
                    "Degradation under node crash churn "
                    "(hierarchical, 3% cache, cold restarts)");

  auto config = bench::PaperConfig(sim::Architecture::kHierarchical);
  config.cache_fractions = {0.03};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated}};

  // The synthetic trace arrives at ~request_rate req/s; express churn
  // relative to its duration so CASCACHE_BENCH_SCALE keeps the sweep
  // meaningful at any size.
  const double trace_seconds =
      static_cast<double>(config.workload.num_requests) /
      config.workload.request_rate;

  struct Point {
    const char* label;
    double mtbf;  ///< 0 = fault plane off.
  };
  const Point points[] = {
      {"off", 0.0},
      {"mtbf=2.0x trace", 2.0 * trace_seconds},
      {"mtbf=0.5x trace", 0.5 * trace_seconds},
      {"mtbf=0.1x trace", 0.1 * trace_seconds},
      {"mtbf=0.02x trace", 0.02 * trace_seconds},
  };

  util::TablePrinter table({"crash rate", "scheme", "latency(s)", "byte hit",
                            "crashes", "degraded/req"});
  for (const Point& point : points) {
    config.sim.faults = sim::FaultScheduleConfig();
    config.sim.faults.node_crash_mtbf = point.mtbf;
    config.sim.faults.node_downtime = trace_seconds / 50.0;
    const auto results = bench::RunSweep(config);
    for (const sim::RunResult& r : results) {
      const auto& m = r.metrics;
      table.AddRow(
          {point.label, r.scheme, util::TablePrinter::Fmt(m.avg_latency, 4),
           util::TablePrinter::Fmt(m.byte_hit_ratio, 4),
           std::to_string(m.crashes_applied),
           util::TablePrinter::Fmt(
               static_cast<double>(m.degraded_decisions) /
                   static_cast<double>(m.requests),
               3)});
    }
  }
  std::printf("\n");
  table.Print();
  return 0;
}
