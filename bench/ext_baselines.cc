// Extended baseline comparison (beyond the paper's three comparators):
// adds GreedyDual-Size (GDS, cited by the paper as the cost-aware
// replacement family [8]), perfect in-cache LFU, and the clairvoyant
// STATIC placement (each cache frozen with its locally hottest objects
// after the warm-up) to the sweep, on both architectures at a fixed 1%
// cache size. The questions this answers: can a *stronger single-cache
// replacement policy* close the gap to coordinated placement, and how
// much of coordination's win is popularity knowledge vs coordination
// itself? (The paper's thesis predicts replacement alone is not enough.)

#include <cstdio>

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Extended baselines",
                    "LRU / LFU / GDS / MODULO / LNC-R / Coordinated "
                    "(1% cache)");

  for (auto arch : {sim::Architecture::kEnRoute,
                    sim::Architecture::kHierarchical}) {
    auto config = bench::PaperConfig(arch);
    config.cache_fractions = {0.01};
    config.schemes = {{.kind = schemes::SchemeKind::kLru},
                      {.kind = schemes::SchemeKind::kLfu},
                      {.kind = schemes::SchemeKind::kGds},
                      {.kind = schemes::SchemeKind::kModulo,
                       .modulo_radius = 4},
                      {.kind = schemes::SchemeKind::kLncr},
                      {.kind = schemes::SchemeKind::kStatic},
                      {.kind = schemes::SchemeKind::kCoordinated}};
    std::printf("\n--- %s ---\n", sim::ArchitectureName(arch));
    const auto results = bench::RunSweep(config);
    bench::PrintMetricTables(
        results, {{"avg latency, s", bench::Latency},
                  {"byte hit ratio", bench::ByteHitRatio},
                  {"avg cache load, bytes/request", bench::LoadBytes}});
  }
  return 0;
}
