// Micro benchmark M3: end-to-end simulator throughput — how many requests
// per second each scheme sustains on the paper topologies. This bounds
// the wall-clock cost of the figure sweeps and shows the coordinated
// scheme's decision machinery (piggyback assembly + DP + placements)
// costs ~3x a plain LRU walk — while LNC-R's cache-everywhere insertions
// into the NCL-ordered store cost ~6x.

#include <benchmark/benchmark.h>

#include "schemes/scheme.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace {

using namespace cascache;

struct Env {
  trace::Workload workload;
  std::unique_ptr<sim::Network> network;
};

Env* BuildEnv(sim::Architecture arch) {
  trace::WorkloadParams wl;
  wl.num_objects = 10'000;
  wl.num_requests = 50'000;
  wl.num_clients = 500;
  wl.num_servers = 100;
  auto workload_or = trace::GenerateWorkload(wl);
  CASCACHE_CHECK_OK(workload_or.status());
  auto* env = new Env{std::move(workload_or).value(), nullptr};
  sim::NetworkParams params;
  params.architecture = arch;
  auto net_or = sim::Network::Build(params, &env->workload.catalog);
  CASCACHE_CHECK_OK(net_or.status());
  env->network = std::move(net_or).value();
  return env;
}

Env* EnRouteEnv() {
  static Env* env = BuildEnv(sim::Architecture::kEnRoute);
  return env;
}

Env* HierEnv() {
  static Env* env = BuildEnv(sim::Architecture::kHierarchical);
  return env;
}

void RunSchemeBenchmark(benchmark::State& state, Env* env,
                        schemes::SchemeKind kind) {
  schemes::SchemeSpec spec;
  spec.kind = kind;
  auto scheme_or = schemes::MakeScheme(spec);
  CASCACHE_CHECK_OK(scheme_or.status());
  sim::Simulator simulator(env->network.get(), scheme_or->get());
  // Configure 1% caches once; replay the trace cyclically.
  const uint64_t capacity = env->workload.catalog.total_bytes() / 100;
  CASCACHE_CHECK_OK(simulator.Run(env->workload, capacity));

  size_t i = 0;
  const auto& requests = env->workload.requests;
  for (auto _ : state) {
    simulator.Step(requests[i], /*collect=*/false);
    i = (i + 1) % requests.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_EnRouteLru(benchmark::State& state) {
  RunSchemeBenchmark(state, EnRouteEnv(), schemes::SchemeKind::kLru);
}
BENCHMARK(BM_EnRouteLru);

void BM_EnRouteCoordinated(benchmark::State& state) {
  RunSchemeBenchmark(state, EnRouteEnv(), schemes::SchemeKind::kCoordinated);
}
BENCHMARK(BM_EnRouteCoordinated);

void BM_EnRouteLncr(benchmark::State& state) {
  RunSchemeBenchmark(state, EnRouteEnv(), schemes::SchemeKind::kLncr);
}
BENCHMARK(BM_EnRouteLncr);

void BM_HierLru(benchmark::State& state) {
  RunSchemeBenchmark(state, HierEnv(), schemes::SchemeKind::kLru);
}
BENCHMARK(BM_HierLru);

void BM_HierCoordinated(benchmark::State& state) {
  RunSchemeBenchmark(state, HierEnv(), schemes::SchemeKind::kCoordinated);
}
BENCHMARK(BM_HierCoordinated);

}  // namespace
