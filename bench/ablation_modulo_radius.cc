// Ablation A1 (paper §4.1/§4.2 remarks): MODULO's cache radius is
// configuration-sensitive. Under the en-route topology a radius around 4
// is best; under the hierarchical tree any radius > 1 leaves caches
// unused and radius 1 (= LRU) wins. This bench sweeps the radius on both
// architectures at a fixed 1% cache size.

#include <cstdio>

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Ablation A1", "MODULO cache radius sweep (1% cache)");

  for (auto arch : {sim::Architecture::kEnRoute,
                    sim::Architecture::kHierarchical}) {
    auto config = bench::PaperConfig(arch);
    config.cache_fractions = {0.01};
    config.schemes.clear();
    for (int radius : {1, 2, 3, 4, 5, 6}) {
      config.schemes.push_back(
          {.kind = schemes::SchemeKind::kModulo, .modulo_radius = radius});
    }
    std::printf("\n--- %s ---\n", sim::ArchitectureName(arch));
    const auto results = bench::RunSweep(config);
    bench::PrintMetricTables(
        results, {{"avg latency, s", bench::Latency},
                  {"byte hit ratio", bench::ByteHitRatio}});
  }
  return 0;
}
