// scale_replay: paper-scale replay throughput and memory bench.
//
// Measures, for one trace scale per process invocation, the wall-clock
// replay throughput and the process peak RSS when replaying a v2 trace
// through the mmap path. One scale per process because VmHWM is
// monotone over the process lifetime — mixing scales in one run would
// report only the largest.
//
//   scale_replay --requests=10000000 --trace-file=/tmp/t10m.cctr
//   scale_replay --requests=100000000 --trace-file=/tmp/t100m.cctr \
//       --release --schemes=coordinated
//
// If --trace-file is absent on disk it is stream-generated first
// (GenerateWorkloadToFile, O(1) resident) and kept, so consecutive
// invocations at the same scale reuse it. Emits one JSON record on
// stdout for hand-merging into BENCH_sweep.json:
//
//   {"bench": "scale_replay", "requests": ..., "wall_seconds": ...,
//    "requests_per_sec": ..., "peak_rss_kb": ..., "rss_before_kb": ...,
//    "release_pages": ..., "trace_bytes": ...,
//    "scheme_requests_per_sec": {...}}
//
// peak_rss_kb is VmHWM: it includes touched pages of the file-backed
// mapping, which is why --release (MADV_DONTNEED of consumed request
// pages) is the mode that demonstrates O(1)-in-trace-length residency.

#include <sys/resource.h>
#include <sys/stat.h>

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "trace/trace_io.h"
#include "util/flags.h"

namespace {

using namespace cascache;

long PeakRssKb() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r"); f != nullptr) {
    char line[256];
    long kb = -1;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) break;
    }
    std::fclose(f);
    if (kb >= 0) return kb;
  }
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) return usage.ru_maxrss;
  return -1;
}

util::StatusOr<schemes::SchemeSpec> ParseScheme(const std::string& name) {
  schemes::SchemeSpec spec;
  if (name == "lru") {
    spec.kind = schemes::SchemeKind::kLru;
  } else if (name == "modulo") {
    spec.kind = schemes::SchemeKind::kModulo;
  } else if (name == "lncr") {
    spec.kind = schemes::SchemeKind::kLncr;
  } else if (name == "coordinated") {
    spec.kind = schemes::SchemeKind::kCoordinated;
  } else {
    return util::Status::InvalidArgument(
        "unknown scheme '" + name +
        "' (expected lru|modulo|lncr|coordinated)");
  }
  return spec;
}

util::Status RunMain(int argc, char** argv) {
  util::FlagParser flags;
  uint64_t requests, objects, clients, servers, seed;
  std::string trace_file, schemes_text;
  double cache_fraction;
  bool release, help;
  flags.AddBool("help", false, "print this help", &help);
  flags.AddUint64("requests", 10'000'000, "trace length", &requests);
  flags.AddUint64("objects", 100'000, "object population (paper subtrace)",
                  &objects);
  flags.AddUint64("clients", 2'000, "client population", &clients);
  flags.AddUint64("servers", 500, "origin server count", &servers);
  flags.AddUint64("seed", 42, "workload seed", &seed);
  flags.AddString("trace-file", "", "v2 trace path; generated if missing",
                  &trace_file);
  flags.AddString("schemes", "coordinated",
                  "comma list of lru|modulo|lncr|coordinated", &schemes_text);
  flags.AddDouble("cache", 0.01, "relative cache size", &cache_fraction);
  flags.AddBool("release", false,
                "advise-release consumed trace pages during replay "
                "(O(1) residency mode)",
                &release);
  CASCACHE_RETURN_IF_ERROR(flags.Parse(argc - 1, argv + 1));
  if (help) {
    std::fputs(flags.Usage("scale_replay").c_str(), stdout);
    return util::Status::Ok();
  }
  if (trace_file.empty()) {
    return util::Status::InvalidArgument("--trace-file is required");
  }

  sim::ExperimentConfig config;
  config.workload.num_objects = static_cast<uint32_t>(objects);
  config.workload.num_requests = requests;
  config.workload.num_clients = static_cast<uint32_t>(clients);
  config.workload.num_servers = static_cast<uint32_t>(servers);
  config.workload.seed = seed;
  config.cache_fractions = {cache_fraction};
  config.release_trace_pages = release;
  config.jobs = 1;
  std::string schemes_json;
  for (size_t pos = 0; pos < schemes_text.size();) {
    const size_t comma = schemes_text.find(',', pos);
    const size_t end = comma == std::string::npos ? schemes_text.size() : comma;
    CASCACHE_ASSIGN_OR_RETURN(const schemes::SchemeSpec spec,
                              ParseScheme(schemes_text.substr(pos, end - pos)));
    config.schemes.push_back(spec);
    pos = end + 1;
  }
  if (config.schemes.empty()) {
    return util::Status::InvalidArgument("no schemes given");
  }

  // Reuse the trace across invocations at the same scale; generate it
  // streaming on first use.
  struct stat st;
  if (::stat(trace_file.c_str(), &st) != 0) {
    std::fprintf(stderr, "generating %" PRIu64 "-request trace %s ...\n",
                 requests, trace_file.c_str());
    CASCACHE_RETURN_IF_ERROR(
        trace::GenerateWorkloadToFile(config.workload, trace_file));
    if (::stat(trace_file.c_str(), &st) != 0) {
      return util::Status::IoError("stat after generate: " + trace_file);
    }
  }
  const uint64_t trace_bytes = static_cast<uint64_t>(st.st_size);

  CASCACHE_ASSIGN_OR_RETURN(
      std::unique_ptr<sim::ExperimentRunner> runner,
      sim::ExperimentRunner::CreateFromTrace(config, trace_file));
  if (runner->mapped_trace() == nullptr) {
    return util::Status::InvalidArgument("scale bench expects a v2 trace: " +
                                         trace_file);
  }
  const uint64_t actual_requests = runner->view().requests.size();
  const long rss_before_kb = PeakRssKb();

  const auto t0 = std::chrono::steady_clock::now();
  CASCACHE_ASSIGN_OR_RETURN(const std::vector<sim::RunResult> results,
                            runner->RunAll());
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  const long peak_rss_kb = PeakRssKb();

  std::string per_scheme;
  for (const sim::RunResult& r : results) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6g", per_scheme.empty() ? "" : ", ",
                  r.scheme.c_str(), r.requests_per_sec);
    per_scheme += buf;
  }
  std::printf(
      "{\"bench\": \"scale_replay\", \"requests\": %" PRIu64
      ", \"schemes\": %zu, \"cache\": %g, \"release_pages\": %s, "
      "\"trace_bytes\": %" PRIu64
      ", \"wall_seconds\": %.6g, \"requests_per_sec\": %.6g, "
      "\"rss_before_kb\": %ld, \"peak_rss_kb\": %ld, "
      "\"scheme_requests_per_sec\": {%s}}\n",
      actual_requests, config.schemes.size(), cache_fraction,
      release ? "true" : "false", trace_bytes, wall,
      static_cast<double>(actual_requests) *
          static_cast<double>(results.size()) / wall,
      rss_before_kb, peak_rss_kb, per_scheme.c_str());
  return util::Status::Ok();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Status status = RunMain(argc, argv);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}
