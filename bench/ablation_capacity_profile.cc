// Ablation A8: where should cache capacity live in a hierarchy? The paper
// provisions every cache equally; this bench redistributes the same total
// budget across tree levels (capacity proportional to growth^level,
// growth < 1 favors leaves, > 1 favors the root) and compares coordinated
// caching against LRU. Coordinated placement should adapt to the profile
// better than blind replication.

#include <cstdio>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Ablation A8",
                    "Per-level capacity profiles (hierarchical, 1% mean "
                    "cache, constant total budget)");

  auto config = bench::PaperConfig(sim::Architecture::kHierarchical);
  config.cache_fractions = {0.01};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated}};

  util::TablePrinter table(
      {"level growth", "scheme", "latency(s)", "byte hit", "hops"});
  for (double growth : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    config.sim.level_capacity_growth = growth;
    const auto results = bench::RunSweep(config);
    for (const sim::RunResult& r : results) {
      table.AddRow({util::TablePrinter::Fmt(growth, 3), r.scheme,
                    util::TablePrinter::Fmt(r.metrics.avg_latency, 4),
                    util::TablePrinter::Fmt(r.metrics.byte_hit_ratio, 4),
                    util::TablePrinter::Fmt(r.metrics.avg_hops, 4)});
    }
  }
  std::printf("\n");
  table.Print();
  return 0;
}
