// Reproduces Table 1: system parameters of the en-route architecture's
// Tiers-generated topology (node/link counts, mean WAN/MAN link delays),
// plus the ~12-hop average routing path length reported in §3.2.

#include <cstdio>

#include "common.h"
#include "sim/network.h"
#include "topology/tiers.h"
#include "trace/synthetic.h"
#include "util/table.h"

int main() {
  using namespace cascache;

  bench::PrintTitle("Table 1",
                    "System parameters for the en-route architecture");

  auto topo_or = topology::GenerateTiers(topology::TiersParams{});
  CASCACHE_CHECK_OK(topo_or.status());
  const topology::TiersTopology& topo = *topo_or;

  // Average routing path length requires client/server placement: build
  // the simulation network over a small catalog.
  trace::WorkloadParams wl;
  wl.num_objects = 1000;
  wl.num_requests = 1;
  wl.num_servers = 200;
  auto workload_or = trace::GenerateWorkload(wl);
  CASCACHE_CHECK_OK(workload_or.status());
  sim::NetworkParams net_params;
  net_params.architecture = sim::Architecture::kEnRoute;
  auto net_or = sim::Network::Build(net_params, &workload_or->catalog);
  CASCACHE_CHECK_OK(net_or.status());

  util::TablePrinter table({"Parameter", "Paper", "This build"});
  table.AddRow({"Total number of nodes", "100",
                std::to_string(topo.graph.num_nodes())});
  table.AddRow({"Number of WAN nodes", "50",
                std::to_string(topo.wan_ids.size())});
  table.AddRow({"Number of MAN nodes", "50",
                std::to_string(topo.man_ids.size())});
  table.AddRow({"Number of network links", "173",
                std::to_string(topo.graph.num_edges())});
  table.AddRow({"Average delay of WAN links (s)", "0.146",
                util::TablePrinter::Fmt(topo.MeanWanLinkDelay(), 3)});
  table.AddRow({"Average delay of MAN links (s)", "0.018",
                util::TablePrinter::Fmt(topo.MeanManLinkDelay(), 3)});
  table.AddRow({"WAN:MAN delay ratio", "~8:1",
                util::TablePrinter::Fmt(
                    topo.MeanWanLinkDelay() / topo.MeanManLinkDelay(), 3) +
                    ":1"});
  table.AddRow({"Avg client-server path (hops)", "~12",
                util::TablePrinter::Fmt(
                    (*net_or)->MeanClientServerHops(), 3)});
  table.Print();
  return 0;
}
