// Micro benchmark M1 (paper §2.4): the dynamic program is O(k^2) in the
// number of candidate caches on the path, which the paper argues is cheap
// because k is small in practice. Measures the DP at realistic and
// stress path lengths, against the exponential brute force at small n.

#include <benchmark/benchmark.h>

#include "core/placement.h"
#include "util/random.h"

namespace {

cascache::core::PlacementInput MakeInput(size_t n, uint64_t seed) {
  cascache::util::Rng rng(seed);
  cascache::core::PlacementInput input;
  input.f.resize(n);
  input.m.resize(n);
  input.l.resize(n);
  double cum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    input.f[i] = rng.NextDouble(0.0, 10.0);
    cum += rng.NextDouble(0.05, 1.0);
    input.m[i] = cum;
    input.l[i] = rng.NextBool(0.4) ? 0.0 : rng.NextDouble(0.0, 15.0);
  }
  std::sort(input.f.rbegin(), input.f.rend());
  return input;
}

void BM_PlacementDP(benchmark::State& state) {
  const auto input = MakeInput(static_cast<size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cascache::core::SolvePlacementDP(input));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlacementDP)->RangeMultiplier(2)->Range(4, 512)->Complexity();

void BM_PlacementBruteForce(benchmark::State& state) {
  const auto input = MakeInput(static_cast<size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cascache::core::SolvePlacementBruteForce(input));
  }
}
BENCHMARK(BM_PlacementBruteForce)->DenseRange(4, 20, 4);

void BM_PlacementValidation(benchmark::State& state) {
  const auto input = MakeInput(static_cast<size_t>(state.range(0)), 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cascache::core::ValidatePlacementInput(input));
  }
}
BENCHMARK(BM_PlacementValidation)->Arg(16)->Arg(128);

}  // namespace
