// Ablation A2 (paper §3.2 remark): the coordinated scheme's results are
// insensitive to the d-cache size once it can hold the same order of
// descriptors as the main cache holds objects. Sweeps the d-cache ratio
// at a fixed 1% cache size on the en-route architecture.

#include <cstdio>

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle(
      "Ablation A2",
      "Coordinated caching vs d-cache size (en-route, 1% cache)");

  auto config = bench::PaperConfig(sim::Architecture::kEnRoute);
  config.cache_fractions = {0.01};
  config.schemes = {{.kind = schemes::SchemeKind::kCoordinated}};

  std::printf("\n%-14s %-12s %-14s %-10s\n", "dcache ratio", "latency(s)",
              "byte hit", "hops");
  for (double ratio : {0.5, 1.0, 3.0, 8.0}) {
    config.sim.dcache_ratio = ratio;
    const auto results = bench::RunSweep(config);
    const auto& m = results[0].metrics;
    std::printf("%-14.1f %-12.4f %-14.4f %-10.3f\n", ratio, m.avg_latency,
                m.byte_hit_ratio, m.avg_hops);
  }
  return 0;
}
