// Ablation A5 (paper §2: the framework is cost-function agnostic): run
// the coordinated scheme optimizing different cost interpretations —
// latency (the paper's evaluation setting), bandwidth (byte-hops), pure
// hop count — and report the *physical* metrics under each. Optimizing a
// metric should (weakly) favor it: the latency-optimizing run has the
// best latency, the bandwidth/hop-optimizing runs the best traffic/hops.

#include <cstdio>

#include "common.h"
#include "sim/cost_model.h"
#include "util/table.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Ablation A5",
                    "Cost-model sweep for coordinated caching "
                    "(en-route, 1% cache)");

  auto config = bench::PaperConfig(sim::Architecture::kEnRoute);
  config.cache_fractions = {0.01};
  config.schemes = {{.kind = schemes::SchemeKind::kCoordinated}};

  util::TablePrinter table({"optimized cost", "latency(s)", "resp(s/MB)",
                            "traffic(B*hop)", "hops", "byte hit"});
  for (sim::CostModelKind kind :
       {sim::CostModelKind::kLatency, sim::CostModelKind::kBandwidth,
        sim::CostModelKind::kHops, sim::CostModelKind::kWeighted}) {
    config.sim.cost_model.kind = kind;
    const auto results = bench::RunSweep(config);
    const auto& m = results[0].metrics;
    table.AddRow({sim::CostModelKindName(kind),
                  util::TablePrinter::Fmt(m.avg_latency, 4),
                  util::TablePrinter::Fmt(m.avg_response_ratio, 4),
                  util::TablePrinter::Fmt(m.avg_traffic_byte_hops, 4),
                  util::TablePrinter::Fmt(m.avg_hops, 4),
                  util::TablePrinter::Fmt(m.byte_hit_ratio, 4)});
  }
  std::printf("\n");
  table.Print();
  return 0;
}
