// Tiered-store A/B: what do two-tier nodes and sibling cooperation buy
// (or cost) on the paper workload? Three configurations per scheme on
// the hierarchical topology at 3% cache:
//
//   single-tier     — the baseline flat store (tiers off, siblings off)
//   tiered          — RAM tier at 10% of each node's capacity, with a
//                     disk-hit service cost the RAM tier avoids
//   tiered+sibling  — the same, plus ICP-style sibling probes on miss
//
// Because the RAM tier is inclusive (RAM ⊆ disk), hit ratios and
// placement decisions are identical across the A/B legs with siblings
// off — only the tier-service split moves. The table therefore reports
// where hits land (RAM share), promotion traffic, sibling outcomes, and
// the end-to-end latency including tier service costs.

#include <cstdio>

#include "common.h"
#include "util/table.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Tiered A/B",
                    "Two-tier stores and sibling cooperation "
                    "(hierarchical, 3% cache)");

  auto base = bench::PaperConfig(sim::Architecture::kHierarchical);
  base.cache_fractions = {0.03};
  base.schemes = {{.kind = schemes::SchemeKind::kLru},
                  {.kind = schemes::SchemeKind::kCoordinated}};

  struct Leg {
    const char* label;
    bool tiered;
    bool sibling;
  };
  const Leg legs[] = {
      {"single-tier", false, false},
      {"tiered", true, false},
      {"tiered+sibling", true, true},
  };

  util::TablePrinter table({"config", "scheme", "latency(s)", "byte hit",
                            "ram share", "promo/req", "sib hit/probe"});
  for (const Leg& leg : legs) {
    auto config = base;
    if (leg.tiered) {
      config.sim.tier.ram_fraction = 0.1;
      // Disk hits cost 5 ms of service the RAM tier avoids; the analytic
      // replay folds the charge into the latency metric.
      config.sim.tier.ram_hit_cost = 0.0;
      config.sim.tier.disk_hit_cost = 0.005;
    }
    config.sim.sibling.enabled = leg.sibling;
    const auto results = bench::RunSweep(config);
    for (const sim::RunResult& r : results) {
      const auto& m = r.metrics;
      const uint64_t tier_hits = m.ram_hits + m.disk_hits;
      table.AddRow(
          {leg.label, r.scheme, util::TablePrinter::Fmt(m.avg_latency, 4),
           util::TablePrinter::Fmt(m.byte_hit_ratio, 4),
           tier_hits == 0
               ? "-"
               : util::TablePrinter::Fmt(static_cast<double>(m.ram_hits) /
                                             static_cast<double>(tier_hits),
                                         3),
           util::TablePrinter::Fmt(static_cast<double>(m.promotions) /
                                       static_cast<double>(m.requests),
                                   3),
           m.sibling_probes == 0
               ? "-"
               : util::TablePrinter::Fmt(
                     static_cast<double>(m.sibling_hits) /
                         static_cast<double>(m.sibling_probes),
                     3)});
    }
  }
  std::printf("\n");
  table.Print();
  return 0;
}
