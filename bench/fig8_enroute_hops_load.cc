// Reproduces Figure 8: hops traveled before hitting the object (a) and
// aggregate cache read/write load per request (b) vs relative cache size
// under the en-route architecture.
//
// Paper shape: coordinated needs the fewest hops; LRU/LNC-R impose 3-24x
// its read/write load (they write a copy at every node on every miss
// path); coordinated's load is mostly reads (75-80%).

#include <cstdio>

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Figure 8",
                    "En-route: hops to hit & cache read/write load");
  auto config = bench::PaperConfig(sim::Architecture::kEnRoute);
  const auto results = bench::RunSweep(config);
  bench::PrintMetricTables(
      results, {{"avg hops to hit", bench::Hops},
                {"avg cache load, bytes/request", bench::LoadBytes}});

  // Supplementary: the read share of coordinated caching's load (the
  // paper reports 75-80%).
  std::printf("read share of load (Coordinated):\n");
  for (const sim::RunResult& r : results) {
    if (r.scheme == "Coordinated") {
      std::printf("  cache %5.2f%%: %.1f%%\n", r.cache_fraction * 100,
                  r.metrics.read_load_share * 100);
    }
  }
  return 0;
}
