// Ablation A3 (paper §3.1): the Boeing subtrace follows a Zipf-like
// popularity law; the paper argues the *relative* ordering of schemes is
// insensitive to the exact skew. Sweeps the Zipf exponent at a fixed 1%
// cache size on the en-route architecture.

#include <cstdio>

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Ablation A3",
                    "Zipf exponent sweep (en-route, 1% cache)");

  for (double theta : {0.6, 0.8, 1.0}) {
    auto config = bench::PaperConfig(sim::Architecture::kEnRoute);
    config.cache_fractions = {0.01};
    config.workload.zipf_theta = theta;
    std::printf("\n--- zipf theta = %.1f ---\n", theta);
    const auto results = bench::RunSweep(config);
    bench::PrintMetricTables(
        results, {{"avg latency, s", bench::Latency},
                  {"byte hit ratio", bench::ByteHitRatio}});
  }
  return 0;
}
