// Ablation A4 (paper §3.2 remark): the paper tested "a wide range of d
// and g values and different tree shapes" and observed the same relative
// trends. Sweeps tree depth/fanout and the delay growth factor at a fixed
// 1% cache size.

#include <cstdio>

#include "common.h"

int main() {
  using namespace cascache;
  bench::PrintTitle("Ablation A4",
                    "Hierarchy shape & delay growth sweep (1% cache)");

  struct Shape {
    int depth;
    int fanout;
    double growth;
  };
  for (const Shape& shape : {Shape{3, 4, 5.0}, Shape{4, 3, 5.0},
                             Shape{4, 3, 2.0}, Shape{5, 2, 5.0}}) {
    auto config = bench::PaperConfig(sim::Architecture::kHierarchical);
    config.cache_fractions = {0.01};
    config.network.tree.depth = shape.depth;
    config.network.tree.fanout = shape.fanout;
    config.network.tree.growth = shape.growth;
    std::printf("\n--- depth=%d fanout=%d g=%.0f ---\n", shape.depth,
                shape.fanout, shape.growth);
    const auto results = bench::RunSweep(config);
    bench::PrintMetricTables(
        results, {{"avg latency, s", bench::Latency},
                  {"byte hit ratio", bench::ByteHitRatio}});
  }
  return 0;
}
