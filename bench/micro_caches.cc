// Micro benchmark M2 (paper §2.4): per-operation cost of the cache data
// structures — O(log m) NCL-heap adjustment for cached objects, O(1)-ish
// d-cache maintenance, and LRU list operations — plus the greedy eviction
// planning that computes the piggybacked cost loss l_i.

#include <benchmark/benchmark.h>

#include "cache/dcache.h"
#include "cache/flat_lru.h"
#include "cache/ncl_cache.h"
#include "schemes/scheme.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/random.h"

namespace {

using cascache::cache::DCache;
using cascache::cache::FlatLru;
using cascache::cache::NclCache;
using cascache::cache::ObjectDescriptor;
using cascache::trace::ObjectId;
using cascache::util::Rng;

void BM_LruInsertEvict(benchmark::State& state) {
  const int working_set = static_cast<int>(state.range(0));
  FlatLru cache(static_cast<uint64_t>(working_set) * 100 / 2);
  Rng rng(1);
  ObjectId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Insert(next++ % (2 * working_set), 100));
  }
}
BENCHMARK(BM_LruInsertEvict)->Arg(1000)->Arg(100000);

void BM_LruTouch(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  FlatLru cache(static_cast<uint64_t>(n) * 100);
  for (ObjectId id = 0; id < static_cast<ObjectId>(n); ++id) {
    cache.Insert(id, 100);
  }
  Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.Touch(static_cast<ObjectId>(rng.NextUint64(n))));
  }
}
BENCHMARK(BM_LruTouch)->Arg(1000)->Arg(100000);

void BM_NclInsertEvict(benchmark::State& state) {
  const int working_set = static_cast<int>(state.range(0));
  NclCache cache(static_cast<uint64_t>(working_set) * 100 / 2);
  Rng rng(3);
  ObjectId next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.Insert(next++ % (2 * working_set), 100,
                                          rng.NextDouble(0.0, 10.0)));
  }
}
BENCHMARK(BM_NclInsertEvict)->Arg(1000)->Arg(100000);

void BM_NclUpdateLoss(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  NclCache cache(static_cast<uint64_t>(n) * 100);
  Rng rng(4);
  for (ObjectId id = 0; id < static_cast<ObjectId>(n); ++id) {
    cache.Insert(id, 100, rng.NextDouble(0.0, 10.0));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.UpdateLoss(static_cast<ObjectId>(rng.NextUint64(n)),
                         rng.NextDouble(0.0, 10.0)));
  }
}
BENCHMARK(BM_NclUpdateLoss)->Arg(1000)->Arg(100000);

void BM_NclPlanEviction(benchmark::State& state) {
  // Planning l_i happens on every request ascent in coordinated caching.
  const int n = 10000;
  NclCache cache(static_cast<uint64_t>(n) * 100);
  Rng rng(5);
  for (ObjectId id = 0; id < n; ++id) {
    cache.Insert(id, 100, rng.NextDouble(0.0, 10.0));
  }
  const uint64_t need = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.PlanEviction(need));
  }
}
BENCHMARK(BM_NclPlanEviction)->Arg(100)->Arg(1000)->Arg(10000);

void BM_NclPlanEvictionScratch(benchmark::State& state) {
  // Same planning work through the allocation-free path the coordinated
  // scheme uses on its ascent: one EvictionPlan reused across calls.
  const int n = 10000;
  NclCache cache(static_cast<uint64_t>(n) * 100);
  Rng rng(5);
  for (ObjectId id = 0; id < n; ++id) {
    cache.Insert(id, 100, rng.NextDouble(0.0, 10.0));
  }
  const uint64_t need = static_cast<uint64_t>(state.range(0));
  NclCache::EvictionPlan plan;
  for (auto _ : state) {
    cache.PlanEvictionInto(need, &plan);
    benchmark::DoNotOptimize(plan.cost_loss);
  }
}
BENCHMARK(BM_NclPlanEvictionScratch)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DCacheChurn(benchmark::State& state) {
  const int capacity = static_cast<int>(state.range(0));
  DCache dcache(static_cast<size_t>(capacity));
  Rng rng(6);
  for (auto _ : state) {
    ObjectDescriptor desc;
    desc.size = 100;
    desc.frequency = rng.NextDouble(0.0, 10.0);
    benchmark::DoNotOptimize(
        dcache.Insert(static_cast<ObjectId>(rng.NextUint64(4 * capacity)),
                      desc));
  }
}
BENCHMARK(BM_DCacheChurn)->Arg(1000)->Arg(100000);

void BM_ReplayHotPath(benchmark::State& state) {
  // The full Simulator::Step hot path — path lookup, per-hop admission,
  // scheme handlers, metric recording — measured per replayed request.
  // This is the loop the hop-by-hop message pipeline refactor must not
  // slow down (<5% budget); LRU and Coordinated bracket the cheap and
  // expensive scheme paths.
  const auto kind = static_cast<cascache::schemes::SchemeKind>(
      state.range(0));
  cascache::trace::WorkloadParams wp;
  wp.num_objects = 2000;
  wp.num_requests = 50'000;
  wp.num_clients = 200;
  wp.num_servers = 40;
  auto workload = *cascache::trace::GenerateWorkload(wp);
  cascache::sim::NetworkParams np;
  np.architecture = cascache::sim::Architecture::kHierarchical;
  auto network = std::move(cascache::sim::Network::Build(np, &workload.catalog)).value();

  cascache::schemes::SchemeSpec spec;
  spec.kind = kind;
  auto scheme = std::move(cascache::schemes::MakeScheme(spec)).value();
  cascache::sim::SimOptions options;
  options.warmup_fraction = 0.0;  // Measure every replayed request.
  cascache::sim::Simulator simulator(network.get(), scheme.get(), options);
  const uint64_t capacity = static_cast<uint64_t>(
      0.03 * static_cast<double>(workload.catalog.total_bytes()));

  for (auto _ : state) {
    auto status = simulator.Run(workload, capacity);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(workload.requests.size()));
}
BENCHMARK(BM_ReplayHotPath)
    ->Arg(static_cast<int>(cascache::schemes::SchemeKind::kLru))
    ->Arg(static_cast<int>(cascache::schemes::SchemeKind::kCoordinated))
    ->ArgName("scheme")
    ->Unit(benchmark::kMillisecond);

}  // namespace
