#!/usr/bin/env bash
# Checks that every relative link target in the repo's markdown files
# exists on disk. Offline by design: http(s) and mailto links are
# skipped. Usage: scripts/check_markdown_links.sh [repo-root]
set -u

root="${1:-.}"
cd "$root" || exit 2

failures=0
while IFS= read -r file; do
  # Inline links: [text](target). Good enough for this repo's markdown —
  # no reference-style links in use.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    # Strip a trailing #fragment; the file part must exist.
    path="${target%%#*}"
    [ -z "$path" ] && continue
    base_dir=$(dirname "$file")
    if [ ! -e "$path" ] && [ ! -e "$base_dir/$path" ]; then
      echo "BROKEN LINK: $file -> $target"
      failures=$((failures + 1))
    fi
  done < <(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*](\([^)]*\))/\1/')
done < <(git ls-files '*.md')

if [ "$failures" -gt 0 ]; then
  echo "$failures broken markdown link(s)"
  exit 1
fi
echo "markdown links OK"
