#!/usr/bin/env bash
# Scale smoke (ISSUE 8 satellite): proves the mmap trace path's two
# load-bearing claims on every CI run, at a few-minute scale:
#
#   1. O(1) residency — replaying a trace several times longer must not
#      cost proportionally more peak RSS. Both traces are generated with
#      the streaming writer (cascache_sim --trace-out), replayed via
#      --trace-in --trace-stream-release, and the peak RSS (VmHWM,
#      printed by the driver under CASCACHE_PRINT_RSS) of the long
#      replay must stay within RSS_HEADROOM_PCT of the short one's,
#      plus an absolute sanity ceiling.
#
#      Both trace lengths must exceed the replay chunk (2M requests,
#      kReplayChunk in src/sim): pages release only between chunks, so
#      every replay keeps a bounded in-flight window resident (one chunk
#      of 16-byte records plus the 16 MiB release-granule floor). A
#      sub-chunk trace never pays that window and would make the
#      comparison apples-to-oranges — measured on the dev host,
#      coordinated replay peaks at 168 MB for 1M requests, then
#      184/184/202/200 MB for 2M/3M/6M/12M: flat (within granule
#      jitter) once past the window.
#
#   2. Bit-identity — the mapped replay must produce exactly the same
#      results CSV as generating the identical workload in RAM, modulo
#      the four wall-clock timing columns (17-20), which are stripped
#      before diffing.
#
#   3. Non-stationary scale (ISSUE 9) — a 10M-request drifting-popularity
#      workload over a 10^8-object *procedural* catalog must generate,
#      summarize and replay end-to-end: the v3 trace stores a 64-byte
#      catalog model (not 1.2 GB of per-object entries, asserted via the
#      file size), and the sparse id->slot store tables keep the replay's
#      peak RSS under the same absolute ceiling (a dense table would need
#      400 MB per store instance at 10^8 ids).
#
# Environment overrides:
#   CASCACHE_SCALE_BUILD_DIR   build directory     (default build-scale)
#   CASCACHE_SCALE_SMALL       short trace length  (default 3000000)
#   CASCACHE_SCALE_LARGE       long trace length   (default 12000000)
#   CASCACHE_SCALE_DRIFT       drift trace length  (default 10000000)
#   CASCACHE_SCALE_DRIFT_OBJECTS  drift catalog     (default 100000000)
#   RSS_HEADROOM_PCT           allowed growth      (default 15)
#   RSS_CEILING_KB             absolute cap        (default 2000000)
set -euo pipefail

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${CASCACHE_SCALE_BUILD_DIR:-"$REPO_ROOT/build-scale"}
SMALL=${CASCACHE_SCALE_SMALL:-3000000}
LARGE=${CASCACHE_SCALE_LARGE:-12000000}
DRIFT=${CASCACHE_SCALE_DRIFT:-10000000}
DRIFT_OBJECTS=${CASCACHE_SCALE_DRIFT_OBJECTS:-100000000}
HEADROOM=${RSS_HEADROOM_PCT:-15}
CEILING=${RSS_CEILING_KB:-2000000}

WORK_DIR=$(mktemp -d)
trap 'rm -rf "$WORK_DIR"' EXIT

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j --target cascache_sim --target cascache_trace
SIM="$BUILD_DIR/tools/cascache_sim"

# Common workload shape; only the request count varies between the two
# traces, so RSS growth can only come from trace length.
GEN_ARGS=(--objects=50000 --clients=1000 --servers=100 --seed=7)
RUN_ARGS=(--schemes=lru,coordinated --cache=0.01)

# peak_rss <trace> <out_prefix>: replay with page release, print VmHWM kB.
peak_rss() {
  local trace=$1 prefix=$2
  CASCACHE_PRINT_RSS=1 "$SIM" "--trace-in=$trace" --trace-stream-release \
      "${RUN_ARGS[@]}" "--results-csv=$WORK_DIR/$prefix.csv" \
      2>"$WORK_DIR/$prefix.err" >"$WORK_DIR/$prefix.out"
  sed -n 's/^peak_rss_kb=//p' "$WORK_DIR/$prefix.err"
}

echo "== generating $SMALL- and $LARGE-request traces (streaming writer)"
"$SIM" "${GEN_ARGS[@]}" "--requests=$SMALL" "--trace-out=$WORK_DIR/small.cctr"
"$SIM" "${GEN_ARGS[@]}" "--requests=$LARGE" "--trace-out=$WORK_DIR/large.cctr"

echo "== replaying both with --trace-stream-release"
SMALL_RSS=$(peak_rss "$WORK_DIR/small.cctr" small)
LARGE_RSS=$(peak_rss "$WORK_DIR/large.cctr" large)
echo "peak RSS: small=$SMALL_RSS kB, large=$LARGE_RSS kB"
if [[ -z "$SMALL_RSS" || -z "$LARGE_RSS" ]]; then
  echo "FAIL: driver did not print peak_rss_kb" >&2
  exit 1
fi

LIMIT=$(( SMALL_RSS * (100 + HEADROOM) / 100 ))
if (( LARGE_RSS > LIMIT )); then
  echo "FAIL: ${LARGE}-request replay peak RSS ($LARGE_RSS kB) exceeds" \
       "${SMALL}-request replay's +${HEADROOM}% ($LIMIT kB) —" \
       "residency is no longer O(1) in trace length" >&2
  exit 1
fi
if (( LARGE_RSS > CEILING )); then
  echo "FAIL: peak RSS $LARGE_RSS kB exceeds absolute ceiling $CEILING kB" >&2
  exit 1
fi

echo "== bit-identity: mapped replay vs in-RAM generation"
"$SIM" "${GEN_ARGS[@]}" "--requests=$SMALL" "${RUN_ARGS[@]}" \
    "--results-csv=$WORK_DIR/generated.csv" >/dev/null 2>&1
strip_timing() {  # columns 17-20 are wall-clock, nondeterministic
  awk -F, 'BEGIN{OFS=","} {$17=$18=$19=$20=""; print}' "$1"
}
if ! diff <(strip_timing "$WORK_DIR/generated.csv") \
          <(strip_timing "$WORK_DIR/small.csv"); then
  echo "FAIL: mapped replay diverged from in-RAM generation" >&2
  exit 1
fi

echo "== drift point: $DRIFT requests over a $DRIFT_OBJECTS-object procedural catalog"
"$SIM" "--objects=$DRIFT_OBJECTS" --clients=1000 --servers=100 --seed=7 \
    --workload=drift --workload-drift-half-life=900 --catalog=procedural \
    "--requests=$DRIFT" "--trace-out=$WORK_DIR/drift.cctr"
# A v3 trace stores the catalog as a 64-byte model block; the file must
# be requests + headers, not 12 bytes x 10^8 of materialized entries.
DRIFT_BYTES=$(stat -c%s "$WORK_DIR/drift.cctr")
DRIFT_MAX_BYTES=$(( DRIFT * 16 + 8192 ))
if (( DRIFT_BYTES > DRIFT_MAX_BYTES )); then
  echo "FAIL: drift trace is $DRIFT_BYTES bytes (> $DRIFT_MAX_BYTES) —" \
       "the procedural catalog was materialized on disk" >&2
  exit 1
fi
"$BUILD_DIR/tools/cascache_trace" summarize "$WORK_DIR/drift.cctr" \
    >"$WORK_DIR/drift_summary.txt"
grep -q "^format version:        v3$" "$WORK_DIR/drift_summary.txt" || {
  echo "FAIL: drift trace did not summarize as v3" >&2
  exit 1
}
# Replay with a capacity small enough that stores stay bounded by churn,
# not by the (petabyte-scale) catalog; what is under test is that no
# dense per-object structure scales with the 10^8-id space.
DRIFT_RSS=$(CASCACHE_PRINT_RSS=1 "$SIM" "--trace-in=$WORK_DIR/drift.cctr" \
    --trace-stream-release --schemes=lru,coordinated --cache=0.0000001 \
    2>&1 >"$WORK_DIR/drift.out" | sed -n 's/^peak_rss_kb=//p')
echo "drift replay peak RSS: ${DRIFT_RSS:-<missing>} kB"
if [[ -z "$DRIFT_RSS" ]] || (( DRIFT_RSS > CEILING )); then
  echo "FAIL: drift replay peak RSS (${DRIFT_RSS:-none} kB) exceeds" \
       "ceiling $CEILING kB — the 10^8-object path regressed" >&2
  exit 1
fi

echo "PASS: RSS O(1) in trace length ($SMALL_RSS -> $LARGE_RSS kB over" \
     "${SMALL}->${LARGE} requests), mapped replay bit-identical, and the" \
     "${DRIFT_OBJECTS}-object drift point replayed in $DRIFT_RSS kB"
