#!/usr/bin/env bash
# Release-mode perf smoke (ISSUE 6 satellite): guards the replay hot path
# against silent regressions.
#
#   1. Builds Release (full -O3, the configuration the baseline was
#      recorded under).
#   2. Re-runs the bit-identity gate (PipelineEquivalenceTest.*) in that
#      build — a perf number from a build that changes results is
#      meaningless.
#   3. Runs BM_ReplayHotPath with repetitions and compares the *minimum*
#      CPU time per scheme against bench/perf_baseline.json, failing on a
#      regression beyond the tolerance (default 2%).
#
# Min-of-repetitions is the comparison statistic because it is the
# closest observable to the code's intrinsic cost: scheduling noise and
# cache pollution only ever add time, so the minimum converges while the
# mean wanders with host load.
#
# The baseline is host-calibrated: absolute ms differ machine to machine,
# so after an intentional hot-path change (or on a new reference host)
# regenerate it with --update-baseline and commit the result. On shared
# CI runners, widen the tolerance via CASCACHE_PERF_TOLERANCE instead of
# regenerating.
#
# Environment overrides:
#   CASCACHE_PERF_TOLERANCE   allowed fractional regression (default 0.02)
#   CASCACHE_PERF_REPS        benchmark repetitions          (default 7)
#   CASCACHE_PERF_BUILD_DIR   build directory                (default build-perf)
#   CASCACHE_PERF_BASELINE    baseline json path             (default bench/perf_baseline.json)
set -euo pipefail

REPO_ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD_DIR=${CASCACHE_PERF_BUILD_DIR:-"$REPO_ROOT/build-perf"}
BASELINE=${CASCACHE_PERF_BASELINE:-"$REPO_ROOT/bench/perf_baseline.json"}
TOLERANCE=${CASCACHE_PERF_TOLERANCE:-0.02}
REPS=${CASCACHE_PERF_REPS:-7}

UPDATE=0
if [[ "${1:-}" == "--update-baseline" ]]; then
  UPDATE=1
elif [[ -n "${1:-}" ]]; then
  echo "usage: $0 [--update-baseline]" >&2
  exit 2
fi

echo "== perf smoke: configure + build (Release) =="
cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target cascache_tests micro_caches >/dev/null

echo "== perf smoke: bit-identity gate (PipelineEquivalenceTest) =="
"$BUILD_DIR/tests/cascache_tests" --gtest_filter='PipelineEquivalenceTest.*' \
    --gtest_brief=1

echo "== perf smoke: BM_ReplayHotPath ($REPS repetitions) =="
BENCH_JSON="$BUILD_DIR/perf_smoke_bench.json"
"$BUILD_DIR/bench/micro_caches" \
    --benchmark_filter='^BM_ReplayHotPath/' \
    --benchmark_repetitions="$REPS" \
    --benchmark_min_time=0.2 \
    --benchmark_format=json > "$BENCH_JSON"

UPDATE="$UPDATE" BASELINE="$BASELINE" TOLERANCE="$TOLERANCE" \
python3 - "$BENCH_JSON" <<'PYEOF'
import json
import os
import sys

bench_path = sys.argv[1]
baseline_path = os.environ["BASELINE"]
tolerance = float(os.environ["TOLERANCE"])
update = os.environ["UPDATE"] == "1"

with open(bench_path) as f:
    report = json.load(f)

# Min CPU time across the plain (non-aggregate) repetitions, per benchmark.
mins = {}
for b in report["benchmarks"]:
    if b.get("run_type") != "iteration":
        continue
    name = b["run_name"]
    cpu = float(b["cpu_time"])  # unit: ms (benchmark::kMillisecond)
    if name not in mins or cpu < mins[name]:
        mins[name] = cpu

if not mins:
    sys.exit("perf smoke: benchmark produced no iteration records")

if update:
    baseline = {
        "_comment": (
            "Host-calibrated BM_ReplayHotPath baseline for "
            "scripts/check_perf_smoke.sh: min CPU ms over repetitions in a "
            "Release build. Regenerate with --update-baseline after an "
            "intentional hot-path change; on foreign hosts widen "
            "CASCACHE_PERF_TOLERANCE instead."
        ),
        "benchmarks": {name: {"min_cpu_ms": round(v, 4)} for name, v in sorted(mins.items())},
    }
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"perf smoke: baseline written to {baseline_path}")
    for name, v in sorted(mins.items()):
        print(f"  {name}: {v:.2f} ms")
    sys.exit(0)

try:
    with open(baseline_path) as f:
        baseline = json.load(f)["benchmarks"]
except FileNotFoundError:
    sys.exit(
        f"perf smoke: no baseline at {baseline_path}; "
        "run with --update-baseline to record one"
    )

failed = False
for name, entry in sorted(baseline.items()):
    base = float(entry["min_cpu_ms"])
    if name not in mins:
        print(f"FAIL {name}: present in baseline but not in benchmark output")
        failed = True
        continue
    cur = mins[name]
    delta = (cur - base) / base
    verdict = "ok"
    if delta > tolerance:
        verdict = f"REGRESSION (> {tolerance:.0%} budget)"
        failed = True
    print(f"  {name}: {cur:.2f} ms vs baseline {base:.2f} ms "
          f"({delta:+.1%}) {verdict}")

for name in sorted(set(mins) - set(baseline)):
    print(f"  note: {name} has no baseline entry (new benchmark?); "
          "regenerate with --update-baseline")

if failed:
    sys.exit("perf smoke: hot-path regression beyond tolerance")
print("perf smoke: within budget")
PYEOF
