#!/usr/bin/env bash
# Verifies that README.md's flag listing matches `cascache_sim --help`,
# so the two cannot drift. The README block sits between
# `<!-- BEGIN cascache_sim --help -->` and `<!-- END ... -->` markers;
# only the indented flag lines are compared (the usage line carries the
# invocation path, which varies).
#
# Usage:
#   scripts/check_readme_flags.sh <path-to-cascache_sim>            # check
#   scripts/check_readme_flags.sh <path-to-cascache_sim> --update   # rewrite
set -u

binary="${1:?usage: $0 <path-to-cascache_sim> [--update]}"
mode="${2:-check}"
readme="$(dirname "$0")/../README.md"
begin='<!-- BEGIN cascache_sim --help -->'
end='<!-- END cascache_sim --help -->'

help_flags=$("$binary" --help 2>&1 | grep -v '^usage:') || {
  echo "failed to run $binary --help"
  exit 2
}

if [ "$mode" = "--update" ]; then
  tmp=$(mktemp)
  awk -v begin="$begin" -v end="$end" -v help="$help_flags" '
    index($0, begin) { print; print "```"; print help; print "```"; skip = 1; next }
    index($0, end)   { skip = 0 }
    !skip            { print }
  ' "$readme" >"$tmp" && mv "$tmp" "$readme"
  echo "README flag listing regenerated"
  exit 0
fi

readme_flags=$(awk -v begin="$begin" -v end="$end" '
  index($0, begin) { inside = 1; next }
  index($0, end)   { inside = 0 }
  inside && !/^```/ { print }
' "$readme")

if [ -z "$readme_flags" ]; then
  echo "README.md: flag listing markers not found"
  exit 1
fi

if ! diff_out=$(diff <(printf '%s\n' "$readme_flags") \
                     <(printf '%s\n' "$help_flags")); then
  echo "README.md flag listing is out of date vs $binary --help:"
  echo "$diff_out"
  echo
  echo "Regenerate with: $0 $binary --update"
  exit 1
fi
echo "README flag listing matches --help"
