#ifndef CASCACHE_TESTS_TESTING_SCENARIO_H_
#define CASCACHE_TESTS_TESTING_SCENARIO_H_

#include <memory>
#include <vector>

#include "sim/network.h"
#include "sim/simulator.h"
#include "trace/object_catalog.h"
#include "trace/synthetic.h"

namespace cascache::testing {

/// Builds a catalog from explicit (size, server) pairs.
trace::ObjectCatalog MakeCatalog(
    const std::vector<std::pair<uint64_t, trace::ServerId>>& objects);

/// Builds a chain network: a hierarchical tree with fanout 1 and `depth`
/// cache levels, i.e. a single path leaf -> ... -> root -> (virtual link)
/// -> origin. Every client maps to the single leaf, every server sits
/// behind the root. This gives scheme tests a fully controllable delivery
/// path with link delays base_delay * growth^level.
std::unique_ptr<sim::Network> MakeChainNetwork(
    const trace::ObjectCatalog* catalog, int depth, double base_delay = 1.0,
    double growth = 1.0);

/// Builds a hierarchical tree network with the given depth and fanout
/// (fanout >= 2 gives every non-root node siblings — the sibling
/// cooperation tests use this). Link delays base_delay * growth^level.
std::unique_ptr<sim::Network> MakeTreeNetwork(
    const trace::ObjectCatalog* catalog, int depth, int fanout,
    double base_delay = 1.0, double growth = 1.0);

/// A request at `time` from client 0 for `object`.
trace::Request At(double time, trace::ObjectId object,
                  trace::ClientId client = 0);

/// Steps a simulator through requests without collecting metrics.
void Warm(sim::Simulator* simulator,
          const std::vector<trace::Request>& requests);

}  // namespace cascache::testing

#endif  // CASCACHE_TESTS_TESTING_SCENARIO_H_
