#include "testing/scenario.h"

#include "util/check.h"

namespace cascache::testing {

trace::ObjectCatalog MakeCatalog(
    const std::vector<std::pair<uint64_t, trace::ServerId>>& objects) {
  trace::ObjectCatalog catalog;
  for (const auto& [size, server] : objects) catalog.Add(size, server);
  return catalog;
}

std::unique_ptr<sim::Network> MakeChainNetwork(
    const trace::ObjectCatalog* catalog, int depth, double base_delay,
    double growth) {
  sim::NetworkParams params;
  params.architecture = sim::Architecture::kHierarchical;
  params.tree.depth = depth;
  params.tree.fanout = 1;
  params.tree.base_delay = base_delay;
  params.tree.growth = growth;
  auto net_or = sim::Network::Build(params, catalog);
  CASCACHE_CHECK_OK(net_or.status());
  return std::move(net_or).value();
}

std::unique_ptr<sim::Network> MakeTreeNetwork(
    const trace::ObjectCatalog* catalog, int depth, int fanout,
    double base_delay, double growth) {
  sim::NetworkParams params;
  params.architecture = sim::Architecture::kHierarchical;
  params.tree.depth = depth;
  params.tree.fanout = fanout;
  params.tree.base_delay = base_delay;
  params.tree.growth = growth;
  auto net_or = sim::Network::Build(params, catalog);
  CASCACHE_CHECK_OK(net_or.status());
  return std::move(net_or).value();
}

trace::Request At(double time, trace::ObjectId object,
                  trace::ClientId client) {
  trace::Request req;
  req.time = time;
  req.object = object;
  req.client = client;
  return req;
}

void Warm(sim::Simulator* simulator,
          const std::vector<trace::Request>& requests) {
  for (const trace::Request& req : requests) {
    simulator->Step(req, /*collect=*/false);
  }
}

}  // namespace cascache::testing
