#ifndef CASCACHE_TESTS_TESTING_REF_CACHES_H_
#define CASCACHE_TESTS_TESTING_REF_CACHES_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "cache/descriptor.h"
#include "cache/dcache.h"
#include "trace/object_catalog.h"
#include "util/check.h"
#include "util/indexed_heap.h"

namespace cascache::testing {

using trace::ObjectId;

/// Reference LRU oracle: the historical `std::list` + `std::unordered_map`
/// LruCache implementation, verbatim, kept in the tests only. The flat
/// production store (cache::FlatLru) must stay behaviorally identical to
/// this — the differential test drives both through long random op
/// sequences and compares every observable.
class RefLruCache {
 public:
  explicit RefLruCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  bool Contains(ObjectId id) const { return index_.count(id) > 0; }

  bool Touch(ObjectId id) {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    order_.splice(order_.begin(), order_, it->second);
    return true;
  }

  std::vector<ObjectId> Insert(ObjectId id, uint64_t size,
                               bool* inserted = nullptr) {
    if (inserted != nullptr) *inserted = false;
    std::vector<ObjectId> evicted;
    if (Touch(id)) return evicted;  // Already present.
    CASCACHE_CHECK(size > 0);
    if (size > capacity_) return evicted;  // Cannot ever fit.

    while (used_ + size > capacity_) {
      CASCACHE_CHECK(!order_.empty());
      const Entry victim = order_.back();
      order_.pop_back();
      index_.erase(victim.id);
      used_ -= victim.size;
      evicted.push_back(victim.id);
    }
    order_.push_front({id, size});
    index_[id] = order_.begin();
    used_ += size;
    if (inserted != nullptr) *inserted = true;
    return evicted;
  }

  bool Erase(ObjectId id) {
    auto it = index_.find(id);
    if (it == index_.end()) return false;
    used_ -= it->second->size;
    order_.erase(it->second);
    index_.erase(it);
    return true;
  }

  void Clear() {
    order_.clear();
    index_.clear();
    used_ = 0;
  }

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  size_t num_objects() const { return index_.size(); }

  ObjectId LruVictim() const {
    CASCACHE_CHECK(!order_.empty());
    return order_.back().id;
  }

 private:
  struct Entry {
    ObjectId id;
    uint64_t size;
  };

  uint64_t capacity_;
  uint64_t used_ = 0;
  /// Front = most recently used, back = least recently used.
  std::list<Entry> order_;
  std::unordered_map<ObjectId, std::list<Entry>::iterator> index_;
};

/// Reference two-tier oracle: an inclusive RAM tier over a disk tier,
/// both plain list-based LRU. Mirrors the tiered CacheNode contract
/// (sim/node.h): the disk tier is the full-capacity store deciding
/// hit/miss; the RAM tier holds a subset of disk-resident objects;
/// serving a hit touches RAM or promotes the object into RAM
/// (promotion-on-hit, RAM victims demoted but keeping their disk copy);
/// a disk eviction drops the victim's RAM copy (demote-on-evict, the
/// inclusion invariant). The differential test drives this and a tiered
/// CacheNode through identical op sequences and compares every
/// observable.
class RefTieredCache {
 public:
  RefTieredCache(uint64_t disk_capacity_bytes, uint64_t ram_capacity_bytes)
      : disk_(disk_capacity_bytes), ram_(ram_capacity_bytes) {
    CASCACHE_CHECK(ram_capacity_bytes <= disk_capacity_bytes);
  }

  bool Contains(ObjectId id) const { return disk_.Contains(id); }
  bool RamResident(ObjectId id) const { return ram_.Contains(id); }

  struct TierServe {
    bool ram_hit = false;
    bool promoted = false;
    int demotions = 0;
  };

  /// Serves a disk-resident object through the tier stack. The caller is
  /// responsible for the disk store's own recency touch (as the scheme's
  /// OnServe is on the production node).
  TierServe ServeTiered(ObjectId id, uint64_t size) {
    CASCACHE_CHECK(disk_.Contains(id));
    TierServe result;
    if (ram_.Touch(id)) {
      result.ram_hit = true;
      return result;
    }
    bool inserted = false;
    const std::vector<ObjectId> demoted = ram_.Insert(id, size, &inserted);
    result.promoted = inserted;
    result.demotions = static_cast<int>(demoted.size());
    return result;
  }

  /// Places an object in the disk tier; disk victims lose their RAM copy.
  std::vector<ObjectId> Insert(ObjectId id, uint64_t size,
                               bool* inserted = nullptr) {
    const std::vector<ObjectId> evicted = disk_.Insert(id, size, inserted);
    for (ObjectId victim : evicted) ram_.Erase(victim);
    return evicted;
  }

  /// Coherency-style drop: both tiers lose the copy.
  bool Erase(ObjectId id) {
    ram_.Erase(id);
    return disk_.Erase(id);
  }

  void Clear() {
    disk_.Clear();
    ram_.Clear();
  }

  bool CheckInclusion() const {
    // The RefLruCache has no iteration; inclusion is asserted by the
    // differential test via per-object probes instead.
    return ram_.used_bytes() <= disk_.used_bytes();
  }

  const RefLruCache& disk() const { return disk_; }
  const RefLruCache& ram() const { return ram_; }
  RefLruCache& disk() { return disk_; }
  RefLruCache& ram() { return ram_; }

 private:
  RefLruCache disk_;
  RefLruCache ram_;
};

/// Reference d-cache oracle: the historical `unordered_map` descriptor
/// store + hash-indexed eviction heap, verbatim. The pooled production
/// DCache must match it observably under both policies.
class RefDCache {
 public:
  explicit RefDCache(size_t max_descriptors,
                     cache::DCachePolicy policy = cache::DCachePolicy::kLfu)
      : capacity_(max_descriptors), policy_(policy) {}

  cache::DCachePolicy policy() const { return policy_; }

  bool Contains(ObjectId id) const { return descriptors_.count(id) > 0; }

  cache::ObjectDescriptor* Find(ObjectId id) {
    auto it = descriptors_.find(id);
    return it == descriptors_.end() ? nullptr : &it->second;
  }

  cache::ObjectDescriptor* Insert(ObjectId id,
                                  const cache::ObjectDescriptor& desc) {
    if (capacity_ == 0) return nullptr;
    auto it = descriptors_.find(id);
    if (it != descriptors_.end()) {
      it->second = desc;
      heap_.Update(id, PriorityOf(desc));
      return &it->second;
    }
    if (descriptors_.size() >= capacity_) {
      // Admission: do not displace a higher-priority descriptor.
      if (PriorityOf(desc) < heap_.Top().second) return nullptr;
      const ObjectId victim = heap_.Pop().first;
      descriptors_.erase(victim);
    }
    auto [new_it, ok] = descriptors_.emplace(id, desc);
    CASCACHE_CHECK(ok);
    heap_.Push(id, PriorityOf(desc));
    return &new_it->second;
  }

  void Refresh(ObjectId id, const cache::ObjectDescriptor& desc) {
    if (!heap_.Contains(id)) return;
    heap_.Update(id, PriorityOf(desc));
  }

  bool Erase(ObjectId id) {
    if (descriptors_.erase(id) == 0) return false;
    CASCACHE_CHECK(heap_.Erase(id));
    return true;
  }

  void Clear() {
    descriptors_.clear();
    heap_.Clear();
  }

  size_t size() const { return descriptors_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  double PriorityOf(const cache::ObjectDescriptor& desc) const {
    if (policy_ == cache::DCachePolicy::kLfu) return desc.frequency;
    return desc.num_accesses == 0 ? 0.0 : desc.KthMostRecentAccess(1);
  }

  size_t capacity_;
  cache::DCachePolicy policy_;
  std::unordered_map<ObjectId, cache::ObjectDescriptor> descriptors_;
  util::IndexedMinHeap<ObjectId> heap_;
};

}  // namespace cascache::testing

#endif  // CASCACHE_TESTS_TESTING_REF_CACHES_H_
