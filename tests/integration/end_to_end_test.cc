// End-to-end runs of the full stack (topology generation -> synthetic
// workload -> trace-driven simulation -> metrics) checking the paper's
// qualitative claims on small workloads. All runs are seeded and
// deterministic.

#include <gtest/gtest.h>

#include "schemes/coordinated_scheme.h"
#include "sim/experiment.h"

namespace cascache {
namespace {

using schemes::SchemeKind;
using sim::Architecture;
using sim::ExperimentConfig;
using sim::ExperimentRunner;
using sim::RunResult;

ExperimentConfig BaseConfig(Architecture arch) {
  ExperimentConfig config;
  config.network.architecture = arch;
  config.workload.num_objects = 2'000;
  config.workload.num_requests = 150'000;
  config.workload.num_clients = 300;
  config.workload.num_servers = 50;
  config.workload.seed = 17;
  config.cache_fractions = {0.02};
  config.schemes = {{.kind = SchemeKind::kLru},
                    {.kind = SchemeKind::kModulo, .modulo_radius = 4},
                    {.kind = SchemeKind::kLncr},
                    {.kind = SchemeKind::kCoordinated}};
  return config;
}

const RunResult& FindScheme(const std::vector<RunResult>& results,
                            const std::string& name) {
  for (const RunResult& r : results) {
    if (r.scheme == name) return r;
  }
  ADD_FAILURE() << "scheme " << name << " missing";
  return results.front();
}

class EndToEndTest : public ::testing::TestWithParam<Architecture> {};

TEST_P(EndToEndTest, MetricsAreWellFormed) {
  auto runner_or = ExperimentRunner::Create(BaseConfig(GetParam()));
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  for (const RunResult& r : *results_or) {
    SCOPED_TRACE(r.scheme);
    EXPECT_GT(r.metrics.requests, 0u);
    EXPECT_GE(r.metrics.byte_hit_ratio, 0.0);
    EXPECT_LE(r.metrics.byte_hit_ratio, 1.0);
    EXPECT_GE(r.metrics.hit_ratio, 0.0);
    EXPECT_LE(r.metrics.hit_ratio, 1.0);
    EXPECT_GT(r.metrics.avg_latency, 0.0);
    EXPECT_GT(r.metrics.avg_hops, 0.0);
    EXPECT_GT(r.metrics.avg_load_bytes, 0.0);
    EXPECT_GE(r.metrics.read_load_share, 0.0);
    EXPECT_LE(r.metrics.read_load_share, 1.0);
  }
}

TEST_P(EndToEndTest, CoordinatedBeatsLruOnHeadlineMetrics) {
  // The paper's central claim (Figures 6-10): coordinated caching beats
  // the schemes that optimize placement or replacement alone.
  auto runner_or = ExperimentRunner::Create(BaseConfig(GetParam()));
  ASSERT_TRUE(runner_or.ok());
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  const RunResult& lru = FindScheme(*results_or, "LRU");
  const RunResult& coord = FindScheme(*results_or, "Coordinated");
  EXPECT_LT(coord.metrics.avg_latency, lru.metrics.avg_latency);
  EXPECT_LT(coord.metrics.avg_response_ratio,
            lru.metrics.avg_response_ratio);
  EXPECT_GT(coord.metrics.byte_hit_ratio, lru.metrics.byte_hit_ratio);
  EXPECT_LT(coord.metrics.avg_hops, lru.metrics.avg_hops);
  // Write overhead: coordinated places far fewer copies.
  EXPECT_LT(coord.metrics.avg_write_bytes, lru.metrics.avg_write_bytes);
}

INSTANTIATE_TEST_SUITE_P(Architectures, EndToEndTest,
                         ::testing::Values(Architecture::kEnRoute,
                                           Architecture::kHierarchical),
                         [](const auto& info) {
                           return info.param == Architecture::kEnRoute
                                      ? "EnRoute"
                                      : "Hierarchical";
                         });

TEST(EndToEndEnRouteTest, ModuloRadiusFourLeavesHierarchyLevelsUnused) {
  // Paper §4.2: under the hierarchical architecture, MODULO with radius 4
  // uses only the leaf caches, so its load is flat and its hit ratio far
  // below LRU's.
  ExperimentConfig config = BaseConfig(Architecture::kHierarchical);
  config.schemes = {{.kind = SchemeKind::kLru},
                    {.kind = SchemeKind::kModulo, .modulo_radius = 4}};
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok());
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  const RunResult& lru = FindScheme(*results_or, "LRU");
  const RunResult& modulo = FindScheme(*results_or, "MODULO(4)");
  EXPECT_LT(modulo.metrics.byte_hit_ratio, lru.metrics.byte_hit_ratio);
  EXPECT_GT(modulo.metrics.avg_latency, lru.metrics.avg_latency);
}

TEST(EndToEndStatsTest, CoordinatedStatsAreConsistent) {
  ExperimentConfig config = BaseConfig(Architecture::kEnRoute);
  config.workload.num_requests = 40'000;
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok());

  schemes::CoordinatedScheme scheme;
  sim::Simulator simulator((*runner_or)->network(), &scheme);
  ASSERT_TRUE(simulator
                  .Run((*runner_or)->workload(),
                       (*runner_or)->workload().catalog.total_bytes() / 50)
                  .ok());
  const auto& stats = scheme.stats();
  EXPECT_EQ(stats.requests, 40'000u);
  EXPECT_GT(stats.dp_runs, 0u);
  EXPECT_GE(stats.candidates, stats.dp_runs);
  EXPECT_GT(stats.placements, 0u);
  EXPECT_GT(stats.total_gain, 0.0);
}

TEST(EndToEndDeterminismTest, FullPipelineIsReproducible) {
  ExperimentConfig config = BaseConfig(Architecture::kEnRoute);
  config.workload.num_requests = 30'000;
  config.schemes = {{.kind = SchemeKind::kCoordinated}};
  auto a = ExperimentRunner::Create(config);
  auto b = ExperimentRunner::Create(config);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ra = (*a)->RunAll();
  auto rb = (*b)->RunAll();
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_DOUBLE_EQ((*ra)[0].metrics.avg_latency,
                   (*rb)[0].metrics.avg_latency);
  EXPECT_DOUBLE_EQ((*ra)[0].metrics.byte_hit_ratio,
                   (*rb)[0].metrics.byte_hit_ratio);
  EXPECT_DOUBLE_EQ((*ra)[0].metrics.avg_load_bytes,
                   (*rb)[0].metrics.avg_load_bytes);
}

}  // namespace
}  // namespace cascache
