// Chaos / property harness for the deterministic fault plane.
//
// Runs every scheme under both architectures against a matrix of fault
// schedules and asserts the properties that must hold under *any*
// schedule: the replay terminates, no request is silently dropped
// (recorded = served + failed), retries respect their bound, the
// per-node fault counters reconcile integer-exactly with the aggregates,
// and the same (workload seed, fault schedule) replays bit-identically.
//
// The matrix size scales with CASCACHE_CHAOS_SCALE (default 1): CI's
// nightly-style chaos job sets it higher for longer traces.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/fault_plane.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace cascache::sim {
namespace {

int ChaosScale() {
  const char* env = std::getenv("CASCACHE_CHAOS_SCALE");
  if (env == nullptr) return 1;
  const int scale = std::atoi(env);
  return scale >= 1 ? scale : 1;
}

std::vector<schemes::SchemeSpec> AllSchemes() {
  std::vector<schemes::SchemeSpec> specs(7);
  specs[0].kind = schemes::SchemeKind::kLru;
  specs[1].kind = schemes::SchemeKind::kModulo;
  specs[2].kind = schemes::SchemeKind::kLncr;
  specs[3].kind = schemes::SchemeKind::kCoordinated;
  specs[4].kind = schemes::SchemeKind::kGds;
  specs[5].kind = schemes::SchemeKind::kLfu;
  specs[6].kind = schemes::SchemeKind::kStatic;
  return specs;
}

trace::WorkloadParams ChaosWorkload() {
  trace::WorkloadParams w;
  w.num_objects = 800;
  w.num_requests = 6'000 * static_cast<uint64_t>(ChaosScale());
  w.num_clients = 100;
  w.num_servers = 20;
  return w;
}

struct NamedSchedule {
  const char* name;
  FaultScheduleConfig config;
};

/// The fault matrix. The synthetic workload arrives at ~100 req/s, so a
/// 6k-request trace spans ~60 simulated seconds; mtbf/downtime are sized
/// so each schedule fires many times inside that horizon.
std::vector<NamedSchedule> Schedules() {
  std::vector<NamedSchedule> schedules;

  NamedSchedule crashes{"crashes", {}};
  crashes.config.node_crash_mtbf = 30.0;
  crashes.config.node_downtime = 8.0;
  schedules.push_back(crashes);

  NamedSchedule cut{"crashes_cut_routing", {}};
  cut.config.node_crash_mtbf = 30.0;
  cut.config.node_downtime = 8.0;
  cut.config.crash_cuts_routing = true;
  cut.config.request_timeout = 2.0;
  cut.config.max_retries = 2;
  cut.config.retry_backoff = 0.5;
  schedules.push_back(cut);

  NamedSchedule links{"link_outages", {}};
  links.config.link_mtbf = 25.0;
  links.config.link_downtime = 10.0;
  links.config.request_timeout = 2.0;
  links.config.max_retries = 2;
  schedules.push_back(links);

  NamedSchedule loss{"message_loss", {}};
  loss.config.ascent_loss_prob = 0.15;
  loss.config.decision_loss_prob = 0.15;
  schedules.push_back(loss);

  NamedSchedule disks{"disk_outages", {}};
  disks.config.disk_fail_mtbf = 25.0;
  disks.config.disk_fail_downtime = 10.0;
  schedules.push_back(disks);

  NamedSchedule everything{"everything", {}};
  everything.config.node_crash_mtbf = 40.0;
  everything.config.node_downtime = 8.0;
  everything.config.crash_cuts_routing = true;
  everything.config.link_mtbf = 40.0;
  everything.config.link_downtime = 8.0;
  everything.config.ascent_loss_prob = 0.1;
  everything.config.decision_loss_prob = 0.1;
  everything.config.request_timeout = 1.0;
  everything.config.max_retries = 3;
  everything.config.retry_backoff = 0.25;
  everything.config.disk_fail_mtbf = 40.0;
  everything.config.disk_fail_downtime = 8.0;
  everything.config.sibling_loss_prob = 0.1;
  schedules.push_back(everything);

  return schedules;
}

/// The invariants every (scheme, architecture, schedule) cell must
/// satisfy.
void CheckInvariants(const RunResult& r, const FaultScheduleConfig& faults,
                     uint64_t expected_requests, const std::string& cell) {
  const MetricsSummary& m = r.metrics;
  SCOPED_TRACE(cell);

  // Termination + completeness: every measured request was recorded,
  // either served or failed — nothing silently dropped.
  EXPECT_EQ(m.requests, expected_requests);
  EXPECT_LE(m.failed_requests, m.requests);
  EXPECT_LE(m.cache_hits, m.requests - m.failed_requests);

  // Retry bound: no request retries more than max_retries times.
  EXPECT_LE(m.retries,
            static_cast<uint64_t>(faults.max_retries) * m.requests);

  // Sanity of the derived metrics under faults.
  EXPECT_TRUE(std::isfinite(m.avg_latency));
  EXPECT_GE(m.avg_latency, 0.0);
  EXPECT_GE(m.hit_ratio, 0.0);
  EXPECT_LE(m.hit_ratio, 1.0);

  // Per-node <-> aggregate reconciliation, integer-exact: crashes are
  // charged to the crashed node, retries/reroutes to the requester,
  // degraded decisions to the affected hop.
  NodeCounters total;
  for (const NodeUsage& u : r.per_node) total += u.counters;
  EXPECT_EQ(total.crashes, m.crashes_applied);
  EXPECT_EQ(total.retries, m.retries);
  EXPECT_EQ(total.reroutes, m.reroutes);
  EXPECT_EQ(total.degraded, m.degraded_decisions);
  // The pre-fault observability contract still holds.
  EXPECT_EQ(total.hits, m.cache_hits);
  EXPECT_EQ(total.stale_serves, m.stale_hits);
  // Tier / sibling / degraded-node reconciliation (all zero when the
  // corresponding axis is off): ram/disk hits and promotions at the
  // serving node, demotions where the RAM tier shrank, probes at the
  // probing node, sibling hits at the serving sibling, disk_degraded at
  // the outaged hop.
  EXPECT_EQ(total.ram_hits, m.ram_hits);
  EXPECT_EQ(total.disk_hits, m.disk_hits);
  EXPECT_EQ(total.promotions, m.promotions);
  EXPECT_EQ(total.demotions, m.demotions);
  EXPECT_EQ(total.sibling_probes, m.sibling_probes);
  EXPECT_EQ(total.sibling_serves, m.sibling_hits);
  EXPECT_EQ(total.disk_degraded, m.disk_degraded);
  EXPECT_LE(m.sibling_hits, m.sibling_probes);
}

TEST(ChaosTest, AllSchemesSurviveTheFaultMatrix) {
  for (const Architecture arch :
       {Architecture::kEnRoute, Architecture::kHierarchical}) {
    for (const NamedSchedule& schedule : Schedules()) {
      ExperimentConfig cfg;
      cfg.network.architecture = arch;
      cfg.workload = ChaosWorkload();
      cfg.cache_fractions = {0.03};
      cfg.schemes = AllSchemes();
      cfg.sim.faults = schedule.config;
      cfg.jobs = 1;

      auto runner_or = ExperimentRunner::Create(cfg);
      ASSERT_TRUE(runner_or.ok()) << runner_or.status().ToString();
      auto results_or = (*runner_or)->RunAll();
      ASSERT_TRUE(results_or.ok()) << results_or.status().ToString();

      const uint64_t expected =
          cfg.workload.num_requests -
          static_cast<uint64_t>(cfg.sim.warmup_fraction *
                                static_cast<double>(
                                    cfg.workload.num_requests));
      uint64_t fault_events = 0;
      for (const RunResult& r : *results_or) {
        const std::string cell =
            std::string(arch == Architecture::kEnRoute ? "enroute" : "hier") +
            "/" + schedule.name + "/" + r.scheme;
        CheckInvariants(r, schedule.config, expected, cell);
        fault_events += r.metrics.crashes_applied + r.metrics.reroutes +
                        r.metrics.retries + r.metrics.degraded_decisions +
                        r.metrics.disk_degraded;
      }
      // The schedule was not a no-op: at least one scheme observed at
      // least one fault (all of them do in practice).
      EXPECT_GT(fault_events, 0u)
          << schedule.name << " injected nothing measurable";
    }
  }
}

/// %.17g round-trips doubles exactly, so string equality on the full
/// summary is bit-level replay equality.
std::string SummaryKey(const MetricsSummary& m) {
  char buf[1280];
  std::snprintf(
      buf, sizeof(buf),
      "%llu|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%.17g|%llu|%llu|"
      "%.17g|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%.17g|"
      "%llu|%llu|%llu|%llu|%llu|%llu|%llu",
      static_cast<unsigned long long>(m.requests), m.avg_latency,
      m.avg_response_ratio, m.byte_hit_ratio, m.hit_ratio,
      m.avg_traffic_byte_hops, m.avg_hops, m.avg_load_bytes,
      m.read_load_share,
      static_cast<unsigned long long>(m.total_bytes_requested),
      static_cast<unsigned long long>(m.bytes_from_caches),
      m.stale_hit_ratio, static_cast<unsigned long long>(m.insertions),
      static_cast<unsigned long long>(m.retries),
      static_cast<unsigned long long>(m.failed_requests),
      static_cast<unsigned long long>(m.reroutes),
      static_cast<unsigned long long>(m.crashes_applied),
      static_cast<unsigned long long>(m.degraded_decisions),
      static_cast<unsigned long long>(m.cache_hits),
      static_cast<unsigned long long>(m.served_requests),
      static_cast<unsigned long long>(m.shed_requests),
      static_cast<unsigned long long>(m.shed_placements), m.avg_queue_wait,
      static_cast<unsigned long long>(m.ram_hits),
      static_cast<unsigned long long>(m.disk_hits),
      static_cast<unsigned long long>(m.promotions),
      static_cast<unsigned long long>(m.demotions),
      static_cast<unsigned long long>(m.sibling_probes),
      static_cast<unsigned long long>(m.sibling_hits),
      static_cast<unsigned long long>(m.disk_degraded));
  return buf;
}

std::string NodeKey(const NodeUsage& u) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "%d|%llu|%llu|%llu|%llu|%llu|%llu|%llu|%llu|"
                "%llu|%llu|%llu|%llu|%llu|%llu|%llu",
                u.node,
                static_cast<unsigned long long>(u.counters.hits),
                static_cast<unsigned long long>(u.counters.crashes),
                static_cast<unsigned long long>(u.counters.retries),
                static_cast<unsigned long long>(u.counters.reroutes),
                static_cast<unsigned long long>(u.counters.degraded),
                static_cast<unsigned long long>(u.counters.sheds),
                static_cast<unsigned long long>(u.counters.store_sheds),
                static_cast<unsigned long long>(u.counters.max_queue_depth),
                static_cast<unsigned long long>(u.counters.ram_hits),
                static_cast<unsigned long long>(u.counters.disk_hits),
                static_cast<unsigned long long>(u.counters.promotions),
                static_cast<unsigned long long>(u.counters.demotions),
                static_cast<unsigned long long>(u.counters.sibling_probes),
                static_cast<unsigned long long>(u.counters.sibling_serves),
                static_cast<unsigned long long>(u.counters.disk_degraded));
  return buf;
}

TEST(ChaosTest, SameScheduleReplaysBitIdentically) {
  ExperimentConfig cfg;
  cfg.network.architecture = Architecture::kHierarchical;
  cfg.workload = ChaosWorkload();
  cfg.cache_fractions = {0.03};
  cfg.schemes = AllSchemes();
  cfg.sim.faults = Schedules().back().config;  // "everything"
  cfg.jobs = 1;

  std::vector<std::string> first, second;
  for (int run = 0; run < 2; ++run) {
    auto runner_or = ExperimentRunner::Create(cfg);
    ASSERT_TRUE(runner_or.ok()) << runner_or.status().ToString();
    auto results_or = (*runner_or)->RunAll();
    ASSERT_TRUE(results_or.ok()) << results_or.status().ToString();
    std::vector<std::string>& rows = run == 0 ? first : second;
    for (const RunResult& r : *results_or) {
      rows.push_back(r.scheme + "|" + SummaryKey(r.metrics));
      for (const NodeUsage& u : r.per_node) {
        rows.push_back(NodeKey(u));
      }
    }
  }
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "replay diverged at row " << i;
  }
}

TEST(ChaosTest, ParallelRunAllWithFaultsMatchesSequential) {
  ExperimentConfig cfg;
  cfg.network.architecture = Architecture::kHierarchical;
  cfg.workload = ChaosWorkload();
  cfg.cache_fractions = {0.01, 0.03};
  cfg.schemes.resize(3);
  cfg.schemes[0].kind = schemes::SchemeKind::kLru;
  cfg.schemes[1].kind = schemes::SchemeKind::kCoordinated;
  cfg.schemes[2].kind = schemes::SchemeKind::kLncr;
  cfg.sim.faults = Schedules().back().config;  // "everything"

  cfg.jobs = 1;
  auto seq_runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(seq_runner.ok());
  auto seq = (*seq_runner)->RunAll();
  ASSERT_TRUE(seq.ok());

  cfg.jobs = 4;
  auto par_runner = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(par_runner.ok());
  auto par = (*par_runner)->RunAll();
  ASSERT_TRUE(par.ok());

  ASSERT_EQ(seq->size(), par->size());
  for (size_t i = 0; i < seq->size(); ++i) {
    EXPECT_EQ((*seq)[i].scheme, (*par)[i].scheme);
    EXPECT_EQ(SummaryKey((*seq)[i].metrics), SummaryKey((*par)[i].metrics))
        << (*seq)[i].scheme << " diverged between jobs=1 and jobs=4";
  }
}

/// Event-driven replay determinism under an *active* fault schedule:
/// contention reorders completions relative to the trace, and faults key
/// off ctx.now, so any drift between the event clock and the fault plane
/// would show up here. Two jobs=1 runs must be bit-identical, and jobs=4
/// (parallelism across cells, never within a replay) must match them.
TEST(ChaosTest, EventModeReplaysBitIdenticallyAcrossRunsAndJobs) {
  ExperimentConfig cfg;
  cfg.network.architecture = Architecture::kHierarchical;
  cfg.workload = ChaosWorkload();
  cfg.cache_fractions = {0.01, 0.03};
  cfg.schemes.resize(3);
  cfg.schemes[0].kind = schemes::SchemeKind::kLru;
  cfg.schemes[1].kind = schemes::SchemeKind::kCoordinated;
  cfg.schemes[2].kind = schemes::SchemeKind::kGds;
  cfg.sim.faults = Schedules().back().config;  // "everything"
  cfg.sim.contention.lookup_cost = 0.002;
  cfg.sim.contention.store_cost = 0.001;
  cfg.sim.contention.node_queue_capacity = 32;
  cfg.sim.contention.link_bandwidth = 5e6;

  double total_queue_wait = 0.0;
  uint64_t fault_events = 0;
  auto run = [&cfg, &total_queue_wait, &fault_events](int jobs) {
    ExperimentConfig c = cfg;
    c.jobs = jobs;
    std::vector<std::string> rows;
    auto runner_or = ExperimentRunner::Create(c);
    EXPECT_TRUE(runner_or.ok()) << runner_or.status().ToString();
    auto results_or = (*runner_or)->RunAll();
    EXPECT_TRUE(results_or.ok()) << results_or.status().ToString();
    for (const RunResult& r : *results_or) {
      rows.push_back(r.scheme + "|" + SummaryKey(r.metrics));
      for (const NodeUsage& u : r.per_node) rows.push_back(NodeKey(u));
      total_queue_wait += r.metrics.avg_queue_wait;
      fault_events += r.metrics.crashes_applied + r.metrics.retries +
                      r.metrics.degraded_decisions;
    }
    return rows;
  };

  const std::vector<std::string> first = run(1);
  const std::vector<std::string> second = run(1);
  const std::vector<std::string> parallel = run(4);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.size(), parallel.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "event replay diverged at row " << i;
    EXPECT_EQ(first[i], parallel[i])
        << "jobs=4 diverged from jobs=1 at row " << i;
  }
  // Neither knob was a no-op: queues actually charged waits, and the
  // fault schedule actually fired inside the event-driven replay.
  EXPECT_GT(total_queue_wait, 0.0);
  EXPECT_GT(fault_events, 0u);
}

/// The new topology axis under chaos: two-tier nodes + sibling
/// cooperation against the degraded-node schedules. Every scheme must
/// terminate with nothing silently dropped, the tier/sibling/degraded
/// counters must reconcile integer-exactly, and on an all-tiered run
/// every cache hit is exactly one tier serve.
TEST(ChaosTest, TieredSiblingCellsSurviveAndReconcile) {
  for (const NamedSchedule& schedule : Schedules()) {
    if (schedule.config.disk_fail_mtbf <= 0.0) continue;  // Degraded only.
    ExperimentConfig cfg;
    cfg.network.architecture = Architecture::kHierarchical;
    cfg.workload = ChaosWorkload();
    cfg.cache_fractions = {0.03};
    cfg.schemes = AllSchemes();
    cfg.sim.faults = schedule.config;
    cfg.sim.tier.ram_fraction = 0.2;
    cfg.sim.sibling.enabled = true;
    cfg.jobs = 1;

    auto runner_or = ExperimentRunner::Create(cfg);
    ASSERT_TRUE(runner_or.ok()) << runner_or.status().ToString();
    auto results_or = (*runner_or)->RunAll();
    ASSERT_TRUE(results_or.ok()) << results_or.status().ToString();

    const uint64_t expected =
        cfg.workload.num_requests -
        static_cast<uint64_t>(cfg.sim.warmup_fraction *
                              static_cast<double>(cfg.workload.num_requests));
    uint64_t disk_degraded = 0;
    uint64_t sibling_probes = 0;
    for (const RunResult& r : *results_or) {
      const std::string cell =
          std::string("tiered_sibling/") + schedule.name + "/" + r.scheme;
      CheckInvariants(r, schedule.config, expected, cell);
      SCOPED_TRACE(cell);
      // All nodes run a RAM tier, so every hit serves from exactly one
      // tier — including RAM-only serves during outages and sibling
      // serves at the sibling's store.
      EXPECT_EQ(r.metrics.ram_hits + r.metrics.disk_hits,
                r.metrics.cache_hits);
      EXPECT_EQ(r.metrics.served_requests + r.metrics.failed_requests +
                    r.metrics.shed_requests,
                r.metrics.requests);
      disk_degraded += r.metrics.disk_degraded;
      sibling_probes += r.metrics.sibling_probes;
    }
    // Neither new axis was a no-op across the matrix.
    EXPECT_GT(disk_degraded, 0u) << schedule.name;
    EXPECT_GT(sibling_probes, 0u) << schedule.name;
  }
}

/// Replay determinism on the full new axis: tiered + sibling + degraded
/// cells must replay bit-identically run to run, and jobs=4 (cell-level
/// parallelism over isolated cache planes) must match jobs=1 exactly.
TEST(ChaosTest, TieredSiblingDegradedReplaysBitIdenticallyAcrossJobs) {
  ExperimentConfig cfg;
  cfg.network.architecture = Architecture::kHierarchical;
  cfg.workload = ChaosWorkload();
  cfg.cache_fractions = {0.01, 0.03};
  cfg.schemes.resize(3);
  cfg.schemes[0].kind = schemes::SchemeKind::kLru;
  cfg.schemes[1].kind = schemes::SchemeKind::kCoordinated;
  cfg.schemes[2].kind = schemes::SchemeKind::kLncr;
  cfg.sim.faults = Schedules().back().config;  // "everything" (incl. disks)
  cfg.sim.tier.ram_fraction = 0.2;
  cfg.sim.sibling.enabled = true;

  auto run = [&cfg](int jobs) {
    ExperimentConfig c = cfg;
    c.jobs = jobs;
    std::vector<std::string> rows;
    auto runner_or = ExperimentRunner::Create(c);
    EXPECT_TRUE(runner_or.ok()) << runner_or.status().ToString();
    auto results_or = (*runner_or)->RunAll();
    EXPECT_TRUE(results_or.ok()) << results_or.status().ToString();
    for (const RunResult& r : *results_or) {
      rows.push_back(r.scheme + "|" + SummaryKey(r.metrics));
      for (const NodeUsage& u : r.per_node) rows.push_back(NodeKey(u));
    }
    return rows;
  };

  const std::vector<std::string> first = run(1);
  const std::vector<std::string> second = run(1);
  const std::vector<std::string> parallel = run(4);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.size(), parallel.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i])
        << "tiered+sibling replay diverged at row " << i;
    EXPECT_EQ(first[i], parallel[i])
        << "jobs=4 diverged from jobs=1 at row " << i;
  }
}

/// Degradation shape on the new axis: under the same disk-outage
/// schedule, tiered Coordinated (whose RAM tier keeps serving through
/// outages) must never fall below single-tier LRU — the coordination
/// and the extra tier may lose some edge to the faults, but they cannot
/// invert the paper's ordering.
TEST(ChaosTest, TieredCoordinatedStaysAheadOfSingleTierLruUnderDiskFaults) {
  FaultScheduleConfig disks;
  disks.disk_fail_mtbf = 25.0;
  disks.disk_fail_downtime = 10.0;

  auto run = [&](schemes::SchemeKind kind, double ram_fraction)
      -> MetricsSummary {
    ExperimentConfig cfg;
    cfg.network.architecture = Architecture::kHierarchical;
    cfg.workload = ChaosWorkload();
    cfg.cache_fractions = {0.03};
    cfg.schemes.resize(1);
    cfg.schemes[0].kind = kind;
    cfg.sim.faults = disks;
    cfg.sim.tier.ram_fraction = ram_fraction;
    cfg.jobs = 1;
    auto runner_or = ExperimentRunner::Create(cfg);
    EXPECT_TRUE(runner_or.ok());
    auto results_or = (*runner_or)->RunAll();
    EXPECT_TRUE(results_or.ok());
    return results_or->front().metrics;
  };

  const MetricsSummary lru = run(schemes::SchemeKind::kLru, 0.0);
  const MetricsSummary coord = run(schemes::SchemeKind::kCoordinated, 0.2);
  // Coordinated's tiered run stays at or ahead of single-tier LRU on
  // both headline metrics (small margins guard against noise only; in
  // practice it remains clearly ahead).
  EXPECT_LT(coord.avg_latency, lru.avg_latency * 1.05);
  EXPECT_GT(coord.byte_hit_ratio, lru.byte_hit_ratio * 0.95);
  // The RAM tier actually absorbed serves during the outages.
  EXPECT_GT(coord.ram_hits, 0u);
  EXPECT_GT(coord.disk_degraded, 0u);
}

/// Degradation shape (the paper's coordination argument under churn):
/// moderate crash rates cost Coordinated some of its edge but must leave
/// it degrading *toward* LRU-level latency, not collapsing below it —
/// coordination state is soft state, so losing it reverts nodes to
/// local-quality decisions, it does not poison them.
TEST(ChaosTest, CoordinatedDegradesTowardNotBelowLru) {
  ExperimentConfig cfg;
  cfg.network.architecture = Architecture::kHierarchical;
  cfg.workload = ChaosWorkload();
  cfg.workload.num_requests = 12'000 * static_cast<uint64_t>(ChaosScale());
  cfg.cache_fractions = {0.03};
  cfg.schemes.resize(2);
  cfg.schemes[0].kind = schemes::SchemeKind::kLru;
  cfg.schemes[1].kind = schemes::SchemeKind::kCoordinated;
  cfg.jobs = 1;

  auto run = [&](const FaultScheduleConfig& faults)
      -> std::map<std::string, double> {
    ExperimentConfig c = cfg;
    c.sim.faults = faults;
    auto runner_or = ExperimentRunner::Create(c);
    EXPECT_TRUE(runner_or.ok());
    auto results_or = (*runner_or)->RunAll();
    EXPECT_TRUE(results_or.ok());
    std::map<std::string, double> latency;
    for (const RunResult& r : *results_or) {
      latency[r.scheme] = r.metrics.avg_latency;
    }
    return latency;
  };

  FaultScheduleConfig moderate;
  moderate.node_crash_mtbf = 40.0;
  moderate.node_downtime = 10.0;

  const auto clean = run(FaultScheduleConfig());
  const auto faulted = run(moderate);
  ASSERT_EQ(clean.size(), 2u);
  ASSERT_EQ(faulted.size(), 2u);

  const double coord_clean = clean.at("Coordinated");
  const double coord_faulted = faulted.at("Coordinated");
  const double lru_faulted = faulted.at("LRU");

  // Crashes cost Coordinated latency (cold restarts lose its placements
  // and d-cache state)...
  EXPECT_GT(coord_faulted, coord_clean * 0.999);
  // ...but it degrades toward LRU, not below it: under the same crash
  // schedule Coordinated stays within 25% of LRU's latency (in practice
  // it remains ahead; the margin guards against noise, not regressions).
  EXPECT_LT(coord_faulted, lru_faulted * 1.25);
}

}  // namespace
}  // namespace cascache::sim
