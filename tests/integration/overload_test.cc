/// Overload behavior of the event-driven replay: bounded node queues
/// under an open-loop arrival ramp must shed deterministically, and every
/// shed must reconcile integer-exactly between the aggregate summary and
/// the per-node counters (no request silently dropped or double-counted).
#include <algorithm>

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace cascache::sim {
namespace {

/// A single chain of caches (fanout 1): every request climbs the same
/// nodes, so the offered load per node is exactly the arrival rate and
/// the overload point is controlled by lookup_cost * arrival_rate.
ExperimentConfig ChainConfig() {
  ExperimentConfig config;
  config.network.architecture = Architecture::kHierarchical;
  config.network.tree.depth = 3;
  config.network.tree.fanout = 1;
  config.workload.num_objects = 150;
  config.workload.num_requests = 6000;
  config.workload.num_clients = 20;
  config.workload.num_servers = 5;
  config.workload.seed = 13;
  config.cache_fractions = {0.05};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated}};
  config.jobs = 1;
  config.sim.contention.lookup_cost = 0.05;
  config.sim.contention.store_cost = 0.02;
  config.sim.contention.node_queue_capacity = 8;
  config.sim.contention.link_bandwidth = 1e7;
  return config;
}

uint64_t SumSheds(const RunResult& r) {
  uint64_t total = 0;
  for (const NodeUsage& u : r.per_node) total += u.counters.sheds;
  return total;
}

uint64_t SumStoreSheds(const RunResult& r) {
  uint64_t total = 0;
  for (const NodeUsage& u : r.per_node) total += u.counters.store_sheds;
  return total;
}

TEST(OverloadTest, UnderloadedRampShedsNothing) {
  ExperimentConfig config = ChainConfig();
  // 1 req/s against 0.05 s of service: utilization 5%, queues never fill.
  config.sim.contention.arrival_rate = 1.0;
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  for (const RunResult& r : *results_or) {
    SCOPED_TRACE(r.scheme);
    const MetricsSummary& m = r.metrics;
    EXPECT_EQ(m.shed_requests, 0u);
    EXPECT_EQ(m.served_requests, m.requests - m.failed_requests);
    EXPECT_EQ(SumSheds(r), 0u);
    // Queues were touched (nonzero service cost) but never overflowed.
    EXPECT_GT(m.requests, 0u);
  }
}

TEST(OverloadTest, OverloadedArrivalsShedAndReconcile) {
  ExperimentConfig config = ChainConfig();
  // 100 req/s against 0.05 s of per-node service: utilization 5x. The
  // leaf queue saturates at capacity 8 and refuses most arrivals.
  config.sim.contention.arrival_rate = 100.0;
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  for (const RunResult& r : *results_or) {
    SCOPED_TRACE(r.scheme);
    const MetricsSummary& m = r.metrics;
    // Overload: a large share of measured requests were refused.
    EXPECT_GT(m.shed_requests, 0u);
    EXPECT_LT(m.served_requests, m.requests);
    // Integer-exact reconciliation against the per-node counters.
    EXPECT_EQ(SumSheds(r), m.shed_requests);
    EXPECT_EQ(SumStoreSheds(r), m.shed_placements);
    EXPECT_EQ(m.served_requests,
              m.requests - m.failed_requests - m.shed_requests);
    // Waiting actually happened, and some queue hit its bound. The gauge
    // records backlog at refusals too, where the observed depth may
    // exceed the capacity (a request arriving "behind" one that waited
    // downstream sees the full future backlog), so only the lower bound
    // is pinned.
    EXPECT_GT(m.avg_queue_wait, 0.0);
    uint64_t max_depth = 0;
    for (const NodeUsage& u : r.per_node) {
      max_depth = std::max(max_depth, u.counters.max_queue_depth);
    }
    EXPECT_GE(max_depth, 7u);
  }
}

TEST(OverloadTest, RampDrivesTheSystemIntoCollapse) {
  ExperimentConfig config = ChainConfig();
  // Start well under capacity and ramp up 2%/s: the run crosses the
  // overload boundary mid-trace, after which sheds dominate.
  config.sim.contention.arrival_rate = 2.0;
  config.sim.contention.arrival_ramp = 0.02;
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  for (const RunResult& r : *results_or) {
    SCOPED_TRACE(r.scheme);
    const MetricsSummary& m = r.metrics;
    EXPECT_GT(m.shed_requests, 0u);
    EXPECT_GT(m.served_requests, 0u);
    EXPECT_EQ(SumSheds(r), m.shed_requests);
    EXPECT_EQ(m.served_requests,
              m.requests - m.failed_requests - m.shed_requests);
  }
}

TEST(OverloadTest, OverloadRunsAreDeterministic) {
  ExperimentConfig config = ChainConfig();
  config.sim.contention.arrival_rate = 100.0;
  auto run = [&config] {
    auto runner_or = ExperimentRunner::Create(config);
    EXPECT_TRUE(runner_or.ok()) << runner_or.status();
    auto results_or = (*runner_or)->RunAll();
    EXPECT_TRUE(results_or.ok()) << results_or.status();
    return std::move(results_or).value();
  };
  const std::vector<RunResult> a = run();
  const std::vector<RunResult> b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].scheme);
    EXPECT_EQ(a[i].metrics.shed_requests, b[i].metrics.shed_requests);
    EXPECT_EQ(a[i].metrics.shed_placements, b[i].metrics.shed_placements);
    EXPECT_EQ(a[i].metrics.served_requests, b[i].metrics.served_requests);
    // Bit-identical floating-point aggregates, not just close ones.
    EXPECT_EQ(a[i].metrics.avg_latency, b[i].metrics.avg_latency);
    EXPECT_EQ(a[i].metrics.avg_queue_wait, b[i].metrics.avg_queue_wait);
  }
}

}  // namespace
}  // namespace cascache::sim
