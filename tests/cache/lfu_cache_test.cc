#include "cache/lfu_cache.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cascache::cache {
namespace {

TEST(LfuCacheTest, InsertStartsAtCountOne) {
  LfuCache cache(100);
  bool inserted = false;
  cache.Insert(1, 40, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(cache.CountOf(1), 1u);
  EXPECT_EQ(cache.used_bytes(), 40u);
}

TEST(LfuCacheTest, TouchIncrementsCount) {
  LfuCache cache(100);
  cache.Insert(1, 40);
  EXPECT_TRUE(cache.Touch(1));
  EXPECT_TRUE(cache.Touch(1));
  EXPECT_EQ(cache.CountOf(1), 3u);
  EXPECT_FALSE(cache.Touch(2));
}

TEST(LfuCacheTest, EvictsLeastFrequentlyUsed) {
  LfuCache cache(100);
  cache.Insert(1, 40);
  cache.Insert(2, 40);
  cache.Touch(1);  // Object 1 hotter.
  const auto evicted = cache.Insert(3, 40);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(LfuCacheTest, CountResetsAfterEviction) {
  LfuCache cache(80);
  cache.Insert(1, 40);
  for (int i = 0; i < 10; ++i) cache.Touch(1);
  cache.Insert(2, 80);  // Evicts everything including hot object 1.
  EXPECT_FALSE(cache.Contains(1));
  cache.Insert(1, 40);  // Re-enter: count starts over.
  EXPECT_EQ(cache.CountOf(1), 1u);
}

TEST(LfuCacheTest, ReinsertOnlyTouches) {
  LfuCache cache(100);
  cache.Insert(1, 40);
  bool inserted = true;
  cache.Insert(1, 40, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(cache.CountOf(1), 2u);
  EXPECT_EQ(cache.used_bytes(), 40u);
}

TEST(LfuCacheTest, OversizedRejected) {
  LfuCache cache(100);
  bool inserted = true;
  cache.Insert(1, 101, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(cache.num_objects(), 0u);
}

TEST(LfuCacheTest, EraseAndClear) {
  LfuCache cache(100);
  cache.Insert(1, 40);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  cache.Insert(2, 40);
  cache.Clear();
  EXPECT_EQ(cache.num_objects(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LfuCacheTest, RandomOpsPreserveAccounting) {
  util::Rng rng(11);
  LfuCache cache(600);
  std::unordered_map<ObjectId, uint64_t> resident;
  for (int step = 0; step < 10000; ++step) {
    const ObjectId id = static_cast<ObjectId>(rng.NextUint64(40));
    if (rng.NextBool(0.7)) {
      const uint64_t size =
          resident.count(id) ? resident[id] : 1 + rng.NextUint64(150);
      bool inserted = false;
      const auto evicted = cache.Insert(id, size, &inserted);
      for (ObjectId v : evicted) resident.erase(v);
      if (inserted) resident[id] = size;
    } else {
      cache.Erase(id);
      resident.erase(id);
    }
    uint64_t sum = 0;
    for (const auto& [oid, sz] : resident) sum += sz;
    ASSERT_EQ(cache.used_bytes(), sum);
    ASSERT_EQ(cache.num_objects(), resident.size());
  }
}

}  // namespace
}  // namespace cascache::cache
