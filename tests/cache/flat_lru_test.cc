#include "cache/flat_lru.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cascache::cache {
namespace {

TEST(FlatLruTest, InsertAndContains) {
  FlatLru cache(100);
  bool inserted = false;
  EXPECT_TRUE(cache.Insert(1, 40, &inserted).empty());
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 40u);
  EXPECT_EQ(cache.num_objects(), 1u);
}

TEST(FlatLruTest, EvictsLeastRecentlyUsed) {
  FlatLru cache(100);
  cache.Insert(1, 40);
  cache.Insert(2, 40);
  const auto evicted = cache.Insert(3, 40);  // Must evict object 1.
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(FlatLruTest, TouchPreventsEviction) {
  FlatLru cache(100);
  cache.Insert(1, 40);
  cache.Insert(2, 40);
  EXPECT_TRUE(cache.Touch(1));  // 2 becomes LRU.
  const auto evicted = cache.Insert(3, 40);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(FlatLruTest, TouchMissingReturnsFalse) {
  FlatLru cache(100);
  EXPECT_FALSE(cache.Touch(42));
}

TEST(FlatLruTest, ReinsertOnlyTouches) {
  FlatLru cache(100);
  cache.Insert(1, 40);
  cache.Insert(2, 40);
  bool inserted = true;
  EXPECT_TRUE(cache.Insert(1, 40, &inserted).empty());
  EXPECT_FALSE(inserted);  // Already present: no write.
  EXPECT_EQ(cache.used_bytes(), 80u);
  // Object 1 is now MRU; inserting evicts 2.
  const auto evicted = cache.Insert(3, 40);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 2u);
}

TEST(FlatLruTest, ObjectLargerThanCapacityRejected) {
  FlatLru cache(100);
  cache.Insert(1, 50);
  bool inserted = true;
  EXPECT_TRUE(cache.Insert(2, 101, &inserted).empty());
  EXPECT_FALSE(inserted);
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(1));  // Nothing evicted for it.
}

TEST(FlatLruTest, MultiEviction) {
  FlatLru cache(100);
  cache.Insert(1, 30);
  cache.Insert(2, 30);
  cache.Insert(3, 30);
  // 80 more bytes cannot coexist with any 30-byte object (capacity 100),
  // so all three residents are evicted in LRU order.
  const auto evicted = cache.Insert(4, 80);
  EXPECT_EQ(evicted, (std::vector<ObjectId>{1, 2, 3}));
  EXPECT_EQ(cache.used_bytes(), 80u);
  EXPECT_TRUE(cache.Contains(4));
}

TEST(FlatLruTest, EraseFreesSpace) {
  FlatLru cache(100);
  cache.Insert(1, 60);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  bool inserted = false;
  cache.Insert(2, 100, &inserted);
  EXPECT_TRUE(inserted);
}

TEST(FlatLruTest, ClearResets) {
  FlatLru cache(100);
  cache.Insert(1, 60);
  cache.Clear();
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_EQ(cache.num_objects(), 0u);
  EXPECT_FALSE(cache.Contains(1));
}

TEST(FlatLruTest, LruVictimIsOldestUntouched) {
  FlatLru cache(1000);
  cache.Insert(1, 10);
  cache.Insert(2, 10);
  cache.Insert(3, 10);
  EXPECT_EQ(cache.LruVictim(), 1u);
  cache.Touch(1);
  EXPECT_EQ(cache.LruVictim(), 2u);
}

// Property test: used_bytes always equals the sum of resident object
// sizes, and never exceeds capacity.
TEST(FlatLruTest, RandomOpsPreserveByteAccounting) {
  util::Rng rng(77);
  FlatLru cache(500);
  std::unordered_map<ObjectId, uint64_t> resident;
  for (int step = 0; step < 20000; ++step) {
    const ObjectId id = static_cast<ObjectId>(rng.NextUint64(60));
    if (rng.NextBool(0.8)) {
      const uint64_t size = 1 + rng.NextUint64(120);
      bool inserted = false;
      const auto evicted = cache.Insert(id, resident.count(id)
                                                ? resident[id]
                                                : size, &inserted);
      for (ObjectId v : evicted) resident.erase(v);
      if (inserted) resident[id] = size;
    } else {
      cache.Erase(id);
      resident.erase(id);
    }
    uint64_t sum = 0;
    for (const auto& [oid, sz] : resident) sum += sz;
    ASSERT_EQ(cache.used_bytes(), sum);
    ASSERT_LE(cache.used_bytes(), cache.capacity_bytes());
    ASSERT_EQ(cache.num_objects(), resident.size());
    if (step % 997 == 0) {
      ASSERT_TRUE(cache.CheckInvariants());
    }
  }
  ASSERT_TRUE(cache.CheckInvariants());
}

}  // namespace
}  // namespace cascache::cache
