#include "cache/descriptor.h"

#include <gtest/gtest.h>

namespace cascache::cache {
namespace {

TEST(DescriptorTest, FreshDescriptorHasNoHistory) {
  ObjectDescriptor desc;
  EXPECT_EQ(desc.num_accesses, 0);
  EXPECT_EQ(desc.miss_penalty, 0.0);
  EXPECT_EQ(desc.frequency, 0.0);
}

TEST(DescriptorTest, RecordAccessGrowsWindow) {
  ObjectDescriptor desc;
  desc.RecordAccess(1.0);
  EXPECT_EQ(desc.num_accesses, 1);
  EXPECT_DOUBLE_EQ(desc.KthMostRecentAccess(1), 1.0);
  desc.RecordAccess(2.0);
  desc.RecordAccess(3.0);
  EXPECT_EQ(desc.num_accesses, 3);
  EXPECT_DOUBLE_EQ(desc.KthMostRecentAccess(1), 3.0);
  EXPECT_DOUBLE_EQ(desc.KthMostRecentAccess(2), 2.0);
  EXPECT_DOUBLE_EQ(desc.KthMostRecentAccess(3), 1.0);
  EXPECT_DOUBLE_EQ(desc.OldestAccess(), 1.0);
}

TEST(DescriptorTest, RingBufferWrapsAtCapacity) {
  ObjectDescriptor desc;
  for (int i = 1; i <= kMaxAccessWindow + 3; ++i) {
    desc.RecordAccess(static_cast<double>(i));
  }
  EXPECT_EQ(desc.num_accesses, kMaxAccessWindow);
  // Most recent is the last write; the oldest retained is (3+1).
  EXPECT_DOUBLE_EQ(desc.KthMostRecentAccess(1),
                   static_cast<double>(kMaxAccessWindow + 3));
  EXPECT_DOUBLE_EQ(desc.OldestAccess(), 4.0);
}

TEST(DescriptorTest, KthAccessInReverseChronologicalOrder) {
  ObjectDescriptor desc;
  for (int i = 1; i <= 5; ++i) desc.RecordAccess(i * 10.0);
  for (int k = 2; k <= 5; ++k) {
    EXPECT_LT(desc.KthMostRecentAccess(k), desc.KthMostRecentAccess(k - 1));
  }
}

}  // namespace
}  // namespace cascache::cache
