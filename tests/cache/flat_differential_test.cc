// Differential tests for the flat cache plane: the production stores
// (FlatLru over a struct-of-arrays slot pool, DCache over a pooled
// descriptor table) are driven through long random operation sequences in
// lock-step with the historical node-based implementations kept as
// oracles in tests/testing/ref_caches.h. Every observable — return
// values, membership, byte accounting, eviction order, descriptor
// contents — must match at every step.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/dcache.h"
#include "cache/flat_lru.h"
#include "testing/ref_caches.h"
#include "util/random.h"

namespace cascache::cache {
namespace {

using cascache::testing::RefDCache;
using cascache::testing::RefLruCache;
using trace::ObjectId;
using util::Rng;

TEST(FlatLruDifferentialTest, MatchesReferenceUnderRandomOps) {
  Rng rng(20260807);
  FlatLru flat(4096);
  RefLruCache ref(4096);
  for (int step = 0; step < 100000; ++step) {
    const ObjectId id = static_cast<ObjectId>(rng.NextUint64(200));
    const double dice = rng.NextDouble(0.0, 1.0);
    if (dice < 0.55) {
      const uint64_t size = 1 + rng.NextUint64(900);
      bool flat_inserted = false;
      bool ref_inserted = false;
      const std::vector<ObjectId>& flat_evicted =
          flat.Insert(id, size, &flat_inserted);
      const std::vector<ObjectId> ref_evicted =
          ref.Insert(id, size, &ref_inserted);
      ASSERT_EQ(flat_inserted, ref_inserted) << "step " << step;
      ASSERT_EQ(flat_evicted, ref_evicted) << "step " << step;
    } else if (dice < 0.75) {
      ASSERT_EQ(flat.Touch(id), ref.Touch(id)) << "step " << step;
    } else if (dice < 0.9) {
      ASSERT_EQ(flat.Erase(id), ref.Erase(id)) << "step " << step;
    } else if (dice < 0.98) {
      ASSERT_EQ(flat.Contains(id), ref.Contains(id)) << "step " << step;
    } else {
      flat.Clear();
      ref.Clear();
    }
    ASSERT_EQ(flat.used_bytes(), ref.used_bytes()) << "step " << step;
    ASSERT_EQ(flat.num_objects(), ref.num_objects()) << "step " << step;
    if (flat.num_objects() > 0) {
      ASSERT_EQ(flat.LruVictim(), ref.LruVictim()) << "step " << step;
    }
    if (step % 4999 == 0) {
      ASSERT_TRUE(flat.CheckInvariants());
    }
  }
  ASSERT_TRUE(flat.CheckInvariants());
}

// Clearing must recycle slots: after Clear the flat store re-fills the
// same slot span instead of growing, and still matches the oracle.
TEST(FlatLruDifferentialTest, ClearRecyclesSlotsAndStaysEquivalent) {
  FlatLru flat(10'000);
  RefLruCache ref(10'000);
  for (ObjectId id = 0; id < 100; ++id) {
    flat.Insert(id, 100);
    ref.Insert(id, 100);
  }
  const size_t span_before = flat.slot_span();
  flat.Clear();
  ref.Clear();
  for (ObjectId id = 100; id < 200; ++id) {
    flat.Insert(id, 100);
    ref.Insert(id, 100);
  }
  EXPECT_EQ(flat.slot_span(), span_before);  // Reused, not regrown.
  EXPECT_EQ(flat.used_bytes(), ref.used_bytes());
  for (ObjectId id = 0; id < 200; ++id) {
    ASSERT_EQ(flat.Contains(id), ref.Contains(id)) << "id " << id;
  }
  ASSERT_TRUE(flat.CheckInvariants());
}

ObjectDescriptor RandomDescriptor(Rng& rng, double now) {
  ObjectDescriptor desc;
  desc.size = 1 + rng.NextUint64(500);
  desc.frequency = rng.NextDouble(0.0, 50.0);
  const int accesses = static_cast<int>(rng.NextUint64(5));
  for (int i = 0; i < accesses; ++i) {
    desc.RecordAccess(now + static_cast<double>(i));
  }
  return desc;
}

void AssertDescriptorsEqual(const ObjectDescriptor* a,
                            const ObjectDescriptor* b, int step) {
  ASSERT_EQ(a == nullptr, b == nullptr) << "step " << step;
  if (a == nullptr) return;
  ASSERT_EQ(a->size, b->size) << "step " << step;
  ASSERT_EQ(a->frequency, b->frequency) << "step " << step;
  ASSERT_EQ(a->num_accesses, b->num_accesses) << "step " << step;
}

void RunDCacheDifferential(DCachePolicy policy) {
  Rng rng(policy == DCachePolicy::kLfu ? 11 : 13);
  DCache flat(64, policy);
  RefDCache ref(64, policy);
  double now = 0.0;
  for (int step = 0; step < 60000; ++step) {
    now += 1.0;
    const ObjectId id = static_cast<ObjectId>(rng.NextUint64(300));
    const double dice = rng.NextDouble(0.0, 1.0);
    if (dice < 0.6) {
      const ObjectDescriptor desc = RandomDescriptor(rng, now);
      ObjectDescriptor* a = flat.Insert(id, desc);
      ObjectDescriptor* b = ref.Insert(id, desc);
      AssertDescriptorsEqual(a, b, step);
    } else if (dice < 0.75) {
      ObjectDescriptor* a = flat.Find(id);
      ObjectDescriptor* b = ref.Find(id);
      AssertDescriptorsEqual(a, b, step);
      if (a != nullptr) {
        // Mutate through the pointer exactly like the request path does,
        // then re-prioritize. Both stores must track the same state.
        a->RecordAccess(now);
        b->RecordAccess(now);
        a->frequency += 0.5;
        b->frequency += 0.5;
        flat.Refresh(id, *a);
        ref.Refresh(id, *b);
      }
    } else if (dice < 0.9) {
      ASSERT_EQ(flat.Erase(id), ref.Erase(id)) << "step " << step;
    } else {
      ASSERT_EQ(flat.Contains(id), ref.Contains(id)) << "step " << step;
    }
    ASSERT_EQ(flat.size(), ref.size()) << "step " << step;
  }
  // Final full-membership sweep.
  for (ObjectId id = 0; id < 300; ++id) {
    ASSERT_EQ(flat.Contains(id), ref.Contains(id)) << "id " << id;
    AssertDescriptorsEqual(flat.Find(id), ref.Find(id), -1);
  }
}

TEST(DCacheDifferentialTest, MatchesReferenceUnderLfuPolicy) {
  RunDCacheDifferential(DCachePolicy::kLfu);
}

TEST(DCacheDifferentialTest, MatchesReferenceUnderLruPolicy) {
  RunDCacheDifferential(DCachePolicy::kLru);
}

// Zero-capacity and overwrite edge cases must agree too.
TEST(DCacheDifferentialTest, ZeroCapacityRejectsEverywhere) {
  DCache flat(0);
  RefDCache ref(0);
  ObjectDescriptor desc;
  desc.size = 10;
  desc.frequency = 1.0;
  EXPECT_EQ(flat.Insert(7, desc), nullptr);
  EXPECT_EQ(ref.Insert(7, desc), nullptr);
  EXPECT_FALSE(flat.Contains(7));
  EXPECT_FALSE(ref.Contains(7));
}

}  // namespace
}  // namespace cascache::cache
