#include "cache/gds_cache.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cascache::cache {
namespace {

TEST(GdsCacheTest, InsertAndCredit) {
  GdsCache cache(100);
  bool inserted = false;
  cache.Insert(1, 50, 10.0, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(cache.Contains(1));
  // Initial inflation L = 0: H = 0 + 10/50.
  EXPECT_DOUBLE_EQ(cache.CreditOf(1), 0.2);
  EXPECT_DOUBLE_EQ(cache.inflation(), 0.0);
}

TEST(GdsCacheTest, EvictsSmallestCreditAndInflates) {
  GdsCache cache(100);
  cache.Insert(1, 50, 5.0);    // H = 0.1.
  cache.Insert(2, 50, 20.0);   // H = 0.4.
  const auto evicted = cache.Insert(3, 50, 10.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);          // Smallest H evicted.
  EXPECT_DOUBLE_EQ(cache.inflation(), 0.1);  // L advanced to victim's H.
  EXPECT_DOUBLE_EQ(cache.CreditOf(3), 0.1 + 10.0 / 50.0);
}

TEST(GdsCacheTest, HitRefreshesCreditWithCurrentInflation) {
  GdsCache cache(100);
  cache.Insert(1, 50, 5.0);   // H = 0.1.
  cache.Insert(2, 50, 20.0);  // H = 0.4.
  cache.Insert(3, 50, 10.0);  // Evicts 1, L = 0.1.
  // Refresh object 2: H = L + 20/50 = 0.5.
  EXPECT_TRUE(cache.OnHit(2, 20.0));
  EXPECT_DOUBLE_EQ(cache.CreditOf(2), 0.5);
  EXPECT_FALSE(cache.OnHit(99, 1.0));
}

TEST(GdsCacheTest, InflationNeverDecreases) {
  util::Rng rng(3);
  GdsCache cache(500);
  double last = 0.0;
  for (int i = 0; i < 5000; ++i) {
    cache.Insert(static_cast<ObjectId>(rng.NextUint64(100)),
                 1 + rng.NextUint64(120), rng.NextDouble(0.0, 10.0));
    ASSERT_GE(cache.inflation(), last);
    last = cache.inflation();
    ASSERT_LE(cache.used_bytes(), cache.capacity_bytes());
  }
}

TEST(GdsCacheTest, AgingViaInflationOrdersEvictions) {
  // Credits are absolute (L at refresh time + cost/size), so a refreshed
  // cheap object can still rank below an object admitted at the same
  // inflation with a higher cost/size — GDS's aging behavior.
  GdsCache cache(100);
  cache.Insert(1, 50, 6.0);   // H = 0.12.
  cache.Insert(2, 50, 5.0);   // H = 0.10.
  cache.Insert(3, 50, 5.0);   // Evicts 2 (H 0.10), L = 0.10. H3 = 0.2.
  EXPECT_FALSE(cache.Contains(2));
  cache.OnHit(1, 1.0);        // H1 = 0.10 + 0.02 = 0.12 < H3 = 0.2.
  const auto evicted = cache.Insert(4, 50, 5.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
}

TEST(GdsCacheTest, OversizedRejected) {
  GdsCache cache(100);
  cache.Insert(1, 50, 1.0);
  bool inserted = true;
  cache.Insert(2, 200, 1.0, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(GdsCacheTest, ReinsertActsAsHit) {
  GdsCache cache(100);
  cache.Insert(1, 50, 5.0);
  bool inserted = true;
  cache.Insert(1, 50, 50.0, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_DOUBLE_EQ(cache.CreditOf(1), 1.0);  // 0 + 50/50.
  EXPECT_EQ(cache.used_bytes(), 50u);
}

TEST(GdsCacheTest, EraseAndClear) {
  GdsCache cache(100);
  cache.Insert(1, 50, 5.0);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  cache.Insert(2, 50, 5.0);
  cache.Clear();
  EXPECT_EQ(cache.num_objects(), 0u);
  EXPECT_DOUBLE_EQ(cache.inflation(), 0.0);
}

}  // namespace
}  // namespace cascache::cache
