#include "cache/dcache.h"

#include <gtest/gtest.h>

namespace cascache::cache {
namespace {

ObjectDescriptor Desc(uint64_t size, double frequency) {
  ObjectDescriptor desc;
  desc.size = size;
  desc.frequency = frequency;
  desc.frequency_time = 0.0;
  return desc;
}

TEST(DCacheTest, InsertAndFind) {
  DCache dcache(4);
  EXPECT_NE(dcache.Insert(1, Desc(100, 2.0)), nullptr);
  ASSERT_TRUE(dcache.Contains(1));
  const ObjectDescriptor* found = dcache.Find(1);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->size, 100u);
  EXPECT_EQ(dcache.size(), 1u);
  EXPECT_EQ(dcache.Find(2), nullptr);
}

TEST(DCacheTest, OverwriteKeepsSingleEntry) {
  DCache dcache(4);
  dcache.Insert(1, Desc(100, 2.0));
  dcache.Insert(1, Desc(200, 3.0));
  EXPECT_EQ(dcache.size(), 1u);
  EXPECT_EQ(dcache.Find(1)->size, 200u);
}

TEST(DCacheTest, EvictsLowestFrequencyWhenFull) {
  DCache dcache(3);
  dcache.Insert(1, Desc(10, 5.0));
  dcache.Insert(2, Desc(10, 1.0));  // Coldest.
  dcache.Insert(3, Desc(10, 3.0));
  EXPECT_NE(dcache.Insert(4, Desc(10, 4.0)), nullptr);
  EXPECT_FALSE(dcache.Contains(2));
  EXPECT_TRUE(dcache.Contains(1));
  EXPECT_TRUE(dcache.Contains(3));
  EXPECT_TRUE(dcache.Contains(4));
}

TEST(DCacheTest, AdmissionRejectsColderThanMinimum) {
  DCache dcache(2);
  dcache.Insert(1, Desc(10, 5.0));
  dcache.Insert(2, Desc(10, 3.0));
  // Frequency 1.0 < min(3.0): rejected, nothing evicted.
  EXPECT_EQ(dcache.Insert(3, Desc(10, 1.0)), nullptr);
  EXPECT_TRUE(dcache.Contains(1));
  EXPECT_TRUE(dcache.Contains(2));
  EXPECT_FALSE(dcache.Contains(3));
}

TEST(DCacheTest, RefreshChangesVictim) {
  DCache dcache(2);
  dcache.Insert(1, Desc(10, 5.0));
  dcache.Insert(2, Desc(10, 3.0));
  dcache.Refresh(1, Desc(10, 0.5));  // Object 1 becomes the coldest.
  dcache.Insert(3, Desc(10, 4.0));
  EXPECT_FALSE(dcache.Contains(1));
  EXPECT_TRUE(dcache.Contains(2));
  EXPECT_TRUE(dcache.Contains(3));
  dcache.Refresh(99, Desc(10, 1.0));  // Unknown id: no-op.
}

ObjectDescriptor DescWithAccess(double time) {
  ObjectDescriptor desc;
  desc.size = 10;
  desc.frequency = 1.0;
  desc.RecordAccess(time);
  return desc;
}

TEST(DCacheLruTest, EvictsLeastRecentlyAccessed) {
  DCache dcache(2, DCachePolicy::kLru);
  EXPECT_EQ(dcache.policy(), DCachePolicy::kLru);
  dcache.Insert(1, DescWithAccess(5.0));
  dcache.Insert(2, DescWithAccess(9.0));
  // Newcomer accessed at t=12: always admitted under LRU, evicting the
  // stalest descriptor (object 1) even though frequencies are equal.
  EXPECT_NE(dcache.Insert(3, DescWithAccess(12.0)), nullptr);
  EXPECT_FALSE(dcache.Contains(1));
  EXPECT_TRUE(dcache.Contains(2));
  EXPECT_TRUE(dcache.Contains(3));
}

TEST(DCacheLruTest, RefreshProtectsRecentlyUsed) {
  DCache dcache(2, DCachePolicy::kLru);
  dcache.Insert(1, DescWithAccess(5.0));
  dcache.Insert(2, DescWithAccess(9.0));
  ObjectDescriptor* first = dcache.Find(1);
  first->RecordAccess(11.0);
  dcache.Refresh(1, *first);  // Object 2 is now the stalest.
  dcache.Insert(3, DescWithAccess(12.0));
  EXPECT_TRUE(dcache.Contains(1));
  EXPECT_FALSE(dcache.Contains(2));
}

TEST(DCacheTest, ZeroCapacityRejectsEverything) {
  DCache dcache(0);
  EXPECT_EQ(dcache.Insert(1, Desc(10, 5.0)), nullptr);
  EXPECT_EQ(dcache.size(), 0u);
}

TEST(DCacheTest, EraseAndClear) {
  DCache dcache(4);
  dcache.Insert(1, Desc(10, 1.0));
  dcache.Insert(2, Desc(10, 2.0));
  EXPECT_TRUE(dcache.Erase(1));
  EXPECT_FALSE(dcache.Erase(1));
  EXPECT_EQ(dcache.size(), 1u);
  dcache.Clear();
  EXPECT_EQ(dcache.size(), 0u);
  EXPECT_FALSE(dcache.Contains(2));
}

TEST(DCacheTest, FindReturnsMutableDescriptor) {
  DCache dcache(4);
  dcache.Insert(1, Desc(10, 1.0));
  dcache.Find(1)->miss_penalty = 9.0;
  EXPECT_DOUBLE_EQ(dcache.Find(1)->miss_penalty, 9.0);
}

TEST(DCacheTest, CapacityNeverExceeded) {
  DCache dcache(5);
  for (ObjectId id = 0; id < 50; ++id) {
    dcache.Insert(id, Desc(10, static_cast<double>(id)));
    EXPECT_LE(dcache.size(), 5u);
  }
  // The five hottest descriptors survive.
  for (ObjectId id = 45; id < 50; ++id) EXPECT_TRUE(dcache.Contains(id));
}

}  // namespace
}  // namespace cascache::cache
