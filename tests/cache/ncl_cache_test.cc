#include "cache/ncl_cache.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace cascache::cache {
namespace {

TEST(NclCacheTest, InsertAndLookup) {
  NclCache cache(100);
  bool inserted = false;
  EXPECT_TRUE(cache.Insert(1, 40, 8.0, &inserted).empty());
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_DOUBLE_EQ(cache.LossOf(1), 8.0);
  EXPECT_EQ(cache.used_bytes(), 40u);
}

TEST(NclCacheTest, EvictsSmallestNclFirst) {
  NclCache cache(100);
  cache.Insert(1, 40, 4.0);   // NCL 0.1
  cache.Insert(2, 40, 20.0);  // NCL 0.5
  // Inserting 40 more bytes must purge object 1 (smallest NCL).
  const auto evicted = cache.Insert(3, 40, 12.0);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], 1u);
  EXPECT_TRUE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(NclCacheTest, NclNormalizesBySize) {
  NclCache cache(100);
  cache.Insert(1, 10, 2.0);   // NCL 0.2 — small object, small loss.
  cache.Insert(2, 80, 40.0);  // NCL 0.5.
  // Need 90 free bytes: greedy takes object 1 (NCL 0.2) first, which
  // frees only 10, then object 2.
  const auto plan = cache.PlanEviction(90);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.victims.size(), 2u);
  EXPECT_EQ(plan.victims[0], 1u);
  EXPECT_EQ(plan.victims[1], 2u);
  EXPECT_DOUBLE_EQ(plan.cost_loss, 42.0);
}

TEST(NclCacheTest, PlanWithEnoughFreeSpaceIsEmpty) {
  NclCache cache(100);
  cache.Insert(1, 30, 5.0);
  const auto plan = cache.PlanEviction(70);
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.victims.empty());
  EXPECT_DOUBLE_EQ(plan.cost_loss, 0.0);
}

TEST(NclCacheTest, PlanStopsAtSufficientBytes) {
  NclCache cache(100);
  cache.Insert(1, 50, 1.0);  // NCL 0.02 — cheapest.
  cache.Insert(2, 50, 9.0);  // NCL 0.18.
  const auto plan = cache.PlanEviction(40);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.victims.size(), 1u);
  EXPECT_EQ(plan.victims[0], 1u);
  EXPECT_DOUBLE_EQ(plan.cost_loss, 1.0);
}

TEST(NclCacheTest, PlanInfeasibleWhenLargerThanCapacity) {
  NclCache cache(100);
  cache.Insert(1, 100, 5.0);
  const auto plan = cache.PlanEviction(150);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.victims.size(), 1u);  // Tried everything.
}

TEST(NclCacheTest, PlanDoesNotMutate) {
  NclCache cache(100);
  cache.Insert(1, 60, 5.0);
  (void)cache.PlanEviction(80);
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_EQ(cache.used_bytes(), 60u);
}

TEST(NclCacheTest, PlanEvictionIntoReusesBuffer) {
  NclCache cache(100);
  cache.Insert(1, 40, 4.0);   // NCL 0.1
  cache.Insert(2, 40, 20.0);  // NCL 0.5
  NclCache::EvictionPlan plan;
  cache.PlanEvictionInto(90, &plan);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.victims.size(), 2u);
  EXPECT_EQ(plan.victims[0], 1u);
  EXPECT_EQ(plan.victims[1], 2u);
  EXPECT_DOUBLE_EQ(plan.cost_loss, 24.0);
  EXPECT_EQ(plan.freed_bytes, 80u);

  // The same plan object must be fully reset by the next call — no stale
  // victims, loss, or feasibility carried over.
  cache.PlanEvictionInto(10, &plan);
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.victims.empty());
  EXPECT_DOUBLE_EQ(plan.cost_loss, 0.0);
  EXPECT_EQ(plan.freed_bytes, 0u);
}

TEST(NclCacheTest, PlanEvictionIntoMatchesPlanEviction) {
  util::Rng rng(11);
  NclCache cache(1500);
  for (ObjectId id = 0; id < 40; ++id) {
    cache.Insert(id, 1 + rng.NextUint64(100), rng.NextDouble(0.0, 8.0));
  }
  NclCache::EvictionPlan reused;
  for (int trial = 0; trial < 30; ++trial) {
    const uint64_t need = 1 + rng.NextUint64(2000);
    const auto fresh = cache.PlanEviction(need);
    cache.PlanEvictionInto(need, &reused);
    EXPECT_EQ(reused.feasible, fresh.feasible);
    EXPECT_EQ(reused.victims, fresh.victims);
    EXPECT_DOUBLE_EQ(reused.cost_loss, fresh.cost_loss);
    EXPECT_EQ(reused.freed_bytes, fresh.freed_bytes);
  }
}

TEST(NclCacheTest, OversizedObjectRejected) {
  NclCache cache(100);
  cache.Insert(1, 60, 5.0);
  bool inserted = true;
  EXPECT_TRUE(cache.Insert(2, 150, 100.0, &inserted).empty());
  EXPECT_FALSE(inserted);
  EXPECT_TRUE(cache.Contains(1));
}

TEST(NclCacheTest, ReinsertUpdatesLoss) {
  NclCache cache(100);
  cache.Insert(1, 40, 8.0);
  bool inserted = true;
  cache.Insert(1, 40, 16.0, &inserted);
  EXPECT_FALSE(inserted);
  EXPECT_DOUBLE_EQ(cache.LossOf(1), 16.0);
  EXPECT_EQ(cache.used_bytes(), 40u);
}

TEST(NclCacheTest, UpdateLossReordersEviction) {
  NclCache cache(100);
  cache.Insert(1, 50, 1.0);
  cache.Insert(2, 50, 2.0);
  // Make object 2 the cheaper victim.
  EXPECT_TRUE(cache.UpdateLoss(2, 0.5));
  const auto plan = cache.PlanEviction(10);
  ASSERT_EQ(plan.victims.size(), 1u);
  EXPECT_EQ(plan.victims[0], 2u);
  EXPECT_FALSE(cache.UpdateLoss(99, 1.0));
}

TEST(NclCacheTest, IdsByNclAscending) {
  NclCache cache(1000);
  cache.Insert(1, 10, 5.0);   // 0.5
  cache.Insert(2, 10, 1.0);   // 0.1
  cache.Insert(3, 10, 3.0);   // 0.3
  EXPECT_EQ(cache.IdsByNcl(), (std::vector<ObjectId>{2, 3, 1}));
}

TEST(NclCacheTest, EraseAndClear) {
  NclCache cache(100);
  cache.Insert(1, 40, 8.0);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_FALSE(cache.Erase(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
  cache.Insert(2, 40, 8.0);
  cache.Clear();
  EXPECT_EQ(cache.num_objects(), 0u);
  EXPECT_EQ(cache.free_bytes(), 100u);
}

// Property: the greedy plan always selects a prefix of the ascending-NCL
// order, and its loss equals the sum of the victims' losses.
TEST(NclCacheTest, RandomPlansAreGreedyPrefixes) {
  util::Rng rng(5);
  NclCache cache(2000);
  for (ObjectId id = 0; id < 60; ++id) {
    cache.Insert(id, 1 + rng.NextUint64(80), rng.NextDouble(0.0, 10.0));
  }
  const std::vector<ObjectId> order = cache.IdsByNcl();
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t need = 1 + rng.NextUint64(2500);
    const auto plan = cache.PlanEviction(need);
    // Victims must be a prefix of the NCL order.
    for (size_t i = 0; i < plan.victims.size(); ++i) {
      ASSERT_LT(i, order.size());
      EXPECT_EQ(plan.victims[i], order[i]);
    }
    double loss = 0.0;
    for (ObjectId v : plan.victims) loss += cache.LossOf(v);
    EXPECT_DOUBLE_EQ(plan.cost_loss, loss);
    if (plan.feasible) {
      EXPECT_GE(cache.free_bytes() + plan.freed_bytes, need);
    }
  }
}

// Property: byte accounting under random churn.
TEST(NclCacheTest, RandomOpsPreserveByteAccounting) {
  util::Rng rng(9);
  NclCache cache(700);
  std::unordered_map<ObjectId, uint64_t> resident;
  for (int step = 0; step < 20000; ++step) {
    const ObjectId id = static_cast<ObjectId>(rng.NextUint64(50));
    const int op = static_cast<int>(rng.NextUint64(3));
    if (op == 0) {
      const uint64_t size =
          resident.count(id) ? resident[id] : 1 + rng.NextUint64(150);
      bool inserted = false;
      const auto evicted =
          cache.Insert(id, size, rng.NextDouble(0.0, 5.0), &inserted);
      for (ObjectId v : evicted) resident.erase(v);
      if (inserted) resident[id] = size;
    } else if (op == 1) {
      cache.UpdateLoss(id, rng.NextDouble(0.0, 5.0));
    } else {
      cache.Erase(id);
      resident.erase(id);
    }
    uint64_t sum = 0;
    for (const auto& [oid, sz] : resident) sum += sz;
    ASSERT_EQ(cache.used_bytes(), sum);
    ASSERT_LE(cache.used_bytes(), cache.capacity_bytes());
  }
}

}  // namespace
}  // namespace cascache::cache
