#include "cache/frequency.h"

#include <gtest/gtest.h>

namespace cascache::cache {
namespace {

FrequencyEstimatorParams Params(int window = 3, double aging = 600.0,
                                double min_span = 1.0) {
  FrequencyEstimatorParams params;
  params.window = window;
  params.aging_interval = aging;
  params.min_span = min_span;
  return params;
}

TEST(FrequencyTest, NoAccessesMeansZero) {
  FrequencyEstimator est(Params());
  ObjectDescriptor desc;
  EXPECT_EQ(est.Estimate(&desc, 100.0), 0.0);
  EXPECT_EQ(est.Peek(desc, 100.0), 0.0);
}

TEST(FrequencyTest, SlidingWindowFormula) {
  // f = K / (t - t_K) with K = 3 (paper §3.2). Short aging interval so
  // Peek recomputes rather than returning the estimate cached at the last
  // access.
  FrequencyEstimator est(Params(3, /*aging=*/5.0));
  ObjectDescriptor desc;
  est.OnAccess(&desc, 10.0);
  est.OnAccess(&desc, 20.0);
  est.OnAccess(&desc, 30.0);
  // At t=40: 3 accesses, t_3 = 10 -> f = 3/30.
  EXPECT_DOUBLE_EQ(est.Peek(desc, 40.0), 3.0 / 30.0);
}

TEST(FrequencyTest, UsesAvailableAccessesWhenFewerThanK) {
  FrequencyEstimator est(Params(3, /*aging=*/5.0));
  ObjectDescriptor desc;
  est.OnAccess(&desc, 10.0);
  // 1 access, span = 40 - 10.
  EXPECT_DOUBLE_EQ(est.Peek(desc, 40.0), 1.0 / 30.0);
  est.OnAccess(&desc, 20.0);
  EXPECT_DOUBLE_EQ(est.Peek(desc, 40.0), 2.0 / 30.0);
}

TEST(FrequencyTest, WindowDropsOldAccesses) {
  FrequencyEstimator est(Params(/*window=*/2, /*aging=*/5.0));
  ObjectDescriptor desc;
  est.OnAccess(&desc, 0.0);
  est.OnAccess(&desc, 90.0);
  est.OnAccess(&desc, 100.0);
  // Window 2: t_2 = 90 -> f = 2/(110-90).
  EXPECT_DOUBLE_EQ(est.Peek(desc, 110.0), 2.0 / 20.0);
}

TEST(FrequencyTest, MinSpanFloorsDenominator) {
  FrequencyEstimator est(Params(3, 600.0, /*min_span=*/1.0));
  ObjectDescriptor desc;
  est.OnAccess(&desc, 50.0);
  // Evaluated exactly at the access time: span 0 -> floored to 1.
  EXPECT_DOUBLE_EQ(est.Peek(desc, 50.0), 1.0);
}

TEST(FrequencyTest, OnAccessRefreshesCachedEstimate) {
  FrequencyEstimator est(Params());
  ObjectDescriptor desc;
  est.OnAccess(&desc, 10.0);
  EXPECT_DOUBLE_EQ(desc.frequency, 1.0);  // Span floored at the instant.
  EXPECT_DOUBLE_EQ(desc.frequency_time, 10.0);
}

TEST(FrequencyTest, EstimateCachedUntilAgingInterval) {
  FrequencyEstimator est(Params(3, /*aging=*/100.0));
  ObjectDescriptor desc;
  est.OnAccess(&desc, 0.0);
  const double cached = est.Estimate(&desc, 50.0);  // Within interval.
  EXPECT_DOUBLE_EQ(cached, desc.frequency);
  EXPECT_DOUBLE_EQ(desc.frequency_time, 0.0);  // Not refreshed yet.
  // Past the aging interval the estimate is recomputed (and decays).
  const double aged = est.Estimate(&desc, 200.0);
  EXPECT_DOUBLE_EQ(desc.frequency_time, 200.0);
  EXPECT_LT(aged, cached);
  EXPECT_DOUBLE_EQ(aged, 1.0 / 200.0);
}

TEST(FrequencyTest, AgingDecaysIdleObjects) {
  FrequencyEstimator est(Params(3, 10.0));
  ObjectDescriptor desc;
  est.OnAccess(&desc, 0.0);
  est.OnAccess(&desc, 1.0);
  est.OnAccess(&desc, 2.0);
  const double hot = est.Estimate(&desc, 3.0);
  const double cold = est.Estimate(&desc, 1000.0);
  EXPECT_GT(hot, 10.0 * cold);
}

TEST(FrequencyTest, PeekDoesNotMutate) {
  FrequencyEstimator est(Params(3, 10.0));
  ObjectDescriptor desc;
  est.OnAccess(&desc, 0.0);
  const double before_time = desc.frequency_time;
  (void)est.Peek(desc, 5000.0);
  EXPECT_DOUBLE_EQ(desc.frequency_time, before_time);
}

TEST(FrequencyTest, HigherRateGivesHigherEstimate) {
  FrequencyEstimator est(Params());
  ObjectDescriptor fast, slow;
  for (double t : {1.0, 2.0, 3.0}) est.OnAccess(&fast, t);
  for (double t : {1.0, 50.0, 100.0}) est.OnAccess(&slow, t);
  EXPECT_GT(est.Peek(fast, 101.0), est.Peek(slow, 101.0));
}

}  // namespace
}  // namespace cascache::cache
