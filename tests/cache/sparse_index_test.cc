// Tests for the sparse (hashed) mode of the store id->slot tables:
// cache::SlotIndex and util::DensePosMap. Sparse mode backs huge
// procedural catalogs (> 2^24 ids), where dense direct-index tables
// would blow the memory budget.

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "cache/flat_store.h"
#include "util/indexed_heap.h"
#include "util/random.h"

namespace cascache::cache {
namespace {

TEST(SparseSlotIndexTest, InsertLookupErase) {
  SlotIndex index;
  index.SetSparse(true);
  EXPECT_TRUE(index.sparse());
  EXPECT_EQ(index.Get(7), kNoSlot);

  index.Set(7, 1);
  index.Set(99'000'000, 2);  // Far beyond any dense table's reach.
  EXPECT_EQ(index.Get(7), 1u);
  EXPECT_EQ(index.Get(99'000'000), 2u);
  EXPECT_FALSE(index.Contains(8));

  index.Set(7, 5);  // Overwrite in place.
  EXPECT_EQ(index.Get(7), 5u);

  index.Erase(7);
  EXPECT_EQ(index.Get(7), kNoSlot);
  EXPECT_EQ(index.Get(99'000'000), 2u);
  index.Erase(7);  // Erasing an absent id is a no-op.
  EXPECT_EQ(index.Get(99'000'000), 2u);
}

TEST(SparseSlotIndexTest, MatchesDenseReferenceUnderRandomChurn) {
  SlotIndex sparse;
  sparse.SetSparse(true);
  std::unordered_map<trace::ObjectId, SlotId> reference;
  util::Rng rng(17);

  // Random insert/overwrite/erase churn over a small id universe forces
  // collision chains and exercises backward-shift deletion.
  for (int step = 0; step < 50'000; ++step) {
    const trace::ObjectId id =
        static_cast<trace::ObjectId>(rng.NextUint64(512));
    if (rng.NextBool(0.4)) {
      sparse.Erase(id);
      reference.erase(id);
    } else {
      const SlotId slot = static_cast<SlotId>(rng.NextUint64(kNoSlot));
      sparse.Set(id, slot);
      reference[id] = slot;
    }
  }
  for (trace::ObjectId id = 0; id < 512; ++id) {
    auto it = reference.find(id);
    EXPECT_EQ(sparse.Get(id), it == reference.end() ? kNoSlot : it->second)
        << "id " << id;
  }
}

TEST(SparseSlotIndexTest, GrowsPastInitialCapacity) {
  SlotIndex index;
  index.SetSparse(true);
  const size_t n = 100'000;  // >> kInitialBuckets; several doublings.
  for (size_t i = 0; i < n; ++i) {
    index.Set(static_cast<trace::ObjectId>(i * 1000 + 3),
              static_cast<SlotId>(i));
  }
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(index.Get(static_cast<trace::ObjectId>(i * 1000 + 3)),
              static_cast<SlotId>(i));
  }
  // The table is sized by resident entries, not by the id span.
  EXPECT_LT(index.span(), 8 * n);
}

TEST(SparseSlotIndexTest, ClearKeepsSparseMode) {
  SlotIndex index;
  index.SetSparse(true);
  index.Set(1'000'000, 9);
  index.Clear();
  EXPECT_TRUE(index.sparse());
  EXPECT_EQ(index.Get(1'000'000), kNoSlot);
  index.Set(1'000'000, 4);
  EXPECT_EQ(index.Get(1'000'000), 4u);
}

TEST(SparseSlotIndexTest, DenseModeUnchangedByDefault) {
  SlotIndex index;
  EXPECT_FALSE(index.sparse());
  index.Set(3, 7);
  EXPECT_EQ(index.Get(3), 7u);
  // Dense span tracks the largest id seen.
  EXPECT_GE(index.span(), 4u);
}

}  // namespace
}  // namespace cascache::cache

namespace cascache::util {
namespace {

TEST(SparseDensePosMapTest, InsertLookupEraseClear) {
  DensePosMap map;
  map.SetSparse(true);
  EXPECT_EQ(map.Lookup(5), kHeapNpos);
  map.Set(5, 0);
  map.Set(80'000'000, 1);
  EXPECT_EQ(map.Lookup(5), 0u);
  EXPECT_EQ(map.Lookup(80'000'000), 1u);
  map.Erase(5);
  EXPECT_EQ(map.Lookup(5), kHeapNpos);
  EXPECT_EQ(map.size(), 1u);
  map.Clear();
  EXPECT_EQ(map.Lookup(80'000'000), kHeapNpos);
  EXPECT_EQ(map.size(), 0u);
}

}  // namespace
}  // namespace cascache::util
