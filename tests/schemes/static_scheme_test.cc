#include "schemes/static_scheme.h"

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/simulator.h"
#include "testing/scenario.h"

namespace cascache::schemes {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;
using sim::CacheNodeConfig;
using sim::Simulator;

class StaticSchemeTest : public ::testing::Test {
 protected:
  // Objects: 0 and 1 are 100 B, object 2 is 200 B.
  StaticSchemeTest()
      : catalog_(MakeCatalog({{100, 0}, {100, 0}, {200, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {
    CacheNodeConfig config;
    config.mode = sim::CacheMode::kLru;
    config.capacity_bytes = 200;
    network_->ConfigureCaches(config);
  }

  trace::ObjectCatalog catalog_;
  std::unique_ptr<sim::Network> network_;
};

TEST_F(StaticSchemeTest, Properties) {
  StaticScheme scheme(10);
  EXPECT_EQ(scheme.name(), "STATIC");
  EXPECT_EQ(scheme.cache_mode(), sim::CacheMode::kLru);
  EXPECT_FALSE(scheme.uses_dcache());
  EXPECT_FALSE(scheme.frozen());
}

TEST_F(StaticSchemeTest, NothingCachedDuringLearning) {
  StaticScheme scheme(100);
  Simulator simulator(network_.get(), &scheme);
  for (double t = 1.0; t <= 5.0; t += 1.0) simulator.Step(At(t, 0), false);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(network_->node(v)->Contains(0));
  }
  EXPECT_FALSE(scheme.frozen());
  EXPECT_EQ(scheme.requests_seen(), 5u);
}

TEST_F(StaticSchemeTest, FreezeFillsByDemandDensity) {
  StaticScheme scheme(6);
  Simulator simulator(network_.get(), &scheme);
  // Demand: object 0 x3, object 2 x2, object 1 x1. Density (count/size):
  // obj0 3/100 > obj1 1/100 > obj2 2/200. Capacity 200 fits obj0+obj1.
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);
  simulator.Step(At(3.0, 2), false);
  simulator.Step(At(4.0, 2), false);
  simulator.Step(At(5.0, 1), false);
  simulator.Step(At(6.0, 0), false);  // Sixth request triggers the freeze.
  ASSERT_TRUE(scheme.frozen());
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network_->node(v)->Contains(0)) << "node " << v;
    EXPECT_TRUE(network_->node(v)->Contains(1)) << "node " << v;
    EXPECT_FALSE(network_->node(v)->Contains(2)) << "node " << v;
  }
}

TEST_F(StaticSchemeTest, ContentsNeverChangeAfterFreeze) {
  StaticScheme scheme(3);
  Simulator simulator(network_.get(), &scheme);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);
  simulator.Step(At(3.0, 0), false);  // Freeze: object 0 everywhere.
  ASSERT_TRUE(scheme.frozen());
  // Hammer object 1; it must never displace object 0.
  for (double t = 4.0; t <= 20.0; t += 1.0) simulator.Step(At(t, 1), false);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network_->node(v)->Contains(0));
    EXPECT_FALSE(network_->node(v)->Contains(1));
  }
}

TEST_F(StaticSchemeTest, FrozenHitsServeRequests) {
  StaticScheme scheme(2);
  Simulator simulator(network_.get(), &scheme);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);  // Freeze.
  simulator.Step(At(3.0, 0), true);   // Hit at the leaf.
  const sim::MetricsSummary s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_hops, 0.0);
}

TEST(StaticSchemeFactoryTest, RunnerDefaultsFreezeToWarmup) {
  sim::ExperimentConfig config;
  config.network.architecture = sim::Architecture::kHierarchical;
  config.network.tree.depth = 3;
  config.workload.num_objects = 300;
  config.workload.num_requests = 20'000;
  config.workload.num_clients = 50;
  config.workload.num_servers = 10;
  config.cache_fractions = {0.05};
  config.schemes = {{.kind = SchemeKind::kStatic}};
  auto runner_or = sim::ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok());
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  EXPECT_EQ((*results_or)[0].scheme, "STATIC");
  // Frozen placement serves a meaningful share of the measured half.
  EXPECT_GT((*results_or)[0].metrics.byte_hit_ratio, 0.05);
}

TEST(StaticSchemeFactoryTest, DirectMakeRequiresFreeze) {
  EXPECT_FALSE(MakeScheme({.kind = SchemeKind::kStatic}).ok());
  auto ok = MakeScheme(
      {.kind = SchemeKind::kStatic, .static_freeze_requests = 100});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->name(), "STATIC");
  EXPECT_EQ(SchemeSpec{.kind = SchemeKind::kStatic}.Label(), "STATIC");
}

}  // namespace
}  // namespace cascache::schemes
