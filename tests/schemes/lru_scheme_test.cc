#include "schemes/lru_scheme.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/scenario.h"

namespace cascache::schemes {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;
using sim::CacheNodeConfig;
using sim::Simulator;

class LruSchemeTest : public ::testing::Test {
 protected:
  // Chain: leaf=3, 2, 1, root=0; object 0 and 1 of 100 bytes each.
  LruSchemeTest()
      : catalog_(MakeCatalog({{100, 0}, {100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {
    CacheNodeConfig config;
    config.mode = sim::CacheMode::kLru;
    config.capacity_bytes = 100;  // Each node holds exactly one object.
    network_->ConfigureCaches(config);
  }

  trace::ObjectCatalog catalog_;
  std::unique_ptr<sim::Network> network_;
  LruScheme scheme_;
};

TEST_F(LruSchemeTest, PropertiesMatchPaperSetup) {
  EXPECT_EQ(scheme_.name(), "LRU");
  EXPECT_EQ(scheme_.cache_mode(), sim::CacheMode::kLru);
  EXPECT_FALSE(scheme_.uses_dcache());
}

TEST_F(LruSchemeTest, CachesEverywhereOnOriginMiss) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), true);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network_->node(v)->Contains(0)) << "node " << v;
  }
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().avg_write_bytes, 400.0);
}

TEST_F(LruSchemeTest, CachesOnlyBelowHitPoint) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);  // Object 0 everywhere.
  // Evict object 0 at the two lowest caches so the hit lands at node 1
  // (path index 2).
  network_->node(3)->lru()->Erase(0);
  network_->node(2)->lru()->Erase(0);
  sim::RequestMetrics metrics;
  simulator.Step(At(2.0, 0), true);
  // Hit at node 1; nodes 3 and 2 repopulated; node 0 untouched.
  EXPECT_TRUE(network_->node(3)->Contains(0));
  EXPECT_TRUE(network_->node(2)->Contains(0));
  const sim::MetricsSummary s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.avg_hops, 2.0);
  EXPECT_DOUBLE_EQ(s.avg_write_bytes, 200.0);
}

TEST_F(LruSchemeTest, EvictsLruOnContention) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);  // Object 0 everywhere.
  simulator.Step(At(2.0, 1), false);  // Object 1 replaces 0 (100-byte caches).
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(network_->node(v)->Contains(0));
    EXPECT_TRUE(network_->node(v)->Contains(1));
  }
}

TEST_F(LruSchemeTest, TouchOnHitProtectsRecency) {
  // Larger caches that fit both objects: hitting object 0 keeps it MRU.
  CacheNodeConfig config;
  config.mode = sim::CacheMode::kLru;
  config.capacity_bytes = 200;
  network_->ConfigureCaches(config);
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 1), false);
  simulator.Step(At(3.0, 0), false);  // Hit at the leaf; touch object 0.
  // Shrink to one object? Not possible live; instead verify LRU victim.
  EXPECT_EQ(network_->node(3)->lru()->LruVictim(), 1u);
}

}  // namespace
}  // namespace cascache::schemes
