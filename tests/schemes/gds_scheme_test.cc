#include "schemes/gds_scheme.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/scenario.h"

namespace cascache::schemes {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;
using sim::CacheNodeConfig;
using sim::Simulator;

class GdsSchemeTest : public ::testing::Test {
 protected:
  GdsSchemeTest()
      : catalog_(MakeCatalog({{100, 0}, {100, 0}, {100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {}

  void Configure(sim::CacheMode mode, uint64_t capacity) {
    CacheNodeConfig config;
    config.mode = mode;
    config.capacity_bytes = capacity;
    network_->ConfigureCaches(config);
  }

  trace::ObjectCatalog catalog_;
  std::unique_ptr<sim::Network> network_;
};

TEST_F(GdsSchemeTest, GdsProperties) {
  GdsScheme scheme;
  EXPECT_EQ(scheme.name(), "GDS");
  EXPECT_EQ(scheme.cache_mode(), sim::CacheMode::kGds);
  EXPECT_FALSE(scheme.uses_dcache());
}

TEST_F(GdsSchemeTest, GdsCachesEverywhere) {
  Configure(sim::CacheMode::kGds, 1000);
  GdsScheme scheme;
  Simulator simulator(network_.get(), &scheme);
  simulator.Step(At(1.0, 0), true);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network_->node(v)->Contains(0)) << "node " << v;
  }
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().avg_write_bytes, 400.0);
}

TEST_F(GdsSchemeTest, GdsCreditArithmeticOnChain) {
  // Under the latency-proportional cost model the GDS credit of every
  // object is delay/mean_size + L (cost/size = delay * (size/mean) / size),
  // so eviction ordering is driven purely by the inflation value at the
  // last refresh — verify the credit and inflation bookkeeping exactly.
  Configure(sim::CacheMode::kGds, 200);  // Two 100-byte objects per node.
  GdsScheme scheme;
  Simulator simulator(network_.get(), &scheme);

  simulator.Step(At(1.0, 0), false);
  EXPECT_DOUBLE_EQ(network_->node(3)->gds()->CreditOf(0), 0.01);
  simulator.Step(At(2.0, 1), false);
  EXPECT_DOUBLE_EQ(network_->node(3)->gds()->CreditOf(1), 0.01);

  // Object 2 needs 100 bytes: the tie between objects 0 and 1 breaks by
  // id, evicting object 0 and advancing L to its credit.
  simulator.Step(At(3.0, 2), false);
  EXPECT_FALSE(network_->node(3)->Contains(0));
  EXPECT_DOUBLE_EQ(network_->node(3)->gds()->inflation(), 0.01);
  EXPECT_DOUBLE_EQ(network_->node(3)->gds()->CreditOf(2), 0.02);

  // Re-requesting object 0 now evicts object 1 (minimum credit 0.01).
  simulator.Step(At(4.0, 0), false);
  EXPECT_TRUE(network_->node(3)->Contains(0));
  EXPECT_TRUE(network_->node(3)->Contains(2));
  EXPECT_FALSE(network_->node(3)->Contains(1));
  EXPECT_DOUBLE_EQ(network_->node(3)->gds()->CreditOf(0), 0.02);
}

TEST_F(GdsSchemeTest, LfuProperties) {
  LfuScheme scheme;
  EXPECT_EQ(scheme.name(), "LFU");
  EXPECT_EQ(scheme.cache_mode(), sim::CacheMode::kLfu);
  EXPECT_FALSE(scheme.uses_dcache());
}

TEST_F(GdsSchemeTest, LfuCachesEverywhereAndCounts) {
  Configure(sim::CacheMode::kLfu, 1000);
  LfuScheme scheme;
  Simulator simulator(network_.get(), &scheme);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);  // Hit at the leaf.
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network_->node(v)->Contains(0));
  }
  EXPECT_EQ(network_->node(3)->lfu()->CountOf(0), 2u);
  EXPECT_EQ(network_->node(0)->lfu()->CountOf(0), 1u);  // Root untouched.
}

TEST_F(GdsSchemeTest, LfuKeepsHotObjectUnderContention) {
  Configure(sim::CacheMode::kLfu, 100);
  LfuScheme scheme;
  Simulator simulator(network_.get(), &scheme);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);
  simulator.Step(At(3.0, 0), false);  // Count 3 at the leaf.
  simulator.Step(At(4.0, 1), false);  // One object per node: evicts 0.
  // LFU is in-cache only: insertion must evict the sole resident.
  EXPECT_TRUE(network_->node(3)->Contains(1));
  EXPECT_FALSE(network_->node(3)->Contains(0));
}

TEST_F(GdsSchemeTest, FactoryBuildsNewSchemes) {
  auto gds = MakeScheme({.kind = SchemeKind::kGds});
  ASSERT_TRUE(gds.ok());
  EXPECT_EQ((*gds)->name(), "GDS");
  auto lfu = MakeScheme({.kind = SchemeKind::kLfu});
  ASSERT_TRUE(lfu.ok());
  EXPECT_EQ((*lfu)->name(), "LFU");
  EXPECT_EQ(SchemeSpec{.kind = SchemeKind::kGds}.Label(), "GDS");
  EXPECT_EQ(SchemeSpec{.kind = SchemeKind::kLfu}.Label(), "LFU");
}

}  // namespace
}  // namespace cascache::schemes
