#include "schemes/modulo_scheme.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/scenario.h"

namespace cascache::schemes {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;
using sim::CacheNodeConfig;
using sim::Simulator;

// Chain with 4 cache levels: path from the leaf is [3, 2, 1, 0(root)],
// then one virtual hop to the origin (hierarchical), as in the paper's
// discussion of MODULO leaving levels 1-3 unused at radius 4.
class ModuloSchemeTest : public ::testing::Test {
 protected:
  ModuloSchemeTest()
      : catalog_(MakeCatalog({{100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {
    CacheNodeConfig config;
    config.mode = sim::CacheMode::kLru;
    config.capacity_bytes = 1000;
    network_->ConfigureCaches(config);
  }

  trace::ObjectCatalog catalog_;
  std::unique_ptr<sim::Network> network_;
};

TEST_F(ModuloSchemeTest, NameIncludesRadius) {
  EXPECT_EQ(ModuloScheme(4).name(), "MODULO(4)");
  EXPECT_EQ(ModuloScheme(4).radius(), 4);
  EXPECT_FALSE(ModuloScheme(4).uses_dcache());
}

TEST_F(ModuloSchemeTest, RadiusFourUsesOnlyLeafInHierarchy) {
  // Origin-served request: serving point is 4 hops above the leaf (3 tree
  // links + the virtual server link). Only the leaf (distance 4) caches.
  ModuloScheme scheme(4);
  Simulator simulator(network_.get(), &scheme);
  simulator.Step(At(1.0, 0), true);
  EXPECT_TRUE(network_->node(3)->Contains(0));   // Leaf.
  EXPECT_FALSE(network_->node(2)->Contains(0));  // Level 1.
  EXPECT_FALSE(network_->node(1)->Contains(0));  // Level 2.
  EXPECT_FALSE(network_->node(0)->Contains(0));  // Root.
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().avg_write_bytes, 100.0);
}

TEST_F(ModuloSchemeTest, RadiusOneBehavesLikeLru) {
  ModuloScheme scheme(1);
  Simulator simulator(network_.get(), &scheme);
  simulator.Step(At(1.0, 0), true);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network_->node(v)->Contains(0)) << "node " << v;
  }
}

TEST_F(ModuloSchemeTest, RadiusTwoPlacesEveryOtherNode) {
  // Distances from the serving point: leaf=4, node2=3, node1=2, root=1.
  ModuloScheme scheme(2);
  Simulator simulator(network_.get(), &scheme);
  simulator.Step(At(1.0, 0), true);
  EXPECT_TRUE(network_->node(3)->Contains(0));   // Distance 4.
  EXPECT_FALSE(network_->node(2)->Contains(0));  // Distance 3.
  EXPECT_TRUE(network_->node(1)->Contains(0));   // Distance 2.
  EXPECT_FALSE(network_->node(0)->Contains(0));  // Distance 1.
}

TEST_F(ModuloSchemeTest, PlacementMeasuredFromHitPoint) {
  ModuloScheme scheme(2);
  Simulator simulator(network_.get(), &scheme);
  simulator.Step(At(1.0, 0), false);  // Object at nodes 3 and 1.
  network_->node(3)->lru()->Erase(0);
  // Next request hits at node 1 (path index 2). Distances below the hit:
  // node2=1, leaf=2 -> only the leaf caches.
  simulator.Step(At(2.0, 0), true);
  EXPECT_TRUE(network_->node(3)->Contains(0));
  EXPECT_FALSE(network_->node(2)->Contains(0));
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().avg_hops, 2.0);
}

TEST_F(ModuloSchemeTest, TouchesHitCache) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}, {100, 0}});
  auto network = MakeChainNetwork(&catalog, 4);
  CacheNodeConfig config;
  config.mode = sim::CacheMode::kLru;
  config.capacity_bytes = 200;
  network->ConfigureCaches(config);
  ModuloScheme scheme(4);
  Simulator simulator(network.get(), &scheme);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 1), false);
  simulator.Step(At(3.0, 0), false);  // Hit at leaf: touch object 0.
  EXPECT_EQ(network->node(3)->lru()->LruVictim(), 1u);
}

TEST(ModuloFactoryTest, RejectsNonPositiveRadius) {
  EXPECT_FALSE(MakeScheme({.kind = SchemeKind::kModulo, .modulo_radius = 0})
                   .ok());
  EXPECT_TRUE(MakeScheme({.kind = SchemeKind::kModulo, .modulo_radius = 3})
                  .ok());
}

}  // namespace
}  // namespace cascache::schemes
