// Differential and invariant properties across schemes, run on full
// randomized workloads: equivalences the design implies (MODULO with
// radius 1 degenerates to LRU, §3.3), structural cache invariants after
// sustained churn, and metric conservation laws.

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace cascache::schemes {
namespace {

using sim::Architecture;
using sim::ExperimentConfig;
using sim::ExperimentRunner;
using sim::MetricsSummary;
using sim::RunResult;

ExperimentConfig SmallConfig(Architecture arch, uint64_t seed = 77) {
  ExperimentConfig config;
  config.network.architecture = arch;
  config.network.tiers.wan_nodes = 20;
  config.network.tiers.man_nodes = 20;
  config.network.tiers.wan_redundancy_edges = 10;
  config.network.tiers.man_redundancy_edges = 8;
  config.network.tree.depth = 3;
  config.workload.num_objects = 800;
  config.workload.num_requests = 60'000;
  config.workload.num_clients = 100;
  config.workload.num_servers = 20;
  config.workload.seed = seed;
  config.cache_fractions = {0.02};
  return config;
}

class ModuloOneEqualsLru : public ::testing::TestWithParam<Architecture> {};

TEST_P(ModuloOneEqualsLru, IdenticalMetrics) {
  // A cache radius of 1 places at every node the response crosses, so
  // MODULO(1) degenerates to LRU (paper §3.3). Under the hierarchical
  // architecture the equivalence is exact (the origin sits one virtual
  // hop above the root, so every cache is at positive distance). Under
  // en-route one corner differs: LRU also caches at the origin's
  // co-located attach node (hop distance 0); those copies are reachable
  // at zero extra delay but *occupy space*, displacing useful objects, so
  // the two schemes drift apart slightly — verify they stay close.
  const Architecture arch = GetParam();
  ExperimentConfig config = SmallConfig(arch);
  config.schemes = {{.kind = SchemeKind::kLru},
                    {.kind = SchemeKind::kModulo, .modulo_radius = 1}};
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok());
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  const MetricsSummary& lru = (*results_or)[0].metrics;
  const MetricsSummary& modulo1 = (*results_or)[1].metrics;
  if (arch == Architecture::kHierarchical) {
    EXPECT_DOUBLE_EQ(lru.avg_latency, modulo1.avg_latency);
    EXPECT_DOUBLE_EQ(lru.avg_response_ratio, modulo1.avg_response_ratio);
    EXPECT_DOUBLE_EQ(lru.avg_hops, modulo1.avg_hops);
    EXPECT_DOUBLE_EQ(lru.avg_traffic_byte_hops,
                     modulo1.avg_traffic_byte_hops);
    EXPECT_DOUBLE_EQ(lru.byte_hit_ratio, modulo1.byte_hit_ratio);
    EXPECT_DOUBLE_EQ(lru.avg_load_bytes, modulo1.avg_load_bytes);
    EXPECT_EQ(lru.bytes_from_caches, modulo1.bytes_from_caches);
  } else {
    EXPECT_NEAR(lru.avg_latency, modulo1.avg_latency,
                0.05 * lru.avg_latency);
    EXPECT_NEAR(lru.avg_hops, modulo1.avg_hops, 0.05 * lru.avg_hops);
    // LRU's extra zero-delay hits at server attach nodes raise its byte
    // hit ratio without helping latency.
    EXPECT_GE(lru.byte_hit_ratio + 1e-9, modulo1.byte_hit_ratio);
  }
}

INSTANTIATE_TEST_SUITE_P(Architectures, ModuloOneEqualsLru,
                         ::testing::Values(Architecture::kEnRoute,
                                           Architecture::kHierarchical),
                         [](const auto& info) {
                           return info.param == Architecture::kEnRoute
                                      ? "EnRoute"
                                      : "Hierarchical";
                         });

class SchemeInvariants
    : public ::testing::TestWithParam<std::tuple<SchemeKind, Architecture>> {
};

TEST_P(SchemeInvariants, NodesConsistentAfterFullRun) {
  const auto [kind, arch] = GetParam();
  ExperimentConfig config = SmallConfig(arch);
  config.schemes = {{.kind = kind, .modulo_radius = 4}};
  // Small caches: heavy eviction churn exercises every code path.
  config.cache_fractions = {0.005};
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok());
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  sim::Network* network = (*runner_or)->network();
  for (topology::NodeId v = 0; v < network->num_nodes(); ++v) {
    EXPECT_TRUE(network->node(v)->CheckInvariants()) << "node " << v;
  }
}

TEST_P(SchemeInvariants, MetricConservationLaws) {
  const auto [kind, arch] = GetParam();
  ExperimentConfig config = SmallConfig(arch);
  config.schemes = {{.kind = kind, .modulo_radius = 4}};
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok());
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  const MetricsSummary& m = (*results_or)[0].metrics;
  EXPECT_GE(m.byte_hit_ratio, 0.0);
  EXPECT_LE(m.byte_hit_ratio, 1.0);
  EXPECT_LE(m.bytes_from_caches, m.total_bytes_requested);
  // Read load is exactly the bytes served from caches.
  const double total_load = m.avg_load_bytes * static_cast<double>(m.requests);
  EXPECT_NEAR(total_load * m.read_load_share,
              static_cast<double>(m.bytes_from_caches),
              1e-6 * total_load + 1.0);
  // Latency can never beat serving everything from the first cache (0)
  // nor exceed every request going to the farthest origin; hops likewise.
  EXPECT_GE(m.avg_hops, 0.0);
  EXPECT_GE(m.avg_latency, 0.0);
  // Response ratio and latency order schemes the same way only with
  // uniform sizes, but both must be finite and positive here.
  EXPECT_GT(m.avg_response_ratio, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    All, SchemeInvariants,
    ::testing::Combine(::testing::Values(SchemeKind::kLru, SchemeKind::kModulo,
                                         SchemeKind::kLncr,
                                         SchemeKind::kCoordinated,
                                         SchemeKind::kGds, SchemeKind::kLfu,
                                         SchemeKind::kStatic),
                       ::testing::Values(Architecture::kEnRoute,
                                         Architecture::kHierarchical)),
    [](const auto& info) {
      std::string name;
      switch (std::get<0>(info.param)) {
        case SchemeKind::kLru: name = "Lru"; break;
        case SchemeKind::kModulo: name = "Modulo"; break;
        case SchemeKind::kLncr: name = "Lncr"; break;
        case SchemeKind::kCoordinated: name = "Coordinated"; break;
        case SchemeKind::kGds: name = "Gds"; break;
        case SchemeKind::kLfu: name = "Lfu"; break;
        case SchemeKind::kStatic: name = "Static"; break;
      }
      name += std::get<1>(info.param) == Architecture::kEnRoute ? "EnRoute"
                                                                : "Hier";
      return name;
    });

}  // namespace
}  // namespace cascache::schemes
