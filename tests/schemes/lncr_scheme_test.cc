#include "schemes/lncr_scheme.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/scenario.h"

namespace cascache::schemes {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;
using sim::CacheNodeConfig;
using sim::Simulator;

class LncrSchemeTest : public ::testing::Test {
 protected:
  LncrSchemeTest()
      : catalog_(MakeCatalog({{100, 0}, {100, 0}, {100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {
    Configure(1000);
  }

  void Configure(uint64_t capacity) {
    CacheNodeConfig config;
    config.mode = sim::CacheMode::kCost;
    config.capacity_bytes = capacity;
    config.dcache_entries = 16;
    network_->ConfigureCaches(config);
  }

  trace::ObjectCatalog catalog_;
  std::unique_ptr<sim::Network> network_;
  LncrScheme scheme_;
};

TEST_F(LncrSchemeTest, Properties) {
  EXPECT_EQ(scheme_.name(), "LNC-R");
  EXPECT_EQ(scheme_.cache_mode(), sim::CacheMode::kCost);
  EXPECT_TRUE(scheme_.uses_dcache());
}

TEST_F(LncrSchemeTest, CachesEverywhereLikeLru) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), true);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network_->node(v)->Contains(0)) << "node " << v;
  }
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().avg_write_bytes, 400.0);
}

TEST_F(LncrSchemeTest, MissPenaltyIsImmediateUpstreamLink) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), true);
  // Chain with unit link delays and size_scale 1: every node's miss
  // penalty for the object is 1.0 (its upstream link), including the root
  // whose upstream is the virtual server link (delay 1.0 under growth 1).
  for (topology::NodeId v = 0; v < 4; ++v) {
    const cache::ObjectDescriptor* desc =
        network_->node(v)->FindDescriptor(0);
    ASSERT_NE(desc, nullptr) << "node " << v;
    EXPECT_DOUBLE_EQ(desc->miss_penalty, 1.0) << "node " << v;
  }
}

TEST_F(LncrSchemeTest, EvictsLeastNormalizedCostLoss) {
  Configure(200);  // Two objects per node.
  Simulator simulator(network_.get(), &scheme_);
  // Make object 0 hot (three accesses) and object 1 cold.
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);
  simulator.Step(At(3.0, 0), false);
  simulator.Step(At(4.0, 1), false);
  // Inserting object 2 must evict the cold object 1 at the leaf.
  simulator.Step(At(5.0, 2), false);
  EXPECT_TRUE(network_->node(3)->Contains(0));
  EXPECT_FALSE(network_->node(3)->Contains(1));
  EXPECT_TRUE(network_->node(3)->Contains(2));
}

TEST_F(LncrSchemeTest, DCacheTracksNonCachedObjects) {
  Configure(100);  // One object per node.
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 1), false);  // Evicts object 0 everywhere.
  // Object 0's descriptor must survive in the leaf's d-cache (demoted on
  // eviction) with its access history.
  const cache::ObjectDescriptor* desc = network_->node(3)->dcache()->Find(0);
  ASSERT_NE(desc, nullptr);
  EXPECT_GE(desc->num_accesses, 1);
}

TEST_F(LncrSchemeTest, FrequencyHistorySurvivesEvictionAndDrivesReplacement) {
  Configure(100);
  Simulator simulator(network_.get(), &scheme_);
  // Hammer object 0, then push it out with object 1, then re-request 0:
  // its remembered frequency should let it displace the cold object 1.
  for (double t = 1.0; t <= 5.0; t += 1.0) simulator.Step(At(t, 0), false);
  simulator.Step(At(6.0, 1), false);
  EXPECT_FALSE(network_->node(3)->Contains(0));
  simulator.Step(At(7.0, 0), false);
  EXPECT_TRUE(network_->node(3)->Contains(0));
  EXPECT_FALSE(network_->node(3)->Contains(1));
}

TEST_F(LncrSchemeTest, HitRefreshesDescriptorAtServingCache) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);  // Hit at the leaf.
  const cache::ObjectDescriptor* desc =
      network_->node(3)->FindDescriptor(0);
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(desc->num_accesses, 2);
}

}  // namespace
}  // namespace cascache::schemes
