#include "schemes/coordinated_scheme.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "testing/scenario.h"

namespace cascache::schemes {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;
using sim::CacheNodeConfig;
using sim::Simulator;

// Chain: leaf=node3, node2, node1, root=node0, virtual server link; all
// link delays 1.0; single 100-byte object (size_scale 1).
class CoordinatedSchemeTest : public ::testing::Test {
 protected:
  CoordinatedSchemeTest()
      : catalog_(MakeCatalog({{100, 0}, {100, 0}, {100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {
    Configure(1000);
  }

  void Configure(uint64_t capacity, size_t dcache = 16) {
    CacheNodeConfig config;
    config.mode = sim::CacheMode::kCost;
    config.capacity_bytes = capacity;
    config.dcache_entries = dcache;
    network_->ConfigureCaches(config);
  }

  trace::ObjectCatalog catalog_;
  std::unique_ptr<sim::Network> network_;
  CoordinatedScheme scheme_;
};

TEST_F(CoordinatedSchemeTest, Properties) {
  EXPECT_EQ(scheme_.name(), "Coordinated");
  EXPECT_EQ(scheme_.cache_mode(), sim::CacheMode::kCost);
  EXPECT_TRUE(scheme_.uses_dcache());
}

TEST_F(CoordinatedSchemeTest, FirstRequestOnlySeedsDescriptors) {
  // No node has a descriptor yet, so every node is tagged out of the
  // candidate set (paper §2.4): nothing is cached, but the response pass
  // admits descriptors with the correct miss penalties.
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), true);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(network_->node(v)->Contains(0)) << "node " << v;
  }
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().avg_write_bytes, 0.0);
  EXPECT_EQ(scheme_.stats().excluded_no_descriptor, 4u);
  EXPECT_EQ(scheme_.stats().dp_runs, 0u);
  // Miss penalties accumulate from the origin: root=1, node1=2, node2=3,
  // leaf=4 (unit links, size_scale 1, virtual server link 1).
  EXPECT_DOUBLE_EQ(network_->node(0)->dcache()->Find(0)->miss_penalty, 1.0);
  EXPECT_DOUBLE_EQ(network_->node(1)->dcache()->Find(0)->miss_penalty, 2.0);
  EXPECT_DOUBLE_EQ(network_->node(2)->dcache()->Find(0)->miss_penalty, 3.0);
  EXPECT_DOUBLE_EQ(network_->node(3)->dcache()->Find(0)->miss_penalty, 4.0);
}

TEST_F(CoordinatedSchemeTest, SecondRequestPlacesAtClientEdgeOnly) {
  // With equal frequencies at every node and ample space (l = 0), the DP
  // places a single copy at the requesting cache: any upstream copy would
  // add no saving (f_i - f_{i+1} = 0) at a non-negative loss.
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), true);
  EXPECT_TRUE(network_->node(3)->Contains(0));   // Leaf only.
  EXPECT_FALSE(network_->node(2)->Contains(0));
  EXPECT_FALSE(network_->node(1)->Contains(0));
  EXPECT_FALSE(network_->node(0)->Contains(0));
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().avg_write_bytes, 100.0);
  EXPECT_EQ(scheme_.stats().dp_runs, 1u);
  EXPECT_EQ(scheme_.stats().placements, 1u);
  EXPECT_GT(scheme_.stats().total_gain, 0.0);
}

TEST_F(CoordinatedSchemeTest, ThirdRequestHitsAtLeaf) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);
  simulator.Step(At(3.0, 0), true);
  const sim::MetricsSummary s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.avg_latency, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_hops, 0.0);
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 1.0);
}

TEST_F(CoordinatedSchemeTest, InsertedCopyResetsDownstreamPenalty) {
  // After the leaf caches the object, a fresh placement elsewhere must
  // reference the leaf copy: re-request from the same client and check
  // that the leaf descriptor's miss penalty reflects the nearest upstream
  // copy (hit at leaf -> no change), then evict the leaf copy and verify
  // the next response updates penalties relative to the new serving node.
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);  // Leaf caches the object.
  ASSERT_TRUE(network_->node(3)->Contains(0));
  network_->node(3)->ncl()->Erase(0);  // Forcibly drop the copy (keep desc).

  simulator.Step(At(3.0, 0), false);  // Origin serves again.
  // The object is re-placed at the leaf (it is clearly hot there now).
  EXPECT_TRUE(network_->node(3)->Contains(0));
  // Upstream d-cache descriptors saw the response pass: node2's miss
  // penalty is its distance to the origin copy (3 links).
  EXPECT_DOUBLE_EQ(network_->node(2)->dcache()->Find(0)->miss_penalty, 3.0);
}

TEST_F(CoordinatedSchemeTest, HotObjectDisplacesColdUnderContention) {
  Configure(100);  // One object per node.
  Simulator simulator(network_.get(), &scheme_);
  // Object 1 is requested twice, 49 seconds apart: it gets placed at the
  // leaf with a *small* recorded cost loss (f ~ 2/49, m = 4).
  simulator.Step(At(1.0, 1), false);
  simulator.Step(At(50.0, 1), false);
  ASSERT_TRUE(network_->node(3)->Contains(1));
  // Object 0 arrives back-to-back: at its second request its saving at
  // the leaf (f*m = 2*4) dwarfs the loss of evicting object 1 (~0.16), so
  // the DP picks the leaf and displaces the cold object.
  simulator.Step(At(51.0, 0), false);
  simulator.Step(At(52.0, 0), false);
  EXPECT_TRUE(network_->node(3)->Contains(0));
  EXPECT_FALSE(network_->node(3)->Contains(1));
}

TEST_F(CoordinatedSchemeTest, OversizedObjectIsNeverPlaced) {
  trace::ObjectCatalog catalog = MakeCatalog({{5000, 0}, {100, 0}});
  auto network = MakeChainNetwork(&catalog, 4);
  CacheNodeConfig config;
  config.mode = sim::CacheMode::kCost;
  config.capacity_bytes = 1000;  // Object 0 (5000 B) can never fit.
  config.dcache_entries = 16;
  network->ConfigureCaches(config);
  CoordinatedScheme scheme;
  Simulator simulator(network.get(), &scheme);
  for (double t = 1.0; t <= 6.0; t += 1.0) simulator.Step(At(t, 0), false);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(network->node(v)->Contains(0));
  }
}

TEST_F(CoordinatedSchemeTest, StatsAccumulateAndReset) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);
  EXPECT_EQ(scheme_.stats().requests, 2u);
  EXPECT_GT(scheme_.stats().candidates, 0u);
  scheme_.ResetStats();
  EXPECT_EQ(scheme_.stats().requests, 0u);
  EXPECT_EQ(scheme_.stats().candidates, 0u);
}

TEST_F(CoordinatedSchemeTest, CandidateHistogramAndOverhead) {
  Simulator simulator(network_.get(), &scheme_);
  // First request: 0 candidates (no descriptors anywhere).
  simulator.Step(At(1.0, 0), false);
  EXPECT_EQ(scheme_.stats().k_histogram[0], 1u);
  // Second request: all 4 caches are candidates.
  simulator.Step(At(2.0, 0), false);
  EXPECT_EQ(scheme_.stats().k_histogram[4], 1u);
  EXPECT_DOUBLE_EQ(scheme_.stats().MeanCandidates(), 4.0);
  // Overhead accounting: request 1 piggybacks 4 exclusion tags + counter
  // + bitmap; request 2 piggybacks 4 triples (96 B) + counter + bitmap.
  EXPECT_GT(scheme_.stats().piggyback_bytes, 96u);
  EXPECT_LT(scheme_.stats().MeanPiggybackBytesPerRequest(), 200.0);
}

TEST_F(CoordinatedSchemeTest, LruDCachePolicyAlsoWorks) {
  CacheNodeConfig config;
  config.mode = sim::CacheMode::kCost;
  config.capacity_bytes = 1000;
  config.dcache_entries = 16;
  config.dcache_policy = cache::DCachePolicy::kLru;
  network_->ConfigureCaches(config);
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(2.0, 0), false);
  simulator.Step(At(3.0, 0), true);
  EXPECT_TRUE(network_->node(3)->Contains(0));
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().byte_hit_ratio, 1.0);
}

TEST_F(CoordinatedSchemeTest, NoDCacheMeansNoCandidatesButStillWorks) {
  Configure(1000, /*dcache=*/0);
  Simulator simulator(network_.get(), &scheme_);
  // Without a d-cache no node ever has a descriptor for a non-cached
  // object, so nothing is ever placed — degenerate but stable.
  for (double t = 1.0; t <= 5.0; t += 1.0) simulator.Step(At(t, 0), true);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_FALSE(network_->node(v)->Contains(0));
  }
  EXPECT_EQ(scheme_.stats().dp_runs, 0u);
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().byte_hit_ratio, 0.0);
}

}  // namespace
}  // namespace cascache::schemes
