#include "topology/graph.h"

#include <gtest/gtest.h>

namespace cascache::topology {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, SingleNodeIsConnected) {
  Graph g(1);
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, AddEdgeStoresBothDirections) {
  Graph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 2.5).ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_DOUBLE_EQ(g.EdgeDelay(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g.EdgeDelay(1, 0), 2.5);
  ASSERT_EQ(g.Neighbors(0).size(), 1u);
  EXPECT_EQ(g.Neighbors(0)[0].to, 1);
  ASSERT_EQ(g.Neighbors(1).size(), 1u);
  EXPECT_EQ(g.Neighbors(1)[0].to, 0);
}

TEST(GraphTest, RejectsSelfLoop) {
  Graph g(2);
  EXPECT_EQ(g.AddEdge(1, 1, 1.0).code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsOutOfRange) {
  Graph g(2);
  EXPECT_FALSE(g.AddEdge(0, 2, 1.0).ok());
  EXPECT_FALSE(g.AddEdge(-1, 0, 1.0).ok());
}

TEST(GraphTest, RejectsDuplicateEitherDirection) {
  Graph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  EXPECT_EQ(g.AddEdge(0, 1, 2.0).code(), util::StatusCode::kAlreadyExists);
  EXPECT_EQ(g.AddEdge(1, 0, 2.0).code(), util::StatusCode::kAlreadyExists);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, RejectsNegativeDelay) {
  Graph g(2);
  EXPECT_FALSE(g.AddEdge(0, 1, -0.1).ok());
}

TEST(GraphTest, ZeroDelayAllowed) {
  Graph g(2);
  EXPECT_TRUE(g.AddEdge(0, 1, 0.0).ok());
}

TEST(GraphTest, ConnectivityDetection) {
  Graph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 3, 1.0).ok());
  EXPECT_FALSE(g.IsConnected());
  ASSERT_TRUE(g.AddEdge(1, 2, 1.0).ok());
  EXPECT_TRUE(g.IsConnected());
}

TEST(GraphTest, DelayAccounting) {
  Graph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 2, 3.0).ok());
  EXPECT_DOUBLE_EQ(g.TotalDelay(), 4.0);
  EXPECT_DOUBLE_EQ(g.MeanDelay(), 2.0);
}

}  // namespace
}  // namespace cascache::topology
