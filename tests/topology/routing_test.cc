#include "topology/routing.h"

#include <gtest/gtest.h>

#include "topology/tiers.h"
#include "topology/tree.h"

namespace cascache::topology {
namespace {

TEST(RoutingTest, CachesTreesPerDestination) {
  auto topo_or = GenerateTiers(TiersParams{});
  ASSERT_TRUE(topo_or.ok());
  RoutingTable routing(&topo_or->graph);
  EXPECT_EQ(routing.num_cached_trees(), 0u);
  routing.TreeFor(0);
  routing.TreeFor(0);
  routing.TreeFor(5);
  EXPECT_EQ(routing.num_cached_trees(), 2u);
}

TEST(RoutingTest, PathEndsAtDestination) {
  auto topo_or = GenerateTiers(TiersParams{});
  ASSERT_TRUE(topo_or.ok());
  RoutingTable routing(&topo_or->graph);
  const NodeId src = topo_or->man_ids[3];
  const NodeId dst = topo_or->man_ids[40];
  const std::vector<NodeId> path = routing.Path(src, dst);
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), src);
  EXPECT_EQ(path.back(), dst);
  // Consecutive nodes are linked.
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_TRUE(topo_or->graph.HasEdge(path[i], path[i + 1]));
  }
  EXPECT_EQ(static_cast<int>(path.size()) - 1, routing.Hops(src, dst));
}

TEST(RoutingTest, DelayMatchesPathSum) {
  auto topo_or = GenerateTiers(TiersParams{});
  ASSERT_TRUE(topo_or.ok());
  RoutingTable routing(&topo_or->graph);
  const NodeId src = topo_or->man_ids[0];
  const NodeId dst = topo_or->man_ids[49];
  const std::vector<NodeId> path = routing.Path(src, dst);
  double sum = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    sum += topo_or->graph.EdgeDelay(path[i], path[i + 1]);
  }
  EXPECT_NEAR(sum, routing.Delay(src, dst), 1e-9);
}

TEST(RoutingTest, SelfPathIsSingleton) {
  auto topo_or = BuildTree(TreeParams{});
  ASSERT_TRUE(topo_or.ok());
  RoutingTable routing(&topo_or->graph);
  EXPECT_EQ(routing.Path(0, 0), std::vector<NodeId>{0});
  EXPECT_EQ(routing.Hops(0, 0), 0);
  EXPECT_DOUBLE_EQ(routing.Delay(0, 0), 0.0);
}

TEST(RoutingTest, TreeRoutesFollowTreeEdges) {
  auto topo_or = BuildTree(TreeParams{});
  ASSERT_TRUE(topo_or.ok());
  RoutingTable routing(&topo_or->graph);
  // Path from any leaf to the root has exactly depth-1 hops and climbs
  // through parents.
  for (NodeId leaf : topo_or->leaves) {
    const std::vector<NodeId> path = routing.Path(leaf, topo_or->root);
    EXPECT_EQ(path.size(), 4u);
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      EXPECT_EQ(topo_or->parent[path[i]], path[i + 1]);
    }
  }
}

}  // namespace
}  // namespace cascache::topology
