#include "topology/tree.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cascache::topology {
namespace {

TEST(TreeTest, PaperDefaultShape) {
  // Depth 4, fanout 3: 1 + 3 + 9 + 27 = 40 nodes, 39 links, 27 leaves.
  auto topo_or = BuildTree(TreeParams{});
  ASSERT_TRUE(topo_or.ok());
  const TreeTopology& topo = *topo_or;
  EXPECT_EQ(topo.graph.num_nodes(), 40);
  EXPECT_EQ(topo.graph.num_edges(), 39u);
  EXPECT_EQ(topo.leaves.size(), 27u);
  EXPECT_EQ(topo.depth(), 4);
  EXPECT_TRUE(topo.graph.IsConnected());
}

TEST(TreeTest, LevelsAndParents) {
  auto topo_or = BuildTree(TreeParams{});
  ASSERT_TRUE(topo_or.ok());
  const TreeTopology& topo = *topo_or;
  EXPECT_EQ(topo.level[0], 3);  // Root at the highest level.
  EXPECT_EQ(topo.parent[0], kInvalidNode);
  for (NodeId leaf : topo.leaves) EXPECT_EQ(topo.level[leaf], 0);
  for (NodeId v = 1; v < topo.graph.num_nodes(); ++v) {
    const NodeId p = topo.parent[v];
    ASSERT_NE(p, kInvalidNode);
    EXPECT_EQ(topo.level[p], topo.level[v] + 1);
    EXPECT_TRUE(topo.graph.HasEdge(v, p));
  }
}

TEST(TreeTest, LinkDelaysGrowExponentially) {
  // Delay of the link between a level-i node and its parent: g^i * d.
  TreeParams params;
  params.base_delay = 0.008;
  params.growth = 5.0;
  auto topo_or = BuildTree(params);
  ASSERT_TRUE(topo_or.ok());
  const TreeTopology& topo = *topo_or;
  for (NodeId v = 1; v < topo.graph.num_nodes(); ++v) {
    const int level = topo.level[v];
    const double expected = 0.008 * std::pow(5.0, level);
    EXPECT_NEAR(topo.graph.EdgeDelay(v, topo.parent[v]), expected, 1e-12);
  }
  // Root-to-server virtual link: g^(depth-1) * d.
  EXPECT_NEAR(topo.server_link_delay, 0.008 * std::pow(5.0, 3), 1e-12);
}

TEST(TreeTest, FanoutOneIsChain) {
  TreeParams params;
  params.depth = 5;
  params.fanout = 1;
  auto topo_or = BuildTree(params);
  ASSERT_TRUE(topo_or.ok());
  EXPECT_EQ(topo_or->graph.num_nodes(), 5);
  EXPECT_EQ(topo_or->leaves.size(), 1u);
  // Each node has at most 2 neighbors (a chain).
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_LE(topo_or->graph.Neighbors(v).size(), 2u);
  }
}

TEST(TreeTest, DepthOneIsSingleNode) {
  TreeParams params;
  params.depth = 1;
  auto topo_or = BuildTree(params);
  ASSERT_TRUE(topo_or.ok());
  EXPECT_EQ(topo_or->graph.num_nodes(), 1);
  EXPECT_EQ(topo_or->leaves.size(), 1u);
  EXPECT_EQ(topo_or->leaves[0], 0);  // The root is also the only leaf.
  EXPECT_NEAR(topo_or->server_link_delay, 0.008, 1e-12);
}

TEST(TreeTest, RejectsBadParameters) {
  TreeParams params;
  params.depth = 0;
  EXPECT_FALSE(BuildTree(params).ok());
  params = TreeParams{};
  params.fanout = 0;
  EXPECT_FALSE(BuildTree(params).ok());
  params = TreeParams{};
  params.base_delay = -1.0;
  EXPECT_FALSE(BuildTree(params).ok());
  params = TreeParams{};
  params.depth = 20;
  params.fanout = 10;  // 10^19 nodes: too large.
  EXPECT_FALSE(BuildTree(params).ok());
}

TEST(TreeTest, WideTree) {
  TreeParams params;
  params.depth = 2;
  params.fanout = 100;
  auto topo_or = BuildTree(params);
  ASSERT_TRUE(topo_or.ok());
  EXPECT_EQ(topo_or->graph.num_nodes(), 101);
  EXPECT_EQ(topo_or->leaves.size(), 100u);
  EXPECT_EQ(topo_or->graph.Neighbors(0).size(), 100u);
}

}  // namespace
}  // namespace cascache::topology
