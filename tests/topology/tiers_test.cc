#include "topology/tiers.h"

#include <gtest/gtest.h>

#include "topology/shortest_path.h"

namespace cascache::topology {
namespace {

TEST(TiersTest, DefaultsMatchTableOne) {
  // Paper Table 1: 100 nodes (50 WAN + 50 MAN), 173 links, WAN:MAN delay
  // ratio ~8:1.
  auto topo_or = GenerateTiers(TiersParams{});
  ASSERT_TRUE(topo_or.ok()) << topo_or.status();
  const TiersTopology& topo = *topo_or;
  EXPECT_EQ(topo.graph.num_nodes(), 100);
  EXPECT_EQ(topo.wan_ids.size(), 50u);
  EXPECT_EQ(topo.man_ids.size(), 50u);
  EXPECT_EQ(topo.graph.num_edges(), 173u);  // 49 + 40 + 50 + 34.
  EXPECT_TRUE(topo.graph.IsConnected());

  const double ratio = topo.MeanWanLinkDelay() / topo.MeanManLinkDelay();
  EXPECT_GT(ratio, 6.0);
  EXPECT_LT(ratio, 10.0);
  EXPECT_NEAR(topo.MeanWanLinkDelay(), 0.146, 0.03);
  EXPECT_NEAR(topo.MeanManLinkDelay(), 0.018, 0.005);
}

TEST(TiersTest, DeterministicInSeed) {
  TiersParams params;
  params.seed = 99;
  auto a = GenerateTiers(params);
  auto b = GenerateTiers(params);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->graph.num_edges(), b->graph.num_edges());
  for (NodeId v = 0; v < a->graph.num_nodes(); ++v) {
    const auto& na = a->graph.Neighbors(v);
    const auto& nb = b->graph.Neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (size_t i = 0; i < na.size(); ++i) {
      EXPECT_EQ(na[i].to, nb[i].to);
      EXPECT_DOUBLE_EQ(na[i].delay, nb[i].delay);
    }
  }
}

TEST(TiersTest, DifferentSeedsDiffer) {
  TiersParams pa, pb;
  pa.seed = 1;
  pb.seed = 2;
  auto a = GenerateTiers(pa);
  auto b = GenerateTiers(pb);
  ASSERT_TRUE(a.ok() && b.ok());
  bool differs = false;
  for (NodeId v = 0; v < a->graph.num_nodes() && !differs; ++v) {
    const auto& na = a->graph.Neighbors(v);
    const auto& nb = b->graph.Neighbors(v);
    if (na.size() != nb.size()) {
      differs = true;
      break;
    }
    for (size_t i = 0; i < na.size(); ++i) {
      if (na[i].to != nb[i].to || na[i].delay != nb[i].delay) {
        differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differs);
}

TEST(TiersTest, ManNodesAttachToWan) {
  auto topo_or = GenerateTiers(TiersParams{});
  ASSERT_TRUE(topo_or.ok());
  const TiersTopology& topo = *topo_or;
  ASSERT_EQ(topo.man_attach.size(), topo.man_ids.size());
  for (size_t i = 0; i < topo.man_ids.size(); ++i) {
    EXPECT_TRUE(topo.IsWan(topo.man_attach[i]));
    EXPECT_TRUE(topo.graph.HasEdge(topo.man_ids[i], topo.man_attach[i]));
  }
}

TEST(TiersTest, LongRoutingPaths) {
  // The paper reports ~12-hop average client-server paths; the generator's
  // chain-biased backbone should land in a similar ballpark.
  auto topo_or = GenerateTiers(TiersParams{});
  ASSERT_TRUE(topo_or.ok());
  const TiersTopology& topo = *topo_or;
  double total_hops = 0.0;
  int pairs = 0;
  for (size_t a = 0; a < topo.man_ids.size(); a += 5) {
    const ShortestPathTree tree =
        BuildShortestPathTree(topo.graph, topo.man_ids[a]);
    for (size_t b = 0; b < topo.man_ids.size(); ++b) {
      if (a == b) continue;
      total_hops += tree.hops[static_cast<size_t>(topo.man_ids[b])];
      ++pairs;
    }
  }
  const double mean_hops = total_hops / pairs;
  EXPECT_GT(mean_hops, 6.0);
  EXPECT_LT(mean_hops, 20.0);
}

TEST(TiersTest, LinkDelaysRespectJitterBounds) {
  TiersParams params;
  params.delay_jitter = 0.25;
  auto topo_or = GenerateTiers(params);
  ASSERT_TRUE(topo_or.ok());
  const TiersTopology& topo = *topo_or;
  for (NodeId u = 0; u < topo.graph.num_nodes(); ++u) {
    for (const Edge& e : topo.graph.Neighbors(u)) {
      if (e.to < u) continue;
      const bool wan_link = topo.IsWan(u) && topo.IsWan(e.to);
      const double mean =
          wan_link ? params.wan_mean_delay : params.man_mean_delay;
      EXPECT_GE(e.delay, mean * 0.75 - 1e-12);
      EXPECT_LE(e.delay, mean * 1.25 + 1e-12);
    }
  }
}

TEST(TiersTest, RejectsBadParameters) {
  TiersParams params;
  params.wan_nodes = 1;
  EXPECT_FALSE(GenerateTiers(params).ok());

  params = TiersParams{};
  params.man_nodes = 0;
  EXPECT_FALSE(GenerateTiers(params).ok());

  params = TiersParams{};
  params.delay_jitter = 1.5;
  EXPECT_FALSE(GenerateTiers(params).ok());

  params = TiersParams{};
  params.wan_mean_delay = 0.0;
  EXPECT_FALSE(GenerateTiers(params).ok());

  params = TiersParams{};
  params.wan_redundancy_edges = 100000;  // Cannot be placed.
  EXPECT_FALSE(GenerateTiers(params).ok());
}

TEST(TiersTest, ScalesToOtherSizes) {
  TiersParams params;
  params.wan_nodes = 20;
  params.man_nodes = 30;
  params.wan_redundancy_edges = 8;
  params.man_redundancy_edges = 5;
  auto topo_or = GenerateTiers(params);
  ASSERT_TRUE(topo_or.ok()) << topo_or.status();
  EXPECT_EQ(topo_or->graph.num_nodes(), 50);
  EXPECT_EQ(topo_or->graph.num_edges(), 19u + 8u + 30u + 5u);
  EXPECT_TRUE(topo_or->graph.IsConnected());
}

}  // namespace
}  // namespace cascache::topology
