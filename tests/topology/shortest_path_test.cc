#include "topology/shortest_path.h"

#include <limits>

#include <gtest/gtest.h>

#include "util/random.h"

namespace cascache::topology {
namespace {

Graph LineGraph(int n, double delay = 1.0) {
  Graph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    CASCACHE_CHECK_OK(g.AddEdge(i, i + 1, delay));
  }
  return g;
}

TEST(ShortestPathTest, LineGraphDistances) {
  Graph g = LineGraph(5, 2.0);
  const ShortestPathTree tree = BuildShortestPathTree(g, 0);
  for (int v = 0; v < 5; ++v) {
    EXPECT_DOUBLE_EQ(tree.dist[v], 2.0 * v);
    EXPECT_EQ(tree.hops[v], v);
  }
  EXPECT_EQ(tree.parent[0], kInvalidNode);
  EXPECT_EQ(tree.parent[3], 2);
}

TEST(ShortestPathTest, PathToRootOrder) {
  Graph g = LineGraph(4);
  const ShortestPathTree tree = BuildShortestPathTree(g, 3);
  const std::vector<NodeId> path = tree.PathToRoot(0);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(tree.PathToRoot(3), std::vector<NodeId>{3});
}

TEST(ShortestPathTest, PrefersCheaperLongerPath) {
  // 0-1 direct cost 10; 0-2-1 cost 3.
  Graph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 10.0).ok());
  ASSERT_TRUE(g.AddEdge(0, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 1, 2.0).ok());
  const ShortestPathTree tree = BuildShortestPathTree(g, 1);
  EXPECT_DOUBLE_EQ(tree.dist[0], 3.0);
  EXPECT_EQ(tree.PathToRoot(0), (std::vector<NodeId>{0, 2, 1}));
}

TEST(ShortestPathTest, UnreachableNodes) {
  Graph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1, 1.0).ok());
  const ShortestPathTree tree = BuildShortestPathTree(g, 0);
  EXPECT_FALSE(tree.Reachable(2));
  EXPECT_TRUE(tree.Reachable(1));
  EXPECT_EQ(tree.hops[2], -1);
  EXPECT_EQ(tree.dist[2], std::numeric_limits<double>::infinity());
}

TEST(ShortestPathTest, DeterministicTieBreaking) {
  // Two equal-cost routes 0->1->3 and 0->2->3; parent of 3 must be the
  // smaller node id (1), and repeated builds agree.
  Graph g(4);
  ASSERT_TRUE(g.AddEdge(3, 1, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(3, 2, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(1, 0, 1.0).ok());
  ASSERT_TRUE(g.AddEdge(2, 0, 1.0).ok());
  const ShortestPathTree a = BuildShortestPathTree(g, 0);
  const ShortestPathTree b = BuildShortestPathTree(g, 0);
  EXPECT_EQ(a.parent[3], b.parent[3]);
  EXPECT_EQ(a.parent[3], 1);
}

// Property test: Dijkstra distances on random graphs match a
// Floyd-Warshall oracle.
class DijkstraVsFloydWarshall : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DijkstraVsFloydWarshall, DistancesAgree) {
  util::Rng rng(GetParam());
  const int n = 24;
  Graph g(n);
  // Random connected graph: spanning tree + extra edges.
  for (int v = 1; v < n; ++v) {
    const NodeId parent = static_cast<NodeId>(rng.NextUint64(v));
    ASSERT_TRUE(g.AddEdge(v, parent, rng.NextDouble(0.1, 5.0)).ok());
  }
  for (int extra = 0; extra < 20; ++extra) {
    const NodeId u = static_cast<NodeId>(rng.NextUint64(n));
    const NodeId v = static_cast<NodeId>(rng.NextUint64(n));
    if (u == v || g.HasEdge(u, v)) continue;
    ASSERT_TRUE(g.AddEdge(u, v, rng.NextDouble(0.1, 5.0)).ok());
  }

  // Floyd-Warshall oracle.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> fw(n, std::vector<double>(n, kInf));
  for (int v = 0; v < n; ++v) fw[v][v] = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    for (const Edge& e : g.Neighbors(u)) fw[u][e.to] = e.delay;
  }
  for (int k = 0; k < n; ++k) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        fw[i][j] = std::min(fw[i][j], fw[i][k] + fw[k][j]);
      }
    }
  }

  const auto all = AllPairsShortestDelays(g);
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      EXPECT_NEAR(all[s][t], fw[s][t], 1e-9) << s << "->" << t;
    }
  }

  // Path reconstruction is consistent: summed link delays == dist.
  const ShortestPathTree tree = BuildShortestPathTree(g, 0);
  for (int v = 0; v < n; ++v) {
    const std::vector<NodeId> path = tree.PathToRoot(v);
    double sum = 0.0;
    for (size_t i = 0; i + 1 < path.size(); ++i) {
      sum += g.EdgeDelay(path[i], path[i + 1]);
    }
    EXPECT_NEAR(sum, tree.dist[v], 1e-9);
    EXPECT_EQ(static_cast<int>(path.size()) - 1, tree.hops[v]);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DijkstraVsFloydWarshall,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Undirected graphs: the all-pairs delay matrix must be symmetric with a
// zero diagonal, and satisfy the triangle inequality.
TEST(ShortestPathTest, AllPairsMatrixProperties) {
  util::Rng rng(404);
  const int n = 16;
  Graph g(n);
  for (int v = 1; v < n; ++v) {
    ASSERT_TRUE(
        g.AddEdge(v, static_cast<NodeId>(rng.NextUint64(v)),
                  rng.NextDouble(0.1, 3.0))
            .ok());
  }
  const auto dist = AllPairsShortestDelays(g);
  for (int a = 0; a < n; ++a) {
    EXPECT_DOUBLE_EQ(dist[a][a], 0.0);
    for (int b = 0; b < n; ++b) {
      EXPECT_NEAR(dist[a][b], dist[b][a], 1e-9);
      for (int c = 0; c < n; ++c) {
        EXPECT_LE(dist[a][b], dist[a][c] + dist[c][b] + 1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace cascache::topology
