#include "sim/coherency.h"

#include <gtest/gtest.h>

#include "schemes/lru_scheme.h"
#include "sim/simulator.h"
#include "testing/scenario.h"

namespace cascache::sim {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;

TEST(UpdateScheduleTest, ImmutableObjectsStayAtVersionZero) {
  UpdateSchedule schedule({0.0, 10.0}, {0.0, 5.0});
  EXPECT_FALSE(schedule.IsMutable(0));
  EXPECT_TRUE(schedule.IsMutable(1));
  EXPECT_EQ(schedule.VersionAt(0, 1e9), 0u);
}

TEST(UpdateScheduleTest, PeriodicVersions) {
  // Period 10, phase 4: updates at t = 6, 16, 26, ...
  UpdateSchedule schedule({10.0}, {4.0});
  EXPECT_EQ(schedule.VersionAt(0, 0.0), 0u);
  EXPECT_EQ(schedule.VersionAt(0, 5.9), 0u);
  EXPECT_EQ(schedule.VersionAt(0, 6.1), 1u);
  EXPECT_EQ(schedule.VersionAt(0, 15.9), 1u);
  EXPECT_EQ(schedule.VersionAt(0, 16.1), 2u);
  EXPECT_EQ(schedule.VersionAt(0, 106.1), 11u);
}

TEST(UpdateScheduleTest, VersionsAreMonotone) {
  CoherencyParams params;
  params.mutable_fraction = 0.5;
  params.mean_update_period = 100.0;
  auto schedule_or = UpdateSchedule::Create(50, params);
  ASSERT_TRUE(schedule_or.ok());
  for (trace::ObjectId id = 0; id < 50; ++id) {
    uint32_t prev = 0;
    for (double t = 0.0; t < 1000.0; t += 37.0) {
      const uint32_t v = schedule_or->VersionAt(id, t);
      EXPECT_GE(v, prev);
      prev = v;
    }
  }
}

TEST(UpdateScheduleTest, MutableFractionApproximatelyRespected) {
  CoherencyParams params;
  params.mutable_fraction = 0.3;
  auto schedule_or = UpdateSchedule::Create(2000, params);
  ASSERT_TRUE(schedule_or.ok());
  int mutable_count = 0;
  for (trace::ObjectId id = 0; id < 2000; ++id) {
    if (schedule_or->IsMutable(id)) ++mutable_count;
  }
  EXPECT_NEAR(mutable_count / 2000.0, 0.3, 0.05);
}

TEST(UpdateScheduleTest, RejectsBadParameters) {
  CoherencyParams params;
  params.mutable_fraction = 1.5;
  EXPECT_FALSE(UpdateSchedule::Create(10, params).ok());
  params = CoherencyParams{};
  params.mean_update_period = 0.0;
  EXPECT_FALSE(UpdateSchedule::Create(10, params).ok());
  params = CoherencyParams{};
  params.protocol = CoherencyProtocol::kTtl;
  params.ttl = -1.0;
  EXPECT_FALSE(UpdateSchedule::Create(10, params).ok());
}

TEST(CoherencyProtocolTest, Names) {
  EXPECT_STREQ(CoherencyProtocolName(CoherencyProtocol::kNone), "none");
  EXPECT_STREQ(CoherencyProtocolName(CoherencyProtocol::kTtl), "ttl");
  EXPECT_STREQ(CoherencyProtocolName(CoherencyProtocol::kInvalidation),
               "invalidation");
}

// --- Simulator integration on the unit chain -------------------------------

class CoherencySimTest : public ::testing::Test {
 protected:
  CoherencySimTest()
      : catalog_(MakeCatalog({{100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {
    CacheNodeConfig config;
    config.mode = CacheMode::kLru;
    config.capacity_bytes = 1000;
    network_->ConfigureCaches(config);
  }

  trace::ObjectCatalog catalog_;
  std::unique_ptr<sim::Network> network_;
  schemes::LruScheme scheme_;
};

TEST_F(CoherencySimTest, TtlExpiryForcesRefetch) {
  SimOptions options;
  options.coherency.protocol = CoherencyProtocol::kTtl;
  options.coherency.ttl = 10.0;
  Simulator simulator(network_.get(), &scheme_, options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());

  simulator.Step(At(1.0, 0), false);  // Cold miss; cached everywhere.
  simulator.Step(At(5.0, 0), true);   // Fresh hit at the leaf.
  // t=20: all copies are 19 s old (> ttl 10): every cache on the path
  // drops its copy and the origin serves.
  simulator.Step(At(20.0, 0), true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.copies_expired, 4u);
  EXPECT_DOUBLE_EQ(s.hit_ratio, 0.5);  // One hit (t=5), one miss (t=20).
  // The t=20 fetch restamps: a hit at t=25 is fresh again.
  simulator.Step(At(25.0, 0), true);
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().hit_ratio, 2.0 / 3.0);
}

TEST_F(CoherencySimTest, TtlHitDoesNotRefreshStamp) {
  SimOptions options;
  options.coherency.protocol = CoherencyProtocol::kTtl;
  options.coherency.ttl = 10.0;
  Simulator simulator(network_.get(), &scheme_, options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(9.0, 0), false);   // Hit, but no revalidation.
  simulator.Step(At(12.0, 0), true);   // 11 s after fetch: expired.
  EXPECT_EQ(simulator.metrics().Summary().copies_expired, 4u);
}

TEST(CoherencyStaleTest, NoneProtocolCountsStaleHits) {
  // Object 0 updates at t = 10 (period 20, phase 10). A copy fetched at
  // t=1 and hit at t=15 is stale.
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, 4);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  network->ConfigureCaches(config);
  schemes::LruScheme scheme;
  SimOptions options;
  options.coherency.protocol = CoherencyProtocol::kNone;
  options.coherency.mutable_fraction = 1.0;
  options.coherency.mean_update_period = 20.0;
  Simulator simulator(network.get(), &scheme, options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());
  // Install a deterministic schedule via the test constructor path: the
  // randomized one is awkward here, so drive the check through a long
  // window instead — fetch at t=1, hit far in the future is stale.
  simulator.Step(At(1.0, 0), false);
  simulator.Step(At(10'000.0, 0), true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.hit_ratio, 1.0);   // Served from cache...
  EXPECT_DOUBLE_EQ(s.stale_hit_ratio, 1.0);  // ...but stale.
  EXPECT_EQ(s.copies_expired, 0u);
  EXPECT_EQ(s.copies_invalidated, 0u);
}

TEST(CoherencyStaleTest, InvalidationDropsOutdatedCopies) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, 4);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  network->ConfigureCaches(config);
  schemes::LruScheme scheme;
  SimOptions options;
  options.coherency.protocol = CoherencyProtocol::kInvalidation;
  options.coherency.mutable_fraction = 1.0;
  options.coherency.mean_update_period = 20.0;
  Simulator simulator(network.get(), &scheme, options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());
  simulator.Step(At(1.0, 0), false);
  // Far in the future the origin version has advanced: all four copies
  // are invalidated and the origin serves a fresh one.
  simulator.Step(At(10'000.0, 0), true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.hit_ratio, 0.0);
  EXPECT_EQ(s.copies_invalidated, 4u);
  EXPECT_DOUBLE_EQ(s.stale_hit_ratio, 0.0);
  // Immediately after, the fresh copy hits.
  simulator.Step(At(10'001.0, 0), true);
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().hit_ratio, 0.5);
}

TEST(CoherencyStaleTest, StaleVersionPropagatesDownstream) {
  // Under kNone, a stale serving copy stamps downstream copies with its
  // own (old) version: hitting those later is still a stale hit.
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, 4);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  network->ConfigureCaches(config);
  schemes::LruScheme scheme;
  SimOptions options;
  options.coherency.protocol = CoherencyProtocol::kNone;
  options.coherency.mutable_fraction = 1.0;
  options.coherency.mean_update_period = 20.0;
  Simulator simulator(network.get(), &scheme, options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());

  simulator.Step(At(1.0, 0), false);          // Fetch v0 everywhere.
  network->node(3)->EraseObject(0);           // Drop the leaf copy only.
  simulator.Step(At(10'000.0, 0), false);     // Stale hit at node 2 re-
                                              // populates the leaf with v0.
  const auto* stamp = network->node(3)->FindCopy(0);
  ASSERT_NE(stamp, nullptr);
  EXPECT_EQ(stamp->version, 0u);
  EXPECT_DOUBLE_EQ(stamp->fetch_time, 10'000.0);
  simulator.Step(At(10'001.0, 0), true);      // Stale hit at the leaf.
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().stale_hit_ratio, 1.0);
}

TEST(CoherencyCostModeTest, TtlDropDemotesDescriptorUnderCoordinated) {
  // A TTL expiry at a cost-mode node must route through EraseObject so
  // the descriptor (and its access history) survives in the d-cache and
  // the node invariants hold.
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, 4);
  CacheNodeConfig config;
  config.mode = CacheMode::kCost;
  config.capacity_bytes = 1000;
  config.dcache_entries = 16;
  network->ConfigureCaches(config);
  auto scheme_or =
      schemes::MakeScheme({.kind = schemes::SchemeKind::kCoordinated});
  ASSERT_TRUE(scheme_or.ok());
  SimOptions options;
  options.coherency.protocol = CoherencyProtocol::kTtl;
  options.coherency.ttl = 10.0;
  Simulator simulator(network.get(), scheme_or->get(), options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());

  simulator.Step(At(1.0, 0), false);  // Seed descriptors.
  simulator.Step(At(2.0, 0), false);  // Placed at the leaf.
  ASSERT_TRUE(network->node(3)->Contains(0));
  simulator.Step(At(50.0, 0), true);  // TTL 10 expired: drop + refetch.
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.copies_expired, 1u);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network->node(v)->CheckInvariants()) << "node " << v;
  }
  // The demoted descriptor kept its history (>= 3 accesses recorded).
  const cache::ObjectDescriptor* desc =
      network->node(3)->FindDescriptor(0);
  ASSERT_NE(desc, nullptr);
  EXPECT_GE(desc->num_accesses, 3);
}

// Fixture for driving the coordinated scheme (cost-mode caches + d-cache)
// through the coherency path of the message pipeline.
class CoherencyCoordinatedTest : public ::testing::Test {
 protected:
  CoherencyCoordinatedTest()
      : catalog_(MakeCatalog({{100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {
    CacheNodeConfig config;
    config.mode = CacheMode::kCost;
    config.capacity_bytes = 1000;
    config.dcache_entries = 16;
    network_->ConfigureCaches(config);
    auto scheme_or =
        schemes::MakeScheme({.kind = schemes::SchemeKind::kCoordinated});
    CASCACHE_CHECK(scheme_or.ok());
    scheme_ = std::move(*scheme_or);
  }

  /// First request seeds the descriptors, second places the object at the
  /// leaf (see SimulatorSingleNodeTest.CoordinatedOnSingleProxy).
  void SeedAndPlace(Simulator& simulator) {
    simulator.Step(At(1.0, 0), false);
    simulator.Step(At(2.0, 0), false);
    ASSERT_TRUE(network_->node(3)->Contains(0));
  }

  trace::ObjectCatalog catalog_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<schemes::CachingScheme> scheme_;
};

TEST_F(CoherencyCoordinatedTest, NoneProtocolServesAndCountsStaleHit) {
  SimOptions options;
  options.coherency.protocol = CoherencyProtocol::kNone;
  options.coherency.mutable_fraction = 1.0;
  options.coherency.mean_update_period = 20.0;
  Simulator simulator(network_.get(), scheme_.get(), options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());
  SeedAndPlace(simulator);
  // Far in the future the origin version has advanced, but without a
  // protocol the leaf still serves its v0 copy — counted as stale.
  simulator.Step(At(10'000.0, 0), true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(s.stale_hit_ratio, 1.0);
  EXPECT_EQ(s.copies_expired, 0u);
  EXPECT_EQ(s.copies_invalidated, 0u);
}

TEST_F(CoherencyCoordinatedTest, TtlExpiryDropsCopyOnAscent) {
  SimOptions options;
  options.coherency.protocol = CoherencyProtocol::kTtl;
  options.coherency.ttl = 10.0;
  Simulator simulator(network_.get(), scheme_.get(), options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());
  SeedAndPlace(simulator);
  // 48 s after the leaf copy was fetched (> ttl 10): the ascent drops it
  // and the request continues to the origin.
  simulator.Step(At(50.0, 0), true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.copies_expired, 1u);
  EXPECT_DOUBLE_EQ(s.hit_ratio, 0.0);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network_->node(v)->CheckInvariants()) << "node " << v;
  }
}

TEST_F(CoherencyCoordinatedTest, InvalidationDropsOutdatedCopyOnAscent) {
  SimOptions options;
  options.coherency.protocol = CoherencyProtocol::kInvalidation;
  options.coherency.mutable_fraction = 1.0;
  options.coherency.mean_update_period = 20.0;
  Simulator simulator(network_.get(), scheme_.get(), options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());
  SeedAndPlace(simulator);
  // The origin version advanced past the leaf copy's: invalidated on
  // ascent, served fresh from the origin, never a stale serve.
  simulator.Step(At(10'000.0, 0), true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.copies_invalidated, 1u);
  EXPECT_DOUBLE_EQ(s.hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(s.stale_hit_ratio, 0.0);
  for (topology::NodeId v = 0; v < 4; ++v) {
    EXPECT_TRUE(network_->node(v)->CheckInvariants()) << "node " << v;
  }
}

TEST(CoherencyDisabledTest, PaperSettingHasNoTracking) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, 4);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  network->ConfigureCaches(config);
  schemes::LruScheme scheme;
  Simulator simulator(network.get(), &scheme);  // Defaults.
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());
  simulator.Step(At(1.0, 0), false);
  // No stamps are recorded in the paper setting.
  EXPECT_EQ(network->node(3)->FindCopy(0), nullptr);
}

}  // namespace
}  // namespace cascache::sim
