// Degraded-node fault class tests: deterministic disk-outage schedules
// (RAM-only service for tiered nodes, proxy-only for untiered ones),
// sibling-leg message loss as a pure hash, preservation of disk
// contents across an outage, and integer-exact reconciliation of the
// disk_degraded counters under full runs.

#include <gtest/gtest.h>

#include <vector>

#include "schemes/lru_scheme.h"
#include "schemes/scheme.h"
#include "sim/fault_plane.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "testing/scenario.h"
#include "util/check.h"
#include "util/random.h"

namespace cascache::sim {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;
using cascache::testing::MakeTreeNetwork;
using util::Rng;

FaultScheduleConfig DiskFaultConfig(double mtbf, double downtime,
                                    uint64_t seed = 5) {
  FaultScheduleConfig config;
  config.seed = seed;
  config.disk_fail_mtbf = mtbf;
  config.disk_fail_downtime = downtime;
  return config;
}

/// First t >= start (unit grid) where `plane` reports the node's disk
/// state equal to `want_down`; -1.0 when none found.
double FindDiskState(FaultPlane* plane, topology::NodeId node, double start,
                     bool want_down) {
  for (double t = start; t < start + 100'000.0; t += 1.0) {
    if (plane->DiskDown(node, t) == want_down) return t;
  }
  return -1.0;
}

/// First t >= 0 (unit grid) where path[0]'s disk is down while every
/// other path node's disk is up, so an outage test sees exactly one
/// degraded hop; -1.0 when none found.
double FindLoneLeafOutage(FaultPlane* plane,
                          const std::vector<topology::NodeId>& path) {
  for (double t = 0.0; t < 100'000.0; t += 1.0) {
    if (!plane->DiskDown(path[0], t)) continue;
    bool upstream_healthy = true;
    for (size_t i = 1; i < path.size(); ++i) {
      if (plane->DiskDown(path[i], t)) {
        upstream_healthy = false;
        break;
      }
    }
    if (upstream_healthy) return t;
  }
  return -1.0;
}

TEST(DegradedFaultTest, DiskOutageScheduleIsQueryOrderIndependent) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/2);
  const FaultScheduleConfig config = DiskFaultConfig(40.0, 15.0);
  ASSERT_TRUE(config.active());
  ASSERT_TRUE(config.Validate().ok());

  FaultPlane forward(config, network.get());
  FaultPlane backward(config, network.get());
  const int num_nodes = network->num_nodes();
  std::vector<bool> forward_states;
  for (int v = 0; v < num_nodes; ++v) {
    for (int t = 0; t < 400; ++t) {
      forward_states.push_back(forward.DiskDown(v, static_cast<double>(t)));
    }
  }
  // Reverse query order against a fresh plane: identical answers (the
  // outage streams are deterministic prefixes, not query-order state).
  size_t idx = forward_states.size();
  for (int v = num_nodes - 1; v >= 0; --v) {
    for (int t = 399; t >= 0; --t) {
      --idx;
      ASSERT_EQ(backward.DiskDown(v, static_cast<double>(t)),
                forward_states[idx])
          << "node " << v << " t " << t;
    }
  }
  // The schedule actually alternates, and the disk stream does not leak
  // into the node-crash stream (crashes are disabled in this config).
  EXPECT_GE(FindDiskState(&forward, 0, 0.0, true), 0.0);
  EXPECT_GE(FindDiskState(&forward, 0, 0.0, false), 0.0);
  for (int t = 0; t < 400; t += 7) {
    EXPECT_FALSE(forward.NodeDown(0, static_cast<double>(t)));
  }
}

TEST(DegradedFaultTest, DiskStreamIsSaltedApartFromCrashStream) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/2);
  FaultScheduleConfig config = DiskFaultConfig(40.0, 15.0);
  config.node_crash_mtbf = 40.0;
  config.node_downtime = 15.0;  // Identical rates; only the salt differs.
  FaultPlane plane(config, network.get());
  bool differs = false;
  for (int t = 0; t < 2'000 && !differs; ++t) {
    differs = plane.DiskDown(0, static_cast<double>(t)) !=
              plane.NodeDown(0, static_cast<double>(t));
  }
  EXPECT_TRUE(differs);
}

TEST(DegradedFaultTest, SiblingLossIsAPureHashOfRequestAndProbe) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/2);
  FaultScheduleConfig config;
  config.sibling_loss_prob = 0.4;
  FaultPlane a(config, network.get());
  FaultPlane b(config, network.get());
  int lost = 0;
  for (uint64_t request = 0; request < 1'000; ++request) {
    for (int probe = 0; probe < 3; ++probe) {
      const bool first = a.SiblingLoss(request, probe);
      // Stable across repeated queries and across independent planes.
      EXPECT_EQ(a.SiblingLoss(request, probe), first);
      EXPECT_EQ(b.SiblingLoss(request, probe), first);
      lost += first ? 1 : 0;
    }
  }
  // Unbiased enough to actually exercise both branches.
  EXPECT_GT(lost, 600);
  EXPECT_LT(lost, 1'800);
}

TEST(DegradedFaultTest, TieredNodeServesRamOnlyDuringDiskOutage) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}, {100, 0}});
  auto network = MakeChainNetwork(&catalog, /*depth=*/3);
  schemes::LruScheme scheme;
  SimOptions options;
  options.tier.ram_fraction = 0.5;
  options.faults = DiskFaultConfig(40.0, 15.0);
  Simulator simulator(network.get(), &scheme, options);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1'000;
  config.ram_fraction = options.tier.ram_fraction;
  network->ConfigureCaches(config);

  const topology::NodeId leaf = network->RequesterNode(0);
  CacheNode* node = network->node(leaf);
  // Object 0: disk + RAM resident. Object 1: disk only.
  node->lru()->Insert(0, 100);
  node->ServeTiered(0, 100);
  node->lru()->Insert(1, 100);
  ASSERT_TRUE(node->ram()->Contains(0));
  ASSERT_FALSE(node->ram()->Contains(1));

  const double t_down = FindLoneLeafOutage(simulator.fault_plane(),
                                           network->PathToServer(leaf, 0));
  ASSERT_GE(t_down, 0.0);

  // RAM-resident object: served out of the RAM tier, zero extra hops.
  simulator.Step(At(t_down, 0), /*collect=*/true);
  MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.ram_hits, 1u);
  EXPECT_EQ(s.disk_degraded, 0u);
  EXPECT_DOUBLE_EQ(s.avg_hops, 0.0);

  // Disk-only object: unavailable at the leaf (disk_degraded on the
  // ascent), served upstream, and the descending placement at the
  // degraded hop is lost too (second disk_degraded decision).
  simulator.Step(At(t_down, 1), /*collect=*/true);
  s = simulator.metrics().Summary();
  EXPECT_EQ(s.cache_hits, 1u);  // Still only the RAM serve above.
  EXPECT_EQ(s.disk_degraded, 2u);
  EXPECT_EQ(s.failed_requests, 0u);
  // Contents preserved: the outage costs availability, not data.
  EXPECT_TRUE(node->Contains(0));
  EXPECT_TRUE(node->Contains(1));
}

TEST(DegradedFaultTest, UntieredNodeDegradesToProxyOnly) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, /*depth=*/3);
  schemes::LruScheme scheme;
  SimOptions options;  // No tier: the whole node is its disk store.
  options.faults = DiskFaultConfig(40.0, 15.0);
  Simulator simulator(network.get(), &scheme, options);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1'000;
  network->ConfigureCaches(config);

  const topology::NodeId leaf = network->RequesterNode(0);
  network->node(leaf)->lru()->Insert(0, 100);
  const double t = FindLoneLeafOutage(simulator.fault_plane(),
                                      network->PathToServer(leaf, 0));
  ASSERT_GE(t, 0.0);

  simulator.Step(At(t, 0), /*collect=*/true);
  const MetricsSummary s = simulator.metrics().Summary();
  // Proxy-only: the leaf's perfectly good copy cannot be served (one
  // disk_degraded on the ascent) and the placement coming back down is
  // dropped there (a second one); the request itself still completes.
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.disk_degraded, 2u);
  EXPECT_EQ(s.served_requests, 1u);
  EXPECT_TRUE(network->node(leaf)->Contains(0));  // Data survives.
}

TEST(DegradedFaultTest, DiskContentsServeAgainAfterRecovery) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, /*depth=*/2);
  schemes::LruScheme scheme;
  SimOptions options;
  options.tier.ram_fraction = 0.2;
  options.faults = DiskFaultConfig(40.0, 15.0);
  Simulator simulator(network.get(), &scheme, options);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1'000;
  config.ram_fraction = options.tier.ram_fraction;
  network->ConfigureCaches(config);

  const topology::NodeId leaf = network->RequesterNode(0);
  network->node(leaf)->lru()->Insert(0, 100);  // Disk only, not in RAM.
  FaultPlane* plane = simulator.fault_plane();
  const double t_down = FindDiskState(plane, leaf, 0.0, true);
  ASSERT_GE(t_down, 0.0);
  const double t_up = FindDiskState(plane, leaf, t_down, false);
  ASSERT_GT(t_up, t_down);

  simulator.Step(At(t_down, 0), /*collect=*/true);
  EXPECT_EQ(simulator.metrics().Summary().cache_hits, 0u);
  // After recovery the same pre-outage copy serves from disk (and is
  // promoted): no cold restart for the degraded-node class.
  simulator.Step(At(t_up, 0), /*collect=*/true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.disk_hits, 1u);
  EXPECT_EQ(s.promotions, 1u);
}

// Full-run reconciliation under the complete new axis: tiered nodes +
// sibling cooperation + disk outages + sibling loss, across a scheme
// with piggyback state (Coordinated) and one without (LRU). All the new
// counters must reconcile integer-exactly between the aggregate summary
// and the per-node counters, and no request may be silently dropped.
TEST(DegradedFaultTest, DegradedRunsReconcileExactly) {
  trace::Workload workload;
  Rng rng(13);
  for (int i = 0; i < 60; ++i) {
    workload.catalog.Add(50 + rng.NextUint64(250), 0);
  }
  for (int i = 0; i < 6'000; ++i) {
    workload.requests.push_back(At(static_cast<double>(i) * 0.5,
                                   rng.NextUint64(60), rng.NextUint64(16)));
  }

  const schemes::SchemeSpec specs[] = {
      {.kind = schemes::SchemeKind::kLru},
      {.kind = schemes::SchemeKind::kCoordinated},
  };
  for (const schemes::SchemeSpec& spec : specs) {
    auto scheme_or = schemes::MakeScheme(spec);
    ASSERT_TRUE(scheme_or.ok());
    auto scheme = std::move(scheme_or).value();
    auto network = MakeTreeNetwork(&workload.catalog, /*depth=*/3,
                                   /*fanout=*/2);
    SimOptions options;
    options.tier.ram_fraction = 0.25;
    options.sibling.enabled = true;
    options.faults = DiskFaultConfig(200.0, 60.0);
    options.faults.sibling_loss_prob = 0.1;
    Simulator simulator(network.get(), scheme.get(), options);
    ASSERT_TRUE(simulator.Run(workload, 2'000).ok()) << scheme->name();

    const MetricsSummary s = simulator.metrics().Summary();
    EXPECT_EQ(s.requests, 3'000u) << scheme->name();
    EXPECT_EQ(s.served_requests + s.failed_requests + s.shed_requests,
              s.requests)
        << scheme->name();
    // Every node is tiered, so every hit is exactly one tier serve.
    EXPECT_EQ(s.ram_hits + s.disk_hits, s.cache_hits) << scheme->name();
    EXPECT_GT(s.disk_degraded, 0u) << scheme->name();

    const NodeCounters totals = simulator.metrics().NodeTotals();
    EXPECT_EQ(totals.hits, s.cache_hits) << scheme->name();
    EXPECT_EQ(totals.ram_hits, s.ram_hits) << scheme->name();
    EXPECT_EQ(totals.disk_hits, s.disk_hits) << scheme->name();
    EXPECT_EQ(totals.promotions, s.promotions) << scheme->name();
    EXPECT_EQ(totals.demotions, s.demotions) << scheme->name();
    EXPECT_EQ(totals.sibling_probes, s.sibling_probes) << scheme->name();
    EXPECT_EQ(totals.sibling_serves, s.sibling_hits) << scheme->name();
    EXPECT_EQ(totals.disk_degraded, s.disk_degraded) << scheme->name();
    EXPECT_EQ(totals.degraded, s.degraded_decisions) << scheme->name();

    // Determinism: an identical second run reproduces the summary bit
    // for bit (fault streams reset with the run).
    auto network2 = MakeTreeNetwork(&workload.catalog, /*depth=*/3,
                                    /*fanout=*/2);
    auto scheme2_or = schemes::MakeScheme(spec);
    ASSERT_TRUE(scheme2_or.ok());
    auto scheme2 = std::move(scheme2_or).value();
    Simulator repeat(network2.get(), scheme2.get(), options);
    ASSERT_TRUE(repeat.Run(workload, 2'000).ok());
    const MetricsSummary r = repeat.metrics().Summary();
    EXPECT_EQ(r.cache_hits, s.cache_hits) << scheme->name();
    EXPECT_EQ(r.disk_degraded, s.disk_degraded) << scheme->name();
    EXPECT_EQ(r.sibling_probes, s.sibling_probes) << scheme->name();
    EXPECT_DOUBLE_EQ(r.avg_latency, s.avg_latency) << scheme->name();
    EXPECT_DOUBLE_EQ(r.byte_hit_ratio, s.byte_hit_ratio) << scheme->name();
  }
}

}  // namespace
}  // namespace cascache::sim
