#include "sim/metrics.h"

#include <vector>

#include <gtest/gtest.h>

namespace cascache::sim {
namespace {

RequestMetrics Hit(uint64_t size, double latency, int hops) {
  RequestMetrics m;
  m.size_bytes = size;
  m.latency = latency;
  m.hops = hops;
  m.cache_hit = true;
  m.read_bytes = size;
  return m;
}

RequestMetrics Miss(uint64_t size, double latency, int hops,
                    uint64_t writes) {
  RequestMetrics m;
  m.size_bytes = size;
  m.latency = latency;
  m.hops = hops;
  m.cache_hit = false;
  m.write_bytes = writes;
  return m;
}

TEST(MetricsTest, EmptySummaryIsZero) {
  MetricsCollector collector;
  const MetricsSummary s = collector.Summary();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.avg_latency, 0.0);
  EXPECT_EQ(s.byte_hit_ratio, 0.0);
}

TEST(MetricsTest, AveragesOverRequests) {
  MetricsCollector collector;
  collector.Record(Hit(1 << 20, 0.2, 2));
  collector.Record(Miss(1 << 20, 0.6, 6, 1 << 20));
  const MetricsSummary s = collector.Summary();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_NEAR(s.avg_latency, 0.4, 1e-12);
  EXPECT_NEAR(s.avg_hops, 4.0, 1e-12);
  // Response ratio: latency per MB; both objects are exactly 1 MB.
  EXPECT_NEAR(s.avg_response_ratio, 0.4, 1e-12);
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 0.5);
  EXPECT_DOUBLE_EQ(s.hit_ratio, 0.5);
}

TEST(MetricsTest, ResponseRatioNormalizesBySize) {
  MetricsCollector collector;
  // Same latency for a small and a large object: the small object has a
  // much worse (higher) response ratio.
  collector.Record(Hit(1 << 18, 0.4, 2));  // 0.25 MB -> 1.6 s/MB.
  const MetricsSummary s = collector.Summary();
  EXPECT_NEAR(s.avg_response_ratio, 1.6, 1e-12);
}

TEST(MetricsTest, TrafficIsByteHops) {
  MetricsCollector collector;
  collector.Record(Hit(1000, 0.1, 3));
  collector.Record(Hit(500, 0.1, 4));
  const MetricsSummary s = collector.Summary();
  EXPECT_NEAR(s.avg_traffic_byte_hops, (3000.0 + 2000.0) / 2.0, 1e-9);
}

TEST(MetricsTest, LoadCombinesReadsAndWrites) {
  MetricsCollector collector;
  collector.Record(Hit(1000, 0.1, 1));            // Read 1000.
  collector.Record(Miss(2000, 0.1, 5, 6000));     // Write 6000.
  const MetricsSummary s = collector.Summary();
  EXPECT_NEAR(s.avg_load_bytes, (1000.0 + 6000.0) / 2.0, 1e-9);
  EXPECT_NEAR(s.read_load_share, 1000.0 / 7000.0, 1e-9);
  EXPECT_NEAR(s.avg_write_bytes, 3000.0, 1e-9);
}

TEST(MetricsTest, ByteHitRatioWeighsBySize) {
  MetricsCollector collector;
  collector.Record(Hit(9000, 0.1, 1));
  collector.Record(Miss(1000, 0.1, 5, 0));
  const MetricsSummary s = collector.Summary();
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 0.9);
  EXPECT_DOUBLE_EQ(s.hit_ratio, 0.5);
  EXPECT_EQ(s.total_bytes_requested, 10000u);
  EXPECT_EQ(s.bytes_from_caches, 9000u);
}

TEST(MetricsTest, ResetClears) {
  MetricsCollector collector;
  collector.Record(Hit(1000, 0.1, 1));
  collector.Reset();
  EXPECT_EQ(collector.Summary().requests, 0u);
}

TEST(MetricsTest, SummaryExposesRawTotals) {
  MetricsCollector collector;
  RequestMetrics m = Miss(2000, 0.1, 5, 6000);
  m.insertions = 3;
  collector.Record(m);
  collector.Record(Hit(1000, 0.1, 1));
  const MetricsSummary s = collector.Summary();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.bytes_written, 6000u);
  EXPECT_EQ(s.stale_hits, 0u);
}

TEST(MetricsTest, NodeCountersRollUp) {
  MetricsCollector collector;
  collector.ResetNodes(3);
  ASSERT_NE(collector.node_counters_data(), nullptr);
  NodeCounters* nodes = collector.node_counters_data();
  nodes[0].hits = 2;
  nodes[0].misses = 1;
  nodes[0].bytes_served = 500;
  nodes[2].hits = 1;
  nodes[2].evictions = 4;
  nodes[2].placements = 5;
  const NodeCounters total = collector.NodeTotals();
  EXPECT_EQ(total.hits, 3u);
  EXPECT_EQ(total.misses, 1u);
  EXPECT_EQ(total.evictions, 4u);
  EXPECT_EQ(total.placements, 5u);
  EXPECT_EQ(total.bytes_served, 500u);
  EXPECT_EQ(nodes[0].requests_seen(), 3u);
}

TEST(MetricsTest, NodeCountersAccumulateAllFields) {
  NodeCounters a;
  a.hits = 1;
  a.misses = 2;
  a.evictions = 3;
  a.placements = 4;
  a.placements_rejected = 5;
  a.expirations = 6;
  a.invalidations = 7;
  a.stale_serves = 8;
  a.dcache_hits = 9;
  a.bytes_served = 10;
  a.bytes_cached = 11;
  NodeCounters b = a;
  b += a;
  EXPECT_EQ(b.hits, 2u);
  EXPECT_EQ(b.misses, 4u);
  EXPECT_EQ(b.evictions, 6u);
  EXPECT_EQ(b.placements, 8u);
  EXPECT_EQ(b.placements_rejected, 10u);
  EXPECT_EQ(b.expirations, 12u);
  EXPECT_EQ(b.invalidations, 14u);
  EXPECT_EQ(b.stale_serves, 16u);
  EXPECT_EQ(b.dcache_hits, 18u);
  EXPECT_EQ(b.bytes_served, 20u);
  EXPECT_EQ(b.bytes_cached, 22u);
}

TEST(MetricsTest, ResetDropsNodeCounters) {
  MetricsCollector collector;
  collector.ResetNodes(2);
  collector.node_counters_data()[1].hits = 7;
  collector.Reset();
  EXPECT_EQ(collector.node_counters_data(), nullptr);
  collector.ResetNodes(2);
  EXPECT_EQ(collector.node_counters()[1].hits, 0u);
}

TEST(MetricsTest, RecordBlockMatchesSequentialRecordsBitExactly) {
  // The hot-path batching in Simulator::ReplayRange flushes decoded
  // blocks through RecordBlock; it must be indistinguishable — including
  // in floating-point summation order — from per-request Record calls.
  std::vector<RequestMetrics> batch;
  for (int i = 0; i < 257; ++i) {
    RequestMetrics m = (i % 3 == 0)
                           ? Hit(1000 + i * 7, 0.01 * i, 1 + i % 5)
                           : Miss(500 + i * 13, 0.02 * i, 2 + i % 4,
                                  (i % 2) * 4096);
    m.retries = i % 3;
    m.queue_wait = 0.001 * (i % 11);
    m.shed = i % 17 == 0;
    m.placements_shed = i % 5 == 0 ? 1 : 0;
    if (i % 29 == 0) m.failed = true;
    batch.push_back(m);
  }

  MetricsCollector sequential;
  for (const RequestMetrics& m : batch) sequential.Record(m);
  MetricsCollector blocked;
  blocked.RecordBlock(batch.data(), batch.size());

  const MetricsSummary a = sequential.Summary();
  const MetricsSummary b = blocked.Summary();
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.failed_requests, b.failed_requests);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.shed_placements, b.shed_placements);
  EXPECT_EQ(a.served_requests, b.served_requests);
  EXPECT_EQ(a.total_bytes_requested, b.total_bytes_requested);
  EXPECT_EQ(a.bytes_from_caches, b.bytes_from_caches);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  // Bit-exact, not merely close: the block path must keep the Welford
  // update order of the sequential path.
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.avg_response_ratio, b.avg_response_ratio);
  EXPECT_EQ(a.avg_traffic_byte_hops, b.avg_traffic_byte_hops);
  EXPECT_EQ(a.avg_load_bytes, b.avg_load_bytes);
  EXPECT_EQ(a.avg_queue_wait, b.avg_queue_wait);
}

TEST(MetricsTest, ToStringMentionsKeyFields) {
  MetricsCollector collector;
  collector.Record(Hit(1000, 0.1, 1));
  const std::string s = collector.Summary().ToString();
  EXPECT_NE(s.find("requests=1"), std::string::npos);
  EXPECT_NE(s.find("byte_hit"), std::string::npos);
}

}  // namespace
}  // namespace cascache::sim
