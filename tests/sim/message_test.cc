#include "sim/message.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "schemes/scheme.h"
#include "sim/simulator.h"
#include "testing/scenario.h"

namespace cascache::sim {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;

// A scheme that records every handler invocation in order and attaches a
// fixed payload per hop, so the tests can assert the pipeline's hook
// contract: OnAscend fires on ascending non-serving hops only, OnServe
// exactly once, OnDescend on descending hops below the serving point.
class RecordingScheme : public schemes::CachingScheme {
 public:
  std::string name() const override { return "recording"; }
  CacheMode cache_mode() const override { return CacheMode::kLru; }
  bool observes_ascent() const override { return true; }

  void OnAscend(MessageContext& ctx, int hop) override {
    events.push_back("ascend:" + std::to_string(hop));
    EXPECT_EQ(ctx.request.hop, hop);
    ctx.request.payload_bytes += 5;
  }
  void OnServe(MessageContext& ctx) override {
    events.push_back("serve:" + std::to_string(ctx.hit_index()));
    ctx.response.payload_bytes += 3;
  }
  void OnDescend(MessageContext& ctx, int hop) override {
    events.push_back("descend:" + std::to_string(hop));
    ctx.node(hop)->lru()->Insert(ctx.object, ctx.size);
  }

  std::vector<std::string> events;
};

class MessagePipelineTest : public ::testing::Test {
 protected:
  MessagePipelineTest()
      : catalog_(MakeCatalog({{100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {
    CacheNodeConfig config;
    config.mode = CacheMode::kLru;
    config.capacity_bytes = 1000;
    network_->ConfigureCaches(config);
  }

  trace::ObjectCatalog catalog_;
  std::unique_ptr<Network> network_;
  RecordingScheme scheme_;
};

TEST_F(MessagePipelineTest, ColdMissVisitsEveryHopThenDescends) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), /*collect=*/true);
  const std::vector<std::string> want = {
      "ascend:0", "ascend:1", "ascend:2", "ascend:3",
      "serve:-1",
      "descend:3", "descend:2", "descend:1", "descend:0"};
  EXPECT_EQ(scheme_.events, want);
}

TEST_F(MessagePipelineTest, HitAtRequestingCacheSkipsAscentAndDescent) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  scheme_.events.clear();
  // All caches hold the object now; the leaf serves immediately, so no
  // ascent hook fires and nothing lies below the serving point.
  simulator.Step(At(2.0, 0), true);
  const std::vector<std::string> want = {"serve:0"};
  EXPECT_EQ(scheme_.events, want);
}

TEST_F(MessagePipelineTest, PartialHitAscendsToServerAndDescendsBelowIt) {
  Simulator simulator(network_.get(), &scheme_);
  simulator.Step(At(1.0, 0), false);
  network_->node(network_->RequesterNode(0))->lru()->Erase(0);
  scheme_.events.clear();
  // Leaf misses (hook fires), its parent serves, descent refills the leaf.
  simulator.Step(At(2.0, 0), true);
  const std::vector<std::string> want = {"ascend:0", "serve:1", "descend:0"};
  EXPECT_EQ(scheme_.events, want);
}

TEST_F(MessagePipelineTest, PayloadBytesFlowIntoMetrics) {
  Simulator simulator(network_.get(), &scheme_);
  // Cold miss: 4 ascent hops x 5 request bytes, 3 response bytes.
  simulator.Step(At(1.0, 0), true);
  MetricsSummary s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.avg_request_msg_bytes, 20.0);
  EXPECT_DOUBLE_EQ(s.avg_response_msg_bytes, 3.0);
  EXPECT_DOUBLE_EQ(s.avg_message_bytes, 23.0);
  // Immediate hit: no ascent payload; averages halve accordingly.
  simulator.Step(At(2.0, 0), true);
  s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.avg_request_msg_bytes, 10.0);
  EXPECT_DOUBLE_EQ(s.avg_response_msg_bytes, 3.0);
}

TEST(MessageContextTest, IndexHelpers) {
  const std::vector<topology::NodeId> path = {7, 5, 3, 0};
  const std::vector<double> costs = {1.0, 2.0, 4.0};
  MessageContext ctx;
  ctx.path = &path;
  ctx.link_costs = &costs;
  ctx.server_link_cost = 8.0;

  ctx.response.hit_index = -1;  // Origin served.
  EXPECT_TRUE(ctx.origin_served());
  EXPECT_EQ(ctx.top_index(), 3);
  EXPECT_EQ(ctx.first_missing(), 3);
  EXPECT_DOUBLE_EQ(ctx.upstream_link_cost(3), 8.0);  // Virtual server link.
  EXPECT_DOUBLE_EQ(ctx.upstream_link_cost(1), 2.0);

  ctx.response.hit_index = 2;  // Cache at path index 2 served.
  EXPECT_FALSE(ctx.origin_served());
  EXPECT_EQ(ctx.top_index(), 2);
  EXPECT_EQ(ctx.first_missing(), 1);
}

}  // namespace
}  // namespace cascache::sim
