#include "sim/network.h"

#include <gtest/gtest.h>

#include "testing/scenario.h"

namespace cascache::sim {
namespace {

trace::ObjectCatalog SmallCatalog(uint32_t num_servers = 10) {
  trace::ObjectCatalog catalog;
  for (uint32_t i = 0; i < 50; ++i) {
    catalog.Add(100 + i, i % num_servers);
  }
  return catalog;
}

TEST(NetworkTest, BuildEnRoute) {
  const trace::ObjectCatalog catalog = SmallCatalog();
  NetworkParams params;
  params.architecture = Architecture::kEnRoute;
  auto net_or = Network::Build(params, &catalog);
  ASSERT_TRUE(net_or.ok()) << net_or.status();
  Network& net = **net_or;
  EXPECT_EQ(net.num_nodes(), 100);
  EXPECT_EQ(net.architecture(), Architecture::kEnRoute);
  EXPECT_DOUBLE_EQ(net.server_link_delay(), 0.0);
  EXPECT_EQ(net.server_link_hops(), 0);
  EXPECT_GT(net.mean_object_size(), 0.0);
}

TEST(NetworkTest, BuildHierarchical) {
  const trace::ObjectCatalog catalog = SmallCatalog();
  NetworkParams params;
  params.architecture = Architecture::kHierarchical;
  auto net_or = Network::Build(params, &catalog);
  ASSERT_TRUE(net_or.ok());
  Network& net = **net_or;
  EXPECT_EQ(net.num_nodes(), 40);  // Depth 4, fanout 3.
  EXPECT_GT(net.server_link_delay(), 0.0);
  EXPECT_EQ(net.server_link_hops(), 1);
  // All servers attach to the root.
  for (trace::ServerId s = 0; s < catalog.num_servers(); ++s) {
    EXPECT_EQ(net.ServerAttach(s), 0);
  }
}

TEST(NetworkTest, RejectsNullAndEmptyCatalog) {
  NetworkParams params;
  EXPECT_FALSE(Network::Build(params, nullptr).ok());
  trace::ObjectCatalog empty;
  EXPECT_FALSE(Network::Build(params, &empty).ok());
}

TEST(NetworkTest, EnRouteClientsAndServersOnManNodes) {
  const trace::ObjectCatalog catalog = SmallCatalog();
  NetworkParams params;
  params.architecture = Architecture::kEnRoute;
  auto net_or = Network::Build(params, &catalog);
  ASSERT_TRUE(net_or.ok());
  Network& net = **net_or;
  // MAN ids are [50, 100) with the default Tiers parameters.
  for (trace::ClientId c = 0; c < 200; ++c) {
    const topology::NodeId n = net.RequesterNode(c);
    EXPECT_GE(n, 50);
    EXPECT_LT(n, 100);
  }
  for (trace::ServerId s = 0; s < catalog.num_servers(); ++s) {
    const topology::NodeId n = net.ServerAttach(s);
    EXPECT_GE(n, 50);
    EXPECT_LT(n, 100);
  }
}

TEST(NetworkTest, ClientAssignmentIsDeterministic) {
  const trace::ObjectCatalog catalog = SmallCatalog();
  NetworkParams params;
  auto a = Network::Build(params, &catalog);
  auto b = Network::Build(params, &catalog);
  ASSERT_TRUE(a.ok() && b.ok());
  for (trace::ClientId c = 0; c < 100; ++c) {
    EXPECT_EQ((*a)->RequesterNode(c), (*b)->RequesterNode(c));
  }
}

TEST(NetworkTest, PathReachesServerAttach) {
  const trace::ObjectCatalog catalog = SmallCatalog();
  NetworkParams params;
  auto net_or = Network::Build(params, &catalog);
  ASSERT_TRUE(net_or.ok());
  Network& net = **net_or;
  const topology::NodeId from = net.RequesterNode(0);
  const auto path = net.PathToServer(from, 3);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), from);
  EXPECT_EQ(path.back(), net.ServerAttach(3));
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_GT(net.LinkDelay(path[i], path[i + 1]), 0.0);
  }
}

TEST(NetworkTest, ConfigureCachesResetsState) {
  const trace::ObjectCatalog catalog = SmallCatalog();
  NetworkParams params;
  auto net_or = Network::Build(params, &catalog);
  ASSERT_TRUE(net_or.ok());
  Network& net = **net_or;

  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  net.ConfigureCaches(config);
  net.node(0)->lru()->Insert(1, 100);
  EXPECT_TRUE(net.node(0)->Contains(1));

  config.mode = CacheMode::kCost;
  config.dcache_entries = 4;
  net.ConfigureCaches(config);
  EXPECT_FALSE(net.node(0)->Contains(1));
  EXPECT_EQ(net.node(0)->mode(), CacheMode::kCost);
}

TEST(NetworkTest, MeanClientServerHopsIsPlausible) {
  const trace::ObjectCatalog catalog = SmallCatalog();
  NetworkParams params;
  auto net_or = Network::Build(params, &catalog);
  ASSERT_TRUE(net_or.ok());
  const double hops = (*net_or)->MeanClientServerHops();
  // Paper Table 1 reports ~12 for this topology class.
  EXPECT_GT(hops, 5.0);
  EXPECT_LT(hops, 25.0);
}

TEST(NetworkTest, HierarchicalPathIsLeafToRoot) {
  const trace::ObjectCatalog catalog = SmallCatalog();
  NetworkParams params;
  params.architecture = Architecture::kHierarchical;
  auto net_or = Network::Build(params, &catalog);
  ASSERT_TRUE(net_or.ok());
  Network& net = **net_or;
  const topology::NodeId leaf = net.RequesterNode(17);
  const auto path = net.PathToServer(leaf, 0);
  EXPECT_EQ(path.size(), 4u);  // Leaf, two internals, root.
  EXPECT_EQ(path.back(), 0);
}

TEST(ArchitectureNameTest, Names) {
  EXPECT_STREQ(ArchitectureName(Architecture::kEnRoute), "en-route");
  EXPECT_STREQ(ArchitectureName(Architecture::kHierarchical),
               "hierarchical");
}

}  // namespace
}  // namespace cascache::sim
