#include "sim/event_trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cascache::sim {
namespace {

TraceEvent Event(uint64_t req, TraceEventType type, int32_t node) {
  TraceEvent e;
  e.request_index = req;
  e.time = static_cast<double>(req) * 0.5;
  e.type = type;
  e.node = node;
  e.level = 1;
  e.object = 42;
  e.size_bytes = 1000;
  e.value = 2.0;
  return e;
}

TEST(EventTraceTest, RingKeepsMostRecentRecords) {
  EventTraceOptions options;
  options.enabled = true;
  options.ring_capacity = 4;
  EventTrace trace(options);
  for (uint64_t i = 0; i < 6; ++i) {
    trace.Emit(Event(i, TraceEventType::kHit, 0));
  }
  EXPECT_EQ(trace.emitted(), 6u);
  EXPECT_EQ(trace.dropped(), 2u);
  const std::vector<TraceEvent> records = trace.Records();
  ASSERT_EQ(records.size(), 4u);
  // Oldest surviving record first.
  EXPECT_EQ(records.front().request_index, 2u);
  EXPECT_EQ(records.back().request_index, 5u);
}

TEST(EventTraceTest, ClearEmptiesTheRing) {
  EventTraceOptions options;
  options.ring_capacity = 4;
  EventTrace trace(options);
  trace.Emit(Event(0, TraceEventType::kHit, 0));
  trace.Clear();
  EXPECT_EQ(trace.emitted(), 0u);
  EXPECT_TRUE(trace.Records().empty());
}

TEST(EventTraceTest, SamplingRateZeroAndOneAreTotal) {
  EventTraceOptions options;
  options.sampling_rate = 1.0;
  EventTrace all(options);
  options.sampling_rate = 0.0;
  EventTrace none(options);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(all.SampleRequest(i));
    EXPECT_FALSE(none.SampleRequest(i));
  }
}

TEST(EventTraceTest, SamplingIsDeterministicUnderFixedSeed) {
  EventTraceOptions options;
  options.sampling_rate = 0.3;
  options.seed = 12345;
  EventTrace a(options);
  EventTrace b(options);
  int sampled = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(a.SampleRequest(i), b.SampleRequest(i)) << "index " << i;
    if (a.SampleRequest(i)) ++sampled;
  }
  // The hash is uniform: the sampled fraction lands near the rate.
  EXPECT_GT(sampled, 2700);
  EXPECT_LT(sampled, 3300);
  // A different seed picks a different subset.
  options.seed = 54321;
  EventTrace c(options);
  int differs = 0;
  for (uint64_t i = 0; i < 10000; ++i) {
    if (a.SampleRequest(i) != c.SampleRequest(i)) ++differs;
  }
  EXPECT_GT(differs, 0);
}

TEST(EventTraceTest, TypeNamesAreStable) {
  // docs/METRICS.md documents these wire names; keep them in lockstep.
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kRequest), "request");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kHit), "hit");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kOrigin), "origin");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kMiss), "miss");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kExpired), "expired");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kInvalidated),
               "invalidated");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kStaleServe),
               "stale_serve");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kPlacement), "placement");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kPlacementRejected),
               "placement_rejected");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kEviction), "eviction");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kDCacheHit), "dcache_hit");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kNodeCrash), "node_crash");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kReroute), "reroute");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kRetry), "retry");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kRequestFailed),
               "request_failed");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kFaultDegraded),
               "fault_degraded");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kQueueDepth),
               "queue_depth");
  EXPECT_STREQ(TraceEventTypeName(TraceEventType::kShed), "shed");
}

TEST(EventTraceTest, JsonLineGoldenShape) {
  TraceEvent e;
  e.request_index = 7;
  e.time = 1.5;
  e.type = TraceEventType::kPlacement;
  e.node = 3;
  e.level = 2;
  e.object = 99;
  e.size_bytes = 2048;
  e.value = 0.25;
  EXPECT_EQ(EventTrace::ToJsonLine(e),
            "{\"req\":7,\"t\":1.500000,\"type\":\"placement\",\"node\":3,"
            "\"level\":2,\"object\":99,\"size\":2048,\"value\":0.25}");
}

TEST(EventTraceTest, WriteJsonlRoundTrips) {
  EventTraceOptions options;
  options.ring_capacity = 8;
  EventTrace trace(options);
  trace.Emit(Event(1, TraceEventType::kRequest, 0));
  trace.Emit(Event(1, TraceEventType::kMiss, 0));
  const std::string path =
      ::testing::TempDir() + "/event_trace_test_out.jsonl";
  ASSERT_TRUE(trace.WriteJsonl(path).ok());
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"type\":\"request\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"type\":\"miss\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventTraceTest, WriteJsonlBadPathFails) {
  EventTrace trace(EventTraceOptions{});
  EXPECT_FALSE(trace.WriteJsonl("/nonexistent-dir/trace.jsonl").ok());
}

}  // namespace
}  // namespace cascache::sim
