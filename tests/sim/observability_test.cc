/// End-to-end checks of the per-node observability layer: the counters
/// each cache accumulates must reconcile exactly with the aggregate
/// MetricsSummary the paper reports, for every scheme and architecture,
/// and the event trace must describe the same replay.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace cascache::sim {
namespace {

std::vector<schemes::SchemeSpec> AllSchemes() {
  return {{.kind = schemes::SchemeKind::kLru},
          {.kind = schemes::SchemeKind::kModulo, .modulo_radius = 2},
          {.kind = schemes::SchemeKind::kLncr},
          {.kind = schemes::SchemeKind::kCoordinated},
          {.kind = schemes::SchemeKind::kGds},
          {.kind = schemes::SchemeKind::kLfu},
          {.kind = schemes::SchemeKind::kStatic}};
}

ExperimentConfig BaseConfig(Architecture arch) {
  ExperimentConfig config;
  config.network.architecture = arch;
  config.network.tree.depth = 3;
  config.workload.num_objects = 250;
  config.workload.num_requests = 12000;
  config.workload.num_clients = 40;
  config.workload.num_servers = 10;
  config.workload.seed = 7;
  config.cache_fractions = {0.02};
  config.schemes = AllSchemes();
  config.jobs = 1;
  return config;
}

NodeCounters SumPerNode(const RunResult& r) {
  NodeCounters total;
  for (const NodeUsage& usage : r.per_node) total += usage.counters;
  return total;
}

/// The reconciliation contract (see docs/METRICS.md): every aggregate
/// event total equals the sum of the corresponding per-node counter.
void ExpectReconciles(const RunResult& r) {
  SCOPED_TRACE(r.scheme);
  const NodeCounters total = SumPerNode(r);
  const MetricsSummary& m = r.metrics;
  EXPECT_EQ(total.hits, m.cache_hits);
  EXPECT_EQ(total.bytes_served, m.bytes_from_caches);
  EXPECT_EQ(total.placements, m.insertions);
  EXPECT_EQ(total.bytes_cached, m.bytes_written);
  EXPECT_EQ(total.stale_serves, m.stale_hits);
  EXPECT_EQ(total.expirations, m.copies_expired);
  EXPECT_EQ(total.invalidations, m.copies_invalidated);
  // Every measured request consults at least its first cache.
  EXPECT_GE(total.requests_seen(), m.requests);
}

TEST(ObservabilityTest, PerNodeCountersReconcileHierarchical) {
  auto runner_or = ExperimentRunner::Create(BaseConfig(
      Architecture::kHierarchical));
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  ASSERT_EQ(results_or->size(), AllSchemes().size());
  for (const RunResult& r : *results_or) {
    ExpectReconciles(r);
    // The workload hits under every scheme at this cache size.
    EXPECT_GT(SumPerNode(r).hits, 0u);
  }
}

TEST(ObservabilityTest, PerNodeCountersReconcileEnRoute) {
  auto runner_or =
      ExperimentRunner::Create(BaseConfig(Architecture::kEnRoute));
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  for (const RunResult& r : *results_or) ExpectReconciles(r);
}

TEST(ObservabilityTest, PerNodeCountersReconcileUnderCoherency) {
  // TTL expiry + update-driven invalidation exercise the coherency
  // counters; both protocols in turn so expirations and invalidations
  // are each nonzero somewhere.
  for (const CoherencyProtocol protocol :
       {CoherencyProtocol::kTtl, CoherencyProtocol::kInvalidation}) {
    ExperimentConfig config = BaseConfig(Architecture::kHierarchical);
    config.schemes = {{.kind = schemes::SchemeKind::kLru},
                      {.kind = schemes::SchemeKind::kCoordinated}};
    config.sim.coherency.protocol = protocol;
    config.sim.coherency.ttl = 5.0;
    config.sim.coherency.mutable_fraction = 1.0;
    config.sim.coherency.mean_update_period = 20.0;
    auto runner_or = ExperimentRunner::Create(config);
    ASSERT_TRUE(runner_or.ok()) << runner_or.status();
    auto results_or = (*runner_or)->RunAll();
    ASSERT_TRUE(results_or.ok()) << results_or.status();
    for (const RunResult& r : *results_or) {
      SCOPED_TRACE(CoherencyProtocolName(protocol));
      ExpectReconciles(r);
      const NodeCounters total = SumPerNode(r);
      if (protocol == CoherencyProtocol::kTtl) {
        EXPECT_GT(total.expirations, 0u);
      } else {
        EXPECT_GT(total.invalidations, 0u);
      }
    }
  }
}

TEST(ObservabilityTest, WarmupIsExcludedFromNodeCounters) {
  ExperimentConfig config = BaseConfig(Architecture::kHierarchical);
  config.schemes = {{.kind = schemes::SchemeKind::kLru}};
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  const RunResult& r = results_or->front();
  // Only the measured half of the trace reaches the counters: the
  // requester's own node sees at most `requests` lookups.
  uint64_t max_node_requests = 0;
  for (const NodeUsage& usage : r.per_node) {
    max_node_requests =
        std::max(max_node_requests, usage.counters.requests_seen());
  }
  EXPECT_LE(max_node_requests, r.metrics.requests);
  EXPECT_GT(r.warmup_seconds, 0.0);
  EXPECT_GT(r.measure_seconds, 0.0);
}

TEST(ObservabilityTest, TraceDescribesTheReplay) {
  ExperimentConfig config = BaseConfig(Architecture::kHierarchical);
  config.schemes = {{.kind = schemes::SchemeKind::kCoordinated}};
  config.sim.trace.enabled = true;
  config.sim.trace.ring_capacity = 1 << 16;
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  const RunResult& r = results_or->front();
  ASSERT_FALSE(r.trace_events.empty());

  std::set<TraceEventType> seen;
  uint64_t last_request = 0;
  for (const TraceEvent& e : r.trace_events) {
    seen.insert(e.type);
    // The ring is in emit order: request indices never go backwards.
    EXPECT_GE(e.request_index, last_request);
    last_request = e.request_index;
    if (e.type != TraceEventType::kOrigin) {
      EXPECT_GE(e.node, 0);
      EXPECT_GE(e.level, 0);
    }
  }
  EXPECT_TRUE(seen.count(TraceEventType::kRequest));
  EXPECT_TRUE(seen.count(TraceEventType::kHit));
  EXPECT_TRUE(seen.count(TraceEventType::kMiss));
  EXPECT_TRUE(seen.count(TraceEventType::kPlacement));

  // Every traced request leads with its kRequest record, so the event
  // chain for a sampled request is complete.
  std::set<uint64_t> announced;
  for (const TraceEvent& e : r.trace_events) {
    if (e.type == TraceEventType::kRequest) announced.insert(e.request_index);
  }
  // Skip any leading partial request the ring clipped.
  const uint64_t first_full = r.trace_events.front().request_index + 1;
  for (const TraceEvent& e : r.trace_events) {
    if (e.request_index >= first_full) {
      EXPECT_TRUE(announced.count(e.request_index))
          << "orphan event for request " << e.request_index;
    }
  }
}

TEST(ObservabilityTest, TraceSamplingDropsWholeRequests) {
  ExperimentConfig config = BaseConfig(Architecture::kHierarchical);
  config.schemes = {{.kind = schemes::SchemeKind::kLru}};
  config.sim.trace.enabled = true;
  config.sim.trace.sampling_rate = 0.25;
  config.sim.trace.ring_capacity = 1 << 16;
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  const RunResult& r = results_or->front();
  ASSERT_FALSE(r.trace_events.empty());
  std::set<uint64_t> sampled;
  for (const TraceEvent& e : r.trace_events) sampled.insert(e.request_index);
  // A strict subset of the measured requests was sampled...
  EXPECT_LT(sampled.size(), r.metrics.requests);
  EXPECT_GT(sampled.size(), 0u);
  // ...and sampling never split a request's event chain.
  std::set<uint64_t> announced;
  for (const TraceEvent& e : r.trace_events) {
    if (e.type == TraceEventType::kRequest) announced.insert(e.request_index);
  }
  EXPECT_EQ(sampled, announced);

  // Same config, same workload: the sampler is deterministic.
  auto rerun_runner = ExperimentRunner::Create(config);
  ASSERT_TRUE(rerun_runner.ok());
  auto rerun_or = (*rerun_runner)->RunAll();
  ASSERT_TRUE(rerun_or.ok());
  const RunResult& r2 = rerun_or->front();
  ASSERT_EQ(r2.trace_events.size(), r.trace_events.size());
  for (size_t i = 0; i < r.trace_events.size(); ++i) {
    EXPECT_EQ(r2.trace_events[i].request_index,
              r.trace_events[i].request_index);
    EXPECT_EQ(r2.trace_events[i].type, r.trace_events[i].type);
    EXPECT_EQ(r2.trace_events[i].object, r.trace_events[i].object);
  }
}

TEST(ObservabilityTest, DisabledTraceLeavesNoEvents) {
  ExperimentConfig config = BaseConfig(Architecture::kHierarchical);
  config.schemes = {{.kind = schemes::SchemeKind::kLru}};
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  EXPECT_TRUE(results_or->front().trace_events.empty());
}

TEST(ObservabilityTest, PerNodeCsvRollsUpLevels) {
  ExperimentConfig config = BaseConfig(Architecture::kHierarchical);
  config.schemes = {{.kind = schemes::SchemeKind::kLru}};
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();

  const std::string path = ::testing::TempDir() + "/per_node_test.csv";
  ASSERT_TRUE(WritePerNodeCsv(*results_or, path).ok());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header,
            "scheme,cache_fraction,scope,node,level,requests,hits,misses,"
            "evictions,placements,placements_rejected,expirations,"
            "invalidations,stale_serves,dcache_hits,bytes_served,"
            "bytes_cached,crashes,retries,reroutes,degraded,sheds,"
            "store_sheds,max_queue_depth,load_bytes,ram_hits,disk_hits,"
            "promotions,demotions,sibling_probes,sibling_serves,"
            "disk_degraded");

  size_t node_rows = 0;
  uint64_t node_hits = 0, level_hits = 0;
  std::string line;
  while (std::getline(in, line)) {
    std::stringstream row(line);
    std::string scheme, fraction, scope, node, level, requests, hits;
    std::getline(row, scheme, ',');
    std::getline(row, fraction, ',');
    std::getline(row, scope, ',');
    std::getline(row, node, ',');
    std::getline(row, level, ',');
    std::getline(row, requests, ',');
    std::getline(row, hits, ',');
    EXPECT_EQ(scheme, "LRU");
    if (scope == "node") {
      ++node_rows;
      node_hits += std::stoull(hits);
    } else {
      ASSERT_EQ(scope, "level");
      EXPECT_EQ(node, "-1");
      level_hits += std::stoull(hits);
    }
  }
  EXPECT_EQ(node_rows, results_or->front().per_node.size());
  // Node rows and level rollups both sum to the aggregate.
  EXPECT_EQ(node_hits, results_or->front().metrics.cache_hits);
  EXPECT_EQ(level_hits, node_hits);
  std::remove(path.c_str());
}

TEST(ObservabilityTest, TraceJsonlAnnotatesCells) {
  ExperimentConfig config = BaseConfig(Architecture::kHierarchical);
  config.schemes = {{.kind = schemes::SchemeKind::kLru}};
  config.sim.trace.enabled = true;
  config.sim.trace.ring_capacity = 64;
  auto runner_or = ExperimentRunner::Create(config);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();

  const std::string path = ::testing::TempDir() + "/trace_test.jsonl";
  ASSERT_TRUE(WriteTraceJsonl(*results_or, path).ok());
  std::ifstream in(path);
  std::string line;
  size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.find("{\"scheme\":\"LRU\",\"cache_fraction\":0.02,"), 0u)
        << line;
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\""), std::string::npos);
  }
  EXPECT_EQ(lines, results_or->front().trace_events.size());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cascache::sim
