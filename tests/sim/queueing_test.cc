#include "sim/queueing.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace cascache::sim {
namespace {

TEST(ContentionParamsTest, DefaultIsInactiveAndValid) {
  ContentionParams p;
  EXPECT_FALSE(p.active());
  EXPECT_TRUE(p.Validate().ok());
}

TEST(ContentionParamsTest, AnyKnobActivates) {
  ContentionParams p;
  p.lookup_cost = 1e-3;
  EXPECT_TRUE(p.active());
  p = ContentionParams();
  p.node_queue_capacity = 4;
  EXPECT_TRUE(p.active());
  p = ContentionParams();
  p.link_bandwidth = 1e6;
  EXPECT_TRUE(p.active());
  p = ContentionParams();
  p.arrival_rate = 100.0;
  EXPECT_TRUE(p.active());
  p = ContentionParams();
  p.enabled = true;  // Zero-cost event mode (equivalence testing).
  EXPECT_TRUE(p.active());
}

TEST(ContentionParamsTest, ValidateRejectsBadKnobs) {
  ContentionParams p;
  p.lookup_cost = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  p = ContentionParams();
  p.link_bandwidth = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  p = ContentionParams();
  p.arrival_rate = -1.0;
  EXPECT_FALSE(p.Validate().ok());
  // A ramp without an open-loop rate has nothing to ramp.
  p = ContentionParams();
  p.arrival_ramp = 0.5;
  EXPECT_FALSE(p.Validate().ok());
  p.arrival_rate = 10.0;
  EXPECT_TRUE(p.Validate().ok());
}

TEST(QueueingPlaneTest, AdmitOpAccumulatesFifoBacklog) {
  QueueingPlane plane(2);
  // Power-of-two cost: the waits below are exact in binary floating point.
  const double cost = 0.25;

  QueueingPlane::Admission a = plane.AdmitOp(0, 0.0, cost, 0);
  EXPECT_EQ(a.wait, 0.0);
  EXPECT_EQ(a.depth, 0u);
  EXPECT_FALSE(a.shed);
  EXPECT_EQ(plane.node_busy_until(0), 0.25);

  a = plane.AdmitOp(0, 0.0, cost, 0);
  EXPECT_EQ(a.wait, 0.25);
  EXPECT_EQ(a.depth, 1u);
  EXPECT_EQ(plane.node_busy_until(0), 0.5);

  // Other nodes are independent.
  a = plane.AdmitOp(1, 0.0, cost, 0);
  EXPECT_EQ(a.wait, 0.0);

  // After the backlog drains, admission is free again and the timeline
  // restarts from `now`.
  a = plane.AdmitOp(0, 10.0, cost, 0);
  EXPECT_EQ(a.wait, 0.0);
  EXPECT_EQ(a.depth, 0u);
  EXPECT_EQ(plane.node_busy_until(0), 10.25);
}

TEST(QueueingPlaneTest, BoundedQueueShedsAtCapacity) {
  QueueingPlane plane(1);
  const double cost = 0.5;
  const uint32_t capacity = 2;
  EXPECT_FALSE(plane.AdmitOp(0, 0.0, cost, capacity).shed);  // depth 0
  EXPECT_FALSE(plane.AdmitOp(0, 0.0, cost, capacity).shed);  // depth 1
  EXPECT_EQ(plane.BacklogDepth(0, 0.0, cost), 2u);
  EXPECT_TRUE(plane.WouldShed(0, 0.0, cost, capacity));

  const QueueingPlane::Admission a = plane.AdmitOp(0, 0.0, cost, capacity);
  EXPECT_TRUE(a.shed);
  EXPECT_EQ(a.wait, 0.0);  // A refused op does not wait...
  EXPECT_EQ(a.depth, 2u);
  EXPECT_EQ(plane.node_busy_until(0), 1.0);  // ...and leaves no backlog.

  // An unbounded queue (capacity 0) never sheds.
  EXPECT_FALSE(plane.AdmitOp(0, 0.0, cost, 0).shed);
}

TEST(QueueingPlaneTest, BacklogDepthDoesNotCommit) {
  QueueingPlane plane(1);
  plane.AdmitOp(0, 0.0, 1.0, 0);
  const double before = plane.node_busy_until(0);
  EXPECT_EQ(plane.BacklogDepth(0, 0.0, 1.0), 1u);
  EXPECT_FALSE(plane.WouldShed(0, 0.0, 1.0, 2));
  EXPECT_EQ(plane.node_busy_until(0), before);
}

TEST(QueueingPlaneTest, ZeroCostOpsAreFree) {
  QueueingPlane plane(1);
  const QueueingPlane::Admission a = plane.AdmitOp(0, 5.0, 0.0, 3);
  EXPECT_EQ(a.wait, 0.0);
  EXPECT_EQ(a.depth, 0u);
  EXPECT_FALSE(a.shed);
  EXPECT_EQ(plane.node_busy_until(0), 0.0);
  EXPECT_EQ(plane.BacklogDepth(0, 0.0, 0.0), 0u);
}

TEST(QueueingPlaneTest, TransferSerializesPerDirectedLink) {
  QueueingPlane plane(4);
  // 100 bytes at 400 bytes/s = 0.25 s of occupancy (exact).
  QueueingPlane::Transfer t = plane.TransferOn(1, 0, 0.0, 100, 400.0);
  EXPECT_EQ(t.wait, 0.0);
  EXPECT_EQ(t.tx, 0.25);
  // Second transfer on the same directed link queues FIFO.
  t = plane.TransferOn(1, 0, 0.0, 100, 400.0);
  EXPECT_EQ(t.wait, 0.25);
  EXPECT_EQ(t.tx, 0.25);
  // The reverse direction and other links are independent.
  t = plane.TransferOn(0, 1, 0.0, 100, 400.0);
  EXPECT_EQ(t.wait, 0.0);
  t = plane.TransferOn(2, 3, 0.0, 100, 400.0);
  EXPECT_EQ(t.wait, 0.0);
  // Infinite bandwidth: free, no occupancy.
  t = plane.TransferOn(1, 0, 0.0, 100, 0.0);
  EXPECT_EQ(t.wait, 0.0);
  EXPECT_EQ(t.tx, 0.0);
}

TEST(QueueingPlaneTest, ResetForgetsBacklog) {
  QueueingPlane plane(1);
  plane.AdmitOp(0, 0.0, 1.0, 0);
  plane.TransferOn(0, 0, 0.0, 100, 100.0);
  plane.Reset();
  EXPECT_EQ(plane.node_busy_until(0), 0.0);
  EXPECT_EQ(plane.TransferOn(0, 0, 0.0, 100, 100.0).wait, 0.0);
}

// --- Analytic-vs-event equivalence ------------------------------------
//
// The contract the contention refactor preserves: a zero-service-cost
// event-driven replay reproduces the analytic replay. Integer event
// totals match exactly (the same requests hit, insert and expire at the
// same caches); the floating-point means may differ only by summation
// order, because the event-driven run records requests in completion
// order rather than arrival order.

ExperimentConfig EquivalenceConfig() {
  ExperimentConfig config;
  config.network.architecture = Architecture::kHierarchical;
  config.network.tree.depth = 3;
  config.workload.num_objects = 200;
  config.workload.num_requests = 8000;
  config.workload.num_clients = 30;
  config.workload.num_servers = 8;
  config.workload.seed = 11;
  config.cache_fractions = {0.02};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated}};
  config.jobs = 1;
  return config;
}

void ExpectSummariesAgree(const MetricsSummary& a, const MetricsSummary& b) {
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.insertions, b.insertions);
  EXPECT_EQ(a.bytes_written, b.bytes_written);
  EXPECT_EQ(a.bytes_read, b.bytes_read);
  EXPECT_EQ(a.bytes_from_caches, b.bytes_from_caches);
  EXPECT_EQ(a.total_bytes_requested, b.total_bytes_requested);
  EXPECT_EQ(a.stale_hits, b.stale_hits);
  EXPECT_EQ(a.copies_expired, b.copies_expired);
  EXPECT_EQ(a.copies_invalidated, b.copies_invalidated);
  EXPECT_EQ(a.shed_requests, 0u);
  EXPECT_EQ(b.shed_requests, 0u);
  EXPECT_EQ(a.served_requests, b.served_requests);
  EXPECT_EQ(a.avg_queue_wait, 0.0);
  EXPECT_EQ(b.avg_queue_wait, 0.0);
  EXPECT_NEAR(a.avg_latency, b.avg_latency,
              1e-9 * std::max(1.0, a.avg_latency));
  EXPECT_NEAR(a.avg_hops, b.avg_hops, 1e-9 * std::max(1.0, a.avg_hops));
  EXPECT_DOUBLE_EQ(a.byte_hit_ratio, b.byte_hit_ratio);
  EXPECT_DOUBLE_EQ(a.hit_ratio, b.hit_ratio);
}

TEST(ContentionEquivalenceTest, ZeroCostEventModeMatchesAnalytic) {
  ExperimentConfig analytic = EquivalenceConfig();
  ExperimentConfig event = EquivalenceConfig();
  event.sim.contention.enabled = true;  // Event-driven, all costs zero.

  auto runner_a = ExperimentRunner::Create(analytic);
  ASSERT_TRUE(runner_a.ok()) << runner_a.status();
  auto results_a = (*runner_a)->RunAll();
  ASSERT_TRUE(results_a.ok()) << results_a.status();

  auto runner_e = ExperimentRunner::Create(event);
  ASSERT_TRUE(runner_e.ok()) << runner_e.status();
  auto results_e = (*runner_e)->RunAll();
  ASSERT_TRUE(results_e.ok()) << results_e.status();

  ASSERT_EQ(results_a->size(), results_e->size());
  for (size_t i = 0; i < results_a->size(); ++i) {
    SCOPED_TRACE((*results_a)[i].scheme);
    ExpectSummariesAgree((*results_a)[i].metrics, (*results_e)[i].metrics);
    // Per-node counters are pure integer state: identical node by node.
    ASSERT_EQ((*results_a)[i].per_node.size(), (*results_e)[i].per_node.size());
    for (size_t v = 0; v < (*results_a)[i].per_node.size(); ++v) {
      const NodeCounters& ca = (*results_a)[i].per_node[v].counters;
      const NodeCounters& ce = (*results_e)[i].per_node[v].counters;
      EXPECT_EQ(ca.hits, ce.hits);
      EXPECT_EQ(ca.misses, ce.misses);
      EXPECT_EQ(ca.placements, ce.placements);
      EXPECT_EQ(ca.evictions, ce.evictions);
      EXPECT_EQ(ce.sheds, 0u);
      EXPECT_EQ(ce.max_queue_depth, 0u);
    }
  }
}

// Satellite regression: TTL expiry decisions come off the one virtual
// clock, so both scheduling policies must agree on every expiry boundary
// (same copies expired at the same caches, same stale serves).
TEST(ContentionEquivalenceTest, TtlExpiryBoundariesAgreeAcrossPolicies) {
  ExperimentConfig analytic = EquivalenceConfig();
  analytic.sim.coherency.protocol = CoherencyProtocol::kTtl;
  analytic.sim.coherency.ttl = 40.0;  // Forces expiries mid-trace.
  analytic.sim.coherency.mutable_fraction = 0.3;
  ExperimentConfig event = analytic;
  event.sim.contention.enabled = true;

  auto runner_a = ExperimentRunner::Create(analytic);
  ASSERT_TRUE(runner_a.ok()) << runner_a.status();
  auto results_a = (*runner_a)->RunAll();
  ASSERT_TRUE(results_a.ok()) << results_a.status();

  auto runner_e = ExperimentRunner::Create(event);
  ASSERT_TRUE(runner_e.ok()) << runner_e.status();
  auto results_e = (*runner_e)->RunAll();
  ASSERT_TRUE(results_e.ok()) << results_e.status();

  ASSERT_EQ(results_a->size(), results_e->size());
  bool saw_expiry = false;
  for (size_t i = 0; i < results_a->size(); ++i) {
    SCOPED_TRACE((*results_a)[i].scheme);
    const MetricsSummary& ma = (*results_a)[i].metrics;
    const MetricsSummary& me = (*results_e)[i].metrics;
    EXPECT_EQ(ma.copies_expired, me.copies_expired);
    EXPECT_EQ(ma.cache_hits, me.cache_hits);
    EXPECT_EQ(ma.insertions, me.insertions);
    saw_expiry = saw_expiry || ma.copies_expired > 0;
    // Per-node expiry locations match exactly too.
    for (size_t v = 0; v < (*results_a)[i].per_node.size(); ++v) {
      EXPECT_EQ((*results_a)[i].per_node[v].counters.expirations,
                (*results_e)[i].per_node[v].counters.expirations);
    }
  }
  // The TTL must actually bite, or this test pins nothing.
  EXPECT_TRUE(saw_expiry);
}

}  // namespace
}  // namespace cascache::sim
