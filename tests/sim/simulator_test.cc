#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "schemes/coordinated_scheme.h"
#include "schemes/lru_scheme.h"
#include "testing/scenario.h"

namespace cascache::sim {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;

// Chain: leaf(node 3) - 2 - 1 - root(0) - [virtual link] - origin.
// All link delays 1.0 (growth 1). One object of size 100 (mean size 100,
// so size_scale is exactly 1).
class SimulatorChainTest : public ::testing::Test {
 protected:
  SimulatorChainTest()
      : catalog_(MakeCatalog({{100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {}

  trace::ObjectCatalog catalog_;
  std::unique_ptr<Network> network_;
};

TEST_F(SimulatorChainTest, ColdMissGoesToOrigin) {
  schemes::LruScheme scheme;
  Simulator simulator(network_.get(), &scheme);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  network_->ConfigureCaches(config);

  simulator.Step(At(1.0, 0), /*collect=*/true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.requests, 1u);
  // 3 tree links + 1 virtual server link, each delay 1.0, size_scale 1.
  EXPECT_DOUBLE_EQ(s.avg_latency, 4.0);
  EXPECT_DOUBLE_EQ(s.avg_hops, 4.0);
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 0.0);
  // LRU caches everywhere: 4 insertions of 100 bytes, no reads.
  EXPECT_DOUBLE_EQ(s.avg_load_bytes, 400.0);
  EXPECT_DOUBLE_EQ(s.read_load_share, 0.0);
}

TEST_F(SimulatorChainTest, WarmHitAtLeafIsFree) {
  schemes::LruScheme scheme;
  Simulator simulator(network_.get(), &scheme);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  network_->ConfigureCaches(config);

  simulator.Step(At(1.0, 0), /*collect=*/false);  // Warm.
  simulator.Step(At(2.0, 0), /*collect=*/true);   // Hit at the leaf.
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_DOUBLE_EQ(s.avg_latency, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_hops, 0.0);
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_load_bytes, 100.0);  // One read, no writes.
  EXPECT_DOUBLE_EQ(s.read_load_share, 1.0);
}

TEST_F(SimulatorChainTest, PartialHitUsesIntermediateCache) {
  schemes::LruScheme scheme;
  Simulator simulator(network_.get(), &scheme);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  network_->ConfigureCaches(config);

  simulator.Step(At(1.0, 0), false);
  // Evict the object from the leaf only; next request hits one level up.
  network_->node(network_->RequesterNode(0))->lru()->Erase(0);
  simulator.Step(At(2.0, 0), true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.avg_latency, 1.0);
  EXPECT_DOUBLE_EQ(s.avg_hops, 1.0);
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 1.0);
  // Read at the hitting cache + re-insertion write at the leaf.
  EXPECT_DOUBLE_EQ(s.avg_load_bytes, 200.0);
}

TEST_F(SimulatorChainTest, SizeScalingMultipliesDelay) {
  // Two objects: 100 and 300 bytes; mean size 200. A cold miss for the
  // 300-byte object costs 4 links * (300/200) = 6.0.
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}, {300, 0}});
  auto network = MakeChainNetwork(&catalog, 4);
  schemes::LruScheme scheme;
  Simulator simulator(network.get(), &scheme);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  network->ConfigureCaches(config);

  simulator.Step(At(1.0, 1), true);
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().avg_latency, 6.0);
}

TEST_F(SimulatorChainTest, RunAppliesWarmupFraction) {
  schemes::LruScheme scheme;
  SimOptions options;
  options.warmup_fraction = 0.5;
  Simulator simulator(network_.get(), &scheme, options);

  trace::Workload workload;
  workload.catalog.Add(100, 0);
  for (int i = 0; i < 10; ++i) {
    workload.requests.push_back(At(static_cast<double>(i), 0));
  }
  // Note Run uses its own catalog-driven network; here network_ was built
  // over catalog_ which matches workload.catalog's single object.
  ASSERT_TRUE(simulator.Run(workload, 1000).ok());
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.requests, 5u);       // Second half only.
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 1.0);  // Cached during warm-up.
}

TEST_F(SimulatorChainTest, RunRejectsBadArguments) {
  schemes::LruScheme scheme;
  Simulator simulator(network_.get(), &scheme);
  trace::Workload empty;
  EXPECT_FALSE(simulator.Run(empty, 1000).ok());
  trace::Workload nonempty;
  nonempty.catalog.Add(100, 0);
  nonempty.requests.push_back(At(0.0, 0));
  EXPECT_FALSE(simulator.Run(nonempty, 0).ok());
}

TEST_F(SimulatorChainTest, RunRejectsBadWarmupFractionWithoutAborting) {
  // Option values come straight from the CLI: a bad warmup fraction must
  // surface as a Status from Run(), not abort construction.
  schemes::LruScheme scheme;
  SimOptions options;
  options.warmup_fraction = 1.5;
  Simulator simulator(network_.get(), &scheme, options);
  trace::Workload workload;
  workload.catalog.Add(100, 0);
  workload.requests.push_back(At(0.0, 0));
  const util::Status status = simulator.Run(workload, 1000);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);

  SimOptions negative;
  negative.warmup_fraction = -0.1;
  Simulator simulator2(network_.get(), &scheme, negative);
  EXPECT_EQ(simulator2.Run(workload, 1000).code(),
            util::StatusCode::kInvalidArgument);
}

TEST_F(SimulatorChainTest, RunRejectsBadCostModelWithoutAborting) {
  schemes::LruScheme scheme;
  SimOptions options;
  options.cost_model.kind = CostModelKind::kWeighted;
  options.cost_model.alpha = -1.0;  // Invalid weight.
  Simulator simulator(network_.get(), &scheme, options);
  trace::Workload workload;
  workload.catalog.Add(100, 0);
  workload.requests.push_back(At(0.0, 0));
  EXPECT_EQ(simulator.Run(workload, 1000).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(SimulatorSingleNodeTest, DepthOneTreeIsASingleProxy) {
  // Degenerate hierarchy: one cache, origin one virtual hop above it.
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, /*depth=*/1, /*base_delay=*/2.0);
  schemes::LruScheme scheme;
  Simulator simulator(network.get(), &scheme);
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = 1000;
  network->ConfigureCaches(config);

  simulator.Step(At(1.0, 0), true);  // Cold miss: server link only.
  MetricsSummary s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.avg_latency, 2.0);
  EXPECT_DOUBLE_EQ(s.avg_hops, 1.0);
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 0.0);

  simulator.Step(At(2.0, 0), true);  // Hit at the only cache.
  s = simulator.metrics().Summary();
  EXPECT_DOUBLE_EQ(s.avg_latency, 1.0);  // Mean of 2.0 and 0.0.
  EXPECT_DOUBLE_EQ(s.byte_hit_ratio, 0.5);
}

TEST(SimulatorSingleNodeTest, CoordinatedOnSingleProxy) {
  // The DP degenerates to the single-cache admission rule f*m > l.
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, 1, 2.0);
  schemes::CoordinatedScheme scheme;
  Simulator simulator(network.get(), &scheme);
  CacheNodeConfig config;
  config.mode = CacheMode::kCost;
  config.capacity_bytes = 1000;
  config.dcache_entries = 8;
  network->ConfigureCaches(config);

  simulator.Step(At(1.0, 0), false);  // Seeds the descriptor.
  EXPECT_FALSE(network->node(0)->Contains(0));
  simulator.Step(At(2.0, 0), false);  // f*m = 2*2 > l = 0: cache it.
  EXPECT_TRUE(network->node(0)->Contains(0));
  simulator.Step(At(3.0, 0), true);
  EXPECT_DOUBLE_EQ(simulator.metrics().Summary().byte_hit_ratio, 1.0);
}

TEST_F(SimulatorChainTest, RunConfiguresDCacheForCostSchemes) {
  // The d-cache gets dcache_ratio * (capacity / mean object size) slots.
  auto scheme_or = schemes::MakeScheme(
      {.kind = schemes::SchemeKind::kCoordinated});
  ASSERT_TRUE(scheme_or.ok());
  SimOptions options;
  options.dcache_ratio = 3.0;
  Simulator simulator(network_.get(), scheme_or->get(), options);
  trace::Workload workload;
  workload.catalog.Add(100, 0);
  workload.requests.push_back(At(0.0, 0));
  workload.requests.push_back(At(1.0, 0));
  ASSERT_TRUE(simulator.Run(workload, 1000).ok());
  // capacity 1000 / mean 100 = 10 objects -> 30 descriptors.
  EXPECT_EQ(network_->node(0)->dcache()->capacity(), 30u);
}

}  // namespace
}  // namespace cascache::sim
