#include "sim/fault_plane.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "schemes/lru_scheme.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "testing/scenario.h"
#include "trace/synthetic.h"

namespace cascache::sim {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;

FaultScheduleConfig CrashConfig(double mtbf = 20.0, double downtime = 10.0) {
  FaultScheduleConfig config;
  config.node_crash_mtbf = mtbf;
  config.node_downtime = downtime;
  return config;
}

TEST(FaultScheduleConfigTest, DefaultIsInactiveAndValid) {
  FaultScheduleConfig config;
  EXPECT_FALSE(config.active());
  EXPECT_TRUE(config.Validate().ok());
}

TEST(FaultScheduleConfigTest, EachFaultClassActivates) {
  FaultScheduleConfig config;
  config.node_crash_mtbf = 10.0;
  EXPECT_TRUE(config.active());
  config = FaultScheduleConfig();
  config.link_mtbf = 10.0;
  EXPECT_TRUE(config.active());
  config = FaultScheduleConfig();
  config.ascent_loss_prob = 0.1;
  EXPECT_TRUE(config.active());
  config = FaultScheduleConfig();
  config.decision_loss_prob = 0.1;
  EXPECT_TRUE(config.active());
  // Retry knobs alone do not activate the plane: with no fault source
  // there is nothing to retry.
  config = FaultScheduleConfig();
  config.max_retries = 10;
  config.request_timeout = 1.0;
  EXPECT_FALSE(config.active());
}

TEST(FaultScheduleConfigTest, ValidateRejectsBadValues) {
  FaultScheduleConfig config;
  config.node_crash_mtbf = -1.0;
  EXPECT_FALSE(config.Validate().ok());

  config = FaultScheduleConfig();
  config.node_crash_mtbf = 10.0;
  config.node_downtime = 0.0;
  EXPECT_FALSE(config.Validate().ok());

  config = FaultScheduleConfig();
  config.link_mtbf = 10.0;
  config.link_downtime = -2.0;
  EXPECT_FALSE(config.Validate().ok());

  config = FaultScheduleConfig();
  config.ascent_loss_prob = 1.5;
  EXPECT_FALSE(config.Validate().ok());

  config = FaultScheduleConfig();
  config.decision_loss_prob = -0.1;
  EXPECT_FALSE(config.Validate().ok());

  config = FaultScheduleConfig();
  config.request_timeout = 0.0;
  EXPECT_FALSE(config.Validate().ok());

  config = FaultScheduleConfig();
  config.max_retries = -1;
  EXPECT_FALSE(config.Validate().ok());

  config = FaultScheduleConfig();
  config.retry_backoff = -1.0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FaultScheduleConfigTest, ApplyFaultSettingParsesEveryKey) {
  FaultScheduleConfig config;
  EXPECT_TRUE(ApplyFaultSetting("seed", "99", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("node_mtbf", "12.5", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("node_downtime", "3", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("link_mtbf", "7", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("link_downtime", "2", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("crash_cuts_routing", "true", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("ascent_loss", "0.25", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("decision_loss", "0.5", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("timeout", "9", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("max_retries", "5", &config).ok());
  EXPECT_TRUE(ApplyFaultSetting("backoff", "0.5", &config).ok());

  EXPECT_EQ(config.seed, 99u);
  EXPECT_DOUBLE_EQ(config.node_crash_mtbf, 12.5);
  EXPECT_DOUBLE_EQ(config.node_downtime, 3.0);
  EXPECT_DOUBLE_EQ(config.link_mtbf, 7.0);
  EXPECT_DOUBLE_EQ(config.link_downtime, 2.0);
  EXPECT_TRUE(config.crash_cuts_routing);
  EXPECT_DOUBLE_EQ(config.ascent_loss_prob, 0.25);
  EXPECT_DOUBLE_EQ(config.decision_loss_prob, 0.5);
  EXPECT_DOUBLE_EQ(config.request_timeout, 9.0);
  EXPECT_EQ(config.max_retries, 5);
  EXPECT_DOUBLE_EQ(config.retry_backoff, 0.5);

  EXPECT_FALSE(ApplyFaultSetting("no_such_key", "1", &config).ok());
  EXPECT_FALSE(ApplyFaultSetting("node_mtbf", "abc", &config).ok());
  EXPECT_FALSE(ApplyFaultSetting("crash_cuts_routing", "maybe", &config).ok());
}

TEST(FaultScheduleConfigTest, LoadsConfigFileWithCommentsAndBlanks) {
  const std::string path =
      ::testing::TempDir() + "/fault_schedule_test.conf";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "# chaos schedule\n"
        << "\n"
        << "node_mtbf = 40\n"
        << "node_downtime=10  # mean seconds down\n"
        << "ascent_loss=0.1\n";
  }
  FaultScheduleConfig config;
  ASSERT_TRUE(LoadFaultConfigFile(path, &config).ok());
  EXPECT_DOUBLE_EQ(config.node_crash_mtbf, 40.0);
  EXPECT_DOUBLE_EQ(config.node_downtime, 10.0);
  EXPECT_DOUBLE_EQ(config.ascent_loss_prob, 0.1);
  std::remove(path.c_str());

  EXPECT_FALSE(LoadFaultConfigFile("/no/such/file.conf", &config).ok());

  {
    std::ofstream out(path, std::ios::trunc);
    out << "not a key value line\n";
  }
  EXPECT_FALSE(LoadFaultConfigFile(path, &config).ok());
  std::remove(path.c_str());
}

TEST(FaultScheduleConfigTest, EnvOverridesApply) {
  ASSERT_EQ(setenv("CASCACHE_FAULT_NODE_MTBF", "33", 1), 0);
  ASSERT_EQ(setenv("CASCACHE_FAULT_CRASH_CUTS_ROUTING", "1", 1), 0);
  FaultScheduleConfig config;
  EXPECT_TRUE(ApplyFaultEnvOverrides(&config).ok());
  EXPECT_DOUBLE_EQ(config.node_crash_mtbf, 33.0);
  EXPECT_TRUE(config.crash_cuts_routing);

  ASSERT_EQ(setenv("CASCACHE_FAULT_ASCENT_LOSS", "bogus", 1), 0);
  EXPECT_FALSE(ApplyFaultEnvOverrides(&config).ok());

  unsetenv("CASCACHE_FAULT_NODE_MTBF");
  unsetenv("CASCACHE_FAULT_CRASH_CUTS_ROUTING");
  unsetenv("CASCACHE_FAULT_ASCENT_LOSS");
}

class FaultPlaneChainTest : public ::testing::Test {
 protected:
  FaultPlaneChainTest()
      : catalog_(MakeCatalog({{100, 0}})),
        network_(MakeChainNetwork(&catalog_, 4)) {}

  trace::ObjectCatalog catalog_;
  std::unique_ptr<Network> network_;
};

TEST_F(FaultPlaneChainTest, OutageStreamsAreQueryOrderIndependent) {
  const FaultScheduleConfig config = CrashConfig();
  FaultPlane forward(config, network_.get());
  FaultPlane backward(config, network_.get());

  std::vector<double> times;
  for (int i = 0; i <= 400; ++i) times.push_back(0.25 * i);

  std::vector<int> forward_answers;
  for (double t : times) {
    for (topology::NodeId v = 0; v < network_->num_nodes(); ++v) {
      forward_answers.push_back(forward.NodeDown(v, t) ? 1 : 0);
    }
  }
  // Same queries, reversed time order, against a fresh plane: the lazily
  // materialized streams must not depend on which time was asked first.
  std::vector<int> backward_answers(forward_answers.size());
  for (size_t ti = times.size(); ti-- > 0;) {
    for (topology::NodeId v = 0; v < network_->num_nodes(); ++v) {
      backward_answers[ti * static_cast<size_t>(network_->num_nodes()) +
                       static_cast<size_t>(v)] =
          backward.NodeDown(v, times[ti]) ? 1 : 0;
    }
  }
  EXPECT_EQ(forward_answers, backward_answers);
  // The schedule actually injects something in this window.
  EXPECT_GT(std::count(forward_answers.begin(), forward_answers.end(), 1), 0);

  // Reset forgets the materialized streams but reproduces them exactly.
  forward.Reset();
  std::vector<int> replay_answers;
  for (double t : times) {
    for (topology::NodeId v = 0; v < network_->num_nodes(); ++v) {
      replay_answers.push_back(forward.NodeDown(v, t) ? 1 : 0);
    }
  }
  EXPECT_EQ(forward_answers, replay_answers);
}

TEST_F(FaultPlaneChainTest, NodesFaultIndependently) {
  FaultPlane plane(CrashConfig(), network_.get());
  // With per-node seeded streams, node 0 and node 1 must not crash in
  // lockstep over a long horizon.
  int disagreements = 0;
  for (int i = 0; i < 2000; ++i) {
    const double t = 0.5 * i;
    if (plane.NodeDown(0, t) != plane.NodeDown(1, t)) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

TEST_F(FaultPlaneChainTest, MessageLossIsDeterministicPerRequestAndHop) {
  FaultScheduleConfig config;
  config.ascent_loss_prob = 0.3;
  config.decision_loss_prob = 0.3;
  FaultPlane a(config, network_.get());
  FaultPlane b(config, network_.get());

  int ascent_losses = 0;
  int stream_disagreements = 0;
  const int kRequests = 20000;
  for (uint64_t req = 0; req < kRequests; ++req) {
    for (int hop = 0; hop < 3; ++hop) {
      const bool lost = a.AscentLoss(req, hop);
      EXPECT_EQ(lost, b.AscentLoss(req, hop));
      EXPECT_EQ(a.DescentLoss(req, hop), b.DescentLoss(req, hop));
      if (lost) ++ascent_losses;
      if (lost != a.DescentLoss(req, hop)) ++stream_disagreements;
    }
  }
  // The empirical rate tracks the configured probability (3 * 20000
  // Bernoulli(0.3) samples: ±0.02 is > 6 sigma).
  const double rate =
      static_cast<double>(ascent_losses) / (3.0 * kRequests);
  EXPECT_NEAR(rate, 0.3, 0.02);
  // Ascent and descent decisions come from distinct streams.
  EXPECT_GT(stream_disagreements, 0);

  FaultScheduleConfig other = config;
  other.seed = config.seed + 1;
  FaultPlane c(other, network_.get());
  int seed_disagreements = 0;
  for (uint64_t req = 0; req < 1000; ++req) {
    if (a.AscentLoss(req, 0) != c.AscentLoss(req, 0)) ++seed_disagreements;
  }
  EXPECT_GT(seed_disagreements, 0);
}

TEST_F(FaultPlaneChainTest, CrashRestartLosesCacheContents) {
  CacheNodeConfig node_config;
  node_config.mode = CacheMode::kLru;
  node_config.capacity_bytes = 1000;
  network_->ConfigureCaches(node_config);

  FaultPlane plane(CrashConfig(/*mtbf=*/5.0, /*downtime=*/5.0),
                   network_.get());
  CacheNode* node = network_->node(1);
  bool inserted = false;
  node->lru()->Insert(/*object=*/0, /*size=*/100, &inserted);
  ASSERT_TRUE(inserted);
  ASSERT_TRUE(node->Contains(0));

  // By t=10000 the node has crashed many times (mean cycle 10 s); the
  // lazily applied cold restart drops the contents but keeps capacity.
  const int applied = plane.ApplyCrashRestarts(node, 10000.0);
  EXPECT_GT(applied, 0);
  EXPECT_FALSE(node->Contains(0));
  EXPECT_EQ(node->capacity_bytes(), 1000u);
  // Idempotent until the next crash epoch.
  EXPECT_EQ(plane.ApplyCrashRestarts(node, 10000.0), 0);
}

TEST_F(FaultPlaneChainTest, ChainDetourIsImpossibleButEndpointsRoute) {
  // A chain has no alternate routes: cutting an intermediate node makes
  // the root unreachable, but a request from the root's own attach region
  // still resolves (endpoints always forward).
  FaultScheduleConfig config = CrashConfig(/*mtbf=*/5.0, /*downtime=*/1e6);
  config.crash_cuts_routing = true;
  FaultPlane plane(config, network_.get());

  // Find a time where some intermediate hop of the leaf's path is down.
  const topology::NodeId leaf = network_->RequesterNode(0);
  std::vector<topology::NodeId> path = network_->PathToServer(leaf, 0);
  ASSERT_GE(path.size(), 3u);
  double cut_time = -1.0;
  for (int i = 1; i <= 4000; ++i) {
    const double t = 0.5 * i;
    for (size_t h = 1; h + 1 < path.size(); ++h) {
      if (plane.NodeDown(path[h], t)) {
        cut_time = t;
        break;
      }
    }
    if (cut_time >= 0.0) break;
  }
  ASSERT_GE(cut_time, 0.0) << "schedule never cut the chain";

  bool rerouted = false;
  std::vector<topology::NodeId> resolved;
  EXPECT_FALSE(plane.ResolvePath(leaf, 0, cut_time, &resolved, &rerouted));

  // From the attach node itself the path has no intermediates to cut.
  const topology::NodeId root = network_->ServerAttach(0);
  EXPECT_TRUE(plane.ResolvePath(root, 0, cut_time, &resolved, &rerouted));
  EXPECT_FALSE(rerouted);
  EXPECT_EQ(resolved.front(), root);
}

TEST(FaultPlaneEnrouteTest, DetoursAvoidDownLinksDeterministically) {
  trace::WorkloadParams wp;
  wp.num_objects = 50;
  wp.num_requests = 100;
  wp.num_clients = 20;
  wp.num_servers = 5;
  auto workload_or = trace::GenerateWorkload(wp);
  ASSERT_TRUE(workload_or.ok());
  NetworkParams np;
  np.architecture = Architecture::kEnRoute;
  auto network_or = Network::Build(np, &workload_or->catalog);
  ASSERT_TRUE(network_or.ok());
  Network* network = network_or->get();

  FaultScheduleConfig config;
  config.link_mtbf = 20.0;
  config.link_downtime = 10.0;
  FaultPlane plane(config, network);
  FaultPlane replay(config, network);

  const topology::NodeId from = network->RequesterNode(0);
  const trace::ServerId server = workload_or->catalog.server(0);
  const topology::NodeId root = network->ServerAttach(server);
  int reroutes = 0;
  int failures = 0;
  for (int i = 0; i <= 2000; ++i) {
    const double t = 0.5 * i;
    std::vector<topology::NodeId> path;
    bool rerouted = false;
    const bool ok = plane.ResolvePath(from, server, t, &path, &rerouted);

    // Bit-identical against an independently materialized plane.
    std::vector<topology::NodeId> path2;
    bool rerouted2 = false;
    EXPECT_EQ(ok, replay.ResolvePath(from, server, t, &path2, &rerouted2));
    if (ok) {
      EXPECT_EQ(path, path2);
      EXPECT_EQ(rerouted, rerouted2);
    }

    if (!ok) {
      ++failures;
      continue;
    }
    EXPECT_EQ(path.front(), from);
    EXPECT_EQ(path.back(), root);
    // Every link of the resolved path exists and is up at t.
    for (size_t h = 0; h + 1 < path.size(); ++h) {
      EXPECT_TRUE(network->graph().HasEdge(path[h], path[h + 1]));
      EXPECT_FALSE(plane.LinkDown(path[h], path[h + 1], t));
    }
    if (rerouted) ++reroutes;
  }
  // The schedule is aggressive enough that detours actually happened.
  EXPECT_GT(reroutes, 0);
}

/// %.17g round-trips IEEE doubles exactly: string equality is bit
/// equality.
std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::map<std::string, std::string> SummaryFields(const MetricsSummary& m) {
  std::map<std::string, std::string> fields;
  fields["requests"] = std::to_string(m.requests);
  fields["avg_latency"] = FmtDouble(m.avg_latency);
  fields["avg_response_ratio"] = FmtDouble(m.avg_response_ratio);
  fields["byte_hit_ratio"] = FmtDouble(m.byte_hit_ratio);
  fields["hit_ratio"] = FmtDouble(m.hit_ratio);
  fields["avg_traffic_byte_hops"] = FmtDouble(m.avg_traffic_byte_hops);
  fields["avg_hops"] = FmtDouble(m.avg_hops);
  fields["avg_load_bytes"] = FmtDouble(m.avg_load_bytes);
  fields["read_load_share"] = FmtDouble(m.read_load_share);
  fields["avg_write_bytes"] = FmtDouble(m.avg_write_bytes);
  fields["total_bytes_requested"] = std::to_string(m.total_bytes_requested);
  fields["bytes_from_caches"] = std::to_string(m.bytes_from_caches);
  fields["stale_hit_ratio"] = FmtDouble(m.stale_hit_ratio);
  fields["copies_expired"] = std::to_string(m.copies_expired);
  fields["copies_invalidated"] = std::to_string(m.copies_invalidated);
  return fields;
}

/// Golden no-fault equivalence, the strong form: a fault plane that is
/// *instantiated* (config.active(), so every fault branch in the
/// simulator is reached) but whose schedule never fires inside the
/// workload horizon must reproduce the committed pre-fault golden rows
/// bit-exactly. The empty-schedule case is covered by
/// PipelineEquivalenceTest (the plane is not even constructed there).
TEST(FaultPlaneGoldenTest, InertActivePlaneMatchesPipelineGolden) {
  // hier_all golden case: hierarchical, all schemes, fractions
  // {0.01, 0.03}. Reproduce the LRU and Coordinated cells at 0.03.
  ExperimentConfig cfg;
  cfg.network.architecture = Architecture::kHierarchical;
  cfg.workload.num_objects = 1500;
  cfg.workload.num_requests = 12'000;
  cfg.workload.num_clients = 200;
  cfg.workload.num_servers = 40;
  cfg.cache_fractions = {0.03};
  cfg.schemes.resize(2);
  cfg.schemes[0].kind = schemes::SchemeKind::kLru;
  cfg.schemes[1].kind = schemes::SchemeKind::kCoordinated;
  cfg.jobs = 1;
  // Active schedule whose first onset is ~1e18 seconds out: every
  // fault-plane branch runs, no fault ever fires.
  cfg.sim.faults.node_crash_mtbf = 1e18;
  cfg.sim.faults.node_downtime = 1.0;

  auto runner_or = ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status().ToString();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status().ToString();

  // Parse the committed golden rows for the matching labels.
  std::ifstream in(std::string(CASCACHE_TEST_DATA_DIR) +
                   "/pipeline_golden.csv");
  ASSERT_TRUE(in.good());
  std::map<std::string, std::map<std::string, std::string>> golden;
  for (std::string line; std::getline(in, line);) {
    std::istringstream row(line);
    std::string case_name, label, field, value;
    ASSERT_TRUE(std::getline(row, case_name, ','));
    ASSERT_TRUE(std::getline(row, label, ','));
    ASSERT_TRUE(std::getline(row, field, ','));
    ASSERT_TRUE(std::getline(row, value));
    if (case_name == "hier_all") golden[label][field] = value;
  }

  for (const RunResult& r : *results_or) {
    char label[64];
    std::snprintf(label, sizeof(label), "%s@%g", r.scheme.c_str(),
                  r.cache_fraction);
    ASSERT_TRUE(golden.count(label)) << "no golden rows for " << label;
    const auto computed = SummaryFields(r.metrics);
    for (const auto& [field, value] : golden[label]) {
      ASSERT_TRUE(computed.count(field)) << field;
      EXPECT_EQ(computed.at(field), value)
          << label << "." << field << " drifted under an inert fault plane";
    }
    // And the schedule really was inert.
    EXPECT_EQ(r.metrics.retries, 0u);
    EXPECT_EQ(r.metrics.failed_requests, 0u);
    EXPECT_EQ(r.metrics.reroutes, 0u);
    EXPECT_EQ(r.metrics.crashes_applied, 0u);
    EXPECT_EQ(r.metrics.degraded_decisions, 0u);
  }
}

/// Regression for the fixed-path-per-request assumption: the simulator
/// must tolerate the routing path of the *same* requester changing
/// between requests (detours shrink/grow hop counts mid-run), including
/// under coherency stamping.
TEST(FaultPlaneEnrouteTest, PathChangesMidRunAreHandled) {
  trace::WorkloadParams wp;
  wp.num_objects = 300;
  wp.num_requests = 4000;
  wp.num_clients = 50;
  wp.num_servers = 10;
  auto workload_or = trace::GenerateWorkload(wp);
  ASSERT_TRUE(workload_or.ok());
  NetworkParams np;
  np.architecture = Architecture::kEnRoute;
  auto network_or = Network::Build(np, &workload_or->catalog);
  ASSERT_TRUE(network_or.ok());

  SimOptions options;
  options.faults.link_mtbf = 20.0;
  options.faults.link_downtime = 15.0;
  options.coherency.protocol = CoherencyProtocol::kTtl;
  options.coherency.ttl = 10.0;
  options.coherency.mutable_fraction = 0.4;
  options.coherency.mean_update_period = 30.0;

  schemes::LruScheme scheme;
  Simulator simulator(network_or->get(), &scheme, options);
  const uint64_t capacity = static_cast<uint64_t>(
      0.03 * static_cast<double>(workload_or->catalog.total_bytes()));
  ASSERT_TRUE(simulator.Run(*workload_or, capacity).ok());

  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.requests, 2000u);  // Second half of the trace.
  EXPECT_GT(s.reroutes, 0u) << "schedule never changed a path";

  // A second simulator over the same inputs replays bit-identically.
  schemes::LruScheme scheme2;
  Simulator simulator2(network_or->get(), &scheme2, options);
  ASSERT_TRUE(simulator2.Run(*workload_or, capacity).ok());
  const MetricsSummary s2 = simulator2.metrics().Summary();
  EXPECT_EQ(SummaryFields(s), SummaryFields(s2));
  EXPECT_EQ(s.retries, s2.retries);
  EXPECT_EQ(s.failed_requests, s2.failed_requests);
  EXPECT_EQ(s.reroutes, s2.reroutes);
  EXPECT_EQ(s.degraded_decisions, s2.degraded_decisions);
}

}  // namespace
}  // namespace cascache::sim
