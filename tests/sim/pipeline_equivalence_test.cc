// Golden equivalence test for the request-path pipeline.
//
// The hop-by-hop message pipeline (src/sim/message.h) must be
// bit-identical to the monolithic pre-refactor request walk. This test
// replays a fixed matrix of workloads — both architectures, all seven
// schemes, and every coherency protocol — and compares all replay-derived
// metrics against a golden file generated with the pre-refactor
// simulator. Doubles are serialized with %.17g, which round-trips IEEE
// doubles exactly, so a string match is a bit-exact match.
//
// Regenerate (only when an *intentional* numeric change is made):
//   CASCACHE_REGEN_GOLDEN=1 ./cascache_tests
//     --gtest_filter=PipelineEquivalenceTest.*  (one command line)
// and commit the updated tests/data/pipeline_golden.csv alongside the
// change that explains it.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "schemes/coordinated_scheme.h"
#include "sim/experiment.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace cascache {
namespace {

std::string GoldenPath() {
  return std::string(CASCACHE_TEST_DATA_DIR) + "/pipeline_golden.csv";
}

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// One golden line: `case,label,field,value`.
void AddRow(std::vector<std::string>* rows, const std::string& case_name,
            const std::string& label, const std::string& field,
            const std::string& value) {
  rows->push_back(case_name + "," + label + "," + field + "," + value);
}

void AddSummaryRows(std::vector<std::string>* rows,
                    const std::string& case_name, const std::string& label,
                    const sim::MetricsSummary& m) {
  AddRow(rows, case_name, label, "requests", std::to_string(m.requests));
  AddRow(rows, case_name, label, "avg_latency", FmtDouble(m.avg_latency));
  AddRow(rows, case_name, label, "avg_response_ratio",
         FmtDouble(m.avg_response_ratio));
  AddRow(rows, case_name, label, "byte_hit_ratio",
         FmtDouble(m.byte_hit_ratio));
  AddRow(rows, case_name, label, "hit_ratio", FmtDouble(m.hit_ratio));
  AddRow(rows, case_name, label, "avg_traffic_byte_hops",
         FmtDouble(m.avg_traffic_byte_hops));
  AddRow(rows, case_name, label, "avg_hops", FmtDouble(m.avg_hops));
  AddRow(rows, case_name, label, "avg_load_bytes",
         FmtDouble(m.avg_load_bytes));
  AddRow(rows, case_name, label, "read_load_share",
         FmtDouble(m.read_load_share));
  AddRow(rows, case_name, label, "avg_write_bytes",
         FmtDouble(m.avg_write_bytes));
  AddRow(rows, case_name, label, "total_bytes_requested",
         std::to_string(m.total_bytes_requested));
  AddRow(rows, case_name, label, "bytes_from_caches",
         std::to_string(m.bytes_from_caches));
  AddRow(rows, case_name, label, "stale_hit_ratio",
         FmtDouble(m.stale_hit_ratio));
  AddRow(rows, case_name, label, "copies_expired",
         std::to_string(m.copies_expired));
  AddRow(rows, case_name, label, "copies_invalidated",
         std::to_string(m.copies_invalidated));
}

std::vector<schemes::SchemeSpec> AllSchemes() {
  std::vector<schemes::SchemeSpec> specs(7);
  specs[0].kind = schemes::SchemeKind::kLru;
  specs[1].kind = schemes::SchemeKind::kModulo;  // radius 4 (default)
  specs[2].kind = schemes::SchemeKind::kLncr;
  specs[3].kind = schemes::SchemeKind::kCoordinated;
  specs[4].kind = schemes::SchemeKind::kGds;
  specs[5].kind = schemes::SchemeKind::kLfu;
  specs[6].kind = schemes::SchemeKind::kStatic;
  return specs;
}

trace::WorkloadParams SmallWorkload() {
  trace::WorkloadParams w;
  w.num_objects = 1500;
  w.num_requests = 12'000;
  w.num_clients = 200;
  w.num_servers = 40;
  return w;
}

/// Runs one sweep case through the ExperimentRunner (sequentially, so the
/// default cache plane and legacy ordering are exercised) and appends its
/// golden rows.
void RunSweepCase(const std::string& case_name,
                  const sim::ExperimentConfig& config,
                  std::vector<std::string>* rows) {
  sim::ExperimentConfig cfg = config;
  cfg.jobs = 1;
  auto runner_or = sim::ExperimentRunner::Create(cfg);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status().ToString();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status().ToString();
  for (const sim::RunResult& r : *results_or) {
    char label[64];
    std::snprintf(label, sizeof(label), "%s@%g", r.scheme.c_str(),
                  r.cache_fraction);
    AddSummaryRows(rows, case_name, label, r.metrics);
  }
}

/// Computes every golden row. Any numeric drift anywhere in the request
/// path — admission, coherency, latency accounting, scheme decisions,
/// metric aggregation — changes at least one row.
std::vector<std::string> ComputeRows() {
  std::vector<std::string> rows;

  // Case 1: en-route, all schemes, two cache sizes, latency cost model.
  {
    sim::ExperimentConfig cfg;
    cfg.network.architecture = sim::Architecture::kEnRoute;
    cfg.workload = SmallWorkload();
    cfg.cache_fractions = {0.01, 0.03};
    cfg.schemes = AllSchemes();
    RunSweepCase("enroute_all", cfg, &rows);
    if (::testing::Test::HasFatalFailure()) return rows;
  }

  // Case 2: hierarchical, all schemes, two cache sizes.
  {
    sim::ExperimentConfig cfg;
    cfg.network.architecture = sim::Architecture::kHierarchical;
    cfg.workload = SmallWorkload();
    cfg.cache_fractions = {0.01, 0.03};
    cfg.schemes = AllSchemes();
    RunSweepCase("hier_all", cfg, &rows);
    if (::testing::Test::HasFatalFailure()) return rows;
  }

  // Case 3: hops cost model (exercises the link_costs plane separately
  // from link_delays for the cost-aware schemes).
  {
    sim::ExperimentConfig cfg;
    cfg.network.architecture = sim::Architecture::kEnRoute;
    cfg.workload = SmallWorkload();
    cfg.sim.cost_model.kind = sim::CostModelKind::kHops;
    cfg.cache_fractions = {0.03};
    cfg.schemes.resize(3);
    cfg.schemes[0].kind = schemes::SchemeKind::kCoordinated;
    cfg.schemes[1].kind = schemes::SchemeKind::kLncr;
    cfg.schemes[2].kind = schemes::SchemeKind::kGds;
    RunSweepCase("enroute_hops", cfg, &rows);
    if (::testing::Test::HasFatalFailure()) return rows;
  }

  // Cases 4-6: coherency protocols (stale-serve, TTL, invalidation) for
  // LRU and Coordinated under the hierarchy. The 12k-request trace spans
  // ~120 simulated seconds, so updates must be fast to matter.
  for (const auto& [name, protocol, ttl] :
       {std::tuple<const char*, sim::CoherencyProtocol, double>{
            "hier_stale", sim::CoherencyProtocol::kNone, 3600.0},
        {"hier_ttl", sim::CoherencyProtocol::kTtl, 10.0},
        {"hier_inval", sim::CoherencyProtocol::kInvalidation, 3600.0}}) {
    sim::ExperimentConfig cfg;
    cfg.network.architecture = sim::Architecture::kHierarchical;
    cfg.workload = SmallWorkload();
    cfg.sim.coherency.protocol = protocol;
    cfg.sim.coherency.ttl = ttl;
    cfg.sim.coherency.mutable_fraction = 0.4;
    cfg.sim.coherency.mean_update_period = 30.0;
    cfg.cache_fractions = {0.03};
    cfg.schemes.resize(2);
    cfg.schemes[0].kind = schemes::SchemeKind::kLru;
    cfg.schemes[1].kind = schemes::SchemeKind::kCoordinated;
    RunSweepCase(name, cfg, &rows);
    if (::testing::Test::HasFatalFailure()) return rows;
  }

  // Case 7: coordinated protocol-accounting stats via a direct Simulator
  // run. Pins the message-byte totals and DP bookkeeping exactly, not
  // just the replay metrics.
  {
    trace::WorkloadParams wp = SmallWorkload();
    auto workload_or = trace::GenerateWorkload(wp);
    EXPECT_TRUE(workload_or.ok());
    if (!workload_or.ok()) return rows;
    sim::NetworkParams np;
    np.architecture = sim::Architecture::kHierarchical;
    auto network_or = sim::Network::Build(np, &workload_or->catalog);
    EXPECT_TRUE(network_or.ok());
    if (!network_or.ok()) return rows;
    schemes::CoordinatedScheme scheme;
    sim::Simulator simulator(network_or->get(), &scheme);
    const uint64_t capacity = static_cast<uint64_t>(
        0.03 * static_cast<double>(workload_or->catalog.total_bytes()));
    auto status = simulator.Run(*workload_or, capacity);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok()) return rows;

    const auto& s = scheme.stats();
    AddRow(&rows, "coord_stats", "Coordinated@0.03", "requests",
           std::to_string(s.requests));
    AddRow(&rows, "coord_stats", "Coordinated@0.03", "dp_runs",
           std::to_string(s.dp_runs));
    AddRow(&rows, "coord_stats", "Coordinated@0.03", "candidates",
           std::to_string(s.candidates));
    AddRow(&rows, "coord_stats", "Coordinated@0.03", "placements",
           std::to_string(s.placements));
    AddRow(&rows, "coord_stats", "Coordinated@0.03", "excluded_no_descriptor",
           std::to_string(s.excluded_no_descriptor));
    AddRow(&rows, "coord_stats", "Coordinated@0.03", "total_gain",
           FmtDouble(s.total_gain));
    AddRow(&rows, "coord_stats", "Coordinated@0.03", "piggyback_bytes",
           std::to_string(s.piggyback_bytes));
    AddSummaryRows(&rows, "coord_stats", "Coordinated@0.03",
                   simulator.metrics().Summary());
  }

  return rows;
}

TEST(PipelineEquivalenceTest, MatchesPreRefactorGolden) {
  std::vector<std::string> rows = ComputeRows();
  ASSERT_FALSE(rows.empty());

  if (std::getenv("CASCACHE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    for (const std::string& row : rows) out << row << "\n";
    out.close();
    ASSERT_TRUE(out.good());
    GTEST_SKIP() << "regenerated " << GoldenPath() << " (" << rows.size()
                 << " rows)";
  }

  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good())
      << "missing golden file " << GoldenPath()
      << " — run with CASCACHE_REGEN_GOLDEN=1 on a known-good build";
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) golden.push_back(line);
  }

  ASSERT_EQ(golden.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(golden[i], rows[i]) << "golden mismatch at row " << i;
  }
}

}  // namespace
}  // namespace cascache
