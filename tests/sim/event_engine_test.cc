#include "sim/event_engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace cascache::sim {
namespace {

TEST(VirtualClockTest, SetAdvanceReset) {
  VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.Set(3.5);
  EXPECT_EQ(clock.now(), 3.5);
  clock.Advance(1.25);
  EXPECT_EQ(clock.now(), 4.75);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0.0);
}

TEST(EventEngineTest, PopsInTimeOrderAndAdvancesClock) {
  EventEngine engine;
  engine.Schedule(EventKind::kArrival, 2.0, 20);
  engine.Schedule(EventKind::kArrival, 1.0, 10);
  engine.Schedule(EventKind::kArrival, 3.0, 30);
  EXPECT_EQ(engine.pending(), 3u);

  Event ev;
  ASSERT_TRUE(engine.Pop(&ev));
  EXPECT_EQ(ev.payload, 10u);
  EXPECT_EQ(engine.clock().now(), 1.0);
  ASSERT_TRUE(engine.Pop(&ev));
  EXPECT_EQ(ev.payload, 20u);
  EXPECT_EQ(engine.clock().now(), 2.0);
  ASSERT_TRUE(engine.Pop(&ev));
  EXPECT_EQ(ev.payload, 30u);
  EXPECT_EQ(engine.clock().now(), 3.0);
  EXPECT_FALSE(engine.Pop(&ev));
  // An empty pop leaves the clock where it was.
  EXPECT_EQ(engine.clock().now(), 3.0);
}

TEST(EventEngineTest, CompletionsDrainBeforeEqualTimeArrivals) {
  // The tie-break that makes a zero-contention event-driven replay record
  // requests in trace order: at equal times, completions pop first.
  EventEngine engine;
  engine.Schedule(EventKind::kArrival, 5.0, 1);
  engine.Schedule(EventKind::kCompletion, 5.0, 2);
  engine.Schedule(EventKind::kArrival, 5.0, 3);
  engine.Schedule(EventKind::kCompletion, 5.0, 4);

  std::vector<uint64_t> order;
  Event ev;
  while (engine.Pop(&ev)) order.push_back(ev.payload);
  ASSERT_EQ(order.size(), 4u);
  // Both completions first (in schedule order), then both arrivals.
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 4u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 3u);
}

TEST(EventEngineTest, EqualKeysPopInScheduleOrder) {
  EventEngine engine;
  for (uint64_t i = 0; i < 16; ++i) {
    engine.Schedule(EventKind::kArrival, 1.0, i);
  }
  Event ev;
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(engine.Pop(&ev));
    EXPECT_EQ(ev.payload, i);
  }
}

TEST(EventEngineTest, ResetForgetsEventsAndClock) {
  EventEngine engine;
  engine.Schedule(EventKind::kArrival, 7.0, 1);
  Event ev;
  ASSERT_TRUE(engine.Pop(&ev));
  EXPECT_EQ(engine.clock().now(), 7.0);
  engine.Schedule(EventKind::kArrival, 9.0, 2);
  engine.Reset();
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.clock().now(), 0.0);
  EXPECT_FALSE(engine.Pop(&ev));
  // Scheduling at time 0 is legal again after the reset.
  engine.Schedule(EventKind::kArrival, 0.0, 3);
  ASSERT_TRUE(engine.Pop(&ev));
  EXPECT_EQ(ev.payload, 3u);
}

TEST(EventEngineDeathTest, SchedulingIntoThePastAborts) {
  EventEngine engine;
  engine.Schedule(EventKind::kArrival, 5.0, 1);
  Event ev;
  ASSERT_TRUE(engine.Pop(&ev));
  EXPECT_DEATH(engine.Schedule(EventKind::kArrival, 4.0, 2), "");
}

}  // namespace
}  // namespace cascache::sim
