// Sibling cooperation protocol tests: ICP-style probes on local miss,
// proxy-only sibling serves, the OnSiblingProbe/OnSiblingServe hook
// contract, hop alignment across every built-in scheme, the level
// filter, probe freshness, and the sibling-leg fault class.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "schemes/lru_scheme.h"
#include "schemes/scheme.h"
#include "sim/fault_plane.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "testing/scenario.h"
#include "util/check.h"
#include "util/random.h"

namespace cascache::sim {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeTreeNetwork;
using util::Rng;

/// Records every hook invocation in order; LRU-mode, state-free. Used to
/// pin the simulator's dispatch sequence around sibling probes.
class RecordingScheme : public schemes::CachingScheme {
 public:
  struct Event {
    std::string kind;  // "ascend", "probe", "serve", "sibling_serve", ...
    int hop = -1;
    topology::NodeId sibling = topology::kInvalidNode;
  };

  std::string name() const override { return "Recording"; }
  CacheMode cache_mode() const override { return CacheMode::kLru; }
  bool observes_ascent() const override { return true; }
  bool uses_link_costs() const override { return false; }

  void OnAscend(MessageContext& ctx, int hop) override {
    (void)ctx;
    events.push_back({"ascend", hop, topology::kInvalidNode});
  }
  void OnServe(MessageContext& ctx) override {
    events.push_back({"serve", ctx.hit_index(), topology::kInvalidNode});
  }
  void OnSiblingServe(MessageContext& ctx) override {
    events.push_back(
        {"sibling_serve", ctx.hit_index(), ctx.response.sibling});
  }
  void OnSiblingProbe(MessageContext& ctx, int hop,
                      topology::NodeId sibling) override {
    (void)ctx;
    events.push_back({"probe", hop, sibling});
  }
  void OnDescend(MessageContext& ctx, int hop) override {
    (void)ctx;
    events.push_back({"descend", hop, topology::kInvalidNode});
  }

  std::vector<Event> events;
};

SimOptions SiblingOptions() {
  SimOptions options;
  options.sibling.enabled = true;
  return options;
}

CacheNodeConfig LruConfig(uint64_t capacity) {
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = capacity;
  return config;
}

TEST(SiblingProtocolTest, SiblingServeShortCircuitsAscent) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/2);
  ASSERT_TRUE(network->HasSiblings());
  schemes::LruScheme scheme;
  Simulator simulator(network.get(), &scheme, SiblingOptions());
  network->ConfigureCaches(LruConfig(1'000));

  const topology::NodeId leaf = network->RequesterNode(0);
  const std::vector<topology::NodeId>& siblings = network->Siblings(leaf);
  ASSERT_EQ(siblings.size(), 1u);  // Fanout 2: exactly one sibling.
  const topology::NodeId sib = siblings[0];
  network->node(sib)->lru()->Insert(0, 100);

  simulator.Step(At(1.0, 0), /*collect=*/true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.cache_hits, 1u);  // A sibling serve is a cache hit.
  EXPECT_EQ(s.sibling_probes, 1u);
  EXPECT_EQ(s.sibling_hits, 1u);
  // The sibling leg: up to the shared parent (delay 1) and across to the
  // sibling (delay 1); two physical hops.
  EXPECT_DOUBLE_EQ(s.avg_latency, 2.0);
  EXPECT_DOUBLE_EQ(s.avg_hops, 2.0);
  // Proxy-only: the probing leaf keeps no copy, the sibling keeps its.
  EXPECT_FALSE(network->node(leaf)->Contains(0));
  EXPECT_TRUE(network->node(sib)->Contains(0));
}

TEST(SiblingProtocolTest, ProbesAscendingIdThenAscendOnMiss) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/3);
  RecordingScheme scheme;
  Simulator simulator(network.get(), &scheme, SiblingOptions());
  network->ConfigureCaches(LruConfig(1'000));

  const topology::NodeId leaf = network->RequesterNode(0);
  const std::vector<topology::NodeId>& leaf_sibs = network->Siblings(leaf);
  ASSERT_EQ(leaf_sibs.size(), 2u);
  EXPECT_LT(leaf_sibs[0], leaf_sibs[1]);  // Deterministic probe order.

  // Nobody has the object: every hop probes its siblings (in ascending
  // id), then falls back to OnAscend; the origin serves; the descent
  // then walks every hop back down.
  simulator.Step(At(1.0, 0), /*collect=*/true);
  const auto& ev = scheme.events;
  // Hops 0 and 1 have two siblings each; the root (hop 2) has none.
  // 2 probes + ascend at hop 0, 2 probes + ascend at hop 1, ascend at
  // hop 2, serve, 3 descends.
  ASSERT_EQ(ev.size(), 11u);
  EXPECT_EQ(ev[0].kind, "probe");
  EXPECT_EQ(ev[0].hop, 0);
  EXPECT_EQ(ev[0].sibling, leaf_sibs[0]);
  EXPECT_EQ(ev[1].kind, "probe");
  EXPECT_EQ(ev[1].sibling, leaf_sibs[1]);
  EXPECT_EQ(ev[2].kind, "ascend");
  EXPECT_EQ(ev[2].hop, 0);
  EXPECT_EQ(ev[3].kind, "probe");
  EXPECT_EQ(ev[3].hop, 1);
  EXPECT_EQ(ev[4].kind, "probe");
  EXPECT_EQ(ev[5].kind, "ascend");
  EXPECT_EQ(ev[5].hop, 1);
  EXPECT_EQ(ev[6].kind, "ascend");
  EXPECT_EQ(ev[6].hop, 2);
  EXPECT_EQ(ev[7].kind, "serve");
  EXPECT_EQ(ev[7].hop, -1);  // Origin served.
  EXPECT_EQ(ev[8].kind, "descend");
  EXPECT_EQ(ev[8].hop, 2);
  EXPECT_EQ(ev[9].hop, 1);
  EXPECT_EQ(ev[10].hop, 0);
  EXPECT_EQ(simulator.metrics().Summary().sibling_probes, 4u);
}

TEST(SiblingProtocolTest, SiblingServeSkipsOnAscendAtProbingHop) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/2);
  RecordingScheme scheme;
  Simulator simulator(network.get(), &scheme, SiblingOptions());
  network->ConfigureCaches(LruConfig(1'000));

  const topology::NodeId leaf = network->RequesterNode(0);
  const topology::NodeId sib = network->Siblings(leaf)[0];
  network->node(sib)->lru()->Insert(0, 100);

  simulator.Step(At(1.0, 0), /*collect=*/true);
  // The probing hop behaves exactly like a serving point: probe, then
  // OnSiblingServe — no OnAscend there, and a hit at hop 0 has no
  // descent. This is what keeps hop-indexed ascent state (Coordinated's
  // piggyback stack) aligned with no scheme-side special-casing.
  const auto& ev = scheme.events;
  ASSERT_EQ(ev.size(), 2u);
  EXPECT_EQ(ev[0].kind, "probe");
  EXPECT_EQ(ev[0].hop, 0);
  EXPECT_EQ(ev[1].kind, "sibling_serve");
  EXPECT_EQ(ev[1].hop, 0);
  EXPECT_EQ(ev[1].sibling, sib);
}

TEST(SiblingProtocolTest, MaxProbesBoundsTheProbeFanout) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/2, /*fanout=*/4);
  schemes::LruScheme scheme;
  SimOptions options = SiblingOptions();
  options.sibling.max_probes = 1;
  Simulator simulator(network.get(), &scheme, options);
  network->ConfigureCaches(LruConfig(1'000));

  const topology::NodeId leaf = network->RequesterNode(0);
  ASSERT_EQ(network->Siblings(leaf).size(), 3u);
  simulator.Step(At(1.0, 0), /*collect=*/true);
  // Only the first sibling (lowest id) was probed at the leaf.
  EXPECT_EQ(simulator.metrics().Summary().sibling_probes, 1u);
}

TEST(SiblingProtocolTest, LevelFilterRestrictsProbingToThatLevel) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/2);
  schemes::LruScheme scheme;
  SimOptions options = SiblingOptions();
  options.sibling.level = 1;  // Mid-level caches only.
  Simulator simulator(network.get(), &scheme, options);
  network->ConfigureCaches(LruConfig(1'000));

  const topology::NodeId leaf = network->RequesterNode(0);
  const topology::NodeId mid = network->Parent(leaf);
  ASSERT_EQ(network->NodeLevel(mid), 1);
  const topology::NodeId mid_sib = network->Siblings(mid)[0];
  // Copies at both the leaf's sibling and the mid-level sibling: the
  // leaf may not probe (level filter), so the serve comes from the
  // mid-level sibling at hop 1.
  network->node(network->Siblings(leaf)[0])->lru()->Insert(0, 100);
  network->node(mid_sib)->lru()->Insert(0, 100);

  simulator.Step(At(1.0, 0), /*collect=*/true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.sibling_probes, 1u);
  EXPECT_EQ(s.sibling_hits, 1u);
  // The descent below the probing hop runs as for a local hit there:
  // the leaf receives a copy (plain-LRU placement), the probing
  // mid-level node stays proxy-only.
  EXPECT_TRUE(network->node(leaf)->Contains(0));
  EXPECT_FALSE(network->node(mid)->Contains(0));
}

TEST(SiblingProtocolTest, SiblingLossFallsBackToTheAscent) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/2);
  schemes::LruScheme scheme;
  SimOptions options = SiblingOptions();
  options.faults.sibling_loss_prob = 1.0;  // Every probe (or reply) lost.
  Simulator simulator(network.get(), &scheme, options);
  network->ConfigureCaches(LruConfig(1'000));

  const topology::NodeId leaf = network->RequesterNode(0);
  const topology::NodeId sib = network->Siblings(leaf)[0];
  network->node(sib)->lru()->Insert(0, 100);

  simulator.Step(At(1.0, 0), /*collect=*/true);
  const MetricsSummary s = simulator.metrics().Summary();
  // The probe went out but its answer never arrived: the request
  // ascended past the sibling's perfectly good copy to the origin.
  EXPECT_GE(s.sibling_probes, 1u);
  EXPECT_EQ(s.sibling_hits, 0u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_GE(s.degraded_decisions, 1u);
  EXPECT_TRUE(network->node(sib)->Contains(0));  // Probes never mutate.
}

// With every sibling probe lost, the delivered results must be exactly
// the sibling-disabled replay (plus the probe/degraded accounting):
// losses may not corrupt hit, latency, or placement behavior.
TEST(SiblingProtocolTest, TotalSiblingLossMatchesDisabledSiblings) {
  trace::Workload workload;
  Rng rng(99);
  for (int i = 0; i < 64; ++i) {
    workload.catalog.Add(50 + rng.NextUint64(200), 0);
  }
  for (int i = 0; i < 4'000; ++i) {
    workload.requests.push_back(At(static_cast<double>(i),
                                   rng.NextUint64(64), rng.NextUint64(16)));
  }

  auto run = [&](bool sibling, double loss) {
    trace::ObjectCatalog& catalog = workload.catalog;
    auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/2);
    schemes::LruScheme scheme;
    SimOptions options;
    options.sibling.enabled = sibling;
    options.faults.sibling_loss_prob = loss;
    Simulator simulator(network.get(), &scheme, options);
    CASCACHE_CHECK_OK(simulator.Run(workload, 2'000));
    return simulator.metrics().Summary();
  };

  const MetricsSummary off = run(false, 0.0);
  const MetricsSummary lost = run(true, 1.0);
  EXPECT_EQ(lost.cache_hits, off.cache_hits);
  EXPECT_EQ(lost.sibling_hits, 0u);
  EXPECT_GT(lost.sibling_probes, 0u);
  EXPECT_DOUBLE_EQ(lost.avg_latency, off.avg_latency);
  EXPECT_DOUBLE_EQ(lost.byte_hit_ratio, off.byte_hit_ratio);
  EXPECT_DOUBLE_EQ(lost.avg_hops, off.avg_hops);
  EXPECT_EQ(lost.insertions, off.insertions);
}

// Freshness across the sibling leg: an expired sibling copy is skipped
// (not served, not erased) — probes are observational.
TEST(SiblingProtocolTest, StaleSiblingCopyIsSkippedNotErased) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeTreeNetwork(&catalog, /*depth=*/3, /*fanout=*/2);
  schemes::LruScheme scheme;
  SimOptions options = SiblingOptions();
  options.coherency.protocol = CoherencyProtocol::kTtl;
  options.coherency.ttl = 10.0;
  Simulator simulator(network.get(), &scheme, options);
  ASSERT_TRUE(simulator.EnableCoherency(1).ok());
  network->ConfigureCaches(LruConfig(1'000));

  const topology::NodeId leaf = network->RequesterNode(0);
  const topology::NodeId sib = network->Siblings(leaf)[0];
  network->node(sib)->lru()->Insert(0, 100);
  network->node(sib)->StampCopy(0, /*fetch_time=*/0.0, /*version=*/1);

  // Well past the TTL: the sibling's copy is expired, so the probe
  // reads as a miss and the request goes to the origin.
  simulator.Step(At(100.0, 0), /*collect=*/true);
  const MetricsSummary s = simulator.metrics().Summary();
  EXPECT_EQ(s.sibling_probes, 2u);  // Leaf level + mid level.
  EXPECT_EQ(s.sibling_hits, 0u);
  EXPECT_TRUE(network->node(sib)->Contains(0));  // Skipped, not erased.

  // Within the TTL the same copy serves. The first request's descent
  // placed copies along the path at t=100; by t=150 those have expired
  // too, so the leaf misses again and probes the freshly stamped sibling.
  network->node(sib)->StampCopy(0, /*fetch_time=*/145.0, /*version=*/1);
  simulator.Step(At(150.0, 0), /*collect=*/true);
  EXPECT_EQ(simulator.metrics().Summary().sibling_hits, 1u);
}

// Every built-in scheme must survive sibling cooperation with its
// hop-indexed state aligned (Coordinated's DP asserts internally if the
// ascent stack desyncs) and with the sibling counters reconciling
// integer-exactly against the per-node counters.
TEST(SiblingProtocolTest, AllSchemesReconcileUnderSiblingCooperation) {
  trace::Workload workload;
  Rng rng(7);
  for (int i = 0; i < 80; ++i) {
    workload.catalog.Add(50 + rng.NextUint64(300), 0);
  }
  for (int i = 0; i < 6'000; ++i) {
    workload.requests.push_back(At(static_cast<double>(i),
                                   rng.NextUint64(80), rng.NextUint64(24)));
  }

  const schemes::SchemeSpec specs[] = {
      {.kind = schemes::SchemeKind::kLru},
      {.kind = schemes::SchemeKind::kModulo, .modulo_radius = 2},
      {.kind = schemes::SchemeKind::kLncr},
      {.kind = schemes::SchemeKind::kCoordinated},
      {.kind = schemes::SchemeKind::kGds},
      {.kind = schemes::SchemeKind::kLfu},
      {.kind = schemes::SchemeKind::kStatic, .static_freeze_requests = 1'000},
  };
  for (const schemes::SchemeSpec& spec : specs) {
    auto scheme_or = schemes::MakeScheme(spec);
    ASSERT_TRUE(scheme_or.ok());
    std::unique_ptr<schemes::CachingScheme> scheme =
        std::move(scheme_or).value();
    auto network = MakeTreeNetwork(&workload.catalog, /*depth=*/3,
                                   /*fanout=*/3);
    SimOptions options = SiblingOptions();
    options.dcache_ratio = 3.0;
    Simulator simulator(network.get(), scheme.get(), options);
    ASSERT_TRUE(simulator.Run(workload, 3'000).ok()) << scheme->name();

    const MetricsSummary s = simulator.metrics().Summary();
    EXPECT_EQ(s.requests, 3'000u) << scheme->name();  // Post-warmup half.
    EXPECT_GT(s.sibling_probes, 0u) << scheme->name();
    EXPECT_LE(s.sibling_hits, s.sibling_probes) << scheme->name();
    EXPECT_LE(s.sibling_hits, s.cache_hits) << scheme->name();

    const NodeCounters totals = simulator.metrics().NodeTotals();
    EXPECT_EQ(totals.sibling_probes, s.sibling_probes) << scheme->name();
    EXPECT_EQ(totals.sibling_serves, s.sibling_hits) << scheme->name();
    EXPECT_EQ(totals.hits, s.cache_hits) << scheme->name();
    // A sibling serve is a hit at the serving sibling.
    for (const NodeCounters& c : simulator.metrics().node_counters()) {
      EXPECT_LE(c.sibling_serves, c.hits) << scheme->name();
    }
  }
}

}  // namespace
}  // namespace cascache::sim
