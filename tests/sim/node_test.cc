#include "sim/node.h"

#include <gtest/gtest.h>

namespace cascache::sim {
namespace {

CacheNodeConfig CostConfig(uint64_t capacity = 1000, size_t dcache = 8) {
  CacheNodeConfig config;
  config.mode = CacheMode::kCost;
  config.capacity_bytes = capacity;
  config.dcache_entries = dcache;
  return config;
}

CacheNodeConfig LruConfig(uint64_t capacity = 1000) {
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = capacity;
  return config;
}

TEST(CacheNodeTest, LruModeBasics) {
  CacheNode node(3, LruConfig());
  EXPECT_EQ(node.id(), 3);
  EXPECT_EQ(node.mode(), CacheMode::kLru);
  EXPECT_FALSE(node.Contains(1));
  node.lru()->Insert(1, 100);
  EXPECT_TRUE(node.Contains(1));
  EXPECT_EQ(node.used_bytes(), 100u);
  EXPECT_EQ(node.num_cached_objects(), 1u);
  EXPECT_EQ(node.dcache(), nullptr);
}

TEST(CacheNodeTest, CostModeBasics) {
  CacheNode node(0, CostConfig());
  EXPECT_EQ(node.mode(), CacheMode::kCost);
  EXPECT_NE(node.dcache(), nullptr);
  EXPECT_FALSE(node.Contains(1));
  EXPECT_EQ(node.FindDescriptor(1), nullptr);
}

TEST(CacheNodeTest, AdmitDescriptorCreatesInDCache) {
  CacheNode node(0, CostConfig());
  ObjectDescriptor* desc = node.AdmitDescriptor(7, 100, 5.0);
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(desc->size, 100u);
  EXPECT_EQ(desc->num_accesses, 1);
  EXPECT_FALSE(node.DescriptorInMain(7));
  EXPECT_EQ(node.FindDescriptor(7), desc);
  // Re-admitting returns the existing descriptor without resetting it.
  desc->miss_penalty = 3.0;
  ObjectDescriptor* again = node.AdmitDescriptor(7, 100, 6.0);
  EXPECT_EQ(again, desc);
  EXPECT_DOUBLE_EQ(again->miss_penalty, 3.0);
}

TEST(CacheNodeTest, AdmitWithoutDCacheReturnsNull) {
  CacheNode node(0, CostConfig(1000, /*dcache=*/0));
  EXPECT_EQ(node.AdmitDescriptor(7, 100, 5.0), nullptr);
}

TEST(CacheNodeTest, RecordAccessUnknownObjectReturnsNull) {
  CacheNode node(0, CostConfig());
  EXPECT_EQ(node.RecordAccess(42, 1.0), nullptr);
}

TEST(CacheNodeTest, RecordAccessUpdatesDescriptorAndPriority) {
  CacheNode node(0, CostConfig());
  node.AdmitDescriptor(7, 100, 1.0);
  ObjectDescriptor* desc = node.RecordAccess(7, 2.0);
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(desc->num_accesses, 2);
  EXPECT_GT(desc->frequency, 0.0);
}

TEST(CacheNodeTest, InsertCostPromotesDescriptorFromDCache) {
  CacheNode node(0, CostConfig());
  node.AdmitDescriptor(7, 100, 1.0);
  node.RecordAccess(7, 2.0);
  ASSERT_TRUE(node.InsertCost(7, 100, /*miss_penalty=*/4.0, 3.0));
  EXPECT_TRUE(node.Contains(7));
  EXPECT_TRUE(node.DescriptorInMain(7));
  EXPECT_FALSE(node.dcache()->Contains(7));  // Moved, not copied.
  const ObjectDescriptor* desc = node.FindDescriptor(7);
  ASSERT_NE(desc, nullptr);
  EXPECT_DOUBLE_EQ(desc->miss_penalty, 4.0);
  // Access history preserved across the promotion.
  EXPECT_EQ(desc->num_accesses, 2);
}

TEST(CacheNodeTest, InsertCostWithoutHistoryCreatesDescriptor) {
  CacheNode node(0, CostConfig());
  ASSERT_TRUE(node.InsertCost(9, 50, 2.0, 1.0));
  const ObjectDescriptor* desc = node.FindDescriptor(9);
  ASSERT_NE(desc, nullptr);
  EXPECT_EQ(desc->num_accesses, 1);
  EXPECT_TRUE(node.DescriptorInMain(9));
}

TEST(CacheNodeTest, InsertCostRejectsOversized) {
  CacheNode node(0, CostConfig(1000));
  EXPECT_FALSE(node.InsertCost(9, 2000, 2.0, 1.0));
  EXPECT_FALSE(node.Contains(9));
}

TEST(CacheNodeTest, InsertCostOnCachedObjectUpdatesPenalty) {
  CacheNode node(0, CostConfig());
  ASSERT_TRUE(node.InsertCost(9, 50, 2.0, 1.0));
  EXPECT_FALSE(node.InsertCost(9, 50, 7.0, 2.0));  // No second write.
  EXPECT_DOUBLE_EQ(node.FindDescriptor(9)->miss_penalty, 7.0);
}

TEST(CacheNodeTest, EvictionDemotesDescriptorsToDCache) {
  CacheNode node(0, CostConfig(100, 8));
  ASSERT_TRUE(node.InsertCost(1, 60, 1.0, 1.0));
  node.RecordAccess(1, 2.0);
  // Inserting object 2 (60 bytes) forces object 1 out.
  ASSERT_TRUE(node.InsertCost(2, 60, 50.0, 3.0));
  EXPECT_FALSE(node.Contains(1));
  EXPECT_TRUE(node.Contains(2));
  EXPECT_FALSE(node.DescriptorInMain(1));
  // Object 1's descriptor (with history) now lives in the d-cache.
  const ObjectDescriptor* demoted = node.dcache()->Find(1);
  ASSERT_NE(demoted, nullptr);
  EXPECT_EQ(demoted->num_accesses, 2);
}

TEST(CacheNodeTest, PlanEvictionMatchesNclState) {
  CacheNode node(0, CostConfig(100, 8));
  node.InsertCost(1, 40, 1.0, 1.0);   // Low loss -> first victim.
  node.InsertCost(2, 40, 100.0, 1.0);
  const auto plan = node.PlanEvictionFor(40);
  ASSERT_TRUE(plan.feasible);
  ASSERT_EQ(plan.victims.size(), 1u);
  EXPECT_EQ(plan.victims[0], 1u);
}

TEST(CacheNodeTest, RefreshLossTracksFrequencyDecay) {
  CacheNode node(0, CostConfig(1000, 8));
  CacheNodeConfig config = CostConfig(1000, 8);
  config.frequency.aging_interval = 1.0;
  node.Reset(config);
  ASSERT_TRUE(node.InsertCost(1, 100, 10.0, 0.0));
  const double early_loss = node.ncl()->LossOf(1);
  node.RefreshLoss(1, 10000.0);  // Long idle: frequency decays.
  EXPECT_LT(node.ncl()->LossOf(1), early_loss);
}

TEST(CacheNodeTest, UpdateMissPenaltyOnDCacheDescriptor) {
  CacheNode node(0, CostConfig());
  node.AdmitDescriptor(5, 10, 1.0);
  node.UpdateMissPenalty(5, 6.5, 2.0);
  EXPECT_DOUBLE_EQ(node.FindDescriptor(5)->miss_penalty, 6.5);
  node.UpdateMissPenalty(99, 6.5, 2.0);  // Unknown: no-op.
}

TEST(CacheNodeTest, EraseObjectInLruMode) {
  CacheNode node(0, LruConfig());
  node.lru()->Insert(1, 100);
  EXPECT_TRUE(node.EraseObject(1));
  EXPECT_FALSE(node.EraseObject(1));
  EXPECT_FALSE(node.Contains(1));
  EXPECT_EQ(node.used_bytes(), 0u);
}

TEST(CacheNodeTest, EraseObjectInCostModeDemotesDescriptor) {
  CacheNode node(0, CostConfig());
  ASSERT_TRUE(node.InsertCost(1, 100, 5.0, 1.0));
  node.RecordAccess(1, 2.0);
  EXPECT_TRUE(node.EraseObject(1));
  EXPECT_FALSE(node.Contains(1));
  EXPECT_FALSE(node.DescriptorInMain(1));
  // History survives in the d-cache.
  const ObjectDescriptor* demoted = node.dcache()->Find(1);
  ASSERT_NE(demoted, nullptr);
  EXPECT_EQ(demoted->num_accesses, 2);
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(CacheNodeTest, EraseObjectInGdsAndLfuModes) {
  CacheNodeConfig gds_config;
  gds_config.mode = CacheMode::kGds;
  gds_config.capacity_bytes = 1000;
  CacheNode gds_node(0, gds_config);
  gds_node.gds()->Insert(1, 100, 2.0);
  EXPECT_TRUE(gds_node.EraseObject(1));
  EXPECT_FALSE(gds_node.Contains(1));

  CacheNodeConfig lfu_config;
  lfu_config.mode = CacheMode::kLfu;
  lfu_config.capacity_bytes = 1000;
  CacheNode lfu_node(0, lfu_config);
  lfu_node.lfu()->Insert(1, 100);
  EXPECT_TRUE(lfu_node.EraseObject(1));
  EXPECT_FALSE(lfu_node.Contains(1));
}

TEST(CacheNodeTest, CopyStampsRoundTrip) {
  CacheNode node(0, LruConfig());
  EXPECT_EQ(node.FindCopy(7), nullptr);
  node.StampCopy(7, 12.5, 3);
  const CacheNode::CopyStamp* stamp = node.FindCopy(7);
  ASSERT_NE(stamp, nullptr);
  EXPECT_DOUBLE_EQ(stamp->fetch_time, 12.5);
  EXPECT_EQ(stamp->version, 3u);
  node.StampCopy(7, 20.0, 4);  // Overwrite.
  EXPECT_EQ(node.FindCopy(7)->version, 4u);
  node.lru()->Insert(7, 10);
  EXPECT_TRUE(node.EraseObject(7));  // Drops the stamp too.
  EXPECT_EQ(node.FindCopy(7), nullptr);
}

TEST(CacheNodeTest, CheckInvariantsCatchesCorruption) {
  CacheNode node(0, CostConfig());
  ASSERT_TRUE(node.InsertCost(1, 100, 5.0, 1.0));
  EXPECT_TRUE(node.CheckInvariants());
  // Bypass the CacheNode API to desynchronize store and descriptors.
  node.ncl()->Erase(1);
  EXPECT_FALSE(node.CheckInvariants());
}

TEST(CacheNodeTest, ResetClearsEverything) {
  CacheNode node(0, CostConfig());
  node.InsertCost(1, 100, 1.0, 1.0);
  node.AdmitDescriptor(2, 10, 1.0);
  node.Reset(LruConfig(500));
  EXPECT_EQ(node.mode(), CacheMode::kLru);
  EXPECT_FALSE(node.Contains(1));
  EXPECT_EQ(node.used_bytes(), 0u);
  EXPECT_EQ(node.capacity_bytes(), 500u);
}

// Reset with an unchanged store shape (mode, capacity, d-cache config)
// must recycle the pooled slots in place: same store objects, same slot
// span, no stale index entries left behind — the path fault-plane crash
// restarts and repeated Run() calls exercise per node.
TEST(CacheNodeTest, ResetReusesLruSlotsInPlace) {
  CacheNode node(0, LruConfig());
  for (ObjectId id = 0; id < 8; ++id) node.lru()->Insert(id, 100);
  cache::FlatLru* store_before = node.lru();
  const size_t span_before = node.lru()->slot_span();
  ASSERT_GT(span_before, 0u);

  node.Reset(LruConfig());
  EXPECT_EQ(node.lru(), store_before);  // In-place clear, not a rebuild.
  EXPECT_EQ(node.lru()->slot_span(), span_before);
  EXPECT_EQ(node.used_bytes(), 0u);
  EXPECT_EQ(node.num_cached_objects(), 0u);
  for (ObjectId id = 0; id < 8; ++id) {
    EXPECT_FALSE(node.Contains(id)) << "stale index entry for " << id;
    EXPECT_FALSE(node.lru()->Touch(id)) << "stale list entry for " << id;
  }

  // Refill: recycled slots, no pool growth, clean invariants.
  for (ObjectId id = 100; id < 108; ++id) node.lru()->Insert(id, 100);
  EXPECT_EQ(node.lru()->slot_span(), span_before);
  EXPECT_TRUE(node.lru()->CheckInvariants());
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(CacheNodeTest, ResetReusesCostStoresInPlace) {
  CacheNode node(0, CostConfig());
  for (ObjectId id = 0; id < 5; ++id) {
    ASSERT_TRUE(node.InsertCost(id, 100, 2.0, 1.0));
  }
  node.AdmitDescriptor(50, 10, 1.0);
  cache::NclCache* ncl_before = node.ncl();
  cache::DCache* dcache_before = node.dcache();

  node.Reset(CostConfig());
  EXPECT_EQ(node.ncl(), ncl_before);
  EXPECT_EQ(node.dcache(), dcache_before);
  EXPECT_EQ(node.used_bytes(), 0u);
  for (ObjectId id = 0; id < 5; ++id) {
    EXPECT_FALSE(node.Contains(id)) << "stale entry for " << id;
    EXPECT_FALSE(node.DescriptorInMain(id));
  }
  EXPECT_EQ(node.FindDescriptor(50), nullptr);

  // The plane is immediately usable again.
  ASSERT_TRUE(node.InsertCost(7, 100, 2.0, 1.0));
  EXPECT_TRUE(node.Contains(7));
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(CacheNodeTest, ResetRebuildsWhenShapeChanges) {
  CacheNode node(0, LruConfig(1000));
  node.lru()->Insert(1, 100);
  node.Reset(LruConfig(2000));  // Different capacity: full rebuild.
  EXPECT_EQ(node.capacity_bytes(), 2000u);
  EXPECT_FALSE(node.Contains(1));
  node.Reset(CostConfig());  // Different mode: full rebuild.
  EXPECT_EQ(node.mode(), CacheMode::kCost);
  EXPECT_NE(node.dcache(), nullptr);
  EXPECT_TRUE(node.CheckInvariants());
}

}  // namespace
}  // namespace cascache::sim
