#include "sim/experiment.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

namespace cascache::sim {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.network.architecture = Architecture::kHierarchical;
  config.network.tree.depth = 3;
  config.workload.num_objects = 300;
  config.workload.num_requests = 20000;
  config.workload.num_clients = 50;
  config.workload.num_servers = 10;
  config.workload.seed = 5;
  config.cache_fractions = {0.01, 0.05};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated}};
  return config;
}

TEST(ExperimentTest, RunAllProducesOneRowPerCell) {
  auto runner_or = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  ASSERT_EQ(results_or->size(), 4u);  // 2 sizes x 2 schemes.
  for (const RunResult& r : *results_or) {
    EXPECT_GT(r.metrics.requests, 0u);
    EXPECT_GT(r.capacity_bytes, 0u);
    EXPECT_GE(r.metrics.byte_hit_ratio, 0.0);
    EXPECT_LE(r.metrics.byte_hit_ratio, 1.0);
    EXPECT_GE(r.metrics.avg_latency, 0.0);
  }
}

TEST(ExperimentTest, LargerCachesNeverHurtHitRatio) {
  auto runner_or = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(runner_or.ok());
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  // Results ordered: (0.01, LRU), (0.01, Coord), (0.05, LRU), (0.05, Coord).
  const auto& r = *results_or;
  EXPECT_GT(r[2].metrics.byte_hit_ratio, r[0].metrics.byte_hit_ratio);
  EXPECT_LE(r[2].metrics.avg_latency, r[0].metrics.avg_latency);
}

TEST(ExperimentTest, RunOneMatchesLabel) {
  auto runner_or = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(runner_or.ok());
  auto result_or =
      (*runner_or)->RunOne({.kind = schemes::SchemeKind::kModulo,
                            .modulo_radius = 2},
                           0.02);
  ASSERT_TRUE(result_or.ok());
  EXPECT_EQ(result_or->scheme, "MODULO(2)");
  EXPECT_DOUBLE_EQ(result_or->cache_fraction, 0.02);
}

TEST(ExperimentTest, RejectsBadConfigs) {
  ExperimentConfig config = SmallConfig();
  config.schemes.clear();
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());

  config = SmallConfig();
  config.cache_fractions = {0.0};
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());

  config = SmallConfig();
  config.cache_fractions = {1.5};
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());

  config = SmallConfig();
  config.workload.num_objects = 0;
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());
}

TEST(ExperimentTest, FormatSweepTableLaysOutSchemesAndSizes) {
  std::vector<RunResult> results;
  for (double f : {0.01, 0.10}) {
    for (const char* s : {"LRU", "Coordinated"}) {
      RunResult r;
      r.scheme = s;
      r.cache_fraction = f;
      r.metrics.avg_latency = f * 10;
      results.push_back(r);
    }
  }
  const std::string table = FormatSweepTable(
      results, "latency",
      [](const MetricsSummary& m) { return m.avg_latency; });
  EXPECT_NE(table.find("LRU"), std::string::npos);
  EXPECT_NE(table.find("Coordinated"), std::string::npos);
  EXPECT_NE(table.find("1.00%"), std::string::npos);
  EXPECT_NE(table.find("10.00%"), std::string::npos);
  // Row order: ascending cache size.
  EXPECT_LT(table.find("1.00%"), table.find("10.00%"));
}

TEST(ExperimentTest, WriteResultsCsvRoundTrip) {
  std::vector<RunResult> results;
  RunResult r;
  r.scheme = "LRU";
  r.cache_fraction = 0.01;
  r.capacity_bytes = 12345;
  r.metrics.requests = 100;
  r.metrics.avg_latency = 0.5;
  r.metrics.byte_hit_ratio = 0.25;
  results.push_back(r);
  r.scheme = "Coordinated";
  results.push_back(r);

  const std::string path = ::testing::TempDir() + "/results.csv";
  ASSERT_TRUE(WriteResultsCsv(results, path).ok());
  std::ifstream in(path);
  std::string header, line1, line2, extra;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_NE(header.find("scheme,cache_fraction"), std::string::npos);
  EXPECT_NE(header.find("byte_hit_ratio"), std::string::npos);
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line1)));
  EXPECT_NE(line1.find("LRU,0.01,12345,100,0.5"), std::string::npos);
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line2)));
  EXPECT_NE(line2.find("Coordinated"), std::string::npos);
  EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)));
  std::remove(path.c_str());
}

TEST(ExperimentTest, WriteResultsCsvBadPathFails) {
  EXPECT_FALSE(
      WriteResultsCsv({}, "/nonexistent_dir_xyz/results.csv").ok());
}

// The parallel sweep contract: RunAll with N workers is bit-identical to
// the sequential legacy path, cell for cell, for every architecture.
void ExpectParallelMatchesSequential(ExperimentConfig config) {
  config.jobs = 1;
  auto seq_runner = ExperimentRunner::Create(config);
  ASSERT_TRUE(seq_runner.ok()) << seq_runner.status();
  auto seq_or = (*seq_runner)->RunAll();
  ASSERT_TRUE(seq_or.ok()) << seq_or.status();

  config.jobs = 4;
  auto par_runner = ExperimentRunner::Create(config);
  ASSERT_TRUE(par_runner.ok()) << par_runner.status();
  auto par_or = (*par_runner)->RunAll();
  ASSERT_TRUE(par_or.ok()) << par_or.status();

  const std::vector<RunResult>& seq = *seq_or;
  const std::vector<RunResult>& par = *par_or;
  ASSERT_EQ(par.size(), seq.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i) + " (" + seq[i].scheme + ")");
    EXPECT_EQ(par[i].scheme, seq[i].scheme);
    EXPECT_DOUBLE_EQ(par[i].cache_fraction, seq[i].cache_fraction);
    EXPECT_EQ(par[i].capacity_bytes, seq[i].capacity_bytes);
    const MetricsSummary& a = par[i].metrics;
    const MetricsSummary& b = seq[i].metrics;
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
    EXPECT_DOUBLE_EQ(a.avg_response_ratio, b.avg_response_ratio);
    EXPECT_DOUBLE_EQ(a.byte_hit_ratio, b.byte_hit_ratio);
    EXPECT_DOUBLE_EQ(a.hit_ratio, b.hit_ratio);
    EXPECT_DOUBLE_EQ(a.avg_traffic_byte_hops, b.avg_traffic_byte_hops);
    EXPECT_DOUBLE_EQ(a.avg_hops, b.avg_hops);
    EXPECT_DOUBLE_EQ(a.avg_load_bytes, b.avg_load_bytes);
    EXPECT_DOUBLE_EQ(a.read_load_share, b.read_load_share);
    EXPECT_DOUBLE_EQ(a.stale_hit_ratio, b.stale_hit_ratio);
    EXPECT_EQ(a.total_bytes_requested, b.total_bytes_requested);
    EXPECT_EQ(a.bytes_from_caches, b.bytes_from_caches);
    // wall_seconds/requests_per_sec are timing, not part of the contract.
  }
}

TEST(ExperimentTest, ParallelRunAllMatchesSequentialHierarchical) {
  ExperimentConfig config = SmallConfig();
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated},
                    {.kind = schemes::SchemeKind::kLncr}};
  ExpectParallelMatchesSequential(config);
}

TEST(ExperimentTest, ParallelRunAllMatchesSequentialEnRoute) {
  ExperimentConfig config = SmallConfig();
  config.network.architecture = Architecture::kEnRoute;
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kModulo,
                     .modulo_radius = 2},
                    {.kind = schemes::SchemeKind::kCoordinated}};
  ExpectParallelMatchesSequential(config);
}

TEST(ExperimentTest, ResolveJobsHonorsExplicitRequest) {
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(7), std::min(7, hw));
  // 0 resolves from the environment / hardware; it is always >= 1.
  EXPECT_GE(ResolveJobs(0), 1);
}

TEST(ExperimentTest, ResolveJobsClampsToHardwareConcurrency) {
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  // A forced value beyond the machine is clamped, never honored.
  EXPECT_EQ(ResolveJobs(hw), hw);
  EXPECT_EQ(ResolveJobs(hw + 13), hw);
  EXPECT_EQ(ResolveJobs(100000), hw);
}

TEST(ExperimentTest, DeterministicAcrossRunners) {
  auto a = ExperimentRunner::Create(SmallConfig());
  auto b = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  auto ra = (*a)->RunOne({.kind = schemes::SchemeKind::kLru}, 0.02);
  auto rb = (*b)->RunOne({.kind = schemes::SchemeKind::kLru}, 0.02);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_DOUBLE_EQ(ra->metrics.avg_latency, rb->metrics.avg_latency);
  EXPECT_DOUBLE_EQ(ra->metrics.byte_hit_ratio, rb->metrics.byte_hit_ratio);
}

}  // namespace
}  // namespace cascache::sim
