#include "sim/experiment.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace cascache::sim {
namespace {

ExperimentConfig SmallConfig() {
  ExperimentConfig config;
  config.network.architecture = Architecture::kHierarchical;
  config.network.tree.depth = 3;
  config.workload.num_objects = 300;
  config.workload.num_requests = 20000;
  config.workload.num_clients = 50;
  config.workload.num_servers = 10;
  config.workload.seed = 5;
  config.cache_fractions = {0.01, 0.05};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated}};
  return config;
}

TEST(ExperimentTest, RunAllProducesOneRowPerCell) {
  auto runner_or = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  ASSERT_EQ(results_or->size(), 4u);  // 2 sizes x 2 schemes.
  for (const RunResult& r : *results_or) {
    EXPECT_GT(r.metrics.requests, 0u);
    EXPECT_GT(r.capacity_bytes, 0u);
    EXPECT_GE(r.metrics.byte_hit_ratio, 0.0);
    EXPECT_LE(r.metrics.byte_hit_ratio, 1.0);
    EXPECT_GE(r.metrics.avg_latency, 0.0);
  }
}

TEST(ExperimentTest, LargerCachesNeverHurtHitRatio) {
  auto runner_or = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(runner_or.ok());
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok());
  // Results ordered: (0.01, LRU), (0.01, Coord), (0.05, LRU), (0.05, Coord).
  const auto& r = *results_or;
  EXPECT_GT(r[2].metrics.byte_hit_ratio, r[0].metrics.byte_hit_ratio);
  EXPECT_LE(r[2].metrics.avg_latency, r[0].metrics.avg_latency);
}

TEST(ExperimentTest, RunOneMatchesLabel) {
  auto runner_or = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(runner_or.ok());
  auto result_or =
      (*runner_or)->RunOne({.kind = schemes::SchemeKind::kModulo,
                            .modulo_radius = 2},
                           0.02);
  ASSERT_TRUE(result_or.ok());
  EXPECT_EQ(result_or->scheme, "MODULO(2)");
  EXPECT_DOUBLE_EQ(result_or->cache_fraction, 0.02);
}

TEST(ExperimentTest, RejectsBadConfigs) {
  ExperimentConfig config = SmallConfig();
  config.schemes.clear();
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());

  config = SmallConfig();
  config.cache_fractions = {0.0};
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());

  config = SmallConfig();
  config.cache_fractions = {1.5};
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());

  config = SmallConfig();
  config.workload.num_objects = 0;
  EXPECT_FALSE(ExperimentRunner::Create(config).ok());
}

TEST(ExperimentTest, FormatSweepTableLaysOutSchemesAndSizes) {
  std::vector<RunResult> results;
  for (double f : {0.01, 0.10}) {
    for (const char* s : {"LRU", "Coordinated"}) {
      RunResult r;
      r.scheme = s;
      r.cache_fraction = f;
      r.metrics.avg_latency = f * 10;
      results.push_back(r);
    }
  }
  const std::string table = FormatSweepTable(
      results, "latency",
      [](const MetricsSummary& m) { return m.avg_latency; });
  EXPECT_NE(table.find("LRU"), std::string::npos);
  EXPECT_NE(table.find("Coordinated"), std::string::npos);
  EXPECT_NE(table.find("1.00%"), std::string::npos);
  EXPECT_NE(table.find("10.00%"), std::string::npos);
  // Row order: ascending cache size.
  EXPECT_LT(table.find("1.00%"), table.find("10.00%"));
}

TEST(ExperimentTest, WriteResultsCsvRoundTrip) {
  std::vector<RunResult> results;
  RunResult r;
  r.scheme = "LRU";
  r.cache_fraction = 0.01;
  r.capacity_bytes = 12345;
  r.metrics.requests = 100;
  r.metrics.avg_latency = 0.5;
  r.metrics.byte_hit_ratio = 0.25;
  results.push_back(r);
  r.scheme = "Coordinated";
  results.push_back(r);

  const std::string path = ::testing::TempDir() + "/results.csv";
  ASSERT_TRUE(WriteResultsCsv(results, path).ok());
  std::ifstream in(path);
  std::string header, line1, line2, extra;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_NE(header.find("scheme,cache_fraction"), std::string::npos);
  EXPECT_NE(header.find("byte_hit_ratio"), std::string::npos);
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line1)));
  EXPECT_NE(line1.find("LRU,0.01,12345,100,0.5"), std::string::npos);
  ASSERT_TRUE(static_cast<bool>(std::getline(in, line2)));
  EXPECT_NE(line2.find("Coordinated"), std::string::npos);
  EXPECT_FALSE(static_cast<bool>(std::getline(in, extra)));
  std::remove(path.c_str());
}

TEST(ExperimentTest, WriteResultsCsvBadPathFails) {
  EXPECT_FALSE(
      WriteResultsCsv({}, "/nonexistent_dir_xyz/results.csv").ok());
}

TEST(ExperimentTest, DeterministicAcrossRunners) {
  auto a = ExperimentRunner::Create(SmallConfig());
  auto b = ExperimentRunner::Create(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  auto ra = (*a)->RunOne({.kind = schemes::SchemeKind::kLru}, 0.02);
  auto rb = (*b)->RunOne({.kind = schemes::SchemeKind::kLru}, 0.02);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_DOUBLE_EQ(ra->metrics.avg_latency, rb->metrics.avg_latency);
  EXPECT_DOUBLE_EQ(ra->metrics.byte_hit_ratio, rb->metrics.byte_hit_ratio);
}

}  // namespace
}  // namespace cascache::sim
