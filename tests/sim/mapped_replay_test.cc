// Mapped-replay equivalence: replaying a workload through the v2
// mmap path (WriteTrace -> MappedTrace -> ExperimentRunner::
// CreateFromTrace) must be bit-identical to generating and replaying
// it in RAM. Anchored against tests/data/pipeline_golden.csv — the
// same golden file the pipeline-equivalence test pins — by re-deriving
// its `enroute_all` case through the mapping, so any divergence in the
// zero-copy span plumbing (chunked replay, warm-up splits, page
// release) shows up as a golden mismatch, not just an internal
// inconsistency.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "trace/trace_io.h"

namespace cascache {
namespace {

std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The golden matrix's workload (must match pipeline_equivalence_test).
trace::WorkloadParams GoldenWorkloadParams() {
  trace::WorkloadParams w;
  w.num_objects = 1500;
  w.num_requests = 12'000;
  w.num_clients = 200;
  w.num_servers = 40;
  return w;
}

std::vector<schemes::SchemeSpec> AllSchemes() {
  std::vector<schemes::SchemeSpec> specs(7);
  specs[0].kind = schemes::SchemeKind::kLru;
  specs[1].kind = schemes::SchemeKind::kModulo;
  specs[2].kind = schemes::SchemeKind::kLncr;
  specs[3].kind = schemes::SchemeKind::kCoordinated;
  specs[4].kind = schemes::SchemeKind::kGds;
  specs[5].kind = schemes::SchemeKind::kLfu;
  specs[6].kind = schemes::SchemeKind::kStatic;
  return specs;
}

sim::ExperimentConfig EnrouteAllConfig() {
  sim::ExperimentConfig cfg;
  cfg.network.architecture = sim::Architecture::kEnRoute;
  cfg.workload = GoldenWorkloadParams();
  cfg.cache_fractions = {0.01, 0.03};
  cfg.schemes = AllSchemes();
  cfg.jobs = 1;
  return cfg;
}

/// Serializes one cell the way the golden file does
/// (`case,label,field,value` with %.17g doubles), restricted to the
/// fields AddSummaryRows emits.
void AddSummaryRows(std::vector<std::string>* rows, const std::string& label,
                    const sim::MetricsSummary& m) {
  const auto add = [&](const std::string& field, const std::string& value) {
    rows->push_back("enroute_all," + label + "," + field + "," + value);
  };
  add("requests", std::to_string(m.requests));
  add("avg_latency", FmtDouble(m.avg_latency));
  add("avg_response_ratio", FmtDouble(m.avg_response_ratio));
  add("byte_hit_ratio", FmtDouble(m.byte_hit_ratio));
  add("hit_ratio", FmtDouble(m.hit_ratio));
  add("avg_traffic_byte_hops", FmtDouble(m.avg_traffic_byte_hops));
  add("avg_hops", FmtDouble(m.avg_hops));
  add("avg_load_bytes", FmtDouble(m.avg_load_bytes));
  add("read_load_share", FmtDouble(m.read_load_share));
  add("avg_write_bytes", FmtDouble(m.avg_write_bytes));
  add("total_bytes_requested", std::to_string(m.total_bytes_requested));
  add("bytes_from_caches", std::to_string(m.bytes_from_caches));
  add("stale_hit_ratio", FmtDouble(m.stale_hit_ratio));
  add("copies_expired", std::to_string(m.copies_expired));
  add("copies_invalidated", std::to_string(m.copies_invalidated));
}

std::vector<std::string> GoldenEnrouteRows() {
  std::ifstream in(std::string(CASCACHE_TEST_DATA_DIR) +
                   "/pipeline_golden.csv");
  std::vector<std::string> rows;
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("enroute_all,", 0) == 0) rows.push_back(line);
  }
  return rows;
}

std::vector<std::string> RowsFromResults(
    const std::vector<sim::RunResult>& results) {
  std::vector<std::string> rows;
  for (const sim::RunResult& r : results) {
    char label[64];
    std::snprintf(label, sizeof(label), "%s@%g", r.scheme.c_str(),
                  r.cache_fraction);
    AddSummaryRows(&rows, label, r.metrics);
  }
  return rows;
}

class MappedReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // One file per test: ctest runs tests in parallel processes, and
    // truncating a trace another process has mapped raises SIGBUS.
    trace_path_ =
        ::testing::TempDir() + "/mapped_replay_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name() +
        ".cctr";
    auto workload_or = trace::GenerateWorkload(GoldenWorkloadParams());
    ASSERT_TRUE(workload_or.ok()) << workload_or.status();
    ASSERT_TRUE(trace::WriteTrace(*workload_or, trace_path_).ok());
    golden_ = GoldenEnrouteRows();
    ASSERT_FALSE(golden_.empty()) << "missing enroute_all golden rows";
  }

  void TearDown() override { std::remove(trace_path_.c_str()); }

  void ExpectMatchesGolden(const std::vector<sim::RunResult>& results) {
    const std::vector<std::string> rows = RowsFromResults(results);
    ASSERT_EQ(rows.size(), golden_.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ(rows[i], golden_[i]) << "mapped replay diverged at row " << i;
    }
  }

  std::string trace_path_;
  std::vector<std::string> golden_;
};

TEST_F(MappedReplayTest, MmapReplayReproducesGoldenBitForBit) {
  auto runner_or =
      sim::ExperimentRunner::CreateFromTrace(EnrouteAllConfig(), trace_path_);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  ASSERT_NE((*runner_or)->mapped_trace(), nullptr)
      << "a v2 trace must take the mmap path";
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  ExpectMatchesGolden(*results_or);
}

TEST_F(MappedReplayTest, PageReleaseReplayIsStillBitIdentical) {
  sim::ExperimentConfig cfg = EnrouteAllConfig();
  cfg.release_trace_pages = true;
  auto runner_or = sim::ExperimentRunner::CreateFromTrace(cfg, trace_path_);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  ExpectMatchesGolden(*results_or);
}

TEST_F(MappedReplayTest, ParallelCellsShareOneMappingDeterministically) {
  sim::ExperimentConfig cfg = EnrouteAllConfig();
  cfg.jobs = 4;
  auto runner_or = sim::ExperimentRunner::CreateFromTrace(cfg, trace_path_);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  ExpectMatchesGolden(*results_or);
}

TEST_F(MappedReplayTest, V1TraceFallsBackToInRamLoad) {
  const std::string v1_path = ::testing::TempDir() + "/mapped_replay_v1.cctr";
  auto workload_or = trace::GenerateWorkload(GoldenWorkloadParams());
  ASSERT_TRUE(workload_or.ok());
  ASSERT_TRUE(trace::WriteTraceV1(*workload_or, v1_path).ok());

  auto runner_or =
      sim::ExperimentRunner::CreateFromTrace(EnrouteAllConfig(), v1_path);
  ASSERT_TRUE(runner_or.ok()) << runner_or.status();
  EXPECT_EQ((*runner_or)->mapped_trace(), nullptr);
  auto results_or = (*runner_or)->RunAll();
  ASSERT_TRUE(results_or.ok()) << results_or.status();
  ExpectMatchesGolden(*results_or);
  std::remove(v1_path.c_str());
}

}  // namespace
}  // namespace cascache
