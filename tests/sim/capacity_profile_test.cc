// Tests for heterogeneous per-level cache provisioning
// (SimOptions::level_capacity_growth).

#include <gtest/gtest.h>

#include "schemes/lru_scheme.h"
#include "sim/experiment.h"
#include "sim/simulator.h"

namespace cascache::sim {
namespace {

trace::Workload SmallWorkload() {
  trace::WorkloadParams params;
  params.num_objects = 500;
  params.num_requests = 10'000;
  params.num_clients = 50;
  params.num_servers = 10;
  params.seed = 9;
  auto workload_or = trace::GenerateWorkload(params);
  CASCACHE_CHECK_OK(workload_or.status());
  return std::move(workload_or).value();
}

std::unique_ptr<Network> HierNetwork(const trace::ObjectCatalog* catalog) {
  NetworkParams params;
  params.architecture = Architecture::kHierarchical;
  auto net_or = Network::Build(params, catalog);
  CASCACHE_CHECK_OK(net_or.status());
  return std::move(net_or).value();
}

TEST(CapacityProfileTest, NodeLevelsExposed) {
  const trace::Workload workload = SmallWorkload();
  auto network = HierNetwork(&workload.catalog);
  EXPECT_EQ(network->NodeLevel(0), 3);  // Root.
  EXPECT_EQ(network->MaxNodeLevel(), 3);
  int leaves = 0;
  for (topology::NodeId v = 0; v < network->num_nodes(); ++v) {
    if (network->NodeLevel(v) == 0) ++leaves;
  }
  EXPECT_EQ(leaves, 27);
}

TEST(CapacityProfileTest, EnRouteIsFlat) {
  const trace::Workload workload = SmallWorkload();
  NetworkParams params;
  params.architecture = Architecture::kEnRoute;
  auto net_or = Network::Build(params, &workload.catalog);
  ASSERT_TRUE(net_or.ok());
  EXPECT_EQ((*net_or)->MaxNodeLevel(), 0);
  EXPECT_EQ((*net_or)->NodeLevel(42), 0);
}

TEST(CapacityProfileTest, GrowthConcentratesCapacityUpward) {
  const trace::Workload workload = SmallWorkload();
  auto network = HierNetwork(&workload.catalog);
  schemes::LruScheme scheme;
  SimOptions options;
  options.level_capacity_growth = 4.0;
  Simulator simulator(network.get(), &scheme, options);
  ASSERT_TRUE(simulator.Run(workload, 100'000).ok());

  const uint64_t root_capacity = network->node(0)->capacity_bytes();
  uint64_t leaf_capacity = 0;
  uint64_t total = 0;
  for (topology::NodeId v = 0; v < network->num_nodes(); ++v) {
    total += network->node(v)->capacity_bytes();
    if (network->NodeLevel(v) == 0) {
      leaf_capacity = network->node(v)->capacity_bytes();
    }
  }
  // Root holds 4^3 = 64x a leaf's capacity.
  EXPECT_NEAR(static_cast<double>(root_capacity) /
                  static_cast<double>(leaf_capacity),
              64.0, 1.0);
  // Total budget preserved (40 nodes x 100k), up to rounding.
  EXPECT_NEAR(static_cast<double>(total), 40.0 * 100'000, 64.0);
}

TEST(CapacityProfileTest, ShrinkConcentratesCapacityAtLeaves) {
  const trace::Workload workload = SmallWorkload();
  auto network = HierNetwork(&workload.catalog);
  schemes::LruScheme scheme;
  SimOptions options;
  options.level_capacity_growth = 0.5;
  Simulator simulator(network.get(), &scheme, options);
  ASSERT_TRUE(simulator.Run(workload, 100'000).ok());
  uint64_t leaf_capacity = 0;
  for (topology::NodeId v = 0; v < network->num_nodes(); ++v) {
    if (network->NodeLevel(v) == 0) {
      leaf_capacity = network->node(v)->capacity_bytes();
      break;
    }
  }
  EXPECT_GT(leaf_capacity, network->node(0)->capacity_bytes());
}

TEST(CapacityProfileTest, UniformGrowthMatchesPlainConfigure) {
  const trace::Workload workload = SmallWorkload();
  auto network = HierNetwork(&workload.catalog);
  schemes::LruScheme scheme;
  SimOptions options;
  options.level_capacity_growth = 1.0;
  Simulator simulator(network.get(), &scheme, options);
  ASSERT_TRUE(simulator.Run(workload, 12'345).ok());
  for (topology::NodeId v = 0; v < network->num_nodes(); ++v) {
    EXPECT_EQ(network->node(v)->capacity_bytes(), 12'345u);
  }
}

TEST(CapacityProfileTest, RejectsNonPositiveGrowth) {
  const trace::Workload workload = SmallWorkload();
  auto network = HierNetwork(&workload.catalog);
  schemes::LruScheme scheme;
  SimOptions options;
  options.level_capacity_growth = 0.0;
  Simulator simulator(network.get(), &scheme, options);
  EXPECT_FALSE(simulator.Run(workload, 1000).ok());
}

}  // namespace
}  // namespace cascache::sim
