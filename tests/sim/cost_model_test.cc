#include "sim/cost_model.h"

#include <gtest/gtest.h>

#include "schemes/coordinated_scheme.h"
#include "sim/simulator.h"
#include "testing/scenario.h"

namespace cascache::sim {
namespace {

using cascache::testing::At;
using cascache::testing::MakeCatalog;
using cascache::testing::MakeChainNetwork;

CostModel Make(CostModelKind kind, double alpha = 1.0, double beta = 1.0) {
  CostModelParams params;
  params.kind = kind;
  params.alpha = alpha;
  params.beta = beta;
  auto model_or = CostModel::Create(params);
  CASCACHE_CHECK_OK(model_or.status());
  return *model_or;
}

TEST(CostModelTest, LatencyScalesDelayBySize) {
  const CostModel model = Make(CostModelKind::kLatency);
  // delay 0.1 s, object 2x the mean size -> cost 0.2.
  EXPECT_DOUBLE_EQ(model.LinkCost(0.1, 2000, 1000.0), 0.2);
  EXPECT_DOUBLE_EQ(model.LinkCost(0.1, 500, 1000.0), 0.05);
}

TEST(CostModelTest, BandwidthIgnoresDelay) {
  const CostModel model = Make(CostModelKind::kBandwidth);
  EXPECT_DOUBLE_EQ(model.LinkCost(0.1, 2000, 1000.0), 2.0);
  EXPECT_DOUBLE_EQ(model.LinkCost(99.0, 2000, 1000.0), 2.0);
}

TEST(CostModelTest, HopsIsConstant) {
  const CostModel model = Make(CostModelKind::kHops);
  EXPECT_DOUBLE_EQ(model.LinkCost(0.1, 2000, 1000.0), 1.0);
  EXPECT_DOUBLE_EQ(model.LinkCost(5.0, 1, 1000.0), 1.0);
}

TEST(CostModelTest, WeightedCombinesBoth) {
  const CostModel model = Make(CostModelKind::kWeighted, 2.0, 3.0);
  // 2 * (0.1 * 2) + 3 * 2 = 6.4.
  EXPECT_DOUBLE_EQ(model.LinkCost(0.1, 2000, 1000.0), 6.4);
}

TEST(CostModelTest, WeightedRejectsBadWeights) {
  CostModelParams params;
  params.kind = CostModelKind::kWeighted;
  params.alpha = -1.0;
  EXPECT_FALSE(CostModel::Create(params).ok());
  params.alpha = 0.0;
  params.beta = 0.0;
  EXPECT_FALSE(CostModel::Create(params).ok());
}

TEST(CostModelTest, KindNames) {
  EXPECT_STREQ(Make(CostModelKind::kLatency).name(), "latency");
  EXPECT_STREQ(Make(CostModelKind::kBandwidth).name(), "bandwidth");
  EXPECT_STREQ(Make(CostModelKind::kHops).name(), "hops");
  EXPECT_STREQ(Make(CostModelKind::kWeighted).name(), "weighted");
}

// Integration: under the kHops model, the miss penalties recorded by the
// coordinated scheme are hop counts (chain with unit link delays would
// look identical under kLatency, so use growth > 1 to tell them apart).
TEST(CostModelIntegrationTest, HopCostsYieldHopPenalties) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  // Chain with growth 5: link delays 1, 5, 25 (leaf upward), server 125.
  auto network = MakeChainNetwork(&catalog, 4, 1.0, 5.0);
  CacheNodeConfig config;
  config.mode = CacheMode::kCost;
  config.capacity_bytes = 1000;
  config.dcache_entries = 16;
  network->ConfigureCaches(config);

  schemes::CoordinatedScheme scheme;
  SimOptions options;
  options.cost_model.kind = CostModelKind::kHops;
  Simulator simulator(network.get(), &scheme, options);
  simulator.Step(At(1.0, 0), false);

  // Under kHops, the descriptor miss penalties are hop distances to the
  // origin: root = 1, ..., leaf = 4 — independent of the delay growth.
  EXPECT_DOUBLE_EQ(network->node(0)->dcache()->Find(0)->miss_penalty, 1.0);
  EXPECT_DOUBLE_EQ(network->node(3)->dcache()->Find(0)->miss_penalty, 4.0);
}

TEST(CostModelIntegrationTest, LatencyCostsReflectDelayGrowth) {
  trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
  auto network = MakeChainNetwork(&catalog, 4, 1.0, 5.0);
  CacheNodeConfig config;
  config.mode = CacheMode::kCost;
  config.capacity_bytes = 1000;
  config.dcache_entries = 16;
  network->ConfigureCaches(config);

  schemes::CoordinatedScheme scheme;
  Simulator simulator(network.get(), &scheme);  // Default: latency.
  simulator.Step(At(1.0, 0), false);

  // Delays: server link 125, then 25, 5, 1 down the chain.
  EXPECT_DOUBLE_EQ(network->node(0)->dcache()->Find(0)->miss_penalty, 125.0);
  EXPECT_DOUBLE_EQ(network->node(1)->dcache()->Find(0)->miss_penalty, 150.0);
  EXPECT_DOUBLE_EQ(network->node(3)->dcache()->Find(0)->miss_penalty, 156.0);
}

// The metrics stay physical regardless of the optimized cost: latency is
// identical delay-math under every model for the same cache contents.
TEST(CostModelIntegrationTest, MetricsIndependentOfModelOnFirstMiss) {
  for (CostModelKind kind : {CostModelKind::kLatency, CostModelKind::kHops,
                             CostModelKind::kBandwidth}) {
    trace::ObjectCatalog catalog = MakeCatalog({{100, 0}});
    auto network = MakeChainNetwork(&catalog, 4, 1.0, 5.0);
    CacheNodeConfig config;
    config.mode = CacheMode::kCost;
    config.capacity_bytes = 1000;
    config.dcache_entries = 16;
    network->ConfigureCaches(config);
    schemes::CoordinatedScheme scheme;
    SimOptions options;
    options.cost_model.kind = kind;
    Simulator simulator(network.get(), &scheme, options);
    simulator.Step(At(1.0, 0), true);
    // Cold miss: 1 + 5 + 25 tree delays + 125 server link.
    EXPECT_DOUBLE_EQ(simulator.metrics().Summary().avg_latency, 156.0)
        << CostModelKindName(kind);
  }
}

}  // namespace
}  // namespace cascache::sim
