// Two-tier CacheNode tests: unit coverage of the tier contract
// (promotion-on-hit, demote-on-evict, inclusion, Reset) plus a
// differential/property test that drives a tiered LRU-mode CacheNode and
// the RefTieredCache oracle (tests/testing/ref_caches.h) through long
// random churn sequences, comparing every observable at every step.

#include <gtest/gtest.h>

#include <vector>

#include "sim/node.h"
#include "testing/ref_caches.h"
#include "util/random.h"

namespace cascache::sim {
namespace {

using cascache::testing::RefTieredCache;
using trace::ObjectId;
using util::Rng;

CacheNodeConfig TieredLruConfig(uint64_t capacity, double ram_fraction) {
  CacheNodeConfig config;
  config.mode = CacheMode::kLru;
  config.capacity_bytes = capacity;
  config.ram_fraction = ram_fraction;
  return config;
}

TEST(TieredNodeTest, EffectiveRamCapacityResolution) {
  CacheNodeConfig config;
  config.capacity_bytes = 10'000;
  EXPECT_EQ(config.EffectiveRamCapacity(), 0u);  // Untiered by default.
  config.ram_fraction = 0.25;
  EXPECT_EQ(config.EffectiveRamCapacity(), 2'500u);
  config.ram_capacity_bytes = 777;  // Absolute override wins.
  EXPECT_EQ(config.EffectiveRamCapacity(), 777u);
}

TEST(TieredNodeTest, UntieredNodeHasNoRamTier) {
  CacheNode node(0, TieredLruConfig(1'000, 0.0));
  EXPECT_FALSE(node.tiered());
}

TEST(TieredNodeTest, ServeTieredPromotesDiskHitsAndTouchesRamHits) {
  CacheNode node(0, TieredLruConfig(1'000, 0.2));  // RAM tier: 200 bytes.
  ASSERT_TRUE(node.tiered());
  node.lru()->Insert(1, 100);

  // First serve: disk-resident only, so the copy is promoted into RAM.
  CacheNode::TierServe first = node.ServeTiered(1, 100);
  EXPECT_FALSE(first.ram_hit);
  EXPECT_TRUE(first.promoted);
  EXPECT_EQ(first.demotions, 0);
  EXPECT_TRUE(node.ram()->Contains(1));

  // Second serve: straight RAM hit, no promotion.
  CacheNode::TierServe second = node.ServeTiered(1, 100);
  EXPECT_TRUE(second.ram_hit);
  EXPECT_FALSE(second.promoted);
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(TieredNodeTest, PromotionDemotesRamVictimsButKeepsDiskCopies) {
  CacheNode node(0, TieredLruConfig(1'000, 0.2));  // RAM tier: 200 bytes.
  node.lru()->Insert(1, 150);
  node.lru()->Insert(2, 150);
  node.ServeTiered(1, 150);  // Promote 1 into RAM (150/200 used).
  CacheNode::TierServe serve = node.ServeTiered(2, 150);
  EXPECT_FALSE(serve.ram_hit);
  EXPECT_TRUE(serve.promoted);
  EXPECT_EQ(serve.demotions, 1);  // 1 demoted to make room for 2.
  EXPECT_FALSE(node.ram()->Contains(1));
  EXPECT_TRUE(node.lru()->Contains(1));  // Demotion keeps the disk copy.
  EXPECT_TRUE(node.ram()->Contains(2));
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(TieredNodeTest, OversizeObjectServesFromDiskUnpromoted) {
  CacheNode node(0, TieredLruConfig(1'000, 0.1));  // RAM tier: 100 bytes.
  node.lru()->Insert(1, 500);
  CacheNode::TierServe serve = node.ServeTiered(1, 500);
  EXPECT_FALSE(serve.ram_hit);
  EXPECT_FALSE(serve.promoted);
  EXPECT_EQ(serve.demotions, 0);
  EXPECT_FALSE(node.ram()->Contains(1));
}

TEST(TieredNodeTest, DropRamCopiesEnforcesInclusionOnDiskEviction) {
  CacheNode node(0, TieredLruConfig(300, 0.5));  // RAM tier: 150 bytes.
  node.lru()->Insert(1, 150);
  node.lru()->Insert(2, 150);
  node.ServeTiered(1, 150);  // 1 is RAM-resident.

  // Insert 3: disk evicts LRU victims; their RAM copies must go too.
  bool inserted = false;
  const std::vector<ObjectId>& evicted = node.lru()->Insert(3, 200, &inserted);
  ASSERT_TRUE(inserted);
  const int dropped = node.DropRamCopies(evicted);
  EXPECT_EQ(dropped, 1);  // Only 1 was RAM-resident.
  EXPECT_FALSE(node.ram()->Contains(1));
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(TieredNodeTest, EraseObjectDropsBothTiers) {
  CacheNode node(0, TieredLruConfig(1'000, 0.5));
  node.lru()->Insert(1, 100);
  node.ServeTiered(1, 100);
  ASSERT_TRUE(node.ram()->Contains(1));
  EXPECT_TRUE(node.EraseObject(1));
  EXPECT_FALSE(node.Contains(1));
  EXPECT_FALSE(node.ram()->Contains(1));
  EXPECT_TRUE(node.CheckInvariants());
}

TEST(TieredNodeTest, ResetClearsRamTierAndReappliesConfig) {
  CacheNodeConfig config = TieredLruConfig(1'000, 0.2);
  CacheNode node(0, config);
  node.lru()->Insert(1, 100);
  node.ServeTiered(1, 100);
  node.Reset(config);  // Same config: in-place clear.
  EXPECT_TRUE(node.tiered());
  EXPECT_FALSE(node.Contains(1));
  EXPECT_EQ(node.ram()->used_bytes(), 0u);
  EXPECT_TRUE(node.CheckInvariants());

  // Reconfiguring to untiered drops the RAM tier entirely.
  node.Reset(TieredLruConfig(1'000, 0.0));
  EXPECT_FALSE(node.tiered());
}

TEST(TieredNodeTest, TieredCostModeNodeKeepsInclusion) {
  CacheNodeConfig config;
  config.mode = CacheMode::kCost;
  config.capacity_bytes = 1'000;
  config.ram_fraction = 0.3;
  config.dcache_entries = 16;
  CacheNode node(0, config);
  ASSERT_TRUE(node.tiered());
  ASSERT_TRUE(node.InsertCost(1, 200, 5.0, 1.0));
  CacheNode::TierServe serve = node.ServeTiered(1, 200);
  EXPECT_TRUE(serve.promoted);
  EXPECT_TRUE(node.CheckInvariants());
  // Cost-mode eviction path: victims leave RAM too.
  std::vector<ObjectId> evicted;
  for (ObjectId id = 2; id < 10; ++id) {
    ASSERT_TRUE(node.InsertCost(id, 200, 5.0, 2.0, &evicted));
    node.DropRamCopies(evicted);
  }
  EXPECT_TRUE(node.CheckInvariants());
}

// The property/differential test: a tiered LRU-mode CacheNode against
// the RefTieredCache oracle under random placement churn, tier serves,
// coherency drops, and Reset. Every observable — tier outcomes, byte
// accounting, membership in both tiers, eviction victims — must match
// at every step, and the inclusion invariant must hold throughout.
TEST(TieredDifferentialTest, MatchesReferenceUnderRandomChurn) {
  Rng rng(20260808);
  const uint64_t kCapacity = 4'096;
  const double kRamFraction = 0.25;
  CacheNodeConfig config = TieredLruConfig(kCapacity, kRamFraction);
  CacheNode node(0, config);
  RefTieredCache ref(kCapacity, config.EffectiveRamCapacity());
  const ObjectId kIdRange = 160;
  std::vector<uint64_t> sizes(kIdRange, 0);

  for (int step = 0; step < 60'000; ++step) {
    const ObjectId id = static_cast<ObjectId>(rng.NextUint64(kIdRange));
    const double dice = rng.NextDouble(0.0, 1.0);
    if (dice < 0.45) {
      // Placement: new objects get a fresh size, repeats keep theirs
      // (matching the simulator, where an object's size is fixed).
      if (sizes[id] == 0) sizes[id] = 1 + rng.NextUint64(900);
      bool node_inserted = false;
      bool ref_inserted = false;
      const std::vector<ObjectId>& node_evicted =
          node.lru()->Insert(id, sizes[id], &node_inserted);
      node.DropRamCopies(node_evicted);
      const std::vector<ObjectId> ref_evicted =
          ref.Insert(id, sizes[id], &ref_inserted);
      ASSERT_EQ(node_inserted, ref_inserted) << "step " << step;
      ASSERT_EQ(node_evicted, ref_evicted) << "step " << step;
    } else if (dice < 0.8) {
      // Tier serve of a cached object (the simulator only calls
      // ServeTiered on hits) plus the scheme's own disk recency touch.
      if (!ref.Contains(id)) {
        ASSERT_FALSE(node.Contains(id)) << "step " << step;
        continue;
      }
      const CacheNode::TierServe got = node.ServeTiered(id, sizes[id]);
      const RefTieredCache::TierServe want = ref.ServeTiered(id, sizes[id]);
      ASSERT_EQ(got.ram_hit, want.ram_hit) << "step " << step;
      ASSERT_EQ(got.promoted, want.promoted) << "step " << step;
      ASSERT_EQ(got.demotions, want.demotions) << "step " << step;
      node.lru()->Touch(id);
      ref.disk().Touch(id);
    } else if (dice < 0.9) {
      // Coherency-style drop from both tiers.
      ASSERT_EQ(node.EraseObject(id), ref.Erase(id)) << "step " << step;
    } else if (dice < 0.99) {
      ASSERT_EQ(node.Contains(id), ref.Contains(id)) << "step " << step;
      ASSERT_EQ(node.ram()->Contains(id), ref.RamResident(id))
          << "step " << step;
    } else {
      // Cold restart: both sides drop everything, config unchanged.
      node.Reset(config);
      ref.Clear();
    }

    ASSERT_EQ(node.used_bytes(), ref.disk().used_bytes()) << "step " << step;
    ASSERT_EQ(node.ram()->used_bytes(), ref.ram().used_bytes())
        << "step " << step;
    ASSERT_EQ(node.ram()->num_objects(), ref.ram().num_objects())
        << "step " << step;
    if (step % 4'999 == 0) {
      ASSERT_TRUE(node.CheckInvariants()) << "step " << step;
      // Inclusion on the oracle side: every RAM-resident id has a disk
      // copy (probe the full id range; the oracle has no iteration).
      for (ObjectId probe = 0; probe < kIdRange; ++probe) {
        if (ref.RamResident(probe)) {
          ASSERT_TRUE(ref.Contains(probe)) << "step " << step;
        }
      }
    }
  }
  ASSERT_TRUE(node.CheckInvariants());
}

}  // namespace
}  // namespace cascache::sim
