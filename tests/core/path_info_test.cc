#include "core/path_info.h"

#include <gtest/gtest.h>

namespace cascache::core {
namespace {

PathNodeInfo Node(double f, double m, double l, bool has_desc = true,
                  bool feasible = true) {
  PathNodeInfo info;
  info.node = 1;
  info.frequency = f;
  info.miss_penalty = m;
  info.cost_loss = l;
  info.has_descriptor = has_desc;
  info.feasible = feasible;
  return info;
}

TEST(PathInfoTest, EmptyPathGivesEmptyInput) {
  PathInfo info;
  std::vector<int> origin;
  const PlacementInput input = info.ToPlacementInput(&origin);
  EXPECT_TRUE(input.f.empty());
  EXPECT_TRUE(origin.empty());
}

TEST(PathInfoTest, AllCandidatesPassThrough) {
  PathInfo info;
  info.nodes = {Node(5.0, 1.0, 0.1), Node(3.0, 2.0, 0.2),
                Node(2.0, 3.0, 0.3)};
  std::vector<int> origin;
  const PlacementInput input = info.ToPlacementInput(&origin);
  ASSERT_EQ(input.n(), 3u);
  EXPECT_EQ(origin, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(input.f, (std::vector<double>{5.0, 3.0, 2.0}));
  EXPECT_EQ(input.m, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(input.l, (std::vector<double>{0.1, 0.2, 0.3}));
  EXPECT_TRUE(ValidatePlacementInput(input).ok());
}

TEST(PathInfoTest, ExcludesNodesWithoutDescriptor) {
  PathInfo info;
  info.nodes = {Node(5.0, 1.0, 0.1), Node(3.0, 2.0, 0.2, /*has_desc=*/false),
                Node(2.0, 3.0, 0.3)};
  std::vector<int> origin;
  const PlacementInput input = info.ToPlacementInput(&origin);
  ASSERT_EQ(input.n(), 2u);
  EXPECT_EQ(origin, (std::vector<int>{0, 2}));
  EXPECT_EQ(input.m, (std::vector<double>{1.0, 3.0}));
}

TEST(PathInfoTest, ExcludesInfeasibleNodes) {
  PathInfo info;
  info.nodes = {Node(5.0, 1.0, 0.1, true, /*feasible=*/false),
                Node(3.0, 2.0, 0.2)};
  std::vector<int> origin;
  const PlacementInput input = info.ToPlacementInput(&origin);
  ASSERT_EQ(input.n(), 1u);
  EXPECT_EQ(origin, std::vector<int>{1});
}

TEST(PathInfoTest, MonotoneClampRepairsEstimatorNoise) {
  // Estimated frequencies violate f1 >= f2 >= f3; the clamp raises
  // upstream entries so the DP's model assumption holds.
  PathInfo info;
  info.nodes = {Node(1.0, 1.0, 0.0), Node(4.0, 2.0, 0.0),
                Node(2.0, 3.0, 0.0)};
  std::vector<int> origin;
  const PlacementInput input = info.ToPlacementInput(&origin);
  EXPECT_EQ(input.f, (std::vector<double>{4.0, 4.0, 2.0}));
  EXPECT_TRUE(ValidatePlacementInput(input).ok());
}

TEST(PathInfoTest, ClampKeepsAlreadyMonotoneUntouched) {
  PathInfo info;
  info.nodes = {Node(6.0, 1.0, 0.0), Node(4.0, 2.0, 0.0),
                Node(4.0, 3.0, 0.0)};
  std::vector<int> origin;
  const PlacementInput input = info.ToPlacementInput(&origin);
  EXPECT_EQ(input.f, (std::vector<double>{6.0, 4.0, 4.0}));
}

TEST(PathInfoTest, IsCandidatePredicate) {
  EXPECT_TRUE(PathInfo::IsCandidate(Node(1, 1, 1)));
  EXPECT_FALSE(PathInfo::IsCandidate(Node(1, 1, 1, false)));
  EXPECT_FALSE(PathInfo::IsCandidate(Node(1, 1, 1, true, false)));
}

}  // namespace
}  // namespace cascache::core
