#include "core/placement.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace cascache::core {
namespace {

TEST(PlacementValidateTest, AcceptsWellFormedInput) {
  PlacementInput input;
  input.f = {3.0, 2.0, 2.0, 1.0};
  input.m = {1.0, 2.0, 3.0, 4.0};
  input.l = {0.0, 1.0, 0.5, 2.0};
  EXPECT_TRUE(ValidatePlacementInput(input).ok());
}

TEST(PlacementValidateTest, RejectsLengthMismatch) {
  PlacementInput input;
  input.f = {1.0, 1.0};
  input.m = {1.0};
  input.l = {1.0, 1.0};
  EXPECT_FALSE(ValidatePlacementInput(input).ok());
}

TEST(PlacementValidateTest, RejectsIncreasingFrequency) {
  PlacementInput input;
  input.f = {1.0, 2.0};
  input.m = {1.0, 1.0};
  input.l = {0.0, 0.0};
  EXPECT_FALSE(ValidatePlacementInput(input).ok());
}

TEST(PlacementValidateTest, RejectsNegativeValues) {
  PlacementInput input;
  input.f = {1.0};
  input.m = {-1.0};
  input.l = {0.0};
  EXPECT_FALSE(ValidatePlacementInput(input).ok());
}

TEST(PlacementDpTest, EmptyPathYieldsEmptyPlacement) {
  PlacementInput input;
  const PlacementResult result = SolvePlacementDP(input);
  EXPECT_EQ(result.gain, 0.0);
  EXPECT_TRUE(result.selected.empty());
}

TEST(PlacementDpTest, SingleBeneficialNode) {
  // One cache: gain = f*m - l = 5*2 - 3 = 7 > 0 -> place.
  PlacementInput input;
  input.f = {5.0};
  input.m = {2.0};
  input.l = {3.0};
  const PlacementResult result = SolvePlacementDP(input);
  EXPECT_DOUBLE_EQ(result.gain, 7.0);
  EXPECT_EQ(result.selected, std::vector<int>{0});
}

TEST(PlacementDpTest, SingleUnprofitableNode) {
  PlacementInput input;
  input.f = {1.0};
  input.m = {2.0};
  input.l = {3.0};  // f*m = 2 < l.
  const PlacementResult result = SolvePlacementDP(input);
  EXPECT_DOUBLE_EQ(result.gain, 0.0);
  EXPECT_TRUE(result.selected.empty());
}

TEST(PlacementDpTest, CachingDependencyReducesUpstreamValue) {
  // Two caches, free space everywhere (l = 0). Caching downstream covers
  // all its requests; upstream only earns on the residual f1 - f2.
  PlacementInput input;
  input.f = {10.0, 8.0};
  input.m = {1.0, 3.0};
  input.l = {0.0, 0.0};
  // Both: (10-8)*1 + 8*3 = 26. Only A2: 10*3=30? No: A2's f is 8 -> 24.
  // Only A1: 10*1 = 10. Both wins (26).
  const PlacementResult result = SolvePlacementDP(input);
  EXPECT_DOUBLE_EQ(result.gain, 26.0);
  EXPECT_EQ(result.selected, (std::vector<int>{0, 1}));
}

TEST(PlacementDpTest, SkipsExpensiveMiddleNode) {
  PlacementInput input;
  input.f = {8.0, 5.0, 3.0, 2.0};
  input.m = {1.0, 2.5, 4.0, 6.0};
  input.l = {6.0, 2.0, 9.0, 1.5};
  // Hand-checked optimum: {A2, A4} with gain (5-2)*2.5-2 + 2*6-1.5 = 16.
  const PlacementResult result = SolvePlacementDP(input);
  EXPECT_DOUBLE_EQ(result.gain, 16.0);
  EXPECT_EQ(result.selected, (std::vector<int>{1, 3}));
}

TEST(PlacementDpTest, ZeroMissPenaltyNeverSelected) {
  // m = 0 nodes (e.g. the cache co-located with the origin server) can
  // never produce positive gain and must not be selected even with l = 0.
  PlacementInput input;
  input.f = {5.0, 4.0};
  input.m = {0.0, 2.0};
  input.l = {0.0, 0.0};
  const PlacementResult result = SolvePlacementDP(input);
  EXPECT_EQ(result.selected, std::vector<int>{1});
  EXPECT_DOUBLE_EQ(result.gain, 8.0);
}

TEST(PlacementDpTest, EvaluateMatchesDefinition) {
  PlacementInput input;
  input.f = {8.0, 5.0, 3.0};
  input.m = {1.0, 2.0, 3.0};
  input.l = {0.5, 0.25, 0.125};
  // {0, 2}: (8-3)*1 - 0.5 + (3-0)*3 - 0.125 = 4.5 + 8.875 = 13.375.
  EXPECT_DOUBLE_EQ(EvaluatePlacement(input, {0, 2}), 13.375);
  EXPECT_DOUBLE_EQ(EvaluatePlacement(input, {}), 0.0);
}

TEST(PlacementDpTest, GainNeverNegative) {
  PlacementInput input;
  input.f = {1.0, 1.0, 1.0};
  input.m = {0.1, 0.1, 0.1};
  input.l = {100.0, 100.0, 100.0};
  const PlacementResult result = SolvePlacementDP(input);
  EXPECT_DOUBLE_EQ(result.gain, 0.0);
  EXPECT_TRUE(result.selected.empty());
}

// ---------------------------------------------------------------------------
// Property tests: DP vs exhaustive search on random instances.
// ---------------------------------------------------------------------------

PlacementInput RandomInput(util::Rng* rng, size_t n, bool monotone_f) {
  PlacementInput input;
  input.f.resize(n);
  input.m.resize(n);
  input.l.resize(n);
  for (size_t i = 0; i < n; ++i) {
    input.f[i] = rng->NextDouble(0.0, 10.0);
    input.m[i] = rng->NextDouble(0.0, 5.0);
    // Mix of free caches (l = 0) and contended ones.
    input.l[i] = rng->NextBool(0.3) ? 0.0 : rng->NextDouble(0.0, 20.0);
  }
  if (monotone_f) {
    std::sort(input.f.rbegin(), input.f.rend());
  }
  return input;
}

class PlacementDpVsBruteForce
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(PlacementDpVsBruteForce, OptimalGainAgrees) {
  const auto [n, monotone] = GetParam();
  util::Rng rng(static_cast<uint64_t>(n) * 31 + (monotone ? 7 : 0));
  for (int trial = 0; trial < 200; ++trial) {
    const PlacementInput input =
        RandomInput(&rng, static_cast<size_t>(n), monotone);
    const PlacementResult dp = SolvePlacementDP(input);
    const PlacementResult brute = SolvePlacementBruteForce(input);
    ASSERT_NEAR(dp.gain, brute.gain, 1e-9)
        << "n=" << n << " trial=" << trial;
    // The DP's own selection must evaluate to its reported gain.
    ASSERT_NEAR(EvaluatePlacement(input, dp.selected), dp.gain, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PlacementDpVsBruteForce,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 8, 12),
                       ::testing::Bool()));

// Theorem 2: every selected index satisfies f*m >= l (monotone f).
TEST(PlacementPropertyTest, SelectedNodesAreLocallyBeneficial) {
  util::Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const PlacementInput input = RandomInput(&rng, 10, /*monotone_f=*/true);
    const PlacementResult result = SolvePlacementDP(input);
    for (int v : input.f.empty() ? std::vector<int>{} : result.selected) {
      EXPECT_TRUE(LocallyBeneficial(input.f[static_cast<size_t>(v)],
                                    input.m[static_cast<size_t>(v)],
                                    input.l[static_cast<size_t>(v)]))
          << "trial " << trial << " index " << v;
    }
  }
}

// Adding a node to the path can only improve (or keep) the optimal gain.
TEST(PlacementPropertyTest, GainMonotoneInPathExtension) {
  util::Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    PlacementInput input = RandomInput(&rng, 8, /*monotone_f=*/true);
    PlacementInput prefix = input;
    prefix.f.pop_back();
    prefix.m.pop_back();
    prefix.l.pop_back();
    const double full = SolvePlacementDP(input).gain;
    // The prefix problem has boundary f_{n+1}=0 as well, so its optimum is
    // achievable in the full problem by ignoring the last node *only* when
    // the last f is 0; in general compare against prefix with the last
    // frequency forced to 0 — instead we check the weaker, always-true
    // property: the full optimum is at least the gain of the prefix's
    // optimal selection evaluated in the full problem.
    const PlacementResult prefix_result = SolvePlacementDP(prefix);
    const double prefix_in_full =
        EvaluatePlacement(input, prefix_result.selected);
    EXPECT_GE(full + 1e-9, prefix_in_full);
  }
}

// Scaling all costs (m and l) by a constant scales the optimal gain.
TEST(PlacementPropertyTest, GainScalesLinearlyWithCosts) {
  util::Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    PlacementInput input = RandomInput(&rng, 6, /*monotone_f=*/true);
    PlacementInput scaled = input;
    for (double& m : scaled.m) m *= 3.0;
    for (double& l : scaled.l) l *= 3.0;
    EXPECT_NEAR(SolvePlacementDP(scaled).gain,
                3.0 * SolvePlacementDP(input).gain, 1e-9);
  }
}

TEST(PlacementPropertyTest, SelectionIsStrictlyAscending) {
  util::Rng rng(555);
  for (int trial = 0; trial < 200; ++trial) {
    const PlacementInput input = RandomInput(&rng, 12, true);
    const PlacementResult result = SolvePlacementDP(input);
    for (size_t i = 1; i < result.selected.size(); ++i) {
      EXPECT_LT(result.selected[i - 1], result.selected[i]);
    }
    for (int v : result.selected) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 12);
    }
  }
}

// With ample space everywhere (l = 0), positive frequencies and strictly
// increasing miss penalties (the physical situation: m is a cumulative
// link-cost sum), caching at the requesting cache (last node) is always
// strictly optimal.
TEST(PlacementPropertyTest, FreeSpacePlacesAtClientEdge) {
  util::Rng rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    PlacementInput input = RandomInput(&rng, 8, true);
    double cum = 0.0;
    for (double& m : input.m) {
      cum += rng.NextDouble(0.01, 2.0);
      m = cum;  // Strictly increasing toward the client.
    }
    for (double& l : input.l) l = 0.0;
    for (double& f : input.f) f = std::max(f, 0.01);
    const PlacementResult result = SolvePlacementDP(input);
    ASSERT_FALSE(result.selected.empty());
    EXPECT_EQ(result.selected.back(), 7);
  }
}

TEST(PlacementDpTest, LargePathRuns) {
  // O(n^2) DP on a long path; sanity only (no oracle).
  util::Rng rng(42);
  PlacementInput input = RandomInput(&rng, 500, true);
  const PlacementResult result = SolvePlacementDP(input);
  EXPECT_GE(result.gain, 0.0);
  EXPECT_NEAR(EvaluatePlacement(input, result.selected), result.gain, 1e-6);
}

}  // namespace
}  // namespace cascache::core
