// Tests for the non-stationary workload model library (workload_model.h):
// determinism and statistical properties of each component (popularity
// drift, flash crowds, diurnal cycles, client sessions, regional skew),
// the procedural 10^8-scale catalog, and the v3 trace round-trip.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/experiment.h"
#include "trace/mapped_trace.h"
#include "trace/synthetic.h"
#include "trace/trace_io.h"
#include "trace/workload_model.h"

namespace cascache::trace {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + name;
}

WorkloadParams BaseParams() {
  WorkloadParams params;
  params.num_objects = 1000;
  params.num_requests = 120'000;
  params.num_clients = 50;
  params.num_servers = 10;
  params.request_rate = 100.0;  // ~1200 s of simulated time.
  params.seed = 33;
  return params;
}

void ExpectIdenticalRequests(const Workload& a, const Workload& b) {
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (size_t i = 0; i < a.requests.size(); ++i) {
    ASSERT_EQ(a.requests[i].object, b.requests[i].object) << "request " << i;
    ASSERT_EQ(a.requests[i].client, b.requests[i].client) << "request " << i;
    ASSERT_DOUBLE_EQ(a.requests[i].time, b.requests[i].time)
        << "request " << i;
  }
}

/// One parameter set per model component plus the full combination.
std::vector<WorkloadParams> AllModelConfigs() {
  std::vector<WorkloadParams> configs;
  {
    WorkloadParams p = BaseParams();
    p.model.drift_mode = DriftMode::kRotate;
    p.model.drift_half_life_s = 600.0;
    configs.push_back(p);
  }
  {
    WorkloadParams p = BaseParams();
    p.model.drift_mode = DriftMode::kShuffle;
    p.model.drift_half_life_s = 300.0;
    configs.push_back(p);
  }
  {
    WorkloadParams p = BaseParams();
    p.model.flash_rate_per_hour = 30.0;
    p.model.flash_objects = 16;
    p.model.flash_peak_share = 0.5;
    configs.push_back(p);
  }
  {
    WorkloadParams p = BaseParams();
    p.model.diurnal_amplitude = 0.8;
    p.model.diurnal_period_s = 1200.0;
    configs.push_back(p);
  }
  {
    WorkloadParams p = BaseParams();
    p.model.session_prob = 0.5;
    p.model.session_mean_run = 20.0;
    configs.push_back(p);
  }
  {
    WorkloadParams p = BaseParams();
    p.model.regions = 4;
    p.model.regional_bias = 0.9;
    configs.push_back(p);
  }
  {
    WorkloadParams p = BaseParams();
    p.model.drift_mode = DriftMode::kRotate;
    p.model.drift_half_life_s = 600.0;
    p.model.flash_rate_per_hour = 10.0;
    p.model.diurnal_amplitude = 0.5;
    p.model.diurnal_period_s = 1200.0;
    p.model.session_prob = 0.3;
    p.model.regions = 4;
    p.model.regional_bias = 0.5;
    configs.push_back(p);
  }
  return configs;
}

TEST(WorkloadModelDeterminismTest, EveryModelIsAPureFunctionOfTheSeed) {
  for (const WorkloadParams& params : AllModelConfigs()) {
    ASSERT_TRUE(params.model.enabled());
    auto a = GenerateWorkload(params);
    auto b = GenerateWorkload(params);
    ASSERT_TRUE(a.ok() && b.ok());
    ExpectIdenticalRequests(*a, *b);
  }
}

TEST(WorkloadModelDeterminismTest, SeedChangesTheStream) {
  WorkloadParams params = AllModelConfigs().back();
  auto a = GenerateWorkload(params);
  params.seed += 1;
  auto b = GenerateWorkload(params);
  ASSERT_TRUE(a.ok() && b.ok());
  size_t diffs = 0;
  for (size_t i = 0; i < a->requests.size(); ++i) {
    diffs += a->requests[i].object != b->requests[i].object;
  }
  EXPECT_GT(diffs, a->requests.size() / 4);
}

TEST(WorkloadModelDeterminismTest, StreamedFileMatchesInRamGeneration) {
  // GenerateWorkloadToFile must consume the identical RNG stream, so the
  // trace read back is bit-for-bit the in-RAM workload. Checked both for
  // a materialized (v2) and a procedural (v3) catalog.
  for (const bool procedural : {false, true}) {
    WorkloadParams params = AllModelConfigs().back();
    params.procedural_catalog = procedural;
    const std::string path = TempPath("wm_streamed.cctr");
    ASSERT_TRUE(GenerateWorkloadToFile(params, path).ok());
    auto from_file = ReadTrace(path);
    auto in_ram = GenerateWorkload(params);
    ASSERT_TRUE(from_file.ok() && in_ram.ok());
    ExpectIdenticalRequests(*from_file, *in_ram);
    ASSERT_EQ(from_file->catalog.num_objects(), in_ram->catalog.num_objects());
    for (ObjectId id = 0; id < in_ram->catalog.num_objects(); id += 97) {
      ASSERT_EQ(from_file->catalog.size(id), in_ram->catalog.size(id));
      ASSERT_EQ(from_file->catalog.server(id), in_ram->catalog.server(id));
    }
    std::remove(path.c_str());
  }
}

/// Most frequent object over requests [begin, end).
ObjectId TopObject(const Workload& workload, size_t begin, size_t end) {
  std::vector<uint64_t> counts(workload.catalog.num_objects(), 0);
  for (size_t i = begin; i < end; ++i) ++counts[workload.requests[i].object];
  ObjectId top = 0;
  for (ObjectId id = 1; id < counts.size(); ++id) {
    if (counts[id] > counts[top]) top = id;
  }
  return top;
}

uint32_t CircularDistance(uint32_t a, uint32_t b, uint32_t n) {
  const uint32_t d = a > b ? a - b : b - a;
  return std::min(d, n - d);
}

TEST(DriftTest, RotationTracksTheConfiguredHalfLife) {
  // rotate mode shifts the identity of rank r by
  // offset(t) = floor(t / (2 * half_life) * n) mod n. With the trace
  // spanning ~2 half-lives, the hot set completes one full lap: the
  // top object of a late window sits near the predicted offset.
  WorkloadParams params = BaseParams();
  params.model.drift_mode = DriftMode::kRotate;
  params.model.drift_half_life_s = 600.0;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok());
  const size_t n_req = workload->requests.size();
  const uint32_t n = params.num_objects;

  // Early window: offset near 0, so the hottest object is near id 0.
  const ObjectId early = TopObject(*workload, 0, n_req / 20);
  EXPECT_LT(CircularDistance(early, 0, n), n / 8);

  // Window centered at ~92.5% of the trace: predicted offset from the
  // window's center time.
  const size_t begin = n_req * 9 / 10, end = n_req * 95 / 100;
  const double center_time = (workload->requests[begin].time +
                              workload->requests[end - 1].time) /
                             2.0;
  const uint32_t predicted = static_cast<uint32_t>(
      static_cast<uint64_t>(center_time / (2.0 * 600.0) * n) % n);
  const ObjectId late = TopObject(*workload, begin, end);
  EXPECT_LT(CircularDistance(late, predicted, n), n / 8)
      << "late top " << late << " predicted " << predicted;
}

/// L1 distance between the normalized popularity histograms of the two
/// trace halves — higher means the hot set drifted.
double HalfDrift(const Workload& workload) {
  const size_t half = workload.requests.size() / 2;
  std::vector<double> first(workload.catalog.num_objects(), 0.0);
  std::vector<double> second(workload.catalog.num_objects(), 0.0);
  for (size_t i = 0; i < workload.requests.size(); ++i) {
    (i < half ? first : second)[workload.requests[i].object] += 1.0;
  }
  double drift = 0.0;
  for (size_t i = 0; i < first.size(); ++i) {
    drift += std::abs(first[i] / half -
                      second[i] / (workload.requests.size() - half));
  }
  return drift;
}

TEST(DriftTest, ShuffleModeMovesTheHotSet) {
  WorkloadParams params = BaseParams();
  auto stationary = GenerateWorkload(params);
  params.model.drift_mode = DriftMode::kShuffle;
  params.model.drift_half_life_s = 300.0;
  auto drifted = GenerateWorkload(params);
  ASSERT_TRUE(stationary.ok() && drifted.ok());
  EXPECT_GT(HalfDrift(*drifted), HalfDrift(*stationary) * 2.0);
}

TEST(DriftTest, ShuffleRefusesHugeCatalogs) {
  WorkloadParams params = BaseParams();
  params.num_objects = kDriftShuffleMaxObjects + 1;
  params.model.drift_mode = DriftMode::kShuffle;
  EXPECT_FALSE(GenerateWorkload(params).ok());
}

TEST(DriftTest, RejectsCombiningWithLegacyChurn) {
  WorkloadParams params = BaseParams();
  params.model.drift_mode = DriftMode::kRotate;
  params.churn_swaps_per_hour = 100.0;
  EXPECT_FALSE(GenerateWorkload(params).ok());
}

/// Max share of any single 16-object contiguous id range within
/// consecutive windows of `window` requests.
double MaxWindowRunShare(const Workload& workload, size_t window,
                         uint32_t run) {
  double max_share = 0.0;
  const uint32_t n = workload.catalog.num_objects();
  for (size_t begin = 0; begin + window <= workload.requests.size();
       begin += window) {
    std::vector<uint32_t> counts(n, 0);
    for (size_t i = begin; i < begin + window; ++i) {
      ++counts[workload.requests[i].object];
    }
    uint64_t sum = 0;
    for (uint32_t i = 0; i < run && i < n; ++i) sum += counts[i];
    uint64_t best = sum;
    for (uint32_t lo = 1; lo + run <= n; ++lo) {
      sum += counts[lo + run - 1];
      sum -= counts[lo - 1];
      best = std::max(best, sum);
    }
    max_share = std::max(
        max_share, static_cast<double>(best) / static_cast<double>(window));
  }
  return max_share;
}

TEST(FlashCrowdTest, PeaksConcentrateRequestsOnContiguousRuns) {
  WorkloadParams params = BaseParams();
  auto base = GenerateWorkload(params);
  params.model.flash_rate_per_hour = 30.0;
  params.model.flash_objects = 16;
  params.model.flash_peak_share = 0.5;
  params.model.flash_ramp_s = 60.0;
  params.model.flash_decay_s = 120.0;
  auto flash = GenerateWorkload(params);
  ASSERT_TRUE(base.ok() && flash.ok());
  const double base_share = MaxWindowRunShare(*base, 5000, 16);
  const double flash_share = MaxWindowRunShare(*flash, 5000, 16);
  EXPECT_GT(flash_share, base_share + 0.1)
      << "flash " << flash_share << " base " << base_share;
}

TEST(DiurnalTest, RequestRateFollowsTheCycle) {
  WorkloadParams params = BaseParams();
  params.model.diurnal_amplitude = 0.8;
  params.model.diurnal_period_s = 1200.0;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok());
  // rate(t) = base * (1 + 0.8 sin(2 pi t / P)): the first half-period
  // runs at ~1.51x base, the second at ~0.49x, so phase-folded counts
  // split roughly 3:1.
  uint64_t rising = 0, falling = 0;
  for (const Request& req : workload->requests) {
    (std::fmod(req.time, 1200.0) < 600.0 ? rising : falling) += 1;
  }
  EXPECT_GT(static_cast<double>(rising),
            1.8 * static_cast<double>(falling));
}

TEST(SessionTest, RunsAreSequentialPerClient) {
  WorkloadParams params = BaseParams();
  params.model.session_prob = 0.5;
  params.model.session_mean_run = 20.0;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok());
  // A session continuation requests the successor object of the same
  // client's previous request (segment streaming). With p=0.5 and mean
  // run 20, most requests are continuations.
  std::vector<ObjectId> prev(params.num_clients, UINT32_MAX);
  uint64_t continuations = 0;
  const uint32_t n = params.num_objects;
  for (const Request& req : workload->requests) {
    if (prev[req.client] != UINT32_MAX &&
        req.object == (prev[req.client] + 1) % n) {
      ++continuations;
    }
    prev[req.client] = req.object;
  }
  const double fraction = static_cast<double>(continuations) /
                          static_cast<double>(workload->requests.size());
  EXPECT_GT(fraction, 0.5);
  // And sessions must not appear when disabled.
  params.model.session_prob = 0.0;
  auto off = GenerateWorkload(params);
  ASSERT_TRUE(off.ok());
  std::fill(prev.begin(), prev.end(), UINT32_MAX);
  uint64_t accidental = 0;
  for (const Request& req : off->requests) {
    if (prev[req.client] != UINT32_MAX &&
        req.object == (prev[req.client] + 1) % n) {
      ++accidental;
    }
    prev[req.client] = req.object;
  }
  EXPECT_LT(accidental * 10, continuations);
}

TEST(RegionalTest, EachRegionPrefersItsShiftedHotSet) {
  WorkloadParams params = BaseParams();
  params.model.regions = 4;
  params.model.regional_bias = 0.9;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok());
  const uint32_t n = params.num_objects;
  const uint32_t stride = n / 4;  // Region r's hot set starts at r*stride.
  // Fraction of each region's requests landing in its own shifted head
  // (top decile of the region's rank order).
  std::vector<uint64_t> home(4, 0), total(4, 0);
  for (const Request& req : workload->requests) {
    const uint32_t region = req.client % 4;
    ++total[region];
    const uint32_t unshifted = (req.object + n - region * stride) % n;
    if (unshifted < n / 10) ++home[region];
  }
  for (uint32_t r = 0; r < 4; ++r) {
    ASSERT_GT(total[r], 0u);
    EXPECT_GT(static_cast<double>(home[r]) / total[r], 0.25)
        << "region " << r;
  }
  // Without the model, non-zero regions see almost nothing in their
  // shifted head (those are unpopular ids under the global law).
  params.model.regions = 0;
  params.model.regional_bias = 0.0;
  auto off = GenerateWorkload(params);
  ASSERT_TRUE(off.ok());
  uint64_t off_home = 0, off_total = 0;
  for (const Request& req : off->requests) {
    if (req.client % 4 != 1) continue;
    ++off_total;
    if ((req.object + n - stride) % n < n / 10) ++off_home;
  }
  EXPECT_LT(static_cast<double>(off_home) / off_total, 0.1);
}

TEST(WorkloadModelValidationTest, RejectsBadKnobs) {
  WorkloadParams params = BaseParams();
  params.model.drift_mode = DriftMode::kRotate;
  params.model.drift_half_life_s = 0.0;
  EXPECT_FALSE(GenerateWorkload(params).ok());

  params = BaseParams();
  params.model.flash_rate_per_hour = 10.0;
  params.model.flash_peak_share = 1.5;
  EXPECT_FALSE(GenerateWorkload(params).ok());

  params = BaseParams();
  params.model.diurnal_amplitude = 1.0;  // Must stay strictly below 1.
  EXPECT_FALSE(GenerateWorkload(params).ok());

  params = BaseParams();
  params.model.session_prob = 0.5;
  params.model.session_mean_run = 0.5;
  EXPECT_FALSE(GenerateWorkload(params).ok());

  params = BaseParams();
  params.model.regional_bias = 0.5;
  params.model.regions = 0;
  EXPECT_FALSE(GenerateWorkload(params).ok());

  params = BaseParams();
  params.model.regions = 2000;  // More regions than objects.
  params.model.regional_bias = 0.5;
  EXPECT_FALSE(GenerateWorkload(params).ok());
}

TEST(ProceduralCatalogTest, DeterministicAndBounded) {
  CatalogModel model;
  model.seed = 7;
  ObjectCatalog a, b;
  a.BuildProcedural(model, 1'000'000, 500);
  b.BuildProcedural(model, 1'000'000, 500);
  ASSERT_TRUE(a.procedural());
  ASSERT_EQ(a.num_objects(), 1'000'000u);
  for (ObjectId id = 0; id < a.num_objects(); id += 9973) {
    ASSERT_EQ(a.size(id), b.size(id));
    ASSERT_EQ(a.server(id), b.server(id));
    ASSERT_GE(a.size(id), model.min_size);
    ASSERT_LE(a.size(id), model.max_size);
    ASSERT_LT(a.server(id), 500u);
  }
  EXPECT_GT(a.total_bytes(), 0u);
}

TEST(ProceduralCatalogTest, HundredMillionObjectsStayCompact) {
  // The 10^8-object catalog the issue targets: representable as a 64 KiB
  // quantile table, not per-object arrays. Lookups stay deterministic
  // across independent builds.
  CatalogModel model;
  model.seed = 42;
  ObjectCatalog huge;
  huge.BuildProcedural(model, 100'000'000, 1000);
  ASSERT_EQ(huge.num_objects(), 100'000'000u);
  // The only per-catalog storage is the quantile table.
  EXPECT_EQ(huge.size_quantiles().size(), 65536u);
  ObjectCatalog again;
  again.BuildProcedural(model, 100'000'000, 1000);
  for (ObjectId id = 0; id < huge.num_objects(); id += 7'654'321) {
    ASSERT_EQ(huge.size(id), again.size(id));
    ASSERT_EQ(huge.server(id), again.server(id));
  }
}

TEST(ProceduralCatalogTest, RejectsCorruptModels) {
  CatalogModel model;
  model.lognormal_mu = std::nan("");
  EXPECT_FALSE(ValidateCatalogModel(model).ok());
  model = CatalogModel{};
  model.min_size = 0;
  EXPECT_FALSE(ValidateCatalogModel(model).ok());
  model = CatalogModel{};
  model.pareto_tail_prob = 2.0;
  EXPECT_FALSE(ValidateCatalogModel(model).ok());
  EXPECT_TRUE(ValidateCatalogModel(CatalogModel{}).ok());
}

TEST(TraceV3Test, RoundTripsThroughReaderAndMapping) {
  WorkloadParams params = BaseParams();
  params.num_requests = 20'000;
  params.procedural_catalog = true;
  params.model.drift_mode = DriftMode::kRotate;
  params.model.drift_half_life_s = 600.0;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok());
  ASSERT_TRUE(workload->catalog.procedural());

  const std::string path = TempPath("wm_v3.cctr");
  ASSERT_TRUE(WriteTrace(*workload, path).ok());

  auto read = ReadTrace(path);
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read->catalog.procedural());
  ExpectIdenticalRequests(*workload, *read);

  auto mapped = MappedTrace::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_EQ((*mapped)->num_requests(), workload->requests.size());
  const ObjectCatalog& catalog = (*mapped)->catalog();
  ASSERT_EQ(catalog.num_objects(), workload->catalog.num_objects());
  for (ObjectId id = 0; id < catalog.num_objects(); id += 83) {
    ASSERT_EQ(catalog.size(id), workload->catalog.size(id));
    ASSERT_EQ(catalog.server(id), workload->catalog.server(id));
  }
  RequestSpan span = (*mapped)->requests();
  for (size_t i = 0; i < span.size(); i += 997) {
    ASSERT_EQ(span[i].object, workload->requests[i].object);
    ASSERT_DOUBLE_EQ(span[i].time, workload->requests[i].time);
  }
  std::remove(path.c_str());
}

TEST(TraceV3Test, RejectsCorruptModelBlock) {
  WorkloadParams params = BaseParams();
  params.num_requests = 1'000;
  params.procedural_catalog = true;
  const std::string path = TempPath("wm_v3_bad.cctr");
  ASSERT_TRUE(GenerateWorkloadToFile(params, path).ok());

  // The CatalogModel block sits at byte 32; lognormal_mu is its second
  // field (offset 40). Smash it with a NaN.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  const double bad = std::nan("");
  ASSERT_EQ(std::fseek(f, 40, SEEK_SET), 0);
  ASSERT_EQ(std::fwrite(&bad, sizeof(bad), 1, f), 1u);
  std::fclose(f);

  EXPECT_FALSE(ReadTrace(path).ok());
  EXPECT_FALSE(MappedTrace::Open(path).ok());
  std::remove(path.c_str());
}

TEST(TraceV3Test, SummaryReportsPerEpochSlopes) {
  WorkloadParams params = BaseParams();
  params.num_requests = 60'000;
  params.procedural_catalog = true;
  const std::string path = TempPath("wm_v3_sum.cctr");
  ASSERT_TRUE(GenerateWorkloadToFile(params, path).ok());
  SummarizeOptions options;
  options.epochs = 3;
  auto summary = SummarizeTrace(path, options);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->format_version, kTraceVersion3);
  ASSERT_EQ(summary->epoch_zipf_theta.size(), 3u);
  // A stationary trace has a flat per-epoch slope profile.
  for (double theta : summary->epoch_zipf_theta) {
    EXPECT_NEAR(theta, summary->epoch_zipf_theta[0], 0.05);
    EXPECT_GT(theta, 0.4);
  }
  options.epochs = 0;
  auto flat = SummarizeTrace(path, options);
  ASSERT_TRUE(flat.ok());
  EXPECT_TRUE(flat->epoch_zipf_theta.empty());
  std::remove(path.c_str());
}

TEST(ParallelReplayTest, DriftWorkloadIsBitIdenticalAcrossJobCounts) {
  sim::ExperimentConfig config;
  config.workload.num_objects = 500;
  config.workload.num_requests = 30'000;
  config.workload.num_clients = 40;
  config.workload.num_servers = 10;
  config.workload.seed = 9;
  config.workload.model.drift_mode = DriftMode::kRotate;
  config.workload.model.drift_half_life_s = 120.0;
  config.cache_fractions = {0.02};
  config.schemes = {{.kind = schemes::SchemeKind::kLru},
                    {.kind = schemes::SchemeKind::kCoordinated}};

  config.jobs = 1;
  auto sequential = sim::ExperimentRunner::Create(config);
  ASSERT_TRUE(sequential.ok());
  auto seq_results = (*sequential)->RunAll();
  ASSERT_TRUE(seq_results.ok());

  config.jobs = 4;
  auto parallel = sim::ExperimentRunner::Create(config);
  ASSERT_TRUE(parallel.ok());
  auto par_results = (*parallel)->RunAll();
  ASSERT_TRUE(par_results.ok());

  ASSERT_EQ(seq_results->size(), par_results->size());
  for (size_t i = 0; i < seq_results->size(); ++i) {
    const sim::RunResult& s = (*seq_results)[i];
    const sim::RunResult& p = (*par_results)[i];
    EXPECT_EQ(s.scheme, p.scheme);
    EXPECT_EQ(s.metrics.requests, p.metrics.requests);
    EXPECT_DOUBLE_EQ(s.metrics.byte_hit_ratio, p.metrics.byte_hit_ratio);
    EXPECT_DOUBLE_EQ(s.metrics.avg_latency, p.metrics.avg_latency);
  }
}

}  // namespace
}  // namespace cascache::trace
