#include "trace/object_catalog.h"

#include <gtest/gtest.h>

namespace cascache::trace {
namespace {

TEST(ObjectCatalogTest, EmptyCatalog) {
  ObjectCatalog catalog;
  EXPECT_EQ(catalog.num_objects(), 0u);
  EXPECT_EQ(catalog.total_bytes(), 0u);
  EXPECT_EQ(catalog.mean_size(), 0.0);
  EXPECT_EQ(catalog.num_servers(), 0u);
}

TEST(ObjectCatalogTest, AddAssignsSequentialIds) {
  ObjectCatalog catalog;
  EXPECT_EQ(catalog.Add(100, 0), 0u);
  EXPECT_EQ(catalog.Add(200, 1), 1u);
  EXPECT_EQ(catalog.Add(300, 0), 2u);
  EXPECT_EQ(catalog.num_objects(), 3u);
}

TEST(ObjectCatalogTest, LookupsAndTotals) {
  ObjectCatalog catalog;
  catalog.Add(100, 2);
  catalog.Add(300, 5);
  EXPECT_EQ(catalog.size(0), 100u);
  EXPECT_EQ(catalog.size(1), 300u);
  EXPECT_EQ(catalog.server(0), 2u);
  EXPECT_EQ(catalog.server(1), 5u);
  EXPECT_EQ(catalog.total_bytes(), 400u);
  EXPECT_DOUBLE_EQ(catalog.mean_size(), 200.0);
  EXPECT_EQ(catalog.num_servers(), 6u);  // Max server id + 1.
}

}  // namespace
}  // namespace cascache::trace
