#include "trace/trace_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

namespace cascache::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  Workload SmallWorkload() {
    WorkloadParams params;
    params.num_objects = 100;
    params.num_requests = 5000;
    params.num_clients = 20;
    params.num_servers = 5;
    params.seed = 3;
    auto workload_or = GenerateWorkload(params);
    CASCACHE_CHECK_OK(workload_or.status());
    return std::move(workload_or).value();
  }
};

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("roundtrip.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());

  auto read_or = ReadTrace(path);
  ASSERT_TRUE(read_or.ok()) << read_or.status();
  const Workload& read = *read_or;

  ASSERT_EQ(read.catalog.num_objects(), original.catalog.num_objects());
  for (ObjectId id = 0; id < original.catalog.num_objects(); ++id) {
    EXPECT_EQ(read.catalog.size(id), original.catalog.size(id));
    EXPECT_EQ(read.catalog.server(id), original.catalog.server(id));
  }
  ASSERT_EQ(read.requests.size(), original.requests.size());
  for (size_t i = 0; i < original.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(read.requests[i].time, original.requests[i].time);
    EXPECT_EQ(read.requests[i].client, original.requests[i].client);
    EXPECT_EQ(read.requests[i].object, original.requests[i].object);
  }
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, ReadMissingFileFails) {
  auto read_or = ReadTrace(TempPath("does_not_exist.cctr"));
  EXPECT_FALSE(read_or.ok());
  EXPECT_EQ(read_or.status().code(), util::StatusCode::kIoError);
}

TEST_F(TraceIoTest, ReadRejectsBadMagic) {
  const std::string path = TempPath("badmagic.cctr");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE and some garbage";
  }
  auto read_or = ReadTrace(path);
  EXPECT_FALSE(read_or.ok());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, ReadRejectsTruncatedFile) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("truncated.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());
  // Truncate to half.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto read_or = ReadTrace(path);
  EXPECT_FALSE(read_or.ok());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, CsvExportHasHeaderAndRows) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("trace.csv");
  ASSERT_TRUE(WriteTraceCsv(original, path).ok());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header, "time,client,object,size,server");
  size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, original.requests.size());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, StatsAreConsistent) {
  const Workload workload = SmallWorkload();
  const TraceStats stats = ComputeTraceStats(workload);
  EXPECT_EQ(stats.num_requests, workload.requests.size());
  EXPECT_EQ(stats.num_objects, workload.catalog.num_objects());
  EXPECT_LE(stats.num_objects_referenced, stats.num_objects);
  EXPECT_GT(stats.num_objects_referenced, 0u);
  EXPECT_LE(stats.num_clients_active, 20u);
  EXPECT_GT(stats.total_bytes_requested, 0u);
  EXPECT_GT(stats.estimated_zipf_theta, 0.3);
  EXPECT_GT(stats.top10pct_request_share, 0.2);
  EXPECT_LE(stats.top10pct_request_share, 1.0);
  EXPECT_DOUBLE_EQ(stats.duration_seconds, workload.Duration());
}

TEST_F(TraceIoTest, StreamingReaderMatchesBulkRead) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("stream.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());

  auto reader_or = TraceReader::Open(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status();
  TraceReader& reader = **reader_or;
  EXPECT_EQ(reader.num_requests(), original.requests.size());
  EXPECT_EQ(reader.catalog().num_objects(), original.catalog.num_objects());
  EXPECT_EQ(reader.catalog().total_bytes(), original.catalog.total_bytes());

  Request req;
  size_t i = 0;
  for (;;) {
    auto more_or = reader.Next(&req);
    ASSERT_TRUE(more_or.ok());
    if (!*more_or) break;
    ASSERT_LT(i, original.requests.size());
    EXPECT_DOUBLE_EQ(req.time, original.requests[i].time);
    EXPECT_EQ(req.client, original.requests[i].client);
    EXPECT_EQ(req.object, original.requests[i].object);
    ++i;
  }
  EXPECT_EQ(i, original.requests.size());
  EXPECT_EQ(reader.requests_read(), original.requests.size());
  // Subsequent reads keep reporting end-of-stream.
  auto again = reader.Next(&req);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, StreamingReaderDetectsTruncation) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("stream_trunc.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    // Keep the header+catalog plus a few requests, then cut mid-record.
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 7));
  }
  auto reader_or = TraceReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  Request req;
  util::Status error;
  for (;;) {
    auto more_or = (*reader_or)->Next(&req);
    if (!more_or.ok()) {
      error = more_or.status();
      break;
    }
    ASSERT_TRUE(*more_or) << "should hit the truncation error before EOF";
  }
  EXPECT_EQ(error.code(), util::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, StreamingReaderRejectsMissingFile) {
  EXPECT_FALSE(TraceReader::Open(TempPath("nope.cctr")).ok());
}

TEST_F(TraceIoTest, WritesVersion2WithAlignedRequestRegion) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("v2_layout.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  ASSERT_GE(bytes.size(), kTraceV2HeaderBytes);
  EXPECT_EQ(bytes.substr(0, 4), "CCTR");
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  EXPECT_EQ(version, kTraceVersion2);
  uint64_t request_offset = 0;
  std::memcpy(&request_offset, bytes.data() + 24, sizeof(request_offset));
  EXPECT_EQ(request_offset % kTraceRequestAlign, 0u);
  EXPECT_EQ(bytes.size(),
            request_offset + original.requests.size() * sizeof(Request));
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, V1TraceStillReadable) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("legacy.cctr");
  ASSERT_TRUE(WriteTraceV1(original, path).ok());

  auto reader_or = TraceReader::Open(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status();
  EXPECT_EQ((*reader_or)->version(), kTraceVersion1);

  auto read_or = ReadTrace(path);
  ASSERT_TRUE(read_or.ok()) << read_or.status();
  ASSERT_EQ(read_or->requests.size(), original.requests.size());
  ASSERT_EQ(read_or->catalog.num_objects(), original.catalog.num_objects());
  for (size_t i = 0; i < original.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(read_or->requests[i].time, original.requests[i].time);
    EXPECT_EQ(read_or->requests[i].client, original.requests[i].client);
    EXPECT_EQ(read_or->requests[i].object, original.requests[i].object);
  }
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, TraceWriterPatchesRequestCount) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("patched.cctr");
  {
    // Declare a wrong expected count; Close() must fix the header.
    auto writer_or = TraceWriter::Create(path, original.catalog,
                                         /*expected_requests=*/9999999);
    ASSERT_TRUE(writer_or.ok()) << writer_or.status();
    TraceWriter& writer = **writer_or;
    ASSERT_TRUE(
        writer.Append(original.requests.data(), original.requests.size())
            .ok());
    EXPECT_EQ(writer.requests_written(), original.requests.size());
    ASSERT_TRUE(writer.Close().ok());
    EXPECT_TRUE(writer.Close().ok()) << "Close must be idempotent";
  }
  auto read_or = ReadTrace(path);
  ASSERT_TRUE(read_or.ok()) << read_or.status();
  EXPECT_EQ(read_or->requests.size(), original.requests.size());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, TraceWriterRejectsBadRecords) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("writer_reject.cctr");
  auto writer_or = TraceWriter::Create(path, original.catalog);
  ASSERT_TRUE(writer_or.ok());
  TraceWriter& writer = **writer_or;

  Request out_of_range{0.0, 0, original.catalog.num_objects()};
  EXPECT_FALSE(writer.Append(out_of_range).ok());

  ASSERT_TRUE(writer.Append(Request{5.0, 0, 0}).ok());
  Request backwards{4.0, 0, 0};
  EXPECT_FALSE(writer.Append(backwards).ok()) << "time must be monotone";
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, UnbufferedReaderMatchesBuffered) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("unbuffered.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());

  TraceReader::Options legacy;
  legacy.buffer_bytes = 0;  // one fread per field, the pre-buffering path
  auto reader_or = TraceReader::Open(path, legacy);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status();
  Request req;
  size_t i = 0;
  for (;;) {
    auto more_or = (*reader_or)->Next(&req);
    ASSERT_TRUE(more_or.ok());
    if (!*more_or) break;
    ASSERT_LT(i, original.requests.size());
    EXPECT_DOUBLE_EQ(req.time, original.requests[i].time);
    EXPECT_EQ(req.client, original.requests[i].client);
    EXPECT_EQ(req.object, original.requests[i].object);
    ++i;
  }
  EXPECT_EQ(i, original.requests.size());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, StreamingGenerationMatchesInMemory) {
  WorkloadParams params;
  params.num_objects = 300;
  params.num_requests = 20000;
  params.num_clients = 40;
  params.num_servers = 8;
  params.seed = 11;
  params.temporal_locality = 0.3;
  params.churn_swaps_per_hour = 50.0;

  auto in_ram_or = GenerateWorkload(params);
  ASSERT_TRUE(in_ram_or.ok());
  const Workload& in_ram = *in_ram_or;

  const std::string path = TempPath("streamed.cctr");
  ASSERT_TRUE(GenerateWorkloadToFile(params, path).ok());
  auto streamed_or = ReadTrace(path);
  ASSERT_TRUE(streamed_or.ok()) << streamed_or.status();
  const Workload& streamed = *streamed_or;

  ASSERT_EQ(streamed.catalog.num_objects(), in_ram.catalog.num_objects());
  for (ObjectId id = 0; id < in_ram.catalog.num_objects(); ++id) {
    ASSERT_EQ(streamed.catalog.size(id), in_ram.catalog.size(id));
    ASSERT_EQ(streamed.catalog.server(id), in_ram.catalog.server(id));
  }
  ASSERT_EQ(streamed.requests.size(), in_ram.requests.size());
  for (size_t i = 0; i < in_ram.requests.size(); ++i) {
    ASSERT_EQ(std::memcmp(&streamed.requests[i], &in_ram.requests[i],
                          sizeof(Request)),
              0)
        << "record " << i << " differs: streaming generation must be "
        << "bit-identical to GenerateWorkload";
  }
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, CsvConvertRoundTrip) {
  const Workload original = SmallWorkload();
  const std::string csv = TempPath("convert_in.csv");
  const std::string cctr = TempPath("convert_out.cctr");
  ASSERT_TRUE(WriteTraceCsv(original, csv).ok());
  ASSERT_TRUE(ConvertCsvTrace(csv, cctr).ok());

  auto read_or = ReadTrace(cctr);
  ASSERT_TRUE(read_or.ok()) << read_or.status();
  const Workload& converted = *read_or;
  ASSERT_EQ(converted.requests.size(), original.requests.size());
  // Only referenced objects survive conversion (dense renumbering), and
  // each request must keep its client and its object's size/server.
  const TraceStats stats = ComputeTraceStats(original);
  EXPECT_EQ(converted.catalog.num_objects(), stats.num_objects_referenced);
  for (size_t i = 0; i < original.requests.size(); ++i) {
    EXPECT_EQ(converted.requests[i].client, original.requests[i].client);
    EXPECT_EQ(converted.catalog.size(converted.requests[i].object),
              original.catalog.size(original.requests[i].object));
    EXPECT_EQ(converted.catalog.server(converted.requests[i].object),
              original.catalog.server(original.requests[i].object));
  }
  std::remove(csv.c_str());
  std::remove(cctr.c_str());
}

TEST_F(TraceIoTest, CsvConvertRemapsSparseIds) {
  const std::string csv = TempPath("sparse.csv");
  {
    std::ofstream out(csv);
    out << "time,client,object,size,server\n"
        << "0.5,3,900,1000,2\n"
        << "1.0,1,17,500,0\n"
        << "1.5,3,900,1000,2\n";
  }
  const std::string cctr = TempPath("sparse.cctr");
  ASSERT_TRUE(ConvertCsvTrace(csv, cctr).ok());
  auto read_or = ReadTrace(cctr);
  ASSERT_TRUE(read_or.ok()) << read_or.status();
  ASSERT_EQ(read_or->catalog.num_objects(), 2u);
  ASSERT_EQ(read_or->requests.size(), 3u);
  EXPECT_EQ(read_or->requests[0].object, 0u);  // 900 seen first
  EXPECT_EQ(read_or->requests[1].object, 1u);  // then 17
  EXPECT_EQ(read_or->requests[2].object, 0u);
  EXPECT_EQ(read_or->catalog.size(0), 1000u);
  EXPECT_EQ(read_or->catalog.server(0), 2u);
  EXPECT_EQ(read_or->catalog.size(1), 500u);
  std::remove(csv.c_str());
  std::remove(cctr.c_str());
}

TEST_F(TraceIoTest, CsvConvertRejectsConflictsAndGarbage) {
  const std::string cctr = TempPath("bad.cctr");
  {
    const std::string csv = TempPath("conflict.csv");
    std::ofstream(csv) << "0.5,1,7,100,0\n0.6,1,7,200,0\n";
    const util::Status status = ConvertCsvTrace(csv, cctr);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("conflicting size/server"),
              std::string::npos)
        << status;
    std::remove(csv.c_str());
  }
  {
    const std::string csv = TempPath("garbage.csv");
    std::ofstream(csv) << "0.5,1,7,100,0\nnot,a,valid,row,!\n";
    EXPECT_FALSE(ConvertCsvTrace(csv, cctr).ok());
    std::remove(csv.c_str());
  }
  {
    const std::string csv = TempPath("empty.csv");
    std::ofstream(csv) << "time,client,object,size,server\n";
    EXPECT_FALSE(ConvertCsvTrace(csv, cctr).ok());
    std::remove(csv.c_str());
  }
  std::remove(cctr.c_str());
}

TEST_F(TraceIoTest, SummarizeTraceMatchesInMemoryStats) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("summary.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());

  auto summary_or = SummarizeTrace(path);
  ASSERT_TRUE(summary_or.ok()) << summary_or.status();
  const TraceSummary& s = *summary_or;
  const TraceStats expected = ComputeTraceStats(original);

  EXPECT_EQ(s.format_version, kTraceVersion2);
  EXPECT_GT(s.file_bytes, 0u);
  EXPECT_EQ(s.stats.num_requests, expected.num_requests);
  EXPECT_EQ(s.stats.num_objects, expected.num_objects);
  EXPECT_EQ(s.stats.num_objects_referenced, expected.num_objects_referenced);
  EXPECT_EQ(s.stats.num_clients_active, expected.num_clients_active);
  EXPECT_EQ(s.stats.total_bytes_requested, expected.total_bytes_requested);
  EXPECT_DOUBLE_EQ(s.stats.duration_seconds, expected.duration_seconds);
  EXPECT_NEAR(s.stats.estimated_zipf_theta, expected.estimated_zipf_theta,
              1e-9);

  EXPECT_GE(s.size_p90, s.size_p50);
  EXPECT_GE(s.size_p99, s.size_p90);
  EXPECT_GE(s.size_max, s.size_p99);
  EXPECT_GE(s.req_size_p99, s.req_size_p50);
  EXPECT_GT(s.interarrival_mean, 0.0);
  EXPECT_GE(s.interarrival_max, s.interarrival_min);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, EmptyWorkloadRoundTrip) {
  Workload workload;
  workload.catalog.Add(10, 0);
  const std::string path = TempPath("empty.cctr");
  ASSERT_TRUE(WriteTrace(workload, path).ok());
  auto read_or = ReadTrace(path);
  ASSERT_TRUE(read_or.ok());
  EXPECT_EQ(read_or->requests.size(), 0u);
  EXPECT_EQ(read_or->catalog.num_objects(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cascache::trace
