#include "trace/trace_io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace cascache::trace {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  Workload SmallWorkload() {
    WorkloadParams params;
    params.num_objects = 100;
    params.num_requests = 5000;
    params.num_clients = 20;
    params.num_servers = 5;
    params.seed = 3;
    auto workload_or = GenerateWorkload(params);
    CASCACHE_CHECK_OK(workload_or.status());
    return std::move(workload_or).value();
  }
};

TEST_F(TraceIoTest, RoundTripPreservesEverything) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("roundtrip.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());

  auto read_or = ReadTrace(path);
  ASSERT_TRUE(read_or.ok()) << read_or.status();
  const Workload& read = *read_or;

  ASSERT_EQ(read.catalog.num_objects(), original.catalog.num_objects());
  for (ObjectId id = 0; id < original.catalog.num_objects(); ++id) {
    EXPECT_EQ(read.catalog.size(id), original.catalog.size(id));
    EXPECT_EQ(read.catalog.server(id), original.catalog.server(id));
  }
  ASSERT_EQ(read.requests.size(), original.requests.size());
  for (size_t i = 0; i < original.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(read.requests[i].time, original.requests[i].time);
    EXPECT_EQ(read.requests[i].client, original.requests[i].client);
    EXPECT_EQ(read.requests[i].object, original.requests[i].object);
  }
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, ReadMissingFileFails) {
  auto read_or = ReadTrace(TempPath("does_not_exist.cctr"));
  EXPECT_FALSE(read_or.ok());
  EXPECT_EQ(read_or.status().code(), util::StatusCode::kIoError);
}

TEST_F(TraceIoTest, ReadRejectsBadMagic) {
  const std::string path = TempPath("badmagic.cctr");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE and some garbage";
  }
  auto read_or = ReadTrace(path);
  EXPECT_FALSE(read_or.ok());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, ReadRejectsTruncatedFile) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("truncated.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());
  // Truncate to half.
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto read_or = ReadTrace(path);
  EXPECT_FALSE(read_or.ok());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, CsvExportHasHeaderAndRows) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("trace.csv");
  ASSERT_TRUE(WriteTraceCsv(original, path).ok());
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(in, header)));
  EXPECT_EQ(header, "time,client,object,size,server");
  size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, original.requests.size());
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, StatsAreConsistent) {
  const Workload workload = SmallWorkload();
  const TraceStats stats = ComputeTraceStats(workload);
  EXPECT_EQ(stats.num_requests, workload.requests.size());
  EXPECT_EQ(stats.num_objects, workload.catalog.num_objects());
  EXPECT_LE(stats.num_objects_referenced, stats.num_objects);
  EXPECT_GT(stats.num_objects_referenced, 0u);
  EXPECT_LE(stats.num_clients_active, 20u);
  EXPECT_GT(stats.total_bytes_requested, 0u);
  EXPECT_GT(stats.estimated_zipf_theta, 0.3);
  EXPECT_GT(stats.top10pct_request_share, 0.2);
  EXPECT_LE(stats.top10pct_request_share, 1.0);
  EXPECT_DOUBLE_EQ(stats.duration_seconds, workload.Duration());
}

TEST_F(TraceIoTest, StreamingReaderMatchesBulkRead) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("stream.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());

  auto reader_or = TraceReader::Open(path);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status();
  TraceReader& reader = **reader_or;
  EXPECT_EQ(reader.num_requests(), original.requests.size());
  EXPECT_EQ(reader.catalog().num_objects(), original.catalog.num_objects());
  EXPECT_EQ(reader.catalog().total_bytes(), original.catalog.total_bytes());

  Request req;
  size_t i = 0;
  for (;;) {
    auto more_or = reader.Next(&req);
    ASSERT_TRUE(more_or.ok());
    if (!*more_or) break;
    ASSERT_LT(i, original.requests.size());
    EXPECT_DOUBLE_EQ(req.time, original.requests[i].time);
    EXPECT_EQ(req.client, original.requests[i].client);
    EXPECT_EQ(req.object, original.requests[i].object);
    ++i;
  }
  EXPECT_EQ(i, original.requests.size());
  EXPECT_EQ(reader.requests_read(), original.requests.size());
  // Subsequent reads keep reporting end-of-stream.
  auto again = reader.Next(&req);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, StreamingReaderDetectsTruncation) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("stream_trunc.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    // Keep the header+catalog plus a few requests, then cut mid-record.
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() - 7));
  }
  auto reader_or = TraceReader::Open(path);
  ASSERT_TRUE(reader_or.ok());
  Request req;
  util::Status error;
  for (;;) {
    auto more_or = (*reader_or)->Next(&req);
    if (!more_or.ok()) {
      error = more_or.status();
      break;
    }
    ASSERT_TRUE(*more_or) << "should hit the truncation error before EOF";
  }
  EXPECT_EQ(error.code(), util::StatusCode::kIoError);
  std::remove(path.c_str());
}

TEST_F(TraceIoTest, StreamingReaderRejectsMissingFile) {
  EXPECT_FALSE(TraceReader::Open(TempPath("nope.cctr")).ok());
}

TEST_F(TraceIoTest, EmptyWorkloadRoundTrip) {
  Workload workload;
  workload.catalog.Add(10, 0);
  const std::string path = TempPath("empty.cctr");
  ASSERT_TRUE(WriteTrace(workload, path).ok());
  auto read_or = ReadTrace(path);
  ASSERT_TRUE(read_or.ok());
  EXPECT_EQ(read_or->requests.size(), 0u);
  EXPECT_EQ(read_or->catalog.num_objects(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cascache::trace
