#include "trace/mapped_trace.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "trace/trace_io.h"

namespace cascache::trace {
namespace {

class MappedTraceTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  Workload SmallWorkload() {
    WorkloadParams params;
    params.num_objects = 100;
    params.num_requests = 5000;
    params.num_clients = 20;
    params.num_servers = 5;
    params.seed = 3;
    auto workload_or = GenerateWorkload(params);
    CASCACHE_CHECK_OK(workload_or.status());
    return std::move(workload_or).value();
  }

  std::string WriteSmallV2(const std::string& name) {
    const std::string path = TempPath(name);
    CASCACHE_CHECK_OK(WriteTrace(SmallWorkload(), path));
    return path;
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }

  static void Spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
};

TEST_F(MappedTraceTest, MapMatchesBulkReadExactly) {
  const Workload original = SmallWorkload();
  const std::string path = TempPath("mapped.cctr");
  ASSERT_TRUE(WriteTrace(original, path).ok());

  auto mapped_or = MappedTrace::Open(path);
  ASSERT_TRUE(mapped_or.ok()) << mapped_or.status();
  const MappedTrace& mapped = **mapped_or;

  ASSERT_EQ(mapped.num_requests(), original.requests.size());
  ASSERT_EQ(mapped.catalog().num_objects(), original.catalog.num_objects());
  EXPECT_EQ(mapped.catalog().total_bytes(), original.catalog.total_bytes());
  for (ObjectId id = 0; id < original.catalog.num_objects(); ++id) {
    ASSERT_EQ(mapped.catalog().size(id), original.catalog.size(id));
    ASSERT_EQ(mapped.catalog().server(id), original.catalog.server(id));
  }
  const RequestSpan span = mapped.requests();
  ASSERT_EQ(span.size(), original.requests.size());
  EXPECT_EQ(std::memcmp(span.data(), original.requests.data(),
                        span.size() * sizeof(Request)),
            0)
      << "mapped request region must be bit-identical to the in-RAM load";
  // The mapping is page-aligned by the v2 format contract.
  EXPECT_EQ(reinterpret_cast<uintptr_t>(span.data()) % alignof(Request), 0u);
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, ViewIsSeekable) {
  const std::string path = WriteSmallV2("seekable.cctr");
  auto mapped_or = MappedTrace::Open(path);
  ASSERT_TRUE(mapped_or.ok());
  const RequestSpan all = (*mapped_or)->requests();
  // Subspans address warm-up/measure splits without copying.
  const RequestSpan warmup = all.subspan(0, all.size() / 2);
  const RequestSpan measure = all.subspan(all.size() / 2);
  EXPECT_EQ(warmup.size() + measure.size(), all.size());
  EXPECT_EQ(warmup.data() + warmup.size(), measure.data());
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, RejectsMissingFile) {
  auto mapped_or = MappedTrace::Open(TempPath("nope.cctr"));
  EXPECT_FALSE(mapped_or.ok());
  EXPECT_EQ(mapped_or.status().code(), util::StatusCode::kIoError);
}

TEST_F(MappedTraceTest, RejectsV1WithHelpfulMessage) {
  const std::string path = TempPath("v1.cctr");
  ASSERT_TRUE(WriteTraceV1(SmallWorkload(), path).ok());
  auto mapped_or = MappedTrace::Open(path);
  ASSERT_FALSE(mapped_or.ok());
  EXPECT_EQ(mapped_or.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(mapped_or.status().message().find("not mmap-able"),
            std::string::npos)
      << mapped_or.status();
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, RejectsBadMagic) {
  const std::string path = TempPath("badmagic.cctr");
  Spit(path, "NOPE this is not a trace file, but it is long enough to map");
  auto mapped_or = MappedTrace::Open(path);
  ASSERT_FALSE(mapped_or.ok());
  EXPECT_NE(mapped_or.status().message().find("bad magic"),
            std::string::npos)
      << mapped_or.status();
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, RejectsShortMapping) {
  const std::string path = WriteSmallV2("short.cctr");
  const std::string bytes = Slurp(path);
  // Keep the header+catalog but cut the request region short: the file
  // is now shorter than the header's num_requests claims.
  Spit(path, bytes.substr(0, bytes.size() - 4096));
  auto mapped_or = MappedTrace::Open(path);
  ASSERT_FALSE(mapped_or.ok());
  EXPECT_NE(mapped_or.status().message().find("shorter than its header"),
            std::string::npos)
      << mapped_or.status();
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, RejectsTruncatedHeader) {
  const std::string path = WriteSmallV2("hdr.cctr");
  const std::string bytes = Slurp(path);
  Spit(path, bytes.substr(0, 10));
  EXPECT_FALSE(MappedTrace::Open(path).ok());
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, RejectsUnalignedRequestOffset) {
  const std::string path = WriteSmallV2("unaligned.cctr");
  std::string bytes = Slurp(path);
  // Corrupt request_offset (byte 24) to a non-page-aligned value.
  uint64_t bogus_offset = 4097;
  std::memcpy(bytes.data() + 24, &bogus_offset, sizeof(bogus_offset));
  Spit(path, bytes);
  auto mapped_or = MappedTrace::Open(path);
  ASSERT_FALSE(mapped_or.ok());
  EXPECT_EQ(mapped_or.status().code(), util::StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, RejectsCorruptCatalog) {
  const std::string path = WriteSmallV2("cat.cctr");
  std::string bytes = Slurp(path);
  // Zero out the first catalog entry's size (byte 32): invalid object.
  uint64_t zero = 0;
  std::memcpy(bytes.data() + 32, &zero, sizeof(zero));
  Spit(path, bytes);
  EXPECT_FALSE(MappedTrace::Open(path).ok());
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, ValidateAcceptsGoodAndRejectsCorruptRecords) {
  const std::string path = WriteSmallV2("validate.cctr");
  {
    auto mapped_or = MappedTrace::Open(path);
    ASSERT_TRUE(mapped_or.ok());
    EXPECT_TRUE((*mapped_or)->Validate().ok());
  }
  // Corrupt one record's object id past the catalog, out in the request
  // region where header/catalog validation cannot see it.
  std::string bytes = Slurp(path);
  uint64_t request_offset = 0;
  std::memcpy(&request_offset, bytes.data() + 24, sizeof(request_offset));
  const size_t victim = request_offset + 100 * sizeof(Request) +
                        offsetof(Request, object);
  uint32_t huge = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + victim, &huge, sizeof(huge));
  Spit(path, bytes);
  {
    auto mapped_or = MappedTrace::Open(path);
    ASSERT_TRUE(mapped_or.ok()) << "corruption is past the eager checks";
    const util::Status status = (*mapped_or)->Validate();
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  }
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, ReleaseUpToKeepsDataReadable) {
  const std::string path = WriteSmallV2("release.cctr");
  const Workload original = SmallWorkload();
  auto mapped_or = MappedTrace::Open(path);
  ASSERT_TRUE(mapped_or.ok());
  MappedTrace& mapped = **mapped_or;

  // Releases are advisory (MADV_DONTNEED on a file-backed private
  // mapping): the data must still read back correctly afterwards, at
  // any index, including repeated and out-of-order release points.
  mapped.ReleaseUpTo(mapped.num_requests() / 2);
  mapped.ReleaseUpTo(mapped.num_requests() / 4);  // no-op, below high water
  mapped.ReleaseUpTo(mapped.num_requests());
  const RequestSpan span = mapped.requests();
  ASSERT_EQ(span.size(), original.requests.size());
  EXPECT_EQ(std::memcmp(span.data(), original.requests.data(),
                        span.size() * sizeof(Request)),
            0);
  std::remove(path.c_str());
}

TEST_F(MappedTraceTest, StreamingViewReplaysIdentically) {
  const std::string path = WriteSmallV2("streamview.cctr");
  auto mapped_or = MappedTrace::Open(path);
  ASSERT_TRUE(mapped_or.ok());
  MappedTrace& mapped = **mapped_or;

  WorkloadView view = mapped.StreamingView();
  ASSERT_NE(view.catalog, nullptr);
  ASSERT_TRUE(static_cast<bool>(view.on_consumed));
  // Drive the consumption hook the way the chunked replay does.
  const size_t n = view.requests.size();
  view.on_consumed(n / 3);
  view.on_consumed(2 * n / 3);
  view.on_consumed(n);
  const Workload original = SmallWorkload();
  EXPECT_EQ(std::memcmp(view.requests.data(), original.requests.data(),
                        n * sizeof(Request)),
            0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cascache::trace
