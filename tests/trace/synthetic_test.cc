#include "trace/synthetic.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/zipf.h"

namespace cascache::trace {
namespace {

WorkloadParams SmallParams() {
  WorkloadParams params;
  params.num_objects = 2000;
  params.num_requests = 100000;
  params.num_clients = 100;
  params.num_servers = 20;
  params.seed = 11;
  return params;
}

TEST(SyntheticTest, GeneratesRequestedCounts) {
  auto workload_or = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload_or.ok());
  EXPECT_EQ(workload_or->catalog.num_objects(), 2000u);
  EXPECT_EQ(workload_or->requests.size(), 100000u);
}

TEST(SyntheticTest, TimestampsAreIncreasing) {
  auto workload_or = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload_or.ok());
  double prev = 0.0;
  for (const Request& req : workload_or->requests) {
    EXPECT_GE(req.time, prev);
    prev = req.time;
  }
  EXPECT_GT(workload_or->Duration(), 0.0);
}

TEST(SyntheticTest, ArrivalRateApproximatelyMatches) {
  WorkloadParams params = SmallParams();
  params.request_rate = 50.0;
  auto workload_or = GenerateWorkload(params);
  ASSERT_TRUE(workload_or.ok());
  const double observed_rate =
      static_cast<double>(params.num_requests) / workload_or->Duration();
  EXPECT_NEAR(observed_rate, 50.0, 1.0);
}

TEST(SyntheticTest, IdsWithinBounds) {
  auto workload_or = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload_or.ok());
  for (const Request& req : workload_or->requests) {
    EXPECT_LT(req.object, 2000u);
    EXPECT_LT(req.client, 100u);
  }
  for (ObjectId id = 0; id < 2000; ++id) {
    EXPECT_LT(workload_or->catalog.server(id), 20u);
  }
}

TEST(SyntheticTest, ObjectSizesWithinConfiguredBounds) {
  WorkloadParams params = SmallParams();
  params.min_object_size = 500;
  params.max_object_size = 1 << 20;
  auto workload_or = GenerateWorkload(params);
  ASSERT_TRUE(workload_or.ok());
  for (ObjectId id = 0; id < params.num_objects; ++id) {
    const uint64_t size = workload_or->catalog.size(id);
    EXPECT_GE(size, 500u);
    EXPECT_LE(size, static_cast<uint64_t>(1 << 20));
  }
}

TEST(SyntheticTest, PopularityFollowsRankOrder) {
  // Object ids are popularity ranks: id 0 must be requested far more often
  // than a tail object, and access counts should decrease overall.
  auto workload_or = GenerateWorkload(SmallParams());
  ASSERT_TRUE(workload_or.ok());
  const std::vector<uint64_t> counts = CountAccesses(*workload_or);
  EXPECT_GT(counts[0], counts[500]);
  EXPECT_GT(counts[0], 100u);
  // Head mass dominates: top 10% of objects take most requests under
  // theta=0.8.
  uint64_t head = 0, total = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i < counts.size() / 10) head += counts[i];
  }
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.4);
}

class SyntheticZipfSweep : public ::testing::TestWithParam<double> {};

TEST_P(SyntheticZipfSweep, ObservedSkewTracksConfiguredTheta) {
  WorkloadParams params = SmallParams();
  params.num_objects = 500;
  params.num_requests = 400000;
  params.zipf_theta = GetParam();
  auto workload_or = GenerateWorkload(params);
  ASSERT_TRUE(workload_or.ok());
  std::vector<double> counts;
  for (uint64_t c : CountAccesses(*workload_or)) {
    counts.push_back(static_cast<double>(c));
  }
  std::sort(counts.rbegin(), counts.rend());
  EXPECT_NEAR(util::EstimateZipfTheta(counts), GetParam(), 0.12);
}

INSTANTIATE_TEST_SUITE_P(Thetas, SyntheticZipfSweep,
                         ::testing::Values(0.6, 0.8, 1.0));

TEST(SyntheticTest, DeterministicInSeed) {
  auto a = GenerateWorkload(SmallParams());
  auto b = GenerateWorkload(SmallParams());
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->requests.size(), b->requests.size());
  for (size_t i = 0; i < a->requests.size(); i += 997) {
    EXPECT_EQ(a->requests[i].object, b->requests[i].object);
    EXPECT_EQ(a->requests[i].client, b->requests[i].client);
    EXPECT_DOUBLE_EQ(a->requests[i].time, b->requests[i].time);
  }
}

TEST(SyntheticTest, SeedChangesStream) {
  WorkloadParams params = SmallParams();
  auto a = GenerateWorkload(params);
  params.seed = 12;
  auto b = GenerateWorkload(params);
  ASSERT_TRUE(a.ok() && b.ok());
  int diffs = 0;
  for (size_t i = 0; i < 1000; ++i) {
    if (a->requests[i].object != b->requests[i].object) ++diffs;
  }
  EXPECT_GT(diffs, 100);
}

TEST(SyntheticTest, RejectsBadParameters) {
  WorkloadParams params = SmallParams();
  params.num_objects = 0;
  EXPECT_FALSE(GenerateWorkload(params).ok());

  params = SmallParams();
  params.zipf_theta = 0.0;
  EXPECT_FALSE(GenerateWorkload(params).ok());

  params = SmallParams();
  params.request_rate = -1.0;
  EXPECT_FALSE(GenerateWorkload(params).ok());

  params = SmallParams();
  params.min_object_size = 1000;
  params.max_object_size = 10;
  EXPECT_FALSE(GenerateWorkload(params).ok());

  params = SmallParams();
  params.num_clients = 0;
  EXPECT_FALSE(GenerateWorkload(params).ok());
}

}  // namespace
}  // namespace cascache::trace
