// Tests for the workload-realism extensions: temporal locality (LRU-stack
// re-references) and popularity churn (rank drift over time).

#include <gtest/gtest.h>

#include "trace/synthetic.h"

namespace cascache::trace {
namespace {

WorkloadParams BaseParams() {
  WorkloadParams params;
  params.num_objects = 1000;
  params.num_requests = 120'000;
  params.num_clients = 50;
  params.num_servers = 10;
  params.seed = 21;
  return params;
}

/// Fraction of requests that repeat an object seen within the last
/// `window` requests.
double ReuseWithin(const Workload& workload, size_t window) {
  std::vector<ObjectId> ring;
  size_t head = 0;
  uint64_t reuses = 0;
  for (const Request& req : workload.requests) {
    for (ObjectId recent : ring) {
      if (recent == req.object) {
        ++reuses;
        break;
      }
    }
    if (ring.size() < window) {
      ring.push_back(req.object);
    } else {
      ring[head] = req.object;
      head = (head + 1) % window;
    }
  }
  return static_cast<double>(reuses) /
         static_cast<double>(workload.requests.size());
}

TEST(TemporalLocalityTest, ZeroKeepsIndependentReferenceModel) {
  WorkloadParams params = BaseParams();
  params.temporal_locality = 0.0;
  auto a = GenerateWorkload(params);
  ASSERT_TRUE(a.ok());
  // Identical to a second generation (pure function of the seed).
  auto b = GenerateWorkload(params);
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->requests.size(); i += 1111) {
    EXPECT_EQ(a->requests[i].object, b->requests[i].object);
  }
}

TEST(TemporalLocalityTest, RaisesShortTermReuse) {
  WorkloadParams params = BaseParams();
  params.num_requests = 60'000;
  auto base = GenerateWorkload(params);
  ASSERT_TRUE(base.ok());

  params.temporal_locality = 0.5;
  params.temporal_window = 2'000;
  params.temporal_mean_depth = 50.0;
  auto temporal = GenerateWorkload(params);
  ASSERT_TRUE(temporal.ok());

  const double base_reuse = ReuseWithin(*base, 100);
  const double temporal_reuse = ReuseWithin(*temporal, 100);
  EXPECT_GT(temporal_reuse, base_reuse + 0.1);
}

TEST(TemporalLocalityTest, ObjectsStayInBounds) {
  WorkloadParams params = BaseParams();
  params.temporal_locality = 0.9;
  params.temporal_window = 64;
  params.temporal_mean_depth = 4.0;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok());
  for (const Request& req : workload->requests) {
    ASSERT_LT(req.object, params.num_objects);
  }
}

TEST(TemporalLocalityTest, RejectsBadParameters) {
  WorkloadParams params = BaseParams();
  params.temporal_locality = 1.5;
  EXPECT_FALSE(GenerateWorkload(params).ok());
  params = BaseParams();
  params.temporal_locality = 0.5;
  params.temporal_window = 0;
  EXPECT_FALSE(GenerateWorkload(params).ok());
  params = BaseParams();
  params.temporal_locality = 0.5;
  params.temporal_mean_depth = 0.5;
  EXPECT_FALSE(GenerateWorkload(params).ok());
}

/// Per-object counts over a half of the request stream.
std::vector<uint64_t> HalfCounts(const Workload& workload, bool second) {
  std::vector<uint64_t> counts(workload.catalog.num_objects(), 0);
  const size_t half = workload.requests.size() / 2;
  const size_t begin = second ? half : 0;
  const size_t end = second ? workload.requests.size() : half;
  for (size_t i = begin; i < end; ++i) {
    ++counts[workload.requests[i].object];
  }
  return counts;
}

/// L1 distance between normalized popularity histograms of the two trace
/// halves — higher means the hot set drifted.
double HalfDrift(const Workload& workload) {
  const auto first = HalfCounts(workload, false);
  const auto second = HalfCounts(workload, true);
  uint64_t n1 = 0, n2 = 0;
  for (uint64_t c : first) n1 += c;
  for (uint64_t c : second) n2 += c;
  double drift = 0.0;
  for (size_t i = 0; i < first.size(); ++i) {
    drift += std::abs(static_cast<double>(first[i]) / n1 -
                      static_cast<double>(second[i]) / n2);
  }
  return drift;
}

TEST(ChurnTest, RankSwapsDriftThePopularitySet) {
  WorkloadParams params = BaseParams();
  auto stationary = GenerateWorkload(params);
  ASSERT_TRUE(stationary.ok());

  // The trace spans ~1200 s; a high churn rate makes drift visible.
  params.churn_swaps_per_hour = 3'000.0;
  auto churned = GenerateWorkload(params);
  ASSERT_TRUE(churned.ok());

  EXPECT_GT(HalfDrift(*churned), HalfDrift(*stationary) * 1.5);
}

TEST(ChurnTest, OverallSkewIsPreserved) {
  // Swapping ranks changes *which* objects are hot, not the rank-frequency
  // law itself.
  WorkloadParams params = BaseParams();
  params.churn_swaps_per_hour = 1'000.0;
  auto workload = GenerateWorkload(params);
  ASSERT_TRUE(workload.ok());
  std::vector<double> counts;
  for (uint64_t c : CountAccesses(*workload)) {
    counts.push_back(static_cast<double>(c));
  }
  std::sort(counts.rbegin(), counts.rend());
  // Head still dominates (theta ~ 0.8 gives the top 10% > 40% of mass).
  double head = 0.0, total = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (i < counts.size() / 10) head += counts[i];
  }
  EXPECT_GT(head / total, 0.4);
}

TEST(ExtensionsDeterminismTest, ReproducibleWithExtensionsEnabled) {
  WorkloadParams params = BaseParams();
  params.temporal_locality = 0.4;
  params.temporal_window = 512;
  params.temporal_mean_depth = 20.0;
  params.churn_swaps_per_hour = 500.0;
  auto a = GenerateWorkload(params);
  auto b = GenerateWorkload(params);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->requests.size(), b->requests.size());
  for (size_t i = 0; i < a->requests.size(); i += 777) {
    EXPECT_EQ(a->requests[i].object, b->requests[i].object);
    EXPECT_EQ(a->requests[i].client, b->requests[i].client);
    EXPECT_DOUBLE_EQ(a->requests[i].time, b->requests[i].time);
  }
}

TEST(ChurnTest, RejectsNegativeRate) {
  WorkloadParams params = BaseParams();
  params.churn_swaps_per_hour = -1.0;
  EXPECT_FALSE(GenerateWorkload(params).ok());
}

}  // namespace
}  // namespace cascache::trace
