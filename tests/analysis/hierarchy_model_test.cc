#include "analysis/hierarchy_model.h"

#include <gtest/gtest.h>

#include "schemes/lru_scheme.h"
#include "sim/simulator.h"
#include "trace/synthetic.h"
#include "util/zipf.h"

namespace cascache::analysis {
namespace {

HierarchyModelParams ZipfParams(uint64_t capacity) {
  HierarchyModelParams params;
  params.capacity_per_node = capacity;
  params.rates = util::ZipfDistribution::Weights(1000, 0.8);
  params.sizes.assign(1000, 10'000);
  return params;
}

TEST(HierarchyModelTest, ServeProbabilitiesSumToOne) {
  auto result = SolveHierarchyLru(ZipfParams(200'000));
  ASSERT_TRUE(result.ok()) << result.status();
  double total = 0.0;
  for (double p : result->serve_probability) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(result->serve_probability.size(), 5u);  // 4 levels + origin.
  EXPECT_EQ(result->levels.size(), 4u);
}

TEST(HierarchyModelTest, LeafServesMostUnderSkew) {
  auto result = SolveHierarchyLru(ZipfParams(500'000));
  ASSERT_TRUE(result.ok());
  // With large caches and Zipf skew, the leaf dominates and upper levels
  // each serve less than the one below (the filtering effect).
  EXPECT_GT(result->serve_probability[0], result->serve_probability[1]);
  EXPECT_GT(result->serve_probability[1], result->serve_probability[2]);
}

TEST(HierarchyModelTest, MetricsMonotoneInCapacity) {
  double prev_hit = -1.0;
  double prev_latency = 1e18;
  for (uint64_t capacity : {50'000, 200'000, 800'000}) {
    auto result = SolveHierarchyLru(ZipfParams(capacity));
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->byte_hit_ratio, prev_hit);
    EXPECT_LT(result->avg_latency, prev_latency);
    prev_hit = result->byte_hit_ratio;
    prev_latency = result->avg_latency;
  }
}

TEST(HierarchyModelTest, UniformSizesMakeHitRatiosEqual) {
  auto result = SolveHierarchyLru(ZipfParams(100'000));
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->hit_ratio, result->byte_hit_ratio, 1e-9);
}

TEST(HierarchyModelTest, RejectsBadInput) {
  HierarchyModelParams params = ZipfParams(0);
  EXPECT_FALSE(SolveHierarchyLru(params).ok());
  params = ZipfParams(1000);
  params.rates.clear();
  params.sizes.clear();
  EXPECT_FALSE(SolveHierarchyLru(params).ok());
  params = ZipfParams(1000);
  params.tree.depth = 0;
  EXPECT_FALSE(SolveHierarchyLru(params).ok());
}

// The headline validation: the analytical model tracks the trace-driven
// simulator for hierarchical LRU on an IRM workload.
class ModelVsSimulator : public ::testing::TestWithParam<double> {};

TEST_P(ModelVsSimulator, ByteHitRatioAgrees) {
  const double cache_fraction = GetParam();

  trace::WorkloadParams wl;
  wl.num_objects = 2'000;
  wl.num_requests = 400'000;
  wl.num_clients = 270;  // 10 clients per leaf on average.
  wl.num_servers = 50;
  wl.seed = 31;
  auto workload_or = trace::GenerateWorkload(wl);
  ASSERT_TRUE(workload_or.ok());

  // Simulate.
  sim::NetworkParams net_params;
  net_params.architecture = sim::Architecture::kHierarchical;
  auto net_or = sim::Network::Build(net_params, &workload_or->catalog);
  ASSERT_TRUE(net_or.ok());
  schemes::LruScheme scheme;
  sim::Simulator simulator(net_or->get(), &scheme);
  const uint64_t capacity = static_cast<uint64_t>(
      cache_fraction *
      static_cast<double>(workload_or->catalog.total_bytes()));
  ASSERT_TRUE(simulator.Run(*workload_or, capacity).ok());
  const sim::MetricsSummary sim_metrics = simulator.metrics().Summary();

  // Model with the empirical request mix.
  HierarchyModelParams model_params;
  model_params.capacity_per_node = capacity;
  for (uint64_t count : trace::CountAccesses(*workload_or)) {
    model_params.rates.push_back(static_cast<double>(count));
  }
  for (trace::ObjectId id = 0; id < workload_or->catalog.num_objects();
       ++id) {
    model_params.sizes.push_back(workload_or->catalog.size(id));
  }
  auto model_or = SolveHierarchyLru(model_params);
  ASSERT_TRUE(model_or.ok());

  // Tolerances reflect the model's known structural bias: treating the
  // filtered per-level miss streams as IRM overestimates upper-level
  // hits (the a-NET effect), which grows with cache size — measured at
  // ~2 points of byte hit at 1% capacity and ~8 points at 10%. Agreement
  // within 10 points / 20% across the sweep confirms the simulator and
  // the analysis describe the same system.
  EXPECT_NEAR(model_or->byte_hit_ratio, sim_metrics.byte_hit_ratio, 0.10)
      << "cache fraction " << cache_fraction;
  EXPECT_NEAR(model_or->avg_latency, sim_metrics.avg_latency,
              0.20 * sim_metrics.avg_latency);
  EXPECT_NEAR(model_or->avg_hops, sim_metrics.avg_hops,
              0.20 * sim_metrics.avg_hops);
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, ModelVsSimulator,
                         ::testing::Values(0.01, 0.03, 0.10));

}  // namespace
}  // namespace cascache::analysis
