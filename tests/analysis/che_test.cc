#include "analysis/che.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/zipf.h"

namespace cascache::analysis {
namespace {

TEST(CheTest, EverythingFitsMeansAllHits) {
  auto result = SolveChe({1.0, 2.0, 0.0}, {100, 100, 100}, 1000);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isinf(result->characteristic_time));
  EXPECT_DOUBLE_EQ(result->hit_probability[0], 1.0);
  EXPECT_DOUBLE_EQ(result->hit_probability[1], 1.0);
  EXPECT_DOUBLE_EQ(result->hit_probability[2], 0.0);  // Never requested.
  EXPECT_DOUBLE_EQ(result->hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(result->byte_hit_ratio, 1.0);
}

TEST(CheTest, CapacityConstraintHolds) {
  std::vector<double> rates;
  std::vector<uint64_t> sizes;
  for (int i = 0; i < 500; ++i) {
    rates.push_back(1.0 / (1 + i));
    sizes.push_back(1000);
  }
  auto result = SolveChe(rates, sizes, 100'000);  // 100 of 500 fit.
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->expected_bytes, 100'000.0, 1.0);
  EXPECT_GT(result->characteristic_time, 0.0);
}

TEST(CheTest, HotterObjectsHitMore) {
  auto result = SolveChe({10.0, 1.0, 0.1}, {100, 100, 100}, 150);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->hit_probability[0], result->hit_probability[1]);
  EXPECT_GT(result->hit_probability[1], result->hit_probability[2]);
  EXPECT_GT(result->hit_ratio, result->hit_probability[2]);
}

TEST(CheTest, HitRatioMonotoneInCapacity) {
  std::vector<double> rates = util::ZipfDistribution::Weights(200, 0.8);
  std::vector<uint64_t> sizes(200, 1000);
  double prev = 0.0;
  for (uint64_t capacity : {5'000, 20'000, 80'000, 160'000}) {
    auto result = SolveChe(rates, sizes, capacity);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->hit_ratio, prev);
    prev = result->hit_ratio;
  }
}

TEST(CheTest, RateScaleInvariance) {
  // Multiplying all rates by a constant rescales T but not hit ratios.
  std::vector<double> rates = {5.0, 3.0, 1.0, 0.5};
  std::vector<uint64_t> sizes = {100, 200, 300, 400};
  auto a = SolveChe(rates, sizes, 450);
  for (double& r : rates) r *= 37.0;
  auto b = SolveChe(rates, sizes, 450);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < rates.size(); ++i) {
    EXPECT_NEAR(a->hit_probability[i], b->hit_probability[i], 1e-6);
  }
  EXPECT_NEAR(a->byte_hit_ratio, b->byte_hit_ratio, 1e-6);
}

TEST(CheTest, NoTrafficGivesZeros) {
  auto result = SolveChe({0.0, 0.0}, {10, 10}, 5);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(result->byte_hit_ratio, 0.0);
}

TEST(CheTest, RejectsBadInput) {
  EXPECT_FALSE(SolveChe({1.0}, {10, 20}, 5).ok());
  EXPECT_FALSE(SolveChe({1.0}, {10}, 0).ok());
  EXPECT_FALSE(SolveChe({-1.0}, {10}, 5).ok());
  EXPECT_FALSE(SolveChe({1.0}, {0}, 5).ok());
}

TEST(CheTest, ExpectedBytesMonotoneInT) {
  std::vector<double> rates = {2.0, 1.0};
  std::vector<uint64_t> sizes = {10, 20};
  double prev = -1.0;
  for (double t : {0.0, 0.1, 1.0, 10.0, 100.0}) {
    const double bytes = ExpectedBytes(rates, sizes, t);
    EXPECT_GT(bytes + 1e-12, prev);
    prev = bytes;
  }
  EXPECT_NEAR(ExpectedBytes(rates, sizes, 1e9), 30.0, 1e-6);
}

}  // namespace
}  // namespace cascache::analysis
