#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cascache::util {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, SingleWorkerRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No Wait(): the destructor must still run every queued task before
    // joining its workers.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressure) {
  // One slow worker, queue depth 2: submissions block instead of queueing
  // without bound.
  ThreadPool pool(1, /*max_queued=*/2);
  std::atomic<bool> release{false};
  std::atomic<int> started{0};
  pool.Submit([&] {
    ++started;
    while (!release.load()) std::this_thread::yield();
  });
  // These fill the queue while the worker is blocked.
  pool.Submit([] {});
  pool.Submit([] {});
  std::atomic<bool> fourth_submitted{false};
  std::thread submitter([&] {
    pool.Submit([] {});
    fourth_submitted = true;
  });
  // Give the submitter a chance to (incorrectly) return immediately.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(fourth_submitted.load());
  release = true;
  submitter.join();
  EXPECT_TRUE(fourth_submitted.load());
  pool.Wait();
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> completed{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&completed] { ++completed; });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The error does not cancel other tasks; they all still ran.
  EXPECT_EQ(completed.load(), 10);
  // A second Wait() after the error was retrieved is clean.
  pool.Wait();
}

}  // namespace
}  // namespace cascache::util
