#include "util/status.h"

#include <gtest/gtest.h>

namespace cascache::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad size");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("gone");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string out = std::move(v).value();
  EXPECT_EQ(out, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  CASCACHE_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

StatusOr<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

StatusOr<int> ChainAssign(int x) {
  CASCACHE_ASSIGN_OR_RETURN(int doubled, Doubled(x));
  return doubled + 1;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(helpers::Chain(1).ok());
  EXPECT_EQ(helpers::Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  auto ok = helpers::ChainAssign(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  EXPECT_EQ(helpers::ChainAssign(-5).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cascache::util
