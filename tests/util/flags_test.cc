#include "util/flags.h"

#include <gtest/gtest.h>

namespace cascache::util {
namespace {

TEST(FlagParserTest, DefaultsAppliedImmediately) {
  FlagParser parser;
  std::string s;
  int64_t i = 0;
  double d = 0;
  bool b = true;
  parser.AddString("name", "fallback", "h", &s);
  parser.AddInt64("count", 7, "h", &i);
  parser.AddDouble("ratio", 0.5, "h", &d);
  parser.AddBool("verbose", false, "h", &b);
  EXPECT_EQ(s, "fallback");
  EXPECT_EQ(i, 7);
  EXPECT_DOUBLE_EQ(d, 0.5);
  EXPECT_FALSE(b);
}

TEST(FlagParserTest, ParsesEqualsAndSpaceSyntax) {
  FlagParser parser;
  std::string s;
  int64_t i = 0;
  parser.AddString("name", "", "h", &s);
  parser.AddInt64("count", 0, "h", &i);
  const char* argv[] = {"--name=abc", "--count", "42"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_EQ(s, "abc");
  EXPECT_EQ(i, 42);
}

TEST(FlagParserTest, BareBooleanFlag) {
  FlagParser parser;
  bool b = false;
  parser.AddBool("verbose", false, "h", &b);
  const char* argv[] = {"--verbose"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_TRUE(b);
}

TEST(FlagParserTest, BooleanWithValue) {
  FlagParser parser;
  bool b = true;
  parser.AddBool("verbose", true, "h", &b);
  const char* argv[] = {"--verbose=false"};
  ASSERT_TRUE(parser.Parse(1, argv).ok());
  EXPECT_FALSE(b);
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser parser;
  const char* argv[] = {"--nope=1"};
  EXPECT_FALSE(parser.Parse(1, argv).ok());
}

TEST(FlagParserTest, MalformedValuesFail) {
  FlagParser parser;
  int64_t i = 0;
  uint64_t u = 0;
  double d = 0;
  bool b = false;
  parser.AddInt64("i", 0, "h", &i);
  parser.AddUint64("u", 0, "h", &u);
  parser.AddDouble("d", 0, "h", &d);
  parser.AddBool("b", false, "h", &b);
  {
    const char* argv[] = {"--i=abc"};
    EXPECT_FALSE(parser.Parse(1, argv).ok());
  }
  {
    const char* argv[] = {"--u=-5"};
    EXPECT_FALSE(parser.Parse(1, argv).ok());
  }
  {
    const char* argv[] = {"--d=1.2.3"};
    EXPECT_FALSE(parser.Parse(1, argv).ok());
  }
  {
    const char* argv[] = {"--b=maybe"};
    EXPECT_FALSE(parser.Parse(1, argv).ok());
  }
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser parser;
  int64_t i = 0;
  parser.AddInt64("count", 0, "h", &i);
  const char* argv[] = {"--count"};
  EXPECT_FALSE(parser.Parse(1, argv).ok());
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser parser;
  std::string s;
  parser.AddString("name", "", "h", &s);
  const char* argv[] = {"first", "--name=x", "second"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagParserTest, UsageListsFlags) {
  FlagParser parser;
  double d = 0;
  parser.AddDouble("ratio", 2.5, "the famous ratio", &d);
  const std::string usage = parser.Usage("prog");
  EXPECT_NE(usage.find("--ratio"), std::string::npos);
  EXPECT_NE(usage.find("the famous ratio"), std::string::npos);
  EXPECT_NE(usage.find("2.5"), std::string::npos);
}

TEST(FlagParserTest, NegativeAndLargeNumbers) {
  FlagParser parser;
  int64_t i = 0;
  uint64_t u = 0;
  double d = 0;
  parser.AddInt64("i", 0, "h", &i);
  parser.AddUint64("u", 0, "h", &u);
  parser.AddDouble("d", 0, "h", &d);
  const char* argv[] = {"--i=-123", "--u=18446744073709551615", "--d=-2.5e3"};
  ASSERT_TRUE(parser.Parse(3, argv).ok());
  EXPECT_EQ(i, -123);
  EXPECT_EQ(u, 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(d, -2500.0);
}

TEST(FlagParserTest, WasSetTracksExplicitFlags) {
  FlagParser parser;
  double d = 0;
  bool b = false;
  int64_t i = 0;
  parser.AddDouble("rate", 1.0, "h", &d);
  parser.AddBool("verbose", false, "h", &b);
  parser.AddInt64("count", 5, "h", &i);

  const char* argv[] = {"--rate=2.5", "--verbose"};
  ASSERT_TRUE(parser.Parse(2, argv).ok());
  EXPECT_TRUE(parser.WasSet("rate"));
  EXPECT_TRUE(parser.WasSet("verbose"));
  // Flags left at their defaults are not "set" — the CLI uses this to
  // decide whether a flag should override a fault-config file value.
  EXPECT_FALSE(parser.WasSet("count"));
  EXPECT_FALSE(parser.WasSet("no-such-flag"));

  // Parse resets the set-tracking: a second parse with no args reports
  // everything unset again.
  const char* none[] = {"positional-only"};
  ASSERT_TRUE(parser.Parse(1, none).ok());
  EXPECT_FALSE(parser.WasSet("rate"));
  EXPECT_FALSE(parser.WasSet("verbose"));
}

TEST(SplitCommaListTest, Basic) {
  EXPECT_EQ(SplitCommaList("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitCommaList("solo"), std::vector<std::string>{"solo"});
  EXPECT_TRUE(SplitCommaList("").empty());
  EXPECT_EQ(SplitCommaList("a,,b"), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(SplitCommaList(",x,"), std::vector<std::string>{"x"});
}

}  // namespace
}  // namespace cascache::util
