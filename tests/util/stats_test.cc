#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace cascache::util {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, BasicMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // Sample variance.
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatTest, SingleValueHasZeroVariance) {
  RunningStat s;
  s.Add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  Rng rng(3);
  RunningStat whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian(1.0, 2.0);
    whole.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(2.0);
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStatTest, ResetClears) {
  RunningStat s;
  s.Add(5.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, MeanIsExact) {
  Histogram h;
  h.Add(1.0);
  h.Add(2.0);
  h.Add(3.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(HistogramTest, QuantilesApproximateUniform) {
  Histogram h(1e-3, 1.02, 2048);
  Rng rng(5);
  for (int i = 0; i < 100000; ++i) h.Add(rng.NextDouble(1.0, 101.0));
  // Relative error is bounded by the bucket growth factor.
  EXPECT_NEAR(h.Quantile(0.5), 51.0, 3.0);
  EXPECT_NEAR(h.Quantile(0.95), 96.0, 4.0);
  EXPECT_NEAR(h.Quantile(0.05), 6.0, 1.0);
}

TEST(HistogramTest, QuantileMonotoneInQ) {
  Histogram h;
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextExponential(1.0));
  double prev = 0.0;
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, MergeAddsCounts) {
  Histogram a, b;
  a.Add(1.0);
  b.Add(2.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

TEST(HistogramTest, ValuesBelowMinLandInFirstBucket) {
  Histogram h(1.0, 1.5, 16);
  h.Add(0.0);
  h.Add(1e-9);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
}

TEST(HistogramTest, HugeValuesClampToLastBucket) {
  Histogram h(1.0, 1.5, 8);
  h.Add(1e30);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GT(h.Quantile(0.5), 1.0);
}

}  // namespace
}  // namespace cascache::util
