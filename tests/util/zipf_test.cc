#include "util/zipf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace cascache::util {
namespace {

TEST(ZipfTest, WeightsFollowPowerLaw) {
  const auto w = ZipfDistribution::Weights(4, 1.0);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);
  EXPECT_DOUBLE_EQ(w[3], 0.25);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(1000, 0.8);
  double total = 0.0;
  for (size_t i = 0; i < zipf.n(); ++i) total += zipf.pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsDecreasing) {
  ZipfDistribution zipf(100, 0.7);
  for (size_t i = 1; i < zipf.n(); ++i) {
    EXPECT_LT(zipf.pmf(i), zipf.pmf(i - 1));
  }
}

TEST(ZipfTest, SamplingMatchesPmf) {
  ZipfDistribution zipf(50, 0.9);
  Rng rng(101);
  std::vector<double> counts(50, 0.0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  // Check head ranks against expected mass.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(counts[i] / n, zipf.pmf(i), 0.01) << "rank " << i;
  }
}

TEST(ZipfTest, SingleElement) {
  ZipfDistribution zipf(1, 0.8);
  Rng rng(1);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.pmf(0), 1.0);
}

class ZipfThetaRecovery : public ::testing::TestWithParam<double> {};

TEST_P(ZipfThetaRecovery, EstimatorRecoversExponent) {
  const double theta = GetParam();
  // Exact counts (no sampling noise): counts proportional to 1/i^theta.
  std::vector<double> counts = ZipfDistribution::Weights(2000, theta);
  for (double& c : counts) c *= 1e6;
  EXPECT_NEAR(EstimateZipfTheta(counts), theta, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfThetaRecovery,
                         ::testing::Values(0.5, 0.64, 0.8, 1.0, 1.2));

TEST(ZipfThetaTest, SampledCountsRecoverExponentApproximately) {
  const double theta = 0.8;
  ZipfDistribution zipf(500, theta);
  Rng rng(55);
  std::vector<double> counts(500, 0.0);
  for (int i = 0; i < 500000; ++i) ++counts[zipf.Sample(&rng)];
  // Tail ranks get few samples; the fit still lands near theta.
  EXPECT_NEAR(EstimateZipfTheta(counts), theta, 0.08);
}

TEST(ZipfThetaTest, DegenerateInputs) {
  EXPECT_EQ(EstimateZipfTheta({}), 0.0);
  EXPECT_EQ(EstimateZipfTheta({5.0}), 0.0);
  EXPECT_EQ(EstimateZipfTheta({0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace cascache::util
