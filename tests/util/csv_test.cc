#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace cascache::util {
namespace {

TEST(CsvEscapeTest, PlainFieldsPassThrough) {
  EXPECT_EQ(CsvEscape("plain"), "plain");
  EXPECT_EQ(CsvEscape(""), "");
  EXPECT_EQ(CsvEscape("MODULO(r=1)"), "MODULO(r=1)");
}

TEST(CsvEscapeTest, QuotesFieldsWithSeparators) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(CsvEscape("line\rbreak"), "\"line\rbreak\"");
}

TEST(CsvEscapeTest, DoublesEmbeddedQuotes) {
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvWriterTest, WritesRowsAndLines) {
  const std::string path = ::testing::TempDir() + "/csv_writer_test.csv";
  {
    CsvWriter writer(path);
    writer.WriteRow({"scheme", "note"});
    writer.WriteRow({"a,b", "plain"});
    writer.WriteLine("1,2");
    EXPECT_TRUE(writer.Close().ok());
    // Close is idempotent.
    EXPECT_TRUE(writer.Close().ok());
  }
  std::ifstream in(path);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), "scheme,note\n\"a,b\",plain\n1,2\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, BadPathReportsIoError) {
  CsvWriter writer("/nonexistent-dir/out.csv");
  writer.WriteLine("ignored");
  const Status status = writer.Close();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace cascache::util
