#include "util/table.h"

#include <gtest/gtest.h>

namespace cascache::util {
namespace {

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter table({"a", "bb"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("a  bb"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TablePrinterTest, CellsRightAlignedFirstColumnLeft) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "22"});
  const std::string out = table.ToString();
  // First column left-aligned: "x" padded on the right.
  EXPECT_NE(out.find("x       "), std::string::npos);
  // Second column right-aligned under "value".
  EXPECT_NE(out.find("    1"), std::string::npos);
}

TEST(TablePrinterTest, FmtUsesPrecision) {
  EXPECT_EQ(TablePrinter::Fmt(3.14159, 3), "3.14");
  EXPECT_EQ(TablePrinter::Fmt(1000000.0, 4), "1e+06");
  EXPECT_EQ(TablePrinter::Fmt(0.5), "0.5");
}

TEST(TablePrinterTest, RowsAppearInOrder) {
  TablePrinter table({"k", "v"});
  table.AddRow({"first", "1"});
  table.AddRow({"second", "2"});
  const std::string out = table.ToString();
  EXPECT_LT(out.find("first"), out.find("second"));
}

}  // namespace
}  // namespace cascache::util
