#include "util/indexed_heap.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace cascache::util {
namespace {

TEST(IndexedHeapTest, EmptyHeap) {
  IndexedMinHeap<int> heap;
  EXPECT_TRUE(heap.empty());
  EXPECT_EQ(heap.size(), 0u);
  EXPECT_FALSE(heap.Contains(1));
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(IndexedHeapTest, PushPopOrdersByPriority) {
  IndexedMinHeap<int> heap;
  heap.Push(10, 3.0);
  heap.Push(20, 1.0);
  heap.Push(30, 2.0);
  EXPECT_EQ(heap.Pop().first, 20);
  EXPECT_EQ(heap.Pop().first, 30);
  EXPECT_EQ(heap.Pop().first, 10);
  EXPECT_TRUE(heap.empty());
}

TEST(IndexedHeapTest, TopDoesNotRemove) {
  IndexedMinHeap<int> heap;
  heap.Push(1, 5.0);
  EXPECT_EQ(heap.Top().first, 1);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(IndexedHeapTest, UpdateMovesUpAndDown) {
  IndexedMinHeap<int> heap;
  heap.Push(1, 1.0);
  heap.Push(2, 2.0);
  heap.Push(3, 3.0);
  heap.Update(3, 0.5);  // 3 becomes the minimum.
  EXPECT_EQ(heap.Top().first, 3);
  heap.Update(3, 10.0);  // 3 sinks back down.
  EXPECT_EQ(heap.Top().first, 1);
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(IndexedHeapTest, UpsertInsertsOrUpdates) {
  IndexedMinHeap<int> heap;
  heap.Upsert(7, 2.0);
  EXPECT_TRUE(heap.Contains(7));
  heap.Upsert(7, 0.1);
  EXPECT_DOUBLE_EQ(heap.PriorityOf(7), 0.1);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(IndexedHeapTest, EraseByKey) {
  IndexedMinHeap<int> heap;
  for (int i = 0; i < 10; ++i) heap.Push(i, static_cast<double>(i));
  EXPECT_TRUE(heap.Erase(0));   // Erase the min.
  EXPECT_TRUE(heap.Erase(9));   // Erase the max.
  EXPECT_TRUE(heap.Erase(5));   // Erase an interior key.
  EXPECT_FALSE(heap.Erase(5));  // Already gone.
  EXPECT_EQ(heap.size(), 7u);
  EXPECT_EQ(heap.Top().first, 1);
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(IndexedHeapTest, ClearEmpties) {
  IndexedMinHeap<int> heap;
  heap.Push(1, 1.0);
  heap.Clear();
  EXPECT_TRUE(heap.empty());
  EXPECT_FALSE(heap.Contains(1));
}

TEST(IndexedHeapTest, PopDrainsInSortedOrder) {
  IndexedMinHeap<int> heap;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) heap.Push(i, rng.NextDouble());
  double prev = -1.0;
  while (!heap.empty()) {
    const auto [key, prio] = heap.Pop();
    EXPECT_GE(prio, prev);
    prev = prio;
  }
}

// Property test: a long random op sequence keeps the heap consistent with
// a reference std::set of (priority, key).
TEST(IndexedHeapTest, RandomOpsMatchReference) {
  IndexedMinHeap<uint64_t> heap;
  std::set<std::pair<double, uint64_t>> reference;
  std::unordered_map<uint64_t, double> prio_of;
  Rng rng(7);

  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = rng.NextUint64(200);
    const int op = static_cast<int>(rng.NextUint64(4));
    const bool present = prio_of.count(key) > 0;
    switch (op) {
      case 0:  // Insert (if absent).
        if (!present) {
          const double p = rng.NextDouble();
          heap.Push(key, p);
          reference.emplace(p, key);
          prio_of[key] = p;
        }
        break;
      case 1:  // Update (if present).
        if (present) {
          const double p = rng.NextDouble();
          reference.erase({prio_of[key], key});
          heap.Update(key, p);
          reference.emplace(p, key);
          prio_of[key] = p;
        }
        break;
      case 2:  // Erase.
        EXPECT_EQ(heap.Erase(key), present);
        if (present) {
          reference.erase({prio_of[key], key});
          prio_of.erase(key);
        }
        break;
      case 3:  // Pop min.
        if (!reference.empty()) {
          const auto [k, p] = heap.Pop();
          EXPECT_DOUBLE_EQ(p, reference.begin()->first);
          reference.erase({prio_of[k], k});
          prio_of.erase(k);
        }
        break;
    }
    if (step % 1000 == 0) {
      ASSERT_TRUE(heap.CheckInvariants());
    }
    ASSERT_EQ(heap.size(), reference.size());
    if (!reference.empty()) {
      ASSERT_DOUBLE_EQ(heap.Top().second, reference.begin()->first);
    }
  }
  EXPECT_TRUE(heap.CheckInvariants());
}

}  // namespace
}  // namespace cascache::util
