#include "util/random.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

namespace cascache::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BoundedValuesInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RngTest, BoundedValuesCoverRange) {
  Rng rng(7);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 8000; ++i) ++seen[rng.NextUint64(8)];
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected each.
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextIntSingleton) {
  Rng rng(9);
  EXPECT_EQ(rng.NextInt(5, 5), 5);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian(2.0, 3.0);
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, ParetoRespectsScaleAndTail) {
  Rng rng(19);
  int above_double_scale = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double p = rng.NextPareto(10.0, 2.0);
    EXPECT_GE(p, 10.0);
    if (p > 20.0) ++above_double_scale;
  }
  // P(X > 2*xm) = (1/2)^alpha = 0.25.
  EXPECT_NEAR(static_cast<double>(above_double_scale) / n, 0.25, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(21);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(25);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(RngTest, WeightedSamplingFollowsWeights) {
  Rng rng(27);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.NextWeighted(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 40000.0, 0.25, 0.02);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
}

TEST(DiscreteSamplerTest, MatchesWeights) {
  Rng rng(29);
  const std::vector<double> weights = {4.0, 1.0, 0.0, 5.0};
  DiscreteSampler sampler(weights);
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(&rng)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.4, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.5, 0.01);
}

TEST(DiscreteSamplerTest, SingleBucket) {
  Rng rng(31);
  DiscreteSampler sampler({2.5});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(DiscreteSamplerTest, UniformWeights) {
  Rng rng(33);
  DiscreteSampler sampler(std::vector<double>(10, 1.0));
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c / 50000.0, 0.1, 0.015);
}

}  // namespace
}  // namespace cascache::util
