#ifndef CASCACHE_ANALYSIS_CHE_H_
#define CASCACHE_ANALYSIS_CHE_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace cascache::analysis {

/// Che's approximation for a single LRU cache under the independent
/// reference model (IRM): the cache behaves as if every object stays for
/// a fixed *characteristic time* T, so object i with request rate
/// lambda_i hits with probability
///
///   h_i = 1 - exp(-lambda_i * T),
///
/// where T solves the capacity constraint
///
///   sum_i s_i * (1 - exp(-lambda_i * T)) = C.
///
/// This size-aware form supports heterogeneous object sizes. It is the
/// standard closed-form sanity check for trace-driven LRU simulators:
/// cascache's tests require the simulator and this model to agree on IRM
/// workloads.
struct CheResult {
  double characteristic_time = 0.0;
  /// Per-object hit probabilities.
  std::vector<double> hit_probability;
  /// Request-weighted (object) hit ratio: sum lambda_i h_i / sum lambda_i.
  double hit_ratio = 0.0;
  /// Byte hit ratio: sum lambda_i s_i h_i / sum lambda_i s_i.
  double byte_hit_ratio = 0.0;
  /// Expected resident bytes (== capacity unless everything fits).
  double expected_bytes = 0.0;
};

/// Solves Che's approximation. `rates` are per-object request rates
/// (any positive scale), `sizes` the object sizes in bytes, `capacity`
/// the cache size in bytes. Objects with rate 0 never hit. If the whole
/// population fits, T is infinite and every referenced object hits.
util::StatusOr<CheResult> SolveChe(const std::vector<double>& rates,
                                   const std::vector<uint64_t>& sizes,
                                   uint64_t capacity);

/// Expected bytes resident in an LRU cache with characteristic time T.
double ExpectedBytes(const std::vector<double>& rates,
                     const std::vector<uint64_t>& sizes, double t);

}  // namespace cascache::analysis

#endif  // CASCACHE_ANALYSIS_CHE_H_
