#include "analysis/che.h"

#include <cmath>
#include <limits>

namespace cascache::analysis {

double ExpectedBytes(const std::vector<double>& rates,
                     const std::vector<uint64_t>& sizes, double t) {
  double total = 0.0;
  for (size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] <= 0.0) continue;
    total += static_cast<double>(sizes[i]) *
             (1.0 - std::exp(-rates[i] * t));
  }
  return total;
}

util::StatusOr<CheResult> SolveChe(const std::vector<double>& rates,
                                   const std::vector<uint64_t>& sizes,
                                   uint64_t capacity) {
  if (rates.size() != sizes.size()) {
    return util::Status::InvalidArgument("rates/sizes length mismatch");
  }
  if (capacity == 0) {
    return util::Status::InvalidArgument("capacity must be > 0");
  }
  double total_rate = 0.0;
  double total_rate_bytes = 0.0;
  uint64_t referenced_bytes = 0;
  for (size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] < 0.0) {
      return util::Status::InvalidArgument("negative rate");
    }
    if (sizes[i] == 0) {
      return util::Status::InvalidArgument("zero object size");
    }
    if (rates[i] > 0.0) {
      total_rate += rates[i];
      total_rate_bytes += rates[i] * static_cast<double>(sizes[i]);
      referenced_bytes += sizes[i];
    }
  }

  CheResult result;
  result.hit_probability.assign(rates.size(), 0.0);

  if (total_rate == 0.0) {
    return result;  // No traffic: everything is zero.
  }

  if (referenced_bytes <= capacity) {
    // Everything referenced fits: T -> infinity, all hits.
    result.characteristic_time =
        std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < rates.size(); ++i) {
      if (rates[i] > 0.0) result.hit_probability[i] = 1.0;
    }
    result.hit_ratio = 1.0;
    result.byte_hit_ratio = 1.0;
    result.expected_bytes = static_cast<double>(referenced_bytes);
    return result;
  }

  // ExpectedBytes(T) is strictly increasing; bisect for
  // ExpectedBytes(T) == capacity.
  double lo = 0.0;
  double hi = 1.0;
  while (ExpectedBytes(rates, sizes, hi) < static_cast<double>(capacity)) {
    hi *= 2.0;
    if (hi > 1e18) break;  // Numerical guard; essentially everything fits.
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ExpectedBytes(rates, sizes, mid) < static_cast<double>(capacity)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const double t = 0.5 * (lo + hi);
  result.characteristic_time = t;

  double hit_rate = 0.0;
  double hit_rate_bytes = 0.0;
  for (size_t i = 0; i < rates.size(); ++i) {
    if (rates[i] <= 0.0) continue;
    const double h = 1.0 - std::exp(-rates[i] * t);
    result.hit_probability[i] = h;
    hit_rate += rates[i] * h;
    hit_rate_bytes += rates[i] * static_cast<double>(sizes[i]) * h;
  }
  result.hit_ratio = hit_rate / total_rate;
  result.byte_hit_ratio = hit_rate_bytes / total_rate_bytes;
  result.expected_bytes = ExpectedBytes(rates, sizes, t);
  return result;
}

}  // namespace cascache::analysis
