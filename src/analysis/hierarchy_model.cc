#include "analysis/hierarchy_model.h"

#include <cmath>

namespace cascache::analysis {

util::StatusOr<HierarchyModelResult> SolveHierarchyLru(
    const HierarchyModelParams& params) {
  if (params.rates.size() != params.sizes.size()) {
    return util::Status::InvalidArgument("rates/sizes length mismatch");
  }
  if (params.rates.empty()) {
    return util::Status::InvalidArgument("empty object population");
  }
  if (params.capacity_per_node == 0) {
    return util::Status::InvalidArgument("capacity must be > 0");
  }
  if (params.tree.depth < 1 || params.tree.fanout < 1) {
    return util::Status::InvalidArgument("bad tree shape");
  }

  const size_t n = params.rates.size();
  const int depth = params.tree.depth;
  double num_leaves = 1.0;
  for (int i = 1; i < depth; ++i) num_leaves *= params.tree.fanout;

  double total_rate = 0.0;
  double total_rate_bytes = 0.0;
  double mean_size_num = 0.0;
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < n; ++i) {
    if (params.rates[i] < 0.0) {
      return util::Status::InvalidArgument("negative rate");
    }
    if (params.sizes[i] == 0) {
      return util::Status::InvalidArgument("zero object size");
    }
    total_rate += params.rates[i];
    total_rate_bytes +=
        params.rates[i] * static_cast<double>(params.sizes[i]);
    total_bytes += params.sizes[i];
  }
  if (total_rate <= 0.0) {
    return util::Status::InvalidArgument("no request traffic");
  }
  mean_size_num = static_cast<double>(total_bytes) / static_cast<double>(n);

  HierarchyModelResult result;
  result.levels.reserve(static_cast<size_t>(depth));

  // Per-cache arrival rates at the current level (start: one leaf).
  std::vector<double> arrival(n);
  for (size_t i = 0; i < n; ++i) arrival[i] = params.rates[i] / num_leaves;

  // survive[i]: probability a request for object i (entering at a leaf)
  // has missed every level processed so far.
  std::vector<double> survive(n, 1.0);

  result.serve_probability.assign(static_cast<size_t>(depth) + 1, 0.0);
  double hops_acc = 0.0;
  double latency_acc = 0.0;        // sum over requests of delay * size/mean
  double response_acc = 0.0;       // sum of delay (per-request, unscaled)
  double hit_rate = 0.0;
  double hit_rate_bytes = 0.0;

  double cum_delay = 0.0;  // Base delay from a leaf up to this level.
  for (int level = 0; level < depth; ++level) {
    CASCACHE_ASSIGN_OR_RETURN(
        CheResult che,
        SolveChe(arrival, params.sizes, params.capacity_per_node));

    for (size_t i = 0; i < n; ++i) {
      if (params.rates[i] <= 0.0) continue;
      const double h = che.hit_probability[i];
      const double p_serve = survive[i] * h;  // Served at this level.
      const double weight = params.rates[i] / total_rate;
      result.serve_probability[static_cast<size_t>(level)] +=
          weight * p_serve;
      hops_acc += weight * p_serve * level;
      latency_acc += weight * p_serve * cum_delay *
                     (static_cast<double>(params.sizes[i]) / mean_size_num);
      response_acc += weight * p_serve * cum_delay;
      hit_rate += params.rates[i] * p_serve;
      hit_rate_bytes += params.rates[i] * p_serve *
                        static_cast<double>(params.sizes[i]);
      survive[i] *= (1.0 - h);
    }

    result.levels.push_back(std::move(che));

    // Prepare the next level: aggregate the miss streams of `fanout`
    // children; the link climbed has delay g^level * d.
    cum_delay += params.tree.base_delay * std::pow(params.tree.growth, level);
    if (level + 1 < depth) {
      for (size_t i = 0; i < n; ++i) {
        arrival[i] *= (1.0 - result.levels.back().hit_probability[i]) *
                      params.tree.fanout;
      }
    }
  }

  // Origin service: after the final loop iteration cum_delay already
  // includes g^(depth-1)*d, which is exactly the virtual server link
  // (there is no tree link above the root).
  const double origin_delay = cum_delay;
  for (size_t i = 0; i < n; ++i) {
    if (params.rates[i] <= 0.0) continue;
    const double weight = params.rates[i] / total_rate;
    result.serve_probability.back() += weight * survive[i];
    hops_acc += weight * survive[i] * (depth - 1 + 1);
    latency_acc += weight * survive[i] * origin_delay *
                   (static_cast<double>(params.sizes[i]) / mean_size_num);
    response_acc += weight * survive[i] * origin_delay;
  }

  result.hit_ratio = hit_rate / total_rate;
  result.byte_hit_ratio = hit_rate_bytes / total_rate_bytes;
  result.avg_hops = hops_acc;
  result.avg_latency = latency_acc;
  // Response ratio in the simulator: latency / (size in MB); under the
  // size-proportional cost the size cancels, leaving delay * MB / mean.
  result.avg_response_ratio = response_acc * (1024.0 * 1024.0) /
                              mean_size_num;
  return result;
}

}  // namespace cascache::analysis
