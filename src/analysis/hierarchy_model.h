#ifndef CASCACHE_ANALYSIS_HIERARCHY_MODEL_H_
#define CASCACHE_ANALYSIS_HIERARCHY_MODEL_H_

#include <vector>

#include "analysis/che.h"
#include "topology/tree.h"

namespace cascache::analysis {

/// Fixed-point analytical model of hierarchical LRU caching with
/// cache-everywhere placement (the paper's LRU baseline on the Figure-5
/// tree), built by stacking Che approximations level by level:
///
///   * every leaf sees an IRM stream with per-object rate lambda_i / L
///     (L leaves, uniform client assignment);
///   * a level's miss stream, thinned per object by (1 - h_i), aggregates
///     over the fanout into its parent's arrival stream, treated again
///     as IRM (the standard independence approximation).
///
/// The model predicts per-level hit probabilities, the system byte hit
/// ratio, expected hops and the size-scaled access latency — directly
/// comparable to the simulator's MetricsSummary, which the validation
/// tests and bench exploit.
struct HierarchyModelParams {
  topology::TreeParams tree;
  uint64_t capacity_per_node = 0;
  /// Aggregate per-object request rates over all clients (any scale).
  std::vector<double> rates;
  std::vector<uint64_t> sizes;
};

struct HierarchyModelResult {
  /// Che solution per level, index 0 = leaves.
  std::vector<CheResult> levels;
  /// Probability a (random) request is served at level l; the final entry
  /// is the origin-server probability. Sums to 1.
  std::vector<double> serve_probability;
  /// System-wide metrics in the simulator's units.
  double hit_ratio = 0.0;
  double byte_hit_ratio = 0.0;
  double avg_hops = 0.0;
  double avg_latency = 0.0;         ///< Seconds, size-scaled delays.
  double avg_response_ratio = 0.0;  ///< Seconds per MB.
};

util::StatusOr<HierarchyModelResult> SolveHierarchyLru(
    const HierarchyModelParams& params);

}  // namespace cascache::analysis

#endif  // CASCACHE_ANALYSIS_HIERARCHY_MODEL_H_
