#ifndef CASCACHE_UTIL_CSV_H_
#define CASCACHE_UTIL_CSV_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace cascache::util {

/// RFC-4180 field escaping: fields containing a comma, double quote, CR
/// or LF are wrapped in double quotes with embedded quotes doubled; plain
/// fields pass through unchanged.
std::string CsvEscape(const std::string& field);

/// CSV file writer shared by the result exporters (sweep CSV, per-node
/// CSV): one place for field escaping and for short-write checking. Every
/// stdio error is accumulated into a single Close() verdict — on a full
/// disk the failure often only surfaces when fclose flushes the buffer,
/// so Close() decides whether the file is whole.
class CsvWriter {
 public:
  /// Opens `path` for writing; errors surface from Close().
  explicit CsvWriter(const std::string& path);
  /// Closes silently if Close() was never called; errors are lost, so
  /// call Close() on every intentional path.
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes one row, escaping every field.
  void WriteRow(const std::vector<std::string>& fields);

  /// Writes a preformatted line (caller guarantees escaping) plus '\n'.
  void WriteLine(const std::string& line);

  /// Flushes and closes; IoError if the open, any write, or the close
  /// failed. Idempotent: later calls return the first verdict.
  Status Close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool ok_ = true;
  Status close_status_;
  bool closed_ = false;
};

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_CSV_H_
