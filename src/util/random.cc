#include "util/random.h"

#include <cmath>

namespace cascache::util {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  CASCACHE_CHECK(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  CASCACHE_CHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  uint64_t draw = (span == 0) ? NextUint64() : NextUint64(span);
  return lo + static_cast<int64_t>(draw);
}

double Rng::NextDouble() {
  // 53 uniform mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  CASCACHE_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextExponential(double rate) {
  CASCACHE_CHECK(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  double u1, u2;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::NextLogNormal(double mu, double sigma) {
  return std::exp(NextGaussian(mu, sigma));
}

double Rng::NextPareto(double xm, double alpha) {
  CASCACHE_CHECK(xm > 0.0);
  CASCACHE_CHECK(alpha > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  CASCACHE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CASCACHE_CHECK(w >= 0.0);
    total += w;
  }
  CASCACHE_CHECK(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  return weights.size() - 1;  // Guard against floating-point round-off.
}

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  CASCACHE_CHECK(!weights.empty());
  const size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    CASCACHE_CHECK(w >= 0.0);
    total += w;
  }
  CASCACHE_CHECK(total > 0.0);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  std::vector<double> scaled(n);
  std::vector<uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    uint32_t s = small.back();
    small.pop_back();
    uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Remaining buckets are (numerically) exactly 1.
  for (uint32_t s : small) prob_[s] = 1.0;
  for (uint32_t l : large) prob_[l] = 1.0;
}

size_t DiscreteSampler::Sample(Rng* rng) const {
  CASCACHE_CHECK(rng != nullptr);
  const size_t i = static_cast<size_t>(rng->NextUint64(prob_.size()));
  return rng->NextDouble() < prob_[i] ? i : alias_[i];
}

}  // namespace cascache::util
