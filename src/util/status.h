#ifndef CASCACHE_UTIL_STATUS_H_
#define CASCACHE_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

#include "util/check.h"

namespace cascache::util {

/// Coarse error categories, modeled after the common database-library
/// convention (RocksDB/Arrow style): a small closed enum plus a free-form
/// message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kInternal,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Value-semantic error indicator used throughout the library instead of
/// exceptions. A default-constructed Status is OK. Statuses are cheap to
/// copy in the OK case (empty message string).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr aborts the process (CHECK failure), matching the no-exceptions
/// policy of this codebase.
template <typename T>
class StatusOr {
 public:
  /// Intentionally implicit so functions can `return value;` or
  /// `return Status(...);` directly (matches absl::StatusOr usage).
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    CASCACHE_CHECK(!status_.ok());  // OK without a value is meaningless.
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CASCACHE_CHECK(ok());
    return *value_;
  }
  T& value() & {
    CASCACHE_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    CASCACHE_CHECK(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cascache::util

/// Propagates a non-OK Status to the caller.
#define CASCACHE_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::cascache::util::Status _st = (expr);              \
    if (!_st.ok()) return _st;                          \
  } while (0)

/// Evaluates `rexpr` (a StatusOr), propagating errors, else binds the value.
#define CASCACHE_ASSIGN_OR_RETURN(lhs, rexpr)           \
  auto CASCACHE_CONCAT_(_sor_, __LINE__) = (rexpr);     \
  if (!CASCACHE_CONCAT_(_sor_, __LINE__).ok())          \
    return CASCACHE_CONCAT_(_sor_, __LINE__).status();  \
  lhs = std::move(CASCACHE_CONCAT_(_sor_, __LINE__)).value()

#define CASCACHE_CONCAT_INNER_(a, b) a##b
#define CASCACHE_CONCAT_(a, b) CASCACHE_CONCAT_INNER_(a, b)

#endif  // CASCACHE_UTIL_STATUS_H_
