#ifndef CASCACHE_UTIL_FLAGS_H_
#define CASCACHE_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace cascache::util {

/// Minimal command-line flag parser for the driver binaries. Supports
/// `--name=value`, `--name value` and bare boolean `--name`. Unknown
/// flags and malformed values are errors; positional arguments are
/// collected in order.
class FlagParser {
 public:
  /// All Add* calls must happen before Parse. The pointees receive the
  /// default immediately and the parsed value on success.
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help, std::string* out);
  void AddInt64(const std::string& name, int64_t default_value,
                const std::string& help, int64_t* out);
  void AddUint64(const std::string& name, uint64_t default_value,
                 const std::string& help, uint64_t* out);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help, double* out);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help, bool* out);

  /// Parses argv (excluding argv[0]).
  Status Parse(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Whether the flag appeared on the last parsed command line (as
  /// opposed to holding its default). Lets callers layer CLI values over
  /// other configuration sources. False for unknown names.
  bool WasSet(const std::string& name) const;

  /// Help text listing every flag with its default and description.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kString, kInt64, kUint64, kDouble, kBool };

  struct Flag {
    std::string name;
    Type type;
    std::string help;
    std::string default_text;
    void* out;
    bool parsed = false;  ///< Seen on the last Parse'd command line.
  };

  Status SetValue(const Flag& flag, const std::string& value);
  Flag* Find(const std::string& name);
  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
  std::vector<std::string> positional_;
};

/// Splits a comma-separated list ("a,b,c"); empty input gives an empty
/// vector, empty elements are dropped.
std::vector<std::string> SplitCommaList(const std::string& text);

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_FLAGS_H_
