#include "util/zipf.h"

#include <cmath>

#include "util/check.h"

namespace cascache::util {

std::vector<double> ZipfDistribution::Weights(size_t n, double theta) {
  CASCACHE_CHECK(n >= 1);
  CASCACHE_CHECK(theta > 0.0);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return w;
}

ZipfDistribution::ZipfDistribution(size_t n, double theta)
    : theta_(theta), pmf_(Weights(n, theta)), sampler_(pmf_) {
  double total = 0.0;
  for (double w : pmf_) total += w;
  for (double& w : pmf_) w /= total;
}

ZipfSampler::ZipfSampler(size_t n, double theta) : n_(n), theta_(theta) {
  CASCACHE_CHECK(n >= 1);
  CASCACHE_CHECK(theta > 0.0);
  if (n < kAliasLimit) {
    alias_ = std::make_unique<ZipfDistribution>(n, theta);
    return;
  }
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_n_ = HIntegral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

/// Integral of h(x) = x^-theta: (x^(1-theta) - 1) / (1 - theta), with the
/// log(x) limit at theta = 1. The "-1" constant keeps the expm1/log1p
/// formulations numerically stable for theta near 1 (Hörmann's trick as
/// implemented in commons-math).
double ZipfSampler::HIntegral(double x) const {
  const double log_x = std::log(x);
  // helper(x) = (e^x - 1) / x, continuous at 0.
  const double t = (1.0 - theta_) * log_x;
  const double helper = std::abs(t) > 1e-8 ? std::expm1(t) / t : 1.0 + t / 2.0;
  return log_x * helper;
}

double ZipfSampler::H(double x) const {
  return std::exp(-theta_ * std::log(x));
}

double ZipfSampler::HIntegralInverse(double x) const {
  double t = x * (1.0 - theta_);
  if (t < -1.0) t = -1.0;  // Numerical guard near the lower tail.
  // helper(x) = log(1 + x) / x, continuous at 0.
  const double helper =
      std::abs(t) > 1e-8 ? std::log1p(t) / t : 1.0 - t / 2.0;
  return std::exp(x * helper);
}

size_t ZipfSampler::Sample(Rng* rng) const {
  if (alias_ != nullptr) return alias_->Sample(rng);
  while (true) {
    const double u =
        h_integral_n_ + rng->NextDouble() * (h_integral_x1_ - h_integral_n_);
    const double x = HIntegralInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    const double n_d = static_cast<double>(n_);
    if (k > n_d) k = n_d;
    // Accept if k is within the hat's half-width of x, or by the exact
    // rejection test against the histogram bar at k.
    if (k - x <= s_ || u >= HIntegral(k + 0.5) - H(k)) {
      return static_cast<size_t>(k) - 1;
    }
  }
}

double EstimateZipfTheta(const std::vector<double>& counts) {
  // Simple linear regression of log(count_i) on log(i+1).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  size_t m = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] <= 0.0) continue;
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(counts[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++m;
  }
  if (m < 2) return 0.0;
  const double denom = m * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  const double slope = (m * sxy - sx * sy) / denom;
  return -slope;
}

}  // namespace cascache::util
