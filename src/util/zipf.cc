#include "util/zipf.h"

#include <cmath>

#include "util/check.h"

namespace cascache::util {

std::vector<double> ZipfDistribution::Weights(size_t n, double theta) {
  CASCACHE_CHECK(n >= 1);
  CASCACHE_CHECK(theta > 0.0);
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), theta);
  }
  return w;
}

ZipfDistribution::ZipfDistribution(size_t n, double theta)
    : theta_(theta), pmf_(Weights(n, theta)), sampler_(pmf_) {
  double total = 0.0;
  for (double w : pmf_) total += w;
  for (double& w : pmf_) w /= total;
}

double EstimateZipfTheta(const std::vector<double>& counts) {
  // Simple linear regression of log(count_i) on log(i+1).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  size_t m = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] <= 0.0) continue;
    const double x = std::log(static_cast<double>(i + 1));
    const double y = std::log(counts[i]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++m;
  }
  if (m < 2) return 0.0;
  const double denom = m * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  const double slope = (m * sxy - sx * sy) / denom;
  return -slope;
}

}  // namespace cascache::util
