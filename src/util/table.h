#ifndef CASCACHE_UTIL_TABLE_H_
#define CASCACHE_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace cascache::util {

/// Plain-text table formatter used by the benchmark harnesses to print
/// paper-style result tables (one column per scheme / metric, one row per
/// cache size). Cells are right-aligned; the first column is left-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string Fmt(double v, int precision = 4);

  /// Renders the full table with a separator under the header.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_TABLE_H_
