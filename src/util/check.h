#ifndef CASCACHE_UTIL_CHECK_H_
#define CASCACHE_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant-checking macros. The library does not use exceptions; violated
/// invariants are programming errors and abort the process with a message
/// identifying the failing expression and location.

#define CASCACHE_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #cond,          \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define CASCACHE_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed: %s (%s) at %s:%d\n", #cond,     \
                   msg, __FILE__, __LINE__);                              \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

/// Aborts if `status_expr` is not OK. Usable on Status values.
#define CASCACHE_CHECK_OK(status_expr)                                    \
  do {                                                                    \
    const auto& _st = (status_expr);                                      \
    if (!_st.ok()) {                                                      \
      std::fprintf(stderr, "CHECK_OK failed: %s at %s:%d\n",              \
                   _st.ToString().c_str(), __FILE__, __LINE__);           \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifndef NDEBUG
#define CASCACHE_DCHECK(cond) CASCACHE_CHECK(cond)
#else
#define CASCACHE_DCHECK(cond) \
  do {                        \
  } while (0)
#endif

#endif  // CASCACHE_UTIL_CHECK_H_
