#ifndef CASCACHE_UTIL_THREAD_POOL_H_
#define CASCACHE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cascache::util {

/// Fixed-size worker pool with a bounded FIFO task queue, used by the
/// experiment runner to execute sweep cells concurrently.
///
/// Guarantees:
///  - Submit() blocks when the queue is full (backpressure instead of
///    unbounded memory growth).
///  - Wait() blocks until every task submitted so far has finished; if a
///    task threw, the first exception is rethrown there.
///  - The destructor drains the queue, finishes running tasks and joins
///    every worker — no detached threads survive the pool.
///
/// Tasks must synchronize any state they share; the pool itself only
/// hands each task to exactly one worker (the queue operations
/// happen-before the task body, and task completion happens-before
/// Wait() returning).
class ThreadPool {
 public:
  /// `num_threads` must be >= 1. `max_queued` bounds the number of
  /// not-yet-started tasks; 0 picks 4 tasks per worker.
  explicit ThreadPool(int num_threads, size_t max_queued = 0)
      : max_queued_(max_queued > 0
                        ? max_queued
                        : 4 * static_cast<size_t>(num_threads)) {
    CASCACHE_CHECK_MSG(num_threads >= 1, "thread pool needs >= 1 worker");
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      shutting_down_ = true;
    }
    task_available_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    // A task failure that was never observed via Wait() is a programming
    // error; surface it instead of swallowing it.
    CASCACHE_CHECK_MSG(first_error_ == nullptr,
                       "thread pool destroyed with unretrieved task error");
  }

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; blocks while `max_queued` tasks are already
  /// pending. Must not be called concurrently with the destructor.
  void Submit(std::function<void()> task) {
    CASCACHE_CHECK(task != nullptr);
    {
      std::unique_lock<std::mutex> lock(mu_);
      CASCACHE_CHECK_MSG(!shutting_down_, "Submit after shutdown");
      space_available_.wait(lock,
                            [this] { return queue_.size() < max_queued_; });
      queue_.push_back(std::move(task));
    }
    task_available_.notify_one();
  }

  /// Blocks until the queue is empty and no task is running, then
  /// rethrows the first task exception, if any. The pool stays usable
  /// afterwards.
  void Wait() {
    std::exception_ptr error;
    {
      std::unique_lock<std::mutex> lock(mu_);
      idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
      error = std::exchange(first_error_, nullptr);
    }
    if (error != nullptr) std::rethrow_exception(error);
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        task_available_.wait(
            lock, [this] { return !queue_.empty() || shutting_down_; });
        if (queue_.empty()) return;  // Shutting down and fully drained.
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      space_available_.notify_one();
      try {
        task();
      } catch (...) {
        std::unique_lock<std::mutex> lock(mu_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
      {
        std::unique_lock<std::mutex> lock(mu_);
        --active_;
        if (queue_.empty() && active_ == 0) idle_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable space_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  const size_t max_queued_;
  int active_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_error_;
};

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_THREAD_POOL_H_
