#ifndef CASCACHE_UTIL_ZIPF_H_
#define CASCACHE_UTIL_ZIPF_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace cascache::util {

/// Zipf-like popularity distribution over ranks 1..n: the probability of
/// rank i is proportional to 1/i^theta. Web object popularity follows this
/// law (Breslau et al., INFOCOM'99), which the reproduced paper relies on
/// when arguing its subtrace extraction is unbiased.
///
/// Sampling uses the alias method: O(n) setup, O(1) per draw.
class ZipfDistribution {
 public:
  /// `n` must be >= 1, `theta` > 0.
  ZipfDistribution(size_t n, double theta);

  /// Draws a rank in [0, n) (0 = most popular).
  size_t Sample(Rng* rng) const { return sampler_.Sample(rng); }

  /// Probability mass of rank i (0-based).
  double pmf(size_t i) const { return pmf_[i]; }

  size_t n() const { return pmf_.size(); }
  double theta() const { return theta_; }

  /// Raw (unnormalized) weight vector 1/i^theta for ranks 1..n.
  static std::vector<double> Weights(size_t n, double theta);

 private:
  double theta_;
  std::vector<double> pmf_;
  DiscreteSampler sampler_;
};

/// Least-squares estimate of the Zipf exponent from observed access counts:
/// fits log(count) ~ -theta * log(rank) + c over ranks with nonzero counts.
/// Used by tests to verify generated workloads have the configured skew.
/// `counts` must be sorted descending (rank order). Returns 0 if fewer than
/// two nonzero ranks.
double EstimateZipfTheta(const std::vector<double>& counts);

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_ZIPF_H_
