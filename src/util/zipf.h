#ifndef CASCACHE_UTIL_ZIPF_H_
#define CASCACHE_UTIL_ZIPF_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "util/random.h"

namespace cascache::util {

/// Zipf-like popularity distribution over ranks 1..n: the probability of
/// rank i is proportional to 1/i^theta. Web object popularity follows this
/// law (Breslau et al., INFOCOM'99), which the reproduced paper relies on
/// when arguing its subtrace extraction is unbiased.
///
/// Sampling uses the alias method: O(n) setup, O(1) per draw.
class ZipfDistribution {
 public:
  /// `n` must be >= 1, `theta` > 0.
  ZipfDistribution(size_t n, double theta);

  /// Draws a rank in [0, n) (0 = most popular).
  size_t Sample(Rng* rng) const { return sampler_.Sample(rng); }

  /// Probability mass of rank i (0-based).
  double pmf(size_t i) const { return pmf_[i]; }

  size_t n() const { return pmf_.size(); }
  double theta() const { return theta_; }

  /// Raw (unnormalized) weight vector 1/i^theta for ranks 1..n.
  static std::vector<double> Weights(size_t n, double theta);

 private:
  double theta_;
  std::vector<double> pmf_;
  DiscreteSampler sampler_;
};

/// Memory-adaptive Zipf sampler over ranks [0, n). Below kAliasLimit it
/// wraps ZipfDistribution (alias method: O(n) doubles of setup, O(1) exact
/// draws — the historical sampler, so existing RNG streams are preserved).
/// At or above the limit the alias tables would cost O(n) doubles (~2.4 GB
/// at n = 10^8), so it switches to Hörmann's rejection-inversion
/// (Hörmann & Derflinger, "Rejection-inversion to generate variates from
/// monotone discrete distributions", TOMACS 1996; the sampler
/// commons-math/YCSB use): O(1) memory, ~1.05 draws of the underlying
/// uniform per sample. The two modes draw different streams, so a given
/// (n, theta) always selects the same mode deterministically — mode is a
/// pure function of n.
class ZipfSampler {
 public:
  /// Populations at or above this rank count use rejection-inversion.
  /// 1<<24 ranks of alias tables is ~400 MB — the largest footprint the
  /// scale-smoke RSS budget tolerates alongside the cache plane.
  static constexpr size_t kAliasLimit = size_t{1} << 24;

  ZipfSampler(size_t n, double theta);

  /// Draws a rank in [0, n) (0 = most popular).
  size_t Sample(Rng* rng) const;

  size_t n() const { return n_; }
  double theta() const { return theta_; }
  bool rejection_mode() const { return alias_ == nullptr; }

 private:
  double HIntegral(double x) const;
  double H(double x) const;
  double HIntegralInverse(double x) const;

  size_t n_;
  double theta_;
  std::unique_ptr<ZipfDistribution> alias_;  ///< Null in rejection mode.

  // Rejection-inversion precomputed constants (Hörmann's notation).
  double h_integral_x1_ = 0.0;  ///< hIntegral(1.5) - 1.
  double h_integral_n_ = 0.0;   ///< hIntegral(n + 0.5).
  double s_ = 0.0;              ///< 2 - hIntegralInverse(hIntegral(2.5) - h(2)).
};

/// Least-squares estimate of the Zipf exponent from observed access counts:
/// fits log(count) ~ -theta * log(rank) + c over ranks with nonzero counts.
/// Used by tests to verify generated workloads have the configured skew.
/// `counts` must be sorted descending (rank order). Returns 0 if fewer than
/// two nonzero ranks.
double EstimateZipfTheta(const std::vector<double>& counts);

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_ZIPF_H_
