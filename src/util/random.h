#ifndef CASCACHE_UTIL_RANDOM_H_
#define CASCACHE_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace cascache::util {

/// Deterministic, fast pseudo-random number generator (xoshiro256**),
/// seeded via SplitMix64. All simulation randomness flows through this
/// class so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with success probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Exponential variate with the given rate (mean 1/rate).
  double NextExponential(double rate);

  /// Normal variate (Box-Muller, cached second value).
  double NextGaussian(double mean = 0.0, double stddev = 1.0);

  /// Log-normal variate: exp(N(mu, sigma)).
  double NextLogNormal(double mu, double sigma);

  /// Pareto variate with scale `xm` > 0 and shape `alpha` > 0.
  double NextPareto(double xm, double alpha);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    CASCACHE_CHECK(v != nullptr);
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Draws an index in [0, weights.size()) proportionally to the weights.
  /// Weights must be non-negative with a positive sum. O(n); for repeated
  /// sampling from a fixed distribution use DiscreteSampler or
  /// ZipfDistribution instead.
  size_t NextWeighted(const std::vector<double>& weights);

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Alias-method sampler over a fixed discrete distribution: O(n) setup,
/// O(1) per draw. Used for popularity-driven object sampling in workload
/// generation.
class DiscreteSampler {
 public:
  /// `weights` must be non-empty with non-negative entries and positive sum.
  explicit DiscreteSampler(const std::vector<double>& weights);

  /// Draws an index with probability proportional to its weight.
  size_t Sample(Rng* rng) const;

  size_t size() const { return prob_.size(); }

 private:
  std::vector<double> prob_;
  std::vector<uint32_t> alias_;
};

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_RANDOM_H_
