#ifndef CASCACHE_UTIL_INDEXED_HEAP_H_
#define CASCACHE_UTIL_INDEXED_HEAP_H_

#include <cstddef>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cascache::util {

/// Binary min-heap over (key, priority) pairs with O(log n) priority update
/// and erase by key. This backs the NCL-ordered cache store (descriptors
/// keyed by normalized cost loss, §2.4 of the paper: "descriptors of cached
/// objects can be organized as a heap based on their normalized cost
/// losses") and the LFU d-cache.
///
/// Keys must be unique and hashable. Priorities are doubles; ties are
/// broken arbitrarily.
template <typename Key, typename Hash = std::hash<Key>>
class IndexedMinHeap {
 public:
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  bool Contains(const Key& key) const { return pos_.count(key) > 0; }

  /// Priority of an existing key. The key must be present.
  double PriorityOf(const Key& key) const {
    auto it = pos_.find(key);
    CASCACHE_CHECK(it != pos_.end());
    return entries_[it->second].second;
  }

  /// Inserts a new key. The key must not already be present.
  void Push(const Key& key, double priority) {
    CASCACHE_CHECK_MSG(!Contains(key), "duplicate key in IndexedMinHeap");
    entries_.emplace_back(key, priority);
    pos_[key] = entries_.size() - 1;
    SiftUp(entries_.size() - 1);
  }

  /// The minimum-priority entry. Heap must be non-empty.
  const std::pair<Key, double>& Top() const {
    CASCACHE_CHECK(!entries_.empty());
    return entries_[0];
  }

  /// Removes and returns the minimum-priority entry.
  std::pair<Key, double> Pop() {
    CASCACHE_CHECK(!entries_.empty());
    std::pair<Key, double> top = entries_[0];
    RemoveAt(0);
    return top;
  }

  /// Changes the priority of an existing key.
  void Update(const Key& key, double priority) {
    auto it = pos_.find(key);
    CASCACHE_CHECK(it != pos_.end());
    const size_t i = it->second;
    const double old = entries_[i].second;
    entries_[i].second = priority;
    if (priority < old) {
      SiftUp(i);
    } else if (priority > old) {
      SiftDown(i);
    }
  }

  /// Inserts the key or updates its priority if already present.
  void Upsert(const Key& key, double priority) {
    if (Contains(key)) {
      Update(key, priority);
    } else {
      Push(key, priority);
    }
  }

  /// Removes a key; returns false if it was not present.
  bool Erase(const Key& key) {
    auto it = pos_.find(key);
    if (it == pos_.end()) return false;
    RemoveAt(it->second);
    return true;
  }

  void Clear() {
    entries_.clear();
    pos_.clear();
  }

  /// Unordered view of all entries (heap order, not priority order).
  const std::vector<std::pair<Key, double>>& entries() const {
    return entries_;
  }

  /// Verifies the heap property and index map; used by tests.
  bool CheckInvariants() const {
    if (pos_.size() != entries_.size()) return false;
    for (size_t i = 0; i < entries_.size(); ++i) {
      auto it = pos_.find(entries_[i].first);
      if (it == pos_.end() || it->second != i) return false;
      const size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < entries_.size() && entries_[l].second < entries_[i].second)
        return false;
      if (r < entries_.size() && entries_[r].second < entries_[i].second)
        return false;
    }
    return true;
  }

 private:
  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (entries_[parent].second <= entries_[i].second) break;
      SwapEntries(i, parent);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = entries_.size();
    for (;;) {
      const size_t l = 2 * i + 1, r = 2 * i + 2;
      size_t smallest = i;
      if (l < n && entries_[l].second < entries_[smallest].second)
        smallest = l;
      if (r < n && entries_[r].second < entries_[smallest].second)
        smallest = r;
      if (smallest == i) break;
      SwapEntries(i, smallest);
      i = smallest;
    }
  }

  void SwapEntries(size_t a, size_t b) {
    std::swap(entries_[a], entries_[b]);
    pos_[entries_[a].first] = a;
    pos_[entries_[b].first] = b;
  }

  void RemoveAt(size_t i) {
    const size_t last = entries_.size() - 1;
    pos_.erase(entries_[i].first);
    if (i != last) {
      entries_[i] = entries_[last];
      pos_[entries_[i].first] = i;
      entries_.pop_back();
      // The moved element may need to go either direction.
      SiftDown(i);
      SiftUp(i);
    } else {
      entries_.pop_back();
    }
  }

  std::vector<std::pair<Key, double>> entries_;
  std::unordered_map<Key, size_t, Hash> pos_;
};

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_INDEXED_HEAP_H_
