#ifndef CASCACHE_UTIL_INDEXED_HEAP_H_
#define CASCACHE_UTIL_INDEXED_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace cascache::util {

inline constexpr size_t kHeapNpos = static_cast<size_t>(-1);

/// Default key→heap-position map: a hash table. Works for any hashable
/// key type.
template <typename Key, typename Hash = std::hash<Key>>
class HashPosMap {
 public:
  size_t Lookup(const Key& key) const {
    auto it = pos_.find(key);
    return it == pos_.end() ? kHeapNpos : it->second;
  }
  void Set(const Key& key, size_t pos) { pos_[key] = pos; }
  void Erase(const Key& key) { pos_.erase(key); }
  void Clear() { pos_.clear(); }
  /// Storage-mode hint; a no-op here (hashing is already id-sparse).
  void SetSparse(bool) {}
  size_t size() const { return pos_.size(); }

 private:
  std::unordered_map<Key, size_t, Hash> pos_;
};

/// Direct-index key→heap-position map for keys that are dense unsigned
/// integers (the closed ObjectId catalog): one array load per lookup
/// instead of a hash probe. Grows lazily to the largest key seen; Clear
/// is O(1) (the table re-grows on demand, retaining capacity).
///
/// SetSparse switches to a hash table internally: at huge catalogs
/// (10^8 ids) the dense array would cost 8 bytes per id *per heap*
/// (~800 MB each in the LFU store and every d-cache), while heap
/// operations run only on misses — hashing there is cheap relative to
/// what it saves. The dense fast path keeps one predictable branch.
class DensePosMap {
 public:
  size_t Lookup(uint32_t key) const {
    if (!sparse_) return key < pos_.size() ? pos_[key] : kHeapNpos;
    auto it = sparse_pos_.find(key);
    return it == sparse_pos_.end() ? kHeapNpos : it->second;
  }
  void Set(uint32_t key, size_t pos) {
    if (sparse_) {
      sparse_pos_[key] = pos;
      return;
    }
    if (key >= pos_.size()) {
      const size_t target =
          std::max<size_t>(static_cast<size_t>(key) + 1, pos_.size() * 2);
      pos_.resize(target, kHeapNpos);
    }
    pos_[key] = pos;
  }
  void Erase(uint32_t key) {
    if (sparse_) {
      sparse_pos_.erase(key);
      return;
    }
    if (key < pos_.size()) pos_[key] = kHeapNpos;
    --count_;  // Callers only erase present keys (heap invariant).
  }
  void Clear() {
    pos_.clear();
    sparse_pos_.clear();
    count_ = 0;
  }
  /// Selects dense (default) or hash storage; the map must be empty.
  void SetSparse(bool sparse) {
    CASCACHE_CHECK(count_ == 0 && sparse_pos_.empty());
    sparse_ = sparse;
  }
  size_t size() const { return sparse_ ? sparse_pos_.size() : count_; }

 private:
  std::vector<size_t> pos_;
  size_t count_ = 0;
  bool sparse_ = false;
  std::unordered_map<uint32_t, size_t> sparse_pos_;
};

/// Binary min-heap over (key, priority) pairs with O(log n) priority update
/// and erase by key. This backs the NCL-ordered cache store (descriptors
/// keyed by normalized cost loss, §2.4 of the paper: "descriptors of cached
/// objects can be organized as a heap based on their normalized cost
/// losses") and the LFU d-cache.
///
/// Keys must be unique. Priorities are doubles; ties are broken
/// arbitrarily (but deterministically: the sift order depends only on the
/// operation sequence, so the PosMap policy never changes victims).
/// The PosMap parameter selects the key→position index: HashPosMap for
/// arbitrary keys, DensePosMap for dense uint32 keys (ObjectId stores).
template <typename Key, typename PosMap = HashPosMap<Key>>
class IndexedMinHeap {
 public:
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  bool Contains(const Key& key) const {
    return pos_.Lookup(key) != kHeapNpos;
  }

  /// Priority of an existing key. The key must be present.
  double PriorityOf(const Key& key) const {
    const size_t i = pos_.Lookup(key);
    CASCACHE_CHECK(i != kHeapNpos);
    return entries_[i].second;
  }

  /// Inserts a new key. The key must not already be present.
  void Push(const Key& key, double priority) {
    CASCACHE_CHECK_MSG(!Contains(key), "duplicate key in IndexedMinHeap");
    entries_.emplace_back(key, priority);
    pos_.Set(key, entries_.size() - 1);
    SiftUp(entries_.size() - 1);
  }

  /// The minimum-priority entry. Heap must be non-empty.
  const std::pair<Key, double>& Top() const {
    CASCACHE_CHECK(!entries_.empty());
    return entries_[0];
  }

  /// Removes and returns the minimum-priority entry.
  std::pair<Key, double> Pop() {
    CASCACHE_CHECK(!entries_.empty());
    std::pair<Key, double> top = entries_[0];
    RemoveAt(0);
    return top;
  }

  /// Changes the priority of an existing key.
  void Update(const Key& key, double priority) {
    const size_t i = pos_.Lookup(key);
    CASCACHE_CHECK(i != kHeapNpos);
    const double old = entries_[i].second;
    entries_[i].second = priority;
    if (priority < old) {
      SiftUp(i);
    } else if (priority > old) {
      SiftDown(i);
    }
  }

  /// Inserts the key or updates its priority if already present.
  void Upsert(const Key& key, double priority) {
    if (Contains(key)) {
      Update(key, priority);
    } else {
      Push(key, priority);
    }
  }

  /// Removes a key; returns false if it was not present.
  bool Erase(const Key& key) {
    const size_t i = pos_.Lookup(key);
    if (i == kHeapNpos) return false;
    RemoveAt(i);
    return true;
  }

  void Clear() {
    entries_.clear();
    pos_.Clear();
  }

  /// Forwards the position-map storage mode (DensePosMap switches to
  /// hashing for huge sparse key spaces; HashPosMap ignores it). The
  /// heap must be empty.
  void SetSparse(bool sparse) {
    CASCACHE_CHECK(entries_.empty());
    pos_.SetSparse(sparse);
  }

  /// Unordered view of all entries (heap order, not priority order).
  const std::vector<std::pair<Key, double>>& entries() const {
    return entries_;
  }

  /// Verifies the heap property and index map; used by tests.
  bool CheckInvariants() const {
    if (pos_.size() != entries_.size()) return false;
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (pos_.Lookup(entries_[i].first) != i) return false;
      const size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < entries_.size() && entries_[l].second < entries_[i].second)
        return false;
      if (r < entries_.size() && entries_[r].second < entries_[i].second)
        return false;
    }
    return true;
  }

 private:
  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (entries_[parent].second <= entries_[i].second) break;
      SwapEntries(i, parent);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = entries_.size();
    for (;;) {
      const size_t l = 2 * i + 1, r = 2 * i + 2;
      size_t smallest = i;
      if (l < n && entries_[l].second < entries_[smallest].second)
        smallest = l;
      if (r < n && entries_[r].second < entries_[smallest].second)
        smallest = r;
      if (smallest == i) break;
      SwapEntries(i, smallest);
      i = smallest;
    }
  }

  void SwapEntries(size_t a, size_t b) {
    std::swap(entries_[a], entries_[b]);
    pos_.Set(entries_[a].first, a);
    pos_.Set(entries_[b].first, b);
  }

  void RemoveAt(size_t i) {
    const size_t last = entries_.size() - 1;
    pos_.Erase(entries_[i].first);
    if (i != last) {
      entries_[i] = entries_[last];
      pos_.Set(entries_[i].first, i);
      entries_.pop_back();
      // The moved element may need to go either direction.
      SiftDown(i);
      SiftUp(i);
    } else {
      entries_.pop_back();
    }
  }

  std::vector<std::pair<Key, double>> entries_;
  PosMap pos_;
};

/// Heap over the dense ObjectId space: direct-index position map.
template <typename Key>
using DenseIndexedMinHeap = IndexedMinHeap<Key, DensePosMap>;

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_INDEXED_HEAP_H_
