#include "util/flags.h"

#include <cstdlib>

namespace cascache::util {

namespace {

bool ParseBoolText(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text == "yes") {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0" || text == "no") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help, std::string* out) {
  CASCACHE_CHECK(out != nullptr);
  *out = default_value;
  flags_.push_back({name, Type::kString, help, default_value, out});
}

void FlagParser::AddInt64(const std::string& name, int64_t default_value,
                          const std::string& help, int64_t* out) {
  CASCACHE_CHECK(out != nullptr);
  *out = default_value;
  flags_.push_back(
      {name, Type::kInt64, help, std::to_string(default_value), out});
}

void FlagParser::AddUint64(const std::string& name, uint64_t default_value,
                           const std::string& help, uint64_t* out) {
  CASCACHE_CHECK(out != nullptr);
  *out = default_value;
  flags_.push_back(
      {name, Type::kUint64, help, std::to_string(default_value), out});
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help, double* out) {
  CASCACHE_CHECK(out != nullptr);
  *out = default_value;
  flags_.push_back(
      {name, Type::kDouble, help, std::to_string(default_value), out});
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help, bool* out) {
  CASCACHE_CHECK(out != nullptr);
  *out = default_value;
  flags_.push_back(
      {name, Type::kBool, help, default_value ? "true" : "false", out});
}

FlagParser::Flag* FlagParser::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

const FlagParser::Flag* FlagParser::Find(const std::string& name) const {
  for (const Flag& flag : flags_) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

bool FlagParser::WasSet(const std::string& name) const {
  const Flag* flag = Find(name);
  return flag != nullptr && flag->parsed;
}

Status FlagParser::SetValue(const Flag& flag, const std::string& value) {
  char* end = nullptr;
  switch (flag.type) {
    case Type::kString:
      *static_cast<std::string*>(flag.out) = value;
      return Status::Ok();
    case Type::kInt64: {
      const long long parsed = std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0') {
        return Status::InvalidArgument("bad integer for --" + flag.name +
                                       ": " + value);
      }
      *static_cast<int64_t*>(flag.out) = parsed;
      return Status::Ok();
    }
    case Type::kUint64: {
      if (value.empty() || value[0] == '-') {
        return Status::InvalidArgument("bad unsigned for --" + flag.name +
                                       ": " + value);
      }
      const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
      if (*end != '\0') {
        return Status::InvalidArgument("bad unsigned for --" + flag.name +
                                       ": " + value);
      }
      *static_cast<uint64_t*>(flag.out) = parsed;
      return Status::Ok();
    }
    case Type::kDouble: {
      const double parsed = std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0') {
        return Status::InvalidArgument("bad number for --" + flag.name +
                                       ": " + value);
      }
      *static_cast<double*>(flag.out) = parsed;
      return Status::Ok();
    }
    case Type::kBool: {
      bool parsed = false;
      if (!ParseBoolText(value, &parsed)) {
        return Status::InvalidArgument("bad bool for --" + flag.name + ": " +
                                       value);
      }
      *static_cast<bool*>(flag.out) = parsed;
      return Status::Ok();
    }
  }
  return Status::Internal("unhandled flag type");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  positional_.clear();
  for (Flag& flag : flags_) flag.parsed = false;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const size_t eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    Flag* flag = Find(name);
    if (flag == nullptr) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (flag->type == Type::kBool) {
        // Bare boolean flag.
        *static_cast<bool*>(flag->out) = true;
        flag->parsed = true;
        continue;
      }
      if (i + 1 >= argc) {
        return Status::InvalidArgument("missing value for --" + name);
      }
      value = argv[++i];
    }
    CASCACHE_RETURN_IF_ERROR(SetValue(*flag, value));
    flag->parsed = true;
  }
  return Status::Ok();
}

std::string FlagParser::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const Flag& flag : flags_) {
    out += "  --" + flag.name + " (default: " + flag.default_text + ")\n      " +
           flag.help + "\n";
  }
  return out;
}

std::vector<std::string> SplitCommaList(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t comma = text.find(',', start);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    if (end > start) parts.push_back(text.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

}  // namespace cascache::util
