#ifndef CASCACHE_UTIL_STATS_H_
#define CASCACHE_UTIL_STATS_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cascache::util {

/// Streaming univariate statistics (Welford's algorithm): mean, variance,
/// min, max, count and sum in O(1) memory.
class RunningStat {
 public:
  /// Welford's update; inline because the metrics collector calls it
  /// several times per replayed request.
  void Add(double x) {
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  /// Merges another accumulator into this one (parallel-combine form of
  /// Welford's update).
  void Merge(const RunningStat& other);

  void Reset() { *this = RunningStat(); }

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-resolution log-bucketed histogram for non-negative values,
/// supporting approximate quantiles. Buckets grow geometrically so relative
/// error is bounded by the growth factor; suitable for latency-like
/// metrics spanning several orders of magnitude.
class Histogram {
 public:
  /// `min_value` is the upper bound of the first bucket; values below it
  /// land in bucket 0. `growth` must be > 1.
  explicit Histogram(double min_value = 1e-6, double growth = 1.05,
                     size_t num_buckets = 512);

  void Add(double x);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Approximate quantile (q in [0,1]); returns a bucket-representative
  /// value. Returns 0 for an empty histogram.
  double Quantile(double q) const;

  /// One-line summary: count / mean / p50 / p95 / p99 / max-bucket.
  std::string Summary() const;

 private:
  size_t BucketFor(double x) const;
  double BucketValue(size_t b) const;

  double min_value_;
  double log_growth_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

}  // namespace cascache::util

#endif  // CASCACHE_UTIL_STATS_H_
