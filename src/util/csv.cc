#include "util/csv.h"

namespace cascache::util {

std::string CsvEscape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

CsvWriter::CsvWriter(const std::string& path) : path_(path) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ == nullptr) ok_ = false;
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line.push_back(',');
    line += CsvEscape(fields[i]);
  }
  WriteLine(line);
}

void CsvWriter::WriteLine(const std::string& line) {
  if (file_ == nullptr) return;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fputc('\n', file_) == EOF) {
    ok_ = false;
  }
}

Status CsvWriter::Close() {
  if (closed_) return close_status_;
  closed_ = true;
  if (file_ == nullptr) {
    close_status_ = Status::IoError("cannot open " + path_);
    return close_status_;
  }
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (!ok_ || rc != 0) {
    close_status_ = Status::IoError("short write to " + path_);
  }
  return close_status_;
}

}  // namespace cascache::util
