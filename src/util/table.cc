#include "util/table.h"

#include <cstdio>

#include "util/check.h"

namespace cascache::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  CASCACHE_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  CASCACHE_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      const size_t pad = widths[c] - row[c].size();
      if (c == 0) {
        line += row[c] + std::string(pad, ' ');
      } else {
        line += std::string(pad, ' ') + row[c];
      }
      if (c + 1 < row.size()) line += "  ";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out += std::string(total, '-') + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace cascache::util
