#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace cascache::util {

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const uint64_t n = count_ + other.count_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                         static_cast<double>(other.count_) /
                         static_cast<double>(n);
  mean_ += delta * static_cast<double>(other.count_) / static_cast<double>(n);
  sum_ += other.sum_;
  count_ = n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double min_value, double growth, size_t num_buckets)
    : min_value_(min_value),
      log_growth_(std::log(growth)),
      buckets_(num_buckets, 0) {
  CASCACHE_CHECK(min_value > 0.0);
  CASCACHE_CHECK(growth > 1.0);
  CASCACHE_CHECK(num_buckets >= 2);
}

size_t Histogram::BucketFor(double x) const {
  if (x <= min_value_) return 0;
  const double b = std::log(x / min_value_) / log_growth_;
  const size_t idx = static_cast<size_t>(b) + 1;
  return std::min(idx, buckets_.size() - 1);
}

double Histogram::BucketValue(size_t b) const {
  if (b == 0) return min_value_;
  // Geometric midpoint of the bucket's range.
  return min_value_ * std::exp((static_cast<double>(b) - 0.5) * log_growth_);
}

void Histogram::Add(double x) {
  CASCACHE_DCHECK(x >= 0.0);
  ++buckets_[BucketFor(x)];
  ++count_;
  sum_ += x;
}

void Histogram::Merge(const Histogram& other) {
  CASCACHE_CHECK(buckets_.size() == other.buckets_.size());
  CASCACHE_CHECK(min_value_ == other.min_value_);
  CASCACHE_CHECK(log_growth_ == other.log_growth_);
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t target =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen > target) return BucketValue(b);
  }
  return BucketValue(buckets_.size() - 1);
}

std::string Histogram::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.6g p50=%.6g p95=%.6g p99=%.6g",
                static_cast<unsigned long long>(count_), mean(),
                Quantile(0.50), Quantile(0.95), Quantile(0.99));
  return buf;
}

}  // namespace cascache::util
