#ifndef CASCACHE_SCHEMES_STATIC_SCHEME_H_
#define CASCACHE_SCHEMES_STATIC_SCHEME_H_

#include <unordered_map>
#include <vector>

#include "schemes/scheme.h"

namespace cascache::schemes {

/// Clairvoyant static-placement baseline (extension beyond the paper):
/// during a learning phase every cache counts the requests passing
/// through it (observed on the message ascent); at the freeze point each
/// cache independently fills itself with the objects of highest observed
/// demand density (count/size — the fractional-knapsack rule that
/// maximizes byte hit ratio for a single cache), and contents never
/// change again.
///
/// This bounds what *uncoordinated but fully informed* static placement
/// achieves: each cache optimizes locally with perfect popularity
/// knowledge, but nothing prevents the same hot objects from being
/// replicated at every level — exactly the redundancy coordinated
/// placement eliminates. Comparing STATIC against Coordinated isolates
/// the value of coordination from the value of popularity knowledge.
class StaticScheme : public CachingScheme {
 public:
  /// Caches fill after observing `freeze_after_requests` requests (set it
  /// to at most the simulator's warm-up length so the frozen contents are
  /// in place when measurement starts). The scheme is stateful across a
  /// run: construct a fresh instance per Simulator::Run (the experiment
  /// runner does this automatically).
  explicit StaticScheme(uint64_t freeze_after_requests);

  std::string name() const override { return "STATIC"; }
  CacheMode cache_mode() const override { return CacheMode::kLru; }
  bool uses_link_costs() const override { return false; }
  bool uses_dcache() const override { return false; }
  bool observes_ascent() const override { return true; }

  void OnAscend(sim::MessageContext& ctx, int hop) override;
  void OnServe(sim::MessageContext& ctx) override;
  void OnSiblingServe(sim::MessageContext& ctx) override;

  bool frozen() const { return frozen_; }
  uint64_t requests_seen() const { return requests_seen_; }

 private:
  struct Demand {
    uint64_t count = 0;
    uint64_t size = 0;
  };

  void CountAt(sim::MessageContext& ctx, int hop);
  void Freeze(sim::MessageContext& ctx);

  uint64_t freeze_after_;
  uint64_t requests_seen_ = 0;
  bool frozen_ = false;
  /// Per node (by graph id): observed demand per object.
  std::vector<std::unordered_map<ObjectId, Demand>> demand_;
};

}  // namespace cascache::schemes

#endif  // CASCACHE_SCHEMES_STATIC_SCHEME_H_
