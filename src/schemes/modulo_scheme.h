#ifndef CASCACHE_SCHEMES_MODULO_SCHEME_H_
#define CASCACHE_SCHEMES_MODULO_SCHEME_H_

#include "schemes/scheme.h"

namespace cascache::schemes {

/// The MODULO placement baseline (Bhattacharjee et al., paper §3.3): on
/// the delivery path from the serving point toward the client, the object
/// is cached only at nodes a fixed number of hops (the cache radius)
/// apart; replacement is LRU. A radius of 1 degenerates to LRU. Placement
/// ignores access frequency and link costs, which is exactly the weakness
/// the coordinated scheme addresses.
class ModuloScheme : public CachingScheme {
 public:
  /// `radius` must be >= 1.
  explicit ModuloScheme(int radius);

  std::string name() const override;
  CacheMode cache_mode() const override { return CacheMode::kLru; }
  bool uses_link_costs() const override { return false; }
  bool uses_dcache() const override { return false; }
  int radius() const { return radius_; }

  void OnServe(sim::MessageContext& ctx) override;
  void OnDescend(sim::MessageContext& ctx, int hop) override;
  void OnSiblingServe(sim::MessageContext& ctx) override;

 private:
  int radius_;
};

}  // namespace cascache::schemes

#endif  // CASCACHE_SCHEMES_MODULO_SCHEME_H_
