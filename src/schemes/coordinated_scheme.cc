#include "schemes/coordinated_scheme.h"

#include <algorithm>

#include "core/placement.h"

namespace cascache::schemes {

void CoordinatedScheme::OnAscend(sim::MessageContext& ctx, int hop) {
  // The request passes a cache that cannot serve it: piggyback this
  // node's (f_i, l_i) view of the object (paper §2.3). The node's m_i is
  // the running link-cost sum the serving node reconstructs in OnServe.
  //
  // A lost piggyback entry (fault plane) still occupies its slot in the
  // hop-indexed ascent so OnServe's path reconstruction stays aligned,
  // but carries no descriptor and is infeasible — the serving node's DP
  // treats the hop as a non-candidate, the same exclusion the paper
  // applies to nodes without a descriptor. The node's own state is
  // untouched (a down node has none to offer).
  if (ctx.request.piggyback_lost) {
    ascent_.push_back(HopRecord());
    return;
  }
  sim::CacheNode* node = ctx.node(hop);

  HopRecord rec;
  cache::ObjectDescriptor* desc = node->RecordAccess(ctx.object, ctx.now);
  if (desc == nullptr) {
    // No descriptor: tagged out of the candidate set (paper §2.4).
    rec.has_descriptor = false;
    ++stats_.excluded_no_descriptor;
  } else {
    rec.has_descriptor = true;
    rec.frequency = desc->frequency;
    // The ascent only visits nodes that could not serve, so the
    // descriptor lives in the d-cache.
    ctx.RecordDCacheHit(hop);
  }

  if (ctx.size <= node->capacity_bytes()) {
    node->PlanEvictionInto(ctx.size, &scratch_plan_);
    rec.feasible = scratch_plan_.feasible;
    rec.cost_loss = scratch_plan_.cost_loss;
  } else {
    rec.feasible = false;
  }

  // Candidates append a 24-byte (f, m, l) triple; excluded nodes a
  // 1-byte "no descriptor" tag.
  ctx.request.payload_bytes += (rec.has_descriptor && rec.feasible) ? 24 : 1;
  ascent_.push_back(rec);
}

void CoordinatedScheme::OnServe(sim::MessageContext& ctx) {
  const std::vector<double>& costs = *ctx.link_costs;
  ++stats_.requests;

  // Record the access at the serving cache (refreshes its NCL priority).
  // On a sibling serve, serving_node() is the sibling — the copy that
  // actually answered — not the probing hop.
  if (!ctx.origin_served()) {
    ctx.serving_node()->RecordAccess(ctx.object, ctx.now);
  }

  // Reassemble the piggybacked path information, ordered A_1 (adjacent
  // to the serving node) .. A_n (the requesting cache): the ascent
  // pushed hop records bottom-up, so walk them top-down accumulating the
  // miss penalty m_i from the serving node.
  //
  // The highest candidate: with a cache hit at path[hit], candidates are
  // path[hit-1] .. path[0] — exactly the hops OnAscend visited. With an
  // origin-served request, every cache on the path including the attach
  // node is a candidate.
  const int highest_candidate = static_cast<int>(ascent_.size()) - 1;
  info_.nodes.clear();
  path_index_of_.clear();
  // Cumulative cost from the serving node down to the current node: the
  // miss penalty m_i. Starts with the virtual server link when the origin
  // serves the request.
  double cum_cost = ctx.origin_served() ? ctx.server_link_cost : 0.0;
  for (int i = highest_candidate; i >= 0; --i) {
    if (i != highest_candidate || !ctx.origin_served()) {
      // Descending one link from the previous node on the path.
      cum_cost += costs[static_cast<size_t>(i)];
    }
    const HopRecord& rec = ascent_[static_cast<size_t>(i)];
    core::PathNodeInfo node_info;
    node_info.node = (*ctx.path)[static_cast<size_t>(i)];
    node_info.miss_penalty = cum_cost;
    node_info.has_descriptor = rec.has_descriptor;
    node_info.frequency = rec.frequency;
    node_info.feasible = rec.feasible;
    node_info.cost_loss = rec.cost_loss;
    info_.nodes.push_back(node_info);
    path_index_of_.push_back(i);
  }

  // --- Decision at the serving node: the dynamic program. ---------------
  info_.FillPlacementInput(&input_, &origin_);
  selected_path_indices_.clear();
  // The response carries an 8-byte penalty counter plus a decision bitmap
  // (1 byte per traversed node); the ascent already accounted the
  // per-hop triples/tags.
  ctx.response.payload_bytes += 8 + info_.nodes.size() / 8 + 1;
  stats_.piggyback_bytes +=
      ctx.request.payload_bytes + ctx.response.payload_bytes;
  {
    const size_t k =
        std::min<size_t>(input_.f.size(), Stats::kMaxTrackedCandidates - 1);
    ++stats_.k_histogram[k];
  }
  if (!input_.f.empty()) {
    ++stats_.dp_runs;
    stats_.candidates += input_.f.size();
    core::SolvePlacementDPInto(input_, &dp_scratch_, &dp_result_);
    stats_.total_gain += dp_result_.gain;
    stats_.placements += dp_result_.selected.size();
    for (int sel : dp_result_.selected) {
      selected_path_indices_.push_back(path_index_of_[static_cast<size_t>(
          origin_[static_cast<size_t>(sel)])]);
    }
  }

  // The descent's penalty counter starts at the serving node (the
  // virtual server link is already behind the attach node when the
  // origin served).
  ctx.response.penalty = ctx.origin_served() ? ctx.server_link_cost : 0.0;
  ascent_.clear();
}

void CoordinatedScheme::OnSiblingServe(sim::MessageContext& ctx) {
  // Proxy-only sibling serve. The probing hop (hit_index) contributed no
  // ascent record — exactly like a local serving point — so OnServe's
  // path reassembly walks hops hit_index-1 .. 0 unchanged and the DP's
  // hop alignment carries over; only the recency touch retargets to the
  // sibling's store (serving_node()).
  OnServe(ctx);
}

void CoordinatedScheme::OnAbort() {
  // Shed mid-ascent: the hop records below the refusal never reach a
  // serving node. Without this, the next request's OnServe would
  // reassemble them against its own (differently sized) path.
  ascent_.clear();
}

void CoordinatedScheme::OnDescend(sim::MessageContext& ctx, int hop) {
  // --- Response descent: miss-penalty refresh + placements. -------------
  const std::vector<double>& costs = *ctx.link_costs;
  if (hop != ctx.first_missing() || !ctx.origin_served()) {
    ctx.response.penalty += costs[static_cast<size_t>(hop)];
  }
  // Lost decision entry (fault plane): the penalty counter above still
  // advances — it models the link the object traversed, not node state —
  // but the node can neither place the copy nor refresh/admit its
  // descriptor. The next unfaulted pass re-admits it (paper §2.4's
  // d-cache admission is idempotent).
  if (ctx.response.decision_lost) return;
  sim::CacheNode* node = ctx.node(hop);
  if (std::find(selected_path_indices_.begin(), selected_path_indices_.end(),
                hop) != selected_path_indices_.end()) {
    if (node->InsertCost(ctx.object, ctx.size, ctx.response.penalty,
                         ctx.now, &evicted_scratch_)) {
      ctx.RecordPlacement(hop, evicted_scratch_);
      ctx.response.penalty = 0.0;  // Downstream nodes now have a nearer copy.
    } else {
      ctx.RecordPlacementRejected(hop);
    }
  } else {
    // Refresh the miss penalty of a known descriptor, or admit one into
    // the d-cache as the object passes through (paper §2.3-2.4).
    if (node->FindDescriptor(ctx.object) != nullptr) {
      node->UpdateMissPenalty(ctx.object, ctx.response.penalty, ctx.now);
    } else {
      cache::ObjectDescriptor* desc =
          node->AdmitDescriptor(ctx.object, ctx.size, ctx.now);
      if (desc != nullptr) desc->miss_penalty = ctx.response.penalty;
    }
  }
}

}  // namespace cascache::schemes
