#include "schemes/coordinated_scheme.h"

#include <algorithm>

#include <unordered_set>

#include "core/placement.h"

namespace cascache::schemes {

void CoordinatedScheme::OnRequestServed(const ServedRequest& request,
                                        CacheSet* caches,
                                        sim::RequestMetrics* metrics) {
  const std::vector<topology::NodeId>& path = *request.path;
  const std::vector<double>& costs = *request.link_costs;
  const int top = request.top_index();
  ++stats_.requests;

  // --- Request ascent: assemble the piggybacked path information. -------
  //
  // PathInfo is ordered A_1 (adjacent to the serving node) .. A_n (the
  // requesting cache); path index i runs the other way, so A_j sits at
  // path index (top_candidate - j + 1)... we simply walk i downward.
  //
  // The highest candidate: with a cache hit at path[hit], candidates are
  // path[hit-1] .. path[0]. With an origin-served request, every cache on
  // the path including the attach node is a candidate.
  const int highest_candidate = request.origin_served() ? top : top - 1;

  // Record the access at the serving cache (refreshes its NCL priority).
  if (!request.origin_served()) {
    caches->node(path[static_cast<size_t>(request.hit_index)])
        ->RecordAccess(request.object, request.now);
  }

  core::PathInfo info;
  std::vector<int> path_index_of;  // Parallel to info.nodes.
  // Cumulative cost from the serving node down to the current node: the
  // miss penalty m_i. Starts with the virtual server link when the origin
  // serves the request.
  double cum_cost = request.origin_served() ? request.server_link_cost : 0.0;
  for (int i = highest_candidate; i >= 0; --i) {
    if (i != highest_candidate || !request.origin_served()) {
      // Descending one link from the previous node on the path.
      cum_cost += costs[static_cast<size_t>(i)];
    }
    sim::CacheNode* node = caches->node(path[static_cast<size_t>(i)]);

    core::PathNodeInfo node_info;
    node_info.node = path[static_cast<size_t>(i)];
    node_info.miss_penalty = cum_cost;

    cache::ObjectDescriptor* desc =
        node->RecordAccess(request.object, request.now);
    if (desc == nullptr) {
      // No descriptor: tagged out of the candidate set (paper §2.4).
      node_info.has_descriptor = false;
      ++stats_.excluded_no_descriptor;
    } else {
      node_info.has_descriptor = true;
      node_info.frequency = desc->frequency;
    }

    if (request.size <= node->capacity_bytes()) {
      node->PlanEvictionInto(request.size, &scratch_plan_);
      node_info.feasible = scratch_plan_.feasible;
      node_info.cost_loss = scratch_plan_.cost_loss;
    } else {
      node_info.feasible = false;
    }

    info.nodes.push_back(node_info);
    path_index_of.push_back(i);
  }

  // --- Decision at the serving node: the dynamic program. ---------------
  std::vector<int> origin;
  const core::PlacementInput input = info.ToPlacementInput(&origin);
  std::unordered_set<int> selected_path_indices;
  // Protocol overhead: one (f, m, l) triple per candidate on the request
  // ascent (3 x 8 bytes), a "no descriptor" tag bit per excluded node
  // (counted as 1 byte), and on the descent an 8-byte penalty counter
  // plus a decision bitmap (1 byte per traversed node).
  stats_.piggyback_bytes +=
      24 * input.f.size() + (info.nodes.size() - input.f.size()) + 8 +
      info.nodes.size() / 8 + 1;
  {
    const size_t k =
        std::min<size_t>(input.f.size(), Stats::kMaxTrackedCandidates - 1);
    ++stats_.k_histogram[k];
  }
  if (!input.f.empty()) {
    ++stats_.dp_runs;
    stats_.candidates += input.f.size();
    const core::PlacementResult result = core::SolvePlacementDP(input);
    stats_.total_gain += result.gain;
    stats_.placements += result.selected.size();
    for (int sel : result.selected) {
      selected_path_indices.insert(
          path_index_of[static_cast<size_t>(origin[static_cast<size_t>(sel)])]);
    }
  }

  // --- Response descent: miss-penalty refresh + placements. -------------
  double penalty = request.origin_served() ? request.server_link_cost : 0.0;
  for (int i = highest_candidate; i >= 0; --i) {
    if (i != highest_candidate || !request.origin_served()) {
      penalty += costs[static_cast<size_t>(i)];
    }
    sim::CacheNode* node = caches->node(path[static_cast<size_t>(i)]);
    if (selected_path_indices.count(i) > 0) {
      if (node->InsertCost(request.object, request.size, penalty,
                           request.now)) {
        metrics->write_bytes += request.size;
        ++metrics->insertions;
        penalty = 0.0;  // Downstream nodes now have a nearer copy.
      }
    } else {
      // Refresh the miss penalty of a known descriptor, or admit one into
      // the d-cache as the object passes through (paper §2.3-2.4).
      if (node->FindDescriptor(request.object) != nullptr) {
        node->UpdateMissPenalty(request.object, penalty, request.now);
      } else {
        cache::ObjectDescriptor* desc =
            node->AdmitDescriptor(request.object, request.size, request.now);
        if (desc != nullptr) desc->miss_penalty = penalty;
      }
    }
  }
}

}  // namespace cascache::schemes
