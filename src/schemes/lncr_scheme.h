#ifndef CASCACHE_SCHEMES_LNCR_SCHEME_H_
#define CASCACHE_SCHEMES_LNCR_SCHEME_H_

#include <vector>

#include "schemes/scheme.h"

namespace cascache::schemes {

/// The LNC-R cost-based replacement baseline (Scheuermann et al., paper
/// §3.3): like LRU it caches the requested object at every node on the
/// delivery path, but replacement removes the objects with the least
/// normalized cost loss f(O)·m(O)/s(O). Each node treats the miss penalty
/// of an object as the delay of its immediate upstream link (placement is
/// not optimized, so a node cannot know the distance to the nearest real
/// copy). Descriptors of non-cached objects are kept in the d-cache for
/// better frequency estimation. All statistics are node-local, so the
/// ascent carries no piggyback payload.
class LncrScheme : public CachingScheme {
 public:
  std::string name() const override { return "LNC-R"; }
  CacheMode cache_mode() const override { return CacheMode::kCost; }
  bool observes_ascent() const override { return true; }

  void OnAscend(sim::MessageContext& ctx, int hop) override;
  void OnServe(sim::MessageContext& ctx) override;
  void OnDescend(sim::MessageContext& ctx, int hop) override;
  void OnSiblingServe(sim::MessageContext& ctx) override;

 private:
  /// Reused victim buffer for the descent's insertions.
  std::vector<ObjectId> evicted_scratch_;
};

}  // namespace cascache::schemes

#endif  // CASCACHE_SCHEMES_LNCR_SCHEME_H_
