#ifndef CASCACHE_SCHEMES_SCHEME_H_
#define CASCACHE_SCHEMES_SCHEME_H_

#include <memory>
#include <string>
#include <vector>

#include "sim/cache_set.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "trace/object_catalog.h"
#include "util/status.h"

namespace cascache::schemes {

using sim::CacheMode;
using sim::CacheSet;
using trace::ObjectId;

/// A cache-content management policy, expressed as per-hop handlers over
/// the request/response message exchange (paper §2.3): the simulator
/// drives the ascent hop by hop (calling OnAscend at every cache that
/// cannot serve), calls OnServe once at the serving point, then drives
/// the descent (calling OnDescend at every node below the serving point,
/// top-down). Schemes update descriptors and decide placements and
/// replacements from these hooks; the simulator accounts reads and
/// latency itself, and schemes report the writes they perform through
/// `ctx.metrics`.
///
/// Handler contract, per request:
///  - OnAscend(ctx, hop) for hop = 0 .. top, ascending, at every cache
///    that did not serve (per-hop coherency admission — TTL expiry /
///    invalidation — has already run at that hop, so the node state the
///    handler sees is post-admission). Not called for the serving hop.
///  - OnServe(ctx): exactly once, after `ctx.response.hit_index` is
///    final (-1 = origin). This is where the serving node decides
///    placement (the coordinated DP) and where serving-cache bookkeeping
///    (recency/frequency touch) belongs.
///  - OnDescend(ctx, hop) for hop = first_missing .. 0, descending, at
///    every node below the serving point.
///  - OnAbort(): instead of OnServe when the exchange dies mid-ascent
///    (an overloaded node queue refused the request). OnAscend may
///    already have run at the hops below the refusal; any per-request
///    scratch they accumulated must be discarded here.
///
/// Schemes attach piggyback state by mutating ctx.request /
/// ctx.response (payload bytes, penalty counter) and their own members;
/// per-hop scratch carried across hooks of one request must be cleared
/// before OnServe (or OnAbort) returns. A scheme instance is used by
/// exactly one simulation run, so it needs no internal synchronization
/// even when sweeps run cells in parallel.
class CachingScheme {
 public:
  virtual ~CachingScheme() = default;

  virtual std::string name() const = 0;

  /// Which replacement machinery the nodes must run for this scheme.
  virtual CacheMode cache_mode() const = 0;

  /// Whether nodes should be given a d-cache (LRU and MODULO run without
  /// one, paper §3.3).
  virtual bool uses_dcache() const { return cache_mode() == CacheMode::kCost; }

  /// Whether the scheme piggybacks per-hop state on the request ascent.
  /// The simulator only dispatches OnAscend when this returns true, so
  /// the locally-deciding schemes pay no per-hop call on the replay hot
  /// path. Schemes overriding OnAscend must override this to true.
  virtual bool observes_ascent() const { return false; }

  /// Whether the scheme reads ctx.link_costs / upstream_link_cost /
  /// server_link_cost. The simulator skips the per-request cost-model
  /// evaluation entirely when this returns false (the cost-oblivious
  /// schemes — LRU, MODULO, LFU, STATIC — never look at the costs, so
  /// the replay output is unchanged). Schemes reading any cost field
  /// must keep the default.
  virtual bool uses_link_costs() const { return true; }

  /// True only when the scheme's serve/descend behavior is exactly the
  /// plain-LRU rule: touch the serving cache's LRU store on a hit, insert
  /// the object into every node below the serving point, and nothing
  /// else. The simulator then replaces the per-hop OnServe/OnDescend
  /// virtual dispatch with an inlined equivalent on the unfaulted replay
  /// path (results are bit-identical; the handlers must still implement
  /// the rule — the fault plane and direct drivers keep calling them).
  virtual bool plain_lru_replay() const { return false; }

  /// Request ascent: the message passes through the non-serving cache at
  /// path index `hop` (== ctx.request.hop). Only called when
  /// observes_ascent() is true. Default: no piggyback.
  virtual void OnAscend(sim::MessageContext& ctx, int hop) {
    (void)ctx;
    (void)hop;
  }

  /// The request reached its serving point (cache hit at
  /// ctx.hit_index(), or the origin when ctx.origin_served()).
  virtual void OnServe(sim::MessageContext& ctx) = 0;

  /// The exchange ended before a serving point was reached (shed by an
  /// overloaded queue): OnServe and OnDescend will not run for this
  /// request. Schemes that accumulate per-request ascent scratch must
  /// drop it here; node state mutated by OnAscend stands (those hops
  /// really processed the message).
  virtual void OnAbort() {}

  /// Response descent: the object passes through the node at path index
  /// `hop` on its way to the requester. Default: no placement.
  virtual void OnDescend(sim::MessageContext& ctx, int hop) {
    (void)ctx;
    (void)hop;
  }

  /// Sibling cooperation (simulator's SiblingParams): the node at path
  /// index `hop` missed locally and sends an ICP-style probe to
  /// `sibling`. Observational only — probes must not mutate cache state
  /// or attach piggyback payload (the simulator accounts probe bytes).
  /// Default: ignore.
  virtual void OnSiblingProbe(sim::MessageContext& ctx, int hop,
                              topology::NodeId sibling) {
    (void)ctx;
    (void)hop;
    (void)sibling;
  }

  /// Called INSTEAD of OnServe when a sibling of the node at
  /// ctx.hit_index() serves the request (ctx.response.served_by_sibling;
  /// the sibling's id is ctx.response.sibling). The serve is proxy-only:
  /// the probing node keeps no copy, the descent below ctx.hit_index()
  /// runs exactly as for a local hit there (OnDescend hop alignment is
  /// unchanged), and serving-cache bookkeeping (recency/frequency touch)
  /// belongs to the *sibling's* store. The default delegates to OnServe,
  /// which is correct only for schemes whose OnServe ignores the serving
  /// node's identity; every built-in scheme overrides this to touch the
  /// sibling's store instead of path[hit_index]'s.
  virtual void OnSiblingServe(sim::MessageContext& ctx) { OnServe(ctx); }
};

/// Identifiers for the built-in schemes: the paper's four (§3.3) plus the
/// GDS / LFU replacement baselines and the clairvoyant STATIC placement
/// baseline added by this reproduction.
enum class SchemeKind {
  kLru,
  kModulo,
  kLncr,
  kCoordinated,
  kGds,
  kLfu,
  kStatic,
};

/// A scheme selection plus its parameters; used by the experiment runner
/// and benches.
struct SchemeSpec {
  SchemeKind kind = SchemeKind::kLru;
  /// MODULO cache radius (paper: 4 is best under en-route; 1 degenerates
  /// to LRU).
  int modulo_radius = 4;
  /// STATIC: requests observed before placement freezes. 0 lets the
  /// experiment runner default it to the warm-up length.
  uint64_t static_freeze_requests = 0;

  std::string Label() const;
};

/// Instantiates a scheme from its spec.
util::StatusOr<std::unique_ptr<CachingScheme>> MakeScheme(
    const SchemeSpec& spec);

}  // namespace cascache::schemes

#endif  // CASCACHE_SCHEMES_SCHEME_H_
