#ifndef CASCACHE_SCHEMES_SCHEME_H_
#define CASCACHE_SCHEMES_SCHEME_H_

#include <memory>
#include <string>
#include <vector>

#include "sim/cache_set.h"
#include "sim/metrics.h"
#include "trace/object_catalog.h"
#include "util/status.h"

namespace cascache::schemes {

using sim::CacheMode;
using sim::CacheSet;
using trace::ObjectId;

/// Everything a scheme needs to know about a request once the simulator
/// has located the serving node. `path[0]` is the requesting cache and
/// `path.back()` the server's attach node; `link_delays[i]` is the base
/// (average-object) delay of the link between path[i] and path[i+1].
/// `hit_index` is the path index of the serving cache, or -1 when the
/// origin server satisfied the request.
struct ServedRequest {
  ObjectId object = 0;
  uint64_t size = 0;
  /// size / mean object size; multiplies base delays into costs, per the
  /// paper's "delay proportional to object size" cost function.
  double size_scale = 1.0;
  double now = 0.0;
  const std::vector<topology::NodeId>* path = nullptr;
  const std::vector<double>* link_delays = nullptr;
  /// Per-link generic costs under the configured CostModel; parallel to
  /// link_delays. Cost-aware schemes (LNC-R, GDS, Coordinated) optimize
  /// these; the physical metrics always use the delays.
  const std::vector<double>* link_costs = nullptr;
  int hit_index = -1;
  /// Delay/hop of the virtual attach-node-to-origin link (only nonzero
  /// under the hierarchical architecture, and only relevant when
  /// hit_index == -1).
  double server_link_delay = 0.0;
  /// Cost-model value of the virtual server link.
  double server_link_cost = 0.0;

  bool origin_served() const { return hit_index < 0; }
  /// Path index of the highest node the request visited (serving cache,
  /// or the attach node when the origin served it).
  int top_index() const {
    return origin_served() ? static_cast<int>(path->size()) - 1 : hit_index;
  }
};

/// A cache-content management policy: given a served request, update
/// descriptors and decide placements/replacements on the delivery path.
/// The simulator accounts reads and latency itself; schemes report the
/// writes they perform through `metrics`.
///
/// Schemes mutate only the CacheSet they are handed (the run's cache
/// plane) plus their own members; a scheme instance is used by exactly
/// one simulation run, so it needs no internal synchronization even when
/// sweeps run cells in parallel.
class CachingScheme {
 public:
  virtual ~CachingScheme() = default;

  virtual std::string name() const = 0;

  /// Which replacement machinery the nodes must run for this scheme.
  virtual CacheMode cache_mode() const = 0;

  /// Whether nodes should be given a d-cache (LRU and MODULO run without
  /// one, paper §3.3).
  virtual bool uses_dcache() const { return cache_mode() == CacheMode::kCost; }

  /// Applies the scheme's caching decisions for one request against the
  /// run's cache plane. Called for every request, warm-up included.
  virtual void OnRequestServed(const ServedRequest& request, CacheSet* caches,
                               sim::RequestMetrics* metrics) = 0;
};

/// Identifiers for the built-in schemes: the paper's four (§3.3) plus the
/// GDS / LFU replacement baselines and the clairvoyant STATIC placement
/// baseline added by this reproduction.
enum class SchemeKind {
  kLru,
  kModulo,
  kLncr,
  kCoordinated,
  kGds,
  kLfu,
  kStatic,
};

/// A scheme selection plus its parameters; used by the experiment runner
/// and benches.
struct SchemeSpec {
  SchemeKind kind = SchemeKind::kLru;
  /// MODULO cache radius (paper: 4 is best under en-route; 1 degenerates
  /// to LRU).
  int modulo_radius = 4;
  /// STATIC: requests observed before placement freezes. 0 lets the
  /// experiment runner default it to the warm-up length.
  uint64_t static_freeze_requests = 0;

  std::string Label() const;
};

/// Instantiates a scheme from its spec.
util::StatusOr<std::unique_ptr<CachingScheme>> MakeScheme(
    const SchemeSpec& spec);

}  // namespace cascache::schemes

#endif  // CASCACHE_SCHEMES_SCHEME_H_
