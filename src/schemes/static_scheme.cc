#include "schemes/static_scheme.h"

#include <algorithm>

namespace cascache::schemes {

StaticScheme::StaticScheme(uint64_t freeze_after_requests)
    : freeze_after_(freeze_after_requests) {
  CASCACHE_CHECK_MSG(freeze_after_requests > 0,
                     "STATIC needs a learning phase");
}

void StaticScheme::CountAt(sim::MessageContext& ctx, int hop) {
  if (demand_.empty()) {
    demand_.resize(static_cast<size_t>(ctx.caches->num_nodes()));
  }
  Demand& d = demand_[static_cast<size_t>(
      (*ctx.path)[static_cast<size_t>(hop)])][ctx.object];
  ++d.count;
  d.size = ctx.size;
}

void StaticScheme::OnAscend(sim::MessageContext& ctx, int hop) {
  if (frozen_) return;  // Contents are fixed; nothing ever changes.
  // A lost piggyback entry (fault plane) drops this hop's demand sample.
  // The Freeze itself is a management-plane action outside the request
  // path and is not subject to message faults.
  if (ctx.request.piggyback_lost) return;
  // Learning phase: count the request at every node it traverses (the
  // same visibility the dynamic schemes have).
  CountAt(ctx, hop);
}

void StaticScheme::OnServe(sim::MessageContext& ctx) {
  if (frozen_) return;

  // The serving cache observed the request too; the ascent counted every
  // node below it.
  if (!ctx.origin_served()) CountAt(ctx, ctx.hit_index());

  ++requests_seen_;
  if (requests_seen_ >= freeze_after_) Freeze(ctx);
}

void StaticScheme::OnSiblingServe(sim::MessageContext& ctx) {
  if (frozen_) return;
  // The *sibling* is the serving cache, so demand accrues there. The
  // probing hop counts nothing — exactly as a local serving point would
  // not have been counted on the ascent — keeping the learned demand
  // hop-aligned with the dynamic schemes' visibility.
  if (demand_.empty()) {
    demand_.resize(static_cast<size_t>(ctx.caches->num_nodes()));
  }
  Demand& d =
      demand_[static_cast<size_t>(ctx.response.sibling)][ctx.object];
  ++d.count;
  d.size = ctx.size;
  ++requests_seen_;
  if (requests_seen_ >= freeze_after_) Freeze(ctx);
}

void StaticScheme::Freeze(sim::MessageContext& ctx) {
  CacheSet* caches = ctx.caches;
  frozen_ = true;
  if (demand_.empty()) {
    demand_.resize(static_cast<size_t>(caches->num_nodes()));
  }
  // Freeze only fills spare capacity, so no placement ever evicts.
  const std::vector<ObjectId> no_evictions;
  for (topology::NodeId v = 0; v < caches->num_nodes(); ++v) {
    auto& seen = demand_[static_cast<size_t>(v)];
    std::vector<std::pair<ObjectId, Demand>> ranked(seen.begin(), seen.end());
    // Density rule: requests served per byte of capacity.
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                const double da = static_cast<double>(a.second.count) /
                                  static_cast<double>(a.second.size);
                const double db = static_cast<double>(b.second.count) /
                                  static_cast<double>(b.second.size);
                if (da != db) return da > db;
                return a.first < b.first;  // Deterministic tie-break.
              });
    cache::FlatLru* cache = caches->node(v)->lru();
    for (const auto& [object, d] : ranked) {
      if (d.size > cache->capacity_bytes() - cache->used_bytes()) continue;
      bool inserted = false;
      cache->Insert(object, d.size, &inserted);
      CASCACHE_CHECK(inserted);
      ctx.RecordPlacementAt(v, object, d.size, no_evictions);
    }
    seen.clear();
  }
  demand_.clear();
  demand_.shrink_to_fit();
}

}  // namespace cascache::schemes
