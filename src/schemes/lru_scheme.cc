#include "schemes/lru_scheme.h"

namespace cascache::schemes {

void LruScheme::OnRequestServed(const ServedRequest& request,
                                CacheSet* caches,
                                sim::RequestMetrics* metrics) {
  const std::vector<topology::NodeId>& path = *request.path;
  const int top = request.top_index();

  // Refresh recency at the serving cache.
  if (!request.origin_served()) {
    caches->node(path[static_cast<size_t>(request.hit_index)])
        ->lru()
        ->Touch(request.object);
  }

  // Cache everywhere below the serving point (and at the attach node too
  // when the origin served the request).
  const int first_missing = request.origin_served() ? top : top - 1;
  for (int i = first_missing; i >= 0; --i) {
    bool inserted = false;
    caches->node(path[static_cast<size_t>(i)])
        ->lru()
        ->Insert(request.object, request.size, &inserted);
    if (inserted) {
      metrics->write_bytes += request.size;
      ++metrics->insertions;
    }
  }
}

}  // namespace cascache::schemes
