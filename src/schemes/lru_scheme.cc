#include "schemes/lru_scheme.h"

namespace cascache::schemes {

void LruScheme::OnServe(sim::MessageContext& ctx) {
  // Refresh recency at the serving cache.
  if (!ctx.origin_served()) {
    ctx.node(ctx.hit_index())->lru()->Touch(ctx.object);
  }
}

void LruScheme::OnSiblingServe(sim::MessageContext& ctx) {
  // Proxy-only sibling serve: recency refreshes at the sibling's store
  // (the probing node keeps nothing).
  ctx.serving_node()->lru()->Touch(ctx.object);
}

void LruScheme::OnDescend(sim::MessageContext& ctx, int hop) {
  // Cache everywhere below the serving point (and at the attach node too
  // when the origin served the request). A lost decision (fault plane)
  // skips the placement; the object passes this hop uncached.
  if (ctx.response.decision_lost) return;
  bool inserted = false;
  const std::vector<sim::ObjectId>& evicted =
      ctx.node(hop)->lru()->Insert(ctx.object, ctx.size, &inserted);
  if (inserted) {
    ctx.RecordPlacement(hop, evicted);
  } else {
    ctx.RecordPlacementRejected(hop);
  }
}

}  // namespace cascache::schemes
