#include "schemes/scheme.h"

#include "schemes/coordinated_scheme.h"
#include "schemes/gds_scheme.h"
#include "schemes/lncr_scheme.h"
#include "schemes/lru_scheme.h"
#include "schemes/modulo_scheme.h"
#include "schemes/static_scheme.h"

namespace cascache::schemes {

std::string SchemeSpec::Label() const {
  switch (kind) {
    case SchemeKind::kLru:
      return "LRU";
    case SchemeKind::kModulo:
      return "MODULO(" + std::to_string(modulo_radius) + ")";
    case SchemeKind::kLncr:
      return "LNC-R";
    case SchemeKind::kCoordinated:
      return "Coordinated";
    case SchemeKind::kGds:
      return "GDS";
    case SchemeKind::kLfu:
      return "LFU";
    case SchemeKind::kStatic:
      return "STATIC";
  }
  return "unknown";
}

util::StatusOr<std::unique_ptr<CachingScheme>> MakeScheme(
    const SchemeSpec& spec) {
  switch (spec.kind) {
    case SchemeKind::kLru:
      return std::unique_ptr<CachingScheme>(new LruScheme());
    case SchemeKind::kModulo:
      if (spec.modulo_radius < 1) {
        return util::Status::InvalidArgument("MODULO radius must be >= 1");
      }
      return std::unique_ptr<CachingScheme>(
          new ModuloScheme(spec.modulo_radius));
    case SchemeKind::kLncr:
      return std::unique_ptr<CachingScheme>(new LncrScheme());
    case SchemeKind::kCoordinated:
      return std::unique_ptr<CachingScheme>(new CoordinatedScheme());
    case SchemeKind::kGds:
      return std::unique_ptr<CachingScheme>(new GdsScheme());
    case SchemeKind::kLfu:
      return std::unique_ptr<CachingScheme>(new LfuScheme());
    case SchemeKind::kStatic:
      if (spec.static_freeze_requests == 0) {
        return util::Status::InvalidArgument(
            "STATIC needs static_freeze_requests > 0 (the experiment "
            "runner defaults it to the warm-up length)");
      }
      return std::unique_ptr<CachingScheme>(
          new StaticScheme(spec.static_freeze_requests));
  }
  return util::Status::InvalidArgument("unknown scheme kind");
}

}  // namespace cascache::schemes
