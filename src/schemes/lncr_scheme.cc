#include "schemes/lncr_scheme.h"

namespace cascache::schemes {

void LncrScheme::OnRequestServed(const ServedRequest& request,
                                 CacheSet* caches,
                                 sim::RequestMetrics* metrics) {
  const std::vector<topology::NodeId>& path = *request.path;
  const std::vector<double>& costs = *request.link_costs;
  const int top = request.top_index();

  // Record the access at every node the request traversed; at the serving
  // cache this also refreshes the object's NCL priority.
  for (int i = 0; i <= top; ++i) {
    sim::CacheNode* node = caches->node(path[static_cast<size_t>(i)]);
    if (node->RecordAccess(request.object, request.now) == nullptr &&
        !node->Contains(request.object)) {
      // Unknown object: track it in the d-cache (frequency estimation).
      node->AdmitDescriptor(request.object, request.size, request.now);
    }
  }

  // Cache everywhere below the serving point. The per-node miss penalty
  // is the cost of the immediate upstream link.
  const int first_missing = request.origin_served() ? top : top - 1;
  for (int i = first_missing; i >= 0; --i) {
    sim::CacheNode* node = caches->node(path[static_cast<size_t>(i)]);
    // Attach node: upstream link is the virtual server link.
    const double miss_penalty =
        (i == static_cast<int>(path.size()) - 1)
            ? request.server_link_cost
            : costs[static_cast<size_t>(i)];
    if (node->InsertCost(request.object, request.size, miss_penalty,
                         request.now)) {
      metrics->write_bytes += request.size;
      ++metrics->insertions;
    }
  }
}

}  // namespace cascache::schemes
