#include "schemes/lncr_scheme.h"

namespace cascache::schemes {

namespace {

/// Record the access at one node; unknown objects get a d-cache
/// descriptor (frequency estimation).
void RecordAt(sim::MessageContext& ctx, int hop) {
  sim::CacheNode* node = ctx.node(hop);
  if (node->RecordAccess(ctx.object, ctx.now) == nullptr &&
      !node->Contains(ctx.object)) {
    node->AdmitDescriptor(ctx.object, ctx.size, ctx.now);
  }
}

}  // namespace

void LncrScheme::OnAscend(sim::MessageContext& ctx, int hop) {
  // Lost piggyback entry (fault plane): the hop's access is simply not
  // observed — LNC-R keeps no cross-hop alignment, so skipping the
  // frequency update is the whole fallback.
  if (ctx.request.piggyback_lost) return;
  sim::CacheNode* node = ctx.node(hop);
  if (node->RecordAccess(ctx.object, ctx.now) != nullptr) {
    // The ascent only visits nodes that could not serve, so a descriptor
    // found here lives in the d-cache.
    ctx.RecordDCacheHit(hop);
  } else if (!node->Contains(ctx.object)) {
    node->AdmitDescriptor(ctx.object, ctx.size, ctx.now);
  }
}

void LncrScheme::OnServe(sim::MessageContext& ctx) {
  // The serving cache also counts the access (this refreshes the
  // object's NCL priority there); the ascent handled every node below.
  if (!ctx.origin_served()) RecordAt(ctx, ctx.hit_index());
}

void LncrScheme::OnSiblingServe(sim::MessageContext& ctx) {
  // Proxy-only sibling serve: the access counts at the *sibling* (it
  // refreshes the NCL priority of the copy that actually served). The
  // probing hop records nothing — exactly as if it had served locally
  // (OnAscend never runs at a serving point), keeping hop alignment
  // identical to a local hit. The d-cache fallback mirrors RecordAt for
  // uniformity; it cannot fire here because the sibling holds the copy.
  sim::CacheNode* sibling =
      &ctx.caches->nodes_data()[ctx.response.sibling];
  if (sibling->RecordAccess(ctx.object, ctx.now) == nullptr &&
      !sibling->Contains(ctx.object)) {
    sibling->AdmitDescriptor(ctx.object, ctx.size, ctx.now);
  }
}

void LncrScheme::OnDescend(sim::MessageContext& ctx, int hop) {
  // Cache everywhere below the serving point. The per-node miss penalty
  // is the cost of the immediate upstream link (the virtual server link
  // at the attach node). A lost decision (fault plane) skips the
  // placement; the object simply passes this hop uncached.
  if (ctx.response.decision_lost) return;
  if (ctx.node(hop)->InsertCost(ctx.object, ctx.size,
                                ctx.upstream_link_cost(hop), ctx.now,
                                &evicted_scratch_)) {
    ctx.RecordPlacement(hop, evicted_scratch_);
  } else {
    ctx.RecordPlacementRejected(hop);
  }
}

}  // namespace cascache::schemes
