#include "schemes/modulo_scheme.h"

#include "util/check.h"

namespace cascache::schemes {

ModuloScheme::ModuloScheme(int radius) : radius_(radius) {
  CASCACHE_CHECK_MSG(radius >= 1, "MODULO radius must be >= 1");
}

std::string ModuloScheme::name() const {
  return "MODULO(" + std::to_string(radius_) + ")";
}

void ModuloScheme::OnServe(sim::MessageContext& ctx) {
  if (!ctx.origin_served()) {
    ctx.node(ctx.hit_index())->lru()->Touch(ctx.object);
  }
}

void ModuloScheme::OnSiblingServe(sim::MessageContext& ctx) {
  // Proxy-only sibling serve: recency refreshes at the sibling's store.
  ctx.serving_node()->lru()->Touch(ctx.object);
}

void ModuloScheme::OnDescend(sim::MessageContext& ctx, int hop) {
  // Hop distance of node path[hop] from the serving point. When the
  // origin serves the request, the serving point sits one virtual hop
  // above the attach node under the hierarchical architecture (and at the
  // attach node itself under en-route, where servers are co-located).
  const int serving_distance_base =
      ctx.origin_served()
          ? static_cast<int>(ctx.path->size()) - 1 +
                (ctx.server_link_delay > 0.0 ? 1 : 0)
          : ctx.hit_index();

  const int distance = serving_distance_base - hop;
  if (distance <= 0 || distance % radius_ != 0) return;
  // Lost decision (fault plane): the selected hop misses its placement.
  if (ctx.response.decision_lost) return;
  bool inserted = false;
  const std::vector<sim::ObjectId>& evicted =
      ctx.node(hop)->lru()->Insert(ctx.object, ctx.size, &inserted);
  if (inserted) {
    ctx.RecordPlacement(hop, evicted);
  } else {
    ctx.RecordPlacementRejected(hop);
  }
}

}  // namespace cascache::schemes
