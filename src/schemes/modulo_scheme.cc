#include "schemes/modulo_scheme.h"

#include "util/check.h"

namespace cascache::schemes {

ModuloScheme::ModuloScheme(int radius) : radius_(radius) {
  CASCACHE_CHECK_MSG(radius >= 1, "MODULO radius must be >= 1");
}

std::string ModuloScheme::name() const {
  return "MODULO(" + std::to_string(radius_) + ")";
}

void ModuloScheme::OnRequestServed(const ServedRequest& request,
                                   CacheSet* caches,
                                   sim::RequestMetrics* metrics) {
  const std::vector<topology::NodeId>& path = *request.path;

  if (!request.origin_served()) {
    caches->node(path[static_cast<size_t>(request.hit_index)])
        ->lru()
        ->Touch(request.object);
  }

  // Hop distance of node path[i] from the serving point. When the origin
  // serves the request, the serving point sits one virtual hop above the
  // attach node under the hierarchical architecture (and at the attach
  // node itself under en-route, where servers are co-located).
  const int serving_distance_base =
      request.origin_served()
          ? static_cast<int>(path.size()) - 1 +
                (request.server_link_delay > 0.0 ? 1 : 0)
          : request.hit_index;

  const int first_missing =
      request.origin_served() ? static_cast<int>(path.size()) - 1
                              : request.hit_index - 1;
  for (int i = first_missing; i >= 0; --i) {
    const int distance = serving_distance_base - i;
    if (distance <= 0 || distance % radius_ != 0) continue;
    bool inserted = false;
    caches->node(path[static_cast<size_t>(i)])
        ->lru()
        ->Insert(request.object, request.size, &inserted);
    if (inserted) {
      metrics->write_bytes += request.size;
      ++metrics->insertions;
    }
  }
}

}  // namespace cascache::schemes
