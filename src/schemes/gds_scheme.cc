#include "schemes/gds_scheme.h"

namespace cascache::schemes {

namespace {

/// Cost of a node's immediate upstream link in the request's cost units
/// (the local miss-penalty view used by the single-cache policies).
double UpstreamLinkCost(const ServedRequest& request, int i) {
  return (i == static_cast<int>(request.path->size()) - 1)
             ? request.server_link_cost
             : (*request.link_costs)[static_cast<size_t>(i)];
}

}  // namespace

void GdsScheme::OnRequestServed(const ServedRequest& request,
                                CacheSet* caches,
                                sim::RequestMetrics* metrics) {
  const std::vector<topology::NodeId>& path = *request.path;
  const int top = request.top_index();

  if (!request.origin_served()) {
    caches->node(path[static_cast<size_t>(request.hit_index)])
        ->gds()
        ->OnHit(request.object,
                UpstreamLinkCost(request, request.hit_index));
  }

  const int first_missing = request.origin_served() ? top : top - 1;
  for (int i = first_missing; i >= 0; --i) {
    bool inserted = false;
    caches->node(path[static_cast<size_t>(i)])
        ->gds()
        ->Insert(request.object, request.size, UpstreamLinkCost(request, i),
                 &inserted);
    if (inserted) {
      metrics->write_bytes += request.size;
      ++metrics->insertions;
    }
  }
}

void LfuScheme::OnRequestServed(const ServedRequest& request,
                                CacheSet* caches,
                                sim::RequestMetrics* metrics) {
  const std::vector<topology::NodeId>& path = *request.path;
  const int top = request.top_index();

  if (!request.origin_served()) {
    caches->node(path[static_cast<size_t>(request.hit_index)])
        ->lfu()
        ->Touch(request.object);
  }

  const int first_missing = request.origin_served() ? top : top - 1;
  for (int i = first_missing; i >= 0; --i) {
    bool inserted = false;
    caches->node(path[static_cast<size_t>(i)])
        ->lfu()
        ->Insert(request.object, request.size, &inserted);
    if (inserted) {
      metrics->write_bytes += request.size;
      ++metrics->insertions;
    }
  }
}

}  // namespace cascache::schemes
