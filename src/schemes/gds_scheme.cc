#include "schemes/gds_scheme.h"

namespace cascache::schemes {

void GdsScheme::OnServe(sim::MessageContext& ctx) {
  if (!ctx.origin_served()) {
    ctx.node(ctx.hit_index())
        ->gds()
        ->OnHit(ctx.object, ctx.upstream_link_cost(ctx.hit_index()));
  }
}

void GdsScheme::OnSiblingServe(sim::MessageContext& ctx) {
  // Proxy-only sibling serve: the GDS credit refreshes at the sibling's
  // store. The retrieval cost stays the probing hop's local upstream
  // view — the sibling leg carries no cost metadata.
  ctx.serving_node()->gds()->OnHit(ctx.object,
                                   ctx.upstream_link_cost(ctx.hit_index()));
}

void GdsScheme::OnDescend(sim::MessageContext& ctx, int hop) {
  // Lost decision (fault plane): skip the placement at this hop.
  if (ctx.response.decision_lost) return;
  bool inserted = false;
  const std::vector<sim::ObjectId>& evicted = ctx.node(hop)->gds()->Insert(
      ctx.object, ctx.size, ctx.upstream_link_cost(hop), &inserted);
  if (inserted) {
    ctx.RecordPlacement(hop, evicted);
  } else {
    ctx.RecordPlacementRejected(hop);
  }
}

void LfuScheme::OnServe(sim::MessageContext& ctx) {
  if (!ctx.origin_served()) {
    ctx.node(ctx.hit_index())->lfu()->Touch(ctx.object);
  }
}

void LfuScheme::OnSiblingServe(sim::MessageContext& ctx) {
  // Proxy-only sibling serve: frequency accrues at the sibling's store.
  ctx.serving_node()->lfu()->Touch(ctx.object);
}

void LfuScheme::OnDescend(sim::MessageContext& ctx, int hop) {
  // Lost decision (fault plane): skip the placement at this hop.
  if (ctx.response.decision_lost) return;
  bool inserted = false;
  const std::vector<sim::ObjectId>& evicted =
      ctx.node(hop)->lfu()->Insert(ctx.object, ctx.size, &inserted);
  if (inserted) {
    ctx.RecordPlacement(hop, evicted);
  } else {
    ctx.RecordPlacementRejected(hop);
  }
}

}  // namespace cascache::schemes
