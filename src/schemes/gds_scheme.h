#ifndef CASCACHE_SCHEMES_GDS_SCHEME_H_
#define CASCACHE_SCHEMES_GDS_SCHEME_H_

#include "schemes/scheme.h"

namespace cascache::schemes {

/// GreedyDual-Size baseline (extension beyond the paper's three
/// comparators; the GDS family is cited as [8]): like LRU/LNC-R the
/// object is cached at every node on the delivery path, but each cache
/// evicts by the GDS credit H = L + cost/size, with the retrieval cost
/// taken as the node's immediate upstream link cost (the same local view
/// LNC-R uses). Placement is again unoptimized, so GDS probes whether a
/// stronger single-cache replacement policy can close the gap to
/// coordinated placement. No d-cache, no piggyback.
class GdsScheme : public CachingScheme {
 public:
  std::string name() const override { return "GDS"; }
  CacheMode cache_mode() const override { return CacheMode::kGds; }
  bool uses_dcache() const override { return false; }

  void OnServe(sim::MessageContext& ctx) override;
  void OnDescend(sim::MessageContext& ctx, int hop) override;
  void OnSiblingServe(sim::MessageContext& ctx) override;
};

/// Perfect in-cache LFU baseline (the classic frequency-based policy the
/// early web-caching studies compared, cited as [19]). Cache-everywhere
/// placement; eviction removes the least-frequently-hit resident object.
class LfuScheme : public CachingScheme {
 public:
  std::string name() const override { return "LFU"; }
  CacheMode cache_mode() const override { return CacheMode::kLfu; }
  bool uses_link_costs() const override { return false; }
  bool uses_dcache() const override { return false; }

  void OnServe(sim::MessageContext& ctx) override;
  void OnDescend(sim::MessageContext& ctx, int hop) override;
  void OnSiblingServe(sim::MessageContext& ctx) override;
};

}  // namespace cascache::schemes

#endif  // CASCACHE_SCHEMES_GDS_SCHEME_H_
