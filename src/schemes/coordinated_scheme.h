#ifndef CASCACHE_SCHEMES_COORDINATED_SCHEME_H_
#define CASCACHE_SCHEMES_COORDINATED_SCHEME_H_

#include <vector>

#include "cache/ncl_cache.h"
#include "core/path_info.h"
#include "core/placement.h"
#include "schemes/scheme.h"

namespace cascache::schemes {

/// The paper's contribution (§2.3): coordinated placement + replacement.
///
/// Request ascent (OnAscend): every intermediate cache A_i appends its
/// (f_i, m_i, l_i) for the requested object to the request message — f_i
/// from its sliding-window estimator, m_i the accumulated link cost from
/// the serving node, l_i the cost loss of the greedy NCL eviction that
/// would make room. Nodes without a descriptor for the object tag
/// themselves out of the candidate set (§2.4).
///
/// Decision (OnServe): the serving node solves the n-optimization problem
/// with the O(n²) dynamic program and sends the selected cache set
/// downstream with the object.
///
/// Response descent (OnDescend): the penalty counter starts at 0 at the
/// serving node and accumulates link costs; each node refreshes the
/// object's miss penalty from it. Nodes selected by the DP insert the
/// object (greedy NCL eviction; evicted descriptors demoted to the
/// d-cache) and reset the counter; unselected nodes admit the object's
/// descriptor into their d-cache.
///
/// Statistics counters expose how often the DP ran, how many candidates
/// it saw and what it selected — used by the ablation benches.
class CoordinatedScheme : public CachingScheme {
 public:
  struct Stats {
    /// Upper bound on candidate-count buckets in `k_histogram`.
    static constexpr int kMaxTrackedCandidates = 32;

    uint64_t requests = 0;
    uint64_t dp_runs = 0;         ///< Requests with >= 1 candidate.
    uint64_t candidates = 0;      ///< Total DP candidates across requests.
    uint64_t placements = 0;      ///< Total nodes selected.
    uint64_t excluded_no_descriptor = 0;
    double total_gain = 0.0;      ///< Sum of optimal Δcost values.
    /// k_histogram[k]: requests whose DP saw exactly k candidates
    /// (clamped at kMaxTrackedCandidates-1). The paper's O(k^2) cost
    /// argument (§2.4) rests on k staying small.
    uint64_t k_histogram[kMaxTrackedCandidates] = {};
    /// Communication overhead of the protocol (paper §2.3-2.4): bytes of
    /// (f_i, m_i, l_i) triples piggybacked on request messages plus the
    /// penalty counter + decision bitmap on responses, assuming 8-byte
    /// fields. The same bytes flow into the per-run MetricsCollector
    /// through the message payload counters; this total additionally
    /// covers the warm-up phase.
    uint64_t piggyback_bytes = 0;

    double MeanCandidates() const {
      return dp_runs == 0 ? 0.0
                          : static_cast<double>(candidates) /
                                static_cast<double>(dp_runs);
    }
    double MeanPiggybackBytesPerRequest() const {
      return requests == 0 ? 0.0
                           : static_cast<double>(piggyback_bytes) /
                                 static_cast<double>(requests);
    }
  };

  std::string name() const override { return "Coordinated"; }
  CacheMode cache_mode() const override { return CacheMode::kCost; }
  bool observes_ascent() const override { return true; }

  void OnAscend(sim::MessageContext& ctx, int hop) override;
  void OnServe(sim::MessageContext& ctx) override;
  void OnDescend(sim::MessageContext& ctx, int hop) override;
  void OnSiblingServe(sim::MessageContext& ctx) override;
  void OnAbort() override;

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  /// What one ascent hop piggybacked: the node's local view of the
  /// requested object. m_i is not carried — it is an accumulation of
  /// link costs the serving node reconstructs exactly when it walks the
  /// collected hops (the physical message carries the running sum
  /// instead; both encodings are 8 bytes).
  struct HopRecord {
    bool has_descriptor = false;
    double frequency = 0.0;
    bool feasible = false;
    double cost_loss = 0.0;
  };

  Stats stats_;
  /// Piggybacked hop records of the in-flight request, indexed by path
  /// hop (ascending). Filled by OnAscend, consumed and cleared by
  /// OnServe.
  std::vector<HopRecord> ascent_;
  /// Placement decision of the in-flight request (path indices selected
  /// by the DP), carried by the response message. Written by OnServe,
  /// scanned linearly by OnDescend — the DP selects at most a handful of
  /// hops, so a flat vector beats any hashed set.
  std::vector<int> selected_path_indices_;
  /// Reused across PlanEvictionInto calls (one per candidate per request)
  /// so the ascent never allocates a fresh victims vector.
  cache::NclCache::EvictionPlan scratch_plan_;
  /// Reused victim buffer for the descent's insertions.
  std::vector<ObjectId> evicted_scratch_;
  /// Per-request decision scratch, reused across requests so OnServe's
  /// path reconstruction + DP run allocate nothing in the steady state.
  core::PathInfo info_;
  std::vector<int> path_index_of_;  ///< Parallel to info_.nodes.
  std::vector<int> origin_;
  core::PlacementInput input_;
  core::PlacementScratch dp_scratch_;
  core::PlacementResult dp_result_;
};

}  // namespace cascache::schemes

#endif  // CASCACHE_SCHEMES_COORDINATED_SCHEME_H_
