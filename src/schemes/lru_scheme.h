#ifndef CASCACHE_SCHEMES_LRU_SCHEME_H_
#define CASCACHE_SCHEMES_LRU_SCHEME_H_

#include "schemes/scheme.h"

namespace cascache::schemes {

/// The standard baseline (paper §3.3): the requested object is cached at
/// every node it passes through; each cache independently evicts its
/// least-recently-used objects to make room. No descriptors, no d-cache,
/// and nothing piggybacked on the messages.
class LruScheme : public CachingScheme {
 public:
  std::string name() const override { return "LRU"; }
  CacheMode cache_mode() const override { return CacheMode::kLru; }
  bool uses_link_costs() const override { return false; }
  bool uses_dcache() const override { return false; }
  bool plain_lru_replay() const override { return true; }

  void OnServe(sim::MessageContext& ctx) override;
  void OnDescend(sim::MessageContext& ctx, int hop) override;
  void OnSiblingServe(sim::MessageContext& ctx) override;
};

}  // namespace cascache::schemes

#endif  // CASCACHE_SCHEMES_LRU_SCHEME_H_
