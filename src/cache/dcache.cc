#include "cache/dcache.h"

namespace cascache::cache {

DCache::DCache(size_t max_descriptors, DCachePolicy policy)
    : capacity_(max_descriptors), policy_(policy) {}

double DCache::PriorityOf(const ObjectDescriptor& desc) const {
  if (policy_ == DCachePolicy::kLfu) return desc.frequency;
  // LRU: most recent access time (0 if never accessed); the heap evicts
  // the minimum, i.e. the least recently accessed descriptor.
  return desc.num_accesses == 0 ? 0.0 : desc.KthMostRecentAccess(1);
}

ObjectDescriptor* DCache::Find(ObjectId id) {
  const SlotId slot = index_.Get(id);
  return slot == kNoSlot ? nullptr : &pool_.at(slot);
}

const ObjectDescriptor* DCache::Find(ObjectId id) const {
  const SlotId slot = index_.Get(id);
  return slot == kNoSlot ? nullptr : &pool_.at(slot);
}

ObjectDescriptor* DCache::Insert(ObjectId id, const ObjectDescriptor& desc) {
  if (capacity_ == 0) return nullptr;
  if (const SlotId slot = index_.Get(id); slot != kNoSlot) {
    ObjectDescriptor& stored = pool_.at(slot);
    stored = desc;
    heap_.Update(id, PriorityOf(desc));
    return &stored;
  }
  if (count_ >= capacity_) {
    // Admission: do not displace a higher-priority descriptor.
    if (PriorityOf(desc) < heap_.Top().second) return nullptr;
    const ObjectId victim = heap_.Pop().first;
    const SlotId victim_slot = index_.Get(victim);
    CASCACHE_CHECK(victim_slot != kNoSlot);
    index_.Erase(victim);
    pool_.Free(victim_slot);
    --count_;
  }
  const SlotId slot = pool_.Alloc();
  ObjectDescriptor& stored = pool_.at(slot);
  stored = desc;
  index_.Set(id, slot);
  heap_.Push(id, PriorityOf(desc));
  ++count_;
  return &stored;
}

void DCache::Refresh(ObjectId id, const ObjectDescriptor& desc) {
  if (!heap_.Contains(id)) return;
  heap_.Update(id, PriorityOf(desc));
}

bool DCache::Erase(ObjectId id) {
  const SlotId slot = index_.Get(id);
  if (slot == kNoSlot) return false;
  index_.Erase(id);
  pool_.Free(slot);
  --count_;
  CASCACHE_CHECK(heap_.Erase(id));
  return true;
}

void DCache::Clear() {
  pool_.Clear();
  index_.Clear();
  heap_.Clear();
  count_ = 0;
}

}  // namespace cascache::cache
