#include "cache/dcache.h"

namespace cascache::cache {

DCache::DCache(size_t max_descriptors, DCachePolicy policy)
    : capacity_(max_descriptors), policy_(policy) {}

double DCache::PriorityOf(const ObjectDescriptor& desc) const {
  if (policy_ == DCachePolicy::kLfu) return desc.frequency;
  // LRU: most recent access time (0 if never accessed); the heap evicts
  // the minimum, i.e. the least recently accessed descriptor.
  return desc.num_accesses == 0 ? 0.0 : desc.KthMostRecentAccess(1);
}

ObjectDescriptor* DCache::Find(ObjectId id) {
  auto it = descriptors_.find(id);
  return it == descriptors_.end() ? nullptr : &it->second;
}

const ObjectDescriptor* DCache::Find(ObjectId id) const {
  auto it = descriptors_.find(id);
  return it == descriptors_.end() ? nullptr : &it->second;
}

ObjectDescriptor* DCache::Insert(ObjectId id, const ObjectDescriptor& desc) {
  if (capacity_ == 0) return nullptr;
  auto it = descriptors_.find(id);
  if (it != descriptors_.end()) {
    it->second = desc;
    heap_.Update(id, PriorityOf(desc));
    return &it->second;
  }
  if (descriptors_.size() >= capacity_) {
    // Admission: do not displace a higher-priority descriptor.
    if (PriorityOf(desc) < heap_.Top().second) return nullptr;
    const ObjectId victim = heap_.Pop().first;
    descriptors_.erase(victim);
  }
  auto [new_it, ok] = descriptors_.emplace(id, desc);
  CASCACHE_CHECK(ok);
  heap_.Push(id, PriorityOf(desc));
  return &new_it->second;
}

void DCache::Refresh(ObjectId id, const ObjectDescriptor& desc) {
  if (!heap_.Contains(id)) return;
  heap_.Update(id, PriorityOf(desc));
}

bool DCache::Erase(ObjectId id) {
  if (descriptors_.erase(id) == 0) return false;
  CASCACHE_CHECK(heap_.Erase(id));
  return true;
}

void DCache::Clear() {
  descriptors_.clear();
  heap_.Clear();
}

}  // namespace cascache::cache
