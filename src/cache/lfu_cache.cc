#include "cache/lfu_cache.h"

#include "util/check.h"

namespace cascache::cache {

LfuCache::LfuCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

SlotId LfuCache::AllocSlot() {
  if (!free_.empty()) {
    const SlotId slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const SlotId slot = static_cast<SlotId>(sizes_.size());
  sizes_.push_back(0);
  counts_.push_back(0);
  return slot;
}

uint64_t LfuCache::CountOf(ObjectId id) const {
  const SlotId slot = index_.Get(id);
  CASCACHE_CHECK_MSG(slot != kNoSlot, "object not cached");
  return counts_[slot];
}

bool LfuCache::Touch(ObjectId id) {
  const SlotId slot = index_.Get(id);
  if (slot == kNoSlot) return false;
  ++counts_[slot];
  heap_.Update(id, static_cast<double>(counts_[slot]));
  return true;
}

const std::vector<ObjectId>& LfuCache::Insert(ObjectId id, uint64_t size,
                                              bool* inserted) {
  if (inserted != nullptr) *inserted = false;
  evicted_scratch_.clear();
  if (Touch(id)) return evicted_scratch_;
  CASCACHE_CHECK(size > 0);
  if (size > capacity_) return evicted_scratch_;

  while (used_ + size > capacity_) {
    CASCACHE_CHECK(!heap_.empty());
    const ObjectId victim = heap_.Pop().first;
    const SlotId victim_slot = index_.Get(victim);
    CASCACHE_DCHECK(victim_slot != kNoSlot);
    used_ -= sizes_[victim_slot];
    index_.Erase(victim);
    free_.push_back(victim_slot);
    --count_;
    evicted_scratch_.push_back(victim);
  }
  const SlotId slot = AllocSlot();
  sizes_[slot] = size;
  counts_[slot] = 1;
  index_.Set(id, slot);
  heap_.Push(id, 1.0);
  used_ += size;
  ++count_;
  if (inserted != nullptr) *inserted = true;
  return evicted_scratch_;
}

bool LfuCache::Erase(ObjectId id) {
  const SlotId slot = index_.Get(id);
  if (slot == kNoSlot) return false;
  used_ -= sizes_[slot];
  index_.Erase(id);
  free_.push_back(slot);
  --count_;
  CASCACHE_CHECK(heap_.Erase(id));
  return true;
}

void LfuCache::Clear() {
  // Return every slot to the free list instead of shrinking the arrays
  // (see FlatLru::Clear): a cleared store re-fills its old slots without
  // regrowing.
  free_.clear();
  free_.reserve(sizes_.size());
  for (SlotId slot = static_cast<SlotId>(sizes_.size()); slot-- > 0;) {
    free_.push_back(slot);
  }
  index_.Clear();
  heap_.Clear();
  used_ = 0;
  count_ = 0;
}

}  // namespace cascache::cache
