#include "cache/lfu_cache.h"

#include "util/check.h"

namespace cascache::cache {

LfuCache::LfuCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

uint64_t LfuCache::CountOf(ObjectId id) const {
  auto it = counts_.find(id);
  CASCACHE_CHECK_MSG(it != counts_.end(), "object not cached");
  return it->second;
}

bool LfuCache::Touch(ObjectId id) {
  auto it = counts_.find(id);
  if (it == counts_.end()) return false;
  ++it->second;
  heap_.Update(id, static_cast<double>(it->second));
  return true;
}

std::vector<ObjectId> LfuCache::Insert(ObjectId id, uint64_t size,
                                       bool* inserted) {
  if (inserted != nullptr) *inserted = false;
  std::vector<ObjectId> evicted;
  if (Touch(id)) return evicted;
  CASCACHE_CHECK(size > 0);
  if (size > capacity_) return evicted;

  while (used_ + size > capacity_) {
    CASCACHE_CHECK(!heap_.empty());
    const ObjectId victim = heap_.Pop().first;
    used_ -= sizes_.at(victim);
    sizes_.erase(victim);
    counts_.erase(victim);
    evicted.push_back(victim);
  }
  sizes_[id] = size;
  counts_[id] = 1;
  heap_.Push(id, 1.0);
  used_ += size;
  if (inserted != nullptr) *inserted = true;
  return evicted;
}

bool LfuCache::Erase(ObjectId id) {
  auto it = sizes_.find(id);
  if (it == sizes_.end()) return false;
  used_ -= it->second;
  sizes_.erase(it);
  counts_.erase(id);
  CASCACHE_CHECK(heap_.Erase(id));
  return true;
}

void LfuCache::Clear() {
  sizes_.clear();
  counts_.clear();
  heap_.Clear();
  used_ = 0;
}

}  // namespace cascache::cache
