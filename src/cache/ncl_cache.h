#ifndef CASCACHE_CACHE_NCL_CACHE_H_
#define CASCACHE_CACHE_NCL_CACHE_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "cache/flat_store.h"
#include "trace/object_catalog.h"

namespace cascache::cache {

using trace::ObjectId;

/// Cost-aware object store ordered by normalized cost loss, used by the
/// LNC-R baseline and the coordinated scheme. Each cached object carries a
/// cost loss f(O)·m(O) (the penalty of losing it); its *normalized* cost
/// loss (NCL) is f(O)·m(O)/s(O) (paper §2.1). Victims are selected
/// greedily in ascending NCL order until enough space is freed — the
/// paper's knapsack heuristic.
///
/// Entry storage is flat: size/loss/NCL live in struct-of-arrays slots
/// behind a direct-index id→slot table, so the greedy plan scan and the
/// per-access loss refresh touch contiguous arrays instead of hash nodes.
/// The ascending (NCL, id) order remains a std::set — the greedy scan
/// needs non-destructive in-order traversal, and keeping the exact same
/// comparator preserves bit-identical victim order.
class NclCache {
 public:
  /// Greedy eviction preview: which objects would be purged to free
  /// `need` bytes, and the total cost loss l = sum of their f·m values.
  struct EvictionPlan {
    std::vector<ObjectId> victims;
    double cost_loss = 0.0;
    uint64_t freed_bytes = 0;
    bool feasible = false;  ///< True if enough bytes can be freed.

    /// Resets to the empty plan, keeping the victims allocation.
    void Clear() {
      victims.clear();
      cost_loss = 0.0;
      freed_bytes = 0;
      feasible = false;
    }
  };

  explicit NclCache(uint64_t capacity_bytes);

  bool Contains(ObjectId id) const { return index_.Contains(id); }

  /// Advisory cache-line prefetch of the Contains probe for `id` (see
  /// SlotIndex::Prefetch); used by the replay loop one request ahead.
  void PrefetchProbe(ObjectId id) const { index_.Prefetch(id); }

  /// Cost loss (f·m) currently recorded for a cached object.
  double LossOf(ObjectId id) const;

  /// Plans the greedy smallest-NCL-first eviction that frees at least
  /// `need_bytes` beyond current free space; does not modify the cache.
  /// If the cache already has `need_bytes` free, the plan is empty and
  /// feasible.
  EvictionPlan PlanEviction(uint64_t need_bytes) const;

  /// Allocation-free variant for the hot path (coordinated placement
  /// plans an eviction per candidate on every request ascent): fills a
  /// caller-owned plan, reusing its victims buffer.
  void PlanEvictionInto(uint64_t need_bytes, EvictionPlan* plan) const;

  /// Inserts an object, applying the greedy eviction as needed. Returns
  /// the evicted ids (a reused internal scratch, valid until the next
  /// Insert); `inserted` reports whether the object was stored (false if
  /// it exceeds total capacity or is already present).
  const std::vector<ObjectId>& Insert(ObjectId id, uint64_t size, double loss,
                                      bool* inserted = nullptr);

  /// Updates the cost loss (and hence NCL priority) of a cached object.
  /// No-op if absent; returns presence.
  bool UpdateLoss(ObjectId id, double loss);

  bool Erase(ObjectId id);
  void Clear();

  /// Selects the id-index storage mode (SlotIndex::SetSparse); the cache
  /// must be empty.
  void SetSparse(bool sparse) { index_.SetSparse(sparse); }

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  uint64_t free_bytes() const { return capacity_ - used_; }
  size_t num_objects() const { return count_; }

  /// High-water slot count (test/debug helper).
  size_t slot_span() const { return sizes_.size(); }

  /// Ids of all cached objects in ascending NCL order (test/debug helper).
  std::vector<ObjectId> IdsByNcl() const;

 private:
  SlotId AllocSlot();

  uint64_t capacity_;
  uint64_t used_ = 0;
  size_t count_ = 0;
  /// Reused by Insert() so steady-state insertions do not allocate a
  /// fresh victims vector per call.
  EvictionPlan insert_plan_;
  std::vector<ObjectId> evicted_scratch_;

  // Struct-of-arrays entry slots + direct id→slot index.
  std::vector<uint64_t> sizes_;
  std::vector<double> losses_;  ///< f·m
  std::vector<double> ncls_;    ///< loss / size
  std::vector<SlotId> free_;
  SlotIndex index_;

  /// Ascending (NCL, id) order; supports the greedy in-order scan that the
  /// heap alternative cannot provide without destructive pops.
  std::set<std::pair<double, ObjectId>> order_;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_NCL_CACHE_H_
