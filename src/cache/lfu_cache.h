#ifndef CASCACHE_CACHE_LFU_CACHE_H_
#define CASCACHE_CACHE_LFU_CACHE_H_

#include <cstdint>
#include <vector>

#include "cache/flat_store.h"
#include "trace/object_catalog.h"
#include "util/indexed_heap.h"

namespace cascache::cache {

using trace::ObjectId;

/// In-cache perfect-LFU object store: each resident object carries a hit
/// counter; eviction removes the least-frequently-used object (ties
/// broken arbitrarily). Counts reset when an object re-enters after
/// eviction — the classic in-cache LFU the early web-caching studies
/// (Williams et al., cited as [19]) evaluated against LRU.
///
/// Sizes and counts live in struct-of-arrays slots behind a direct-index
/// id→slot table; the eviction heap uses the dense ObjectId position map.
class LfuCache {
 public:
  explicit LfuCache(uint64_t capacity_bytes);

  bool Contains(ObjectId id) const { return index_.Contains(id); }

  /// Advisory cache-line prefetch of the Contains probe for `id` (see
  /// SlotIndex::Prefetch); used by the replay loop one request ahead.
  void PrefetchProbe(ObjectId id) const { index_.Prefetch(id); }

  /// Increments the hit counter; returns presence.
  bool Touch(ObjectId id);

  /// Inserts with an initial count of 1, evicting LFU objects as needed.
  /// A present object is only touched. Oversized objects are rejected.
  /// The returned evicted ids are a reused internal scratch, valid until
  /// the next Insert.
  const std::vector<ObjectId>& Insert(ObjectId id, uint64_t size,
                                      bool* inserted = nullptr);

  bool Erase(ObjectId id);
  void Clear();

  /// Selects sparse id-index/heap storage for huge sparse catalogs (see
  /// SlotIndex::SetSparse); the cache must be empty.
  void SetSparse(bool sparse) {
    index_.SetSparse(sparse);
    heap_.SetSparse(sparse);
  }

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  size_t num_objects() const { return count_; }

  /// Current hit count of a resident object; must be present.
  uint64_t CountOf(ObjectId id) const;

 private:
  SlotId AllocSlot();

  uint64_t capacity_;
  uint64_t used_ = 0;
  size_t count_ = 0;

  // Struct-of-arrays entry slots + direct id→slot index.
  std::vector<uint64_t> sizes_;
  std::vector<uint64_t> counts_;
  std::vector<SlotId> free_;
  SlotIndex index_;
  std::vector<ObjectId> evicted_scratch_;

  /// Min-heap on count: top is the LFU victim.
  util::DenseIndexedMinHeap<ObjectId> heap_;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_LFU_CACHE_H_
