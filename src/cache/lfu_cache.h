#ifndef CASCACHE_CACHE_LFU_CACHE_H_
#define CASCACHE_CACHE_LFU_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/object_catalog.h"
#include "util/indexed_heap.h"

namespace cascache::cache {

using trace::ObjectId;

/// In-cache perfect-LFU object store: each resident object carries a hit
/// counter; eviction removes the least-frequently-used object (ties
/// broken arbitrarily). Counts reset when an object re-enters after
/// eviction — the classic in-cache LFU the early web-caching studies
/// (Williams et al., cited as [19]) evaluated against LRU.
class LfuCache {
 public:
  explicit LfuCache(uint64_t capacity_bytes);

  bool Contains(ObjectId id) const { return sizes_.count(id) > 0; }

  /// Increments the hit counter; returns presence.
  bool Touch(ObjectId id);

  /// Inserts with an initial count of 1, evicting LFU objects as needed.
  /// A present object is only touched. Oversized objects are rejected.
  std::vector<ObjectId> Insert(ObjectId id, uint64_t size,
                               bool* inserted = nullptr);

  bool Erase(ObjectId id);
  void Clear();

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  size_t num_objects() const { return sizes_.size(); }

  /// Current hit count of a resident object; must be present.
  uint64_t CountOf(ObjectId id) const;

 private:
  uint64_t capacity_;
  uint64_t used_ = 0;
  std::unordered_map<ObjectId, uint64_t> sizes_;
  std::unordered_map<ObjectId, uint64_t> counts_;
  /// Min-heap on count: top is the LFU victim.
  util::IndexedMinHeap<ObjectId> heap_;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_LFU_CACHE_H_
