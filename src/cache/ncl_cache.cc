#include "cache/ncl_cache.h"

#include "util/check.h"

namespace cascache::cache {

NclCache::NclCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

double NclCache::LossOf(ObjectId id) const {
  auto it = entries_.find(id);
  CASCACHE_CHECK_MSG(it != entries_.end(), "object not cached");
  return it->second.loss;
}

NclCache::EvictionPlan NclCache::PlanEviction(uint64_t need_bytes) const {
  EvictionPlan plan;
  PlanEvictionInto(need_bytes, &plan);
  return plan;
}

void NclCache::PlanEvictionInto(uint64_t need_bytes,
                                EvictionPlan* plan) const {
  plan->Clear();
  const uint64_t free = capacity_ - used_;
  if (free >= need_bytes) {
    plan->feasible = true;
    return;
  }
  uint64_t to_free = need_bytes - free;
  for (const auto& [ncl, id] : order_) {
    const Entry& e = entries_.at(id);
    plan->victims.push_back(id);
    plan->cost_loss += e.loss;
    plan->freed_bytes += e.size;
    if (plan->freed_bytes >= to_free) {
      plan->feasible = true;
      return;
    }
  }
  // Even evicting everything is not enough.
  plan->feasible = false;
}

std::vector<ObjectId> NclCache::Insert(ObjectId id, uint64_t size,
                                       double loss, bool* inserted) {
  if (inserted != nullptr) *inserted = false;
  std::vector<ObjectId> evicted;
  CASCACHE_CHECK(size > 0);
  if (Contains(id)) {
    UpdateLoss(id, loss);
    return evicted;
  }
  if (size > capacity_) return evicted;

  PlanEvictionInto(size, &insert_plan_);
  CASCACHE_CHECK(insert_plan_.feasible);
  for (ObjectId victim : insert_plan_.victims) {
    CASCACHE_CHECK(Erase(victim));
    evicted.push_back(victim);
  }
  Entry entry{size, loss, loss / static_cast<double>(size)};
  order_.emplace(entry.ncl, id);
  entries_.emplace(id, entry);
  used_ += size;
  if (inserted != nullptr) *inserted = true;
  return evicted;
}

bool NclCache::UpdateLoss(ObjectId id, double loss) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  Entry& e = it->second;
  order_.erase({e.ncl, id});
  e.loss = loss;
  e.ncl = loss / static_cast<double>(e.size);
  order_.emplace(e.ncl, id);
  return true;
}

bool NclCache::Erase(ObjectId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  order_.erase({it->second.ncl, id});
  used_ -= it->second.size;
  entries_.erase(it);
  return true;
}

void NclCache::Clear() {
  entries_.clear();
  order_.clear();
  used_ = 0;
}

std::vector<ObjectId> NclCache::IdsByNcl() const {
  std::vector<ObjectId> ids;
  ids.reserve(order_.size());
  for (const auto& [ncl, id] : order_) ids.push_back(id);
  return ids;
}

}  // namespace cascache::cache
