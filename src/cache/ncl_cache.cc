#include "cache/ncl_cache.h"

#include "util/check.h"

namespace cascache::cache {

NclCache::NclCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

SlotId NclCache::AllocSlot() {
  if (!free_.empty()) {
    const SlotId slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const SlotId slot = static_cast<SlotId>(sizes_.size());
  sizes_.push_back(0);
  losses_.push_back(0.0);
  ncls_.push_back(0.0);
  return slot;
}

double NclCache::LossOf(ObjectId id) const {
  const SlotId slot = index_.Get(id);
  CASCACHE_CHECK_MSG(slot != kNoSlot, "object not cached");
  return losses_[slot];
}

NclCache::EvictionPlan NclCache::PlanEviction(uint64_t need_bytes) const {
  EvictionPlan plan;
  PlanEvictionInto(need_bytes, &plan);
  return plan;
}

void NclCache::PlanEvictionInto(uint64_t need_bytes,
                                EvictionPlan* plan) const {
  plan->Clear();
  const uint64_t free = capacity_ - used_;
  if (free >= need_bytes) {
    plan->feasible = true;
    return;
  }
  uint64_t to_free = need_bytes - free;
  for (const auto& [ncl, id] : order_) {
    const SlotId slot = index_.Get(id);
    CASCACHE_DCHECK(slot != kNoSlot);
    plan->victims.push_back(id);
    plan->cost_loss += losses_[slot];
    plan->freed_bytes += sizes_[slot];
    if (plan->freed_bytes >= to_free) {
      plan->feasible = true;
      return;
    }
  }
  // Even evicting everything is not enough.
  plan->feasible = false;
}

const std::vector<ObjectId>& NclCache::Insert(ObjectId id, uint64_t size,
                                              double loss, bool* inserted) {
  if (inserted != nullptr) *inserted = false;
  evicted_scratch_.clear();
  CASCACHE_CHECK(size > 0);
  if (Contains(id)) {
    UpdateLoss(id, loss);
    return evicted_scratch_;
  }
  if (size > capacity_) return evicted_scratch_;

  PlanEvictionInto(size, &insert_plan_);
  CASCACHE_CHECK(insert_plan_.feasible);
  for (ObjectId victim : insert_plan_.victims) {
    CASCACHE_CHECK(Erase(victim));
    evicted_scratch_.push_back(victim);
  }
  const SlotId slot = AllocSlot();
  sizes_[slot] = size;
  losses_[slot] = loss;
  ncls_[slot] = loss / static_cast<double>(size);
  order_.emplace(ncls_[slot], id);
  index_.Set(id, slot);
  used_ += size;
  ++count_;
  if (inserted != nullptr) *inserted = true;
  return evicted_scratch_;
}

bool NclCache::UpdateLoss(ObjectId id, double loss) {
  const SlotId slot = index_.Get(id);
  if (slot == kNoSlot) return false;
  order_.erase({ncls_[slot], id});
  losses_[slot] = loss;
  ncls_[slot] = loss / static_cast<double>(sizes_[slot]);
  order_.emplace(ncls_[slot], id);
  return true;
}

bool NclCache::Erase(ObjectId id) {
  const SlotId slot = index_.Get(id);
  if (slot == kNoSlot) return false;
  order_.erase({ncls_[slot], id});
  used_ -= sizes_[slot];
  index_.Erase(id);
  free_.push_back(slot);
  --count_;
  return true;
}

void NclCache::Clear() {
  // Return every slot to the free list instead of shrinking the arrays
  // (see FlatLru::Clear): a cleared store re-fills its old slots without
  // regrowing.
  free_.clear();
  free_.reserve(sizes_.size());
  for (SlotId slot = static_cast<SlotId>(sizes_.size()); slot-- > 0;) {
    free_.push_back(slot);
  }
  index_.Clear();
  order_.clear();
  used_ = 0;
  count_ = 0;
}

std::vector<ObjectId> NclCache::IdsByNcl() const {
  std::vector<ObjectId> ids;
  ids.reserve(order_.size());
  for (const auto& [ncl, id] : order_) ids.push_back(id);
  return ids;
}

}  // namespace cascache::cache
