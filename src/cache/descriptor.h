#ifndef CASCACHE_CACHE_DESCRIPTOR_H_
#define CASCACHE_CACHE_DESCRIPTOR_H_

#include <array>
#include <cstdint>

#include "trace/object_catalog.h"

namespace cascache::cache {

/// Maximum supported sliding-window depth (paper uses K=3).
inline constexpr int kMaxAccessWindow = 8;

/// Per-node metadata about an object (paper §2.3): "An object descriptor
/// contains the object size, the access frequency (and/or the timestamps
/// of recent accesses) and the miss penalty of the object with respect to
/// the associated node." Descriptors live either alongside the cached
/// object (main cache) or in the d-cache for hot non-cached objects.
///
/// The access-time ring buffer records up to kMaxAccessWindow recent
/// reference times; FrequencyEstimator turns them into a rate.
struct ObjectDescriptor {
  uint64_t size = 0;

  /// Miss penalty m(O): additional access cost if the object is not cached
  /// at this node, i.e. the summed link costs to the nearest higher-level
  /// copy. Updated by the piggyback counter in response messages.
  double miss_penalty = 0.0;

  /// Cached frequency estimate and the time it was computed (the estimate
  /// is refreshed lazily, see FrequencyEstimator).
  double frequency = 0.0;
  double frequency_time = -1.0;

  /// Ring buffer of most recent access times (most recent first logically;
  /// physically a circular buffer with head_ as next write slot).
  std::array<double, kMaxAccessWindow> access_times{};
  uint8_t num_accesses = 0;  ///< Valid entries, <= kMaxAccessWindow.
  uint8_t head = 0;          ///< Next write position.

  /// Records an access at time `t` (t must be >= previous accesses).
  void RecordAccess(double t);

  /// The k-th most recent access time (k=1 is the latest). k must be in
  /// [1, num_accesses].
  double KthMostRecentAccess(int k) const;

  /// Oldest recorded access time; num_accesses must be > 0.
  double OldestAccess() const { return KthMostRecentAccess(num_accesses); }
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_DESCRIPTOR_H_
