#ifndef CASCACHE_CACHE_DESCRIPTOR_TABLE_H_
#define CASCACHE_CACHE_DESCRIPTOR_TABLE_H_

#include <cstddef>
#include <vector>

#include "cache/descriptor.h"
#include "cache/flat_store.h"
#include "util/check.h"

namespace cascache::cache {

/// Flat table of the descriptors of objects resident in a cost-mode main
/// cache: a chunked descriptor pool behind a direct-index id→slot table.
/// Replaces the per-node `unordered_map<ObjectId, ObjectDescriptor>`:
/// Find is two array hops, Insert never allocates per entry (slots are
/// recycled through a free list), and chunk stability keeps returned
/// ObjectDescriptor pointers valid across later insertions.
class DescriptorTable {
 public:
  ObjectDescriptor* Find(trace::ObjectId id) {
    const SlotId slot = index_.Get(id);
    return slot == kNoSlot ? nullptr : &pool_.at(slot);
  }
  const ObjectDescriptor* Find(trace::ObjectId id) const {
    const SlotId slot = index_.Get(id);
    return slot == kNoSlot ? nullptr : &pool_.at(slot);
  }

  bool Contains(trace::ObjectId id) const { return index_.Contains(id); }

  /// Stores (or overwrites) the descriptor for `id`; returns the stored
  /// copy.
  ObjectDescriptor* Insert(trace::ObjectId id, const ObjectDescriptor& desc) {
    SlotId slot = index_.Get(id);
    if (slot == kNoSlot) {
      slot = pool_.Alloc();
      index_.Set(id, slot);
      slot_ids_.resize(std::max<size_t>(slot_ids_.size(), pool_.slot_span()),
                       trace::ObjectId(0));
      occupied_.resize(slot_ids_.size(), 0);
      slot_ids_[slot] = id;
      occupied_[slot] = 1;
      ++count_;
    }
    ObjectDescriptor& stored = pool_.at(slot);
    stored = desc;
    return &stored;
  }

  bool Erase(trace::ObjectId id) {
    const SlotId slot = index_.Get(id);
    if (slot == kNoSlot) return false;
    index_.Erase(id);
    occupied_[slot] = 0;
    pool_.Free(slot);
    --count_;
    return true;
  }

  void Clear() {
    pool_.Clear();
    index_.Clear();
    slot_ids_.clear();
    occupied_.clear();
    count_ = 0;
  }

  size_t size() const { return count_; }

  /// Selects the id-index storage mode (SlotIndex::SetSparse); the table
  /// must be empty.
  void SetSparse(bool sparse) {
    CASCACHE_CHECK(count_ == 0);
    index_.SetSparse(sparse);
  }

  /// High-water pool slot count (test/debug helper).
  size_t slot_span() const { return pool_.slot_span(); }

  /// Visits every (id, descriptor) pair in unspecified order; `fn` takes
  /// (trace::ObjectId, const ObjectDescriptor&). Invariant checks only —
  /// the hot path never iterates.
  template <typename Fn>
  void ForEach(Fn fn) const {
    for (size_t slot = 0; slot < pool_.slot_span(); ++slot) {
      if (occupied_[slot] == 0) continue;
      fn(slot_ids_[slot], pool_.at(static_cast<SlotId>(slot)));
    }
  }

 private:
  ChunkedSlotPool<ObjectDescriptor> pool_;
  SlotIndex index_;
  /// Reverse slot→id mapping (+ occupancy) for ForEach; parallel to the
  /// pool's slot span.
  std::vector<trace::ObjectId> slot_ids_;
  std::vector<uint8_t> occupied_;
  size_t count_ = 0;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_DESCRIPTOR_TABLE_H_
