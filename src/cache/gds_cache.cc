#include "cache/gds_cache.h"

#include "util/check.h"

namespace cascache::cache {

GdsCache::GdsCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

SlotId GdsCache::AllocSlot() {
  if (!free_.empty()) {
    const SlotId slot = free_.back();
    free_.pop_back();
    return slot;
  }
  const SlotId slot = static_cast<SlotId>(sizes_.size());
  sizes_.push_back(0);
  credits_.push_back(0.0);
  return slot;
}

double GdsCache::CreditOf(ObjectId id) const {
  const SlotId slot = index_.Get(id);
  CASCACHE_CHECK_MSG(slot != kNoSlot, "object not cached");
  return credits_[slot];
}

void GdsCache::SetCredit(ObjectId id, SlotId slot, double credit) {
  order_.erase({credits_[slot], id});
  credits_[slot] = credit;
  order_.emplace(credit, id);
}

const std::vector<ObjectId>& GdsCache::Insert(ObjectId id, uint64_t size,
                                              double cost, bool* inserted) {
  if (inserted != nullptr) *inserted = false;
  evicted_scratch_.clear();
  CASCACHE_CHECK(size > 0);
  CASCACHE_CHECK(cost >= 0.0);
  if (const SlotId slot = index_.Get(id); slot != kNoSlot) {
    SetCredit(id, slot,
              inflation_ + cost / static_cast<double>(sizes_[slot]));
    return evicted_scratch_;
  }
  if (size > capacity_) return evicted_scratch_;

  while (used_ + size > capacity_) {
    CASCACHE_CHECK(!order_.empty());
    const auto [credit, victim] = *order_.begin();
    // Advance the inflation value to the evicted credit (the GDS rule).
    inflation_ = credit;
    order_.erase(order_.begin());
    const SlotId victim_slot = index_.Get(victim);
    CASCACHE_DCHECK(victim_slot != kNoSlot);
    used_ -= sizes_[victim_slot];
    index_.Erase(victim);
    free_.push_back(victim_slot);
    --count_;
    evicted_scratch_.push_back(victim);
  }

  const SlotId slot = AllocSlot();
  sizes_[slot] = size;
  credits_[slot] = inflation_ + cost / static_cast<double>(size);
  order_.emplace(credits_[slot], id);
  index_.Set(id, slot);
  used_ += size;
  ++count_;
  if (inserted != nullptr) *inserted = true;
  return evicted_scratch_;
}

bool GdsCache::OnHit(ObjectId id, double cost) {
  const SlotId slot = index_.Get(id);
  if (slot == kNoSlot) return false;
  SetCredit(id, slot, inflation_ + cost / static_cast<double>(sizes_[slot]));
  return true;
}

bool GdsCache::Erase(ObjectId id) {
  const SlotId slot = index_.Get(id);
  if (slot == kNoSlot) return false;
  order_.erase({credits_[slot], id});
  used_ -= sizes_[slot];
  index_.Erase(id);
  free_.push_back(slot);
  --count_;
  return true;
}

void GdsCache::Clear() {
  // Return every slot to the free list instead of shrinking the arrays
  // (see FlatLru::Clear): a cleared store re-fills its old slots without
  // regrowing.
  free_.clear();
  free_.reserve(sizes_.size());
  for (SlotId slot = static_cast<SlotId>(sizes_.size()); slot-- > 0;) {
    free_.push_back(slot);
  }
  index_.Clear();
  order_.clear();
  used_ = 0;
  count_ = 0;
  inflation_ = 0.0;
}

}  // namespace cascache::cache
