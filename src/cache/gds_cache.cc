#include "cache/gds_cache.h"

#include "util/check.h"

namespace cascache::cache {

GdsCache::GdsCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

double GdsCache::CreditOf(ObjectId id) const {
  auto it = entries_.find(id);
  CASCACHE_CHECK_MSG(it != entries_.end(), "object not cached");
  return it->second.credit;
}

void GdsCache::SetCredit(ObjectId id, Entry& entry, double credit) {
  order_.erase({entry.credit, id});
  entry.credit = credit;
  order_.emplace(credit, id);
}

std::vector<ObjectId> GdsCache::Insert(ObjectId id, uint64_t size,
                                       double cost, bool* inserted) {
  if (inserted != nullptr) *inserted = false;
  std::vector<ObjectId> evicted;
  CASCACHE_CHECK(size > 0);
  CASCACHE_CHECK(cost >= 0.0);
  if (auto it = entries_.find(id); it != entries_.end()) {
    SetCredit(id, it->second,
              inflation_ + cost / static_cast<double>(it->second.size));
    return evicted;
  }
  if (size > capacity_) return evicted;

  while (used_ + size > capacity_) {
    CASCACHE_CHECK(!order_.empty());
    const auto [credit, victim] = *order_.begin();
    // Advance the inflation value to the evicted credit (the GDS rule).
    inflation_ = credit;
    order_.erase(order_.begin());
    used_ -= entries_.at(victim).size;
    entries_.erase(victim);
    evicted.push_back(victim);
  }

  Entry entry{size, inflation_ + cost / static_cast<double>(size)};
  entries_.emplace(id, entry);
  order_.emplace(entry.credit, id);
  used_ += size;
  if (inserted != nullptr) *inserted = true;
  return evicted;
}

bool GdsCache::OnHit(ObjectId id, double cost) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  SetCredit(id, it->second,
            inflation_ + cost / static_cast<double>(it->second.size));
  return true;
}

bool GdsCache::Erase(ObjectId id) {
  auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  order_.erase({it->second.credit, id});
  used_ -= it->second.size;
  entries_.erase(it);
  return true;
}

void GdsCache::Clear() {
  entries_.clear();
  order_.clear();
  used_ = 0;
  inflation_ = 0.0;
}

}  // namespace cascache::cache
