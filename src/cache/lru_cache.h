#ifndef CASCACHE_CACHE_LRU_CACHE_H_
#define CASCACHE_CACHE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "trace/object_catalog.h"

namespace cascache::cache {

using trace::ObjectId;

/// Byte-capacity LRU object store used by the LRU and MODULO baselines
/// (paper §3.3). Insertion evicts least-recently-used objects until the
/// new object fits; objects larger than the total capacity are rejected.
class LruCache {
 public:
  explicit LruCache(uint64_t capacity_bytes);

  bool Contains(ObjectId id) const { return index_.count(id) > 0; }

  /// Marks `id` as most recently used; no-op if absent. Returns whether
  /// the object was present.
  bool Touch(ObjectId id);

  /// Inserts an object of `size` bytes, evicting LRU objects as needed.
  /// If the object is already present it is only touched. Returns the ids
  /// evicted; `inserted` (optional) reports whether a write happened.
  /// Objects larger than the capacity are not inserted (and nothing is
  /// evicted for them).
  std::vector<ObjectId> Insert(ObjectId id, uint64_t size,
                               bool* inserted = nullptr);

  /// Removes an object; returns false if absent.
  bool Erase(ObjectId id);

  void Clear();

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  size_t num_objects() const { return index_.size(); }

  /// Least recently used object id; cache must be non-empty.
  ObjectId LruVictim() const;

 private:
  struct Entry {
    ObjectId id;
    uint64_t size;
  };

  uint64_t capacity_;
  uint64_t used_ = 0;
  /// Front = most recently used, back = least recently used.
  std::list<Entry> order_;
  std::unordered_map<ObjectId, std::list<Entry>::iterator> index_;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_LRU_CACHE_H_
