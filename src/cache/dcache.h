#ifndef CASCACHE_CACHE_DCACHE_H_
#define CASCACHE_CACHE_DCACHE_H_

#include <cstddef>

#include "cache/descriptor.h"
#include "cache/flat_store.h"
#include "util/indexed_heap.h"

namespace cascache::cache {

using trace::ObjectId;

/// Replacement policy for descriptors in the d-cache. The paper proposes
/// "simple LFU replacement" (§2.4) but also notes the descriptors "can be
/// organized into one or more LRU stacks" when frequencies come from a
/// sliding window; both are supported.
enum class DCachePolicy {
  kLfu,  ///< Evict the lowest-frequency descriptor (paper default).
  kLru,  ///< Evict the least-recently-accessed descriptor.
};

/// Auxiliary descriptor cache (paper §2.4): holds descriptors of the most
/// frequently accessed objects *not* stored in the main cache, so the
/// coordinated scheme (and LNC-R) can evaluate cost savings for objects it
/// does not hold. Capacity is measured in descriptor count.
///
/// Descriptors live in a chunked slot pool indexed by a direct id→slot
/// table, so Find/Insert/Refresh are O(1) array hops with no hashing and
/// no per-descriptor allocation; chunks are stable, so returned
/// ObjectDescriptor pointers survive later insertions. The eviction heap
/// is keyed by the dense ObjectId space (direct-index position map).
class DCache {
 public:
  explicit DCache(size_t max_descriptors,
                  DCachePolicy policy = DCachePolicy::kLfu);

  DCachePolicy policy() const { return policy_; }

  bool Contains(ObjectId id) const { return index_.Contains(id); }

  /// Mutable descriptor lookup; nullptr if absent.
  ObjectDescriptor* Find(ObjectId id);
  const ObjectDescriptor* Find(ObjectId id) const;

  /// Inserts (or overwrites) a descriptor, evicting the lowest-priority
  /// descriptor if full. Returns the stored descriptor, or nullptr when
  /// capacity is zero. When full, the insert is admission-checked: a new
  /// descriptor ranking below the current minimum is rejected rather than
  /// thrashing the coldest slot (under LRU the newcomer's recency always
  /// admits it).
  ObjectDescriptor* Insert(ObjectId id, const ObjectDescriptor& desc);

  /// Refreshes the eviction priority of a present descriptor from its
  /// current state (call after recording an access). No-op if absent.
  void Refresh(ObjectId id, const ObjectDescriptor& desc);

  bool Erase(ObjectId id);
  void Clear();

  /// Selects sparse id-index/heap storage for huge sparse catalogs (see
  /// SlotIndex::SetSparse); the d-cache must be empty.
  void SetSparse(bool sparse) {
    index_.SetSparse(sparse);
    heap_.SetSparse(sparse);
  }

  size_t size() const { return count_; }
  size_t capacity() const { return capacity_; }

  /// High-water pool slot count (test/debug helper for pool-reuse
  /// assertions after Reset).
  size_t slot_span() const { return pool_.slot_span(); }

 private:
  double PriorityOf(const ObjectDescriptor& desc) const;

  size_t capacity_;
  DCachePolicy policy_;
  ChunkedSlotPool<ObjectDescriptor> pool_;
  SlotIndex index_;
  size_t count_ = 0;
  /// Min-heap on priority: the top is the eviction victim.
  util::DenseIndexedMinHeap<ObjectId> heap_;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_DCACHE_H_
