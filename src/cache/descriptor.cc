#include "cache/descriptor.h"

#include "util/check.h"

namespace cascache::cache {

void ObjectDescriptor::RecordAccess(double t) {
  access_times[head] = t;
  head = static_cast<uint8_t>((head + 1) % kMaxAccessWindow);
  if (num_accesses < kMaxAccessWindow) ++num_accesses;
}

double ObjectDescriptor::KthMostRecentAccess(int k) const {
  CASCACHE_CHECK(k >= 1 && k <= num_accesses);
  // head points at the slot after the most recent entry.
  const int idx = (head - k + 2 * kMaxAccessWindow) % kMaxAccessWindow;
  return access_times[static_cast<size_t>(idx)];
}

}  // namespace cascache::cache
