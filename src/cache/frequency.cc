#include "cache/frequency.h"

#include <algorithm>

#include "util/check.h"

namespace cascache::cache {

FrequencyEstimator::FrequencyEstimator(const FrequencyEstimatorParams& params)
    : params_(params) {
  CASCACHE_CHECK(params_.window >= 1 && params_.window <= kMaxAccessWindow);
  CASCACHE_CHECK(params_.aging_interval > 0.0);
  CASCACHE_CHECK(params_.min_span > 0.0);
}

double FrequencyEstimator::Compute(const ObjectDescriptor& desc,
                                   double now) const {
  if (desc.num_accesses == 0) return 0.0;
  const int k = std::min<int>(desc.num_accesses, params_.window);
  const double t_k = desc.KthMostRecentAccess(k);
  const double span = std::max(now - t_k, params_.min_span);
  return static_cast<double>(k) / span;
}

void FrequencyEstimator::OnAccess(ObjectDescriptor* desc, double now) const {
  CASCACHE_CHECK(desc != nullptr);
  desc->RecordAccess(now);
  desc->frequency = Compute(*desc, now);
  desc->frequency_time = now;
}

double FrequencyEstimator::Estimate(ObjectDescriptor* desc,
                                    double now) const {
  CASCACHE_CHECK(desc != nullptr);
  if (desc->frequency_time < 0.0 ||
      now - desc->frequency_time >= params_.aging_interval) {
    desc->frequency = Compute(*desc, now);
    desc->frequency_time = now;
  }
  return desc->frequency;
}

double FrequencyEstimator::Peek(const ObjectDescriptor& desc,
                                double now) const {
  if (desc.frequency_time >= 0.0 &&
      now - desc.frequency_time < params_.aging_interval) {
    return desc.frequency;
  }
  return Compute(desc, now);
}

}  // namespace cascache::cache
