#include "cache/lru_cache.h"

#include "util/check.h"

namespace cascache::cache {

LruCache::LruCache(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

bool LruCache::Touch(ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  order_.splice(order_.begin(), order_, it->second);
  return true;
}

std::vector<ObjectId> LruCache::Insert(ObjectId id, uint64_t size,
                                       bool* inserted) {
  if (inserted != nullptr) *inserted = false;
  std::vector<ObjectId> evicted;
  if (Touch(id)) return evicted;  // Already present.
  CASCACHE_CHECK(size > 0);
  if (size > capacity_) return evicted;  // Cannot ever fit.

  while (used_ + size > capacity_) {
    CASCACHE_CHECK(!order_.empty());
    const Entry victim = order_.back();
    order_.pop_back();
    index_.erase(victim.id);
    used_ -= victim.size;
    evicted.push_back(victim.id);
  }
  order_.push_front({id, size});
  index_[id] = order_.begin();
  used_ += size;
  if (inserted != nullptr) *inserted = true;
  return evicted;
}

bool LruCache::Erase(ObjectId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return false;
  used_ -= it->second->size;
  order_.erase(it->second);
  index_.erase(it);
  return true;
}

void LruCache::Clear() {
  order_.clear();
  index_.clear();
  used_ = 0;
}

ObjectId LruCache::LruVictim() const {
  CASCACHE_CHECK(!order_.empty());
  return order_.back().id;
}

}  // namespace cascache::cache
