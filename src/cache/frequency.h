#ifndef CASCACHE_CACHE_FREQUENCY_H_
#define CASCACHE_CACHE_FREQUENCY_H_

#include "cache/descriptor.h"

namespace cascache::cache {

/// Sliding-window access-frequency estimation (paper §3.2, following Shim
/// et al.): with up to K recent reference times recorded, the frequency is
///
///   f(O) = K' / (t - t_K')
///
/// where K' <= K is the number of recorded references and t_K' the K'-th
/// most recent reference time. To bound overhead, the cached estimate is
/// refreshed only when the object is referenced or when it is older than
/// `aging_interval` (10 minutes in the paper), which also ages the
/// estimate of idle objects downward.
struct FrequencyEstimatorParams {
  int window = 3;                 ///< Paper's K.
  double aging_interval = 600.0;  ///< Seconds between forced refreshes.
  /// Floor on the denominator (t - t_K'), avoiding an infinite estimate
  /// when an object's only recorded access coincides with `now`.
  double min_span = 1.0;
};

class FrequencyEstimator {
 public:
  explicit FrequencyEstimator(
      const FrequencyEstimatorParams& params = FrequencyEstimatorParams());

  /// Records an access and refreshes the cached estimate.
  void OnAccess(ObjectDescriptor* desc, double now) const;

  /// Current frequency estimate; refreshes the cached value if it is older
  /// than the aging interval.
  double Estimate(ObjectDescriptor* desc, double now) const;

  /// Estimate without mutating the descriptor (for const contexts).
  double Peek(const ObjectDescriptor& desc, double now) const;

  const FrequencyEstimatorParams& params() const { return params_; }

 private:
  double Compute(const ObjectDescriptor& desc, double now) const;

  FrequencyEstimatorParams params_;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_FREQUENCY_H_
