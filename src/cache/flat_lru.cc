#include "cache/flat_lru.h"

#include "util/check.h"

namespace cascache::cache {

void FlatLru::Clear() {
  // Return every slot to the free list instead of shrinking the arrays:
  // a cleared store re-fills its old slots (descending push so refills
  // allocate slot 0 first, like a fresh store) without regrowing.
  free_.clear();
  free_.reserve(ids_.size());
  for (SlotId slot = static_cast<SlotId>(ids_.size()); slot-- > 0;) {
    free_.push_back(slot);
  }
  index_.Clear();
  head_ = kNoSlot;
  tail_ = kNoSlot;
  used_ = 0;
  count_ = 0;
}

ObjectId FlatLru::LruVictim() const {
  CASCACHE_CHECK(tail_ != kNoSlot);
  return ids_[tail_];
}

bool FlatLru::CheckInvariants() const {
  uint64_t sum = 0;
  size_t seen = 0;
  SlotId prev = kNoSlot;
  for (SlotId slot = head_; slot != kNoSlot; slot = next_[slot]) {
    if (prev_[slot] != prev) return false;
    if (index_.Get(ids_[slot]) != slot) return false;
    sum += sizes_[slot];
    ++seen;
    if (seen > count_) return false;  // Cycle.
    prev = slot;
  }
  if (tail_ != prev) return false;
  if (seen != count_) return false;
  if (sum != used_) return false;
  if (count_ + free_.size() != ids_.size()) return false;
  return used_ <= capacity_;
}

}  // namespace cascache::cache
