#ifndef CASCACHE_CACHE_FLAT_STORE_H_
#define CASCACHE_CACHE_FLAT_STORE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/object_catalog.h"
#include "util/check.h"

namespace cascache::cache {

/// Slot handle inside a flat store; slots are dense indices into
/// struct-of-arrays storage.
using SlotId = uint32_t;
inline constexpr SlotId kNoSlot = UINT32_MAX;

/// Direct-index id→slot table over the closed object catalog (ObjectId is
/// a dense uint32_t, see trace/object_catalog.h). Replaces the per-store
/// `std::unordered_map<ObjectId, ...>`: a lookup is one bounds check and
/// one array load instead of a hash, a probe chain and a pointer chase.
/// The table grows lazily to the largest id seen, so stores never need
/// the catalog size up front.
class SlotIndex {
 public:
  SlotId Get(trace::ObjectId id) const {
    return id < slots_.size() ? slots_[id] : kNoSlot;
  }

  bool Contains(trace::ObjectId id) const { return Get(id) != kNoSlot; }

  void Set(trace::ObjectId id, SlotId slot) {
    if (id >= slots_.size()) {
      // Geometric growth keeps amortized cost O(1) for ids arriving in
      // ascending order; new entries start empty.
      const size_t target =
          std::max<size_t>(static_cast<size_t>(id) + 1, slots_.size() * 2);
      slots_.resize(target, kNoSlot);
    }
    slots_[id] = slot;
  }

  void Erase(trace::ObjectId id) {
    if (id < slots_.size()) slots_[id] = kNoSlot;
  }

  /// Hints the CPU to pull the id's table entry into cache (read intent,
  /// low temporal locality). The replay loop issues this for the next
  /// request's probes one request ahead, hiding the dependent-load
  /// latency of the per-hop Contains chain. Purely advisory: no state
  /// changes, no effect on results.
  void Prefetch(trace::ObjectId id) const {
    if (id < slots_.size()) __builtin_prefetch(&slots_[id], 0, 1);
  }

  /// Drops every mapping in O(1): the backing vector's size is reset and
  /// later Sets re-grow it (capacity is retained, so no reallocation in
  /// steady state).
  void Clear() { slots_.clear(); }

  /// Number of id slots the table currently spans (test/debug helper).
  size_t span() const { return slots_.size(); }

 private:
  std::vector<SlotId> slots_;
};

/// Fixed-chunk slot pool with a free list. Objects live in contiguous
/// chunks, so slot access is two array hops; chunks are never moved or
/// freed before Clear()/destruction, which makes `&pool.at(slot)` stable
/// across Alloc — callers (the cache node, schemes) may hold
/// ObjectDescriptor pointers across later insertions.
///
/// Alloc() returns a slot with *stale* contents; callers must fully
/// assign it. Clear() recycles every slot but keeps the chunks, so a
/// reset store re-fills warm memory.
template <typename T, size_t kChunkSize = 256>
class ChunkedSlotPool {
  static_assert((kChunkSize & (kChunkSize - 1)) == 0,
                "chunk size must be a power of two");

 public:
  SlotId Alloc() {
    if (!free_.empty()) {
      const SlotId slot = free_.back();
      free_.pop_back();
      return slot;
    }
    if (size_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    return static_cast<SlotId>(size_++);
  }

  void Free(SlotId slot) {
    CASCACHE_DCHECK(slot < size_);
    free_.push_back(slot);
  }

  T& at(SlotId slot) {
    CASCACHE_DCHECK(slot < size_);
    return chunks_[slot / kChunkSize][slot & (kChunkSize - 1)];
  }
  const T& at(SlotId slot) const {
    CASCACHE_DCHECK(slot < size_);
    return chunks_[slot / kChunkSize][slot & (kChunkSize - 1)];
  }

  /// Recycles all slots without releasing chunk memory.
  void Clear() {
    free_.clear();
    size_ = 0;
  }

  /// High-water slot count (allocated, including freed slots).
  size_t slot_span() const { return size_; }
  size_t free_count() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<SlotId> free_;
  size_t size_ = 0;
};

/// Flat id→value map over the dense ObjectId space: a SlotIndex plus
/// vector-backed value slots with a free list. Pointers returned by Find
/// are invalidated by later InsertOrAssign (vector growth); use
/// ChunkedSlotPool-based storage where stability matters. Replaces
/// incidental `unordered_map<ObjectId, T>` tables on the hot path (copy
/// freshness stamps).
template <typename T>
class FlatIdMap {
 public:
  T* Find(trace::ObjectId id) {
    const SlotId slot = index_.Get(id);
    return slot == kNoSlot ? nullptr : &values_[slot];
  }
  const T* Find(trace::ObjectId id) const {
    const SlotId slot = index_.Get(id);
    return slot == kNoSlot ? nullptr : &values_[slot];
  }

  bool Contains(trace::ObjectId id) const { return index_.Contains(id); }

  /// Returns the value slot for `id`, creating it if absent. The slot's
  /// previous contents are unspecified when newly created; assign it.
  T& InsertOrAssign(trace::ObjectId id) {
    SlotId slot = index_.Get(id);
    if (slot == kNoSlot) {
      if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
      } else {
        slot = static_cast<SlotId>(values_.size());
        values_.emplace_back();
      }
      index_.Set(id, slot);
      ++count_;
    }
    return values_[slot];
  }

  bool Erase(trace::ObjectId id) {
    const SlotId slot = index_.Get(id);
    if (slot == kNoSlot) return false;
    index_.Erase(id);
    free_.push_back(slot);
    --count_;
    return true;
  }

  void Clear() {
    index_.Clear();
    values_.clear();
    free_.clear();
    count_ = 0;
  }

  size_t size() const { return count_; }

 private:
  SlotIndex index_;
  std::vector<T> values_;
  std::vector<SlotId> free_;
  size_t count_ = 0;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_FLAT_STORE_H_
