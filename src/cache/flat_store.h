#ifndef CASCACHE_CACHE_FLAT_STORE_H_
#define CASCACHE_CACHE_FLAT_STORE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "trace/object_catalog.h"
#include "util/check.h"

namespace cascache::cache {

/// Slot handle inside a flat store; slots are dense indices into
/// struct-of-arrays storage.
using SlotId = uint32_t;
inline constexpr SlotId kNoSlot = UINT32_MAX;

/// Direct-index id→slot table over the closed object catalog (ObjectId is
/// a dense uint32_t, see trace/object_catalog.h). Replaces the per-store
/// `std::unordered_map<ObjectId, ...>`: a lookup is one bounds check and
/// one array load instead of a hash, a probe chain and a pointer chase.
/// The table grows lazily to the largest id seen, so stores never need
/// the catalog size up front.
///
/// Sparse mode (SetSparse): above ~2^24 catalog objects the direct table
/// stops being an optimization — it grows to the largest id *referenced*,
/// and with hundreds of store instances across the cache plane the dense
/// waste alone would blow the scale-smoke RSS budget at 10^8 objects. In
/// sparse mode the same API runs over an open-addressing table of packed
/// (id, slot) entries (Fibonacci hashing, linear probing, backward-shift
/// deletion), sized by *resident* objects instead of the id space. The
/// dense fast path keeps exactly one predictable branch; the mode is
/// fixed while the index is empty, so a store's stream of operations is
/// wholly one mode or the other.
class SlotIndex {
 public:
  SlotId Get(trace::ObjectId id) const {
    if (!sparse_) return id < slots_.size() ? slots_[id] : kNoSlot;
    return SparseGet(id);
  }

  bool Contains(trace::ObjectId id) const { return Get(id) != kNoSlot; }

  void Set(trace::ObjectId id, SlotId slot) {
    if (sparse_) {
      SparseSet(id, slot);
      return;
    }
    if (id >= slots_.size()) {
      // Geometric growth keeps amortized cost O(1) for ids arriving in
      // ascending order; new entries start empty.
      const size_t target =
          std::max<size_t>(static_cast<size_t>(id) + 1, slots_.size() * 2);
      slots_.resize(target, kNoSlot);
    }
    slots_[id] = slot;
  }

  void Erase(trace::ObjectId id) {
    if (sparse_) {
      SparseErase(id);
      return;
    }
    if (id < slots_.size()) slots_[id] = kNoSlot;
  }

  /// Hints the CPU to pull the id's table entry into cache (read intent,
  /// low temporal locality). The replay loop issues this for the next
  /// request's probes one request ahead, hiding the dependent-load
  /// latency of the per-hop Contains chain. Purely advisory: no state
  /// changes, no effect on results. In sparse mode the id's home bucket
  /// is prefetched (linear probing keeps the chain on following lines).
  void Prefetch(trace::ObjectId id) const {
    if (!sparse_) {
      if (id < slots_.size()) __builtin_prefetch(&slots_[id], 0, 1);
    } else if (!buckets_.empty()) {
      __builtin_prefetch(&buckets_[Home(id)], 0, 1);
    }
  }

  /// Drops every mapping in O(1) (dense: the backing vector's size
  /// resets; capacity is retained so steady-state resets do not
  /// reallocate) or O(buckets) (sparse: refill with the empty sentinel,
  /// keeping capacity). The mode survives Clear.
  void Clear() {
    slots_.clear();
    if (sparse_) {
      std::fill(buckets_.begin(), buckets_.end(), kEmptyBucket);
      sparse_count_ = 0;
    }
  }

  /// Selects dense (default) or sparse storage. Only legal while the
  /// index holds no mappings — stores wire it through right after
  /// construction or Clear(), before any Set.
  void SetSparse(bool sparse) {
    CASCACHE_CHECK(slots_.empty() && sparse_count_ == 0);
    if (sparse_ == sparse) return;
    sparse_ = sparse;
    buckets_.clear();
    sparse_shift_ = 0;
  }

  bool sparse() const { return sparse_; }

  /// Number of id slots (dense) or hash buckets (sparse) the table
  /// currently spans (test/debug helper).
  size_t span() const { return sparse_ ? buckets_.size() : slots_.size(); }

 private:
  /// Packed bucket: id in the high 32 bits, slot in the low 32. A stored
  /// slot is never kNoSlot, so the all-ones sentinel cannot collide with
  /// a real entry (and id 0 / slot 0 packs to 0, distinct from it).
  static constexpr uint64_t kEmptyBucket = ~uint64_t{0};
  static constexpr size_t kInitialBuckets = 1024;

  /// Fibonacci hashing: multiply by 2^64/phi and keep the top bits — a
  /// strong-enough mix for sequential ids at one multiply.
  size_t Home(trace::ObjectId id) const {
    return static_cast<size_t>(
        (uint64_t{id} * 0x9E3779B97F4A7C15ULL) >> sparse_shift_);
  }

  SlotId SparseGet(trace::ObjectId id) const {
    if (buckets_.empty()) return kNoSlot;
    const size_t mask = buckets_.size() - 1;
    for (size_t i = Home(id);; i = (i + 1) & mask) {
      const uint64_t b = buckets_[i];
      if (b == kEmptyBucket) return kNoSlot;
      if ((b >> 32) == id) return static_cast<SlotId>(b);
    }
  }

  void SparseSet(trace::ObjectId id, SlotId slot) {
    CASCACHE_DCHECK(slot != kNoSlot);
    // Grow at ~0.7 load, before probing, so insertion always terminates.
    if (buckets_.empty() ||
        (sparse_count_ + 1) * 10 >= buckets_.size() * 7) {
      GrowSparse(buckets_.empty() ? kInitialBuckets : buckets_.size() * 2);
    }
    const size_t mask = buckets_.size() - 1;
    for (size_t i = Home(id);; i = (i + 1) & mask) {
      const uint64_t b = buckets_[i];
      if (b == kEmptyBucket) {
        buckets_[i] = (uint64_t{id} << 32) | slot;
        ++sparse_count_;
        return;
      }
      if ((b >> 32) == id) {
        buckets_[i] = (uint64_t{id} << 32) | slot;
        return;
      }
    }
  }

  void SparseErase(trace::ObjectId id) {
    if (buckets_.empty()) return;
    const size_t mask = buckets_.size() - 1;
    size_t i = Home(id);
    while (true) {
      const uint64_t b = buckets_[i];
      if (b == kEmptyBucket) return;  // Absent; nothing to erase.
      if ((b >> 32) == id) break;
      i = (i + 1) & mask;
    }
    // Backward-shift deletion: pull displaced entries over the hole so
    // probe chains never need tombstones. An entry at j may move into
    // the hole at i iff its home precedes or equals i along the probe
    // order, i.e. its displacement reaches past the hole.
    size_t j = i;
    while (true) {
      j = (j + 1) & mask;
      const uint64_t b = buckets_[j];
      if (b == kEmptyBucket) break;
      const size_t home = Home(static_cast<trace::ObjectId>(b >> 32));
      if (((j - home) & mask) >= ((j - i) & mask)) {
        buckets_[i] = b;
        i = j;
      }
    }
    buckets_[i] = kEmptyBucket;
    --sparse_count_;
  }

  void GrowSparse(size_t new_buckets) {
    std::vector<uint64_t> old = std::move(buckets_);
    buckets_.assign(new_buckets, kEmptyBucket);
    sparse_shift_ = 64;
    for (size_t b = new_buckets; b > 1; b >>= 1) --sparse_shift_;
    const size_t mask = new_buckets - 1;
    for (const uint64_t entry : old) {
      if (entry == kEmptyBucket) continue;
      size_t i = Home(static_cast<trace::ObjectId>(entry >> 32));
      while (buckets_[i] != kEmptyBucket) i = (i + 1) & mask;
      buckets_[i] = entry;
    }
  }

  std::vector<SlotId> slots_;

  bool sparse_ = false;
  std::vector<uint64_t> buckets_;  ///< Power-of-two size; kEmptyBucket = free.
  size_t sparse_count_ = 0;
  unsigned sparse_shift_ = 0;  ///< 64 - log2(buckets_.size()).
};

/// Fixed-chunk slot pool with a free list. Objects live in contiguous
/// chunks, so slot access is two array hops; chunks are never moved or
/// freed before Clear()/destruction, which makes `&pool.at(slot)` stable
/// across Alloc — callers (the cache node, schemes) may hold
/// ObjectDescriptor pointers across later insertions.
///
/// Alloc() returns a slot with *stale* contents; callers must fully
/// assign it. Clear() recycles every slot but keeps the chunks, so a
/// reset store re-fills warm memory.
template <typename T, size_t kChunkSize = 256>
class ChunkedSlotPool {
  static_assert((kChunkSize & (kChunkSize - 1)) == 0,
                "chunk size must be a power of two");

 public:
  SlotId Alloc() {
    if (!free_.empty()) {
      const SlotId slot = free_.back();
      free_.pop_back();
      return slot;
    }
    if (size_ == chunks_.size() * kChunkSize) {
      chunks_.push_back(std::make_unique<T[]>(kChunkSize));
    }
    return static_cast<SlotId>(size_++);
  }

  void Free(SlotId slot) {
    CASCACHE_DCHECK(slot < size_);
    free_.push_back(slot);
  }

  T& at(SlotId slot) {
    CASCACHE_DCHECK(slot < size_);
    return chunks_[slot / kChunkSize][slot & (kChunkSize - 1)];
  }
  const T& at(SlotId slot) const {
    CASCACHE_DCHECK(slot < size_);
    return chunks_[slot / kChunkSize][slot & (kChunkSize - 1)];
  }

  /// Recycles all slots without releasing chunk memory.
  void Clear() {
    free_.clear();
    size_ = 0;
  }

  /// High-water slot count (allocated, including freed slots).
  size_t slot_span() const { return size_; }
  size_t free_count() const { return free_.size(); }

 private:
  std::vector<std::unique_ptr<T[]>> chunks_;
  std::vector<SlotId> free_;
  size_t size_ = 0;
};

/// Flat id→value map over the dense ObjectId space: a SlotIndex plus
/// vector-backed value slots with a free list. Pointers returned by Find
/// are invalidated by later InsertOrAssign (vector growth); use
/// ChunkedSlotPool-based storage where stability matters. Replaces
/// incidental `unordered_map<ObjectId, T>` tables on the hot path (copy
/// freshness stamps).
template <typename T>
class FlatIdMap {
 public:
  T* Find(trace::ObjectId id) {
    const SlotId slot = index_.Get(id);
    return slot == kNoSlot ? nullptr : &values_[slot];
  }
  const T* Find(trace::ObjectId id) const {
    const SlotId slot = index_.Get(id);
    return slot == kNoSlot ? nullptr : &values_[slot];
  }

  bool Contains(trace::ObjectId id) const { return index_.Contains(id); }

  /// Returns the value slot for `id`, creating it if absent. The slot's
  /// previous contents are unspecified when newly created; assign it.
  T& InsertOrAssign(trace::ObjectId id) {
    SlotId slot = index_.Get(id);
    if (slot == kNoSlot) {
      if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
      } else {
        slot = static_cast<SlotId>(values_.size());
        values_.emplace_back();
      }
      index_.Set(id, slot);
      ++count_;
    }
    return values_[slot];
  }

  bool Erase(trace::ObjectId id) {
    const SlotId slot = index_.Get(id);
    if (slot == kNoSlot) return false;
    index_.Erase(id);
    free_.push_back(slot);
    --count_;
    return true;
  }

  void Clear() {
    index_.Clear();
    values_.clear();
    free_.clear();
    count_ = 0;
  }

  /// Forwards the id-index storage mode (see SlotIndex::SetSparse); the
  /// map must be empty.
  void SetSparse(bool sparse) {
    CASCACHE_CHECK(count_ == 0);
    index_.SetSparse(sparse);
  }

  size_t size() const { return count_; }

 private:
  SlotIndex index_;
  std::vector<T> values_;
  std::vector<SlotId> free_;
  size_t count_ = 0;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_FLAT_STORE_H_
