#ifndef CASCACHE_CACHE_FLAT_LRU_H_
#define CASCACHE_CACHE_FLAT_LRU_H_

#include <cstdint>
#include <vector>

#include "cache/flat_store.h"
#include "trace/object_catalog.h"

namespace cascache::cache {

using trace::ObjectId;

/// Byte-capacity LRU object store used by the LRU and MODULO baselines
/// (paper §3.3). Same contract as the historical list+hash LruCache (the
/// tests keep that implementation as a differential oracle): insertion
/// evicts least-recently-used objects until the new object fits; objects
/// larger than the total capacity are rejected.
///
/// Storage is flat (ROADMAP item 1): resident objects live in a
/// struct-of-arrays slot pool — id, size, and intrusive prev/next links
/// in parallel vectors — with a direct-index id→slot table over the
/// closed object catalog. Touch/Insert/Erase are a handful of array
/// writes with no per-operation allocation; the recency list is walked
/// through slot indices, not pointers.
class FlatLru {
 public:
  explicit FlatLru(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  bool Contains(ObjectId id) const { return index_.Contains(id); }

  /// Advisory cache-line prefetch of the Contains probe for `id` (see
  /// SlotIndex::Prefetch); used by the replay loop one request ahead.
  void PrefetchProbe(ObjectId id) const { index_.Prefetch(id); }

  /// Advisory prefetch of the current eviction victim's slot entries (id,
  /// size, list links). The replay loop issues this one request ahead so
  /// an insert's eviction chain starts on warm lines; purely a hint — the
  /// victim may change before the insert, and nothing breaks.
  void PrefetchVictim() const {
    if (tail_ == kNoSlot) return;
    // Loading the victim's id here (instead of just prefetching its line)
    // lets us also warm the index entry the eviction will erase — the one
    // truly scattered store of the eviction chain. The load itself runs
    // many requests ahead of the insert, so its latency is hidden.
    const ObjectId victim = ids_[tail_];
    index_.Prefetch(victim);
    __builtin_prefetch(&sizes_[tail_], 0, 1);
    __builtin_prefetch(&prev_[tail_], 0, 1);
    __builtin_prefetch(&next_[tail_], 0, 1);
  }

  // Touch/Insert/Erase are inline: they are the per-placement work of the
  // replay hot loop (millions of calls per simulated run), and inlining
  // them into the scheme handlers removes the whole call chain.

  /// Marks `id` as most recently used; no-op if absent. Returns whether
  /// the object was present.
  bool Touch(ObjectId id) {
    const SlotId slot = index_.Get(id);
    if (slot == kNoSlot) return false;
    if (slot != head_) {
      Unlink(slot);
      PushFront(slot);
    }
    return true;
  }

  /// Inserts an object of `size` bytes, evicting LRU objects as needed.
  /// If the object is already present it is only touched. Returns the ids
  /// evicted, in eviction (ascending-staleness) order; the vector is a
  /// reused internal scratch, valid until the next Insert. `inserted`
  /// (optional) reports whether a write happened. Objects larger than the
  /// capacity are not inserted (and nothing is evicted for them).
  const std::vector<ObjectId>& Insert(ObjectId id, uint64_t size,
                                      bool* inserted = nullptr) {
    if (Touch(id)) {  // Already present.
      if (inserted != nullptr) *inserted = false;
      evicted_scratch_.clear();
      return evicted_scratch_;
    }
    return InsertAbsent(id, size, inserted);
  }

  /// Insert for an object the caller knows is absent (the replay descent
  /// places only at nodes whose ascent probe just missed), skipping
  /// Insert's leading Touch probe. Same contract otherwise. Calling it
  /// for a present object corrupts the store.
  const std::vector<ObjectId>& InsertAbsent(ObjectId id, uint64_t size,
                                            bool* inserted = nullptr) {
    CASCACHE_DCHECK(!Contains(id));
    if (inserted != nullptr) *inserted = false;
    evicted_scratch_.clear();
    CASCACHE_CHECK(size > 0);
    if (size > capacity_) return evicted_scratch_;  // Cannot ever fit.

    // Eviction unlinks straight off the tail (the victim's next link is
    // known to be kNoSlot), and the last victim's slot is handed directly
    // to the incoming object instead of round-tripping through the free
    // list — the pop would return exactly that slot, so the slot
    // assignment and the final free-list contents are unchanged.
    SlotId reuse = kNoSlot;
    while (used_ + size > capacity_) {
      CASCACHE_CHECK(tail_ != kNoSlot);
      const SlotId victim = tail_;
      const ObjectId victim_id = ids_[victim];
      const SlotId p = prev_[victim];
      if (p != kNoSlot) {
        next_[p] = kNoSlot;
      } else {
        head_ = kNoSlot;
      }
      tail_ = p;
      index_.Erase(victim_id);
      used_ -= sizes_[victim];
      if (reuse != kNoSlot) FreeSlot(reuse);
      reuse = victim;
      --count_;
      evicted_scratch_.push_back(victim_id);
    }
    SlotId slot;
    if (reuse != kNoSlot) {
      slot = reuse;
      ids_[slot] = id;
      sizes_[slot] = size;
    } else {
      slot = AllocSlot(id, size);
    }
    PushFront(slot);
    index_.Set(id, slot);
    used_ += size;
    ++count_;
    if (inserted != nullptr) *inserted = true;
    return evicted_scratch_;
  }

  /// Removes an object; returns false if absent.
  bool Erase(ObjectId id) {
    const SlotId slot = index_.Get(id);
    if (slot == kNoSlot) return false;
    Unlink(slot);
    index_.Erase(id);
    used_ -= sizes_[slot];
    FreeSlot(slot);
    --count_;
    return true;
  }

  void Clear();

  /// Selects the id-index storage mode (SlotIndex::SetSparse, for huge
  /// sparse catalogs); the cache must be empty.
  void SetSparse(bool sparse) { index_.SetSparse(sparse); }

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  size_t num_objects() const { return count_; }

  /// Least recently used object id; cache must be non-empty.
  ObjectId LruVictim() const;

  /// High-water slot count (resident + free-listed); test/debug helper
  /// for pool-reuse assertions.
  size_t slot_span() const { return ids_.size(); }

  /// Visits every resident object MRU-first: fn(id, size_bytes). Used by
  /// the tiered-node invariant check (RAM ⊆ disk) and the differential
  /// tests; O(n), not for the replay hot path.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (SlotId slot = head_; slot != kNoSlot; slot = next_[slot]) {
      fn(ids_[slot], sizes_[slot]);
    }
  }

  /// Structural self-check: list links, index entries and byte accounting
  /// agree. Test/debug helper (O(n)).
  bool CheckInvariants() const;

 private:
  SlotId AllocSlot(ObjectId id, uint64_t size) {
    SlotId slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      ids_[slot] = id;
      sizes_[slot] = size;
    } else {
      slot = static_cast<SlotId>(ids_.size());
      ids_.push_back(id);
      sizes_.push_back(size);
      prev_.push_back(kNoSlot);
      next_.push_back(kNoSlot);
    }
    return slot;
  }

  void FreeSlot(SlotId slot) { free_.push_back(slot); }

  void Unlink(SlotId slot) {
    const SlotId p = prev_[slot];
    const SlotId n = next_[slot];
    if (p != kNoSlot) {
      next_[p] = n;
    } else {
      head_ = n;
    }
    if (n != kNoSlot) {
      prev_[n] = p;
    } else {
      tail_ = p;
    }
  }

  void PushFront(SlotId slot) {
    prev_[slot] = kNoSlot;
    next_[slot] = head_;
    if (head_ != kNoSlot) prev_[head_] = slot;
    head_ = slot;
    if (tail_ == kNoSlot) tail_ = slot;
  }

  uint64_t capacity_;
  uint64_t used_ = 0;
  size_t count_ = 0;

  // Struct-of-arrays slot pool. prev_ points toward the MRU end, next_
  // toward the LRU end; head_ is the MRU, tail_ the LRU victim.
  std::vector<ObjectId> ids_;
  std::vector<uint64_t> sizes_;
  std::vector<SlotId> prev_;
  std::vector<SlotId> next_;
  std::vector<SlotId> free_;
  SlotId head_ = kNoSlot;
  SlotId tail_ = kNoSlot;

  SlotIndex index_;
  std::vector<ObjectId> evicted_scratch_;
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_FLAT_LRU_H_
