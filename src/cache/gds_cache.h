#ifndef CASCACHE_CACHE_GDS_CACHE_H_
#define CASCACHE_CACHE_GDS_CACHE_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "trace/object_catalog.h"

namespace cascache::cache {

using trace::ObjectId;

/// GreedyDual-Size store (Cao & Irani; popularity-aware variants by Jin &
/// Bestavros, cited by the paper as [8]). Each cached object carries a
/// credit H = L + cost/size, where L is the cache's inflation value; the
/// eviction victim is the minimum-H object and L is advanced to its H.
/// On a hit the object's H is refreshed with the current L. GDS is a
/// classic single-cache cost-aware replacement baseline: like LNC-R it
/// optimizes replacement only, so it serves as an extra comparator for
/// the coordinated scheme.
class GdsCache {
 public:
  explicit GdsCache(uint64_t capacity_bytes);

  bool Contains(ObjectId id) const { return entries_.count(id) > 0; }

  /// Inserts with the given retrieval cost, evicting minimum-H objects as
  /// needed (advancing the inflation value L). `inserted` reports whether
  /// a write happened; objects above total capacity are rejected. If the
  /// object is present this refreshes H like a hit.
  std::vector<ObjectId> Insert(ObjectId id, uint64_t size, double cost,
                               bool* inserted = nullptr);

  /// Refreshes an object's credit on a hit: H = L + cost/size. No-op if
  /// absent; returns presence.
  bool OnHit(ObjectId id, double cost);

  bool Erase(ObjectId id);
  void Clear();

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  size_t num_objects() const { return entries_.size(); }

  /// Current inflation value L (monotonically non-decreasing).
  double inflation() const { return inflation_; }

  /// Credit H of a cached object; the object must be present.
  double CreditOf(ObjectId id) const;

 private:
  struct Entry {
    uint64_t size;
    double credit;  ///< H value.
  };

  void SetCredit(ObjectId id, Entry& entry, double credit);

  uint64_t capacity_;
  uint64_t used_ = 0;
  double inflation_ = 0.0;  ///< L.
  std::unordered_map<ObjectId, Entry> entries_;
  std::set<std::pair<double, ObjectId>> order_;  ///< Ascending (H, id).
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_GDS_CACHE_H_
