#ifndef CASCACHE_CACHE_GDS_CACHE_H_
#define CASCACHE_CACHE_GDS_CACHE_H_

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "cache/flat_store.h"
#include "trace/object_catalog.h"

namespace cascache::cache {

using trace::ObjectId;

/// GreedyDual-Size store (Cao & Irani; popularity-aware variants by Jin &
/// Bestavros, cited by the paper as [8]). Each cached object carries a
/// credit H = L + cost/size, where L is the cache's inflation value; the
/// eviction victim is the minimum-H object and L is advanced to its H.
/// On a hit the object's H is refreshed with the current L. GDS is a
/// classic single-cache cost-aware replacement baseline: like LNC-R it
/// optimizes replacement only, so it serves as an extra comparator for
/// the coordinated scheme.
///
/// Entry storage is flat (size/credit struct-of-arrays slots behind a
/// direct-index id→slot table); the ascending (H, id) std::set is kept so
/// victim order stays bit-identical to the historical map-based store.
class GdsCache {
 public:
  explicit GdsCache(uint64_t capacity_bytes);

  bool Contains(ObjectId id) const { return index_.Contains(id); }

  /// Advisory cache-line prefetch of the Contains probe for `id` (see
  /// SlotIndex::Prefetch); used by the replay loop one request ahead.
  void PrefetchProbe(ObjectId id) const { index_.Prefetch(id); }

  /// Inserts with the given retrieval cost, evicting minimum-H objects as
  /// needed (advancing the inflation value L). `inserted` reports whether
  /// a write happened; objects above total capacity are rejected. If the
  /// object is present this refreshes H like a hit. The returned evicted
  /// ids are a reused internal scratch, valid until the next Insert.
  const std::vector<ObjectId>& Insert(ObjectId id, uint64_t size, double cost,
                                      bool* inserted = nullptr);

  /// Refreshes an object's credit on a hit: H = L + cost/size. No-op if
  /// absent; returns presence.
  bool OnHit(ObjectId id, double cost);

  bool Erase(ObjectId id);
  void Clear();

  /// Selects the id-index storage mode (SlotIndex::SetSparse); the cache
  /// must be empty.
  void SetSparse(bool sparse) { index_.SetSparse(sparse); }

  uint64_t capacity_bytes() const { return capacity_; }
  uint64_t used_bytes() const { return used_; }
  size_t num_objects() const { return count_; }

  /// Current inflation value L (monotonically non-decreasing).
  double inflation() const { return inflation_; }

  /// Credit H of a cached object; the object must be present.
  double CreditOf(ObjectId id) const;

 private:
  SlotId AllocSlot();
  void SetCredit(ObjectId id, SlotId slot, double credit);

  uint64_t capacity_;
  uint64_t used_ = 0;
  size_t count_ = 0;
  double inflation_ = 0.0;  ///< L.

  // Struct-of-arrays entry slots + direct id→slot index.
  std::vector<uint64_t> sizes_;
  std::vector<double> credits_;  ///< H values.
  std::vector<SlotId> free_;
  SlotIndex index_;
  std::vector<ObjectId> evicted_scratch_;

  std::set<std::pair<double, ObjectId>> order_;  ///< Ascending (H, id).
};

}  // namespace cascache::cache

#endif  // CASCACHE_CACHE_GDS_CACHE_H_
