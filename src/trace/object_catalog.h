#ifndef CASCACHE_TRACE_OBJECT_CATALOG_H_
#define CASCACHE_TRACE_OBJECT_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.h"
#include "util/status.h"

namespace cascache::trace {

/// Identifier of a web object. Objects are numbered densely from 0 in
/// popularity-rank order when generated synthetically.
using ObjectId = uint32_t;

/// Identifier of an origin server (logical; mapped to a network node by
/// sim::Network). Each object belongs to exactly one server and server
/// object sets are disjoint (paper §2).
using ServerId = uint32_t;

/// Identifier of a client (logical; mapped to a network node by
/// sim::Network).
using ClientId = uint32_t;

/// Heavy-tailed size/placement model of a *procedural* catalog: the same
/// lognormal-body + Pareto-tail law the synthetic generator materializes,
/// described by its parameters instead of 12 bytes per object. At 10^8
/// objects a materialized catalog costs 1.2 GB in RAM and again on disk;
/// the model is 64 bytes and reproduces every per-object lookup as a pure
/// function of (seed, id). Doubles as the on-disk v3 trace model block
/// (trace_io.h), so field layout and width are part of the file format.
struct CatalogModel {
  uint64_t seed = 42;
  double lognormal_mu = 8.5;
  double lognormal_sigma = 1.3;
  double pareto_tail_prob = 0.02;
  double pareto_scale = 64.0 * 1024;
  double pareto_alpha = 1.3;
  uint64_t min_size = 100;
  uint64_t max_size = 32ull * 1024 * 1024;
};

static_assert(sizeof(CatalogModel) == 64,
              "CatalogModel is the on-disk v3 trace model block");
static_assert(std::is_trivially_copyable_v<CatalogModel>,
              "v3 model block is raw memory");

/// Range-checks a (possibly file-sourced) CatalogModel before
/// BuildProcedural, whose internal CHECKs would otherwise abort the
/// process on corrupt v3 input.
util::Status ValidateCatalogModel(const CatalogModel& model);

/// Immutable table of object metadata: size in bytes and owning origin
/// server. Shared by the workload generator, trace IO and the simulator.
///
/// Two storage modes:
///  * Materialized (default): per-object size/server vectors filled by
///    Add(); lookups are one array load.
///  * Procedural: BuildProcedural() stores a CatalogModel and a 65536-entry
///    empirical quantile table of the size law; size(id) hashes the id into
///    the table (SplitMix64 finalizer) and server(id) uses independent bits
///    of the same hash. O(1) memory in the object count, fully
///    deterministic in (model.seed, id), and the total-byte sum is
///    computed once at build. This is what lets a 10^8-object catalog fit
///    the scale-smoke RSS budget.
class ObjectCatalog {
 public:
  ObjectCatalog() = default;

  /// Appends an object; its id is the insertion index. Materialized mode
  /// only (must not be mixed with BuildProcedural on the same catalog).
  ObjectId Add(uint64_t size_bytes, ServerId server);

  /// Switches this catalog to procedural mode over `num_objects` objects
  /// spread across `num_servers` origin servers. Draws the quantile table
  /// from its own Rng(model.seed) — consuming no caller RNG state — and
  /// computes total_bytes() with one O(num_objects) pass. Requires an
  /// empty catalog, num_objects >= 1 and num_servers >= 1.
  void BuildProcedural(const CatalogModel& model, uint32_t num_objects,
                       uint32_t num_servers);

  uint32_t num_objects() const {
    return procedural_ ? proc_num_objects_
                       : static_cast<uint32_t>(sizes_.size());
  }
  uint32_t num_servers() const { return num_servers_; }

  uint64_t size(ObjectId id) const {
    if (procedural_) {
      CASCACHE_DCHECK(id < proc_num_objects_);
      return quantiles_[Hash(id) & kQuantileMask];
    }
    CASCACHE_DCHECK(id < sizes_.size());
    return sizes_[id];
  }
  ServerId server(ObjectId id) const {
    if (procedural_) {
      CASCACHE_DCHECK(id < proc_num_objects_);
      return static_cast<ServerId>((Hash(id) >> 32) % num_servers_);
    }
    CASCACHE_DCHECK(id < servers_.size());
    return servers_[id];
  }

  /// Total bytes across all objects; the paper's "relative cache size" is
  /// per-node capacity divided by this value.
  uint64_t total_bytes() const { return total_bytes_; }

  double mean_size() const {
    const uint32_t n = num_objects();
    return n == 0 ? 0.0 : static_cast<double>(total_bytes_) / n;
  }

  bool procedural() const { return procedural_; }

  /// The generating model; meaningful only in procedural mode.
  const CatalogModel& model() const { return model_; }

  /// Sorted empirical size quantiles (65536 entries) in procedural mode;
  /// empty otherwise. SummarizeTrace reads percentiles straight off it.
  const std::vector<uint64_t>& size_quantiles() const { return quantiles_; }

 private:
  static constexpr uint32_t kQuantileBits = 16;
  static constexpr uint32_t kQuantileMask = (1u << kQuantileBits) - 1;

  /// SplitMix64 finalizer over (seed, id); the low 16 bits pick the size
  /// quantile, bits 32+ pick the server — independent enough that size and
  /// placement are uncorrelated.
  uint64_t Hash(ObjectId id) const {
    uint64_t x = model_.seed ^ (uint64_t{id} + 0x9e3779b97f4a7c15ULL);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d649bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::vector<uint64_t> sizes_;
  std::vector<ServerId> servers_;
  uint64_t total_bytes_ = 0;
  uint32_t num_servers_ = 0;

  bool procedural_ = false;
  uint32_t proc_num_objects_ = 0;
  CatalogModel model_;
  std::vector<uint64_t> quantiles_;  ///< Sorted; 1 << kQuantileBits entries.
};

/// A single client request. Requests are totally ordered by time in a
/// trace; the simulator replays them sequentially (trace-driven).
struct Request {
  double time = 0.0;  ///< Seconds since trace start.
  ClientId client = 0;
  ObjectId object = 0;
};

// Request doubles as the on-disk record of the v2 binary trace format
// (trace_io.h): MappedTrace reinterprets the mmap'd request region as a
// Request array, so the in-memory layout is part of the file format.
static_assert(sizeof(Request) == 16, "v2 trace records are 16 bytes");
static_assert(std::is_trivially_copyable_v<Request>,
              "v2 trace records are raw memory");
static_assert(offsetof(Request, time) == 0 &&
                  offsetof(Request, client) == 8 &&
                  offsetof(Request, object) == 12,
              "v2 trace record field layout is part of the file format");

/// A borrowed, seekable view of a time-ordered request stream. Backed
/// either by an in-RAM std::vector (Workload) or by a read-only file
/// mapping (MappedTrace); the simulator replays spans without copying.
using RequestSpan = std::span<const Request>;

/// A borrowed workload: catalog plus request span. This is what the
/// replay core consumes; Workload::View() and MappedTrace::View() both
/// produce one, so the simulator is agnostic to where requests live.
struct WorkloadView {
  const ObjectCatalog* catalog = nullptr;
  RequestSpan requests;
  /// Optional: invoked by the analytic replay loop after each consumed
  /// chunk with the index one past the last replayed request. Mapped
  /// sources use it to advise-release consumed pages so resident memory
  /// stays O(1) in trace length. Not invoked by the contention replay
  /// (its lookahead window revisits arrivals out of order).
  std::function<void(size_t)> on_consumed;

  double Duration() const {
    return requests.empty() ? 0.0 : requests.back().time;
  }
};

}  // namespace cascache::trace

#endif  // CASCACHE_TRACE_OBJECT_CATALOG_H_
