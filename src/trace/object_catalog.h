#ifndef CASCACHE_TRACE_OBJECT_CATALOG_H_
#define CASCACHE_TRACE_OBJECT_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace cascache::trace {

/// Identifier of a web object. Objects are numbered densely from 0 in
/// popularity-rank order when generated synthetically.
using ObjectId = uint32_t;

/// Identifier of an origin server (logical; mapped to a network node by
/// sim::Network). Each object belongs to exactly one server and server
/// object sets are disjoint (paper §2).
using ServerId = uint32_t;

/// Identifier of a client (logical; mapped to a network node by
/// sim::Network).
using ClientId = uint32_t;

/// Immutable table of object metadata: size in bytes and owning origin
/// server. Shared by the workload generator, trace IO and the simulator.
class ObjectCatalog {
 public:
  ObjectCatalog() = default;

  /// Appends an object; its id is the insertion index.
  ObjectId Add(uint64_t size_bytes, ServerId server);

  uint32_t num_objects() const { return static_cast<uint32_t>(sizes_.size()); }
  uint32_t num_servers() const { return num_servers_; }

  uint64_t size(ObjectId id) const {
    CASCACHE_DCHECK(id < sizes_.size());
    return sizes_[id];
  }
  ServerId server(ObjectId id) const {
    CASCACHE_DCHECK(id < servers_.size());
    return servers_[id];
  }

  /// Total bytes across all objects; the paper's "relative cache size" is
  /// per-node capacity divided by this value.
  uint64_t total_bytes() const { return total_bytes_; }

  double mean_size() const {
    return sizes_.empty()
               ? 0.0
               : static_cast<double>(total_bytes_) / sizes_.size();
  }

 private:
  std::vector<uint64_t> sizes_;
  std::vector<ServerId> servers_;
  uint64_t total_bytes_ = 0;
  uint32_t num_servers_ = 0;
};

/// A single client request. Requests are totally ordered by time in a
/// trace; the simulator replays them sequentially (trace-driven).
struct Request {
  double time = 0.0;  ///< Seconds since trace start.
  ClientId client = 0;
  ObjectId object = 0;
};

// Request doubles as the on-disk record of the v2 binary trace format
// (trace_io.h): MappedTrace reinterprets the mmap'd request region as a
// Request array, so the in-memory layout is part of the file format.
static_assert(sizeof(Request) == 16, "v2 trace records are 16 bytes");
static_assert(std::is_trivially_copyable_v<Request>,
              "v2 trace records are raw memory");
static_assert(offsetof(Request, time) == 0 &&
                  offsetof(Request, client) == 8 &&
                  offsetof(Request, object) == 12,
              "v2 trace record field layout is part of the file format");

/// A borrowed, seekable view of a time-ordered request stream. Backed
/// either by an in-RAM std::vector (Workload) or by a read-only file
/// mapping (MappedTrace); the simulator replays spans without copying.
using RequestSpan = std::span<const Request>;

/// A borrowed workload: catalog plus request span. This is what the
/// replay core consumes; Workload::View() and MappedTrace::View() both
/// produce one, so the simulator is agnostic to where requests live.
struct WorkloadView {
  const ObjectCatalog* catalog = nullptr;
  RequestSpan requests;
  /// Optional: invoked by the analytic replay loop after each consumed
  /// chunk with the index one past the last replayed request. Mapped
  /// sources use it to advise-release consumed pages so resident memory
  /// stays O(1) in trace length. Not invoked by the contention replay
  /// (its lookahead window revisits arrivals out of order).
  std::function<void(size_t)> on_consumed;

  double Duration() const {
    return requests.empty() ? 0.0 : requests.back().time;
  }
};

}  // namespace cascache::trace

#endif  // CASCACHE_TRACE_OBJECT_CATALOG_H_
