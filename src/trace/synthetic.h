#ifndef CASCACHE_TRACE_SYNTHETIC_H_
#define CASCACHE_TRACE_SYNTHETIC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "trace/object_catalog.h"
#include "trace/workload_model.h"
#include "util/status.h"

namespace cascache::trace {

/// Parameters of the synthetic Boeing-like workload. The paper drives its
/// simulation with a subtrace of the Boeing proxy logs (3-1-1999): requests
/// for the 100,000 most popular objects, >60,000 clients, Zipf-like
/// popularity. The trace itself is not publicly archived, so this generator
/// produces the closest synthetic equivalent: Zipf(theta) object
/// popularity, heavy-tailed object sizes (lognormal body + Pareto tail,
/// the standard web-object size model), skewed client activity and Poisson
/// arrivals. Defaults are scaled down from the paper for laptop runs; the
/// paper-scale values are noted per field.
struct WorkloadParams {
  uint32_t num_objects = 100'000;   ///< Paper: 100,000 (subtrace).
  uint64_t num_requests = 1'000'000;  ///< Paper: ~11M in the subtrace.
  uint32_t num_clients = 2'000;     ///< Paper: >60,000.
  uint32_t num_servers = 500;

  /// Zipf exponent of object popularity. Breslau et al. measured
  /// 0.64-0.83 for proxy traces; 0.8 is the customary default.
  double zipf_theta = 0.8;
  /// Zipf exponent of client activity (a few clients issue most requests).
  double client_zipf_theta = 0.5;

  // Object size model: lognormal body with a Pareto tail.
  double size_lognormal_mu = 8.5;     ///< exp(8.5) ~ 4.9 KB median.
  double size_lognormal_sigma = 1.3;
  double size_pareto_tail_prob = 0.02;
  double size_pareto_scale = 64.0 * 1024;  ///< Tail starts at 64 KB.
  double size_pareto_alpha = 1.3;
  uint64_t min_object_size = 100;
  uint64_t max_object_size = 32ull * 1024 * 1024;

  /// Mean request arrival rate (requests/second); Poisson arrivals.
  /// Paper: ~22M requests/day ~ 254 req/s before subtrace extraction.
  double request_rate = 100.0;

  /// Temporal locality beyond the stationary Zipf law: with this
  /// probability a request re-references an object drawn from the recent
  /// request history (geometrically biased toward the most recent), the
  /// LRU-stack behavior real proxy traces exhibit. 0 = pure independent
  /// reference model (the default, matching the base reproduction).
  double temporal_locality = 0.0;
  /// Size of the recent-history window for temporal re-references.
  uint32_t temporal_window = 10'000;
  /// Mean of the geometric recency bias (expected stack depth of a
  /// temporal re-reference), must be >= 1.
  double temporal_mean_depth = 100.0;

  /// Popularity churn: expected number of rank-swap events per simulated
  /// hour. Each event exchanges the popularity ranks of two random
  /// objects, so hot sets drift over long traces. 0 = stationary
  /// popularity (the default). Superseded by `model.drift_mode`
  /// (workload_model.h); combining both is rejected.
  double churn_swaps_per_hour = 0.0;

  /// Non-stationary workload components (popularity drift, flash crowds,
  /// diurnal cycles, sessions, regional skew). All off by default, which
  /// keeps the historical static-Zipf request stream bit-for-bit.
  WorkloadModelParams model;

  /// Generate the catalog procedurally (ObjectCatalog::BuildProcedural):
  /// sizes/servers are hashed from the id instead of stored, so 10^8
  /// objects cost a 64 KiB quantile table instead of ~1.2 GB of arrays,
  /// and the trace file stores a 64-byte model block (format v3). Changes
  /// object sizes relative to the default materialized catalog, so it is
  /// opt-in.
  bool procedural_catalog = false;

  uint64_t seed = 42;
};

/// A complete generated workload: the object catalog plus a time-ordered
/// request stream.
struct Workload {
  ObjectCatalog catalog;
  std::vector<Request> requests;

  /// Duration covered by the request stream (time of last request).
  double Duration() const {
    return requests.empty() ? 0.0 : requests.back().time;
  }

  /// Borrowed view over this workload for the span-based replay core.
  /// The view must not outlive the Workload.
  WorkloadView View() const { return WorkloadView{&catalog, requests, {}}; }
};

/// Generates a workload; deterministic in `params.seed`. Object ids are
/// assigned in popularity-rank order (object 0 is the hottest), while
/// sizes and server assignments are independent of rank.
util::StatusOr<Workload> GenerateWorkload(const WorkloadParams& params);

/// Streams the same workload straight to a v2 binary trace file
/// (trace_io.h) without materializing the request vector: requests are
/// generated and written in bounded blocks, so a 100M-request trace is
/// produced in O(1) resident memory. Bit-identical to WriteTrace(
/// GenerateWorkload(params)) — both consume the same RNG stream.
util::Status GenerateWorkloadToFile(const WorkloadParams& params,
                                    const std::string& path);

/// Per-object request counts of a trace (index = ObjectId); used by tests
/// and trace statistics.
std::vector<uint64_t> CountAccesses(const Workload& workload);

}  // namespace cascache::trace

#endif  // CASCACHE_TRACE_SYNTHETIC_H_
