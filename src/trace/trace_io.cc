#include "trace/trace_io.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "util/zipf.h"

namespace cascache::trace {

namespace {

constexpr char kMagic[4] = {'C', 'C', 'T', 'R'};
// Byte offset of the num_requests header field (both versions):
// magic(4) + version(4) + num_objects(4) + num_servers(4).
constexpr long kNumRequestsOffset = 16;
constexpr uint64_t kTraceV1HeaderBytes = 24;
constexpr uint64_t kCatalogEntryBytes = 12;  // uint64 size + uint32 server

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteOne(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadOne(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

uint64_t AlignUp(uint64_t v, uint64_t align) {
  return (v + align - 1) / align * align;
}

/// Parsed common header of either format version. After
/// ReadHeaderAndCatalog returns OK the stream is positioned at the
/// first request record.
struct ParsedHeader {
  uint32_t version = 0;
  uint32_t num_objects = 0;
  uint32_t num_servers = 0;
  uint64_t num_requests = 0;
  uint64_t request_offset = 0;
};

util::Status ReadHeaderAndCatalog(std::FILE* f, const std::string& path,
                                  ParsedHeader* h, ObjectCatalog* catalog) {
  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return util::Status::IoError("bad magic in trace file: " + path);
  }
  if (!ReadOne(f, &h->version) || !ReadOne(f, &h->num_objects) ||
      !ReadOne(f, &h->num_servers) || !ReadOne(f, &h->num_requests)) {
    return util::Status::IoError("truncated header: " + path);
  }
  if (h->version != kTraceVersion1 && h->version != kTraceVersion2 &&
      h->version != kTraceVersion3) {
    return util::Status::InvalidArgument("unsupported trace version");
  }
  // v3 stores a 64-byte catalog model instead of per-object entries.
  const uint64_t catalog_bytes =
      h->version == kTraceVersion3
          ? sizeof(CatalogModel)
          : kCatalogEntryBytes * static_cast<uint64_t>(h->num_objects);
  const uint64_t catalog_end =
      (h->version == kTraceVersion1 ? kTraceV1HeaderBytes
                                    : kTraceV2HeaderBytes) +
      catalog_bytes;
  if (h->version != kTraceVersion1) {
    if (!ReadOne(f, &h->request_offset)) {
      return util::Status::IoError("truncated header: " + path);
    }
    if (h->request_offset % kTraceRequestAlign != 0) {
      return util::Status::InvalidArgument(
          "request region not page-aligned: " + path);
    }
    if (h->request_offset < catalog_end) {
      return util::Status::InvalidArgument(
          "request region overlaps catalog: " + path);
    }
  } else {
    h->request_offset = catalog_end;
  }

  if (h->version == kTraceVersion3) {
    CatalogModel model;
    if (!ReadOne(f, &model)) {
      return util::Status::IoError("truncated catalog model: " + path);
    }
    CASCACHE_RETURN_IF_ERROR(ValidateCatalogModel(model));
    if (h->num_objects == 0 || h->num_servers == 0) {
      return util::Status::InvalidArgument(
          "v3 trace needs objects and servers: " + path);
    }
    catalog->BuildProcedural(model, h->num_objects, h->num_servers);
  } else {
    for (uint32_t i = 0; i < h->num_objects; ++i) {
      uint64_t size = 0;
      uint32_t server = 0;
      if (!ReadOne(f, &size) || !ReadOne(f, &server)) {
        return util::Status::IoError("truncated catalog: " + path);
      }
      if (size == 0) {
        return util::Status::InvalidArgument("zero-size object in trace");
      }
      if (server >= h->num_servers) {
        return util::Status::InvalidArgument("server id out of range");
      }
      catalog->Add(size, server);
    }
  }
  if (h->version != kTraceVersion1 &&
      fseeko(f, static_cast<off_t>(h->request_offset), SEEK_SET) != 0) {
    return util::Status::IoError("seek to request region failed: " + path);
  }
  return util::Status::Ok();
}

/// Writes the v2/v3 header + catalog (or model block) + zero padding; on
/// return the stream is positioned at the (page-aligned) request region.
/// A procedural catalog selects v3 (64-byte model block), a materialized
/// one v2 (per-object entries).
util::Status WriteV2Preamble(std::FILE* f, const ObjectCatalog& catalog,
                             uint64_t num_requests, const std::string& path) {
  const uint32_t version =
      catalog.procedural() ? kTraceVersion3 : kTraceVersion2;
  const uint32_t num_objects = catalog.num_objects();
  const uint32_t num_servers = catalog.num_servers();
  const uint64_t catalog_bytes =
      catalog.procedural() ? sizeof(CatalogModel)
                           : kCatalogEntryBytes * uint64_t{num_objects};
  const uint64_t catalog_end = kTraceV2HeaderBytes + catalog_bytes;
  const uint64_t request_offset = AlignUp(catalog_end, kTraceRequestAlign);
  if (std::fwrite(kMagic, 1, 4, f) != 4 || !WriteOne(f, version) ||
      !WriteOne(f, num_objects) || !WriteOne(f, num_servers) ||
      !WriteOne(f, num_requests) || !WriteOne(f, request_offset)) {
    return util::Status::IoError("short write: " + path);
  }
  if (catalog.procedural()) {
    if (!WriteOne(f, catalog.model())) {
      return util::Status::IoError("short write: " + path);
    }
  } else {
    for (ObjectId id = 0; id < num_objects; ++id) {
      if (!WriteOne(f, catalog.size(id)) ||
          !WriteOne(f, catalog.server(id))) {
        return util::Status::IoError("short write: " + path);
      }
    }
  }
  const uint64_t pad = request_offset - catalog_end;
  static constexpr char kZeros[512] = {};
  for (uint64_t done = 0; done < pad;) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(pad - done, sizeof(kZeros)));
    if (std::fwrite(kZeros, 1, n, f) != n) {
      return util::Status::IoError("short write: " + path);
    }
    done += n;
  }
  return util::Status::Ok();
}

TraceStats StatsFromCounts(const ObjectCatalog& catalog,
                           const std::vector<uint64_t>& counts,
                           uint64_t num_requests, double duration_seconds,
                           uint64_t total_bytes_requested,
                           uint32_t num_clients_active) {
  TraceStats stats;
  stats.num_requests = num_requests;
  stats.num_objects = catalog.num_objects();
  stats.duration_seconds = duration_seconds;
  stats.mean_object_size = catalog.mean_size();
  stats.total_bytes_requested = total_bytes_requested;
  stats.num_clients_active = num_clients_active;

  std::vector<double> sorted_counts;
  sorted_counts.reserve(counts.size());
  for (uint64_t c : counts) {
    if (c > 0) {
      ++stats.num_objects_referenced;
      sorted_counts.push_back(static_cast<double>(c));
    }
  }
  std::sort(sorted_counts.rbegin(), sorted_counts.rend());
  stats.estimated_zipf_theta = util::EstimateZipfTheta(sorted_counts);

  if (!sorted_counts.empty() && stats.num_requests > 0) {
    const size_t top = std::max<size_t>(1, sorted_counts.size() / 10);
    double top_sum = 0.0;
    for (size_t i = 0; i < top; ++i) top_sum += sorted_counts[i];
    stats.top10pct_request_share =
        top_sum / static_cast<double>(stats.num_requests);
  }
  return stats;
}

/// Nearest-rank percentile of an ascending-sorted vector.
uint64_t PercentileSorted(const std::vector<uint64_t>& sorted, double pct) {
  if (sorted.empty()) return 0;
  const size_t rank = static_cast<size_t>(
      std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

struct CsvRow {
  double time = 0.0;
  uint32_t client = 0;
  uint32_t object = 0;
  unsigned long long size = 0;
  uint32_t server = 0;
};

/// Parses one CSV line in the WriteTraceCsv layout. Returns true if a
/// data row was parsed, false for a skippable line (blank, or the
/// header row when `lineno` is 1).
util::StatusOr<bool> ParseCsvRow(const char* line, uint64_t lineno,
                                 const std::string& path, CsvRow* row) {
  const char* p = line;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '\0' || *p == '\n' || *p == '\r') return false;
  if (std::sscanf(p, "%lf,%u,%u,%llu,%u", &row->time, &row->client,
                  &row->object, &row->size, &row->server) != 5) {
    const bool looks_like_header =
        !(std::isdigit(static_cast<unsigned char>(*p)) || *p == '-' ||
          *p == '+' || *p == '.');
    if (lineno == 1 && looks_like_header) return false;
    return util::Status::InvalidArgument(
        "unparseable CSV row " + std::to_string(lineno) + " in " + path);
  }
  return true;
}

}  // namespace

util::Status WriteTrace(const Workload& workload, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  const uint64_t num_requests = workload.requests.size();
  CASCACHE_RETURN_IF_ERROR(
      WriteV2Preamble(f.get(), workload.catalog, num_requests, path));
  if (num_requests > 0 &&
      std::fwrite(workload.requests.data(), sizeof(Request),
                  workload.requests.size(),
                  f.get()) != workload.requests.size()) {
    return util::Status::IoError("short write: " + path);
  }
  if (std::fclose(f.release()) != 0) {
    return util::Status::IoError("close failed: " + path);
  }
  return util::Status::Ok();
}

util::Status WriteTraceV1(const Workload& workload, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) {
    return util::Status::IoError("short write: " + path);
  }
  const uint32_t num_objects = workload.catalog.num_objects();
  const uint32_t num_servers = workload.catalog.num_servers();
  const uint64_t num_requests = workload.requests.size();
  if (!WriteOne(f.get(), kTraceVersion1) || !WriteOne(f.get(), num_objects) ||
      !WriteOne(f.get(), num_servers) || !WriteOne(f.get(), num_requests)) {
    return util::Status::IoError("short write: " + path);
  }
  for (ObjectId id = 0; id < num_objects; ++id) {
    const uint64_t size = workload.catalog.size(id);
    const uint32_t server = workload.catalog.server(id);
    if (!WriteOne(f.get(), size) || !WriteOne(f.get(), server)) {
      return util::Status::IoError("short write: " + path);
    }
  }
  for (const Request& req : workload.requests) {
    if (!WriteOne(f.get(), req.time) || !WriteOne(f.get(), req.client) ||
        !WriteOne(f.get(), req.object)) {
      return util::Status::IoError("short write: " + path);
    }
  }
  return util::Status::Ok();
}

util::StatusOr<Workload> ReadTrace(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open for read: " + path);
  }
  ParsedHeader h;
  Workload workload;
  CASCACHE_RETURN_IF_ERROR(
      ReadHeaderAndCatalog(f.get(), path, &h, &workload.catalog));

  // Check the declared record count against the actual file size before
  // allocating, so a corrupt header cannot trigger a huge allocation
  // and truncation is reported deterministically.
  if (fseeko(f.get(), 0, SEEK_END) != 0) {
    return util::Status::IoError("seek failed: " + path);
  }
  const uint64_t file_bytes = static_cast<uint64_t>(ftello(f.get()));
  if (file_bytes <
      h.request_offset + sizeof(Request) * h.num_requests) {
    return util::Status::IoError("truncated request stream: " + path);
  }
  if (fseeko(f.get(), static_cast<off_t>(h.request_offset), SEEK_SET) != 0) {
    return util::Status::IoError("seek failed: " + path);
  }

  // Both versions store requests as contiguous 16-byte records matching
  // the in-memory Request layout, so the stream is read in bulk.
  workload.requests.resize(h.num_requests);
  if (h.num_requests > 0 &&
      std::fread(workload.requests.data(), sizeof(Request), h.num_requests,
                 f.get()) != h.num_requests) {
    return util::Status::IoError("truncated request stream: " + path);
  }
  double prev_time = -1.0;
  for (const Request& req : workload.requests) {
    if (req.object >= h.num_objects) {
      return util::Status::InvalidArgument("object id out of range");
    }
    if (req.time < prev_time) {
      return util::Status::InvalidArgument(
          "request timestamps not sorted in trace");
    }
    prev_time = req.time;
  }
  return workload;
}

util::Status WriteTraceCsv(const Workload& workload,
                           const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  std::fputs("time,client,object,size,server\n", f.get());
  for (const Request& req : workload.requests) {
    if (std::fprintf(f.get(), "%.6f,%u,%u,%llu,%u\n", req.time, req.client,
                     req.object,
                     static_cast<unsigned long long>(
                         workload.catalog.size(req.object)),
                     workload.catalog.server(req.object)) < 0) {
      return util::Status::IoError("short write: " + path);
    }
  }
  return util::Status::Ok();
}

util::Status ConvertCsvTrace(const std::string& csv_path,
                             const std::string& out_path) {
  // Pass 1: derive the catalog and request count. Log object ids are
  // renumbered densely by first appearance (real request logs are
  // sparse — only requested objects show up), with a consistent
  // size/server required on every row of the same object.
  std::unordered_map<uint32_t, uint32_t> dense_id;
  std::vector<uint64_t> sizes;
  std::vector<uint32_t> servers;
  uint64_t rows = 0;
  {
    FilePtr in(std::fopen(csv_path.c_str(), "r"));
    if (in == nullptr) {
      return util::Status::IoError("cannot open for read: " + csv_path);
    }
    char line[4096];
    uint64_t lineno = 0;
    while (std::fgets(line, sizeof(line), in.get()) != nullptr) {
      ++lineno;
      CsvRow row;
      CASCACHE_ASSIGN_OR_RETURN(const bool is_data,
                                ParseCsvRow(line, lineno, csv_path, &row));
      if (!is_data) continue;
      if (row.size == 0) {
        return util::Status::InvalidArgument(
            "zero-size object in CSV row " + std::to_string(lineno));
      }
      const auto [it, inserted] = dense_id.try_emplace(
          row.object, static_cast<uint32_t>(sizes.size()));
      if (inserted) {
        sizes.push_back(row.size);
        servers.push_back(row.server);
      } else if (sizes[it->second] != row.size ||
                 servers[it->second] != row.server) {
        return util::Status::InvalidArgument(
            "conflicting size/server for object " +
            std::to_string(row.object) + " at CSV row " +
            std::to_string(lineno));
      }
      ++rows;
    }
    if (std::ferror(in.get())) {
      return util::Status::IoError("read failed: " + csv_path);
    }
  }
  if (rows == 0) {
    return util::Status::InvalidArgument("no request rows in CSV: " +
                                         csv_path);
  }
  ObjectCatalog catalog;
  for (size_t id = 0; id < sizes.size(); ++id) {
    catalog.Add(sizes[id], servers[id]);
  }

  // Pass 2: stream the request region through a TraceWriter (which
  // re-validates id ranges and timestamp monotonicity).
  FilePtr in(std::fopen(csv_path.c_str(), "r"));
  if (in == nullptr) {
    return util::Status::IoError("cannot open for read: " + csv_path);
  }
  CASCACHE_ASSIGN_OR_RETURN(std::unique_ptr<TraceWriter> writer,
                            TraceWriter::Create(out_path, catalog, rows));
  char line[4096];
  uint64_t lineno = 0;
  while (std::fgets(line, sizeof(line), in.get()) != nullptr) {
    ++lineno;
    CsvRow row;
    CASCACHE_ASSIGN_OR_RETURN(const bool is_data,
                              ParseCsvRow(line, lineno, csv_path, &row));
    if (!is_data) continue;
    Request req;
    req.time = row.time;
    req.client = row.client;
    req.object = dense_id.at(row.object);
    const util::Status st = writer->Append(req);
    if (!st.ok()) {
      return util::Status(st.code(), "CSV row " + std::to_string(lineno) +
                                         ": " + st.message());
    }
  }
  if (std::ferror(in.get())) {
    return util::Status::IoError("read failed: " + csv_path);
  }
  return writer->Close();
}

TraceWriter::~TraceWriter() {
  Close();  // Best effort; errors surface only via an explicit Close().
}

util::StatusOr<std::unique_ptr<TraceWriter>> TraceWriter::Create(
    const std::string& path, const ObjectCatalog& catalog,
    uint64_t expected_requests) {
  std::unique_ptr<TraceWriter> writer(new TraceWriter());
  writer->file_ = std::fopen(path.c_str(), "wb");
  if (writer->file_ == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  writer->path_ = path;
  writer->num_objects_ = catalog.num_objects();
  writer->expected_requests_ = expected_requests;
  writer->iobuf_.resize(1 << 20);
  std::setvbuf(writer->file_, writer->iobuf_.data(), _IOFBF,
               writer->iobuf_.size());
  CASCACHE_RETURN_IF_ERROR(
      WriteV2Preamble(writer->file_, catalog, expected_requests, path));
  return writer;
}

util::Status TraceWriter::Append(const Request* batch, size_t count) {
  if (closed_) {
    return util::Status::FailedPrecondition("trace writer already closed");
  }
  for (size_t i = 0; i < count; ++i) {
    if (batch[i].object >= num_objects_) {
      return util::Status::InvalidArgument("object id out of range");
    }
    if (batch[i].time < prev_time_) {
      return util::Status::InvalidArgument(
          "request timestamps not sorted in trace");
    }
    prev_time_ = batch[i].time;
  }
  if (count > 0 &&
      std::fwrite(batch, sizeof(Request), count, file_) != count) {
    return util::Status::IoError("short write: " + path_);
  }
  requests_written_ += count;
  return util::Status::Ok();
}

util::Status TraceWriter::Close() {
  if (closed_) return util::Status::Ok();
  closed_ = true;
  if (file_ == nullptr) return util::Status::Ok();
  util::Status status = util::Status::Ok();
  if (requests_written_ != expected_requests_) {
    if (fseeko(file_, kNumRequestsOffset, SEEK_SET) != 0 ||
        !WriteOne(file_, requests_written_)) {
      status = util::Status::IoError("header patch failed: " + path_);
    }
  }
  if (std::fclose(file_) != 0 && status.ok()) {
    status = util::Status::IoError("close failed: " + path_);
  }
  file_ = nullptr;
  return status;
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

util::StatusOr<std::unique_ptr<TraceReader>> TraceReader::Open(
    const std::string& path) {
  return Open(path, Options{});
}

util::StatusOr<std::unique_ptr<TraceReader>> TraceReader::Open(
    const std::string& path, const Options& options) {
  std::unique_ptr<TraceReader> reader(new TraceReader());
  reader->file_ = std::fopen(path.c_str(), "rb");
  if (reader->file_ == nullptr) {
    return util::Status::IoError("cannot open for read: " + path);
  }
  ParsedHeader h;
  CASCACHE_RETURN_IF_ERROR(
      ReadHeaderAndCatalog(reader->file_, path, &h, &reader->catalog_));
  reader->version_ = h.version;
  reader->num_requests_ = h.num_requests;
  if (options.buffer_bytes > 0) {
    // Round up to whole records so Refill never splits one.
    const size_t records = std::max<size_t>(
        1, options.buffer_bytes / sizeof(Request));
    reader->buf_.resize(records * sizeof(Request));
  }
  return reader;
}

util::Status TraceReader::Refill() {
  const size_t tail = buf_len_ - buf_pos_;
  if (tail > 0) {
    std::memmove(buf_.data(), buf_.data() + buf_pos_, tail);
  }
  buf_pos_ = 0;
  buf_len_ = tail;
  // Never read past the declared request region (a v1 file could in
  // principle carry trailing data).
  const uint64_t remaining_bytes =
      (num_requests_ - requests_read_) * sizeof(Request) - tail;
  const size_t want = static_cast<size_t>(
      std::min<uint64_t>(buf_.size() - buf_len_, remaining_bytes));
  const size_t got = std::fread(buf_.data() + buf_len_, 1, want, file_);
  buf_len_ += got;
  return util::Status::Ok();
}

util::StatusOr<bool> TraceReader::Next(Request* request) {
  CASCACHE_CHECK(request != nullptr);
  if (requests_read_ >= num_requests_) return false;
  if (buf_.empty()) {
    // Legacy unbuffered path: one fread per field. Kept selectable via
    // Options::buffer_bytes = 0 so the buffering win stays measurable.
    if (!ReadOne(file_, &request->time) ||
        !ReadOne(file_, &request->client) ||
        !ReadOne(file_, &request->object)) {
      return util::Status::IoError("truncated request stream");
    }
  } else {
    if (buf_len_ - buf_pos_ < sizeof(Request)) {
      CASCACHE_RETURN_IF_ERROR(Refill());
      if (buf_len_ - buf_pos_ < sizeof(Request)) {
        return util::Status::IoError("truncated request stream");
      }
    }
    std::memcpy(request, buf_.data() + buf_pos_, sizeof(Request));
    buf_pos_ += sizeof(Request);
  }
  if (request->object >= catalog_.num_objects()) {
    return util::Status::InvalidArgument("object id out of range");
  }
  if (request->time < prev_time_) {
    return util::Status::InvalidArgument(
        "request timestamps not sorted in trace");
  }
  prev_time_ = request->time;
  ++requests_read_;
  return true;
}

TraceStats ComputeTraceStats(const Workload& workload) {
  std::vector<uint64_t> counts = CountAccesses(workload);
  std::vector<bool> client_seen;
  uint64_t total_bytes = 0;
  for (const Request& req : workload.requests) {
    total_bytes += workload.catalog.size(req.object);
    if (req.client >= client_seen.size()) {
      client_seen.resize(req.client + 1, false);
    }
    client_seen[req.client] = true;
  }
  const uint32_t clients_active = static_cast<uint32_t>(
      std::count(client_seen.begin(), client_seen.end(), true));
  return StatsFromCounts(workload.catalog, counts, workload.requests.size(),
                         workload.Duration(), total_bytes, clients_active);
}

util::StatusOr<TraceSummary> SummarizeTrace(const std::string& path) {
  return SummarizeTrace(path, SummarizeOptions{});
}

util::StatusOr<TraceSummary> SummarizeTrace(const std::string& path,
                                            const SummarizeOptions& options) {
  CASCACHE_ASSIGN_OR_RETURN(std::unique_ptr<TraceReader> reader,
                            TraceReader::Open(path));
  TraceSummary summary;
  summary.format_version = reader->version();
  const ObjectCatalog& catalog = reader->catalog();

  // Per-object access counts: dense vector up to 2^26 objects, hash map
  // over the referenced ids above (a 10^8-object dense vector would be
  // 800 MB; a 10M-request trace touches far fewer distinct objects).
  constexpr uint32_t kDenseCountLimit = 1u << 26;
  const bool dense_counts = catalog.num_objects() <= kDenseCountLimit;
  std::vector<uint64_t> counts;
  if (dense_counts) counts.resize(catalog.num_objects(), 0);
  std::unordered_map<ObjectId, uint64_t> sparse_counts;

  // Per-epoch Zipf slope: requests are split into `epochs` equal-count
  // windows; each window's counts are accumulated separately (bounded by
  // the window's request count) and reduced to a slope at the boundary.
  const uint64_t declared_requests = reader->num_requests();
  const uint32_t epochs =
      declared_requests > 0 ? options.epochs : 0;
  std::unordered_map<ObjectId, uint64_t> window_counts;
  uint32_t current_epoch = 0;
  const auto flush_epoch = [&]() {
    std::vector<double> window_sorted;
    window_sorted.reserve(window_counts.size());
    for (const auto& [id, c] : window_counts) {
      window_sorted.push_back(static_cast<double>(c));
    }
    std::sort(window_sorted.rbegin(), window_sorted.rend());
    summary.epoch_zipf_theta.push_back(util::EstimateZipfTheta(window_sorted));
    window_counts.clear();
  };

  std::vector<bool> client_seen;
  uint64_t total_bytes = 0;
  double duration = 0.0;
  // Welford accumulation over inter-arrival gaps.
  uint64_t gaps = 0;
  double gap_mean = 0.0, gap_m2 = 0.0;
  double gap_min = 0.0, gap_max = 0.0;
  double prev_time = 0.0;
  bool first = true;

  Request req;
  uint64_t r = 0;
  while (true) {
    CASCACHE_ASSIGN_OR_RETURN(const bool more, reader->Next(&req));
    if (!more) break;
    if (dense_counts) {
      ++counts[req.object];
    } else {
      ++sparse_counts[req.object];
    }
    if (epochs > 0) {
      const uint32_t epoch = static_cast<uint32_t>(std::min<uint64_t>(
          epochs - 1, r * epochs / declared_requests));
      if (epoch != current_epoch) {
        flush_epoch();
        current_epoch = epoch;
      }
      ++window_counts[req.object];
    }
    total_bytes += catalog.size(req.object);
    if (req.client >= client_seen.size()) {
      client_seen.resize(req.client + 1, false);
    }
    client_seen[req.client] = true;
    duration = req.time;
    if (!first) {
      const double gap = req.time - prev_time;
      ++gaps;
      const double delta = gap - gap_mean;
      gap_mean += delta / static_cast<double>(gaps);
      gap_m2 += delta * (gap - gap_mean);
      gap_min = gaps == 1 ? gap : std::min(gap_min, gap);
      gap_max = gaps == 1 ? gap : std::max(gap_max, gap);
    }
    prev_time = req.time;
    first = false;
    ++r;
  }
  if (epochs > 0 && r > 0) flush_epoch();

  const uint32_t clients_active = static_cast<uint32_t>(
      std::count(client_seen.begin(), client_seen.end(), true));
  if (dense_counts) {
    summary.stats =
        StatsFromCounts(catalog, counts, reader->requests_read(), duration,
                        total_bytes, clients_active);
  } else {
    // Sparse reduction: only referenced objects carry counts.
    TraceStats stats;
    stats.num_requests = reader->requests_read();
    stats.num_objects = catalog.num_objects();
    stats.duration_seconds = duration;
    stats.mean_object_size = catalog.mean_size();
    stats.total_bytes_requested = total_bytes;
    stats.num_clients_active = clients_active;
    stats.num_objects_referenced =
        static_cast<uint32_t>(sparse_counts.size());
    std::vector<double> sorted_counts;
    sorted_counts.reserve(sparse_counts.size());
    for (const auto& [id, c] : sparse_counts) {
      sorted_counts.push_back(static_cast<double>(c));
    }
    std::sort(sorted_counts.rbegin(), sorted_counts.rend());
    stats.estimated_zipf_theta = util::EstimateZipfTheta(sorted_counts);
    if (!sorted_counts.empty() && stats.num_requests > 0) {
      const size_t top = std::max<size_t>(1, sorted_counts.size() / 10);
      double top_sum = 0.0;
      for (size_t i = 0; i < top; ++i) top_sum += sorted_counts[i];
      stats.top10pct_request_share =
          top_sum / static_cast<double>(stats.num_requests);
    }
    summary.stats = stats;
  }
  summary.interarrival_mean = gap_mean;
  summary.interarrival_stddev =
      gaps > 0 ? std::sqrt(gap_m2 / static_cast<double>(gaps)) : 0.0;
  summary.interarrival_min = gap_min;
  summary.interarrival_max = gap_max;

  // Catalog size percentiles. A procedural catalog's sorted quantile
  // table *is* its size distribution, so percentiles read straight off
  // it instead of materializing (and sorting) 10^8 sizes.
  if (catalog.procedural()) {
    const std::vector<uint64_t>& q = catalog.size_quantiles();
    summary.size_p50 = PercentileSorted(q, 50.0);
    summary.size_p90 = PercentileSorted(q, 90.0);
    summary.size_p99 = PercentileSorted(q, 99.0);
    summary.size_max = q.empty() ? 0 : q.back();
  } else {
    std::vector<uint64_t> sizes(catalog.num_objects());
    for (ObjectId id = 0; id < catalog.num_objects(); ++id) {
      sizes[id] = catalog.size(id);
    }
    std::sort(sizes.begin(), sizes.end());
    summary.size_p50 = PercentileSorted(sizes, 50.0);
    summary.size_p90 = PercentileSorted(sizes, 90.0);
    summary.size_p99 = PercentileSorted(sizes, 99.0);
    summary.size_max = sizes.empty() ? 0 : sizes.back();
  }

  // Request-weighted size percentiles: walk (size, count) pairs in
  // ascending size order accumulating request mass.
  std::vector<std::pair<uint64_t, uint64_t>> weighted;  // (size, count)
  if (dense_counts) {
    for (ObjectId id = 0; id < catalog.num_objects(); ++id) {
      if (counts[id] > 0) weighted.emplace_back(catalog.size(id), counts[id]);
    }
  } else {
    weighted.reserve(sparse_counts.size());
    for (const auto& [id, c] : sparse_counts) {
      weighted.emplace_back(catalog.size(id), c);
    }
  }
  std::sort(weighted.begin(), weighted.end());
  const uint64_t total_requests = reader->requests_read();
  auto weighted_percentile = [&](double pct) -> uint64_t {
    if (weighted.empty() || total_requests == 0) return 0;
    const double threshold = pct / 100.0 * static_cast<double>(total_requests);
    uint64_t cum = 0;
    for (const auto& [size, count] : weighted) {
      cum += count;
      if (static_cast<double>(cum) >= threshold) return size;
    }
    return weighted.back().first;
  };
  summary.req_size_p50 = weighted_percentile(50.0);
  summary.req_size_p90 = weighted_percentile(90.0);
  summary.req_size_p99 = weighted_percentile(99.0);

  // File size (informational).
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f != nullptr && fseeko(f.get(), 0, SEEK_END) == 0) {
    summary.file_bytes = static_cast<uint64_t>(ftello(f.get()));
  }
  return summary;
}

}  // namespace cascache::trace
