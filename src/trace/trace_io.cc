#include "trace/trace_io.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>

#include "util/zipf.h"

namespace cascache::trace {

namespace {

constexpr char kMagic[4] = {'C', 'C', 'T', 'R'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool WriteOne(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool ReadOne(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

}  // namespace

util::Status WriteTrace(const Workload& workload, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  if (std::fwrite(kMagic, 1, 4, f.get()) != 4) {
    return util::Status::IoError("short write: " + path);
  }
  const uint32_t num_objects = workload.catalog.num_objects();
  const uint32_t num_servers = workload.catalog.num_servers();
  const uint64_t num_requests = workload.requests.size();
  if (!WriteOne(f.get(), kVersion) || !WriteOne(f.get(), num_objects) ||
      !WriteOne(f.get(), num_servers) || !WriteOne(f.get(), num_requests)) {
    return util::Status::IoError("short write: " + path);
  }
  for (ObjectId id = 0; id < num_objects; ++id) {
    const uint64_t size = workload.catalog.size(id);
    const uint32_t server = workload.catalog.server(id);
    if (!WriteOne(f.get(), size) || !WriteOne(f.get(), server)) {
      return util::Status::IoError("short write: " + path);
    }
  }
  for (const Request& req : workload.requests) {
    if (!WriteOne(f.get(), req.time) || !WriteOne(f.get(), req.client) ||
        !WriteOne(f.get(), req.object)) {
      return util::Status::IoError("short write: " + path);
    }
  }
  return util::Status::Ok();
}

util::StatusOr<Workload> ReadTrace(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open for read: " + path);
  }
  char magic[4];
  if (std::fread(magic, 1, 4, f.get()) != 4 ||
      std::memcmp(magic, kMagic, 4) != 0) {
    return util::Status::IoError("bad magic in trace file: " + path);
  }
  uint32_t version = 0, num_objects = 0, num_servers = 0;
  uint64_t num_requests = 0;
  if (!ReadOne(f.get(), &version) || !ReadOne(f.get(), &num_objects) ||
      !ReadOne(f.get(), &num_servers) || !ReadOne(f.get(), &num_requests)) {
    return util::Status::IoError("truncated header: " + path);
  }
  if (version != kVersion) {
    return util::Status::InvalidArgument("unsupported trace version");
  }

  Workload workload;
  for (uint32_t i = 0; i < num_objects; ++i) {
    uint64_t size = 0;
    uint32_t server = 0;
    if (!ReadOne(f.get(), &size) || !ReadOne(f.get(), &server)) {
      return util::Status::IoError("truncated catalog: " + path);
    }
    if (size == 0) {
      return util::Status::InvalidArgument("zero-size object in trace");
    }
    if (server >= num_servers) {
      return util::Status::InvalidArgument("server id out of range");
    }
    workload.catalog.Add(size, server);
  }

  workload.requests.reserve(num_requests);
  double prev_time = -1.0;
  for (uint64_t r = 0; r < num_requests; ++r) {
    Request req;
    if (!ReadOne(f.get(), &req.time) || !ReadOne(f.get(), &req.client) ||
        !ReadOne(f.get(), &req.object)) {
      return util::Status::IoError("truncated request stream: " + path);
    }
    if (req.object >= num_objects) {
      return util::Status::InvalidArgument("object id out of range");
    }
    if (req.time < prev_time) {
      return util::Status::InvalidArgument(
          "request timestamps not sorted in trace");
    }
    prev_time = req.time;
    workload.requests.push_back(req);
  }
  return workload;
}

util::Status WriteTraceCsv(const Workload& workload,
                           const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "w"));
  if (f == nullptr) {
    return util::Status::IoError("cannot open for write: " + path);
  }
  std::fputs("time,client,object,size,server\n", f.get());
  for (const Request& req : workload.requests) {
    if (std::fprintf(f.get(), "%.6f,%u,%u,%llu,%u\n", req.time, req.client,
                     req.object,
                     static_cast<unsigned long long>(
                         workload.catalog.size(req.object)),
                     workload.catalog.server(req.object)) < 0) {
      return util::Status::IoError("short write: " + path);
    }
  }
  return util::Status::Ok();
}

TraceReader::~TraceReader() {
  if (file_ != nullptr) std::fclose(file_);
}

util::StatusOr<std::unique_ptr<TraceReader>> TraceReader::Open(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open for read: " + path);
  }
  std::unique_ptr<TraceReader> reader(new TraceReader());
  reader->file_ = f;

  char magic[4];
  if (std::fread(magic, 1, 4, f) != 4 || std::memcmp(magic, kMagic, 4) != 0) {
    return util::Status::IoError("bad magic in trace file: " + path);
  }
  uint32_t version = 0, num_objects = 0, num_servers = 0;
  if (!ReadOne(f, &version) || !ReadOne(f, &num_objects) ||
      !ReadOne(f, &num_servers) || !ReadOne(f, &reader->num_requests_)) {
    return util::Status::IoError("truncated header: " + path);
  }
  if (version != kVersion) {
    return util::Status::InvalidArgument("unsupported trace version");
  }
  for (uint32_t i = 0; i < num_objects; ++i) {
    uint64_t size = 0;
    uint32_t server = 0;
    if (!ReadOne(f, &size) || !ReadOne(f, &server)) {
      return util::Status::IoError("truncated catalog: " + path);
    }
    if (size == 0) {
      return util::Status::InvalidArgument("zero-size object in trace");
    }
    if (server >= num_servers) {
      return util::Status::InvalidArgument("server id out of range");
    }
    reader->catalog_.Add(size, server);
  }
  return reader;
}

util::StatusOr<bool> TraceReader::Next(Request* request) {
  CASCACHE_CHECK(request != nullptr);
  if (requests_read_ >= num_requests_) return false;
  if (!ReadOne(file_, &request->time) || !ReadOne(file_, &request->client) ||
      !ReadOne(file_, &request->object)) {
    return util::Status::IoError("truncated request stream");
  }
  if (request->object >= catalog_.num_objects()) {
    return util::Status::InvalidArgument("object id out of range");
  }
  if (request->time < prev_time_) {
    return util::Status::InvalidArgument(
        "request timestamps not sorted in trace");
  }
  prev_time_ = request->time;
  ++requests_read_;
  return true;
}

TraceStats ComputeTraceStats(const Workload& workload) {
  TraceStats stats;
  stats.num_requests = workload.requests.size();
  stats.num_objects = workload.catalog.num_objects();
  stats.duration_seconds = workload.Duration();
  stats.mean_object_size = workload.catalog.mean_size();

  std::vector<uint64_t> counts = CountAccesses(workload);
  std::vector<bool> client_seen;
  for (const Request& req : workload.requests) {
    stats.total_bytes_requested += workload.catalog.size(req.object);
    if (req.client >= client_seen.size()) {
      client_seen.resize(req.client + 1, false);
    }
    client_seen[req.client] = true;
  }
  stats.num_clients_active = static_cast<uint32_t>(
      std::count(client_seen.begin(), client_seen.end(), true));

  std::vector<double> sorted_counts;
  sorted_counts.reserve(counts.size());
  for (uint64_t c : counts) {
    if (c > 0) {
      ++stats.num_objects_referenced;
      sorted_counts.push_back(static_cast<double>(c));
    }
  }
  std::sort(sorted_counts.rbegin(), sorted_counts.rend());
  stats.estimated_zipf_theta = util::EstimateZipfTheta(sorted_counts);

  if (!sorted_counts.empty() && stats.num_requests > 0) {
    const size_t top = std::max<size_t>(1, sorted_counts.size() / 10);
    double top_sum = 0.0;
    for (size_t i = 0; i < top; ++i) top_sum += sorted_counts[i];
    stats.top10pct_request_share =
        top_sum / static_cast<double>(stats.num_requests);
  }
  return stats;
}

}  // namespace cascache::trace
