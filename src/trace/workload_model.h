#ifndef CASCACHE_TRACE_WORKLOAD_MODEL_H_
#define CASCACHE_TRACE_WORKLOAD_MODEL_H_

#include <cstdint>
#include <functional>

#include "trace/object_catalog.h"
#include "util/random.h"
#include "util/status.h"

namespace cascache::trace {

struct WorkloadParams;  // synthetic.h

/// How object popularity drifts over simulated time.
enum class DriftMode {
  kNone,
  /// Rank rotation: the object at popularity rank r at time t is
  /// (r + offset(t)) mod n, where offset advances by n ids every two
  /// half-lives. O(1) state, valid at any catalog size — the only drift
  /// mode usable with 10^8-object procedural catalogs.
  kRotate,
  /// Random rank permutation mutated by Poisson-timed swap events, tuned
  /// so the hot set decorrelates with the configured half-life. Keeps an
  /// explicit n-entry table, so it is rejected above
  /// kDriftShuffleMaxObjects.
  kShuffle,
};

/// Largest catalog for which DriftMode::kShuffle may materialize its
/// rank permutation (2^24 ids = 64 MiB table).
inline constexpr uint32_t kDriftShuffleMaxObjects = 1u << 24;

/// Non-stationary extensions layered over the stationary Zipf workload
/// (synthetic.h). All components are deterministic functions of
/// (WorkloadParams::seed, this config) and keep O(1)-per-request state,
/// so any trace length streams through TraceWriter in bounded memory.
/// Components compose freely except where ValidateWorkloadModel says
/// otherwise; defaults leave every component off, in which case the
/// generator takes the historical bit-exact static path.
struct WorkloadModelParams {
  // --- Popularity drift -----------------------------------------------------
  DriftMode drift_mode = DriftMode::kNone;
  /// Time for half the hot set's popularity mass to move to previously
  /// cold objects. Must be > 0 when drift_mode != kNone.
  double drift_half_life_s = 3600.0;

  // --- Flash crowds ---------------------------------------------------------
  /// Poisson rate of flash-crowd events; 0 disables.
  double flash_rate_per_hour = 0.0;
  /// Objects in each event's hot set (a contiguous id run at a uniformly
  /// random base id).
  uint32_t flash_objects = 64;
  /// Fraction of request traffic one event captures at its peak.
  double flash_peak_share = 0.3;
  /// Linear ramp-up to the peak, then exponential decay.
  double flash_ramp_s = 300.0;
  double flash_decay_s = 1200.0;

  // --- Diurnal request-rate cycle -------------------------------------------
  /// Arrival rate becomes request_rate * (1 + A sin(2 pi t / period));
  /// A in [0, 1), 0 disables.
  double diurnal_amplitude = 0.0;
  double diurnal_period_s = 86400.0;

  // --- Correlated client sessions (video-segment runs) ----------------------
  /// Probability that a fresh object draw starts a sequential session in
  /// which the client's following requests fetch consecutive ids
  /// (segment n, n+1, ...); 0 disables.
  double session_prob = 0.0;
  /// Mean session length in requests (geometric), >= 1.
  double session_mean_run = 20.0;

  // --- Regional (per-MAN) skew ----------------------------------------------
  /// Number of client regions (region = client mod regions); 0 disables.
  uint32_t regions = 0;
  /// Probability a request prefers its region's shifted hot set over the
  /// global popularity order; in [0, 1].
  double regional_bias = 0.0;

  /// True if any non-stationary component is active; false selects the
  /// historical static-Zipf emitter byte-for-byte.
  bool enabled() const {
    return drift_mode != DriftMode::kNone || flash_rate_per_hour > 0.0 ||
           diurnal_amplitude > 0.0 || session_prob > 0.0 ||
           (regions > 0 && regional_bias > 0.0);
  }
};

/// Validates the model-only knobs (ranges, required pairings).
/// Cross-checks against the base workload (shuffle table size, churn
/// conflicts) live in the synthetic generator's ValidateParams.
util::Status ValidateWorkloadModel(const WorkloadModelParams& model);

/// Generates the non-stationary request stream, calling emit(req) once
/// per request in time order; `rng` must already have produced the
/// catalog (the generators share one stream so streamed and in-RAM
/// output stay bit-identical). Only called when model.enabled().
void EmitModelRequests(const WorkloadParams& params, util::Rng* rng,
                       const std::function<void(const Request&)>& emit);

}  // namespace cascache::trace

#endif  // CASCACHE_TRACE_WORKLOAD_MODEL_H_
