#include "trace/workload_model.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "trace/synthetic.h"
#include "util/zipf.h"

namespace cascache::trace {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Traffic share multiplier of one flash event at the given age: linear
/// ramp to 1 over `ramp`, then exponential decay with constant `decay`.
double FlashEnvelope(double age, double ramp, double decay) {
  if (age <= 0.0) return 0.0;
  if (age < ramp) return age / ramp;
  return std::exp(-(age - ramp) / decay);
}

/// Geometric number of session continuations after the opening request
/// (mean (1-p)/p), drawn by inversion so it costs one uniform.
uint64_t SampleSessionRun(double p, util::Rng* rng) {
  const double u = rng->NextDouble();
  if (p >= 1.0) return 0;
  return static_cast<uint64_t>(std::log1p(-u) / std::log1p(-p));
}

}  // namespace

util::Status ValidateWorkloadModel(const WorkloadModelParams& m) {
  if (m.drift_mode != DriftMode::kNone && m.drift_half_life_s <= 0.0) {
    return util::Status::InvalidArgument("drift_half_life_s must be > 0");
  }
  if (m.flash_rate_per_hour < 0.0) {
    return util::Status::InvalidArgument("flash_rate_per_hour must be >= 0");
  }
  if (m.flash_rate_per_hour > 0.0) {
    if (m.flash_objects == 0) {
      return util::Status::InvalidArgument("flash_objects must be > 0");
    }
    if (m.flash_peak_share <= 0.0 || m.flash_peak_share > 1.0) {
      return util::Status::InvalidArgument(
          "flash_peak_share must be in (0,1]");
    }
    if (m.flash_ramp_s < 0.0 || m.flash_decay_s <= 0.0) {
      return util::Status::InvalidArgument("bad flash ramp/decay");
    }
  }
  if (m.diurnal_amplitude < 0.0 || m.diurnal_amplitude >= 1.0) {
    return util::Status::InvalidArgument(
        "diurnal_amplitude must be in [0,1)");
  }
  if (m.diurnal_amplitude > 0.0 && m.diurnal_period_s <= 0.0) {
    return util::Status::InvalidArgument("diurnal_period_s must be > 0");
  }
  if (m.session_prob < 0.0 || m.session_prob > 1.0) {
    return util::Status::InvalidArgument("session_prob must be in [0,1]");
  }
  if (m.session_prob > 0.0 && m.session_mean_run < 1.0) {
    return util::Status::InvalidArgument("session_mean_run must be >= 1");
  }
  if (m.regional_bias < 0.0 || m.regional_bias > 1.0) {
    return util::Status::InvalidArgument("regional_bias must be in [0,1]");
  }
  if (m.regional_bias > 0.0 && m.regions == 0) {
    return util::Status::InvalidArgument(
        "regional_bias requires regions > 0");
  }
  return util::Status::Ok();
}

void EmitModelRequests(const WorkloadParams& params, util::Rng* rng,
                       const std::function<void(const Request&)>& emit) {
  const WorkloadModelParams& m = params.model;
  const uint32_t n = params.num_objects;
  const util::ZipfSampler object_pop(n, params.zipf_theta);
  const util::ZipfSampler client_pop(params.num_clients,
                                     params.client_zipf_theta);

  // Client ranks are shuffled into ids, as in the static emitter, so hot
  // clients spread over attach points.
  std::vector<ClientId> client_of_rank(params.num_clients);
  for (uint32_t i = 0; i < params.num_clients; ++i) client_of_rank[i] = i;
  rng->Shuffle(&client_of_rank);

  // Popularity drift. Rotate keeps only the wall clock (the id at rank r
  // is (r + offset(t)) mod n where offset sweeps the full id space every
  // two half-lives, so after one half-life half the hot mass has moved).
  // Shuffle keeps an explicit permutation mutated by Poisson swap events;
  // rate n ln2 / (2 h) makes a given rank's mapping survive one
  // half-life with probability ~1/2.
  const bool rotate = m.drift_mode == DriftMode::kRotate;
  const bool shuffling = m.drift_mode == DriftMode::kShuffle;
  const double rotate_period = 2.0 * m.drift_half_life_s;
  std::vector<ObjectId> rank_to_object;
  double next_swap = std::numeric_limits<double>::infinity();
  double swap_rate = 0.0;
  if (shuffling) {
    rank_to_object.resize(n);
    for (uint32_t i = 0; i < n; ++i) rank_to_object[i] = i;
    swap_rate = static_cast<double>(n) * 0.6931471805599453 /
                (2.0 * m.drift_half_life_s);
    next_swap = rng->NextExponential(swap_rate);
  }

  // Flash crowds: live events with their base id and birth time; the
  // envelope scratch is refreshed per request and reused for the
  // envelope-weighted event pick.
  struct FlashEvent {
    double start;
    ObjectId base;
  };
  std::vector<FlashEvent> flashes;
  std::vector<double> flash_env;
  const double flash_rate = m.flash_rate_per_hour / 3600.0;
  double next_flash = std::numeric_limits<double>::infinity();
  if (flash_rate > 0.0) next_flash = rng->NextExponential(flash_rate);

  // Sequential sessions (video-segment runs), keyed by client id.
  struct Session {
    ObjectId next = 0;
    uint64_t remaining = 0;
  };
  std::vector<Session> sessions;
  if (m.session_prob > 0.0) sessions.resize(params.num_clients);

  // Temporal locality ring, identical semantics to the static emitter.
  const bool temporal = params.temporal_locality > 0.0;
  std::vector<ObjectId> recent;
  size_t recent_head = 0;
  const double recency_p = temporal ? 1.0 / params.temporal_mean_depth : 0.0;

  const uint64_t region_stride =
      m.regions > 0 ? static_cast<uint64_t>(n) / m.regions : 0;

  double now = 0.0;
  for (uint64_t r = 0; r < params.num_requests; ++r) {
    // (1) Arrival gap; the diurnal cycle modulates the instantaneous
    // Poisson rate (piecewise approximation at the current time).
    double rate = params.request_rate;
    if (m.diurnal_amplitude > 0.0) {
      rate *= 1.0 +
              m.diurnal_amplitude * std::sin(kTwoPi * now / m.diurnal_period_s);
      rate = std::max(rate, params.request_rate * 1e-6);
    }
    now += rng->NextExponential(rate);

    // (2) Process event streams that fired before this arrival.
    while (next_flash <= now) {
      flashes.push_back(
          {next_flash, static_cast<ObjectId>(rng->NextUint64(n))});
      next_flash += rng->NextExponential(flash_rate);
    }
    while (next_swap <= now) {
      const uint32_t a = static_cast<uint32_t>(rng->NextUint64(n));
      const uint32_t b = static_cast<uint32_t>(rng->NextUint64(n));
      std::swap(rank_to_object[a], rank_to_object[b]);
      next_swap += rng->NextExponential(swap_rate);
    }

    // Refresh flash envelopes, dropping events decayed below noise.
    double flash_p = 0.0;
    double env_total = 0.0;
    if (!flashes.empty()) {
      flash_env.clear();
      size_t keep = 0;
      for (const FlashEvent& e : flashes) {
        const double age = now - e.start;
        const double env = FlashEnvelope(age, m.flash_ramp_s, m.flash_decay_s);
        if (age > m.flash_ramp_s && env < 1e-3) continue;
        flashes[keep++] = e;
        flash_env.push_back(env);
        env_total += env;
      }
      flashes.resize(keep);
      flash_p = std::min(0.9, m.flash_peak_share * env_total);
    }

    Request req;
    req.time = now;
    // (3) Client draw.
    req.client = client_of_rank[client_pop.Sample(rng)];

    // (4) Session continuation preempts every other draw: the client is
    // mid-run and fetches the next sequential segment (no rng).
    Session* sess =
        sessions.empty() ? nullptr : &sessions[req.client];
    bool continued = false;
    bool picked = false;
    if (sess != nullptr && sess->remaining > 0) {
      req.object = sess->next;
      sess->next = (sess->next + 1) % n;
      --sess->remaining;
      continued = true;
      picked = true;
    }

    // Temporal re-reference (same mechanics as the static emitter).
    if (!picked && temporal && !recent.empty() &&
        rng->NextBool(params.temporal_locality)) {
      uint64_t depth = 0;
      while (depth + 1 < recent.size() && !rng->NextBool(recency_p)) ++depth;
      const size_t idx =
          (recent_head + recent.size() - 1 - static_cast<size_t>(depth)) %
          recent.size();
      req.object = recent[idx];
      picked = true;
    }

    // (5) Flash draw: pick an event weighted by its current envelope,
    // then a uniform object from its contiguous hot run. Flash ids are
    // final (drift does not remap them; the crowd chases those ids).
    if (!picked && flash_p > 0.0 && rng->NextBool(flash_p)) {
      double u = rng->NextDouble() * env_total;
      size_t e = 0;
      while (e + 1 < flashes.size() && u >= flash_env[e]) {
        u -= flash_env[e];
        ++e;
      }
      req.object = static_cast<ObjectId>(
          (static_cast<uint64_t>(flashes[e].base) +
           rng->NextUint64(m.flash_objects)) %
          n);
      picked = true;
    }

    // (6) Popularity draw with optional regional shift, then (7) the
    // drift transform last, so regional hot sets drift together.
    if (!picked) {
      uint64_t id = object_pop.Sample(rng);
      if (m.regions > 0 && m.regional_bias > 0.0 &&
          rng->NextBool(m.regional_bias)) {
        const uint64_t region = req.client % m.regions;
        id = (id + region * region_stride) % n;
      }
      if (rotate) {
        const uint64_t offset =
            static_cast<uint64_t>((now / rotate_period) *
                                  static_cast<double>(n)) %
            n;
        id = (id + offset) % n;
      } else if (shuffling) {
        id = rank_to_object[id];
      }
      req.object = static_cast<ObjectId>(id);
    }

    // A fresh draw may open a session; continuations never re-roll.
    if (sess != nullptr && !continued && rng->NextBool(m.session_prob)) {
      sess->next = (req.object + 1) % n;
      sess->remaining = SampleSessionRun(1.0 / m.session_mean_run, rng);
    }

    if (temporal) {
      if (recent.size() < params.temporal_window) {
        recent.push_back(req.object);
        recent_head = 0;
      } else {
        recent[recent_head] = req.object;
        recent_head = (recent_head + 1) % recent.size();
      }
    }
    emit(req);
  }
}

}  // namespace cascache::trace
