#ifndef CASCACHE_TRACE_TRACE_IO_H_
#define CASCACHE_TRACE_TRACE_IO_H_

#include <cstdio>
#include <memory>
#include <string>

#include "trace/synthetic.h"
#include "util/status.h"

namespace cascache::trace {

/// Binary trace file IO. Layout (little-endian):
///   magic "CCTR" | uint32 version | uint32 num_objects |
///   uint32 num_servers | uint64 num_requests |
///   per object: uint64 size, uint32 server |
///   per request: double time, uint32 client, uint32 object
/// The format exists so users can substitute a real proxy trace (e.g. a
/// Boeing-style log converted offline) for the synthetic workload.
util::Status WriteTrace(const Workload& workload, const std::string& path);

/// Reads a trace written by WriteTrace. Validates magic, version, bounds
/// of every record (object/client ids, monotonically non-decreasing
/// timestamps) and truncation.
util::StatusOr<Workload> ReadTrace(const std::string& path);

/// Writes the request stream as CSV ("time,client,object,size,server")
/// for external analysis; the catalog is embedded per-row.
util::Status WriteTraceCsv(const Workload& workload, const std::string& path);

/// Streaming reader for WriteTrace files: loads the catalog eagerly (it
/// is small) and yields requests one at a time, so multi-gigabyte traces
/// replay in constant memory. Performs the same validation as ReadTrace.
class TraceReader {
 public:
  static util::StatusOr<std::unique_ptr<TraceReader>> Open(
      const std::string& path);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;
  ~TraceReader();

  const ObjectCatalog& catalog() const { return catalog_; }
  uint64_t num_requests() const { return num_requests_; }
  uint64_t requests_read() const { return requests_read_; }

  /// Reads the next request into `request`. Returns true on success,
  /// false at end of stream, or an error Status on corruption.
  util::StatusOr<bool> Next(Request* request);

 private:
  TraceReader() = default;

  std::FILE* file_ = nullptr;
  ObjectCatalog catalog_;
  uint64_t num_requests_ = 0;
  uint64_t requests_read_ = 0;
  double prev_time_ = -1.0;
};

/// Summary statistics of a workload, for trace inspection tools.
struct TraceStats {
  uint64_t num_requests = 0;
  uint32_t num_objects = 0;
  uint32_t num_objects_referenced = 0;
  uint32_t num_clients_active = 0;
  double duration_seconds = 0.0;
  uint64_t total_bytes_requested = 0;
  double mean_object_size = 0.0;
  /// Least-squares Zipf exponent of the observed access counts.
  double estimated_zipf_theta = 0.0;
  /// Fraction of requests going to the top 10% most-referenced objects.
  double top10pct_request_share = 0.0;
};

TraceStats ComputeTraceStats(const Workload& workload);

}  // namespace cascache::trace

#endif  // CASCACHE_TRACE_TRACE_IO_H_
