#ifndef CASCACHE_TRACE_TRACE_IO_H_
#define CASCACHE_TRACE_TRACE_IO_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/synthetic.h"
#include "util/status.h"

namespace cascache::trace {

/// Binary trace file IO (little-endian throughout). Two format versions:
///
/// v1 (legacy, still readable):
///   magic "CCTR" | uint32 version=1 | uint32 num_objects |
///   uint32 num_servers | uint64 num_requests |
///   per object: uint64 size, uint32 server |
///   per request: double time, uint32 client, uint32 object
///
/// v2 (current, mmap-able):
///   fixed 32-byte header:
///     magic "CCTR" | uint32 version=2 | uint32 num_objects |
///     uint32 num_servers | uint64 num_requests | uint64 request_offset
///   catalog at byte 32: per object uint64 size, uint32 server
///   zero padding up to request_offset (a multiple of 4096, so the
///   request region starts page-aligned)
///   request region: num_requests fixed-width 16-byte records, each the
///   in-memory layout of trace::Request (double time, uint32 client,
///   uint32 object) — MappedTrace (mapped_trace.h) overlays this region
///   directly as a Request array.
///
/// v3 (procedural catalog, mmap-able):
///   same 32-byte header as v2 with version=3, followed at byte 32 by a
///   64-byte CatalogModel block (object_catalog.h) instead of per-object
///   entries: the catalog is regenerated from the model on load
///   (ObjectCatalog::BuildProcedural), so a 10^8-object trace costs 64
///   bytes of catalog on disk and a 64 KiB quantile table in RAM. Zero
///   padding and the page-aligned request region are identical to v2.
///
/// The format exists so users can substitute a real proxy trace (e.g. a
/// Boeing-style log converted offline via ConvertCsvTrace) for the
/// synthetic workload, and so paper-scale (22M+) traces replay without
/// being materialized in RAM.
constexpr uint32_t kTraceVersion1 = 1;
constexpr uint32_t kTraceVersion2 = 2;
constexpr uint32_t kTraceVersion3 = 3;
/// Alignment of the v2 request region within the file.
constexpr uint64_t kTraceRequestAlign = 4096;
/// Byte size of the fixed v2 header.
constexpr uint64_t kTraceV2HeaderBytes = 32;

/// Writes `workload` in the current format: v2, or v3 when the catalog
/// is procedural (catalog.procedural()).
util::Status WriteTrace(const Workload& workload, const std::string& path);

/// Writes `workload` in the legacy v1 format. Kept so compatibility
/// tests and tooling can produce v1 inputs; new traces should be v2.
util::Status WriteTraceV1(const Workload& workload, const std::string& path);

/// Reads a trace written by WriteTrace/WriteTraceV1 (either version).
/// Validates magic, version, bounds of every record (object/client ids,
/// monotonically non-decreasing timestamps) and truncation.
util::StatusOr<Workload> ReadTrace(const std::string& path);

/// Writes the request stream as CSV ("time,client,object,size,server")
/// for external analysis; the catalog is embedded per-row. Timestamps
/// are rounded to microseconds, so CSV is an interchange format, not a
/// bit-exact round-trip of the binary trace.
util::Status WriteTraceCsv(const Workload& workload, const std::string& path);

/// Converts a CSV request log in the WriteTraceCsv column layout
/// ("time,client,object,size,server", optional header row) into a v2
/// binary trace. Two streaming passes: the first derives the catalog,
/// renumbering log object ids densely by first appearance (real logs
/// are sparse; size/server must be consistent across rows of the same
/// object), the second writes the request region. Memory is
/// O(num_objects), independent of request count.
util::Status ConvertCsvTrace(const std::string& csv_path,
                             const std::string& out_path);

/// Streaming writer for v2 traces: the catalog is written up front and
/// requests are appended in bounded blocks, so arbitrarily long traces
/// are produced in O(1) resident memory. If the final request count
/// differs from `expected_requests`, Close() patches the header.
class TraceWriter {
 public:
  /// `expected_requests` is a hint written into the header immediately;
  /// pass 0 when unknown (Close() fixes it up either way).
  static util::StatusOr<std::unique_ptr<TraceWriter>> Create(
      const std::string& path, const ObjectCatalog& catalog,
      uint64_t expected_requests = 0);

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;
  ~TraceWriter();

  /// Appends `count` records. Validates object-id range and monotone
  /// timestamps (same invariants the readers enforce).
  util::Status Append(const Request* batch, size_t count);
  util::Status Append(const Request& request) { return Append(&request, 1); }

  uint64_t requests_written() const { return requests_written_; }

  /// Flushes, patches the header request count if needed and closes the
  /// file. Idempotent; also invoked (errors ignored) by the destructor.
  util::Status Close();

 private:
  TraceWriter() = default;

  std::FILE* file_ = nullptr;
  std::string path_;
  std::vector<char> iobuf_;
  uint32_t num_objects_ = 0;
  uint64_t expected_requests_ = 0;
  uint64_t requests_written_ = 0;
  double prev_time_ = -1.0;
  bool closed_ = false;
};

/// Streaming reader for trace files (v1 and v2): loads the catalog
/// eagerly (it is small) and yields requests one at a time, so
/// multi-gigabyte traces replay in constant memory. Performs the same
/// validation as ReadTrace. Reads the request region through an
/// internal block buffer; Options::buffer_bytes = 0 selects the legacy
/// one-fread-per-field path (kept for the buffering micro-bench).
class TraceReader {
 public:
  struct Options {
    size_t buffer_bytes = 256 * 1024;
  };

  static util::StatusOr<std::unique_ptr<TraceReader>> Open(
      const std::string& path);
  static util::StatusOr<std::unique_ptr<TraceReader>> Open(
      const std::string& path, const Options& options);

  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;
  ~TraceReader();

  const ObjectCatalog& catalog() const { return catalog_; }
  uint64_t num_requests() const { return num_requests_; }
  uint64_t requests_read() const { return requests_read_; }
  uint32_t version() const { return version_; }

  /// Reads the next request into `request`. Returns true on success,
  /// false at end of stream, or an error Status on corruption.
  util::StatusOr<bool> Next(Request* request);

 private:
  TraceReader() = default;

  util::Status Refill();

  std::FILE* file_ = nullptr;
  ObjectCatalog catalog_;
  uint32_t version_ = 0;
  uint64_t num_requests_ = 0;
  uint64_t requests_read_ = 0;
  double prev_time_ = -1.0;
  std::vector<unsigned char> buf_;
  size_t buf_pos_ = 0;
  size_t buf_len_ = 0;
};

/// Summary statistics of a workload, for trace inspection tools.
struct TraceStats {
  uint64_t num_requests = 0;
  uint32_t num_objects = 0;
  uint32_t num_objects_referenced = 0;
  uint32_t num_clients_active = 0;
  double duration_seconds = 0.0;
  uint64_t total_bytes_requested = 0;
  double mean_object_size = 0.0;
  /// Least-squares Zipf exponent of the observed access counts.
  double estimated_zipf_theta = 0.0;
  /// Fraction of requests going to the top 10% most-referenced objects.
  double top10pct_request_share = 0.0;
};

TraceStats ComputeTraceStats(const Workload& workload);

/// Extended, logstats-style summary of an on-disk trace, computed in
/// one streaming pass. Memory is bounded: above 2^26 catalog objects the
/// per-object access counts switch from a dense vector to a hash map
/// keyed by the referenced ids only, so 10^8-object (v3) traces
/// summarize within the scale-smoke RSS budget.
struct TraceSummary {
  TraceStats stats;
  uint32_t format_version = 0;
  uint64_t file_bytes = 0;
  /// Object size percentiles over the catalog (bytes, nearest-rank).
  uint64_t size_p50 = 0, size_p90 = 0, size_p99 = 0, size_max = 0;
  /// Request-weighted size percentiles (each request contributes its
  /// object's size).
  uint64_t req_size_p50 = 0, req_size_p90 = 0, req_size_p99 = 0;
  /// Inter-arrival gap statistics (seconds, over num_requests-1 gaps).
  double interarrival_mean = 0.0, interarrival_stddev = 0.0;
  double interarrival_min = 0.0, interarrival_max = 0.0;
  /// Least-squares Zipf slope of each request-count window (epoch): the
  /// trace is split into SummarizeOptions::epochs equal-count windows and
  /// the slope is estimated per window. A static trace shows a flat
  /// profile; drifting popularity shows up as windowed slopes well below
  /// the whole-trace estimate (rank mixing flattens the aggregate law).
  std::vector<double> epoch_zipf_theta;
};

struct SummarizeOptions {
  /// Number of equal-request-count windows for epoch_zipf_theta;
  /// 0 disables the per-epoch pass.
  uint32_t epochs = 4;
};

util::StatusOr<TraceSummary> SummarizeTrace(const std::string& path);
util::StatusOr<TraceSummary> SummarizeTrace(const std::string& path,
                                            const SummarizeOptions& options);

}  // namespace cascache::trace

#endif  // CASCACHE_TRACE_TRACE_IO_H_
