#include "trace/object_catalog.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace cascache::trace {

util::Status ValidateCatalogModel(const CatalogModel& m) {
  const auto bad = [](const char* what) {
    return util::Status::InvalidArgument(std::string("catalog model: ") +
                                         what);
  };
  if (!std::isfinite(m.lognormal_mu) || !std::isfinite(m.lognormal_sigma) ||
      !std::isfinite(m.pareto_tail_prob) || !std::isfinite(m.pareto_scale) ||
      !std::isfinite(m.pareto_alpha)) {
    return bad("non-finite parameter");
  }
  if (m.lognormal_sigma < 0.0) return bad("lognormal_sigma must be >= 0");
  if (m.pareto_tail_prob < 0.0 || m.pareto_tail_prob > 1.0) {
    return bad("pareto_tail_prob must be in [0,1]");
  }
  if (m.pareto_tail_prob > 0.0 &&
      (m.pareto_scale <= 0.0 || m.pareto_alpha <= 0.0)) {
    return bad("pareto scale/alpha must be > 0");
  }
  if (m.min_size == 0 || m.min_size > m.max_size) {
    return bad("bad size bounds");
  }
  return util::Status::Ok();
}

ObjectId ObjectCatalog::Add(uint64_t size_bytes, ServerId server) {
  CASCACHE_CHECK(size_bytes > 0);
  CASCACHE_CHECK(!procedural_);
  sizes_.push_back(size_bytes);
  servers_.push_back(server);
  total_bytes_ += size_bytes;
  if (server >= num_servers_) num_servers_ = server + 1;
  return static_cast<ObjectId>(sizes_.size() - 1);
}

void ObjectCatalog::BuildProcedural(const CatalogModel& model,
                                    uint32_t num_objects,
                                    uint32_t num_servers) {
  CASCACHE_CHECK(sizes_.empty() && !procedural_);
  CASCACHE_CHECK(num_objects >= 1);
  CASCACHE_CHECK(num_servers >= 1);
  CASCACHE_CHECK(model.min_size > 0 && model.min_size <= model.max_size);
  model_ = model;
  proc_num_objects_ = num_objects;
  num_servers_ = num_servers;
  procedural_ = true;

  // Empirical quantile table: draw 2^16 sizes from the lognormal-body +
  // Pareto-tail law (the same sampling rule the materialized generator
  // applies per object) with a private Rng, then sort. size(id) indexes
  // it by hash, so the marginal size distribution of the procedural
  // catalog matches the materialized one to quantile-table resolution.
  util::Rng rng(model.seed);
  quantiles_.resize(size_t{1} << kQuantileBits);
  for (uint64_t& q : quantiles_) {
    double s = rng.NextBool(model.pareto_tail_prob)
                   ? rng.NextPareto(model.pareto_scale, model.pareto_alpha)
                   : rng.NextLogNormal(model.lognormal_mu,
                                       model.lognormal_sigma);
    s = std::min(static_cast<double>(model.max_size),
                 std::max(static_cast<double>(model.min_size), s));
    q = static_cast<uint64_t>(std::llround(s));
    if (q < model.min_size) q = model.min_size;
  }
  std::sort(quantiles_.begin(), quantiles_.end());

  // Exact total, one hash + one table load per object (~0.5 s at 10^8).
  total_bytes_ = 0;
  for (uint32_t id = 0; id < num_objects; ++id) {
    total_bytes_ += quantiles_[Hash(id) & kQuantileMask];
  }
}

}  // namespace cascache::trace
