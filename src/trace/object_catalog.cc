#include "trace/object_catalog.h"

namespace cascache::trace {

ObjectId ObjectCatalog::Add(uint64_t size_bytes, ServerId server) {
  CASCACHE_CHECK(size_bytes > 0);
  sizes_.push_back(size_bytes);
  servers_.push_back(server);
  total_bytes_ += size_bytes;
  if (server >= num_servers_) num_servers_ = server + 1;
  return static_cast<ObjectId>(sizes_.size() - 1);
}

}  // namespace cascache::trace
