#ifndef CASCACHE_TRACE_MAPPED_TRACE_H_
#define CASCACHE_TRACE_MAPPED_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "trace/object_catalog.h"
#include "util/status.h"

namespace cascache::trace {

/// Read-only memory-mapped view of a v2 or v3 binary trace (trace_io.h);
/// a v3 file's procedural catalog is regenerated from its 64-byte model
/// block at open. The
/// page-aligned request region is overlaid directly as a Request array
/// — no per-request copies, no decode pass — and the single mapping is
/// shared read-only by every parallel sweep cell. The kernel is advised
/// of the sequential access pattern (MADV_SEQUENTIAL + MADV_WILLNEED),
/// and consumed pages can be advised away (ReleaseUpTo) so a replay's
/// resident set stays O(1) in trace length.
///
/// v1 traces are not mmap-able: their request region starts at
/// 24 + 12*num_objects, which is not 8-byte aligned in general, so
/// overlaying doubles would be undefined behavior. Open() rejects them
/// with InvalidArgument; load v1 via ReadTrace (or rewrite it as v2
/// with ReadTrace + WriteTrace).
class MappedTrace {
 public:
  static util::StatusOr<std::unique_ptr<MappedTrace>> Open(
      const std::string& path);

  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;
  ~MappedTrace();

  const ObjectCatalog& catalog() const { return catalog_; }
  uint64_t num_requests() const { return num_requests_; }
  const std::string& path() const { return path_; }

  /// The whole request stream, straight out of the mapping. Seekable by
  /// construction: subspans address warm-up/measure splits and sweep
  /// cells by offset.
  RequestSpan requests() const {
    return RequestSpan(requests_, static_cast<size_t>(num_requests_));
  }

  /// Borrowed view for Simulator::Run. The view must not outlive this
  /// MappedTrace.
  WorkloadView View() const {
    return WorkloadView{&catalog_, requests(), {}};
  }

  /// Like View(), but wires WorkloadView::on_consumed to ReleaseUpTo so
  /// a sequential analytic replay keeps resident memory O(1) in trace
  /// length. Each call starts a new pass: the release high-water resets
  /// to 0, so consecutive sweep cells replaying the same mapping each
  /// release as they go. Released pages refault (from page cache or
  /// disk) if touched again, so don't interleave passes.
  WorkloadView StreamingView();

  /// Advises the kernel (MADV_DONTNEED) that all request pages below
  /// `request_index` are no longer needed, in multiples of
  /// kReleaseGranularityBytes. Thread-safe; purely advisory.
  void ReleaseUpTo(size_t request_index);

  /// One full streaming validation pass over the request region (object
  /// ids in range, timestamps monotonically non-decreasing) — the check
  /// ReadTrace performs eagerly. Releases pages as it scans so the pass
  /// itself stays O(1) resident. Intended for ingest-time checking;
  /// replay paths trust the mapping.
  util::Status Validate();

  /// Release granularity: consumed pages are dropped in 16 MiB steps so
  /// the advisory syscall stays rare.
  static constexpr size_t kReleaseGranularityBytes = 16 << 20;

 private:
  MappedTrace() = default;

  std::string path_;
  ObjectCatalog catalog_;
  void* map_ = nullptr;
  size_t map_bytes_ = 0;
  uint64_t request_offset_ = 0;
  uint64_t num_requests_ = 0;
  const Request* requests_ = nullptr;

  std::mutex release_mu_;
  size_t released_bytes_ = 0;  // Bytes of the request region already dropped.
};

}  // namespace cascache::trace

#endif  // CASCACHE_TRACE_MAPPED_TRACE_H_
