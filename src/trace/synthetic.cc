#include "trace/synthetic.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "trace/trace_io.h"
#include "util/random.h"
#include "util/zipf.h"

namespace cascache::trace {

namespace {

uint64_t SampleObjectSize(const WorkloadParams& p, util::Rng* rng) {
  double size;
  if (rng->NextBool(p.size_pareto_tail_prob)) {
    size = rng->NextPareto(p.size_pareto_scale, p.size_pareto_alpha);
  } else {
    size = rng->NextLogNormal(p.size_lognormal_mu, p.size_lognormal_sigma);
  }
  size = std::clamp(size, static_cast<double>(p.min_object_size),
                    static_cast<double>(p.max_object_size));
  return static_cast<uint64_t>(size);
}

util::Status ValidateParams(const WorkloadParams& params) {
  if (params.num_objects == 0) {
    return util::Status::InvalidArgument("num_objects must be > 0");
  }
  if (params.num_clients == 0 || params.num_servers == 0) {
    return util::Status::InvalidArgument("need clients and servers");
  }
  if (params.zipf_theta <= 0.0 || params.client_zipf_theta <= 0.0) {
    return util::Status::InvalidArgument("Zipf exponents must be > 0");
  }
  if (params.request_rate <= 0.0) {
    return util::Status::InvalidArgument("request_rate must be > 0");
  }
  if (params.min_object_size == 0 ||
      params.min_object_size > params.max_object_size) {
    return util::Status::InvalidArgument("bad object size bounds");
  }
  if (params.temporal_locality < 0.0 || params.temporal_locality > 1.0) {
    return util::Status::InvalidArgument("temporal_locality must be in [0,1]");
  }
  if (params.temporal_locality > 0.0 &&
      (params.temporal_window == 0 || params.temporal_mean_depth < 1.0)) {
    return util::Status::InvalidArgument("bad temporal locality parameters");
  }
  if (params.churn_swaps_per_hour < 0.0) {
    return util::Status::InvalidArgument("churn_swaps_per_hour must be >= 0");
  }
  CASCACHE_RETURN_IF_ERROR(ValidateWorkloadModel(params.model));
  if (params.model.enabled() && params.churn_swaps_per_hour > 0.0) {
    return util::Status::InvalidArgument(
        "churn_swaps_per_hour cannot combine with workload model "
        "components; use drift_mode instead");
  }
  if (params.model.drift_mode == DriftMode::kShuffle &&
      params.num_objects > kDriftShuffleMaxObjects) {
    return util::Status::InvalidArgument(
        "drift_mode=shuffle materializes a rank permutation and is "
        "limited to 2^24 objects; use drift_mode=rotate");
  }
  if (params.model.regions > params.num_objects && params.model.regional_bias > 0.0) {
    return util::Status::InvalidArgument("regions must be <= num_objects");
  }
  return util::Status::Ok();
}

/// Builds the procedural (hashed) catalog from the size-model fields.
/// Consumes no rng: the catalog is a pure function of the model block,
/// which is what trace format v3 persists.
void BuildProceduralCatalog(const WorkloadParams& params,
                            ObjectCatalog* catalog) {
  CatalogModel model;
  model.seed = params.seed;
  model.lognormal_mu = params.size_lognormal_mu;
  model.lognormal_sigma = params.size_lognormal_sigma;
  model.pareto_tail_prob = params.size_pareto_tail_prob;
  model.pareto_scale = params.size_pareto_scale;
  model.pareto_alpha = params.size_pareto_alpha;
  model.min_size = params.min_object_size;
  model.max_size = params.max_object_size;
  catalog->BuildProcedural(model, params.num_objects, params.num_servers);
}

// Objects: id == popularity rank; size and origin server independent of
// rank (no popularity-size correlation, consistent with measurement
// studies). Must be the first consumer of `rng` so that the in-RAM and
// streamed generators stay bit-identical.
void BuildCatalog(const WorkloadParams& params, util::Rng* rng,
                  ObjectCatalog* catalog) {
  for (uint32_t i = 0; i < params.num_objects; ++i) {
    const uint64_t size = SampleObjectSize(params, rng);
    const ServerId server =
        static_cast<ServerId>(rng->NextUint64(params.num_servers));
    catalog->Add(size, server);
  }
}

// Generates the request stream, calling emit(req) once per request in
// time order. The generator keeps only bounded state (temporal-locality
// ring, churn rank table), so the caller chooses between materializing
// the stream and writing it through.
template <typename Emit>
void EmitRequests(const WorkloadParams& params, util::Rng* rng, Emit&& emit) {
  const util::ZipfDistribution object_pop(params.num_objects,
                                          params.zipf_theta);
  const util::ZipfDistribution client_pop(params.num_clients,
                                          params.client_zipf_theta);

  // Client ranks are shuffled into ids so that "hot" clients are spread
  // over the id space (and hence over network attach points).
  std::vector<ClientId> client_of_rank(params.num_clients);
  for (uint32_t i = 0; i < params.num_clients; ++i) client_of_rank[i] = i;
  rng->Shuffle(&client_of_rank);

  // Popularity churn: rank r maps to object rank_to_object[r]; swap
  // events exchange two entries at Poisson times.
  const bool churning = params.churn_swaps_per_hour > 0.0;
  std::vector<ObjectId> rank_to_object;
  double next_churn = std::numeric_limits<double>::infinity();
  const double churn_rate = params.churn_swaps_per_hour / 3600.0;
  if (churning) {
    rank_to_object.resize(params.num_objects);
    for (uint32_t i = 0; i < params.num_objects; ++i) rank_to_object[i] = i;
    next_churn = rng->NextExponential(churn_rate);
  }

  // Temporal locality: ring buffer of the most recent object ids.
  const bool temporal = params.temporal_locality > 0.0;
  std::vector<ObjectId> recent;
  size_t recent_head = 0;
  const double recency_p = temporal ? 1.0 / params.temporal_mean_depth : 0.0;

  double now = 0.0;
  for (uint64_t r = 0; r < params.num_requests; ++r) {
    now += rng->NextExponential(params.request_rate);
    while (churning && next_churn <= now) {
      const uint32_t a =
          static_cast<uint32_t>(rng->NextUint64(params.num_objects));
      const uint32_t b =
          static_cast<uint32_t>(rng->NextUint64(params.num_objects));
      std::swap(rank_to_object[a], rank_to_object[b]);
      next_churn += rng->NextExponential(churn_rate);
    }

    Request req;
    req.time = now;
    req.client = client_of_rank[client_pop.Sample(rng)];

    bool picked = false;
    if (temporal && !recent.empty() &&
        rng->NextBool(params.temporal_locality)) {
      // Geometric stack depth, clamped to the filled window.
      uint64_t depth = 0;
      while (depth + 1 < recent.size() && !rng->NextBool(recency_p)) ++depth;
      const size_t idx =
          (recent_head + recent.size() - 1 - static_cast<size_t>(depth)) %
          recent.size();
      req.object = recent[idx];
      picked = true;
    }
    if (!picked) {
      const size_t rank = object_pop.Sample(rng);
      req.object =
          churning ? rank_to_object[rank] : static_cast<ObjectId>(rank);
    }

    if (temporal) {
      if (recent.size() < params.temporal_window) {
        recent.push_back(req.object);
        recent_head = 0;  // Head only matters once the ring is full.
      } else {
        recent[recent_head] = req.object;
        recent_head = (recent_head + 1) % recent.size();
      }
    }
    emit(req);
  }
}

}  // namespace

util::StatusOr<Workload> GenerateWorkload(const WorkloadParams& params) {
  CASCACHE_RETURN_IF_ERROR(ValidateParams(params));
  util::Rng rng(params.seed);
  Workload workload;
  if (params.procedural_catalog) {
    BuildProceduralCatalog(params, &workload.catalog);
  } else {
    BuildCatalog(params, &rng, &workload.catalog);
  }
  workload.requests.reserve(params.num_requests);
  if (params.model.enabled()) {
    EmitModelRequests(params, &rng, [&](const Request& req) {
      workload.requests.push_back(req);
    });
  } else {
    EmitRequests(params, &rng, [&](const Request& req) {
      workload.requests.push_back(req);
    });
  }
  return workload;
}

util::Status GenerateWorkloadToFile(const WorkloadParams& params,
                                    const std::string& path) {
  CASCACHE_RETURN_IF_ERROR(ValidateParams(params));
  util::Rng rng(params.seed);
  ObjectCatalog catalog;
  if (params.procedural_catalog) {
    BuildProceduralCatalog(params, &catalog);
  } else {
    BuildCatalog(params, &rng, &catalog);
  }

  CASCACHE_ASSIGN_OR_RETURN(
      std::unique_ptr<TraceWriter> writer,
      TraceWriter::Create(path, catalog, params.num_requests));

  // Buffer a bounded block of requests between Append calls; 64Ki
  // records = 1 MiB regardless of trace length.
  constexpr size_t kBlock = 64 * 1024;
  std::vector<Request> block;
  block.reserve(kBlock);
  util::Status write_status = util::Status::Ok();
  const auto sink = [&](const Request& req) {
    if (!write_status.ok()) return;
    block.push_back(req);
    if (block.size() == kBlock) {
      write_status = writer->Append(block.data(), block.size());
      block.clear();
    }
  };
  if (params.model.enabled()) {
    EmitModelRequests(params, &rng, sink);
  } else {
    EmitRequests(params, &rng, sink);
  }
  CASCACHE_RETURN_IF_ERROR(write_status);
  if (!block.empty()) {
    CASCACHE_RETURN_IF_ERROR(writer->Append(block.data(), block.size()));
  }
  return writer->Close();
}

std::vector<uint64_t> CountAccesses(const Workload& workload) {
  std::vector<uint64_t> counts(workload.catalog.num_objects(), 0);
  for (const Request& req : workload.requests) {
    CASCACHE_CHECK(req.object < counts.size());
    ++counts[req.object];
  }
  return counts;
}

}  // namespace cascache::trace
