#include "trace/mapped_trace.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "trace/trace_io.h"

namespace cascache::trace {

namespace {

constexpr char kMagic[4] = {'C', 'C', 'T', 'R'};
constexpr uint64_t kCatalogEntryBytes = 12;  // uint64 size + uint32 server

/// How much of the request region to fault in eagerly (MADV_WILLNEED):
/// enough to hide the initial read latency without distorting the
/// resident-set story. One release granule: prefetching more shows up
/// permanently in VmHWM (the scale-smoke gate compares peak RSS across
/// trace lengths), while MADV_SEQUENTIAL's doubled readahead already
/// keeps the streaming replay fed past this point.
constexpr size_t kWillNeedBytes = MappedTrace::kReleaseGranularityBytes;

template <typename T>
T LoadUnaligned(const unsigned char* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

}  // namespace

MappedTrace::~MappedTrace() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

util::StatusOr<std::unique_ptr<MappedTrace>> MappedTrace::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return util::Status::IoError("cannot open for read: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::IoError("fstat failed: " + path);
  }
  const uint64_t file_bytes = static_cast<uint64_t>(st.st_size);
  if (file_bytes < kTraceV2HeaderBytes) {
    ::close(fd);
    return util::Status::IoError("truncated header: " + path);
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(file_bytes), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  ::close(fd);  // The mapping keeps its own reference.
  if (map == MAP_FAILED) {
    return util::Status::IoError("mmap failed: " + path);
  }
  std::unique_ptr<MappedTrace> trace(new MappedTrace());
  trace->path_ = path;
  trace->map_ = map;
  trace->map_bytes_ = static_cast<size_t>(file_bytes);

  const unsigned char* base = static_cast<const unsigned char*>(map);
  if (std::memcmp(base, kMagic, 4) != 0) {
    return util::Status::IoError("bad magic in trace file: " + path);
  }
  const uint32_t version = LoadUnaligned<uint32_t>(base + 4);
  if (version == kTraceVersion1) {
    return util::Status::InvalidArgument(
        "trace is v1, which is not mmap-able (request region unaligned); "
        "load it with ReadTrace or rewrite it as v2: " + path);
  }
  if (version != kTraceVersion2 && version != kTraceVersion3) {
    return util::Status::InvalidArgument("unsupported trace version");
  }
  const uint32_t num_objects = LoadUnaligned<uint32_t>(base + 8);
  const uint32_t num_servers = LoadUnaligned<uint32_t>(base + 12);
  const uint64_t num_requests = LoadUnaligned<uint64_t>(base + 16);
  const uint64_t request_offset = LoadUnaligned<uint64_t>(base + 24);

  const uint64_t catalog_bytes =
      version == kTraceVersion3 ? sizeof(CatalogModel)
                                : kCatalogEntryBytes * uint64_t{num_objects};
  const uint64_t catalog_end = kTraceV2HeaderBytes + catalog_bytes;
  if (file_bytes < catalog_end) {
    return util::Status::IoError("truncated catalog: " + path);
  }
  if (request_offset % kTraceRequestAlign != 0) {
    return util::Status::InvalidArgument(
        "request region not page-aligned: " + path);
  }
  if (request_offset < catalog_end) {
    return util::Status::InvalidArgument(
        "request region overlaps catalog: " + path);
  }
  if (file_bytes < request_offset + sizeof(Request) * num_requests) {
    return util::Status::IoError(
        "trace file shorter than its header claims (truncated mapping): " +
        path);
  }

  if (version == kTraceVersion3) {
    // Procedural catalog: regenerate from the 64-byte model block.
    const CatalogModel model =
        LoadUnaligned<CatalogModel>(base + kTraceV2HeaderBytes);
    CASCACHE_RETURN_IF_ERROR(ValidateCatalogModel(model));
    if (num_objects == 0 || num_servers == 0) {
      return util::Status::InvalidArgument(
          "v3 trace needs objects and servers: " + path);
    }
    trace->catalog_.BuildProcedural(model, num_objects, num_servers);
  } else {
    const unsigned char* entry = base + kTraceV2HeaderBytes;
    for (uint32_t i = 0; i < num_objects; ++i, entry += kCatalogEntryBytes) {
      const uint64_t size = LoadUnaligned<uint64_t>(entry);
      const uint32_t server = LoadUnaligned<uint32_t>(entry + 8);
      if (size == 0) {
        return util::Status::InvalidArgument("zero-size object in trace");
      }
      if (server >= num_servers) {
        return util::Status::InvalidArgument("server id out of range");
      }
      trace->catalog_.Add(size, server);
    }
  }

  trace->request_offset_ = request_offset;
  trace->num_requests_ = num_requests;
  trace->requests_ =
      reinterpret_cast<const Request*>(base + request_offset);

  // Advisory only; failures are not actionable.
  unsigned char* region =
      static_cast<unsigned char*>(map) + request_offset;
  const size_t region_bytes =
      static_cast<size_t>(sizeof(Request) * num_requests);
  if (region_bytes > 0) {
    ::madvise(region, region_bytes, MADV_SEQUENTIAL);
    ::madvise(region, std::min(region_bytes, kWillNeedBytes), MADV_WILLNEED);
  }
  return trace;
}

WorkloadView MappedTrace::StreamingView() {
  // A new streaming pass restarts from request 0 (e.g. the next sweep
  // cell replaying the same mapping), so the release high-water must
  // restart with it — otherwise the previous pass's final ReleaseUpTo
  // pins the mark at the region's end and the new pass re-faults every
  // page without ever dropping one, making resident memory grow with
  // trace length again (caught by scripts/check_scale_smoke.sh).
  {
    std::lock_guard<std::mutex> lock(release_mu_);
    released_bytes_ = 0;
  }
  WorkloadView view = View();
  view.on_consumed = [this](size_t index) { ReleaseUpTo(index); };
  return view;
}

void MappedTrace::ReleaseUpTo(size_t request_index) {
  const uint64_t consumed_bytes =
      std::min<uint64_t>(request_index, num_requests_) * sizeof(Request);
  const size_t target = static_cast<size_t>(
      consumed_bytes / kReleaseGranularityBytes * kReleaseGranularityBytes);
  std::lock_guard<std::mutex> lock(release_mu_);
  if (target <= released_bytes_) return;
  unsigned char* start = static_cast<unsigned char*>(map_) +
                         request_offset_ + released_bytes_;
  // request_offset_ is a multiple of the page size and the granularity
  // is a multiple of the page size, so start/length are page-aligned.
  ::madvise(start, target - released_bytes_, MADV_DONTNEED);
  released_bytes_ = target;
}

util::Status MappedTrace::Validate() {
  double prev_time = -1.0;
  const uint32_t num_objects = catalog_.num_objects();
  constexpr uint64_t kScanBlock = 1 << 20;  // Requests between releases.
  for (uint64_t i = 0; i < num_requests_; ++i) {
    const Request& req = requests_[i];
    if (req.object >= num_objects) {
      return util::Status::InvalidArgument("object id out of range");
    }
    if (req.time < prev_time) {
      return util::Status::InvalidArgument(
          "request timestamps not sorted in trace");
    }
    prev_time = req.time;
    if ((i + 1) % kScanBlock == 0) {
      ReleaseUpTo(static_cast<size_t>(i + 1));
    }
  }
  ReleaseUpTo(static_cast<size_t>(num_requests_));
  return util::Status::Ok();
}

}  // namespace cascache::trace
