#include "sim/event_trace.h"

#include <algorithm>
#include <cstdio>

namespace cascache::sim {

namespace {

/// SplitMix64 finalizer over (seed, index): a full-avalanche hash, so
/// consecutive request indices map to independent sampling decisions.
uint64_t MixSampleHash(uint64_t seed, uint64_t index) {
  uint64_t z = seed + (index + 1) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void AppendDouble(const char* fmt, double v, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  *out += buf;
}

}  // namespace

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kRequest:
      return "request";
    case TraceEventType::kHit:
      return "hit";
    case TraceEventType::kOrigin:
      return "origin";
    case TraceEventType::kMiss:
      return "miss";
    case TraceEventType::kExpired:
      return "expired";
    case TraceEventType::kInvalidated:
      return "invalidated";
    case TraceEventType::kStaleServe:
      return "stale_serve";
    case TraceEventType::kPlacement:
      return "placement";
    case TraceEventType::kPlacementRejected:
      return "placement_rejected";
    case TraceEventType::kEviction:
      return "eviction";
    case TraceEventType::kDCacheHit:
      return "dcache_hit";
    case TraceEventType::kNodeCrash:
      return "node_crash";
    case TraceEventType::kReroute:
      return "reroute";
    case TraceEventType::kRetry:
      return "retry";
    case TraceEventType::kRequestFailed:
      return "request_failed";
    case TraceEventType::kFaultDegraded:
      return "fault_degraded";
    case TraceEventType::kQueueDepth:
      return "queue_depth";
    case TraceEventType::kShed:
      return "shed";
    case TraceEventType::kSiblingProbe:
      return "sibling_probe";
    case TraceEventType::kSiblingServe:
      return "sibling_serve";
    case TraceEventType::kDiskDegraded:
      return "disk_degraded";
    case TraceEventType::kPromotion:
      return "promotion";
    case TraceEventType::kDemotion:
      return "demotion";
  }
  return "unknown";
}

EventTrace::EventTrace(const EventTraceOptions& options) : options_(options) {
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  options_.sampling_rate = std::clamp(options_.sampling_rate, 0.0, 1.0);
  sample_all_ = options_.sampling_rate >= 1.0;
  // rate * 2^64, computed without overflowing uint64_t.
  threshold_ = static_cast<uint64_t>(options_.sampling_rate *
                                     18446744073709551616.0);
  ring_.reserve(std::min<size_t>(options_.ring_capacity, 4096));
}

bool EventTrace::SampleRequest(uint64_t request_index) const {
  if (sample_all_) return true;
  return MixSampleHash(options_.seed, request_index) < threshold_;
}

void EventTrace::Emit(const TraceEvent& event) {
  ++emitted_;
  if (ring_.size() < options_.ring_capacity) {
    ring_.push_back(event);
    next_ = ring_.size() % options_.ring_capacity;
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % options_.ring_capacity;
}

uint64_t EventTrace::dropped() const { return emitted_ - ring_.size(); }

std::vector<TraceEvent> EventTrace::Records() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Once the ring has wrapped, next_ points at the oldest record.
  const size_t start = ring_.size() < options_.ring_capacity ? 0 : next_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void EventTrace::AppendJsonFields(const TraceEvent& event, std::string* out) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "\"req\":%llu,",
                static_cast<unsigned long long>(event.request_index));
  *out += buf;
  *out += "\"t\":";
  AppendDouble("%.6f", event.time, out);
  *out += ",\"type\":\"";
  *out += TraceEventTypeName(event.type);
  std::snprintf(buf, sizeof(buf),
                "\",\"node\":%d,\"level\":%d,\"object\":%llu,\"size\":%llu,",
                static_cast<int>(event.node), static_cast<int>(event.level),
                static_cast<unsigned long long>(event.object),
                static_cast<unsigned long long>(event.size_bytes));
  *out += buf;
  *out += "\"value\":";
  AppendDouble("%.6g", event.value, out);
}

std::string EventTrace::ToJsonLine(const TraceEvent& event) {
  std::string line = "{";
  AppendJsonFields(event, &line);
  line += "}";
  return line;
}

util::Status EventTrace::WriteJsonl(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  bool ok = true;
  for (const TraceEvent& event : Records()) {
    const std::string line = ToJsonLine(event) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), file) != line.size()) {
      ok = false;
      break;
    }
  }
  if (std::fclose(file) != 0) ok = false;
  if (!ok) return util::Status::IoError("short write to " + path);
  return util::Status::Ok();
}

void EventTrace::Clear() {
  ring_.clear();
  next_ = 0;
  emitted_ = 0;
}

}  // namespace cascache::sim
