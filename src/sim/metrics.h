#ifndef CASCACHE_SIM_METRICS_H_
#define CASCACHE_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.h"

namespace cascache::sim {

/// Outcome of one simulated request, in the units the paper reports.
struct RequestMetrics {
  uint64_t size_bytes = 0;
  /// Access latency: summed size-scaled link delays from the requesting
  /// cache to the serving node (seconds).
  double latency = 0.0;
  /// Hops traveled before hitting the target (Figure 8a).
  int hops = 0;
  /// Served by a cache (true) or the origin server (false).
  bool cache_hit = false;
  /// Bytes read from caches serving this request (== size on cache hit).
  uint64_t read_bytes = 0;
  /// Bytes written into caches by placement decisions for this request.
  uint64_t write_bytes = 0;
  /// Number of cache insertions performed.
  int insertions = 0;
  /// Coherency: the serving copy was behind the origin version (only
  /// possible under CoherencyProtocol::kNone).
  bool stale_hit = false;
  /// Copies discarded on the request path because their TTL expired.
  int copies_expired = 0;
  /// Copies discarded because they were behind the origin version
  /// (CoherencyProtocol::kInvalidation).
  int copies_invalidated = 0;
  /// Protocol bytes the scheme piggybacked on the ascending request
  /// message (paper §2.3: the (f_i, m_i, l_i) triples; 0 for schemes
  /// that decide locally).
  uint64_t request_msg_bytes = 0;
  /// Protocol bytes carried by the descending response message (penalty
  /// counter + placement bitmap).
  uint64_t response_msg_bytes = 0;
  // --- Fault plane (all zero when fault injection is off). ----------------
  /// Timed-out attempts that were retried before this request resolved.
  int retries = 0;
  /// The request never reached its server (timed out max_retries times);
  /// recorded with the accumulated waiting time as its latency.
  bool failed = false;
  /// The request took a detour around a failed link or node.
  bool rerouted = false;
  /// Node crash/restart cycles applied while processing this request.
  int crashes_applied = 0;
  /// Hops where the scheme fell back to its no-state behavior because a
  /// node was down or a message block was lost.
  int degraded = 0;
  // --- Contention (all zero under the analytic scheduling policy). --------
  /// The request was refused by an overloaded node queue and never
  /// served; its latency is the time it spent queueing up to the refusal.
  bool shed = false;
  /// Placement decisions dropped on the descent because a node's store
  /// queue was full (the request itself was still served).
  int placements_shed = 0;
  /// Seconds this request spent waiting in node and link queues (service
  /// and transmission time excluded).
  double queue_wait = 0.0;
  // --- Tiered nodes & sibling cooperation (all zero when off). ------------
  /// Served from the serving node's RAM tier (tiered nodes only; at most
  /// one of ram_hit/disk_hit is set, and one is whenever a tiered node
  /// serves).
  bool ram_hit = false;
  /// Served from the serving node's disk tier.
  bool disk_hit = false;
  /// Objects promoted into a RAM tier while serving this request.
  int promotions = 0;
  /// Objects dropped out of a RAM tier (RAM eviction by a promotion, or
  /// the inclusive drop when the disk copy was evicted).
  int demotions = 0;
  /// ICP-style sibling probes issued on this request's behalf.
  int sibling_probes = 0;
  /// The request was served by a sibling of a node on its path
  /// (cache_hit is also set; hit_index stays the probing hop).
  bool sibling_hit = false;
  /// Hops degraded by a disk outage: a tiered node down to RAM-only /
  /// proxy-only could not serve or store there (disjoint from `degraded`,
  /// which counts message/crash fallbacks).
  int disk_degraded = 0;
};

/// Counters one cache node accumulates over the measured phase of a run
/// (the observability layer's per-node view; aggregates in
/// MetricsSummary remain the paper's reported quantities). Every field
/// is a plain event count except the two byte totals.
struct NodeCounters {
  uint64_t hits = 0;          ///< Requests this node served.
  uint64_t misses = 0;        ///< Requests that passed through unserved.
  uint64_t evictions = 0;     ///< Victims pushed out by placements.
  uint64_t placements = 0;    ///< Copies accepted into the store.
  uint64_t placements_rejected = 0;  ///< Placement attempts declined.
  uint64_t expirations = 0;   ///< Copies dropped on TTL expiry.
  uint64_t invalidations = 0;  ///< Copies dropped by invalidations.
  uint64_t stale_serves = 0;  ///< Hits that served a stale version.
  uint64_t dcache_hits = 0;   ///< Ascent lookups finding a d-cache entry.
  uint64_t bytes_served = 0;  ///< Bytes read out of this node's store.
  uint64_t bytes_cached = 0;  ///< Bytes written into this node's store.
  // --- Fault plane (all zero when fault injection is off). ----------------
  uint64_t crashes = 0;       ///< Cold restarts applied to this node.
  uint64_t retries = 0;       ///< Retries of requests entering here.
  uint64_t reroutes = 0;      ///< Detoured requests entering here.
  uint64_t degraded = 0;      ///< Degraded scheme decisions at this node.
  // --- Contention (all zero under the analytic scheduling policy). --------
  uint64_t sheds = 0;         ///< Requests refused by this node's queue.
  uint64_t store_sheds = 0;   ///< Placement decisions its queue dropped.
  /// Peak operations-ahead observed at an admission here. A gauge, not a
  /// count: operator+= takes the max, so rollups report the deepest
  /// queue seen anywhere in the rolled-up set.
  uint64_t max_queue_depth = 0;
  // --- Tiered nodes & sibling cooperation (all zero when off). ------------
  /// Serves out of this node's RAM tier. On a tiered node,
  /// ram_hits + disk_hits == hits.
  uint64_t ram_hits = 0;
  uint64_t disk_hits = 0;     ///< Serves out of this node's disk tier.
  uint64_t promotions = 0;    ///< Disk serves copied into the RAM tier.
  uint64_t demotions = 0;     ///< Objects dropped out of the RAM tier.
  uint64_t sibling_probes = 0;  ///< Probes this node sent to its siblings.
  uint64_t sibling_serves = 0;  ///< Of `hits`: serves for a sibling's probe.
  uint64_t disk_degraded = 0;  ///< Serves/stores lost to a disk outage here.

  /// Requests that consulted this node (every hop either hits or misses).
  uint64_t requests_seen() const { return hits + misses; }

  NodeCounters& operator+=(const NodeCounters& other);
};

/// Aggregated results of a run, matching the paper's evaluation metrics.
struct MetricsSummary {
  uint64_t requests = 0;
  double avg_latency = 0.0;          ///< Figure 6a/9a (seconds).
  double avg_response_ratio = 0.0;   ///< Figure 6b/9b (seconds per MB).
  double byte_hit_ratio = 0.0;       ///< Figure 7a/10a.
  double hit_ratio = 0.0;            ///< Request (count) hit ratio.
  double avg_traffic_byte_hops = 0.0;  ///< Figure 7b (byte*hops).
  double avg_hops = 0.0;             ///< Figure 8a.
  double avg_load_bytes = 0.0;       ///< Figure 8b/10b: (read+write)/req.
  double read_load_share = 0.0;      ///< Read fraction of total load.
  double avg_write_bytes = 0.0;
  uint64_t total_bytes_requested = 0;
  uint64_t bytes_from_caches = 0;
  /// Coherency: fraction of cache hits that served a stale version.
  double stale_hit_ratio = 0.0;
  uint64_t copies_expired = 0;
  uint64_t copies_invalidated = 0;
  /// Protocol overhead (paper §2.3-2.4), reported uniformly for every
  /// scheme: mean piggybacked bytes per request on the ascent / descent.
  double avg_request_msg_bytes = 0.0;
  double avg_response_msg_bytes = 0.0;
  /// avg_request_msg_bytes + avg_response_msg_bytes.
  double avg_message_bytes = 0.0;
  /// Raw event totals behind the ratios above, exposed so per-node
  /// counters can be reconciled against the aggregates exactly (no
  /// round-tripping through divisions).
  uint64_t cache_hits = 0;
  uint64_t stale_hits = 0;
  uint64_t insertions = 0;
  uint64_t bytes_written = 0;
  /// Fault plane totals (all zero when fault injection is off). Each
  /// reconciles integer-exactly with the per-node counters: crashes are
  /// counted at the crashed node, retries and reroutes at the requesting
  /// node, degraded decisions at the affected hop.
  uint64_t retries = 0;
  uint64_t failed_requests = 0;
  uint64_t reroutes = 0;
  uint64_t crashes_applied = 0;
  uint64_t degraded_decisions = 0;
  /// Contention totals (all zero under the analytic policy). Each
  /// reconciles integer-exactly with the per-node counters: a shed
  /// request is counted at the refusing node, a shed placement at the
  /// node whose store queue dropped it, and bytes_read — the read side of
  /// the cache load — equals the per-node bytes_served total (the write
  /// side, bytes_written, was already exact).
  uint64_t shed_requests = 0;
  uint64_t shed_placements = 0;
  /// requests - failed_requests - shed_requests: requests that actually
  /// received their object.
  uint64_t served_requests = 0;
  uint64_t bytes_read = 0;
  double avg_queue_wait = 0.0;
  /// Tier & sibling totals (all zero when tiers/siblings are off). Each
  /// reconciles integer-exactly with the per-node counters: ram/disk hits
  /// and promotions at the serving node, demotions at the node whose RAM
  /// tier shrank, sibling probes at the probing node, sibling hits at the
  /// serving sibling (Σ sibling_serves), disk_degraded at the outaged
  /// node. On runs where every node is tiered,
  /// ram_hits + disk_hits == cache_hits.
  uint64_t ram_hits = 0;
  uint64_t disk_hits = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
  uint64_t sibling_probes = 0;
  uint64_t sibling_hits = 0;
  uint64_t disk_degraded = 0;

  std::string ToString() const;
};

/// Accumulates per-request metrics into the paper's aggregate measures.
/// The simulator skips recording during the warm-up half of the trace.
class MetricsCollector {
 public:
  /// Folds one request into the aggregates. Inline: it runs once per
  /// measured request, and its Welford updates overlap with the caller's
  /// tail when the compiler can see through the call.
  void Record(const RequestMetrics& metrics) {
    ++requests_;
    latency_.Add(metrics.latency);
    response_ratio_.Add(metrics.latency /
                        (static_cast<double>(metrics.size_bytes) /
                         kBytesPerMb));
    hops_.Add(static_cast<double>(metrics.hops));
    traffic_.Add(static_cast<double>(metrics.size_bytes) *
                 static_cast<double>(metrics.hops));
    total_bytes_ += metrics.size_bytes;
    if (metrics.cache_hit) {
      ++hits_;
      hit_bytes_ += metrics.size_bytes;
    }
    read_bytes_ += metrics.read_bytes;
    write_bytes_ += metrics.write_bytes;
    if (metrics.stale_hit) ++stale_hits_;
    copies_expired_ += static_cast<uint64_t>(metrics.copies_expired);
    copies_invalidated_ += static_cast<uint64_t>(metrics.copies_invalidated);
    request_msg_bytes_ += metrics.request_msg_bytes;
    response_msg_bytes_ += metrics.response_msg_bytes;
    insertions_ += static_cast<uint64_t>(metrics.insertions);
    retries_ += static_cast<uint64_t>(metrics.retries);
    if (metrics.failed) ++failed_requests_;
    if (metrics.rerouted) ++reroutes_;
    crashes_applied_ += static_cast<uint64_t>(metrics.crashes_applied);
    degraded_decisions_ += static_cast<uint64_t>(metrics.degraded);
    if (metrics.shed) ++shed_requests_;
    shed_placements_ += static_cast<uint64_t>(metrics.placements_shed);
    queue_wait_sum_ += metrics.queue_wait;
    if (metrics.ram_hit) ++ram_hits_;
    if (metrics.disk_hit) ++disk_hits_;
    promotions_ += static_cast<uint64_t>(metrics.promotions);
    demotions_ += static_cast<uint64_t>(metrics.demotions);
    sibling_probes_ += static_cast<uint64_t>(metrics.sibling_probes);
    if (metrics.sibling_hit) ++sibling_hits_;
    disk_degraded_ += static_cast<uint64_t>(metrics.disk_degraded);
  }

  /// Block-accumulation state for the batched replay (ROADMAP item 1:
  /// the per-request Record() call left ~18 read-modify-write member
  /// updates per request as the remaining metrics cost). Integer-only by
  /// design: integer addition is associative, so deferring these to one
  /// FlushBlock() is bit-identical, while every order-sensitive float
  /// (the Welford stats, the queue-wait sum) must keep hitting the
  /// collector per request in trace order. The Welford divisions
  /// themselves cannot be batched without changing results — the golden
  /// CSV pins their per-request rounding — so batching recovers the
  /// bookkeeping around them, not the divisions.
  struct BlockStats {
    uint64_t requests = 0;
    uint64_t hits = 0;
    uint64_t total_bytes = 0;
    uint64_t hit_bytes = 0;
    uint64_t read_bytes = 0;
    uint64_t write_bytes = 0;
    uint64_t stale_hits = 0;
    uint64_t copies_expired = 0;
    uint64_t copies_invalidated = 0;
    uint64_t request_msg_bytes = 0;
    uint64_t response_msg_bytes = 0;
    uint64_t insertions = 0;
    uint64_t retries = 0;
    uint64_t failed = 0;
    uint64_t reroutes = 0;
    uint64_t crashes = 0;
    uint64_t degraded = 0;
    uint64_t shed_requests = 0;
    uint64_t shed_placements = 0;
    uint64_t ram_hits = 0;
    uint64_t disk_hits = 0;
    uint64_t promotions = 0;
    uint64_t demotions = 0;
    uint64_t sibling_probes = 0;
    uint64_t sibling_hits = 0;
    uint64_t disk_degraded = 0;
  };

  /// Streams one request into an open block: the order-sensitive stats
  /// update the collector directly (same operation sequence as Record()),
  /// the integer counters accumulate in `acc` for a later FlushBlock().
  /// RecordInBlock(m, &acc) ... FlushBlock(acc) == Record(m) ... exactly,
  /// to the bit. Inline for the same reason Record() is.
  void RecordInBlock(const RequestMetrics& metrics, BlockStats* acc) {
    ++acc->requests;
    latency_.Add(metrics.latency);
    response_ratio_.Add(metrics.latency /
                        (static_cast<double>(metrics.size_bytes) /
                         kBytesPerMb));
    hops_.Add(static_cast<double>(metrics.hops));
    traffic_.Add(static_cast<double>(metrics.size_bytes) *
                 static_cast<double>(metrics.hops));
    queue_wait_sum_ += metrics.queue_wait;
    acc->total_bytes += metrics.size_bytes;
    if (metrics.cache_hit) {
      ++acc->hits;
      acc->hit_bytes += metrics.size_bytes;
    }
    acc->read_bytes += metrics.read_bytes;
    acc->write_bytes += metrics.write_bytes;
    if (metrics.stale_hit) ++acc->stale_hits;
    acc->copies_expired += static_cast<uint64_t>(metrics.copies_expired);
    acc->copies_invalidated +=
        static_cast<uint64_t>(metrics.copies_invalidated);
    acc->request_msg_bytes += metrics.request_msg_bytes;
    acc->response_msg_bytes += metrics.response_msg_bytes;
    acc->insertions += static_cast<uint64_t>(metrics.insertions);
    acc->retries += static_cast<uint64_t>(metrics.retries);
    if (metrics.failed) ++acc->failed;
    if (metrics.rerouted) ++acc->reroutes;
    acc->crashes += static_cast<uint64_t>(metrics.crashes_applied);
    acc->degraded += static_cast<uint64_t>(metrics.degraded);
    if (metrics.shed) ++acc->shed_requests;
    acc->shed_placements += static_cast<uint64_t>(metrics.placements_shed);
    if (metrics.ram_hit) ++acc->ram_hits;
    if (metrics.disk_hit) ++acc->disk_hits;
    acc->promotions += static_cast<uint64_t>(metrics.promotions);
    acc->demotions += static_cast<uint64_t>(metrics.demotions);
    acc->sibling_probes += static_cast<uint64_t>(metrics.sibling_probes);
    if (metrics.sibling_hit) ++acc->sibling_hits;
    acc->disk_degraded += static_cast<uint64_t>(metrics.disk_degraded);
  }

  /// Folds an accumulated block's integer totals into the aggregates.
  void FlushBlock(const BlockStats& acc);

  /// Folds a contiguous block of requests at once: RecordInBlock over the
  /// batch plus one FlushBlock. Bit-identical to `count` Record() calls.
  void RecordBlock(const RequestMetrics* batch, size_t count);

  void Reset();

  MetricsSummary Summary() const;

  const util::RunningStat& latency_stat() const { return latency_; }
  const util::RunningStat& hops_stat() const { return hops_; }

  // --- Per-node counters (observability layer) ----------------------------

  /// (Re)allocates zeroed per-node counters, indexed by NodeId. Call
  /// after Reset(): Reset() discards the node slots along with the
  /// aggregates.
  void ResetNodes(int num_nodes);

  /// Raw counter array for hot-path emit points; nullptr until
  /// ResetNodes() allocates the slots.
  NodeCounters* node_counters_data() {
    return node_counters_.empty() ? nullptr : node_counters_.data();
  }
  const std::vector<NodeCounters>& node_counters() const {
    return node_counters_;
  }

  /// Sum of all per-node counters.
  NodeCounters NodeTotals() const;

 private:
  static constexpr double kBytesPerMb = 1024.0 * 1024.0;

  util::RunningStat latency_;
  util::RunningStat response_ratio_;
  util::RunningStat hops_;
  util::RunningStat traffic_;
  uint64_t requests_ = 0;
  uint64_t hits_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t hit_bytes_ = 0;
  uint64_t read_bytes_ = 0;
  uint64_t write_bytes_ = 0;
  uint64_t stale_hits_ = 0;
  uint64_t copies_expired_ = 0;
  uint64_t copies_invalidated_ = 0;
  uint64_t request_msg_bytes_ = 0;
  uint64_t response_msg_bytes_ = 0;
  uint64_t insertions_ = 0;
  uint64_t retries_ = 0;
  uint64_t failed_requests_ = 0;
  uint64_t reroutes_ = 0;
  uint64_t crashes_applied_ = 0;
  uint64_t degraded_decisions_ = 0;
  uint64_t shed_requests_ = 0;
  uint64_t shed_placements_ = 0;
  double queue_wait_sum_ = 0.0;
  uint64_t ram_hits_ = 0;
  uint64_t disk_hits_ = 0;
  uint64_t promotions_ = 0;
  uint64_t demotions_ = 0;
  uint64_t sibling_probes_ = 0;
  uint64_t sibling_hits_ = 0;
  uint64_t disk_degraded_ = 0;
  std::vector<NodeCounters> node_counters_;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_METRICS_H_
