#include "sim/message.h"

#include <cstdio>

namespace cascache::sim {

std::string MessageContext::DebugString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "object=%llu size=%llu now=%.6f path_len=%zu hit_index=%d "
      "req{hop=%d payload=%llu} resp{payload=%llu penalty=%.6g}",
      static_cast<unsigned long long>(object),
      static_cast<unsigned long long>(size), now,
      path == nullptr ? 0 : path->size(), response.hit_index, request.hop,
      static_cast<unsigned long long>(request.payload_bytes),
      static_cast<unsigned long long>(response.payload_bytes),
      response.penalty);
  return buf;
}

}  // namespace cascache::sim
