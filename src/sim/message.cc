#include "sim/message.h"

#include <cstdio>

#include "sim/event_trace.h"

namespace cascache::sim {

void MessageContext::EmitNodeEvent(TraceEventType type,
                                   topology::NodeId node_id,
                                   double value) const {
  TraceEvent event;
  event.request_index = telemetry.request_index;
  event.time = now;
  event.type = type;
  event.node = node_id;
  event.level = NodeLevel(node_id);
  event.object = object;
  event.size_bytes = size;
  event.value = value;
  telemetry.trace->Emit(event);
}

void MessageContext::EmitPlacementTrace(
    topology::NodeId node_id, trace::ObjectId object_id, uint64_t bytes,
    const std::vector<trace::ObjectId>& evicted) const {
  TraceEvent event;
  event.request_index = telemetry.request_index;
  event.time = now;
  event.type = TraceEventType::kPlacement;
  event.node = node_id;
  event.level = NodeLevel(node_id);
  event.object = object_id;
  event.size_bytes = bytes;
  event.value = response.penalty;
  telemetry.trace->Emit(event);
  for (trace::ObjectId victim : evicted) {
    TraceEvent ev = event;
    ev.type = TraceEventType::kEviction;
    ev.object = victim;
    ev.size_bytes = 0;  // The store has already forgotten the victim size.
    ev.value = static_cast<double>(evicted.size());
    telemetry.trace->Emit(ev);
  }
}

void MessageContext::EmitPlacementRejectedTrace(
    topology::NodeId node_id) const {
  EmitNodeEvent(TraceEventType::kPlacementRejected, node_id, 0.0);
}

void MessageContext::EmitDCacheHitTrace(topology::NodeId node_id) const {
  EmitNodeEvent(TraceEventType::kDCacheHit, node_id, 0.0);
}

void MessageContext::EmitDegradedTrace(topology::NodeId node_id,
                                       int hop) const {
  EmitNodeEvent(TraceEventType::kFaultDegraded, node_id,
                static_cast<double>(hop));
}

void MessageContext::EmitShedTrace(topology::NodeId node_id,
                                   uint32_t depth) const {
  EmitNodeEvent(TraceEventType::kShed, node_id, static_cast<double>(depth));
}

void MessageContext::EmitTierServeTrace(
    topology::NodeId node_id, const CacheNode::TierServe& tier) const {
  if (tier.promoted) {
    EmitNodeEvent(TraceEventType::kPromotion, node_id,
                  static_cast<double>(tier.demotions));
  }
  if (!tier.promoted && tier.demotions > 0) {
    EmitDemotionTrace(node_id, tier.demotions);
  }
}

void MessageContext::EmitDemotionTrace(topology::NodeId node_id,
                                       int dropped) const {
  EmitNodeEvent(TraceEventType::kDemotion, node_id,
                static_cast<double>(dropped));
}

void MessageContext::EmitSiblingProbeTrace(topology::NodeId sibling,
                                           int hop) const {
  EmitNodeEvent(TraceEventType::kSiblingProbe, sibling,
                static_cast<double>(hop));
}

void MessageContext::EmitSiblingServeTrace(topology::NodeId sibling,
                                           int hop) const {
  EmitNodeEvent(TraceEventType::kSiblingServe, sibling,
                static_cast<double>(hop));
}

void MessageContext::EmitDiskDegradedTrace(topology::NodeId node_id,
                                           int hop) const {
  EmitNodeEvent(TraceEventType::kDiskDegraded, node_id,
                static_cast<double>(hop));
}

void MessageContext::CommitStoreService(topology::NodeId node_id) {
  const double cost = contention->store_cost;
  if (cost <= 0.0) return;
  const QueueingPlane::Admission adm =
      queueing->AdmitOp(node_id, now, cost, contention->node_queue_capacity);
  // The descent pre-checks WouldShed before letting the scheme place, so
  // this admission cannot refuse: the op only waits and serves.
  metrics->queue_wait += adm.wait;
  now += adm.wait + cost;
  if (telemetry.node_counters != nullptr) {
    NodeCounters& c = telemetry.node_counters[node_id];
    if (adm.depth > c.max_queue_depth) c.max_queue_depth = adm.depth;
  }
  if (telemetry.trace != nullptr) {
    EmitNodeEvent(TraceEventType::kQueueDepth, node_id,
                  static_cast<double>(adm.depth));
  }
}

std::string MessageContext::DebugString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "object=%llu size=%llu now=%.6f path_len=%zu hit_index=%d "
      "req{hop=%d payload=%llu} resp{payload=%llu penalty=%.6g}",
      static_cast<unsigned long long>(object),
      static_cast<unsigned long long>(size), now,
      path == nullptr ? 0 : path->size(), response.hit_index, request.hop,
      static_cast<unsigned long long>(request.payload_bytes),
      static_cast<unsigned long long>(response.payload_bytes),
      response.penalty);
  return buf;
}

}  // namespace cascache::sim
