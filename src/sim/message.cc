#include "sim/message.h"

#include <cstdio>

#include "sim/event_trace.h"

namespace cascache::sim {

void MessageContext::EmitNodeEvent(TraceEventType type,
                                   topology::NodeId node_id,
                                   double value) const {
  TraceEvent event;
  event.request_index = telemetry.request_index;
  event.time = now;
  event.type = type;
  event.node = node_id;
  event.level = NodeLevel(node_id);
  event.object = object;
  event.size_bytes = size;
  event.value = value;
  telemetry.trace->Emit(event);
}

void MessageContext::EmitPlacementTrace(
    topology::NodeId node_id, trace::ObjectId object_id, uint64_t bytes,
    const std::vector<trace::ObjectId>& evicted) const {
  TraceEvent event;
  event.request_index = telemetry.request_index;
  event.time = now;
  event.type = TraceEventType::kPlacement;
  event.node = node_id;
  event.level = NodeLevel(node_id);
  event.object = object_id;
  event.size_bytes = bytes;
  event.value = response.penalty;
  telemetry.trace->Emit(event);
  for (trace::ObjectId victim : evicted) {
    TraceEvent ev = event;
    ev.type = TraceEventType::kEviction;
    ev.object = victim;
    ev.size_bytes = 0;  // The store has already forgotten the victim size.
    ev.value = static_cast<double>(evicted.size());
    telemetry.trace->Emit(ev);
  }
}

void MessageContext::EmitPlacementRejectedTrace(
    topology::NodeId node_id) const {
  EmitNodeEvent(TraceEventType::kPlacementRejected, node_id, 0.0);
}

void MessageContext::EmitDCacheHitTrace(topology::NodeId node_id) const {
  EmitNodeEvent(TraceEventType::kDCacheHit, node_id, 0.0);
}

void MessageContext::EmitDegradedTrace(topology::NodeId node_id,
                                       int hop) const {
  EmitNodeEvent(TraceEventType::kFaultDegraded, node_id,
                static_cast<double>(hop));
}

std::string MessageContext::DebugString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "object=%llu size=%llu now=%.6f path_len=%zu hit_index=%d "
      "req{hop=%d payload=%llu} resp{payload=%llu penalty=%.6g}",
      static_cast<unsigned long long>(object),
      static_cast<unsigned long long>(size), now,
      path == nullptr ? 0 : path->size(), response.hit_index, request.hop,
      static_cast<unsigned long long>(request.payload_bytes),
      static_cast<unsigned long long>(response.payload_bytes),
      response.penalty);
  return buf;
}

}  // namespace cascache::sim
