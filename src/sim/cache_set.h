#ifndef CASCACHE_SIM_CACHE_SET_H_
#define CASCACHE_SIM_CACHE_SET_H_

#include <vector>

#include "sim/node.h"

namespace cascache::sim {

/// The mutable cache plane of a simulation run: one CacheNode per network
/// node, indexed by graph node id. The Network owns the immutable shared
/// state (graph, routing trees, attach points, catalog) plus one default
/// CacheSet for single-threaded use; parallel sweeps give every worker
/// its own CacheSet over the same read-only Network, which is the whole
/// isolation story of the concurrent experiment runner.
class CacheSet {
 public:
  CacheSet() = default;
  /// One cache per node, with a 1-byte placeholder capacity until
  /// Configure() is called at the start of a run.
  explicit CacheSet(int num_nodes);

  CacheSet(CacheSet&&) = default;
  CacheSet& operator=(CacheSet&&) = default;

  CacheNode* node(topology::NodeId id) {
    CASCACHE_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
    return &nodes_[static_cast<size_t>(id)];
  }
  const CacheNode* node(topology::NodeId id) const {
    CASCACHE_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
    return &nodes_[static_cast<size_t>(id)];
  }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Raw node array for the replay hot loops (no per-access bounds
  /// check): node ids taken from a resolved routing path are valid by
  /// construction. Everything else should go through node().
  CacheNode* nodes_data() { return nodes_.data(); }

  /// Re-initializes every cache with the given configuration (start of a
  /// simulation run).
  void Configure(const CacheNodeConfig& config);

  /// Re-initializes caches with per-node capacities (heterogeneous
  /// provisioning studies). `capacities` must have one entry per node;
  /// the rest of `config` applies to every node.
  void ConfigureWithCapacities(const CacheNodeConfig& config,
                               const std::vector<uint64_t>& capacities);

 private:
  std::vector<CacheNode> nodes_;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_CACHE_SET_H_
