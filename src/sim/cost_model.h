#ifndef CASCACHE_SIM_COST_MODEL_H_
#define CASCACHE_SIM_COST_MODEL_H_

#include <cstdint>

#include "util/status.h"

namespace cascache::sim {

/// The paper's analytical model is deliberately cost-agnostic (§2): the
/// per-link cost c(u,v,O) "can be interpreted as different performance
/// measures such as network latency, bandwidth consumption and processing
/// cost at the cache, or a combination of these measures". This enum makes
/// that pluggable. The *metrics* the simulator reports are always the
/// physical ones (latency in seconds, traffic in byte-hops, ...); the cost
/// model only changes what the cost-aware schemes optimize.
enum class CostModelKind {
  /// c = delay * size/mean_size — the paper's evaluation setting (§3.3):
  /// generic cost interpreted as access latency, delays proportional to
  /// object size.
  kLatency,
  /// c = size/mean_size per link — bandwidth consumption: every link
  /// crossing costs the bytes moved, independent of link speed.
  /// Optimizing it minimizes byte-hop traffic.
  kBandwidth,
  /// c = 1 per link — pure hop count (lookup/forwarding load).
  kHops,
  /// c = alpha * latency + beta * bandwidth, both as defined above.
  kWeighted,
};

const char* CostModelKindName(CostModelKind kind);

struct CostModelParams {
  CostModelKind kind = CostModelKind::kLatency;
  /// Weights for kWeighted (ignored otherwise).
  double alpha = 1.0;
  double beta = 1.0;
  /// Link bandwidth in bytes/second under the event-driven (contention)
  /// replay; the Simulator fills it from ContentionParams. When > 0 the
  /// latency-flavored costs include the transmission time
  /// size/bandwidth, so cost-aware schemes optimize what a loaded link
  /// actually charges. 0 (analytic mode) leaves costs untouched.
  double link_transfer_bandwidth = 0.0;
};

/// Maps a link traversal to the generic cost the schemes optimize.
class CostModel {
 public:
  CostModel() = default;

  /// Validates parameters (kWeighted needs non-negative weights with a
  /// positive sum).
  static util::StatusOr<CostModel> Create(const CostModelParams& params);

  /// Cost of sending the request for an object of `size_bytes` and its
  /// response over one link with the given base delay (the delay of an
  /// average-size object).
  double LinkCost(double link_delay, uint64_t size_bytes,
                  double mean_object_size) const;

  CostModelKind kind() const { return params_.kind; }
  const char* name() const { return CostModelKindName(params_.kind); }

 private:
  explicit CostModel(const CostModelParams& params) : params_(params) {}

  CostModelParams params_;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_COST_MODEL_H_
