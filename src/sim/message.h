#ifndef CASCACHE_SIM_MESSAGE_H_
#define CASCACHE_SIM_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache_set.h"
#include "sim/metrics.h"
#include "trace/object_catalog.h"

namespace cascache::sim {

/// The request message ascending the distribution path (paper §2.3): it
/// enters at the requesting cache (hop 0) and climbs node by node until
/// a cache holds a servable copy or the origin server is reached. Schemes
/// attach per-hop piggyback state to it — the coordinated scheme appends
/// one (f_i, m_i, l_i) triple per candidate cache — and account the bytes
/// they add in `payload_bytes`.
struct RequestMessage {
  /// Path index of the hop currently processing the message.
  int hop = 0;
  /// Protocol bytes piggybacked onto the request beyond the plain
  /// object-id header (the paper's communication-overhead measure).
  uint64_t payload_bytes = 0;
};

/// The response message descending from the serving node back to the
/// requester (paper §2.3-2.4): it carries the placement decision and the
/// accumulated miss-penalty counter, which caching nodes reset as they
/// create nearer copies.
struct ResponseMessage {
  /// Path index of the serving cache; -1 when the origin served.
  int hit_index = -1;
  /// Protocol bytes carried downstream (penalty counter + decision
  /// bitmap for the coordinated scheme; 0 for the local schemes).
  uint64_t payload_bytes = 0;
  /// Miss-penalty counter: cumulative link cost from the nearest copy
  /// upstream, reset to 0 at every node that caches the object.
  double penalty = 0.0;
};

/// Everything one request/response exchange knows, shared by the
/// simulator and the per-hop scheme handlers. The request facts are
/// fixed for the exchange; the two messages are mutated hop by hop.
///
/// `path[0]` is the requesting cache and `path.back()` the server attach
/// node; `link_delays[i]` / `link_costs[i]` describe the link between
/// path[i] and path[i+1].
struct MessageContext {
  // --- Request facts (immutable during the exchange). -------------------
  trace::ObjectId object = 0;
  uint64_t size = 0;
  /// size / mean object size; multiplies base delays into costs, per the
  /// paper's "delay proportional to object size" cost function.
  double size_scale = 1.0;
  double now = 0.0;
  const std::vector<topology::NodeId>* path = nullptr;
  const std::vector<double>* link_delays = nullptr;
  /// Per-link generic costs under the configured CostModel; parallel to
  /// link_delays. Cost-aware schemes (LNC-R, GDS, Coordinated) optimize
  /// these; the physical metrics always use the delays.
  const std::vector<double>* link_costs = nullptr;
  /// Delay of the virtual attach-node-to-origin link (only nonzero under
  /// the hierarchical architecture).
  double server_link_delay = 0.0;
  /// Cost-model value of the virtual server link.
  double server_link_cost = 0.0;

  // --- Mutable exchange state. ------------------------------------------
  CacheSet* caches = nullptr;
  RequestMetrics* metrics = nullptr;
  RequestMessage request;
  ResponseMessage response;

  bool origin_served() const { return response.hit_index < 0; }
  int hit_index() const { return response.hit_index; }

  /// Path index of the highest node the request visited (serving cache,
  /// or the attach node when the origin served it).
  int top_index() const {
    return origin_served() ? static_cast<int>(path->size()) - 1
                           : response.hit_index;
  }

  /// Highest path index the response descends through, i.e. the first
  /// node below the serving point (the attach node itself when the
  /// origin served). Also the highest placement candidate.
  int first_missing() const {
    return origin_served() ? static_cast<int>(path->size()) - 1
                           : response.hit_index - 1;
  }

  /// Cache node at path index `i` of this exchange's cache plane.
  CacheNode* node(int i) const {
    return caches->node((*path)[static_cast<size_t>(i)]);
  }

  /// Cost of the link immediately upstream of path index `i` (the local
  /// miss-penalty view of the single-cache policies); the virtual server
  /// link above the attach node.
  double upstream_link_cost(int i) const {
    return i == static_cast<int>(path->size()) - 1
               ? server_link_cost
               : (*link_costs)[static_cast<size_t>(i)];
  }

  /// Human-readable dump for test failures and debugging.
  std::string DebugString() const;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_MESSAGE_H_
