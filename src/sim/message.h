#ifndef CASCACHE_SIM_MESSAGE_H_
#define CASCACHE_SIM_MESSAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache_set.h"
#include "sim/metrics.h"
#include "sim/queueing.h"
#include "trace/object_catalog.h"

namespace cascache::sim {

class EventTrace;
enum class TraceEventType : uint8_t;

/// Observability hooks of one exchange, wired by the simulator per
/// request. Both sinks are null when off (warm-up phase, disabled trace,
/// unsampled request), so every emit point costs one null check on the
/// hot path and nothing else.
struct ExchangeTelemetry {
  /// Per-node counter slots indexed by NodeId; null while warming up or
  /// when the driver never allocated them.
  NodeCounters* node_counters = nullptr;
  /// Event sink for this request; null when disabled or unsampled.
  EventTrace* trace = nullptr;
  /// Tree depth per NodeId for trace records; null means level 0
  /// everywhere (en-route architecture).
  const int* node_levels = nullptr;
  /// Index of the request in the replayed workload (the sampling key).
  uint64_t request_index = 0;
};

/// The request message ascending the distribution path (paper §2.3): it
/// enters at the requesting cache (hop 0) and climbs node by node until
/// a cache holds a servable copy or the origin server is reached. Schemes
/// attach per-hop piggyback state to it — the coordinated scheme appends
/// one (f_i, m_i, l_i) triple per candidate cache — and account the bytes
/// they add in `payload_bytes`.
struct RequestMessage {
  /// Path index of the hop currently processing the message.
  int hop = 0;
  /// Protocol bytes piggybacked onto the request beyond the plain
  /// object-id header (the paper's communication-overhead measure).
  uint64_t payload_bytes = 0;
  /// Fault plane: the piggyback entry this hop would contribute was lost
  /// (node crashed, or the entry was dropped in transit). Set by the
  /// simulator for the current hop only; schemes fall back to the
  /// paper's no-state behavior (the node is excluded from the candidate
  /// set) and must not touch the node's cache state.
  bool piggyback_lost = false;
};

/// The response message descending from the serving node back to the
/// requester (paper §2.3-2.4): it carries the placement decision and the
/// accumulated miss-penalty counter, which caching nodes reset as they
/// create nearer copies.
struct ResponseMessage {
  /// Path index of the serving cache; -1 when the origin served.
  int hit_index = -1;
  /// Protocol bytes carried downstream (penalty counter + decision
  /// bitmap for the coordinated scheme; 0 for the local schemes).
  uint64_t payload_bytes = 0;
  /// Miss-penalty counter: cumulative link cost from the nearest copy
  /// upstream, reset to 0 at every node that caches the object.
  double penalty = 0.0;
  /// Fault plane: the placement decision / penalty block was lost at the
  /// current hop (node crashed, or the block was dropped in transit).
  /// Set by the simulator for that hop only; schemes skip placement and
  /// penalty refresh there.
  bool decision_lost = false;
  /// Event-driven replay: a full node queue refused the request on the
  /// ascent. The exchange ends where it was refused — no serve, no
  /// descent, no placements.
  bool shed = false;
  /// Sibling cooperation: the object was served by a sibling of the node
  /// at `hit_index`, not by that node itself. The serve is proxy-only
  /// (Squid's proxy-only ICP peering): the probing node does not keep a
  /// copy, so the descent below `hit_index` is identical to a local hit
  /// there and every scheme's hop alignment carries over unchanged.
  bool served_by_sibling = false;
  /// NodeId of the serving sibling; valid only when served_by_sibling.
  topology::NodeId sibling = -1;
};

/// Everything one request/response exchange knows, shared by the
/// simulator and the per-hop scheme handlers. The request facts are
/// fixed for the exchange; the two messages are mutated hop by hop.
///
/// `path[0]` is the requesting cache and `path.back()` the server attach
/// node; `link_delays[i]` / `link_costs[i]` describe the link between
/// path[i] and path[i+1].
struct MessageContext {
  // --- Request facts (immutable during the exchange). -------------------
  trace::ObjectId object = 0;
  uint64_t size = 0;
  /// size / mean object size; multiplies base delays into costs, per the
  /// paper's "delay proportional to object size" cost function.
  double size_scale = 1.0;
  double now = 0.0;
  const std::vector<topology::NodeId>* path = nullptr;
  const std::vector<double>* link_delays = nullptr;
  /// Per-link generic costs under the configured CostModel; parallel to
  /// link_delays. Cost-aware schemes (LNC-R, GDS, Coordinated) optimize
  /// these; the physical metrics always use the delays.
  const std::vector<double>* link_costs = nullptr;
  /// Delay of the virtual attach-node-to-origin link (only nonzero under
  /// the hierarchical architecture).
  double server_link_delay = 0.0;
  /// Cost-model value of the virtual server link.
  double server_link_cost = 0.0;

  // --- Mutable exchange state. ------------------------------------------
  CacheSet* caches = nullptr;
  RequestMetrics* metrics = nullptr;
  ExchangeTelemetry telemetry;
  RequestMessage request;
  ResponseMessage response;
  /// Event-driven replay only: the queueing plane and the contention
  /// knobs, so placement commits charge their store service where they
  /// happen (RecordPlacement). Both null under the analytic policy, which
  /// then pays one null check per accepted placement.
  QueueingPlane* queueing = nullptr;
  const ContentionParams* contention = nullptr;
  /// Whether any node of this exchange's cache plane runs a RAM tier.
  /// Set once per run by the simulator; gates the demote-on-evict hook in
  /// RecordPlacement so untiered runs pay one register test per placement.
  bool tiered = false;
  /// Analytic replay only: serving-tier service seconds (RAM or disk hit
  /// cost) accumulated while resolving this exchange; the simulator adds
  /// it to the request latency. Under the event-driven replay the tier
  /// service is charged through the queueing plane instead.
  double tier_service = 0.0;

  bool origin_served() const { return response.hit_index < 0; }
  int hit_index() const { return response.hit_index; }

  /// Path index of the highest node the request visited (serving cache,
  /// or the attach node when the origin served it).
  int top_index() const {
    return origin_served() ? static_cast<int>(path->size()) - 1
                           : response.hit_index;
  }

  /// Highest path index the response descends through, i.e. the first
  /// node below the serving point (the attach node itself when the
  /// origin served). Also the highest placement candidate.
  int first_missing() const {
    return origin_served() ? static_cast<int>(path->size()) - 1
                           : response.hit_index - 1;
  }

  /// Cache node at path index `i` of this exchange's cache plane. Raw
  /// array access: path nodes come from a resolved route, so the id is in
  /// range by construction (this is the scheme handlers' per-hop lookup).
  CacheNode* node(int i) const {
    return &caches->nodes_data()[(*path)[static_cast<size_t>(i)]];
  }

  /// Cache node that actually served the request: the sibling when
  /// served_by_sibling, else the node at hit_index(). Only meaningful on
  /// a cache hit (hit_index() >= 0).
  CacheNode* serving_node() const {
    return response.served_by_sibling
               ? &caches->nodes_data()[response.sibling]
               : node(response.hit_index);
  }

  /// Cost of the link immediately upstream of path index `i` (the local
  /// miss-penalty view of the single-cache policies); the virtual server
  /// link above the attach node.
  double upstream_link_cost(int i) const {
    return i == static_cast<int>(path->size()) - 1
               ? server_link_cost
               : (*link_costs)[static_cast<size_t>(i)];
  }

  // --- Placement accounting (shared by every scheme). -------------------
  // These fold the aggregate write accounting, the per-node counters and
  // the trace emission into one call so the seven schemes cannot drift
  // apart. The aggregate arithmetic is exactly the historical
  // `write_bytes += size; ++insertions;` pair — results stay
  // bit-identical to the pre-observability pipeline.

  /// Records an accepted placement at path index `hop` plus the victims
  /// the store pushed out to make room.
  void RecordPlacement(int hop, const std::vector<trace::ObjectId>& evicted);

  /// Same, for a node off the request path caching `object_id`
  /// (STATIC's freeze fills every cache at once). Freeze fills are bulk
  /// provisioning, not request-driven stores, so they charge no store
  /// service under the event-driven replay.
  void RecordPlacementAt(topology::NodeId node_id, trace::ObjectId object_id,
                         uint64_t bytes,
                         const std::vector<trace::ObjectId>& evicted);

  /// Records a placement attempt the store declined (oversized object or
  /// copy already present).
  void RecordPlacementRejected(int hop);

  /// Records an ascent lookup that found the object's descriptor in the
  /// d-cache at path index `hop` (the object itself is not cached there,
  /// or the node would have served).
  void RecordDCacheHit(int hop);

  /// Records a degraded decision at path index `hop`: the scheme fell
  /// back to its no-state behavior there because the node was down or
  /// the message block it needed was lost (fault plane).
  void RecordDegraded(int hop);

  /// Records a store-queue shed at path index `hop` (event-driven replay):
  /// the node's queue was full, so the descending placement decision was
  /// dropped there (the simulator also raises decision_lost for the hop).
  /// `depth` is the backlog depth that caused the refusal.
  void RecordStoreShed(int hop, uint32_t depth);

  /// Records which tier of `node_id` served this request and any RAM-tier
  /// churn (promotion + the RAM victims it pushed out) the serve caused.
  void RecordTierServe(topology::NodeId node_id,
                       const CacheNode::TierServe& tier);

  /// Records one ICP-style probe this request sent from path index `hop`
  /// to `sibling`.
  void RecordSiblingProbe(int hop, topology::NodeId sibling);

  /// Records a sibling serve: `sibling` (probed from path index `hop`)
  /// held a servable copy and returned the object. Counted as a hit at
  /// the sibling, so Σ per-node hits still equals aggregate cache hits.
  void RecordSiblingServe(int hop, topology::NodeId sibling);

  /// Records a disk-outage degradation at path index `hop`: the tiered
  /// node there was RAM-only / proxy-only and could not serve or store
  /// what its disk tier would have (disjoint from RecordDegraded).
  void RecordDiskDegraded(int hop);

  /// Tree depth of a node for trace records (0 when levels are unknown).
  int32_t NodeLevel(topology::NodeId node_id) const {
    return telemetry.node_levels == nullptr
               ? 0
               : telemetry.node_levels[node_id];
  }

  /// Human-readable dump for test failures and debugging.
  std::string DebugString() const;

 private:
  /// Trace-only slow path of the Record* helpers, out of line so the
  /// untraced fast path stays a null check.
  void EmitPlacementTrace(topology::NodeId node_id, trace::ObjectId object_id,
                          uint64_t bytes,
                          const std::vector<trace::ObjectId>& evicted) const;
  void EmitNodeEvent(TraceEventType type, topology::NodeId node_id,
                     double value) const;
  void EmitPlacementRejectedTrace(topology::NodeId node_id) const;
  void EmitDCacheHitTrace(topology::NodeId node_id) const;
  void EmitDegradedTrace(topology::NodeId node_id, int hop) const;
  void EmitShedTrace(topology::NodeId node_id, uint32_t depth) const;
  void EmitTierServeTrace(topology::NodeId node_id,
                          const CacheNode::TierServe& tier) const;
  void EmitSiblingProbeTrace(topology::NodeId sibling, int hop) const;
  void EmitSiblingServeTrace(topology::NodeId sibling, int hop) const;
  void EmitDiskDegradedTrace(topology::NodeId node_id, int hop) const;
  void EmitDemotionTrace(topology::NodeId node_id, int dropped) const;

  /// Event-driven replay: charges an accepted placement's store service
  /// at `node_id` — FIFO wait behind the node's backlog plus the store
  /// cost — advancing the exchange's `now` and the request's queue-wait
  /// total. Out of line: runs only when a placement actually happens.
  void CommitStoreService(topology::NodeId node_id);
};

inline void MessageContext::RecordPlacement(
    int hop, const std::vector<trace::ObjectId>& evicted) {
  metrics->write_bytes += size;
  ++metrics->insertions;
  const topology::NodeId node_id = (*path)[static_cast<size_t>(hop)];
  if (telemetry.node_counters != nullptr) {
    NodeCounters& c = telemetry.node_counters[node_id];
    ++c.placements;
    c.evictions += evicted.size();
    c.bytes_cached += size;
  }
  if (telemetry.trace != nullptr) {
    EmitPlacementTrace(node_id, object, size, evicted);
  }
  if (tiered && !evicted.empty()) {
    // Demote-on-evict: the inclusive RAM tier drops the disk victims.
    CacheNode& node = caches->nodes_data()[node_id];
    if (node.tiered()) {
      const int dropped = node.DropRamCopies(evicted);
      if (dropped > 0) {
        metrics->demotions += dropped;
        if (telemetry.node_counters != nullptr) {
          telemetry.node_counters[node_id].demotions +=
              static_cast<uint64_t>(dropped);
        }
        if (telemetry.trace != nullptr) EmitDemotionTrace(node_id, dropped);
      }
    }
  }
  if (queueing != nullptr) CommitStoreService(node_id);
}

inline void MessageContext::RecordPlacementAt(
    topology::NodeId node_id, trace::ObjectId object_id, uint64_t bytes,
    const std::vector<trace::ObjectId>& evicted) {
  metrics->write_bytes += bytes;
  ++metrics->insertions;
  if (telemetry.node_counters != nullptr) {
    NodeCounters& c = telemetry.node_counters[node_id];
    ++c.placements;
    c.evictions += evicted.size();
    c.bytes_cached += bytes;
  }
  if (telemetry.trace != nullptr) {
    EmitPlacementTrace(node_id, object_id, bytes, evicted);
  }
  if (tiered && !evicted.empty()) {
    CacheNode& node = caches->nodes_data()[node_id];
    if (node.tiered()) {
      const int dropped = node.DropRamCopies(evicted);
      if (dropped > 0) {
        metrics->demotions += dropped;
        if (telemetry.node_counters != nullptr) {
          telemetry.node_counters[node_id].demotions +=
              static_cast<uint64_t>(dropped);
        }
        if (telemetry.trace != nullptr) EmitDemotionTrace(node_id, dropped);
      }
    }
  }
}

inline void MessageContext::RecordPlacementRejected(int hop) {
  const topology::NodeId node_id = (*path)[static_cast<size_t>(hop)];
  if (telemetry.node_counters != nullptr) {
    ++telemetry.node_counters[node_id].placements_rejected;
  }
  if (telemetry.trace != nullptr) {
    EmitPlacementRejectedTrace(node_id);
  }
}

inline void MessageContext::RecordDCacheHit(int hop) {
  const topology::NodeId node_id = (*path)[static_cast<size_t>(hop)];
  if (telemetry.node_counters != nullptr) {
    ++telemetry.node_counters[node_id].dcache_hits;
  }
  if (telemetry.trace != nullptr) {
    EmitDCacheHitTrace(node_id);
  }
}

inline void MessageContext::RecordDegraded(int hop) {
  ++metrics->degraded;
  const topology::NodeId node_id = (*path)[static_cast<size_t>(hop)];
  if (telemetry.node_counters != nullptr) {
    ++telemetry.node_counters[node_id].degraded;
  }
  if (telemetry.trace != nullptr) {
    EmitDegradedTrace(node_id, hop);
  }
}

inline void MessageContext::RecordStoreShed(int hop, uint32_t depth) {
  ++metrics->placements_shed;
  const topology::NodeId node_id = (*path)[static_cast<size_t>(hop)];
  if (telemetry.node_counters != nullptr) {
    ++telemetry.node_counters[node_id].store_sheds;
  }
  if (telemetry.trace != nullptr) {
    EmitShedTrace(node_id, depth);
  }
}

inline void MessageContext::RecordTierServe(topology::NodeId node_id,
                                            const CacheNode::TierServe& tier) {
  if (tier.ram_hit) {
    metrics->ram_hit = true;
  } else {
    metrics->disk_hit = true;
  }
  metrics->promotions += tier.promoted ? 1 : 0;
  metrics->demotions += tier.demotions;
  if (telemetry.node_counters != nullptr) {
    NodeCounters& c = telemetry.node_counters[node_id];
    if (tier.ram_hit) {
      ++c.ram_hits;
    } else {
      ++c.disk_hits;
    }
    if (tier.promoted) ++c.promotions;
    c.demotions += static_cast<uint64_t>(tier.demotions);
  }
  if (telemetry.trace != nullptr) EmitTierServeTrace(node_id, tier);
}

inline void MessageContext::RecordSiblingProbe(int hop,
                                               topology::NodeId sibling) {
  ++metrics->sibling_probes;
  if (telemetry.node_counters != nullptr) {
    ++telemetry.node_counters[(*path)[static_cast<size_t>(hop)]]
          .sibling_probes;
  }
  if (telemetry.trace != nullptr) EmitSiblingProbeTrace(sibling, hop);
}

inline void MessageContext::RecordSiblingServe(int hop,
                                               topology::NodeId sibling) {
  metrics->sibling_hit = true;
  if (telemetry.node_counters != nullptr) {
    NodeCounters& c = telemetry.node_counters[sibling];
    ++c.hits;
    ++c.sibling_serves;
    c.bytes_served += size;
  }
  if (telemetry.trace != nullptr) EmitSiblingServeTrace(sibling, hop);
}

inline void MessageContext::RecordDiskDegraded(int hop) {
  ++metrics->disk_degraded;
  const topology::NodeId node_id = (*path)[static_cast<size_t>(hop)];
  if (telemetry.node_counters != nullptr) {
    ++telemetry.node_counters[node_id].disk_degraded;
  }
  if (telemetry.trace != nullptr) EmitDiskDegradedTrace(node_id, hop);
}

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_MESSAGE_H_
