#ifndef CASCACHE_SIM_EXPERIMENT_H_
#define CASCACHE_SIM_EXPERIMENT_H_

#include <string>
#include <vector>

#include "schemes/scheme.h"
#include "sim/simulator.h"
#include "trace/mapped_trace.h"
#include "trace/synthetic.h"
#include "util/status.h"

namespace cascache::sim {

/// One full parameter sweep: an architecture, a workload, a set of
/// relative cache sizes, and a set of schemes. This is the engine behind
/// every figure bench: it builds the topology and workload once and runs
/// each (cache size, scheme) cell on freshly reset caches, as the paper's
/// experiments do.
struct ExperimentConfig {
  NetworkParams network;
  trace::WorkloadParams workload;
  SimOptions sim;
  /// Relative cache sizes: per-node capacity / total bytes of all objects
  /// (the paper sweeps 0.1% .. 10%, log scale).
  std::vector<double> cache_fractions = {0.001, 0.003, 0.01, 0.03, 0.10};
  std::vector<schemes::SchemeSpec> schemes;
  /// Worker threads for RunAll. 1 runs the exact legacy sequential path
  /// on the network's default cache set; N > 1 runs cells concurrently,
  /// each on its own cache plane; 0 (default) resolves via the
  /// CASCACHE_JOBS environment variable, falling back to
  /// hardware_concurrency. Results are bit-identical for every value.
  int jobs = 0;
  /// Only meaningful with CreateFromTrace over a mapped (v2) trace:
  /// advise-release consumed request pages during replay so resident
  /// memory stays O(1) in trace length. Forces sequential cells (jobs
  /// = 1) — concurrent cells at different trace offsets would refault
  /// each other's dropped pages. Results are bit-identical either way.
  bool release_trace_pages = false;
};

/// Number of workers RunAll would use for `requested` (the ExperimentConfig
/// jobs field): `requested` itself if >= 1, else CASCACHE_JOBS, else
/// hardware_concurrency. Forced values above hardware_concurrency are
/// clamped to it (replay workers are CPU-bound; oversubscription only
/// churns the scheduler) with a stderr notice. Exposed so benches can
/// report the value.
int ResolveJobs(int requested);

/// Per-node slice of one cell's replay (observability layer): the
/// counters one cache accumulated over the measured phase, plus where in
/// the tree it sits.
struct NodeUsage {
  topology::NodeId node = 0;
  /// Tree depth (0 = leaf level under the hierarchical architecture; all
  /// nodes are level 0 under en-route).
  int level = 0;
  NodeCounters counters;
};

/// One (scheme, cache size) cell of a sweep.
struct RunResult {
  std::string scheme;
  double cache_fraction = 0.0;
  uint64_t capacity_bytes = 0;
  MetricsSummary metrics;
  /// One entry per network node, in NodeId order.
  std::vector<NodeUsage> per_node;
  /// Ring snapshot of the cell's event trace, oldest first (empty unless
  /// the sweep ran with tracing enabled).
  std::vector<TraceEvent> trace_events;
  /// Wall-clock seconds this cell's simulation took (replay only; not
  /// part of the determinism contract).
  double wall_seconds = 0.0;
  /// Requests replayed per wall-clock second (warm-up included).
  double requests_per_sec = 0.0;
  /// Phase breakdown of the replay (observability layer).
  double warmup_seconds = 0.0;
  double measure_seconds = 0.0;
};

/// Runs a configured sweep. Expensive state (topology, routing, workload)
/// is shared across cells.
class ExperimentRunner {
 public:
  /// Generates the workload and builds the network; fails on bad config.
  static util::StatusOr<std::unique_ptr<ExperimentRunner>> Create(
      const ExperimentConfig& config);

  /// Builds the runner over a saved binary trace instead of generating
  /// the synthetic workload (config.workload is ignored except as
  /// provenance). A v2 trace is memory-mapped — one shared read-only
  /// mapping replayed in place by every parallel cell; a legacy v1
  /// trace falls back to an in-RAM load (its request region is not
  /// mmap-able).
  static util::StatusOr<std::unique_ptr<ExperimentRunner>> CreateFromTrace(
      const ExperimentConfig& config, const std::string& trace_path);

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// Runs every (cache size, scheme) cell; results are ordered by cache
  /// size then scheme (the order given in the config) regardless of
  /// completion order. With config.jobs resolving to N > 1, cells execute
  /// concurrently on per-worker cache planes over the shared immutable
  /// network; the results are bit-identical to the sequential run.
  util::StatusOr<std::vector<RunResult>> RunAll();

  /// Runs a single cell against the shared workload/network, on the
  /// network's default cache set (post-run cache state stays inspectable).
  util::StatusOr<RunResult> RunOne(const schemes::SchemeSpec& spec,
                                   double cache_fraction);

  /// The generated workload. Empty under CreateFromTrace with a mapped
  /// trace (requests stay on disk); use view() for replay-agnostic
  /// access.
  const trace::Workload& workload() const { return workload_; }
  /// Borrowed catalog + request span, regardless of backing storage
  /// (generated vector, in-RAM v1 load, or shared v2 mapping).
  trace::WorkloadView view() const {
    return mapped_ != nullptr ? mapped_->View() : workload_.View();
  }
  /// Non-null iff this runner replays a mapped v2 trace.
  const trace::MappedTrace* mapped_trace() const { return mapped_.get(); }
  Network* network() { return network_.get(); }
  const ExperimentConfig& config() const { return config_; }

 private:
  explicit ExperimentRunner(ExperimentConfig config);

  /// Runs one cell on the given cache plane (the shared implementation
  /// behind RunOne and the parallel RunAll workers).
  util::StatusOr<RunResult> RunCell(const schemes::SchemeSpec& spec,
                                    double cache_fraction, CacheSet* caches);

  /// The view RunCell hands to Simulator::Run: view(), plus the page-
  /// release hook when config_.release_trace_pages applies.
  trace::WorkloadView ReplayView();

  ExperimentConfig config_;
  trace::Workload workload_;
  std::unique_ptr<trace::MappedTrace> mapped_;
  std::unique_ptr<Network> network_;
};

/// Formats sweep results as a table: one row per cache size, one column
/// per scheme, cells showing `metric` extracted by the selector.
std::string FormatSweepTable(
    const std::vector<RunResult>& results, const std::string& metric_name,
    double (*selector)(const MetricsSummary&));

/// Writes sweep results as CSV (one row per cell, all metrics as
/// columns) for external plotting; the benches accept an output path via
/// CASCACHE_RESULTS_CSV.
util::Status WriteResultsCsv(const std::vector<RunResult>& results,
                             const std::string& path);

/// Writes the per-node counter breakdown of each cell: one `scope=node`
/// row per cache, followed by one `scope=level` rollup row per tree
/// depth (node = -1). Totals reconcile exactly with the aggregate CSV:
/// sum(hits) == requests * hit_ratio, sum(bytes_cached) ==
/// requests * avg_write_bytes, and so on (see docs/METRICS.md).
util::Status WritePerNodeCsv(const std::vector<RunResult>& results,
                             const std::string& path);

/// Writes every cell's trace snapshot as JSONL, each record annotated
/// with the cell's scheme and cache fraction.
util::Status WriteTraceJsonl(const std::vector<RunResult>& results,
                             const std::string& path);

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_EXPERIMENT_H_
