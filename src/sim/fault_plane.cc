#include "sim/fault_plane.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <queue>
#include <utility>

namespace cascache::sim {

namespace {

/// SplitMix64 finalizer: full-avalanche mix for per-entity stream seeds
/// and per-(request, hop) message-fault decisions.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t MixSeed(uint64_t seed, uint64_t tag, uint64_t id) {
  return Mix(seed + tag * 0x9E3779B97F4A7C15ULL + Mix(id));
}

/// Uniform double in [0, 1) from a hash value.
double HashToUnit(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// Stable undirected-edge key.
uint64_t EdgeKey(topology::NodeId u, topology::NodeId v) {
  const uint64_t lo = static_cast<uint64_t>(std::min(u, v));
  const uint64_t hi = static_cast<uint64_t>(std::max(u, v));
  return (hi << 32) | lo;
}

constexpr uint64_t kNodeTag = 0x4e;     // 'N'
constexpr uint64_t kEdgeTag = 0x45;     // 'E'
constexpr uint64_t kAscentTag = 0x41;   // 'A'
constexpr uint64_t kDescentTag = 0x44;  // 'D'
constexpr uint64_t kDiskTag = 0x4b;     // 'K' (disK; 'D' is taken)
constexpr uint64_t kSiblingTag = 0x53;  // 'S'

}  // namespace

util::Status FaultScheduleConfig::Validate() const {
  if (node_crash_mtbf < 0.0 || link_mtbf < 0.0) {
    return util::Status::InvalidArgument("fault mtbf must be >= 0");
  }
  if (node_crash_mtbf > 0.0 && node_downtime <= 0.0) {
    return util::Status::InvalidArgument(
        "node_downtime must be > 0 when crashes are enabled");
  }
  if (link_mtbf > 0.0 && link_downtime <= 0.0) {
    return util::Status::InvalidArgument(
        "link_downtime must be > 0 when outages are enabled");
  }
  if (ascent_loss_prob < 0.0 || ascent_loss_prob > 1.0 ||
      decision_loss_prob < 0.0 || decision_loss_prob > 1.0 ||
      sibling_loss_prob < 0.0 || sibling_loss_prob > 1.0) {
    return util::Status::InvalidArgument(
        "fault loss probabilities must be in [0, 1]");
  }
  if (disk_fail_mtbf < 0.0) {
    return util::Status::InvalidArgument("disk_mtbf must be >= 0");
  }
  if (disk_fail_mtbf > 0.0 && disk_fail_downtime <= 0.0) {
    return util::Status::InvalidArgument(
        "disk_downtime must be > 0 when disk failures are enabled");
  }
  if (request_timeout <= 0.0) {
    return util::Status::InvalidArgument("request_timeout must be > 0");
  }
  if (max_retries < 0) {
    return util::Status::InvalidArgument("max_retries must be >= 0");
  }
  if (retry_backoff < 0.0) {
    return util::Status::InvalidArgument("retry_backoff must be >= 0");
  }
  return util::Status::Ok();
}

util::Status ApplyFaultSetting(const std::string& key,
                               const std::string& value,
                               FaultScheduleConfig* config) {
  const auto parse_double = [&](double* out) -> util::Status {
    char* end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (value.empty() || *end != '\0') {
      return util::Status::InvalidArgument("bad number for fault setting " +
                                           key + ": " + value);
    }
    *out = parsed;
    return util::Status::Ok();
  };
  if (key == "seed") {
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0' || value[0] == '-') {
      return util::Status::InvalidArgument("bad seed: " + value);
    }
    config->seed = parsed;
    return util::Status::Ok();
  }
  if (key == "node_mtbf") return parse_double(&config->node_crash_mtbf);
  if (key == "node_downtime") return parse_double(&config->node_downtime);
  if (key == "link_mtbf") return parse_double(&config->link_mtbf);
  if (key == "link_downtime") return parse_double(&config->link_downtime);
  if (key == "crash_cuts_routing") {
    if (value == "true" || value == "1" || value == "yes") {
      config->crash_cuts_routing = true;
    } else if (value == "false" || value == "0" || value == "no") {
      config->crash_cuts_routing = false;
    } else {
      return util::Status::InvalidArgument("bad bool for crash_cuts_routing: " +
                                           value);
    }
    return util::Status::Ok();
  }
  if (key == "ascent_loss") return parse_double(&config->ascent_loss_prob);
  if (key == "decision_loss") return parse_double(&config->decision_loss_prob);
  if (key == "timeout") return parse_double(&config->request_timeout);
  if (key == "max_retries") {
    char* end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (value.empty() || *end != '\0') {
      return util::Status::InvalidArgument("bad max_retries: " + value);
    }
    config->max_retries = static_cast<int>(parsed);
    return util::Status::Ok();
  }
  if (key == "backoff") return parse_double(&config->retry_backoff);
  if (key == "disk_mtbf") return parse_double(&config->disk_fail_mtbf);
  if (key == "disk_downtime") return parse_double(&config->disk_fail_downtime);
  if (key == "sibling_loss") return parse_double(&config->sibling_loss_prob);
  return util::Status::InvalidArgument("unknown fault setting: " + key);
}

util::Status LoadFaultConfigFile(const std::string& path,
                                 FaultScheduleConfig* config) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) {
    return util::Status::IoError("cannot open fault config: " + path);
  }
  char line[512];
  int line_no = 0;
  util::Status status = util::Status::Ok();
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    ++line_no;
    std::string text(line);
    if (const size_t hash = text.find('#'); hash != std::string::npos) {
      text.resize(hash);
    }
    // Trim whitespace.
    const size_t first = text.find_first_not_of(" \t\r\n");
    if (first == std::string::npos) continue;
    const size_t last = text.find_last_not_of(" \t\r\n");
    text = text.substr(first, last - first + 1);
    const size_t eq = text.find('=');
    if (eq == std::string::npos) {
      status = util::Status::InvalidArgument(
          path + ":" + std::to_string(line_no) + ": expected key=value");
      break;
    }
    // Allow whitespace around '=' ("node_mtbf = 40").
    const auto trim = [](std::string s) {
      const size_t begin = s.find_first_not_of(" \t");
      if (begin == std::string::npos) return std::string();
      const size_t end = s.find_last_not_of(" \t");
      return s.substr(begin, end - begin + 1);
    };
    status = ApplyFaultSetting(trim(text.substr(0, eq)),
                               trim(text.substr(eq + 1)), config);
    if (!status.ok()) break;
  }
  std::fclose(file);
  return status;
}

util::Status ApplyFaultEnvOverrides(FaultScheduleConfig* config) {
  static constexpr const char* kKeys[] = {
      "seed",        "node_mtbf",   "node_downtime",      "link_mtbf",
      "link_downtime", "crash_cuts_routing", "ascent_loss", "decision_loss",
      "timeout",     "max_retries", "backoff",            "disk_mtbf",
      "disk_downtime", "sibling_loss"};
  for (const char* key : kKeys) {
    std::string env_name = "CASCACHE_FAULT_";
    for (const char* p = key; *p != '\0'; ++p) {
      env_name += static_cast<char>(std::toupper(*p));
    }
    if (const char* value = std::getenv(env_name.c_str()); value != nullptr) {
      CASCACHE_RETURN_IF_ERROR(ApplyFaultSetting(key, value, config));
    }
  }
  return util::Status::Ok();
}

// --- OutageTrack -----------------------------------------------------------

FaultPlane::OutageTrack::OutageTrack(uint64_t seed, double mtbf,
                                     double downtime)
    : rng_(seed), enabled_(mtbf > 0.0) {
  if (enabled_) {
    onset_rate_ = 1.0 / mtbf;
    recovery_rate_ = 1.0 / downtime;
  }
}

size_t FaultPlane::OutageTrack::CoverIndex(double t) {
  // Generate [down-start, down-end) pairs until the last boundary passes
  // `t`. The pairs are a fixed stream of the track's RNG, so queries in
  // any time order observe the same process.
  while (boundaries_.empty() || boundaries_.back() <= t) {
    const double last = boundaries_.empty() ? 0.0 : boundaries_.back();
    const double start = last + rng_.NextExponential(onset_rate_);
    const double end = start + rng_.NextExponential(recovery_rate_);
    boundaries_.push_back(start);
    boundaries_.push_back(end);
  }
  return static_cast<size_t>(
      std::upper_bound(boundaries_.begin(), boundaries_.end(), t) -
      boundaries_.begin());
}

bool FaultPlane::OutageTrack::IsDown(double t) {
  if (!enabled_) return false;
  // Odd cover index: t sits inside a [down-start, down-end) interval.
  return CoverIndex(t) % 2 == 1;
}

uint64_t FaultPlane::OutageTrack::CrashEpoch(double t) {
  if (!enabled_) return 0;
  return (CoverIndex(t) + 1) / 2;
}

// --- FaultPlane ------------------------------------------------------------

FaultPlane::FaultPlane(const FaultScheduleConfig& config,
                       const Network* network)
    : config_(config), network_(network) {
  CASCACHE_CHECK(network != nullptr);
  CASCACHE_CHECK(config.Validate().ok());
  routing_faults_ = config_.link_mtbf > 0.0 ||
                    (config_.crash_cuts_routing && config_.node_crash_mtbf > 0.0);
  Reset();
}

void FaultPlane::Reset() {
  const size_t n = static_cast<size_t>(network_->num_nodes());
  node_tracks_.assign(n, OutageTrack());
  node_track_ready_.assign(n, false);
  disk_tracks_.assign(n, OutageTrack());
  disk_track_ready_.assign(n, false);
  edge_tracks_.clear();
  applied_crash_epoch_.assign(n, 0);
}

FaultPlane::OutageTrack& FaultPlane::NodeTrack(topology::NodeId v) {
  const size_t i = static_cast<size_t>(v);
  if (!node_track_ready_[i]) {
    node_tracks_[i] =
        OutageTrack(MixSeed(config_.seed, kNodeTag, static_cast<uint64_t>(v)),
                    config_.node_crash_mtbf, config_.node_downtime);
    node_track_ready_[i] = true;
  }
  return node_tracks_[i];
}

FaultPlane::OutageTrack& FaultPlane::DiskTrack(topology::NodeId v) {
  const size_t i = static_cast<size_t>(v);
  if (!disk_track_ready_[i]) {
    disk_tracks_[i] =
        OutageTrack(MixSeed(config_.seed, kDiskTag, static_cast<uint64_t>(v)),
                    config_.disk_fail_mtbf, config_.disk_fail_downtime);
    disk_track_ready_[i] = true;
  }
  return disk_tracks_[i];
}

FaultPlane::OutageTrack& FaultPlane::EdgeTrack(topology::NodeId u,
                                               topology::NodeId v) {
  const uint64_t key = EdgeKey(u, v);
  auto it = edge_tracks_.find(key);
  if (it == edge_tracks_.end()) {
    it = edge_tracks_
             .emplace(key, OutageTrack(MixSeed(config_.seed, kEdgeTag, key),
                                       config_.link_mtbf,
                                       config_.link_downtime))
             .first;
  }
  return it->second;
}

bool FaultPlane::NodeDown(topology::NodeId v, double t) {
  if (config_.node_crash_mtbf <= 0.0) return false;
  return NodeTrack(v).IsDown(t);
}

bool FaultPlane::DiskDown(topology::NodeId v, double t) {
  if (config_.disk_fail_mtbf <= 0.0) return false;
  return DiskTrack(v).IsDown(t);
}

bool FaultPlane::SiblingLoss(uint64_t request_index, int probe) const {
  if (config_.sibling_loss_prob <= 0.0) return false;
  const uint64_t h = Mix(MixSeed(config_.seed, kSiblingTag, request_index) +
                         static_cast<uint64_t>(probe));
  return HashToUnit(h) < config_.sibling_loss_prob;
}

bool FaultPlane::LinkDown(topology::NodeId u, topology::NodeId v, double t) {
  if (config_.link_mtbf <= 0.0) return false;
  return EdgeTrack(u, v).IsDown(t);
}

int FaultPlane::ApplyCrashRestarts(CacheNode* node, double t) {
  if (config_.node_crash_mtbf <= 0.0) return 0;
  const size_t i = static_cast<size_t>(node->id());
  const uint64_t epoch = NodeTrack(node->id()).CrashEpoch(t);
  const uint64_t applied = applied_crash_epoch_[i];
  if (epoch <= applied) return 0;
  // Cold restart: everything volatile — store, descriptors, d-cache,
  // frequency windows — is gone; the capacity configuration survives.
  node->Reset(node->config());
  applied_crash_epoch_[i] = epoch;
  return static_cast<int>(epoch - applied);
}

bool FaultPlane::AscentLoss(uint64_t request_index, int hop) const {
  if (config_.ascent_loss_prob <= 0.0) return false;
  const uint64_t h = Mix(MixSeed(config_.seed, kAscentTag, request_index) +
                         static_cast<uint64_t>(hop));
  return HashToUnit(h) < config_.ascent_loss_prob;
}

bool FaultPlane::DescentLoss(uint64_t request_index, int hop) const {
  if (config_.decision_loss_prob <= 0.0) return false;
  const uint64_t h = Mix(MixSeed(config_.seed, kDescentTag, request_index) +
                         static_cast<uint64_t>(hop));
  return HashToUnit(h) < config_.decision_loss_prob;
}

bool FaultPlane::PathHealthy(const std::vector<topology::NodeId>& path,
                             double t) {
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    if (LinkDown(path[i], path[i + 1], t)) return false;
  }
  if (config_.crash_cuts_routing) {
    // Endpoints stay routable: the requester's router and the server
    // attach node forward even when their cache process is down.
    for (size_t i = 1; i + 1 < path.size(); ++i) {
      if (NodeDown(path[i], t)) return false;
    }
  }
  return true;
}

bool FaultPlane::ResolvePath(topology::NodeId from, trace::ServerId server,
                             double t, std::vector<topology::NodeId>* path,
                             bool* rerouted) {
  *rerouted = false;
  *path = network_->PathToServer(from, server);
  if (!routing_faults_ || PathHealthy(*path, t)) return true;
  const topology::NodeId root = network_->ServerAttach(server);
  if (DetourPath(from, root, t, path)) {
    *rerouted = true;
    return true;
  }
  return false;
}

bool FaultPlane::DetourPath(topology::NodeId from, topology::NodeId root,
                            double t, std::vector<topology::NodeId>* path) {
  // Dijkstra rooted at the server attach node over the surviving graph
  // (the paper routes along server-rooted trees), so the detour path runs
  // from -> ... -> root like the precomputed routes. Ties prefer the
  // smaller parent id, matching BuildShortestPathTree's determinism.
  const topology::Graph& graph = network_->graph();
  const size_t n = static_cast<size_t>(graph.num_nodes());
  constexpr double kInf = std::numeric_limits<double>::infinity();
  detour_dist_.assign(n, kInf);
  detour_parent_.assign(n, topology::kInvalidNode);
  const bool cut_nodes =
      config_.crash_cuts_routing && config_.node_crash_mtbf > 0.0;
  const auto forwarding = [&](topology::NodeId v) {
    return !cut_nodes || v == from || v == root || !NodeDown(v, t);
  };
  if (from == root) {
    path->assign(1, root);
    return true;
  }

  using Item = std::pair<double, topology::NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> queue;
  detour_dist_[static_cast<size_t>(root)] = 0.0;
  queue.push({0.0, root});
  while (!queue.empty()) {
    const auto [dist, u] = queue.top();
    queue.pop();
    if (dist > detour_dist_[static_cast<size_t>(u)]) continue;
    for (const topology::Edge& edge : graph.Neighbors(u)) {
      const topology::NodeId v = edge.to;
      if (!forwarding(v) || LinkDown(u, v, t)) continue;
      const double next = dist + edge.delay;
      double& best = detour_dist_[static_cast<size_t>(v)];
      topology::NodeId& parent = detour_parent_[static_cast<size_t>(v)];
      if (next < best || (next == best && u < parent)) {
        best = next;
        parent = u;
        queue.push({next, v});
      }
    }
  }
  if (detour_dist_[static_cast<size_t>(from)] == kInf) return false;
  path->clear();
  for (topology::NodeId v = from; v != topology::kInvalidNode;
       v = detour_parent_[static_cast<size_t>(v)]) {
    path->push_back(v);
  }
  return true;
}

}  // namespace cascache::sim
