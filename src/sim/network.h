#ifndef CASCACHE_SIM_NETWORK_H_
#define CASCACHE_SIM_NETWORK_H_

#include <memory>
#include <vector>

#include "sim/cache_set.h"
#include "sim/node.h"
#include "topology/routing.h"
#include "topology/tiers.h"
#include "topology/tree.h"
#include "trace/object_catalog.h"
#include "util/status.h"

namespace cascache::sim {

using trace::ClientId;
using trace::ServerId;

enum class Architecture {
  kEnRoute,       ///< Tiers WAN/MAN topology, caches at every router.
  kHierarchical,  ///< Full O-ary proxy tree, servers behind the root.
};

const char* ArchitectureName(Architecture arch);

struct NetworkParams {
  Architecture architecture = Architecture::kEnRoute;
  topology::TiersParams tiers;
  topology::TreeParams tree;
  /// Seed for client/server-to-node assignment (independent of topology
  /// and workload seeds, as in the paper's random allocations).
  uint64_t placement_seed = 7;
};

/// The simulated content-distribution network. After Build() the Network
/// is an immutable core — graph, distribution trees (precomputed for
/// every server attach node), client/server attach points, catalog — that
/// any number of threads may query concurrently through the const
/// accessors. The mutable per-run cache state lives in CacheSet: the
/// Network owns one default set (the single-threaded legacy interface
/// below forwards to it), and parallel sweeps create one isolated set per
/// worker via MakeCacheSet().
class Network {
 public:
  /// Builds the network for a catalog's servers. The catalog outlives the
  /// network.
  static util::StatusOr<std::unique_ptr<Network>> Build(
      const NetworkParams& params, const trace::ObjectCatalog* catalog);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const topology::Graph& graph() const { return graph_; }
  Architecture architecture() const { return params_.architecture; }
  const trace::ObjectCatalog& catalog() const { return *catalog_; }
  double mean_object_size() const { return mean_object_size_; }

  /// Node where a client's requests enter the cache network (its MAN node
  /// under en-route, its leaf cache under hierarchical). The client-to-
  /// first-cache cost is excluded from the model per paper §2.
  topology::NodeId RequesterNode(ClientId client) const;

  /// Node a server attaches to (a MAN node under en-route; the root under
  /// hierarchical).
  topology::NodeId ServerAttach(ServerId server) const;

  /// Delay of the virtual link between a server's attach node and the
  /// server itself: 0 under en-route (co-located), g^(depth-1)*d under
  /// hierarchical.
  double server_link_delay() const { return server_link_delay_; }
  int server_link_hops() const { return server_link_delay_ > 0.0 ? 1 : 0; }

  /// Nodes from `from` to the server's attach node along the distribution
  /// tree, inclusive. Thread-safe: trees are precomputed at Build time.
  std::vector<topology::NodeId> PathToServer(topology::NodeId from,
                                             ServerId server) const;

  double LinkDelay(topology::NodeId u, topology::NodeId v) const {
    return graph_.EdgeDelay(u, v);
  }

  /// A fresh, independently mutable cache plane over this topology (one
  /// per worker in parallel sweeps).
  CacheSet MakeCacheSet() const { return CacheSet(graph_.num_nodes()); }

  /// The default cache plane, used by the legacy single-threaded
  /// interface (tests, examples, sequential runs).
  CacheSet* caches() { return &caches_; }

  CacheNode* node(topology::NodeId id) {
    CASCACHE_CHECK(graph_.IsValidNode(id));
    return caches_.node(id);
  }

  /// Re-initializes every cache of the default set with the given
  /// configuration (start of a simulation run).
  void ConfigureCaches(const CacheNodeConfig& config) {
    caches_.Configure(config);
  }

  /// Re-initializes the default set with per-node capacities
  /// (heterogeneous provisioning studies). `capacities` must have one
  /// entry per node; the rest of `config` applies to every node.
  void ConfigureCachesWithCapacities(const CacheNodeConfig& config,
                                     const std::vector<uint64_t>& capacities) {
    caches_.ConfigureWithCapacities(config, capacities);
  }

  /// Cache level of a node: tree level under the hierarchical
  /// architecture (0 = leaf, depth-1 = root); 0 for every node under
  /// en-route.
  int NodeLevel(topology::NodeId v) const {
    CASCACHE_CHECK(graph_.IsValidNode(v));
    return node_levels_.empty() ? 0 : node_levels_[static_cast<size_t>(v)];
  }

  /// Highest node level (0 under en-route).
  int MaxNodeLevel() const { return max_node_level_; }

  /// Tree parent of a node under the hierarchical architecture;
  /// kInvalidNode for the root and for every node under en-route.
  topology::NodeId Parent(topology::NodeId v) const {
    CASCACHE_CHECK(graph_.IsValidNode(v));
    return parents_.empty() ? topology::kInvalidNode
                            : parents_[static_cast<size_t>(v)];
  }

  /// Sibling set of a node (other children of its tree parent, ascending
  /// id — the deterministic ICP probe order). Empty under en-route, at
  /// the root, and for only children. Thread-safe: built at Build time.
  const std::vector<topology::NodeId>& Siblings(topology::NodeId v) const {
    CASCACHE_CHECK(graph_.IsValidNode(v));
    if (sibling_sets_.empty()) return empty_siblings_;
    return sibling_sets_[static_cast<size_t>(v)];
  }

  /// Whether any node has a non-empty sibling set (hierarchical trees
  /// with branching > 1); sibling cooperation silently disables itself
  /// otherwise.
  bool HasSiblings() const { return has_siblings_; }

  /// Total number of cache nodes.
  int num_nodes() const { return graph_.num_nodes(); }

  /// Mean hop count of client-to-server routing paths, averaged over all
  /// (client-attach, server-attach) pairs in use (Table 1's "average
  /// length of the routing path").
  double MeanClientServerHops() const;

 private:
  Network(NetworkParams params, const trace::ObjectCatalog* catalog);

  const topology::RoutingTable& routing() const { return *routing_; }

  NetworkParams params_;
  const trace::ObjectCatalog* catalog_;
  topology::Graph graph_{0};
  std::unique_ptr<topology::RoutingTable> routing_;
  /// Default (legacy single-threaded) cache plane.
  CacheSet caches_;
  /// Candidate attach nodes for clients and servers.
  std::vector<topology::NodeId> client_sites_;
  std::vector<topology::NodeId> server_sites_;
  /// client -> attach node, server -> attach node (assigned randomly).
  std::vector<topology::NodeId> client_attach_;
  std::vector<topology::NodeId> server_attach_;
  double server_link_delay_ = 0.0;
  double mean_object_size_ = 0.0;
  /// Per-node tree level (hierarchical only; empty for en-route).
  std::vector<int> node_levels_;
  int max_node_level_ = 0;
  /// Per-node tree parent (hierarchical only; empty for en-route).
  std::vector<topology::NodeId> parents_;
  /// Per-node sibling sets, ascending id (hierarchical only).
  std::vector<std::vector<topology::NodeId>> sibling_sets_;
  std::vector<topology::NodeId> empty_siblings_;
  bool has_siblings_ = false;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_NETWORK_H_
