#ifndef CASCACHE_SIM_FAULT_PLANE_H_
#define CASCACHE_SIM_FAULT_PLANE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/network.h"
#include "sim/node.h"
#include "util/random.h"
#include "util/status.h"

namespace cascache::sim {

/// Declarative fault schedule of one simulation run. Everything is driven
/// by `seed` through per-entity deterministic streams, so a chaotic run
/// replays bit-identically: the same schedule against the same workload
/// produces the same crashes, outages, message losses and retries,
/// regardless of query order. The default config injects nothing and
/// reports inactive, keeping the hot path at a single null check.
///
/// Fault classes (see DESIGN.md §10 for the full model):
///  - Node crashes: the cache process at a node dies for an exponentially
///    distributed interval (mean `node_downtime`, onset rate
///    1/`node_crash_mtbf`). While down, the node cannot serve, store, or
///    piggyback state; on recovery it restarts *cold* — object store,
///    d-cache and frequency windows are all lost. With
///    `crash_cuts_routing`, a crashed node also stops forwarding, so
///    paths detour around it.
///  - Link outages: an edge disappears for an exponential interval; the
///    request is re-routed around it over the surviving graph (shortest
///    delay, deterministic tie-break) or times out when the server is
///    unreachable.
///  - Message faults: the piggyback entry a hop contributes on the ascent
///    (`ascent_loss_prob`) or the placement decision it should receive on
///    the descent (`decision_loss_prob`) is lost; schemes fall back to
///    their documented local behavior (paper §2.4: nodes lacking state
///    are excluded / skip placement).
///  - Timeout + retry: a request that cannot reach its server waits
///    `request_timeout`, then retries after an exponential backoff
///    (`retry_backoff` * 2^attempt), at most `max_retries` times, before
///    being recorded as failed.
struct FaultScheduleConfig {
  /// Seed of every fault stream; independent of the workload seed.
  uint64_t seed = 1;
  /// Mean seconds between crash onsets per node; 0 disables crashes.
  double node_crash_mtbf = 0.0;
  /// Mean seconds a crashed node stays down.
  double node_downtime = 30.0;
  /// Mean seconds between outage onsets per link; 0 disables outages.
  double link_mtbf = 0.0;
  /// Mean seconds a failed link stays down.
  double link_downtime = 30.0;
  /// Crashed nodes also stop forwarding (requests detour around them).
  bool crash_cuts_routing = false;
  /// Probability a hop's piggyback entry is lost on the ascent.
  double ascent_loss_prob = 0.0;
  /// Probability a hop's placement decision is lost on the descent.
  double decision_loss_prob = 0.0;
  /// Seconds a request waits before giving up on an unreachable server.
  double request_timeout = 5.0;
  /// Retries after a timeout before the request is recorded as failed.
  int max_retries = 3;
  /// Backoff before retry k (0-based) is retry_backoff * 2^k seconds.
  double retry_backoff = 1.0;
  /// Mean seconds between disk-failure onsets per node; 0 disables the
  /// degraded-node fault class. While a node's disk is down, a tiered
  /// node degrades to RAM-only service (its RAM tier keeps serving;
  /// promotions and disk placements stop) and an untiered node to
  /// proxy-only (it forwards but can neither serve nor store). Disk
  /// contents are preserved across the outage — availability is lost,
  /// not data — so recovery resumes with the pre-outage store (no cold
  /// restart; that is the node-crash fault class).
  double disk_fail_mtbf = 0.0;
  /// Mean seconds a failed disk stays down.
  double disk_fail_downtime = 60.0;
  /// Probability a sibling probe or its reply is lost on the sibling leg;
  /// the probing node treats the sibling as a miss and continues.
  double sibling_loss_prob = 0.0;

  /// Whether this schedule injects any fault at all.
  bool active() const {
    return node_crash_mtbf > 0.0 || link_mtbf > 0.0 ||
           ascent_loss_prob > 0.0 || decision_loss_prob > 0.0 ||
           disk_fail_mtbf > 0.0 || sibling_loss_prob > 0.0;
  }

  util::Status Validate() const;
};

/// Applies one `key=value` setting to a config; shared by the config-file
/// loader, the CASCACHE_FAULT_* environment overrides and tests. Keys:
/// seed, node_mtbf, node_downtime, link_mtbf, link_downtime,
/// crash_cuts_routing, ascent_loss, decision_loss, timeout, max_retries,
/// backoff, disk_mtbf, disk_downtime, sibling_loss.
util::Status ApplyFaultSetting(const std::string& key,
                               const std::string& value,
                               FaultScheduleConfig* config);

/// Loads a fault schedule file: one `key=value` per line, '#' comments
/// and blank lines ignored.
util::Status LoadFaultConfigFile(const std::string& path,
                                 FaultScheduleConfig* config);

/// Overrides config fields from CASCACHE_FAULT_* environment variables
/// (CASCACHE_FAULT_NODE_MTBF, ..., uppercased key names above).
util::Status ApplyFaultEnvOverrides(FaultScheduleConfig* config);

/// Deterministic fault-injection layer over one simulation run. Owned by
/// the Simulator (one per cache plane, so parallel sweep cells fault
/// independently and identically to a sequential run). All methods are
/// pure functions of (config, topology, arguments) — outage streams are
/// materialized lazily but their contents never depend on query order —
/// except ApplyCrashRestarts, which cold-restarts caches and must be
/// called with non-decreasing per-node times (the replay order).
class FaultPlane {
 public:
  /// `network` must outlive the plane. `config` must Validate().
  FaultPlane(const FaultScheduleConfig& config, const Network* network);

  const FaultScheduleConfig& config() const { return config_; }

  /// Forgets all materialized outage streams and applied crash epochs, so
  /// the next replay reproduces the run exactly. Called by Run().
  void Reset();

  /// Whether faults can alter routing (link outages, or node crashes with
  /// crash_cuts_routing). When false, ResolvePath never detours.
  bool routing_faults() const { return routing_faults_; }

  /// Resolves the path from `from` to `server`'s attach node at time `t`:
  /// the precomputed route when healthy, else a detour over the surviving
  /// graph (`*rerouted` = true). Returns false when the attach node is
  /// unreachable (the caller times out / retries).
  bool ResolvePath(topology::NodeId from, trace::ServerId server, double t,
                   std::vector<topology::NodeId>* path, bool* rerouted);

  /// Whether the cache process at `v` is down at time `t`.
  bool NodeDown(topology::NodeId v, double t);

  /// Whether the disk tier at `v` is down at time `t` (degraded-node
  /// fault class: RAM-only for tiered nodes, proxy-only otherwise). An
  /// independent per-node renewal stream, salted differently from the
  /// crash stream, so the two fault classes compose without correlation.
  bool DiskDown(topology::NodeId v, double t);

  /// Whether the `probe`-th sibling probe of request `request_index` (or
  /// its reply) is lost on the sibling leg. Pure hash — independent of
  /// call order and of the other fault streams.
  bool SiblingLoss(uint64_t request_index, int probe) const;

  /// Whether the link (u, v) is down at time `t`.
  bool LinkDown(topology::NodeId u, topology::NodeId v, double t);

  /// Applies any crash/restart cycles of `node` that began at or before
  /// `t` and have not been applied yet: the cache restarts cold (store,
  /// d-cache and frequency state dropped). Returns the number of crashes
  /// applied (0 almost always). Restarts are applied lazily, on the first
  /// request that touches the node after the crash onset.
  int ApplyCrashRestarts(CacheNode* node, double t);

  /// Whether the piggyback entry of path index `hop` is lost on the
  /// ascent of request `request_index`. Pure hash — independent of call
  /// order and of the other fault streams.
  bool AscentLoss(uint64_t request_index, int hop) const;

  /// Whether the placement decision for path index `hop` is lost on the
  /// descent of request `request_index`.
  bool DescentLoss(uint64_t request_index, int hop) const;

 private:
  /// Alternating up/down renewal process of one entity (node or link).
  /// `boundaries_` holds [down-start, down-end) pairs in time order,
  /// generated from a private stream: a deterministic prefix of an
  /// infinite sequence, so extending it on demand is query-order
  /// independent.
  class OutageTrack {
   public:
    OutageTrack() = default;
    OutageTrack(uint64_t seed, double mtbf, double downtime);

    bool IsDown(double t);
    /// Number of down-intervals that began at or before `t`.
    uint64_t CrashEpoch(double t);

   private:
    /// Extends boundaries_ until it covers `t`; returns the index of the
    /// first boundary > t.
    size_t CoverIndex(double t);

    util::Rng rng_;
    double onset_rate_ = 0.0;
    double recovery_rate_ = 0.0;
    bool enabled_ = false;
    std::vector<double> boundaries_;
  };

  OutageTrack& NodeTrack(topology::NodeId v);
  OutageTrack& DiskTrack(topology::NodeId v);
  OutageTrack& EdgeTrack(topology::NodeId u, topology::NodeId v);

  /// True when every link of `path` is up and (under crash_cuts_routing)
  /// every intermediate node is forwarding at time `t`.
  bool PathHealthy(const std::vector<topology::NodeId>& path, double t);

  /// Shortest-delay detour from `from` to `root` over the surviving
  /// graph; deterministic tie-break by parent id. Returns false when
  /// unreachable.
  bool DetourPath(topology::NodeId from, topology::NodeId root, double t,
                  std::vector<topology::NodeId>* path);

  FaultScheduleConfig config_;
  const Network* network_;
  bool routing_faults_ = false;
  /// Lazily materialized outage streams (cleared by Reset()).
  std::vector<OutageTrack> node_tracks_;
  std::vector<bool> node_track_ready_;
  /// Per-node disk-failure streams (degraded-node fault class).
  std::vector<OutageTrack> disk_tracks_;
  std::vector<bool> disk_track_ready_;
  std::unordered_map<uint64_t, OutageTrack> edge_tracks_;
  /// Crash epochs already applied to each node's cache.
  std::vector<uint64_t> applied_crash_epoch_;
  /// Dijkstra scratch for DetourPath.
  std::vector<double> detour_dist_;
  std::vector<topology::NodeId> detour_parent_;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_FAULT_PLANE_H_
