#ifndef CASCACHE_SIM_SIMULATOR_H_
#define CASCACHE_SIM_SIMULATOR_H_

#include "schemes/scheme.h"
#include "sim/coherency.h"
#include "sim/cost_model.h"
#include "sim/event_engine.h"
#include "sim/event_trace.h"
#include "sim/fault_plane.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/network.h"
#include "sim/queueing.h"
#include "sim/request_arena.h"
#include "trace/synthetic.h"

namespace cascache::sim {

/// Two-tier node knobs (RAM cache over a disk store, modeled on Traffic
/// Server's ram_cache over the disk vols). The disk tier is the node's
/// existing mode store at full capacity — Contains() still decides
/// hit/miss, so schemes and byte-hit accounting are untouched — and the
/// RAM tier is an inclusive LRU front (RAM ⊆ disk): a disk-tier serve
/// promotes the object into RAM, RAM evictions are demotions (the disk
/// copy stays), and a disk eviction drops any RAM copy. Inactive by
/// default = single-store nodes, bit-identical to the pre-tier replay.
struct TierParams {
  /// RAM tier capacity as a fraction of each node's capacity; 0 = off.
  double ram_fraction = 0.0;
  /// Absolute RAM tier capacity in bytes; overrides ram_fraction when set.
  uint64_t ram_capacity_bytes = 0;
  /// Service seconds of a RAM-tier serve. Analytic policy: added to the
  /// request's latency; event-driven: charged on the serving node's queue.
  double ram_hit_cost = 0.0;
  /// Service seconds of a disk-tier serve (promotion included).
  double disk_hit_cost = 0.0;

  bool active() const { return ram_fraction > 0.0 || ram_capacity_bytes > 0; }
  util::Status Validate() const;
};

/// ICP-style sibling cooperation (Squid's proxy-only sibling peering):
/// when the hop at `level` misses locally, it probes its tree siblings —
/// other children of the same parent, ascending node id — before the
/// request ascends further. A fresh sibling copy serves the request
/// (hit_index = the probing hop, response.served_by_sibling), the
/// descent below the probing hop proceeds exactly as for a local hit
/// there, and the probing node does NOT store the object (proxy-only),
/// so hop alignment of every scheme's piggyback state is preserved.
/// Hierarchical trees only; silently inactive when no node has siblings.
struct SiblingParams {
  bool enabled = false;
  /// Tree level whose nodes probe their siblings (-1 = every level).
  int level = -1;
  /// Max siblings probed per miss (ascending node id); 0 = all.
  int max_probes = 0;
  /// Protocol bytes per probe (request leg) and per hit reply (response).
  uint64_t probe_bytes = 16;
  /// Service seconds a probed sibling charges per probe (event-driven).
  double probe_cost = 0.0;

  bool active() const { return enabled; }
  util::Status Validate() const;
};

struct SimOptions {
  /// Leading fraction of the trace used to warm the caches; statistics are
  /// collected for the remainder only (the paper uses the first half).
  double warmup_fraction = 0.5;
  /// d-cache size as a multiple of the average number of objects the main
  /// cache can hold (paper default: 3x). Ignored for schemes without a
  /// d-cache.
  double dcache_ratio = 3.0;
  /// d-cache replacement policy (paper default: LFU; §2.4 also suggests
  /// LRU stacks).
  cache::DCachePolicy dcache_policy = cache::DCachePolicy::kLfu;
  cache::FrequencyEstimatorParams frequency;
  /// The generic cost the cost-aware schemes optimize (paper default:
  /// latency, i.e. delay proportional to object size).
  CostModelParams cost_model;
  /// Object update process + coherency protocol. Defaults to the paper's
  /// setting (static objects, no protocol, zero overhead).
  CoherencyParams coherency;
  /// Heterogeneous provisioning (hierarchical architecture): the capacity
  /// of a level-i cache is proportional to level_capacity_growth^i,
  /// normalized so the *total* cache budget equals
  /// num_nodes * capacity_bytes_per_node. 1.0 (default) = uniform, the
  /// paper's setting; > 1 concentrates capacity near the root, < 1 near
  /// the leaves. Ignored under en-route (all nodes are level 0).
  double level_capacity_growth = 1.0;
  /// Structured event tracing (observability layer). Disabled by
  /// default; when disabled the hot path pays one null check per request.
  EventTraceOptions trace;
  /// Deterministic fault injection (crashes, link outages, message
  /// faults, timeouts — see sim/fault_plane.h). Inactive by default; an
  /// inactive schedule leaves the replay bit-identical to a build without
  /// the fault plane, at the cost of one null check per request.
  FaultScheduleConfig faults;
  /// Contention model (sim/queueing.h): node service costs + bounded
  /// queues, link bandwidth, open-loop arrivals. Inactive by default,
  /// which keeps Run() on the analytic scheduling policy and the replay
  /// bit-identical to a build without the event engine; any nonzero knob
  /// switches Run() to the event-driven policy.
  ContentionParams contention;
  /// Two-tier nodes (RAM over disk). Inactive by default.
  TierParams tier;
  /// Sibling cooperation at one tree level. Inactive by default.
  SiblingParams sibling;
};

/// Wall-clock breakdown of the last Run(): cache (re)configuration +
/// coherency setup, the warm-up replay, and the measured replay.
/// Exported per sweep cell into BENCH_sweep.json.
struct RunPhaseTimes {
  double configure_seconds = 0.0;
  double warmup_seconds = 0.0;
  double measure_seconds = 0.0;
};

/// Trace-driven simulator: replays a request stream through the network
/// under one caching scheme, computing the paper's metrics. Time is owned
/// by one VirtualClock (sim/event_engine.h), driven by either of two
/// scheduling policies:
///
///  - analytic (default, the paper's setting): the trace loop anchors the
///    clock at each request's timestamp and latency is the closed-form
///    sum of size-scaled link delays — requests never interact, so the
///    event heap stays empty and the replay is a tight linear scan;
///  - event-driven (any ContentionParams knob set): arrivals and request
///    completions interleave on the EventEngine's time-ordered heap,
///    nodes charge per-operation service through bounded FIFO queues that
///    shed on overload (QueueingPlane), links serialize the descending
///    object bodies at finite bandwidth, and arrivals can be generated
///    open-loop on a rate ramp instead of read from the trace.
///
/// Both policies run the same exchange core below; the analytic policy is
/// the event-driven one with zero service demand everywhere, and a
/// zero-cost event-driven run reproduces the analytic results (the
/// equivalence tests pin this).
///
/// Each request is processed as an explicit two-phase message exchange
/// (see sim/message.h): a RequestMessage ascends the distribution path
/// hop by hop — per-hop coherency admission (TTL expiry, invalidation,
/// stale-serve accounting) runs at each cache before the scheme's
/// OnAscend handler — until a cache serves it or the origin is reached,
/// then a ResponseMessage descends through the scheme's OnServe/OnDescend
/// handlers, carrying the placement decision and penalty counter.
///
/// The simulator only reads the Network (immutable shared topology) and
/// mutates the CacheSet it was given, so simulators over disjoint cache
/// sets may run concurrently on one Network.
class Simulator {
 public:
  /// `network`, `caches` and `scheme` must outlive the simulator (all
  /// must be non-null, with one cache per network node). Caches are
  /// (re)configured by Run(). Invalid *options* (bad warmup fraction,
  /// inconsistent cost-model weights) do not abort here: they surface as
  /// an InvalidArgument from Run(), so CLI-supplied options fail cleanly.
  Simulator(const Network* network, CacheSet* caches,
            schemes::CachingScheme* scheme,
            const SimOptions& options = SimOptions());

  /// Single-threaded convenience: runs on the network's default cache
  /// set.
  Simulator(Network* network, schemes::CachingScheme* scheme,
            const SimOptions& options = SimOptions());

  /// Replays the full workload: resets caches, configures them for the
  /// given per-node capacity, runs the warm-up, then collects statistics.
  util::Status Run(const trace::Workload& workload,
                   uint64_t capacity_bytes_per_node);

  /// Span-based core of Run(): replays a borrowed request stream —
  /// in-RAM vector or read-only file mapping (trace/mapped_trace.h) —
  /// without copying it. `view.catalog` must be the catalog this
  /// simulator's Network was built over. The analytic replay proceeds
  /// in bounded chunks and invokes view.on_consumed (if set) after
  /// each, so mapped sources can release consumed pages; results are
  /// bit-identical to the unchunked replay.
  util::Status Run(const trace::WorkloadView& view,
                   uint64_t capacity_bytes_per_node);

  /// Processes a single request against the current cache state;
  /// `collect` controls whether metrics are recorded. Exposed for tests
  /// and custom drivers; Run() is the normal entry point. NOTE: coherency
  /// tracking requires the update schedule, which Run() builds; direct
  /// Step() drivers that want coherency must call EnableCoherency first.
  void Step(const trace::Request& request, bool collect);

  /// Replays requests [begin, end) of the trace, decoding them in blocks
  /// ahead of the replay loop (catalog sizes, origin servers, attach
  /// points). The span is seekable storage-agnostic — a heap vector and
  /// an mmap'd request region replay through the same loop. Per-request
  /// ordering and results are identical to calling Step() on each
  /// request in sequence; Run() uses this for both phases.
  void ReplayRange(trace::RequestSpan requests, size_t begin, size_t end,
                   bool collect);

  /// Installs the update schedule for direct Step() drivers (Run() does
  /// this automatically from the workload catalog).
  util::Status EnableCoherency(uint32_t num_objects);

  const MetricsCollector& metrics() const { return metrics_; }
  const Network* network() const { return network_; }
  CacheSet* caches() { return caches_; }

  /// Event sink; nullptr unless options.trace.enabled.
  EventTrace* event_trace() { return trace_.get(); }
  const EventTrace* event_trace() const { return trace_.get(); }

  /// Fault-injection layer; nullptr unless options.faults.active().
  FaultPlane* fault_plane() { return faults_.get(); }
  const FaultPlane* fault_plane() const { return faults_.get(); }

  /// Phase breakdown of the last Run() (zeros before the first).
  const RunPhaseTimes& phase_times() const { return phase_times_; }

  /// The run's time source. Both scheduling policies derive ctx.now —
  /// and through it every TTL check, retry backoff and fault-schedule
  /// evaluation — from this clock.
  const VirtualClock& virtual_clock() const { return engine_.clock(); }

 private:
  /// StepDecoded result when the event-driven replay needs the exchange
  /// back instead of recording it: the metrics travel to the request's
  /// completion event, where they are recorded in completion order.
  struct StepOutcome {
    RequestMetrics metrics;
    double completion_time = 0.0;
  };

  /// An in-flight request between its arrival and completion events.
  struct PendingCompletion {
    RequestMetrics metrics;
    bool collect = false;
  };
  /// A precomputed client-path: the node sequence from a requester to a
  /// server attach node plus its per-link delays, resolved once and
  /// reused for every request on that (requester, attach) pair. Delays
  /// are request-invariant; link *costs* are size-dependent and stay
  /// per-request (RequestArena::link_costs).
  struct CachedRoute {
    std::vector<topology::NodeId> nodes;
    std::vector<double> delays;  ///< nodes.size() - 1 entries.
    /// Running sums of `delays`, accumulated left to right in the exact
    /// addition order of the historical per-request latency loop (so the
    /// precomputed sums are bit-identical to summing on every request):
    /// delay_prefix[i] == delays[0] + ... + delays[i-1]; nodes.size()
    /// entries, delay_prefix[0] == 0.
    std::vector<double> delay_prefix;
    bool filled = false;
  };

  /// Drives the request message up the path: per-hop coherency admission
  /// then the scheme's ascent hook, stopping at the serving cache. All
  /// timing uses ctx.now (== the attempt time, which trails the request
  /// time after fault-plane retries). Returns the serving version for
  /// freshness stamping.
  uint32_t Ascend(MessageContext& ctx);

  /// The decoded-request hot path shared by Step(), ReplayRange() and
  /// ReplayContended(). `route`, when non-null, is the request's
  /// already-resolved cached route (ReplayRange's pipelined prefetch
  /// stage resolves it one request ahead); null means resolve here. Only
  /// meaningful without a fault plane. `outcome`, when non-null, receives
  /// the exchange instead of the metrics collector (event-driven replay).
  void StepDecoded(const DecodedRequest& request, bool collect,
                   const CachedRoute* route = nullptr,
                   StepOutcome* outcome = nullptr);

  /// Terminal of every StepDecoded exit: hands the exchange to `outcome`
  /// (event-driven replay) or streams it into the open block accumulator.
  /// Every analytic driver (ReplayRange, Step) opens a block before
  /// collecting, so the collecting exit is a single inline RecordInBlock
  /// — in the class body because an out-of-line call (or a second,
  /// fallback record body) here costs a measurable fraction of the fused
  /// plain-LRU request budget.
  void FinishRequest(const RequestMetrics& rm, bool collect,
                     double completion_time, StepOutcome* outcome) {
    if (outcome != nullptr) {
      outcome->metrics = rm;
      outcome->completion_time = completion_time;
      return;
    }
    if (collect) metrics_.RecordInBlock(rm, &block_stats_);
  }

  /// Event-driven replay of the whole trace (Run() dispatches here when
  /// contention is active): arrivals and completions interleave on the
  /// engine's heap; requests before `warmup_count` replay with collection
  /// off. One loop spans both phases so warm-up completions that land
  /// inside the measured window drain in time order instead of being
  /// force-drained at the phase boundary.
  void ReplayContended(trace::RequestSpan requests, size_t warmup_count);

  /// Arrival time of the next open-loop request: the (monotonized) trace
  /// timestamp by default, or the ramp process
  /// rate(t) = arrival_rate * (1 + arrival_ramp * t) when a rate is set.
  double NextArrivalTime(double trace_time);

  /// Event-driven descent charges for hop `i`: the object body's link
  /// transfer into the hop, then the store-queue pre-check — a full queue
  /// drops the placement decision there (decision_lost + RecordStoreShed).
  void DescendContention(int i);

  /// Sibling leg of Ascend at path index `hop` (which just missed
  /// locally): probes the hop's siblings in ascending node id, bounded by
  /// max_probes, and serves from the first fresh copy. Probes never
  /// mutate sibling stores (an expired / stale sibling copy is skipped,
  /// not erased). Returns true when a sibling served — response.hit_index
  /// is `hop` with served_by_sibling / sibling set — and writes the
  /// serving copy's version to `*served_version`. Kept out of line so the
  /// sibling-off ascent loop stays compact (one never-taken branch).
  __attribute__((noinline)) bool TrySiblings(MessageContext& ctx, size_t hop,
                                             uint32_t* served_version);

  /// Charges the serving tier's service seconds at `node_id`: analytic
  /// replay → ctx.tier_service (the simulator adds it to the request
  /// latency); event-driven → service demand on the node's queue
  /// (non-shedding: a serve already under way is never refused).
  void ChargeTierServe(MessageContext& ctx, topology::NodeId node_id,
                       bool ram_hit);

  /// Route (path + delays) for a requester/attach pair: the dense cache
  /// entry when enabled (filled on first use), else a per-request
  /// resolution into fallback_route_.
  const CachedRoute& RouteFor(topology::NodeId from, topology::NodeId attach,
                              trace::ServerId server);

  /// Memoized Network::RequesterNode (same deterministic assignment,
  /// computed once per client).
  topology::NodeId RequesterFor(trace::ClientId client);

  const Network* network_;
  CacheSet* caches_;
  schemes::CachingScheme* scheme_;
  SimOptions options_;
  CostModel cost_model_;
  /// Deferred SimOptions validation result, returned by Run() (bad
  /// options must not abort construction — satellite of the pipeline
  /// refactor).
  util::Status init_status_;
  /// Per-request invariants of the immutable network, hoisted out of the
  /// Step hot path.
  const trace::ObjectCatalog* catalog_;
  double mean_object_size_;
  double server_link_delay_;
  int server_link_hops_;
  /// Cached scheme->observes_ascent(): skips the per-hop ascent dispatch
  /// for the locally-deciding schemes.
  bool scheme_observes_ascent_;
  /// Cached scheme->uses_link_costs(): the cost-oblivious schemes never
  /// read ctx.link_costs, so the per-request cost-model evaluation is
  /// skipped entirely for them.
  bool scheme_uses_link_costs_;
  /// Cached scheme->plain_lru_replay(): the unfaulted replay inlines the
  /// plain-LRU serve/descend rule instead of the virtual dispatch.
  bool scheme_plain_lru_;
  /// Cached options.tier.active(): nodes run a RAM tier this run. Off
  /// keeps the fused fast paths eligible and the replay bit-identical to
  /// the pre-tier pipeline.
  bool tiered_ = false;
  /// Sibling cooperation is live: options.sibling.enabled AND the
  /// topology actually has sibling sets (hierarchical, branching > 1).
  bool sibling_on_ = false;
  /// Present iff coherency tracking is active for this run.
  std::unique_ptr<UpdateSchedule> updates_;
  MetricsCollector metrics_;
  /// Tree depth per NodeId, hoisted for trace records and per-level
  /// rollups (all zeros under en-route).
  std::vector<int> node_levels_;
  /// Present iff options.trace.enabled.
  std::unique_ptr<EventTrace> trace_;
  /// Present iff options.faults.active(); nullptr keeps the unfaulted
  /// replay on the historical hot path (one pointer test per request).
  std::unique_ptr<FaultPlane> faults_;
  /// Present iff options.contention.active(); nullptr keeps the analytic
  /// replay on the historical hot path (one pointer test per request).
  std::unique_ptr<QueueingPlane> queueing_;
  /// The open block FinishRequest streams collected exchanges into: the
  /// order-sensitive stats still land on the collector per request, the
  /// integer counters accumulate here and flush once per replayed range.
  /// The analytic drivers (ReplayRange, Step) zero it before collecting
  /// and FlushBlock it after.
  MetricsCollector::BlockStats block_stats_;
  RunPhaseTimes phase_times_;
  /// Index of the next Step()'ed request: the trace position under Run()
  /// (reset there), a monotone counter for direct Step() drivers. Keys
  /// the deterministic trace sampler.
  uint64_t step_index_ = 0;
  /// Per-block route pointers for ReplayRange's pipelined prefetch
  /// (parallel to RequestArena::batch; dense-table entries are stable).
  std::vector<const CachedRoute*> batch_routes_;
  /// Memoized size / mean-object-size ratio per ObjectId — the exact
  /// division the per-request path performed, computed once per object
  /// (Run() fills it from the catalog; empty for direct Step() drivers,
  /// which fall back to dividing inline).
  std::vector<double> size_scale_table_;
  /// Dense (requester * num_nodes + attach) route cache, filled lazily
  /// from the routing table. Empty (disabled) when num_nodes exceeds
  /// kRouteCacheMaxNodes — the n^2 table would dominate memory — in which
  /// case fallback_route_ is resolved per request.
  std::vector<CachedRoute> route_cache_;
  CachedRoute fallback_route_;
  /// Memoized Network::RequesterNode keyed by client id (-1 = unfilled):
  /// the hash assignment is deterministic per client, so the decode loop
  /// pays it once per client instead of once per request.
  std::vector<topology::NodeId> requester_cache_;
  /// Per-request scratch (link costs, fault flags, decode blocks); reset,
  /// never reallocated, between requests.
  RequestArena arena_;
  /// Reused exchange context; the invariant fields (cache plane, server
  /// link delay) are wired in the constructor. The path/delay pointers are
  /// repointed per request at the cached route (or the arena's resolved
  /// path under the fault plane).
  MessageContext ctx_;
  // --- Event-driven replay state, declared last: the analytic hot path
  // --- never touches it (beyond the queueing_ gate above), so keeping it
  // --- out of the middle of the object leaves the hot members' cache-line
  // --- packing as it was before the event engine landed.
  /// The run's clock plus the event heap the contended replay schedules
  /// on. Always present; under the analytic policy the heap stays empty
  /// and only the clock is used.
  EventEngine engine_;
  /// Ascent service demand per visited node: lookup cost plus the d-cache
  /// probe cost for schemes that keep one (cached at construction).
  double ascent_op_cost_ = 0.0;
  /// Open-loop arrival process state (ReplayContended / NextArrivalTime):
  /// the last scheduled arrival time.
  double arrival_clock_ = 0.0;
  /// In-flight exchanges keyed by completion-event payload (slot index),
  /// with a free list so the pool stops growing at the peak concurrency.
  std::vector<PendingCompletion> pending_;
  std::vector<uint64_t> pending_free_;
};

}  // namespace cascache::sim

#endif  // CASCACHE_SIM_SIMULATOR_H_
