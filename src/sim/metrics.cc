#include "sim/metrics.h"

#include <cstdio>

namespace cascache::sim {

void MetricsCollector::Reset() { *this = MetricsCollector(); }

NodeCounters& NodeCounters::operator+=(const NodeCounters& other) {
  hits += other.hits;
  misses += other.misses;
  evictions += other.evictions;
  placements += other.placements;
  placements_rejected += other.placements_rejected;
  expirations += other.expirations;
  invalidations += other.invalidations;
  stale_serves += other.stale_serves;
  dcache_hits += other.dcache_hits;
  bytes_served += other.bytes_served;
  bytes_cached += other.bytes_cached;
  crashes += other.crashes;
  retries += other.retries;
  reroutes += other.reroutes;
  degraded += other.degraded;
  sheds += other.sheds;
  store_sheds += other.store_sheds;
  ram_hits += other.ram_hits;
  disk_hits += other.disk_hits;
  promotions += other.promotions;
  demotions += other.demotions;
  sibling_probes += other.sibling_probes;
  sibling_serves += other.sibling_serves;
  disk_degraded += other.disk_degraded;
  // Gauge, not a count: a rollup reports the deepest queue in the set.
  if (other.max_queue_depth > max_queue_depth) {
    max_queue_depth = other.max_queue_depth;
  }
  return *this;
}

void MetricsCollector::ResetNodes(int num_nodes) {
  node_counters_.assign(static_cast<size_t>(num_nodes), NodeCounters());
}

NodeCounters MetricsCollector::NodeTotals() const {
  NodeCounters total;
  for (const NodeCounters& c : node_counters_) total += c;
  return total;
}

void MetricsCollector::FlushBlock(const BlockStats& acc) {
  requests_ += acc.requests;
  hits_ += acc.hits;
  total_bytes_ += acc.total_bytes;
  hit_bytes_ += acc.hit_bytes;
  read_bytes_ += acc.read_bytes;
  write_bytes_ += acc.write_bytes;
  stale_hits_ += acc.stale_hits;
  copies_expired_ += acc.copies_expired;
  copies_invalidated_ += acc.copies_invalidated;
  request_msg_bytes_ += acc.request_msg_bytes;
  response_msg_bytes_ += acc.response_msg_bytes;
  insertions_ += acc.insertions;
  retries_ += acc.retries;
  failed_requests_ += acc.failed;
  reroutes_ += acc.reroutes;
  crashes_applied_ += acc.crashes;
  degraded_decisions_ += acc.degraded;
  shed_requests_ += acc.shed_requests;
  shed_placements_ += acc.shed_placements;
  ram_hits_ += acc.ram_hits;
  disk_hits_ += acc.disk_hits;
  promotions_ += acc.promotions;
  demotions_ += acc.demotions;
  sibling_probes_ += acc.sibling_probes;
  sibling_hits_ += acc.sibling_hits;
  disk_degraded_ += acc.disk_degraded;
}

void MetricsCollector::RecordBlock(const RequestMetrics* batch, size_t count) {
  BlockStats acc;
  for (size_t i = 0; i < count; ++i) RecordInBlock(batch[i], &acc);
  FlushBlock(acc);
}

MetricsSummary MetricsCollector::Summary() const {
  MetricsSummary s;
  s.requests = requests_;
  if (requests_ == 0) return s;
  s.avg_latency = latency_.mean();
  s.avg_response_ratio = response_ratio_.mean();
  s.byte_hit_ratio =
      total_bytes_ == 0
          ? 0.0
          : static_cast<double>(hit_bytes_) / static_cast<double>(total_bytes_);
  s.hit_ratio = static_cast<double>(hits_) / static_cast<double>(requests_);
  s.avg_traffic_byte_hops = traffic_.mean();
  s.avg_hops = hops_.mean();
  const double total_load =
      static_cast<double>(read_bytes_) + static_cast<double>(write_bytes_);
  s.avg_load_bytes = total_load / static_cast<double>(requests_);
  s.read_load_share =
      total_load == 0.0 ? 0.0 : static_cast<double>(read_bytes_) / total_load;
  s.avg_write_bytes =
      static_cast<double>(write_bytes_) / static_cast<double>(requests_);
  s.total_bytes_requested = total_bytes_;
  s.bytes_from_caches = hit_bytes_;
  s.stale_hit_ratio =
      hits_ == 0 ? 0.0
                 : static_cast<double>(stale_hits_) / static_cast<double>(hits_);
  s.copies_expired = copies_expired_;
  s.copies_invalidated = copies_invalidated_;
  s.avg_request_msg_bytes = static_cast<double>(request_msg_bytes_) /
                            static_cast<double>(requests_);
  s.avg_response_msg_bytes = static_cast<double>(response_msg_bytes_) /
                             static_cast<double>(requests_);
  s.avg_message_bytes = s.avg_request_msg_bytes + s.avg_response_msg_bytes;
  s.cache_hits = hits_;
  s.stale_hits = stale_hits_;
  s.insertions = insertions_;
  s.bytes_written = write_bytes_;
  s.retries = retries_;
  s.failed_requests = failed_requests_;
  s.reroutes = reroutes_;
  s.crashes_applied = crashes_applied_;
  s.degraded_decisions = degraded_decisions_;
  s.shed_requests = shed_requests_;
  s.shed_placements = shed_placements_;
  s.served_requests = requests_ - failed_requests_ - shed_requests_;
  s.bytes_read = read_bytes_;
  s.avg_queue_wait = queue_wait_sum_ / static_cast<double>(requests_);
  s.ram_hits = ram_hits_;
  s.disk_hits = disk_hits_;
  s.promotions = promotions_;
  s.demotions = demotions_;
  s.sibling_probes = sibling_probes_;
  s.sibling_hits = sibling_hits_;
  s.disk_degraded = disk_degraded_;
  return s;
}

std::string MetricsSummary::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "requests=%llu latency=%.4fs response_ratio=%.3fs/MB "
      "byte_hit=%.4f hit=%.4f traffic=%.4gB*hops hops=%.3f "
      "load=%.4gB/req (read share %.2f)",
      static_cast<unsigned long long>(requests), avg_latency,
      avg_response_ratio, byte_hit_ratio, hit_ratio, avg_traffic_byte_hops,
      avg_hops, avg_load_bytes, read_load_share);
  return buf;
}

}  // namespace cascache::sim
